// E11b: container substrate calibration — CountedTreap and hash table
// throughput, the constant factors behind every O(log n) in the paper.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "container/concurrent_map.hpp"
#include "container/counted_treap.hpp"
#include "container/flat_map.hpp"
#include "container/priority_list.hpp"
#include "parallel/parallel_for.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

void BM_TreapInsertErase(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  Rng rng(1);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.next() >> 1;
  for (auto _ : state) {
    CountedTreap<uint64_t> t;
    for (uint64_t k : keys)
      if (!t.find(k)) t.insert(k, k);
    for (uint64_t k : keys) t.erase(k);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(2 * n));
}
BENCHMARK(BM_TreapInsertErase)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

// Bulk build vs n incremental inserts: the ES-tree init path.
void BM_TreapBuildSorted(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  Rng rng(4);
  std::vector<std::pair<uint64_t, uint64_t>> xs;
  {
    CountedTreap<uint64_t> dedup;
    while (xs.size() < n) {
      uint64_t k = rng.next() >> 1;
      if (!dedup.find(k)) {
        dedup.insert(k, 0);
        xs.push_back({k, k});
      }
    }
  }
  std::sort(xs.begin(), xs.end());
  for (auto _ : state) {
    CountedTreap<uint64_t> t;
    t.build_sorted(xs.data(), xs.size());
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_TreapBuildSorted)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

// Flat open-addressing map vs std::unordered_map on the contrib/groups
// access pattern: mixed upsert / find / erase over a bounded key universe.
template <typename MapT>
void churn_flat(MapT& m, const std::vector<uint64_t>& keys) {
  for (size_t i = 0; i < keys.size(); ++i) {
    uint64_t k = keys[i];
    switch (i % 3) {
      case 0:
        ++m[k];
        break;
      case 1:
        benchmark::DoNotOptimize(m.find(k));
        break;
      default:
        m.erase(k);
    }
  }
}

void BM_FlatHashMapChurn(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  Rng rng(5);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.next_below(n / 2 + 1);
  for (auto _ : state) {
    FlatHashMap<uint64_t, uint64_t> m;
    churn_flat(m, keys);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_FlatHashMapChurn)->Arg(1 << 14)->Arg(1 << 18);

void BM_StdUnorderedMapChurn(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  Rng rng(5);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.next_below(n / 2 + 1);
  for (auto _ : state) {
    std::unordered_map<uint64_t, uint64_t> m;
    churn_flat(m, keys);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_StdUnorderedMapChurn)->Arg(1 << 14)->Arg(1 << 18);

void BM_TreapSelect(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  Rng rng(2);
  CountedTreap<uint64_t> t;
  for (size_t i = 0; i < n; ++i) {
    uint64_t k = rng.next() >> 1;
    if (!t.find(k)) t.insert(k, k);
  }
  size_t sz = t.size();
  size_t i = 0;
  for (auto _ : state) {
    auto [k, v] = t.select_desc(1 + (i++ % sz));
    benchmark::DoNotOptimize(k);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_TreapSelect)->Arg(1 << 14)->Arg(1 << 18);

void BM_PriorityListNextWith(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  PriorityList<uint64_t> pl;
  for (size_t i = 0; i < n; ++i) pl.insert(i, i + 1);
  size_t q = 0;
  for (auto _ : state) {
    // Seek a value divisible by 64 starting from a rotating position.
    size_t pos = 1 + (q++ % (n - 64));
    auto r = pl.next_with(pos, [](uint64_t v) { return v % 64 == 0; });
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_PriorityListNextWith)->Arg(1 << 12)->Arg(1 << 16);

void BM_ShardedMapParallelInsert(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  for (auto _ : state) {
    ShardedMap<uint64_t, uint64_t> m(64);
    parallel_for(0, n, [&](size_t i) { m.insert_or_assign(i, i); }, 1024);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_ShardedMapParallelInsert)->Arg(1 << 14)->Arg(1 << 18);

void BM_ConcurrentFixedMapInsert(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  for (auto _ : state) {
    ConcurrentFixedMap m(n);
    parallel_for(0, n, [&](size_t i) { m.insert(i + 1, i); }, 1024);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_ConcurrentFixedMapInsert)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
