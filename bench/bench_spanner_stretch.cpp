// E2 (Theorem 1.1): measured stretch vs the (2k-1) guarantee.
//
// After a burst of random deletions, the worst stretch over remaining edges
// must stay <= 2k-1 (the oracle measures it exactly). Counters report the
// measured maximum and the bound.
#include <benchmark/benchmark.h>

#include <cmath>
#include <unordered_set>

#include "core/fully_dynamic_spanner.hpp"
#include "graph/generators.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

void BM_SpannerStretch(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  uint32_t k = uint32_t(state.range(1));
  // Denser than n^{1+1/k}: below that the spanner may keep every edge and
  // the measured stretch degenerates to 1.
  size_t m = std::min(n * (n - 1) / 2,
                      size_t(3.0 * std::pow(double(n), 1.0 + 1.0 / k)));
  auto edges = gen_erdos_renyi(n, m, 7 + n);
  uint32_t worst = 0;
  for (auto _ : state) {
    FullyDynamicSpannerConfig cfg;
    cfg.k = k;
    cfg.seed = 5;
    FullyDynamicSpanner sp(n, edges, cfg);
    // Delete a third of the edges in batches, then measure.
    auto stream = gen_decremental_stream(edges, edges.size() / 10, 99);
    std::vector<Edge> alive = edges;
    for (size_t b = 0; b < 3 && b < stream.size(); ++b) {
      sp.delete_edges(stream[b].deletions);
      std::unordered_set<EdgeKey> dead;
      for (auto& e : stream[b].deletions) dead.insert(e.key());
      std::vector<Edge> next;
      for (auto& e : alive)
        if (!dead.count(e.key())) next.push_back(e);
      alive = std::move(next);
    }
    uint32_t s =
        max_edge_stretch(n, alive, sp.spanner_edges(), 2 * k - 1);
    worst = std::max(worst, s);
    benchmark::DoNotOptimize(s);
  }
  state.counters["measured_stretch"] = double(worst);
  state.counters["bound_2k-1"] = double(2 * k - 1);
}

BENCHMARK(BM_SpannerStretch)
    ->ArgsProduct({{256, 512, 1024}, {2, 3, 4}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
