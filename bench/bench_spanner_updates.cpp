// E3 (Theorem 1.1): amortized update cost and recourse per edge vs batch
// size. The theorem predicts O(k log^2 n) amortized work and recourse per
// updated edge, independent of the batch size; wall-clock per edge should
// therefore flatten (and improve with batching constants).
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/fully_dynamic_spanner.hpp"
#include "graph/generators.hpp"

namespace parspan {
namespace {

void BM_SpannerUpdates(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  size_t batch = size_t(state.range(1));
  uint32_t k = 3;
  // Denser than n^{1+1/k} so the decremental instances do real work.
  size_t m = size_t(3.0 * std::pow(double(n), 1.0 + 1.0 / k));
  auto [initial, batches] = gen_mixed_stream(n, m, batch, 40, 17);
  double recourse = 0, edges_updated = 0;
  for (auto _ : state) {
    state.PauseTiming();
    FullyDynamicSpannerConfig cfg;
    cfg.k = k;
    cfg.seed = 3;
    FullyDynamicSpanner sp(n, initial, cfg);
    recourse = 0;
    edges_updated = 0;
    state.ResumeTiming();
    for (auto& b : batches) {
      auto diff = sp.update(b.insertions, b.deletions);
      recourse += double(diff.inserted.size() + diff.removed.size());
      edges_updated += double(b.insertions.size() + b.deletions.size());
    }
  }
  state.counters["recourse_per_edge"] = recourse / edges_updated;
  state.counters["edges_updated"] = edges_updated;
  state.SetItemsProcessed(int64_t(edges_updated) *
                          int64_t(state.iterations()));
}

BENCHMARK(BM_SpannerUpdates)
    ->ArgsProduct({{1024, 4096}, {16, 64, 256, 1024}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
