// E10: parallel scalability. The work-depth claims are machine-independent
// (phases counters); wall-clock scaling on this host compares 1 vs all
// worker threads on batch updates and on the parallel substrate.
#include <benchmark/benchmark.h>

#include "core/fully_dynamic_spanner.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"

namespace parspan {
namespace {

void BM_UpdateThreads(benchmark::State& state) {
  int threads = int(state.range(0));
  const size_t n = 4096;
  auto [initial, batches] = gen_mixed_stream(n, 8 * n, 1024, 8, 3);
  int saved = num_workers();
  set_num_workers(threads);
  for (auto _ : state) {
    state.PauseTiming();
    FullyDynamicSpannerConfig cfg;
    cfg.k = 3;
    cfg.seed = 1;
    FullyDynamicSpanner sp(n, initial, cfg);
    state.ResumeTiming();
    for (auto& b : batches) {
      auto d = sp.update(b.insertions, b.deletions);
      benchmark::DoNotOptimize(d.inserted.size());
    }
  }
  set_num_workers(saved);
  state.counters["threads"] = double(threads);
}

BENCHMARK(BM_UpdateThreads)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SortThreads(benchmark::State& state) {
  int threads = int(state.range(0));
  Rng rng(4);
  std::vector<uint64_t> base(1 << 21);
  for (auto& x : base) x = rng.next();
  int saved = num_workers();
  set_num_workers(threads);
  for (auto _ : state) {
    auto xs = base;
    parallel_sort(xs);
    benchmark::DoNotOptimize(xs.data());
  }
  set_num_workers(saved);
  state.counters["threads"] = double(threads);
}

BENCHMARK(BM_SortThreads)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
