// E4 (Theorem 1.2): Even-Shiloach tree amortized work per deletion vs the
// depth bound L. The theorem predicts O(L log n) amortized work per deleted
// edge; the structure's scan_steps counter measures the dominant term
// directly (machine-independently), and phases measure the depth proxy.
#include <benchmark/benchmark.h>

#include "core/es_tree.hpp"
#include "graph/generators.hpp"

namespace parspan {
namespace {

void BM_ESTreeDeletions(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  uint32_t L = uint32_t(state.range(1));
  auto edges = gen_erdos_renyi(n, 6 * n, 3);
  std::vector<std::pair<VertexId, VertexId>> arcs;
  std::vector<uint64_t> keys;
  for (const Edge& e : edges) {
    arcs.push_back({e.u, e.v});
    keys.push_back(arcs.size());
    arcs.push_back({e.v, e.u});
    keys.push_back(arcs.size());
  }
  double scan_per_del = 0, phases = 0, deletions = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ESTree t;
    t.init(n, arcs, keys, 0, L);
    t.counters().reset();
    Rng rng(11);
    std::vector<uint32_t> order(edges.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    for (size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.next_below(i)]);
    state.ResumeTiming();
    deletions = 0;
    phases = 0;
    const size_t batch = 64;
    for (size_t lo = 0; lo < order.size(); lo += batch) {
      std::vector<uint32_t> doomed;
      for (size_t i = lo; i < std::min(order.size(), lo + batch); ++i) {
        doomed.push_back(2 * order[i]);
        doomed.push_back(2 * order[i] + 1);
      }
      auto rep = t.delete_arcs(doomed);
      phases += double(rep.phases);
      deletions += double(doomed.size());
    }
    scan_per_del = double(t.counters().scan_steps) / deletions;
  }
  state.counters["scan_per_deletion"] = scan_per_del;
  state.counters["L"] = double(L);
  state.counters["phases_total"] = phases;
  state.SetItemsProcessed(int64_t(deletions) * int64_t(state.iterations()));
}

BENCHMARK(BM_ESTreeDeletions)
    ->ArgsProduct({{1024, 4096}, {4, 8, 16, 32}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
