// E8 (Theorem 1.6 / Lemma 6.6): sparsifier quality (measured epsilon on
// random cuts and quadratic forms) and size, as the bundle depth t grows.
// The theory predicts quality improving with t at an O(n t polylog) size
// cost; the crossover t is far below the theorem's worst-case constants.
#include <benchmark/benchmark.h>

#include "core/sparsifier.hpp"
#include "graph/generators.hpp"
#include "verify/laplacian.hpp"

namespace parspan {
namespace {

void BM_SparsifierQuality(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  uint32_t t = uint32_t(state.range(1));
  auto edges = gen_erdos_renyi(n, 20 * n, 3);
  double cut_err = 0, form_err = 0, size = 0;
  for (auto _ : state) {
    SparsifierConfig cfg;
    cfg.t = t;
    cfg.instances = 5;  // practical forest count (the w.h.p. default would
                        // absorb the whole graph at these sizes)
    cfg.seed = 11;
    DecrementalSparsifier sp(n, edges, cfg);
    auto q = sparsifier_quality(n, edges, sp.sparsifier_edges(), 20, 20, 9);
    cut_err = q.max_cut_err;
    form_err = q.max_form_err;
    size = double(sp.size());
  }
  state.counters["eps_cut"] = cut_err;
  state.counters["eps_form"] = form_err;
  state.counters["H_edges"] = size;
  state.counters["keep_fraction"] = size / double(edges.size());
}

BENCHMARK(BM_SparsifierQuality)
    ->ArgsProduct({{256, 512}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SparsifierUpdates(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto edges = gen_erdos_renyi(n, 16 * n, 5);
  double recourse = 0, deleted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SparsifierConfig cfg;
    cfg.t = 2;
    cfg.seed = 7;
    DecrementalSparsifier sp(n, edges, cfg);
    auto stream = gen_decremental_stream(edges, 128, 3);
    recourse = deleted = 0;
    state.ResumeTiming();
    for (auto& b : stream) {
      auto d = sp.delete_edges(b.deletions);
      recourse += double(d.inserted.size() + d.removed.size());
      deleted += double(b.deletions.size());
    }
  }
  state.counters["recourse_per_del"] = recourse / deleted;
  state.SetItemsProcessed(int64_t(deleted) * int64_t(state.iterations()));
}

BENCHMARK(BM_SparsifierUpdates)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
