// Service-layer benchmarks (DESIGN.md §8): mixed read/write throughput of
// the concurrent serving stack, and the incremental snapshot publish
// against a full re-export.
//
// BM_ServiceMixedReadWrite: one writer thread applies batches at a fixed
// pace (publishing one snapshot version per batch) while `readers` threads
// hammer the store — acquire a snapshot, answer a block of has_edge /
// neighbors / bounded-BFS distance queries against it, re-acquire. The
// reported `agg_reads_per_sec` is the aggregate query rate across readers;
// scaling it with the reader count at a fixed write rate is the layer's
// acceptance criterion (read-side work shares nothing but the immutable
// snapshot, so on a multi-core host it scales with cores).
//
// BM_SnapshotPublish / BM_SnapshotReexport: the cost of producing the next
// version incrementally (diff merge + CSR rebuild) vs re-exporting
// spanner_edges() and rebuilding from scratch — the trade the incremental
// path exists for.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "graph/generators.hpp"
#include "service/spanner_service.hpp"

namespace parspan {
namespace {

// PARSPAN_BENCH_TINY=1: smoke-test sizes for the CI bench-smoke job (the
// fixture costs dominate a --benchmark_min_time=0.01s run at full size).
const bool kTiny = [] {
  const char* e = std::getenv("PARSPAN_BENCH_TINY");
  return e != nullptr && *e != '\0' && *e != '0';
}();

const size_t kN = kTiny ? 512 : 4096;
constexpr uint32_t kK = 3;
const size_t kBatch = kTiny ? 32 : 64;
const size_t kNumBatches = kTiny ? 4 : 24;

std::unique_ptr<SpannerService> make_service(
    std::vector<Edge> const& initial) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = kK;
  cfg.seed = 3;
  return std::make_unique<SpannerService>(
      std::make_unique<FullyDynamicSpanner>(kN, initial, cfg), 2 * kK - 1);
}

void BM_ServiceMixedReadWrite(benchmark::State& state) {
  const int readers = int(state.range(0));
  const size_t m = size_t(3.0 * std::pow(double(kN), 1.0 + 1.0 / kK));
  auto [initial, batches] =
      gen_mixed_stream(kN, m, kBatch, kNumBatches, 17);

  double total_reads = 0, total_secs = 0, batches_applied = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto svc = make_service(initial);
    std::atomic<bool> done{false};
    std::vector<uint64_t> reads(size_t(readers), 0);
    state.ResumeTiming();

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    pool.reserve(size_t(readers));
    for (int t = 0; t < readers; ++t) {
      pool.emplace_back([&, t] {
        uint64_t ops = 0, sink = 0;
        uint64_t x = uint64_t(t) * 0x9e3779b97f4a7c15ULL + 1;
        while (!done.load(std::memory_order_acquire)) {
          SpannerSnapshot::Ptr s = svc->snapshot();
          // One pinned snapshot serves a block of queries — the
          // per-request pattern of a serving frontend.
          for (int q = 0; q < 64; ++q) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;  // xorshift64
            VertexId u = VertexId(x % kN);
            auto nb = s->neighbors(u);
            sink += nb.size();
            VertexId v = nb.empty() ? VertexId((u + 1) % kN)
                                    : nb[size_t(x >> 32) % nb.size()];
            sink += s->has_edge(u, v);
            if ((q & 15) == 0) sink += s->distance(u, v, 3);
            ++ops;
          }
        }
        benchmark::DoNotOptimize(sink);
        reads[size_t(t)] = ops;
      });
    }

    // Fixed write rate: one batch every 10 ms, regardless of reader count.
    // The period is chosen well above a solo apply() (~2.5 ms at this size)
    // so the pace genuinely holds when cores are available; the
    // writes_per_sec counter reports the achieved rate — if it sags below
    // ~100/s the host is oversubscribed (e.g. a 1-core container
    // time-slicing readers against the writer) and the read-scaling
    // numbers should be read accordingly.
    for (auto& b : batches) {
      auto next = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(10);
      svc->apply(b.insertions, b.deletions);
      std::this_thread::sleep_until(next);
    }
    done.store(true, std::memory_order_release);
    for (auto& th : pool) th.join();
    auto t1 = std::chrono::steady_clock::now();

    double secs = std::chrono::duration<double>(t1 - t0).count();
    for (uint64_t r : reads) total_reads += double(r);
    total_secs += secs;
    batches_applied += double(kNumBatches);
  }
  state.counters["agg_reads_per_sec"] = total_reads / total_secs;
  state.counters["reads_per_sec_per_reader"] =
      total_reads / total_secs / double(readers);
  state.counters["writes_per_sec"] = batches_applied / total_secs;
  state.counters["readers"] = double(readers);
  state.SetItemsProcessed(int64_t(total_reads));
}

BENCHMARK(BM_ServiceMixedReadWrite)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

// --- Incremental publish vs full re-export. -------------------------------

void BM_SnapshotPublish(benchmark::State& state) {
  const size_t m = size_t(3.0 * std::pow(double(kN), 1.0 + 1.0 / kK));
  auto [initial, batches] = gen_mixed_stream(kN, m, kBatch, kNumBatches, 17);
  FullyDynamicSpannerConfig cfg;
  cfg.k = kK;
  cfg.seed = 3;
  FullyDynamicSpanner sp(kN, initial, cfg);
  auto snap = SpannerSnapshot::initial(kN, sp.spanner_edges(), 2 * kK - 1);
  // Pre-run the updates; replay the recorded diffs through the snapshot
  // layer alone, so the timing isolates the publish path.
  std::vector<SpannerDiff> diffs;
  for (auto& b : batches) diffs.push_back(sp.update(b.insertions, b.deletions));
  size_t published = 0;
  for (auto _ : state) {
    auto cur = snap;
    for (auto& d : diffs) {
      cur = SpannerSnapshot::apply(*cur, d);
      benchmark::DoNotOptimize(cur->checksum());
      ++published;
    }
  }
  state.SetItemsProcessed(int64_t(published));
}

BENCHMARK(BM_SnapshotPublish)->Unit(benchmark::kMillisecond);

void BM_SnapshotReexport(benchmark::State& state) {
  // The alternative the incremental path replaces: export the full spanner
  // from the dynamic structure and rebuild a snapshot per batch.
  const size_t m = size_t(3.0 * std::pow(double(kN), 1.0 + 1.0 / kK));
  auto initial = gen_erdos_renyi(kN, m, 17);
  FullyDynamicSpannerConfig cfg;
  cfg.k = kK;
  cfg.seed = 3;
  FullyDynamicSpanner sp(kN, initial, cfg);
  size_t published = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < kNumBatches; ++i) {
      auto cur = SpannerSnapshot::initial(kN, sp.spanner_edges(), 2 * kK - 1);
      benchmark::DoNotOptimize(cur->checksum());
      ++published;
    }
  }
  state.SetItemsProcessed(int64_t(published));
}

BENCHMARK(BM_SnapshotReexport)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
