// Microbenchmarks for the work-stealing scheduler (DESIGN.md §12): the
// price of a fork-join task, steal throughput when one worker produces and
// the rest consume, and the end-to-end loop primitives on top. These
// calibrate the lazy-splitting grain heuristic and catch regressions in the
// deque / doorbell hot paths.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

/// Scoped worker-count override: overhead/steal benches need real
/// parallelism even on the 1-core CI container, while the loop-primitive
/// medians run at the environment's default so they stay comparable with
/// the other BENCH_*.json trajectories.
class WorkerOverride {
 public:
  explicit WorkerOverride(int p) : prev_(num_workers()) { set_num_workers(p); }
  ~WorkerOverride() { set_num_workers(prev_); }

 private:
  int prev_;
};

/// Serial floor for the fork-join overhead comparison: the same trip count
/// with zero scheduling.
void BM_SerialLoopBaseline(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  for (auto _ : state) {
    uint64_t acc = 0;
    for (size_t i = 0; i < n; ++i) acc += i;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_SerialLoopBaseline)->Arg(1 << 10)->Arg(1 << 14);

/// Fork-join overhead: grain=1 forces the task path, so every iteration is
/// a potential split point — items/sec against the serial floor prices one
/// spawned task (allocation + deque push + doorbell).
void BM_ForkJoinOverhead(benchmark::State& state) {
  WorkerOverride workers(4);
  size_t n = size_t(state.range(0));
  std::vector<std::atomic<uint64_t>> sink(64);
  for (auto _ : state) {
    parallel_for(
        0, n,
        [&](size_t i) {
          sink[i & 63].fetch_add(i, std::memory_order_relaxed);
        },
        /*grain=*/1);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_ForkJoinOverhead)->Arg(1 << 10)->Arg(1 << 14);

/// Steal throughput: a root chain on one worker spawns a long run of tiny
/// tasks with a deliberately dry deque (grain=1, tiny bodies), so the other
/// workers live off steals; tasks/sec measures the deque CAS + doorbell
/// round-trip under contention.
void BM_StealThroughput(benchmark::State& state) {
  WorkerOverride workers(4);
  Scheduler& s = Scheduler::instance();
  size_t n = size_t(state.range(0));
  uint64_t stolen_before = s.tasks_stolen();
  for (auto _ : state) {
    std::atomic<uint64_t> acc{0};
    parallel_for(
        0, n, [&](size_t) { acc.fetch_add(1, std::memory_order_relaxed); },
        /*grain=*/1);
    benchmark::DoNotOptimize(acc.load());
  }
  state.counters["steals"] = benchmark::Counter(
      double(s.tasks_stolen() - stolen_before), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_StealThroughput)->Arg(1 << 12);

/// parallel_for at the default adaptive grain — the shape every hot loop in
/// core/ runs through.
void BM_ParallelFor(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  std::vector<uint64_t> xs(n);
  for (auto _ : state) {
    parallel_for(0, n, [&](size_t i) { xs[i] = i * 2654435761u; });
    benchmark::DoNotOptimize(xs.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_ParallelFor)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

/// Fixed-shape deterministic reduction (float sum — the non-commutative
/// case the tree shape exists for).
void BM_ParallelReduce(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  std::vector<float> xs(n);
  Rng rng(5);
  for (auto& x : xs) x = float(rng.next_below(1000)) * 1e-3f;
  for (auto _ : state) {
    float sum = parallel_reduce(
        size_t{0}, n, 0.0f, [&](size_t i) { return xs[i]; },
        [](float a, float b) { return a + b; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_ParallelReduce)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

/// parallel_sort rides parallel_for for both the block sorts and the merge
/// rounds; this complements BM_Sort in bench_primitives with a scheduler-
/// focused size point.
void BM_ParallelSortScheduler(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  Rng rng(9);
  std::vector<uint64_t> base(n);
  for (auto& x : base) x = rng.next();
  for (auto _ : state) {
    auto xs = base;
    parallel_sort(xs);
    benchmark::DoNotOptimize(xs.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_ParallelSortScheduler)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
