// Durability benchmarks (DESIGN.md §10.7): what write-ahead logging costs
// on the saturated ingest path, and what recovery costs as the log grows.
//
// BM_WalIngest measures STEADY-STATE ingest: one long-lived service per
// policy (durability off / every-record / every-N sweep / timed 50ms) over
// a real PosixFs tempdir, batches cycling from a fixed pool, checkpoints
// firing at their configured cadence inside the measured loop — so the
// number is the real amortized cost of the protocol, not the tail latency
// of a just-written genesis checkpoint. Reported as edges/sec. The
// acceptance bar of PR 6 — every-N overhead <= 15% vs WAL-off on the
// 1-core reference container — is read off the sweep: fdatasync latency on
// the container's shared virtio disk is ~0.2ms median with a multi-ms p90
// against ~0.3ms applies, so N=8 amortizes to tens of percent while
// N=128 is log-path-bound (~10%). run_benches.sh records the median of
// several repetitions to damp the device's tail.
//
// BM_WalRecover: checkpoint + L-record log tail (checkpointing disabled so
// the tail grows unboundedly), measuring ShardDurability::recover — the
// checksum-verified replay — as records/sec. This is the curve that says
// how much crash-recovery time a checkpoint cadence buys.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "durability/durable_shard.hpp"
#include "durability/fs.hpp"
#include "graph/generators.hpp"
#include "service/spanner_service.hpp"

namespace parspan {
namespace {

const bool kTiny = [] {
  const char* e = std::getenv("PARSPAN_BENCH_TINY");
  return e != nullptr && *e != '\0' && *e != '0';
}();

const size_t kN = kTiny ? 256 : 4096;
constexpr uint32_t kK = 3;
const size_t kBatch = kTiny ? 32 : 128;
const size_t kPoolBatches = kTiny ? 32 : 256;

std::string fresh_tmpdir() {
  char tmpl[] = "/tmp/parspan_wal_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  return dir != nullptr ? dir : "/tmp/parspan_wal_fallback";
}

std::unique_ptr<SpannerService> make_service(const std::vector<Edge>& initial,
                                             uint64_t seed) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = kK;
  cfg.seed = seed;
  return std::make_unique<SpannerService>(
      std::make_unique<FullyDynamicSpanner>(kN, initial, cfg), 2 * kK - 1);
}

// One long-lived ingest rig per policy mode, reused across the estimation
// and measurement runs of the same benchmark (Google Benchmark calls the
// function several times; steady state must survive those calls).
struct IngestRig {
  std::unique_ptr<SpannerService> svc;
  std::vector<UpdateBatch> pool;
  std::string dir;
  size_t next = 0;
  bool ok = false;

  ~IngestRig() {
    svc.reset();
    if (!dir.empty()) std::filesystem::remove_all(dir);
  }
};

// mode: 0 = durability off, 1 = every-record, 2 = every-8, 3 = every-32,
// 4 = every-128, 5 = timed(50ms).
IngestRig& ingest_rig(int mode) {
  static IngestRig rigs[6];
  IngestRig& rig = rigs[mode];
  if (rig.svc != nullptr) return rig;
  auto [initial, batches] =
      gen_mixed_stream(kN, 6 * kN, kBatch, kPoolBatches, 17);
  rig.pool = std::move(batches);
  rig.svc = make_service(initial, 3);
  rig.ok = true;
  if (mode != 0) {
    rig.dir = fresh_tmpdir();
    DurabilityOptions opts;
    opts.fsync_policy = mode == 1   ? FsyncPolicy::kEveryRecord
                        : mode == 5 ? FsyncPolicy::kTimed
                                    : FsyncPolicy::kEveryN;
    opts.fsync_every_n = mode == 2 ? 8 : mode == 3 ? 32 : 128;
    opts.fsync_interval = std::chrono::milliseconds(50);
    // Large enough that a checkpoint is periodic background work, small
    // enough that the measured loop pays its real amortized share. The
    // BM_WalRecover curve prices the flip side (larger cadence = longer
    // replay after a crash).
    opts.checkpoint_every = kTiny ? 64 : 1024;
    rig.ok = rig.svc->enable_durability(std::make_shared<PosixFs>(), rig.dir,
                                        opts, initial);
  }
  // Warm past the genesis checkpoint's journal traffic so the measured
  // iterations see steady state from the first sample.
  for (size_t i = 0; rig.ok && i < 16; ++i) {
    const UpdateBatch& b = rig.pool[rig.next++ % rig.pool.size()];
    rig.svc->apply(b.insertions, b.deletions);
  }
  return rig;
}

void BM_WalIngest(benchmark::State& state) {
  IngestRig& rig = ingest_rig(int(state.range(0)));
  if (!rig.ok) {
    state.SkipWithError("enable_durability failed");
    return;
  }
  size_t edges = 0;
  for (auto _ : state) {
    const UpdateBatch& b = rig.pool[rig.next++ % rig.pool.size()];
    rig.svc->apply(b.insertions, b.deletions);
    edges += b.insertions.size() + b.deletions.size();
  }
  if (rig.svc->durability() != nullptr && rig.svc->durability()->failed())
    state.SkipWithError("WAL went sticky-failed mid-bench");
  state.counters["edges_per_sec"] =
      benchmark::Counter(double(edges), benchmark::Counter::kIsRate);
  state.counters["batch_edges"] = double(kBatch);
}
BENCHMARK(BM_WalIngest)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMicrosecond);

// range(0): WAL records replayed by each recovery.
void BM_WalRecover(benchmark::State& state) {
  const size_t log_len = size_t(state.range(0));
  auto [initial, batches] = gen_mixed_stream(kN, 6 * kN, kBatch, log_len, 29);

  auto fs = std::make_shared<PosixFs>();
  const std::string dir = fresh_tmpdir();
  DurabilityOptions opts;
  opts.checkpoint_every = 0;  // genesis checkpoint only: the tail IS the log
  {
    auto svc = make_service(initial, 5);
    if (!svc->enable_durability(fs, dir, opts, initial)) {
      state.SkipWithError("enable_durability failed");
      return;
    }
    for (const auto& b : batches) svc->apply(b.insertions, b.deletions);
    if (svc->durability()->failed()) {
      state.SkipWithError("WAL went sticky-failed in setup");
      return;
    }
  }

  double total_records = 0;
  for (auto _ : state) {
    auto rec = ShardDurability::recover(fs, dir, opts);
    if (!rec || rec->version != log_len)
      state.SkipWithError("recovery incomplete");
    benchmark::DoNotOptimize(rec);
    total_records += double(log_len);
  }
  state.counters["records_per_sec"] =
      benchmark::Counter(total_records, benchmark::Counter::kIsRate);
  state.counters["log_records"] = double(log_len);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalRecover)
    ->Arg(kTiny ? 8 : 64)
    ->Arg(kTiny ? 16 : 256)
    ->Arg(kTiny ? 32 : 1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
