// Replication benchmarks (DESIGN.md §11): what WAL shipping costs on top
// of ingest, how fast a lagging follower closes a gap, and what a failover
// promotion costs end to end.
//
// All three run over MemFs + ChannelTransport: the subject is the
// replication protocol (frame encode/verify, checked replay, the
// follower's own WAL/checkpoint chain), not disk or network latency —
// bench_wal.cpp already prices the disk.
//
// BM_ShipApplyThroughput: steady-state leader apply -> ship -> follower
// verified-apply, one pump round per batch (the replication thread's loop
// body), reported as edges/sec through BOTH sides.
//
// BM_FollowerCatchup: the follower sits out L batches, then one pump
// round ships and applies the whole (cursor, durable] gap — the record
// path only (a snapshot resync mid-measurement is a skip error), reported
// as records/sec. This is the curve that says how much lag a pump cadence
// can carry before snapshot resync becomes the cheaper bootstrap.
//
// BM_FailoverPromote: SpannerService::recover over a converged follower's
// own chain — exactly promote_follower's work: checksum-verified replay,
// backend rebuild, rebase publish, forced checkpoint. Reported per
// promotion; this is the wall-clock cost of losing a leader.
//
// BM_Tcp*: the same three questions over REAL loopback sockets —
// ReplicationListener + SocketTransport, the exact path replicad runs —
// so the JSON trajectory prices frame framing, CRC-on-the-wire, and
// kernel socket hops on top of the protocol-only numbers above.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "durability/fault_fs.hpp"
#include "graph/generators.hpp"
#include "replication/follower.hpp"
#include "replication/log_shipper.hpp"
#include "replication/replica_set.hpp"
#include "replication/socket_transport.hpp"
#include "service/spanner_service.hpp"

namespace parspan {
namespace {

const bool kTiny = [] {
  const char* e = std::getenv("PARSPAN_BENCH_TINY");
  return e != nullptr && *e != '\0' && *e != '0';
}();

const size_t kN = kTiny ? 256 : 2048;
constexpr uint32_t kK = 3;
const size_t kBatch = kTiny ? 32 : 128;
const size_t kPoolBatches = kTiny ? 32 : 256;

std::unique_ptr<SpannerService> make_service(const std::vector<Edge>& initial,
                                             uint64_t seed) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = kK;
  cfg.seed = seed;
  return std::make_unique<SpannerService>(
      std::make_unique<FullyDynamicSpanner>(kN, initial, cfg), 2 * kK - 1);
}

// One long-lived leader + 1-follower group, reused across benchmark calls
// (steady state must survive the estimation runs).
struct ReplRig {
  std::shared_ptr<MemFs> leader_fs;
  std::shared_ptr<MemFs> follower_fs;
  std::unique_ptr<SpannerService> svc;
  std::unique_ptr<ReplicationGroup> group;
  std::vector<UpdateBatch> pool;
  size_t next = 0;
  bool ok = false;
};

ReplRig& repl_rig() {
  static ReplRig rig;
  if (rig.svc != nullptr) return rig;
  auto [initial, batches] =
      gen_mixed_stream(kN, 6 * kN, kBatch, kPoolBatches, 17);
  rig.pool = std::move(batches);
  rig.leader_fs = std::make_shared<MemFs>();
  rig.follower_fs = std::make_shared<MemFs>();
  rig.svc = make_service(initial, 3);
  DurabilityOptions opts;
  opts.checkpoint_every = 256;
  opts.keep_checkpoints = 4;  // retain enough WAL for any lagging cursor
  rig.ok = rig.svc->enable_durability(rig.leader_fs, "leader", opts, initial);
  if (!rig.ok) return rig;
  rig.group = std::make_unique<ReplicationGroup>(rig.svc.get(), /*epoch=*/1);
  rig.group->add_follower(std::make_shared<ChannelTransport>(),
                          rig.follower_fs, "f0", opts);
  // Warm until the follower has adopted its seed snapshot and tracks the
  // leader incrementally — measured iterations are record-path only.
  for (int i = 0; i < 4; ++i) rig.group->pump();
  for (size_t i = 0; i < 8; ++i) {
    const UpdateBatch& b = rig.pool[rig.next++ % rig.pool.size()];
    rig.svc->apply(b.insertions, b.deletions);
    rig.group->pump();
  }
  rig.ok = rig.group->converged();
  return rig;
}

void BM_ShipApplyThroughput(benchmark::State& state) {
  ReplRig& rig = repl_rig();
  if (!rig.ok) {
    state.SkipWithError("replication rig failed to converge");
    return;
  }
  size_t edges = 0;
  for (auto _ : state) {
    const UpdateBatch& b = rig.pool[rig.next++ % rig.pool.size()];
    rig.svc->apply(b.insertions, b.deletions);
    rig.group->pump();
    edges += b.insertions.size() + b.deletions.size();
  }
  if (!rig.group->converged() || rig.group->follower(0).rejects() != 0) {
    state.SkipWithError("follower diverged mid-bench");
    return;
  }
  state.counters["edges_per_sec"] =
      benchmark::Counter(double(edges), benchmark::Counter::kIsRate);
  state.counters["batch_edges"] = double(kBatch);
}
BENCHMARK(BM_ShipApplyThroughput)->Unit(benchmark::kMicrosecond);

// range(0): how many records behind the follower starts.
void BM_FollowerCatchup(benchmark::State& state) {
  ReplRig& rig = repl_rig();
  if (!rig.ok) {
    state.SkipWithError("replication rig failed to converge");
    return;
  }
  const size_t lag = size_t(state.range(0));
  double total_records = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const uint64_t resyncs = rig.group->follower(0).snapshot_resyncs();
    for (size_t i = 0; i < lag; ++i) {
      const UpdateBatch& b = rig.pool[rig.next++ % rig.pool.size()];
      rig.svc->apply(b.insertions, b.deletions);
    }
    state.ResumeTiming();
    for (int round = 0; round < 4 && !rig.group->converged(); ++round)
      rig.group->pump();
    if (!rig.group->converged())
      state.SkipWithError("catch-up did not converge");
    if (rig.group->follower(0).snapshot_resyncs() != resyncs)
      state.SkipWithError("snapshot resync during record catch-up");
    total_records += double(lag);
  }
  state.counters["records_per_sec"] =
      benchmark::Counter(total_records, benchmark::Counter::kIsRate);
  state.counters["lag_records"] = double(lag);
}
BENCHMARK(BM_FollowerCatchup)
    ->Arg(kTiny ? 4 : 16)
    ->Arg(kTiny ? 8 : 64)
    ->Unit(benchmark::kMillisecond);

// Promotion cost: recover a full leader from a converged follower's own
// chain. Each iteration replays the chain, rebuilds the backend, publishes
// the rebase, and cuts the forced checkpoint — then tears the new leader
// down so the next iteration gets the chain back (each cycle appends one
// rebase record, so the chain stays ~constant size).
void BM_FailoverPromote(benchmark::State& state) {
  auto [initial, batches] =
      gen_mixed_stream(kN, 6 * kN, kBatch, kTiny ? 16 : 64, 29);
  auto leader_fs = std::make_shared<MemFs>();
  auto follower_fs = std::make_shared<MemFs>();
  DurabilityOptions opts;
  opts.checkpoint_every = 256;
  FullyDynamicSpannerConfig cfg;
  cfg.k = kK;
  cfg.seed = 5;
  {
    auto svc = make_service(initial, 5);
    if (!svc->enable_durability(leader_fs, "leader", opts, initial)) {
      state.SkipWithError("enable_durability failed");
      return;
    }
    ReplicationGroup group(svc.get(), /*epoch=*/1);
    group.add_follower(std::make_shared<ChannelTransport>(), follower_fs,
                       "f0", opts);
    for (const auto& b : batches) {
      svc->apply(b.insertions, b.deletions);
      group.pump();
    }
    group.pump();
    if (!group.converged()) {
      state.SkipWithError("setup follower did not converge");
      return;
    }
  }  // follower torn down: its WAL is closed, the chain is promotable

  const auto make_backend = [cfg](uint64_t n, const std::vector<Edge>& edges,
                                  uint32_t) {
    return std::make_unique<FullyDynamicSpanner>(static_cast<size_t>(n),
                                                 edges, cfg);
  };
  for (auto _ : state) {
    auto promoted =
        SpannerService::recover(follower_fs, "f0", opts, make_backend);
    if (promoted == nullptr) state.SkipWithError("promotion failed");
    benchmark::DoNotOptimize(promoted);
  }
  state.counters["chain_records"] = double(batches.size());
}
BENCHMARK(BM_FailoverPromote)->Unit(benchmark::kMillisecond);

// --- TCP rows: the replicad wire path ---------------------------------------

// One long-lived leader + TCP follower over loopback: ReplicationListener
// accept, SocketTransport both ends, FollowerReplica/LogShipper pumping
// through real kernel sockets. Chain state is MemFs on both sides so the
// delta against the Channel rows above is exactly the wire.
struct TcpRig {
  std::shared_ptr<MemFs> leader_fs = std::make_shared<MemFs>();
  std::shared_ptr<MemFs> follower_fs = std::make_shared<MemFs>();
  std::unique_ptr<SpannerService> svc;
  ReplicationListener listener;
  std::shared_ptr<SocketTransport> dialed;    // follower end
  std::shared_ptr<SocketTransport> accepted;  // leader end
  std::unique_ptr<FollowerReplica> follower;
  std::unique_ptr<LogShipper> shipper;
  std::vector<UpdateBatch> pool;
  size_t next = 0;
  bool ok = false;

  // Drives both pump loops until the follower has verified-applied the
  // leader's durable watermark. False on wire death or timeout.
  bool pump_to(uint64_t durable) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (follower->applied_version() < durable) {
      follower->pump();
      accepted->poll();
      shipper->pump(durable);
      if (dialed->peer_gone() || accepted->peer_gone() ||
          std::chrono::steady_clock::now() > deadline)
        return false;
    }
    return true;
  }
};

TcpRig& tcp_rig() {
  static TcpRig rig;
  if (rig.svc != nullptr) return rig;
  auto [initial, batches] =
      gen_mixed_stream(kN, 6 * kN, kBatch, kPoolBatches, 23);
  rig.pool = std::move(batches);
  rig.svc = make_service(initial, 7);
  DurabilityOptions opts;
  opts.checkpoint_every = 256;
  opts.keep_checkpoints = 4;
  if (!rig.svc->enable_durability(rig.leader_fs, "leader", opts, initial))
    return rig;
  if (!rig.listener.start("127.0.0.1", 0)) return rig;
  rig.dialed = SocketTransport::connect("127.0.0.1", rig.listener.port(),
                                        /*follower_id=*/1);
  if (rig.dialed == nullptr) return rig;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rig.accepted == nullptr &&
         std::chrono::steady_clock::now() < deadline) {
    rig.listener.poll();
    auto got = rig.listener.take_accepted();
    if (!got.empty()) rig.accepted = std::move(got[0].transport);
  }
  if (rig.accepted == nullptr) return rig;
  rig.follower = std::make_unique<FollowerReplica>(rig.follower_fs, "f0",
                                                   opts, rig.dialed);
  rig.shipper = std::make_unique<LogShipper>(rig.leader_fs, "leader",
                                             /*epoch=*/1, rig.accepted);
  // Warm through the snapshot seeding; measured iterations are
  // record-path only, same contract as the Channel rig.
  for (size_t i = 0; i < 8; ++i) {
    const UpdateBatch& b = rig.pool[rig.next++ % rig.pool.size()];
    rig.svc->apply(b.insertions, b.deletions);
    if (!rig.pump_to(rig.svc->durability()->durable_version())) return rig;
  }
  rig.ok = rig.follower->rejects() == 0;
  return rig;
}

void BM_TcpShipApplyThroughput(benchmark::State& state) {
  TcpRig& rig = tcp_rig();
  if (!rig.ok) {
    state.SkipWithError("tcp rig failed to converge");
    return;
  }
  size_t edges = 0;
  for (auto _ : state) {
    const UpdateBatch& b = rig.pool[rig.next++ % rig.pool.size()];
    rig.svc->apply(b.insertions, b.deletions);
    if (!rig.pump_to(rig.svc->durability()->durable_version())) {
      state.SkipWithError("wire died mid-bench");
      return;
    }
    edges += b.insertions.size() + b.deletions.size();
  }
  if (rig.follower->rejects() != 0) {
    state.SkipWithError("follower rejected frames over TCP");
    return;
  }
  state.counters["edges_per_sec"] =
      benchmark::Counter(double(edges), benchmark::Counter::kIsRate);
  state.counters["batch_edges"] = double(kBatch);
}
BENCHMARK(BM_TcpShipApplyThroughput)->Unit(benchmark::kMicrosecond);

// range(0): records of lag the wire has to close in one catch-up burst.
void BM_TcpFollowerCatchup(benchmark::State& state) {
  TcpRig& rig = tcp_rig();
  if (!rig.ok) {
    state.SkipWithError("tcp rig failed to converge");
    return;
  }
  const size_t lag = size_t(state.range(0));
  double total_records = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const uint64_t resyncs = rig.follower->snapshot_resyncs();
    for (size_t i = 0; i < lag; ++i) {
      const UpdateBatch& b = rig.pool[rig.next++ % rig.pool.size()];
      rig.svc->apply(b.insertions, b.deletions);
    }
    state.ResumeTiming();
    if (!rig.pump_to(rig.svc->durability()->durable_version()))
      state.SkipWithError("tcp catch-up did not converge");
    if (rig.follower->snapshot_resyncs() != resyncs)
      state.SkipWithError("snapshot resync during record catch-up");
    total_records += double(lag);
  }
  state.counters["records_per_sec"] =
      benchmark::Counter(total_records, benchmark::Counter::kIsRate);
  state.counters["lag_records"] = double(lag);
}
BENCHMARK(BM_TcpFollowerCatchup)
    ->Arg(kTiny ? 4 : 16)
    ->Arg(kTiny ? 8 : 64)
    ->Unit(benchmark::kMillisecond);

// Failover to first serving read, over a chain the TCP path populated:
// per iteration, recover a full service from the converged follower's own
// chain and take the first snapshot read off it. Lease EXPIRY time is a
// config constant (lease_ms), not work — what failover actually costs in
// machine time is this recovery, and that is the row worth trending.
void BM_TcpFailoverToFirstServingRead(benchmark::State& state) {
  auto [initial, batches] =
      gen_mixed_stream(kN, 6 * kN, kBatch, kTiny ? 16 : 64, 31);
  DurabilityOptions opts;
  opts.checkpoint_every = 256;
  FullyDynamicSpannerConfig cfg;
  cfg.k = kK;
  cfg.seed = 11;
  auto leader_fs = std::make_shared<MemFs>();
  auto follower_fs = std::make_shared<MemFs>();
  {
    auto svc = make_service(initial, 11);
    if (!svc->enable_durability(leader_fs, "leader", opts, initial)) {
      state.SkipWithError("enable_durability failed");
      return;
    }
    ReplicationListener listener;
    if (!listener.start("127.0.0.1", 0)) {
      state.SkipWithError("listener failed to bind");
      return;
    }
    auto dialed =
        SocketTransport::connect("127.0.0.1", listener.port(), /*id=*/1);
    std::shared_ptr<SocketTransport> accepted;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (accepted == nullptr &&
           std::chrono::steady_clock::now() < deadline) {
      listener.poll();
      auto got = listener.take_accepted();
      if (!got.empty()) accepted = std::move(got[0].transport);
    }
    if (dialed == nullptr || accepted == nullptr) {
      state.SkipWithError("tcp accept failed");
      return;
    }
    FollowerReplica follower(follower_fs, "f0", opts, dialed);
    LogShipper shipper(leader_fs, "leader", /*epoch=*/1, accepted);
    for (const auto& b : batches) {
      svc->apply(b.insertions, b.deletions);
      const uint64_t durable = svc->durability()->durable_version();
      const auto d2 =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (follower.applied_version() < durable &&
             std::chrono::steady_clock::now() < d2) {
        follower.pump();
        accepted->poll();
        shipper.pump(durable);
      }
    }
    if (follower.rejects() != 0) {
      state.SkipWithError("tcp setup follower rejected frames");
      return;
    }
  }  // follower torn down: WAL closed, chain promotable

  const auto make_backend = [cfg](uint64_t n, const std::vector<Edge>& edges,
                                  uint32_t) {
    return std::make_unique<FullyDynamicSpanner>(static_cast<size_t>(n),
                                                 edges, cfg);
  };
  for (auto _ : state) {
    auto promoted =
        SpannerService::recover(follower_fs, "f0", opts, make_backend);
    if (promoted == nullptr) {
      state.SkipWithError("promotion failed");
      return;
    }
    auto snap = promoted->snapshot();  // the first read the node can serve
    benchmark::DoNotOptimize(snap->checksum());
  }
  state.counters["chain_records"] = double(batches.size());
}
BENCHMARK(BM_TcpFailoverToFirstServingRead)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
