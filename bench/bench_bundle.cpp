// E7 (Theorem 1.5): t-bundle size vs O(n t log n) and the O(1) amortized
// recourse per deleted edge.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/bundle.hpp"
#include "graph/generators.hpp"

namespace parspan {
namespace {

void BM_BundleDecremental(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  uint32_t t = uint32_t(state.range(1));
  auto edges = gen_erdos_renyi(n, 12 * n, 13);
  double init_size = 0, recourse_per_del = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BundleConfig cfg;
    cfg.t = t;
    cfg.seed = 21;
    SpannerBundle b(n, edges, cfg);
    init_size = double(b.bundle_size());
    auto stream = gen_decremental_stream(edges, 128, 5);
    state.ResumeTiming();
    double deleted = 0;
    for (auto& bb : stream) {
      b.delete_edges(bb.deletions);
      deleted += double(bb.deletions.size());
    }
    recourse_per_del = double(b.cumulative_recourse()) / deleted;
  }
  double ref = double(n) * double(t) * std::log2(double(n));
  state.counters["B_edges_init"] = init_size;
  state.counters["nt*log(n)"] = ref;
  state.counters["size_ratio"] = init_size / ref;
  state.counters["recourse_per_del"] = recourse_per_del;
  state.SetItemsProcessed(int64_t(edges.size()) *
                          int64_t(state.iterations()));
}

BENCHMARK(BM_BundleDecremental)
    ->ArgsProduct({{256, 512}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Batch-deletion throughput of the monotone O(log n)-spanner (Lemma 6.4 /
// Theorem 1.5's workhorse): O(log n) independent forest-mode instances per
// deletion batch. This is the extensions-layer analogue of
// BM_SpannerUpdates and enters BENCH_extensions.json.
void BM_MonotoneDecremental(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  size_t batch = size_t(state.range(1));
  auto edges = gen_erdos_renyi(n, 8 * n, 13);
  double recourse = 0, deleted = 0, instances = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MonotoneSpannerConfig cfg;
    cfg.seed = 21;
    MonotoneSpanner sp(n, edges, cfg);
    instances = double(sp.num_instances());
    auto stream = gen_decremental_stream(edges, batch, 5);
    recourse = deleted = 0;
    state.ResumeTiming();
    for (auto& bb : stream) {
      auto d = sp.delete_edges(bb.deletions);
      recourse += double(d.inserted.size() + d.removed.size());
      deleted += double(bb.deletions.size());
    }
  }
  state.counters["recourse_per_del"] = recourse / deleted;
  state.counters["instances"] = instances;
  state.SetItemsProcessed(int64_t(deleted) * int64_t(state.iterations()));
}

BENCHMARK(BM_MonotoneDecremental)
    ->ArgsProduct({{1024, 4096}, {256}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
