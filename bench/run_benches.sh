#!/usr/bin/env bash
# Runs the perf-gating Google Benchmark binaries and records JSON results at
# the repo root, seeding the perf trajectory tracked across PRs:
#   BENCH_spanner.json     — spanner construction + churn + update throughput
#   BENCH_primitives.json  — scan / sort / pack substrate microbenchmarks
#   BENCH_scheduler.json   — work-stealing scheduler: fork-join task
#                            overhead vs the serial floor, steal
#                            throughput, parallel_for/reduce/sort medians
#   BENCH_extensions.json  — Theorems 1.4-1.6 (ultra / bundle / sparsifier)
#                            size + batch-update throughput
#   BENCH_service.json     — serving layer: mixed read/write throughput vs
#                            reader count, incremental publish vs re-export
#   BENCH_sharded.json     — sharded ingestion: shard-count x writer-count
#                            sweep (aggregate throughput) + p50/p99
#                            ingest-to-visible latency at fixed offered load
#   BENCH_wal.json         — durability: saturated-ingest overhead of the
#                            WAL fsync policies vs WAL-off, and
#                            recovery-time vs log-length curve
#   BENCH_replication.json — WAL shipping: leader->follower ship+apply
#                            throughput, follower lag catch-up, and
#                            failover promotion cost — each in a protocol-
#                            only (ChannelTransport) row and a loopback-TCP
#                            (SocketTransport) row pricing the real wire
#   BENCH_net.json         — network front door: closed-loop request
#                            latency (p50/p99/p999) + saturated QPS via
#                            tools/loadgen at 1000 connections, plus the
#                            smoke-size config CI re-runs for deltas
#
# Usage: bench/run_benches.sh [build-dir]   (default: ./build)
#
# set -e + pipefail: a crashing bench binary aborts the script instead of
# silently writing a truncated/empty JSON for the next PR to diff against.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -x "$build_dir/bench_primitives" ]]; then
  echo "error: bench binaries not found in $build_dir" >&2
  echo "build first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# Merge several benchmark runs into one JSON document keyed by binary name.
merge() {
  python3 - "$@" <<'EOF'
import json, sys
out = {}
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    name = path.rsplit('/', 1)[-1].removesuffix('.tmp.json')
    out[name] = doc
json.dump(out, sys.stdout, indent=1)
EOF
}

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== spanner benches =="
"$build_dir/bench_cluster_churn" \
  --benchmark_format=json \
  --benchmark_filter='BM_ClusterConstruct' \
  --benchmark_min_time=2 \
  >"$tmpdir/bench_cluster_construct.tmp.json"
"$build_dir/bench_spanner_updates" \
  --benchmark_format=json \
  >"$tmpdir/bench_spanner_updates.tmp.json"
merge "$tmpdir/bench_cluster_construct.tmp.json" \
      "$tmpdir/bench_spanner_updates.tmp.json" \
  >"$repo_root/BENCH_spanner.json"
echo "wrote $repo_root/BENCH_spanner.json"

echo "== primitive benches =="
"$build_dir/bench_primitives" \
  --benchmark_format=json \
  >"$tmpdir/bench_primitives.tmp.json"
"$build_dir/bench_containers" \
  --benchmark_format=json \
  >"$tmpdir/bench_containers.tmp.json"
merge "$tmpdir/bench_primitives.tmp.json" \
      "$tmpdir/bench_containers.tmp.json" \
  >"$repo_root/BENCH_primitives.json"
echo "wrote $repo_root/BENCH_primitives.json"

echo "== extension benches (Theorems 1.4-1.6) =="
"$build_dir/bench_ultra_sparse" \
  --benchmark_format=json \
  --benchmark_filter='BM_UltraUpdates' \
  >"$tmpdir/bench_ultra_sparse.tmp.json"
"$build_dir/bench_bundle" \
  --benchmark_format=json \
  --benchmark_filter='BM_MonotoneDecremental' \
  >"$tmpdir/bench_bundle.tmp.json"
"$build_dir/bench_sparsifier" \
  --benchmark_format=json \
  --benchmark_filter='BM_SparsifierUpdates' \
  >"$tmpdir/bench_sparsifier.tmp.json"
merge "$tmpdir/bench_ultra_sparse.tmp.json" \
      "$tmpdir/bench_bundle.tmp.json" \
      "$tmpdir/bench_sparsifier.tmp.json" \
  >"$repo_root/BENCH_extensions.json"
echo "wrote $repo_root/BENCH_extensions.json"

echo "== scheduler benches (fork-join overhead + steal throughput) =="
"$build_dir/bench_scheduler" \
  --benchmark_format=json \
  >"$tmpdir/bench_scheduler.tmp.json"
merge "$tmpdir/bench_scheduler.tmp.json" \
  >"$repo_root/BENCH_scheduler.json"
echo "wrote $repo_root/BENCH_scheduler.json"

echo "== service benches (snapshot serving layer) =="
"$build_dir/bench_service" \
  --benchmark_format=json \
  >"$tmpdir/bench_service.tmp.json"
merge "$tmpdir/bench_service.tmp.json" \
  >"$repo_root/BENCH_service.json"
echo "wrote $repo_root/BENCH_service.json"

echo "== sharded ingestion benches (shard x writer sweep) =="
"$build_dir/bench_sharded" \
  --benchmark_format=json \
  >"$tmpdir/bench_sharded.tmp.json"
merge "$tmpdir/bench_sharded.tmp.json" \
  >"$repo_root/BENCH_sharded.json"
echo "wrote $repo_root/BENCH_sharded.json"

echo "== wal durability benches (fsync-policy overhead + recovery curve) =="
# fdatasync latency on the shared virtio disk has a multi-ms p90 that can
# land on any one policy's run: interleave repetitions and keep only the
# aggregate rows (the *_median entries are what compare_bench.py gates on).
"$build_dir/bench_wal" \
  --benchmark_format=json \
  --benchmark_repetitions=5 \
  --benchmark_report_aggregates_only=true \
  --benchmark_enable_random_interleaving=true \
  >"$tmpdir/bench_wal.tmp.json"
merge "$tmpdir/bench_wal.tmp.json" \
  >"$repo_root/BENCH_wal.json"
echo "wrote $repo_root/BENCH_wal.json"

echo "== replication benches (WAL shipping + follower catch-up + failover) =="
# MemFs-backed: these price the protocol (frame encode/verify, checked
# replay, the follower's own chain), not the disk — keep them off the
# virtio-noise list, plain single runs suffice. The BM_Tcp* rows run the
# same pump loops through ReplicationListener + SocketTransport on
# loopback, so the Channel-vs-Tcp delta is exactly the wire cost.
"$build_dir/bench_replication" \
  --benchmark_format=json \
  >"$tmpdir/bench_replication.tmp.json"
merge "$tmpdir/bench_replication.tmp.json" \
  >"$repo_root/BENCH_replication.json"
echo "wrote $repo_root/BENCH_replication.json"

echo "== net front door (loadgen: 1000-conn full + smoke configs) =="
# loadgen is not a google-benchmark binary but emits the same JSON shape
# (rows net/<mode>/conns:<N>/{p50,p99,p999,ns_per_req}); --full runs the
# 1000-connection config AND the smoke config in one process so CI's
# `loadgen --smoke` rows always have baseline names to diff against.
"$build_dir/loadgen" --full --json \
  >"$tmpdir/loadgen.tmp.json"
merge "$tmpdir/loadgen.tmp.json" \
  >"$repo_root/BENCH_net.json"
echo "wrote $repo_root/BENCH_net.json"
