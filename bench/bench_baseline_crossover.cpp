// E9: batch-dynamic maintenance (Theorem 1.1) vs static recompute with
// Baswana-Sen [BS07] after every batch. The dynamic structure should win
// for small batches and lose its edge as the batch approaches m (where a
// fresh static build amortizes better) — the crossover location is the
// experiment's headline shape.
#include <benchmark/benchmark.h>

#include "core/baselines/baswana_sen.hpp"
#include "core/fully_dynamic_spanner.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"

namespace parspan {
namespace {

constexpr size_t kN = 2048;
constexpr size_t kM = 8 * kN;
constexpr uint32_t kK = 3;
constexpr size_t kBatches = 12;

void BM_Dynamic(benchmark::State& state) {
  size_t batch = size_t(state.range(0));
  auto [initial, batches] = gen_mixed_stream(kN, kM, batch, kBatches, 5);
  for (auto _ : state) {
    state.PauseTiming();
    FullyDynamicSpannerConfig cfg;
    cfg.k = kK;
    cfg.seed = 9;
    FullyDynamicSpanner sp(kN, initial, cfg);
    state.ResumeTiming();
    for (auto& b : batches) {
      auto d = sp.update(b.insertions, b.deletions);
      benchmark::DoNotOptimize(d.inserted.size());
    }
  }
  state.counters["batch"] = double(batch);
  state.counters["batches"] = double(kBatches);
}

BENCHMARK(BM_Dynamic)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_StaticRecompute(benchmark::State& state) {
  size_t batch = size_t(state.range(0));
  auto [initial, batches] = gen_mixed_stream(kN, kM, batch, kBatches, 5);
  for (auto _ : state) {
    state.PauseTiming();
    DynamicGraph g(kN);
    g.insert_edges(initial);
    state.ResumeTiming();
    for (auto& b : batches) {
      g.erase_edges(b.deletions);
      g.insert_edges(b.insertions);
      auto h = baswana_sen_spanner(kN, g.edges(), kK, 3);
      benchmark::DoNotOptimize(h.size());
    }
  }
  state.counters["batch"] = double(batch);
}

BENCHMARK(BM_StaticRecompute)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
