// E12 (Lemma 3.6): the expected number of cluster reassignments per vertex
// over a full deletion sequence is at most 2 t log n. Counters report the
// measured churn against that bound.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/cluster_spanner.hpp"
#include "graph/generators.hpp"

namespace parspan {
namespace {

void BM_ClusterChurn(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  uint32_t k = uint32_t(state.range(1));
  auto edges = gen_erdos_renyi(n, 8 * n, 3);
  double churn = 0, bound = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ClusterSpannerConfig cfg;
    cfg.k = k;
    cfg.seed = 5;
    DecrementalClusterSpanner sp(n, edges, cfg);
    auto stream = gen_decremental_stream(edges, 64, 7);
    state.ResumeTiming();
    for (auto& b : stream) sp.delete_edges(b.deletions);
    churn = double(sp.cluster_changes()) / double(n);
    bound = 2.0 * double(sp.t()) * std::log2(double(n));
  }
  state.counters["churn_per_vertex"] = churn;
  state.counters["bound_2tlogn"] = bound;
  state.counters["ratio"] = churn / bound;
}

BENCHMARK(BM_ClusterChurn)
    ->ArgsProduct({{512, 1024, 2048}, {2, 3, 4}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Construction cost of one decremental instance. This is the path the
// fully-dynamic layer (Theorem 1.1) pays on every partition rebuild, so its
// constant factor dominates insertion-heavy workloads.
void BM_ClusterConstruct(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  uint32_t k = uint32_t(state.range(1));
  auto edges = gen_erdos_renyi(n, 8 * n, 3);
  ClusterSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = 5;
  size_t spanner_size = 0;
  for (auto _ : state) {
    DecrementalClusterSpanner sp(n, edges, cfg);
    spanner_size = sp.spanner_size();
    benchmark::DoNotOptimize(spanner_size);
  }
  state.counters["spanner_size"] = double(spanner_size);
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(edges.size()));
}

BENCHMARK(BM_ClusterConstruct)
    ->ArgsProduct({{1024, 4096, 16384}, {2, 3, 4}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
