// Sharded ingestion benchmarks (DESIGN.md §9): the shard-count ×
// writer-count sweep behind the scaling claim, and ingest-to-visible
// latency under a fixed offered load.
//
// BM_ShardedIngestSaturated/shards/writers: one producer thread submits a
// fixed mixed update stream as fast as backpressure allows (the router
// splits each batch across shards), then flush()es; the measured rate is
// accepted offered load per second with every accepted update applied and
// published by the time the clock stops (the flush barrier) — the edge
// count is the submit-side total, deterministic per run even when the
// queues coalesce. Sharding helps
// twice: writer threads drain independent shards genuinely in parallel on
// multi-core hosts, and each shard's backend is ~1/S of the edges, so even
// serially the per-batch structure work shrinks. The 1→4-shard ratio at 4
// writers is the acceptance number recorded in BENCH_sharded.json
// (meaningful on a multi-core host; a 1-core container only shows the
// structure-size effect).
//
// BM_ShardedIngestLatency/shards/writers: the producer paces submits at a
// fixed offered load instead (default 100 batches/s — well under
// saturation), and every submit's ingest-to-visible time (submit() until
// its covering snapshot publish) is recorded by the service; p50/p99 land
// in the counters. This is the number a latency SLO would watch: adding
// shards/writers should keep p99 flat as offered load grows.
//
// PARSPAN_BENCH_TINY=1 shrinks both to smoke-test size — the CI
// bench-smoke job builds and runs every bench binary that way, so bitrot
// in bench-only code fails PRs instead of rotting until the next manual
// run_benches.sh.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "service/sharded_service.hpp"

namespace parspan {
namespace {

const bool kTiny = [] {
  const char* e = std::getenv("PARSPAN_BENCH_TINY");
  return e != nullptr && *e != '\0' && *e != '0';
}();

const size_t kN = kTiny ? 512 : 4096;
const uint32_t kK = 3;
const size_t kBatch = kTiny ? 64 : 256;
const size_t kNumBatches = kTiny ? 6 : 32;

std::unique_ptr<ShardedSpannerService> make_sharded(
    const std::vector<Edge>& initial, uint32_t shards, int writers,
    bool record_latency) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = kK;
  cfg.seed = 3;
  ShardedConfig sc;
  sc.num_writers = writers;
  sc.record_latency = record_latency;
  return ShardedSpannerService::single_graph(kN, initial, shards, cfg, sc);
}

double percentile(std::vector<int64_t>& v, double p) {
  if (v.empty()) return 0.0;
  size_t idx = std::min(v.size() - 1, size_t(p * double(v.size() - 1) + 0.5));
  std::nth_element(v.begin(), v.begin() + ptrdiff_t(idx), v.end());
  return double(v[idx]);
}

void BM_ShardedIngestSaturated(benchmark::State& state) {
  const uint32_t shards = uint32_t(state.range(0));
  const int writers = int(state.range(1));
  const size_t m = size_t(3.0 * std::pow(double(kN), 1.0 + 1.0 / kK));
  auto [initial, batches] = gen_mixed_stream(kN, m, kBatch, kNumBatches, 17);

  double total_edges = 0, total_secs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto svc = make_sharded(initial, shards, writers, false);
    state.ResumeTiming();
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& b : batches) svc->submit(b.insertions, b.deletions);
    VersionVector vv = svc->flush();
    auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(vv);
    total_edges += double(svc->edges_ingested());
    total_secs += std::chrono::duration<double>(t1 - t0).count();
    state.PauseTiming();
    svc.reset();  // teardown off the clock
    state.ResumeTiming();
  }
  state.counters["ingest_edges_per_sec"] = total_edges / total_secs;
  state.counters["batches_per_sec"] =
      double(kNumBatches) * double(state.iterations()) / total_secs;
  state.counters["shards"] = double(shards);
  state.counters["writers"] = double(writers);
  state.SetItemsProcessed(int64_t(total_edges));
}

BENCHMARK(BM_ShardedIngestSaturated)
    ->ArgsProduct({{1, 2, 4}, {1, 4}})
    ->ArgNames({"shards", "writers"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(kTiny ? 1 : 3);

void BM_ShardedIngestLatency(benchmark::State& state) {
  const uint32_t shards = uint32_t(state.range(0));
  const int writers = int(state.range(1));
  // Fixed offered load: one batch every 10 ms (100 batches/s), chosen well
  // under the single-shard saturation point so the queue is the latency,
  // not the backlog.
  const auto period = std::chrono::milliseconds(10);
  const size_t m = size_t(3.0 * std::pow(double(kN), 1.0 + 1.0 / kK));
  auto [initial, batches] = gen_mixed_stream(kN, m, kBatch, kNumBatches, 17);

  std::vector<int64_t> samples;
  double total_secs = 0, total_edges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto svc = make_sharded(initial, shards, writers, true);
    state.ResumeTiming();
    auto t0 = std::chrono::steady_clock::now();
    auto next = t0;
    for (const auto& b : batches) {
      next += period;
      svc->submit(b.insertions, b.deletions);
      std::this_thread::sleep_until(next);
    }
    svc->flush();
    auto t1 = std::chrono::steady_clock::now();
    total_secs += std::chrono::duration<double>(t1 - t0).count();
    total_edges += double(svc->edges_ingested());
    auto s = svc->latency_samples_ns();
    samples.insert(samples.end(), s.begin(), s.end());
    state.PauseTiming();
    svc.reset();
    state.ResumeTiming();
  }
  state.counters["offered_batches_per_sec"] =
      1000.0 / double(period.count());
  state.counters["ingest_edges_per_sec"] = total_edges / total_secs;
  state.counters["p50_visible_ms"] = percentile(samples, 0.50) * 1e-6;
  state.counters["p99_visible_ms"] = percentile(samples, 0.99) * 1e-6;
  state.counters["shards"] = double(shards);
  state.counters["writers"] = double(writers);
  state.SetItemsProcessed(int64_t(samples.size()));
}

BENCHMARK(BM_ShardedIngestLatency)
    ->ArgsProduct({{1, 4}, {1, 4}})
    ->ArgNames({"shards", "writers"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(kTiny ? 1 : 2);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
