// E1 (Theorem 1.1): spanner size vs the O(n^{1+1/k} log n) bound.
//
// Rows sweep (n, k) on G(n, 8n); counters report the spanner size, the
// n^{1+1/k} reference, and their ratio — the theorem predicts a bounded
// ratio as n grows. Timing measures full initialization (O(m log n) work).
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/fully_dynamic_spanner.hpp"
#include "graph/generators.hpp"

namespace parspan {
namespace {

void BM_SpannerSize(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  uint32_t k = uint32_t(state.range(1));
  // The Bentley-Saxe partition E_0 legitimately holds everything while
  // m <= n^{1+1/k}; to exercise sparsification the graph must be denser
  // than the target size.
  size_t m = std::min(n * (n - 1) / 2,
                      size_t(4.0 * std::pow(double(n), 1.0 + 1.0 / k)));
  m = std::max(m, 8 * n);
  auto edges = gen_erdos_renyi(n, m, 42 + n);
  double size_sum = 0;
  size_t runs = 0;
  for (auto _ : state) {
    FullyDynamicSpannerConfig cfg;
    cfg.k = k;
    cfg.seed = 1000 + runs;
    FullyDynamicSpanner sp(n, edges, cfg);
    size_sum += double(sp.spanner_size());
    ++runs;
    benchmark::DoNotOptimize(sp.spanner_size());
  }
  double avg = size_sum / double(runs);
  double ref = std::pow(double(n), 1.0 + 1.0 / double(k));
  state.counters["H_edges"] = avg;
  state.counters["n^(1+1/k)"] = ref;
  state.counters["ratio"] = avg / ref;
  state.counters["m"] = double(m);
}

BENCHMARK(BM_SpannerSize)
    ->ArgsProduct({{512, 1024, 2048}, {2, 3, 4}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
