// E6 (Theorem 1.4): ultra-sparse spanner size n + O(n/x) vs x.
// Counters report (|H| - n)/(n/x): the theorem predicts a bounded constant.
#include <benchmark/benchmark.h>

#include "core/ultra.hpp"
#include "graph/generators.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

void BM_UltraSize(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  uint32_t x = uint32_t(state.range(1));
  // Dense-ish graph so that heavy vertices dominate (avg degree above the
  // 10 x log x threshold keeps the light BFS balls small).
  auto edges = gen_erdos_renyi(n, 16 * n, 3 + n);
  double size_avg = 0;
  size_t runs = 0;
  for (auto _ : state) {
    UltraConfig cfg;
    cfg.x = x;
    cfg.seed = 50 + runs;
    UltraSparseSpanner sp(n, edges, cfg);
    size_avg += double(sp.spanner_size());
    ++runs;
  }
  size_avg /= double(runs);
  double extra = size_avg - double(n);
  state.counters["H_edges"] = size_avg;
  state.counters["extra_over_n"] = extra;
  state.counters["extra*(x/n)"] = extra * double(x) / double(n);
}

BENCHMARK(BM_UltraSize)
    ->ArgsProduct({{512, 1024}, {2, 3, 4}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_UltraUpdates(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto [initial, batches] = gen_mixed_stream(n, 14 * n, 32, 20, 7);
  double recourse = 0, edges_updated = 0;
  for (auto _ : state) {
    state.PauseTiming();
    UltraConfig cfg;
    cfg.x = 2;
    cfg.seed = 77;
    UltraSparseSpanner sp(n, initial, cfg);
    recourse = edges_updated = 0;
    state.ResumeTiming();
    for (auto& b : batches) {
      auto diff = sp.update(b.insertions, b.deletions);
      recourse += double(diff.inserted.size() + diff.removed.size());
      edges_updated += double(b.insertions.size() + b.deletions.size());
    }
  }
  state.counters["recourse_per_edge"] = recourse / edges_updated;
  state.SetItemsProcessed(int64_t(edges_updated) *
                          int64_t(state.iterations()));
}

BENCHMARK(BM_UltraUpdates)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
