// Microbenchmarks for the parallel substrate (scan / pack / sort).
// These calibrate the constant factors that underlie the work bounds of the
// batch-dynamic structures.
#include <benchmark/benchmark.h>

#include <vector>

#include "parallel/primitives.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

void BM_Scan(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<uint64_t> base(n);
  for (auto& x : base) x = rng.next_below(100);
  for (auto _ : state) {
    auto xs = base;
    benchmark::DoNotOptimize(exclusive_scan_inplace(xs));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_Scan)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void BM_Sort(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<uint64_t> base(n);
  for (auto& x : base) x = rng.next();
  for (auto _ : state) {
    auto xs = base;
    parallel_sort(xs);
    benchmark::DoNotOptimize(xs.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_Sort)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 20);

void BM_Pack(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<uint64_t> base(n);
  for (auto& x : base) x = rng.next();
  for (auto _ : state) {
    auto out = filter(base, [](uint64_t x) { return (x & 1) == 0; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_Pack)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
