// E5 (Theorem 1.3): sparse spanner size O(n), stretch, and update recourse.
// Counters report edges-per-vertex (the theorem predicts a constant) and
// the measured stretch against the composed bound.
#include <benchmark/benchmark.h>

#include "core/sparse_spanner.hpp"
#include "graph/generators.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

void BM_SparseSpannerInit(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto edges = gen_erdos_renyi(n, 10 * n, 5 + n);
  double size_avg = 0;
  size_t runs = 0;
  for (auto _ : state) {
    SparseSpannerConfig cfg;
    cfg.seed = 100 + runs;
    SparseSpanner sp(n, edges, cfg);
    size_avg += double(sp.spanner_size());
    ++runs;
  }
  size_avg /= double(runs);
  state.counters["H_edges"] = size_avg;
  state.counters["edges_per_vertex"] = size_avg / double(n);
}

BENCHMARK(BM_SparseSpannerInit)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_SparseSpannerUpdates(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  size_t batch = size_t(state.range(1));
  auto [initial, batches] = gen_mixed_stream(n, 8 * n, batch, 30, 23);
  double recourse = 0, edges_updated = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SparseSpannerConfig cfg;
    cfg.seed = 9;
    SparseSpanner sp(n, initial, cfg);
    recourse = edges_updated = 0;
    state.ResumeTiming();
    for (auto& b : batches) {
      auto diff = sp.update(b.insertions, b.deletions);
      recourse += double(diff.inserted.size() + diff.removed.size());
      edges_updated += double(b.insertions.size() + b.deletions.size());
    }
  }
  state.counters["recourse_per_edge"] = recourse / edges_updated;
  state.SetItemsProcessed(int64_t(edges_updated) *
                          int64_t(state.iterations()));
}

BENCHMARK(BM_SparseSpannerUpdates)
    ->ArgsProduct({{1024, 2048}, {32, 256}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SparseSpannerStretch(benchmark::State& state) {
  size_t n = size_t(state.range(0));
  auto edges = gen_erdos_renyi(n, 8 * n, 77);
  uint32_t measured = 0, bound = 0;
  for (auto _ : state) {
    SparseSpannerConfig cfg;
    cfg.seed = 31;
    SparseSpanner sp(n, edges, cfg);
    bound = sp.stretch_bound();
    measured = max_edge_stretch(n, edges, sp.spanner_edges(), bound);
  }
  state.counters["measured_stretch"] = double(measured);
  state.counters["bound"] = double(bound);
}

BENCHMARK(BM_SparseSpannerStretch)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace parspan

BENCHMARK_MAIN();
