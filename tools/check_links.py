#!/usr/bin/env python3
"""Intra-repo markdown link checker (CI docs gate).

Scans every tracked *.md file for inline links/images `[text](target)` and
reference definitions `[label]: target`, and fails if a repo-relative
target does not exist. External links (scheme://, mailto:) are ignored;
pure in-page anchors (#...) are checked against the target file's headings.

Usage: tools/check_links.py [repo_root]
"""
import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)|"
                     r"\!\[[^\]]*\]\(([^)\s]+)\)")
REF_DEF_RE = re.compile(r"^\s{0,3}\[[^\]]+\]:\s*(\S+)", re.MULTILINE)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_DIRS = {".git", "build", ".claude"}


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"\s+", "-", text.strip())


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for f in filenames:
            if f.endswith(".md"):
                yield os.path.join(dirpath, f)


def check(root: str) -> int:
    errors = []
    anchors_cache = {}

    def anchors(path):
        if path not in anchors_cache:
            with open(path, encoding="utf-8") as f:
                text = f.read()
            anchors_cache[path] = {anchor_of(h) for h in HEADING_RE.findall(text)}
        return anchors_cache[path]

    for md in md_files(root):
        with open(md, encoding="utf-8") as f:
            text = f.read()
        rel_md = os.path.relpath(md, root)
        targets = [m.group(1) or m.group(2) for m in LINK_RE.finditer(text)]
        targets += REF_DEF_RE.findall(text)
        for target in targets:
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            target, _, frag = target.partition("#")
            if not target:  # in-page anchor
                if frag and anchor_of(frag) not in anchors(md) \
                        and frag not in anchors(md):
                    errors.append(f"{rel_md}: broken in-page anchor '#{frag}'")
                continue
            dest = os.path.normpath(os.path.join(os.path.dirname(md), target))
            if not os.path.exists(dest):
                errors.append(f"{rel_md}: broken link '{target}'")
                continue
            if frag and dest.endswith(".md"):
                if anchor_of(frag) not in anchors(dest) \
                        and frag not in anchors(dest):
                    errors.append(
                        f"{rel_md}: broken anchor '{target}#{frag}'")

    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if not errors:
        count = len(list(md_files(root)))
        print(f"ok: no broken intra-repo links across {count} markdown files")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else "."))
