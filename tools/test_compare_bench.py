#!/usr/bin/env python3
"""Exit-code contract tests for tools/compare_bench.py.

The CI bench-smoke job branches on this tool's exit codes, so they are an
API: 0 = compared (regressions are advisory and must NOT fail the job,
except --stable-rows), 1 = a --stable-rows benchmark regressed past
--fail-over percent, 2 = missing inputs (including a stable row that never
got compared), 3 = malformed baseline. A refactor that turns a
missing-baseline message into a traceback, or starts exiting non-zero on a
flagged non-stable regression, silently changes CI behavior — these tests
pin it.

Run directly (python3 tools/test_compare_bench.py) or via ctest
(test_compare_bench).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "compare_bench.py")


def bench_doc(times_ns):
    """A minimal google-benchmark JSON doc: {benchmark name: real_time ns}."""
    return {
        "benchmarks": [
            {"name": name, "real_time": ns, "time_unit": "ns"}
            for name, ns in times_ns.items()
        ]
    }


def write(path, obj):
    with open(path, "w") as f:
        if isinstance(obj, str):
            f.write(obj)
        else:
            json.dump(obj, f)


def run_tool(*args):
    return subprocess.run([sys.executable, TOOL, *args],
                          capture_output=True, text=True)


class CompareBenchExitCodes(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = self._tmp.name
        self.baseline_dir = os.path.join(root, "baseline")
        self.fresh_dir = os.path.join(root, "fresh")
        os.mkdir(self.baseline_dir)
        os.mkdir(self.fresh_dir)

    def tearDown(self):
        self._tmp.cleanup()

    def seed_baseline(self, binary="bench_x", name="BM_Thing", ns=1000.0):
        write(os.path.join(self.baseline_dir, "BENCH_x.json"),
              {binary: bench_doc({name: ns})})

    # --- exit 0: compared, regressions advisory -----------------------------

    def test_clean_comparison_exits_zero(self):
        self.seed_baseline(ns=1000.0)
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              bench_doc({"BM_Thing": 1010.0}))
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("BM_Thing", r.stdout)
        self.assertIn("1 compared", r.stdout)

    def test_regression_past_threshold_is_advisory_exit_zero(self):
        self.seed_baseline(ns=1000.0)
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              bench_doc({"BM_Thing": 5000.0}))  # 5x slower
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir, "--threshold", "0.25")
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("regressed past the threshold", r.stdout)

    def test_skipped_binary_and_unmatched_names_exit_zero(self):
        self.seed_baseline()
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              bench_doc({"BM_Thing": 1000.0}))
        write(os.path.join(self.fresh_dir, "bench_new.json"),
              bench_doc({"BM_Unseen": 1.0}))  # no baseline: counted, not diffed
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir, "--skip", "bench_x")
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("skipped", r.stdout)
        self.assertIn("1 without a baseline match", r.stdout)
        self.assertIn("0 compared", r.stdout)

    # --- exit 2: missing inputs ---------------------------------------------

    def test_no_baselines_exits_two(self):
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              bench_doc({"BM_Thing": 1000.0}))
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir)
        self.assertEqual(r.returncode, 2)
        self.assertIn("no BENCH_", r.stderr)

    def test_no_fresh_output_exits_two(self):
        self.seed_baseline()
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir)
        self.assertEqual(r.returncode, 2)
        self.assertIn("no fresh smoke JSON", r.stderr)

    def test_truncated_fresh_output_exits_two(self):
        self.seed_baseline()
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              '{"benchmarks": [{"name": "BM_Thing", "real_')  # crashed writer
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir)
        self.assertEqual(r.returncode, 2)
        self.assertIn("unusable smoke output", r.stderr)

    # --- exit 3: malformed baseline -----------------------------------------

    def test_invalid_json_baseline_exits_three(self):
        write(os.path.join(self.baseline_dir, "BENCH_x.json"), "{not json")
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              bench_doc({"BM_Thing": 1000.0}))
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir)
        self.assertEqual(r.returncode, 3)
        self.assertIn("malformed baseline", r.stderr)

    def test_wrong_shape_baseline_exits_three(self):
        # A raw google-benchmark doc (not the run_benches.sh {binary: doc}
        # wrapper) must be rejected, not silently compared against nothing.
        write(os.path.join(self.baseline_dir, "BENCH_x.json"),
              bench_doc({"BM_Thing": 1000.0}))
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              bench_doc({"BM_Thing": 1000.0}))
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir)
        self.assertEqual(r.returncode, 3)
        self.assertIn("malformed baseline", r.stderr)

    # --- exit 1: the --stable-rows / --fail-over gate ------------------------

    def test_stable_row_regression_past_fail_over_exits_one(self):
        self.seed_baseline(ns=1000.0)
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              bench_doc({"BM_Thing": 1500.0}))  # +50% > 40% gate
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir,
                     "--fail-over", "40", "--stable-rows", "BM_Thing")
        self.assertEqual(r.returncode, 1, r.stderr)
        self.assertIn("stable row", r.stdout)

    def test_stable_row_within_fail_over_exits_zero(self):
        self.seed_baseline(ns=1000.0)
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              bench_doc({"BM_Thing": 1300.0}))  # +30% < 40% gate
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir, "--threshold", "0.25",
                     "--fail-over", "40", "--stable-rows", "BM_Thing")
        self.assertEqual(r.returncode, 0, r.stderr)

    def test_non_stable_regression_stays_advisory_with_gate_on(self):
        write(os.path.join(self.baseline_dir, "BENCH_x.json"),
              {"bench_x": bench_doc({"BM_Thing": 1000.0,
                                     "BM_Noisy": 1000.0})})
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              bench_doc({"BM_Thing": 1000.0, "BM_Noisy": 9000.0}))
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir,
                     "--fail-over", "40", "--stable-rows", "BM_Thing")
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("regressed past the threshold", r.stdout)

    def test_stable_row_never_compared_exits_two(self):
        # A gate that silently stops gating (typo'd row name, regenerated
        # baseline that dropped the row) must fail loudly, not pass.
        self.seed_baseline(ns=1000.0)
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              bench_doc({"BM_Thing": 1000.0}))
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir,
                     "--fail-over", "40", "--stable-rows", "BM_Renamed")
        self.assertEqual(r.returncode, 2, r.stderr)
        self.assertIn("never compared", r.stderr)

    def test_stable_rows_without_fail_over_is_a_usage_error(self):
        self.seed_baseline()
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              bench_doc({"BM_Thing": 1000.0}))
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir,
                     "--stable-rows", "BM_Thing")
        self.assertEqual(r.returncode, 2)  # argparse usage error

    # --- repetition aggregates mix with single runs -------------------------

    def test_median_aggregates_compare_via_run_name(self):
        write(os.path.join(self.baseline_dir, "BENCH_x.json"), {
            "bench_x": {"benchmarks": [
                {"name": "BM_Thing_median", "run_name": "BM_Thing",
                 "aggregate_name": "median", "real_time": 1000.0,
                 "time_unit": "ns"},
                {"name": "BM_Thing_mean", "run_name": "BM_Thing",
                 "aggregate_name": "mean", "real_time": 9999.0,
                 "time_unit": "ns"},
            ]}})
        write(os.path.join(self.fresh_dir, "bench_x.json"),
              bench_doc({"BM_Thing": 1000.0}))
        r = run_tool("--baseline-dir", self.baseline_dir,
                     "--fresh-dir", self.fresh_dir)
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("1 compared", r.stdout)
        self.assertIn("+0.0%", r.stdout)  # diffed against the median, not mean


if __name__ == "__main__":
    unittest.main()
