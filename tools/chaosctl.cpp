// chaosctl: multiprocess chaos harness for the replication fleet
// (DESIGN.md §14.4). Forks a leader + N follower `replicad` processes on
// loopback, then injects a seeded stream of faults — kill -9, SIGSTOP /
// SIGCONT, restart-off-own-chain, partition via leader-side listener
// refusal — while a writer keeps committing batches through whichever
// node currently leads. After EVERY event it asserts the group either
// converges (one leader; every eligible follower lease-healthy at the
// leader's epoch/version/checksum) or rejected the interaction
// explicitly; any silent divergence — two processes reporting the same
// (epoch, version) with different checksums — fails the run on the spot.
//
//   chaosctl --smoke                      # CI: leader+2, 20 seeded events
//   chaosctl --followers 4 --events 50 --seed 7
//
// Per-node stdout goes to <workdir>/node<i>.log and the WAL/checkpoint
// chains live under <workdir>/node<i>/ — on failure the workdir is kept
// (CI uploads it); on success it is removed unless --keep.
//
// Exit code: 0 converged after every event, 1 otherwise.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/client.hpp"
#include "replication/node.hpp"
#include "util/rng.hpp"

namespace {

using namespace parspan;
using Clock = std::chrono::steady_clock;

struct Options {
  uint32_t followers = 2;
  uint32_t events = 20;
  uint64_t seed = 1;
  std::string replicad = "./replicad";  // next to chaosctl in the build dir
  std::string workdir;                  // default: /tmp/parspan_chaos_<pid>
  uint16_t base_port = 0;               // 0 = derive from pid
  uint32_t converge_budget_s = 30;      // per-event convergence deadline
  uint32_t wall_budget_s = 420;         // whole-run bound
  bool keep = false;

  // Passed through to every replicad (cross-process on a small box needs
  // slightly more slack than the in-process lease tests).
  uint32_t lease_ms = 300;
  uint32_t heartbeat_ms = 30;
  uint32_t tick_ms = 2;
  uint32_t peer_timeout_ms = 150;

  uint32_t nodes() const { return followers + 1; }
};

enum class Ev {
  kKillLeader,
  kKillFollower,
  kRestartDead,
  kStopLeader,
  kStopFollower,
  kContStopped,
  kPartitionOn,
  kPartitionOff,
};

const char* ev_name(Ev e) {
  switch (e) {
    case Ev::kKillLeader: return "kill-leader";
    case Ev::kKillFollower: return "kill-follower";
    case Ev::kRestartDead: return "restart-dead";
    case Ev::kStopLeader: return "sigstop-leader";
    case Ev::kStopFollower: return "sigstop-follower";
    case Ev::kContStopped: return "sigcont";
    case Ev::kPartitionOn: return "partition-on";
    case Ev::kPartitionOff: return "partition-off";
  }
  return "?";
}

struct Proc {
  pid_t pid = -1;
  bool running = false;
  bool stopped = false;      // SIGSTOPped (still "running" as a process)
  bool partitioned = false;  // current leader refuses its subscribe
};

struct Harness {
  Options opt;
  std::vector<PeerAddr> peers;
  std::vector<Proc> procs;
  // The convergence oracle: every status poll of every node feeds it. A
  // second report of a key with a different checksum is silent
  // divergence — the one failure replication must never have.
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> oracle;
  int last_leader = -1;
  uint64_t writes_acked = 0;
  Clock::time_point wall_deadline{};

  void note(const char* fmt, ...) {
    va_list ap;
    va_start(ap, fmt);
    std::printf("chaosctl: ");
    std::vprintf(fmt, ap);
    std::printf("\n");
    std::fflush(stdout);
    va_end(ap);
  }

  bool spawn(uint32_t i, bool as_leader, uint32_t leader_hint) {
    std::vector<std::string> args = {
        opt.replicad,
        "--index", std::to_string(i),
        "--nodes", std::to_string(opt.nodes()),
        "--dir", opt.workdir + "/node" + std::to_string(i),
        "--base-port", std::to_string(opt.base_port),
        "--lease-ms", std::to_string(opt.lease_ms),
        "--heartbeat-ms", std::to_string(opt.heartbeat_ms),
        "--tick-ms", std::to_string(opt.tick_ms),
        "--peer-timeout-ms", std::to_string(opt.peer_timeout_ms),
    };
    if (as_leader) {
      args.push_back("--leader");
    } else {
      args.push_back("--leader-index");
      args.push_back(std::to_string(leader_hint));
    }
    const pid_t pid = fork();
    if (pid < 0) return false;
    if (pid == 0) {
      const std::string log =
          opt.workdir + "/node" + std::to_string(i) + ".log";
      const int fd = open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        dup2(fd, 1);
        dup2(fd, 2);
        if (fd > 2) close(fd);
      }
      std::vector<char*> argv;
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);  // exec failed; parent sees an unexpected death
    }
    procs[i] = Proc{pid, /*running=*/true, false, false};
    return true;
  }

  void kill9(uint32_t i) {
    kill(procs[i].pid, SIGKILL);
    waitpid(procs[i].pid, nullptr, 0);
    procs[i] = Proc{};
  }

  void sigstop(uint32_t i) {
    kill(procs[i].pid, SIGSTOP);
    procs[i].stopped = true;
  }

  void sigcont(uint32_t i) {
    kill(procs[i].pid, SIGCONT);
    procs[i].stopped = false;
  }

  /// A child we did not kill exiting on its own is a crash — fail loudly
  /// instead of letting convergence paper over a dead process.
  bool children_alive() {
    int st = 0;
    pid_t pid;
    while ((pid = waitpid(-1, &st, WNOHANG)) > 0) {
      for (uint32_t i = 0; i < procs.size(); ++i) {
        if (procs[i].pid == pid && procs[i].running) {
          note("FAIL: node %u (pid %d) died unexpectedly (status 0x%x)", i,
               int(pid), st);
          procs[i] = Proc{};
          return false;
        }
      }
    }
    return true;
  }

  /// Feeds one status into the oracle; false on silent divergence.
  bool feed_oracle(uint32_t i, const NodeStatus& s) {
    if (!s.has_state || s.applied_version == 0) return true;
    const auto key = std::make_pair(s.epoch, s.applied_version);
    const auto [it, inserted] = oracle.emplace(key, s.applied_checksum);
    if (!inserted && it->second != s.applied_checksum) {
      note("FAIL: silent divergence at epoch=%llu v=%llu: node %u reports "
           "%016llx, oracle has %016llx",
           (unsigned long long)s.epoch, (unsigned long long)s.applied_version,
           i, (unsigned long long)s.applied_checksum,
           (unsigned long long)it->second);
      return false;
    }
    return true;
  }

  /// One leader among eligible nodes; every eligible follower
  /// lease-healthy at its (epoch, version, checksum). Partitioned and
  /// stopped nodes are exempt (they CANNOT converge — that is the point
  /// of the fault), dead ones obviously so.
  bool converge(const char* why) {
    const auto deadline =
        Clock::now() + std::chrono::seconds(opt.converge_budget_s);
    while (Clock::now() < std::min(deadline, wall_deadline)) {
      if (!children_alive()) return false;
      int leader = -1;
      uint64_t leader_epoch = 0;
      bool ok = true;
      std::vector<std::pair<uint32_t, NodeStatus>> polled;
      for (uint32_t i = 0; i < procs.size(); ++i) {
        if (!procs[i].running || procs[i].stopped) continue;
        auto s = ReplicaNode::poll_status(peers[i], 300);
        if (!s) {
          if (!procs[i].partitioned) ok = false;
          continue;
        }
        if (!feed_oracle(i, *s)) return false;
        polled.emplace_back(i, *s);
        // A partitioned node is exempt from follower agreement below, but
        // NOT from leader detection: if it won an election the partition
        // died with the old leader, and spotting the new leader is what
        // clears the flags.
        if (s->role == NodeRole::kLeader) {
          if (leader >= 0) ok = false;  // two live leaders: keep waiting
          if (s->epoch >= leader_epoch) {
            leader = int(i);
            leader_epoch = s->epoch;
          }
        }
      }
      if (ok && leader >= 0) {
        if (leader != last_leader) {
          // Refusal state lived in the old leader; a new one refuses
          // nobody, so partitions are implicitly healed.
          for (auto& p : procs) p.partitioned = false;
          last_leader = leader;
          continue;  // re-poll with the wider eligible set
        }
        NodeStatus ls{};
        for (auto& [i, s] : polled)
          if (int(i) == leader) ls = s;
        for (auto& [i, s] : polled) {
          if (int(i) == leader || procs[i].partitioned) continue;
          ok = ok && s.lease_healthy && s.epoch == ls.epoch &&
               s.applied_version == ls.applied_version &&
               s.applied_checksum == ls.applied_checksum;
        }
        if (ok && ls.has_state) {
          note("converged (%s): leader=%d epoch=%llu v=%llu", why, leader,
               (unsigned long long)ls.epoch,
               (unsigned long long)ls.applied_version);
          return true;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    note("FAIL: no convergence after %s within %us", why,
         opt.converge_budget_s);
    dump_statuses();
    return false;
  }

  void dump_statuses() {
    for (uint32_t i = 0; i < procs.size(); ++i) {
      if (!procs[i].running) {
        note("  node %u: dead", i);
        continue;
      }
      if (procs[i].stopped) {
        note("  node %u: SIGSTOPped", i);
        continue;
      }
      auto s = ReplicaNode::poll_status(peers[i], 300);
      if (!s) {
        note("  node %u: unreachable%s", i,
             procs[i].partitioned ? " (partitioned)" : "");
        continue;
      }
      note("  node %u: %s epoch=%llu v=%llu checksum=%016llx lease=%d%s", i,
           s->role == NodeRole::kLeader ? "leader" : "follower",
           (unsigned long long)s->epoch, (unsigned long long)s->applied_version,
           (unsigned long long)s->applied_checksum, s->lease_healthy ? 1 : 0,
           procs[i].partitioned ? " (partitioned)" : "");
    }
  }

  /// Who leads right now, by live poll (max epoch wins a transient dual
  /// claim). -1 when nobody answers as leader within the budget.
  int find_leader(std::chrono::milliseconds budget) {
    const auto deadline = Clock::now() + budget;
    while (Clock::now() < deadline) {
      int best = -1;
      uint64_t best_epoch = 0;
      for (uint32_t i = 0; i < procs.size(); ++i) {
        if (!procs[i].running || procs[i].stopped) continue;
        auto s = ReplicaNode::poll_status(peers[i], 300);
        if (s && s->role == NodeRole::kLeader && s->epoch >= best_epoch) {
          best = int(i);
          best_epoch = s->epoch;
        }
      }
      if (best >= 0) return best;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return -1;
  }

  /// The loadgen-style writer: commits `count` seeded batches through
  /// whichever node currently leads, redialing across failovers. Every
  /// submit either succeeds, says retry, or fails EXPLICITLY (error
  /// status / dropped connection) — in which case the batch is re-sent to
  /// the rediscovered leader. What never happens is a silent loss: acked
  /// batches feed versions the oracle later cross-checks.
  bool write_batches(Rng& rng, int count) {
    const auto deadline = Clock::now() + std::chrono::seconds(
                                             opt.converge_budget_s);
    int done = 0;
    std::optional<net::NetClient> client;
    while (done < count && Clock::now() < std::min(deadline, wall_deadline)) {
      if (!client) {
        const int leader = find_leader(std::chrono::seconds(10));
        if (leader < 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          continue;
        }
        client = net::NetClient::connect("127.0.0.1",
                                         peers[leader].client_port);
        if (!client) {  // lost the role between poll and dial; redial
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          continue;
        }
      }
      std::vector<Edge> ins;
      for (int e = 0; e < 6; ++e) {
        const uint64_t x = rng.next();
        ins.emplace_back(VertexId(x % 64), VertexId((x >> 8) % 64));
      }
      const auto r = client->submit(0, ins, {});
      if (r.status == net::Status::kOk) {
        if (client->flush().has_value()) {
          ++done;
          ++writes_acked;
        } else {
          client.reset();  // connection died mid-flush: explicit, re-send
        }
      } else if (r.status == net::Status::kRetryAfter) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::max(r.retry_after_ms, 10u)));
      } else {
        client.reset();  // explicit reject or dead conn: rediscover
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
    if (done < count) {
      note("FAIL: writer committed only %d/%d batches before the deadline",
           done, count);
      dump_statuses();
      return false;
    }
    return true;
  }

  /// Lifts the leader-side refusal for node i (best effort: the flag is
  /// also cleared when the leader changes).
  void heal_partition(uint32_t i) {
    if (!procs[i].partitioned) return;
    const int leader = find_leader(std::chrono::seconds(5));
    if (leader >= 0)
      ReplicaNode::request_partition(peers[leader], i, false, 1000);
    procs[i].partitioned = false;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "chaosctl: %s needs a value\n", a.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--smoke") {
      opt.followers = 2;
      opt.events = 20;
    } else if (a == "--followers") opt.followers = uint32_t(std::stoul(next()));
    else if (a == "--events") opt.events = uint32_t(std::stoul(next()));
    else if (a == "--seed") opt.seed = std::stoull(next());
    else if (a == "--replicad") opt.replicad = next();
    else if (a == "--workdir") opt.workdir = next();
    else if (a == "--base-port") opt.base_port = uint16_t(std::stoul(next()));
    else if (a == "--converge-budget-s")
      opt.converge_budget_s = uint32_t(std::stoul(next()));
    else if (a == "--wall-budget-s")
      opt.wall_budget_s = uint32_t(std::stoul(next()));
    else if (a == "--lease-ms") opt.lease_ms = uint32_t(std::stoul(next()));
    else if (a == "--keep") opt.keep = true;
    else {
      std::fprintf(stderr, "chaosctl: unknown flag %s\n", a.c_str());
      return 1;
    }
  }
  if (opt.followers < 2) {
    std::fprintf(stderr,
                 "chaosctl: need --followers >= 2 (elections want a quorum "
                 "of candidates)\n");
    return 1;
  }
  if (opt.workdir.empty())
    opt.workdir = "/tmp/parspan_chaos_" + std::to_string(getpid());
  if (opt.base_port == 0)
    opt.base_port = uint16_t(20000 + (getpid() * 137) % 10000);

  signal(SIGPIPE, SIG_IGN);
  std::filesystem::create_directories(opt.workdir);

  Harness h;
  h.opt = opt;
  h.procs.resize(opt.nodes());
  for (uint32_t i = 0; i < opt.nodes(); ++i) {
    PeerAddr p;
    p.ctl_port = uint16_t(opt.base_port + 3 * i);
    p.repl_port = uint16_t(opt.base_port + 3 * i + 1);
    p.client_port = uint16_t(opt.base_port + 3 * i + 2);
    h.peers.push_back(p);
  }
  h.wall_deadline = Clock::now() + std::chrono::seconds(opt.wall_budget_s);
  h.note("fleet: 1 leader + %u followers, %u events, seed %llu, ports %u+, "
         "workdir %s",
         opt.followers, opt.events, (unsigned long long)opt.seed,
         opt.base_port, opt.workdir.c_str());

  Rng rng(opt.seed);
  bool ok = true;

  // Bootstrap: node 0 leads, everyone else follows it, and a few batches
  // give every node real state before the faults start.
  for (uint32_t i = 0; i < opt.nodes() && ok; ++i)
    ok = h.spawn(i, /*as_leader=*/i == 0, /*leader_hint=*/0);
  ok = ok && h.converge("bootstrap") && h.write_batches(rng, 3) &&
       h.converge("seed-writes");

  uint32_t executed = 0;
  while (ok && executed < opt.events) {
    if (Clock::now() >= h.wall_deadline) {
      h.note("FAIL: wall budget (%us) exhausted after %u/%u events",
             opt.wall_budget_s, executed, opt.events);
      ok = false;
      break;
    }

    // Feasible events for the current fleet state. The invariant: at
    // least 2 processes stay alive and un-stopped, so there is always a
    // candidate pair to elect from.
    const int leader = h.find_leader(std::chrono::seconds(10));
    if (leader < 0) {
      h.note("FAIL: no leader answering before event %u", executed + 1);
      h.dump_statuses();
      ok = false;
      break;
    }
    uint32_t alive = 0;
    for (auto& p : h.procs)
      if (p.running && !p.stopped) ++alive;
    std::vector<uint32_t> live_followers, dead, stopped, partitioned,
        cuttable;
    for (uint32_t i = 0; i < h.procs.size(); ++i) {
      const Proc& p = h.procs[i];
      if (!p.running) dead.push_back(i);
      else if (p.stopped) stopped.push_back(i);
      else if (int(i) != leader) {
        live_followers.push_back(i);
        if (p.partitioned) partitioned.push_back(i);
        else cuttable.push_back(i);
      }
    }
    std::vector<Ev> feasible;
    if (alive > 2) {
      feasible.push_back(Ev::kKillLeader);
      feasible.push_back(Ev::kStopLeader);
      if (!live_followers.empty()) {
        feasible.push_back(Ev::kKillFollower);
        feasible.push_back(Ev::kStopFollower);
      }
    }
    if (!dead.empty()) feasible.push_back(Ev::kRestartDead);
    if (!stopped.empty()) feasible.push_back(Ev::kContStopped);
    if (!cuttable.empty()) feasible.push_back(Ev::kPartitionOn);
    if (!partitioned.empty()) feasible.push_back(Ev::kPartitionOff);
    if (feasible.empty()) {  // cannot happen with followers >= 2; be safe
      h.note("FAIL: no feasible event (alive=%u)", alive);
      ok = false;
      break;
    }

    const Ev ev = feasible[rng.next() % feasible.size()];
    auto pick = [&](const std::vector<uint32_t>& v) {
      return v[rng.next() % v.size()];
    };
    ++executed;
    switch (ev) {
      case Ev::kKillLeader: {
        h.note("event %u: %s node %d", executed, ev_name(ev), leader);
        h.kill9(uint32_t(leader));
        break;
      }
      case Ev::kKillFollower: {
        const uint32_t i = pick(live_followers);
        h.note("event %u: %s node %u", executed, ev_name(ev), i);
        h.heal_partition(i);  // a refused corpse could never resubscribe
        h.kill9(i);
        break;
      }
      case Ev::kRestartDead: {
        const uint32_t i = pick(dead);
        h.note("event %u: %s node %u (follows %d)", executed, ev_name(ev), i,
               leader);
        if (!h.spawn(i, false, uint32_t(leader))) ok = false;
        break;
      }
      case Ev::kStopLeader: {
        h.note("event %u: %s node %d", executed, ev_name(ev), leader);
        h.sigstop(uint32_t(leader));
        break;
      }
      case Ev::kStopFollower: {
        const uint32_t i = pick(cuttable.empty() ? live_followers : cuttable);
        h.note("event %u: %s node %u", executed, ev_name(ev), i);
        h.sigstop(i);
        break;
      }
      case Ev::kContStopped: {
        const uint32_t i = pick(stopped);
        h.note("event %u: %s node %u", executed, ev_name(ev), i);
        h.sigcont(i);
        break;
      }
      case Ev::kPartitionOn: {
        const uint32_t i = pick(cuttable);
        h.note("event %u: %s node %u (leader %d refuses it)", executed,
               ev_name(ev), i, leader);
        if (ReplicaNode::request_partition(h.peers[leader], i, true, 1000))
          h.procs[i].partitioned = true;
        else
          h.note("  partition request refused (leadership moved?); skipping");
        break;
      }
      case Ev::kPartitionOff: {
        const uint32_t i = pick(partitioned);
        h.note("event %u: %s node %u", executed, ev_name(ev), i);
        h.heal_partition(i);
        break;
      }
    }

    // The post-event contract: the group serves writes again AND every
    // eligible node agrees on the result.
    ok = ok && h.write_batches(rng, 2) && h.converge("event");
  }

  if (ok) {
    // Final act: heal every fault and demand FULL convergence — every
    // node of the original fleet present and agreeing.
    h.note("final: healing all faults");
    for (uint32_t i = 0; i < h.procs.size(); ++i)
      if (h.procs[i].running && h.procs[i].stopped) h.sigcont(i);
    for (uint32_t i = 0; i < h.procs.size(); ++i) h.heal_partition(i);
    const int leader = h.find_leader(std::chrono::seconds(15));
    for (uint32_t i = 0; i < h.procs.size() && ok; ++i)
      if (!h.procs[i].running)
        ok = h.spawn(i, false, uint32_t(leader >= 0 ? leader : 0));
    ok = ok && h.write_batches(rng, 2) && h.converge("final");
  }

  for (auto& p : h.procs) {
    if (!p.running) continue;
    if (p.stopped) kill(p.pid, SIGCONT);
    kill(p.pid, SIGTERM);
  }
  for (auto& p : h.procs) {
    if (!p.running) continue;
    int st = 0;
    for (int tries = 0; tries < 100; ++tries) {
      if (waitpid(p.pid, &st, WNOHANG) == p.pid) {
        p.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (p.pid != -1) {
      kill(p.pid, SIGKILL);
      waitpid(p.pid, nullptr, 0);
    }
  }

  h.note("%s: %u events, %llu batches acked, oracle holds %zu "
         "(epoch, version) states",
         ok ? "PASS" : "FAIL", executed, (unsigned long long)h.writes_acked,
         h.oracle.size());
  if (ok && !opt.keep) {
    std::error_code ec;
    std::filesystem::remove_all(opt.workdir, ec);
  } else {
    h.note("workdir kept at %s", opt.workdir.c_str());
  }
  return ok ? 0 : 1;
}
