// loadgen: drives the net front door (DESIGN.md §13) with thousands of
// concurrent connections and reports latency percentiles + saturated QPS.
//
// Self-contained: spins up an in-process ShardedSpannerService + NetServer
// on an ephemeral loopback port, then hammers it from epoll-based client
// workers — every request goes through the real wire protocol, the real
// frame CRCs, and the real event loops; nothing is mocked.
//
// Two load models:
//   closed (default): each connection keeps `--depth` requests in flight
//     and sends the next the moment a response lands — measures the
//     service-time distribution at a fixed concurrency level, and the
//     aggregate response rate IS the saturated QPS for that level.
//   open: requests are paced at `--rate` per second fleet-wide regardless
//     of outstanding responses — queueing delay shows up in the
//     latencies instead of being hidden by backpressure on the sender.
//
// Workload mix per request (per-connection SplitMix64, seeded by conn id:
// deterministic across runs): 70% has_edge, 10% neighbors, 20% submit of
// 4 random edges. All responses are validated; any kError response,
// decode failure, or unexpected disconnect counts as a protocol error and
// fails the run (the acceptance bar is zero at 1000 connections).
//
//   loadgen [--conns N] [--workers W] [--duration-s S] [--depth D]
//           [--mode closed|open] [--rate R] [--n V] [--shards K]
//           [--loops L] [--smoke] [--full] [--json]
//
// --json writes google-benchmark-shaped JSON to stdout (rows
// net/<mode>/conns:<N>/{p50,p99,p999,ns_per_req}; ns_per_req = 1e9/QPS,
// with the raw qps attached to the row) so bench/run_benches.sh can
// record BENCH_net.json and tools/compare_bench.py can diff it like any
// other bench family. --smoke is the tiny CI configuration; --full runs
// the 1000-connection config AND the smoke config in one process so the
// checked-in baseline carries rows for both.
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/sharded_service.hpp"

namespace {

using namespace parspan;
using Clock = std::chrono::steady_clock;

struct Options {
  size_t conns = 1000;
  int workers = 4;
  double duration_s = 5.0;
  int depth = 1;
  bool open_loop = false;
  double rate = 20000;  // open-loop fleet-wide req/s
  size_t n = 1 << 14;
  uint32_t shards = 2;
  int loops = 2;
  bool json = false;
  bool smoke = false;
  bool full = false;
};

uint64_t splitmix(uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

struct ClientConn {
  int fd = -1;
  uint64_t rng = 0;
  std::vector<uint8_t> out;
  size_t out_off = 0;
  std::vector<uint8_t> in;
  size_t in_off = 0;
  uint32_t next_seq = 1;  // hello took seq 0 during setup
  std::deque<std::pair<uint32_t, Clock::time_point>> inflight;
};

struct WorkerResult {
  std::vector<int64_t> latencies_ns;
  uint64_t responses = 0;
  uint64_t retry_afters = 0;
  uint64_t errors = 0;
};

struct RunResult {
  std::vector<int64_t> latencies_ns;
  double seconds = 0;
  uint64_t responses = 0;
  uint64_t retry_afters = 0;
  uint64_t errors = 0;
};

void raise_nofile(size_t want) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  if (rl.rlim_cur < want) {
    rl.rlim_cur = std::min<rlim_t>(want, rl.rlim_max);
    setrlimit(RLIMIT_NOFILE, &rl);
  }
}

// Blocking connect + hello handshake, then switch to non-blocking for the
// workload phase. Exits the process on failure — a loadgen that can't
// even connect has nothing to measure.
int connect_and_hello(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) != 0) {
    std::fprintf(stderr, "loadgen: connect failed: %s\n", std::strerror(errno));
    std::exit(1);
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::vector<uint8_t> frame;
  net::encode_hello(frame);
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t w =
        ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (w <= 0) {
      std::fprintf(stderr, "loadgen: hello write failed\n");
      std::exit(1);
    }
    off += size_t(w);
  }
  std::vector<uint8_t> buf;
  for (;;) {
    FrameView fv;
    if (parse_frame(buf.data(), buf.size(), kMaxFramePayload, &fv) ==
        FrameParse::kOk) {
      net::Response r;
      if (!net::decode_response(fv.payload, fv.len, &r) ||
          r.status != net::Status::kOk) {
        std::fprintf(stderr, "loadgen: hello rejected\n");
        std::exit(1);
      }
      break;
    }
    const size_t at = buf.size();
    buf.resize(at + 512);
    const ssize_t r = ::read(fd, buf.data() + at, 512);
    if (r <= 0) {
      std::fprintf(stderr, "loadgen: hello read failed\n");
      std::exit(1);
    }
    buf.resize(at + size_t(r));
  }
  fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  return fd;
}

void encode_next_request(const Options& opt, ClientConn& c) {
  const uint64_t roll = splitmix(c.rng) % 100;
  const auto vid = [&] { return VertexId(splitmix(c.rng) % opt.n); };
  if (roll < 70) {
    VertexId u = vid(), v = vid();
    if (u == v) v = (v + 1) % VertexId(opt.n);
    net::encode_has_edge(c.out, 0, u, v);
  } else if (roll < 80) {
    net::encode_neighbors(c.out, 0, vid());
  } else {
    std::vector<Edge> edges;
    for (int i = 0; i < 4; ++i) {
      VertexId u = vid(), v = vid();
      if (u == v) v = (v + 1) % VertexId(opt.n);
      edges.emplace_back(u, v);
    }
    net::encode_submit(c.out, 0, net::sort_unique_keys(edges), {});
  }
  c.inflight.emplace_back(c.next_seq++, Clock::now());
}

bool pump_writes(ClientConn& c) {
  while (c.out_off < c.out.size()) {
    // MSG_NOSIGNAL: a server-side disconnect is a per-connection failure,
    // not a SIGPIPE for the whole loadgen process.
    const ssize_t w = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (w > 0) {
      c.out_off += size_t(w);
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;  // kernel buffer full; EPOLLOUT resumes us
    } else {
      return false;
    }
  }
  c.out.clear();
  c.out_off = 0;
  return true;
}

/// Reads everything available and consumes complete responses; false on a
/// dead/corrupt connection.
bool pump_reads(ClientConn& c, WorkerResult& res, bool record) {
  for (;;) {
    const size_t at = c.in.size();
    c.in.resize(at + 16 * 1024);
    const ssize_t r = ::read(c.fd, c.in.data() + at, 16 * 1024);
    if (r > 0) {
      c.in.resize(at + size_t(r));
      continue;
    }
    c.in.resize(at);
    if (r == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) return false;
    break;
  }
  for (;;) {
    FrameView fv;
    const FrameParse p = parse_frame(c.in.data() + c.in_off,
                                     c.in.size() - c.in_off, kMaxFramePayload,
                                     &fv);
    if (p == FrameParse::kNeedMore) break;
    if (p == FrameParse::kBad) return false;
    net::Response resp;
    if (!net::decode_response(fv.payload, fv.len, &resp)) return false;
    c.in_off += fv.consumed;
    if (c.inflight.empty() || c.inflight.front().first != resp.seq)
      return false;  // loadgen sends only inline-answered ops: strict FIFO
    const auto sent = c.inflight.front().second;
    c.inflight.pop_front();
    if (resp.status == net::Status::kError) {
      ++res.errors;
    } else {
      if (resp.status == net::Status::kRetryAfter) ++res.retry_afters;
      ++res.responses;
      if (record)
        res.latencies_ns.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 sent)
                .count());
    }
  }
  if (c.in_off == c.in.size()) {
    c.in.clear();
    c.in_off = 0;
  }
  return true;
}

WorkerResult worker_main(const Options& opt, std::vector<ClientConn> conns,
                         Clock::time_point start, Clock::time_point stop_send,
                         double worker_rate) {
  WorkerResult res;
  res.latencies_ns.reserve(1 << 18);
  const int epfd = epoll_create1(EPOLL_CLOEXEC);
  for (size_t i = 0; i < conns.size(); ++i) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = i;
    epoll_ctl(epfd, EPOLL_CTL_ADD, conns[i].fd, &ev);
  }
  const auto rearm = [&](size_t i) {
    epoll_event ev{};
    ev.events = conns[i].out.size() > conns[i].out_off ? (EPOLLIN | EPOLLOUT)
                                                       : EPOLLIN;
    ev.data.u64 = i;
    epoll_ctl(epfd, EPOLL_CTL_MOD, conns[i].fd, &ev);
  };
  const auto fail_conn = [&](size_t i) {
    ++res.errors;
    epoll_ctl(epfd, EPOLL_CTL_DEL, conns[i].fd, nullptr);
    ::close(conns[i].fd);
    conns[i].fd = -1;
  };

  // Closed loop: prime `depth` requests per connection. Open loop: the
  // pacer below issues them on schedule instead.
  if (!opt.open_loop) {
    for (size_t i = 0; i < conns.size(); ++i) {
      for (int d = 0; d < opt.depth; ++d) encode_next_request(opt, conns[i]);
      if (!pump_writes(conns[i])) fail_conn(i);
      if (conns[i].fd >= 0) rearm(i);
    }
  }

  const int64_t interval_ns =
      worker_rate > 0 ? int64_t(1e9 / worker_rate) : 0;
  auto next_send = start;
  size_t rr = 0;
  epoll_event evs[64];
  for (;;) {
    const auto now = Clock::now();
    const bool sending = now < stop_send;
    if (!sending) {
      // Drain phase: wait briefly for stragglers, then stop.
      bool outstanding = false;
      for (auto& c : conns)
        if (c.fd >= 0 && !c.inflight.empty()) outstanding = true;
      if (!outstanding ||
          now > stop_send + std::chrono::milliseconds(500))
        break;
    }
    int timeout_ms = 100;
    if (opt.open_loop && sending) {
      const auto wait =
          std::chrono::duration_cast<std::chrono::milliseconds>(next_send - now)
              .count();
      timeout_ms = int(std::clamp<int64_t>(wait, 0, 100));
    }
    const int nev = epoll_wait(epfd, evs, 64, timeout_ms);
    for (int e = 0; e < nev; ++e) {
      const size_t i = size_t(evs[e].data.u64);
      ClientConn& c = conns[i];
      if (c.fd < 0) continue;
      if (evs[e].events & (EPOLLERR | EPOLLHUP)) {
        fail_conn(i);
        continue;
      }
      if (evs[e].events & EPOLLIN) {
        const uint64_t before = res.responses;
        if (!pump_reads(c, res, sending)) {
          fail_conn(i);
          continue;
        }
        if (!opt.open_loop && sending) {
          // Closed loop: every completed response funds the next request.
          const uint64_t completed = res.responses - before;
          for (uint64_t k = 0; k < completed; ++k)
            encode_next_request(opt, c);
        }
      }
      if (c.out.size() > c.out_off && !pump_writes(c)) {
        fail_conn(i);
        continue;
      }
      rearm(i);
    }
    if (opt.open_loop && sending) {
      auto tnow = Clock::now();
      while (tnow >= next_send) {
        // Round-robin pacing over live connections, regardless of
        // outstanding responses — the open-loop property.
        size_t tries = conns.size();
        while (tries-- > 0 && conns[rr % conns.size()].fd < 0) ++rr;
        ClientConn& c = conns[rr++ % conns.size()];
        if (c.fd >= 0) {
          encode_next_request(opt, c);
          const size_t i = size_t(&c - conns.data());
          if (!pump_writes(c))
            fail_conn(i);
          else
            rearm(i);
        }
        next_send += std::chrono::nanoseconds(interval_ns);
        tnow = Clock::now();
      }
    }
  }
  for (auto& c : conns)
    if (c.fd >= 0) ::close(c.fd);
  ::close(epfd);
  return res;
}

RunResult run_config(const Options& opt, uint16_t port) {
  std::vector<std::vector<ClientConn>> per_worker(size_t(opt.workers));
  for (size_t i = 0; i < opt.conns; ++i) {
    ClientConn c;
    c.fd = connect_and_hello(port);
    c.rng = 0x5EED0000 + i;
    per_worker[i % size_t(opt.workers)].push_back(std::move(c));
  }
  const auto start = Clock::now();
  const auto stop_send =
      start + std::chrono::microseconds(int64_t(opt.duration_s * 1e6));
  std::vector<std::thread> threads;
  std::vector<WorkerResult> results(size_t(opt.workers));
  const double worker_rate = opt.rate / opt.workers;
  for (int w = 0; w < opt.workers; ++w)
    threads.emplace_back([&, w] {
      results[size_t(w)] = worker_main(opt, std::move(per_worker[size_t(w)]),
                                       start, stop_send, worker_rate);
    });
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  RunResult out;
  out.seconds = seconds;
  for (auto& r : results) {
    out.responses += r.responses;
    out.retry_afters += r.retry_afters;
    out.errors += r.errors;
    out.latencies_ns.insert(out.latencies_ns.end(), r.latencies_ns.begin(),
                            r.latencies_ns.end());
  }
  std::sort(out.latencies_ns.begin(), out.latencies_ns.end());
  return out;
}

int64_t percentile(const std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = size_t(q * double(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct Row {
  std::string name;
  double real_time_ns = 0;
  double qps = 0;  // attached to the ns_per_req row
};

void emit_rows(const Options& opt, const RunResult& r, std::vector<Row>& rows) {
  const std::string prefix = std::string("net/") +
                             (opt.open_loop ? "open" : "closed") +
                             "/conns:" + std::to_string(opt.conns) + "/";
  const double qps = r.responses / r.seconds;
  rows.push_back({prefix + "p50", double(percentile(r.latencies_ns, 0.50)), 0});
  rows.push_back({prefix + "p99", double(percentile(r.latencies_ns, 0.99)), 0});
  rows.push_back(
      {prefix + "p999", double(percentile(r.latencies_ns, 0.999)), 0});
  rows.push_back({prefix + "ns_per_req", qps > 0 ? 1e9 / qps : 0, qps});
  std::fprintf(stderr,
               "%s  %llu responses in %.2fs (%.0f qps), p50=%lldus "
               "p99=%lldus p999=%lldus, retry_after=%llu errors=%llu\n",
               prefix.c_str(), (unsigned long long)r.responses, r.seconds, qps,
               (long long)(percentile(r.latencies_ns, 0.50) / 1000),
               (long long)(percentile(r.latencies_ns, 0.99) / 1000),
               (long long)(percentile(r.latencies_ns, 0.999) / 1000),
               (unsigned long long)r.retry_afters,
               (unsigned long long)r.errors);
}

void print_json(const std::vector<Row>& rows) {
  std::printf("{\n  \"context\": {\"executable\": \"loadgen\"},\n");
  std::printf("  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf(
        "    {\"name\": \"%s\", \"run_name\": \"%s\", \"run_type\": "
        "\"iteration\", \"iterations\": 1, \"real_time\": %.1f, "
        "\"cpu_time\": %.1f, \"time_unit\": \"ns\", \"qps\": %.1f}%s\n",
        rows[i].name.c_str(), rows[i].name.c_str(), rows[i].real_time_ns,
        rows[i].real_time_ns, rows[i].qps, i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

Options smoke_overrides(Options opt) {
  opt.conns = 64;
  opt.workers = 2;
  opt.duration_s = 2.0;
  opt.n = 1 << 12;
  opt.shards = 2;
  opt.loops = 1;
  opt.open_loop = false;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "loadgen: %s needs a value\n", a.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--conns") opt.conns = size_t(std::stoul(next()));
    else if (a == "--workers") opt.workers = std::stoi(next());
    else if (a == "--duration-s") opt.duration_s = std::stod(next());
    else if (a == "--depth") opt.depth = std::stoi(next());
    else if (a == "--mode") opt.open_loop = std::string(next()) == "open";
    else if (a == "--rate") opt.rate = std::stod(next());
    else if (a == "--n") opt.n = size_t(std::stoul(next()));
    else if (a == "--shards") opt.shards = uint32_t(std::stoul(next()));
    else if (a == "--loops") opt.loops = std::stoi(next());
    else if (a == "--json") opt.json = true;
    else if (a == "--smoke") opt.smoke = true;
    else if (a == "--full") opt.full = true;
    else {
      std::fprintf(stderr, "loadgen: unknown flag %s\n", a.c_str());
      return 1;
    }
  }
  if (opt.smoke) opt = [&] {  // --smoke keeps --json/--mode etc. if given
    Options s = smoke_overrides(opt);
    s.json = opt.json;
    return s;
  }();

  std::vector<Row> rows;
  uint64_t total_errors = 0;

  auto run_one = [&](const Options& cfg) {
    raise_nofile(2 * cfg.conns + 256);
    FullyDynamicSpannerConfig fd;
    fd.k = 2;
    ShardedConfig sc;
    sc.num_writers = 1;
    auto svc = ShardedSpannerService::single_graph(
        cfg.n, gen_erdos_renyi(cfg.n, 2 * cfg.n, 42), cfg.shards, fd, sc);
    net::NetServerConfig ncfg;
    ncfg.num_loops = cfg.loops;
    net::NetServer server(*svc, ncfg);
    if (!server.start()) {
      std::fprintf(stderr, "loadgen: server failed to start\n");
      std::exit(1);
    }
    RunResult r = run_config(cfg, server.port());
    const auto sstats = server.stats();
    if (sstats.protocol_errors > 0) {
      std::fprintf(stderr, "loadgen: server counted %llu protocol errors\n",
                   (unsigned long long)sstats.protocol_errors);
      total_errors += sstats.protocol_errors;
    }
    total_errors += r.errors;
    emit_rows(cfg, r, rows);
    server.stop();
  };

  run_one(opt);
  if (opt.full && !opt.smoke) run_one(smoke_overrides(opt));

  if (opt.json) print_json(rows);
  if (total_errors > 0) {
    std::fprintf(stderr, "loadgen: FAILED with %llu protocol errors\n",
                 (unsigned long long)total_errors);
    return 1;
  }
  return 0;
}
