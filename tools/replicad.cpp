// replicad: one replica process (DESIGN.md §14.2) — a thin main() over
// ReplicaNode. chaosctl forks a fleet of these on loopback; operators can
// run the same binary by hand (docs/examples.md has a walkthrough).
//
// Fixed port scheme: node i of a fleet with --base-port B uses
//   ctl    = B + 3*i      (control protocol; always bound)
//   repl   = B + 3*i + 1  (replication listener; bound while leader)
//   client = B + 3*i + 2  (NetServer front door; bound while leader)
// Every peer's three ports are therefore known up front, which is what
// lets ANY follower be promoted without a config exchange.
//
//   replicad --index I --nodes N --dir PATH [--base-port B] [--leader]
//            [--leader-index L] [--n V] [--k K] [--seed S]
//            [--lease-ms MS] [--heartbeat-ms MS] [--tick-ms MS]
//            [--peer-timeout-ms MS]
//
// Status lines go to stdout once a second (chaosctl redirects them to
// node<i>.log — the postmortem artifact). SIGTERM/SIGINT stop the node
// cleanly; the durable chain under --dir survives for the next start.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "replication/node.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

const char* role_name(parspan::NodeRole r) {
  return r == parspan::NodeRole::kLeader ? "leader" : "follower";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parspan;

  uint32_t index = 0;
  uint32_t nodes = 3;
  std::string dir;
  uint16_t base_port = 24600;
  bool leader = false;
  uint32_t leader_index = 0;
  ReplicaNodeConfig cfg;
  cfg.spanner.k = 2;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "replicad: %s needs a value\n", a.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--index") index = uint32_t(std::stoul(next()));
    else if (a == "--nodes") nodes = uint32_t(std::stoul(next()));
    else if (a == "--dir") dir = next();
    else if (a == "--base-port") base_port = uint16_t(std::stoul(next()));
    else if (a == "--leader") leader = true;
    else if (a == "--leader-index") leader_index = uint32_t(std::stoul(next()));
    else if (a == "--n") cfg.n = size_t(std::stoul(next()));
    else if (a == "--k") cfg.spanner.k = uint32_t(std::stoul(next()));
    else if (a == "--seed") cfg.spanner.seed = std::stoull(next());
    else if (a == "--lease-ms") cfg.lease_ms = uint32_t(std::stoul(next()));
    else if (a == "--heartbeat-ms")
      cfg.heartbeat_ms = uint32_t(std::stoul(next()));
    else if (a == "--tick-ms") cfg.tick_ms = uint32_t(std::stoul(next()));
    else if (a == "--peer-timeout-ms")
      cfg.peer_timeout_ms = uint32_t(std::stoul(next()));
    else {
      std::fprintf(stderr, "replicad: unknown flag %s\n", a.c_str());
      return 1;
    }
  }
  if (dir.empty() || index >= nodes) {
    std::fprintf(stderr,
                 "replicad: --dir is required and --index must be < --nodes\n");
    return 1;
  }

  cfg.index = index;
  cfg.fs = std::make_shared<PosixFs>();
  cfg.dir = dir;
  cfg.start_as_leader = leader;
  cfg.initial_leader = leader_index;
  for (uint32_t i = 0; i < nodes; ++i) {
    PeerAddr p;
    p.ctl_port = uint16_t(base_port + 3 * i);
    p.repl_port = uint16_t(base_port + 3 * i + 1);
    p.client_port = uint16_t(base_port + 3 * i + 2);
    cfg.peers.push_back(p);
  }

  signal(SIGTERM, on_signal);
  signal(SIGINT, on_signal);
  signal(SIGPIPE, SIG_IGN);

  ReplicaNode node(std::move(cfg));
  if (!node.start()) {
    std::fprintf(stderr, "replicad: node %u failed to start (ports in use?)\n",
                 index);
    return 1;
  }
  std::printf("replicad: node %u up (ctl=%u repl=%u client=%u)%s\n", index,
              base_port + 3 * index, base_port + 3 * index + 1,
              base_port + 3 * index + 2, leader ? " as bootstrap leader" : "");
  std::fflush(stdout);

  auto last_report = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto now = std::chrono::steady_clock::now();
    if (now - last_report >= std::chrono::seconds(1)) {
      last_report = now;
      const NodeStatus s = node.status();
      std::printf("replicad: node %u %s epoch=%llu v=%llu checksum=%016llx "
                  "durable=%llu lease=%d resyncs=%llu rejects=%llu\n",
                  index, role_name(s.role), (unsigned long long)s.epoch,
                  (unsigned long long)s.applied_version,
                  (unsigned long long)s.applied_checksum,
                  (unsigned long long)s.durable_version,
                  s.lease_healthy ? 1 : 0, (unsigned long long)s.resyncs,
                  (unsigned long long)s.rejects);
      std::fflush(stdout);
    }
  }
  node.stop();
  std::printf("replicad: node %u stopped\n", index);
  return 0;
}
