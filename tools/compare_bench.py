#!/usr/bin/env python3
"""Compare a fresh bench-smoke run against the checked-in BENCH_*.json medians.

The repo root carries one BENCH_*.json per bench family, written by
bench/run_benches.sh as {binary_name: <google-benchmark json doc>, ...} —
the perf trajectory tracked across PRs. The CI bench-smoke job runs every
bench binary with a tiny --benchmark_min_time and feeds the per-binary JSON
files here; this script prints a per-benchmark delta table (GitHub-flavored
markdown, appended to the job summary) and flags regressions above the
threshold.

Deltas are advisory on shared CI runners (noisy neighbors, tiny sampling
windows): a flagged row is a prompt to rerun bench/run_benches.sh on a quiet
host, not a merge blocker — UNLESS the row is on the --stable-rows
allowlist. Stable rows are benchmarks measured insensitive to runner noise
(big fixed workloads, medians); a stable row slower than the baseline by
more than --fail-over percent fails the job with exit 1. A stable row that
is named but never compared (missing from the baselines or from the smoke
run) exits 2 — a gate that silently stops gating is worse than a loud one.
Benchmarks whose names don't appear in the baselines
(e.g. tiny-size runs that change the workload, or newly added benches) are
counted but not compared; binaries listed via --skip are excluded entirely
(bench_service/bench_sharded run at PARSPAN_BENCH_TINY sizes in CI, which
reuses full-size benchmark names on a different workload — a delta would be
meaningless).

Baselines written with --benchmark_repetitions (BENCH_wal.json) carry only
aggregate rows; their `_median` entries compare against plain smoke rows via
`run_name`, so repetition-aggregated and single-run documents mix freely.

Exit codes: 0 = compared, no stable-row breach (other regressions are
advisory, never fail the job);
1 = a --stable-rows benchmark regressed past --fail-over percent;
2 = missing inputs (no baselines, no/unreadable smoke output, or a
    stable row that never got compared);
3 = malformed baseline (bad JSON or not a run_benches.sh document) — every
failure is a one-line actionable message, never a traceback. Structural
failures (2, 3) take priority over the perf gate (1).

Usage:
  tools/compare_bench.py --baseline-dir . --fresh-dir bench-smoke-out \
      [--threshold 0.25] [--skip bench_service bench_sharded ...] \
      [--fail-over 40 --stable-rows BM_ShipApplyThroughput ...]
"""

import argparse
import glob
import json
import os
import statistics
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_baselines(baseline_dir):
    """name -> {benchmark_name -> median real_time in ns} per bench binary.

    Exits 3 with a one-line message on any baseline this script can't use:
    a hand-edited or truncated BENCH_*.json must fail loudly, not as a
    traceback (and not silently as an empty comparison).
    """
    out = {}
    for path in sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json"))):
        try:
            with open(path) as f:
                doc = json.load(f)
            if not isinstance(doc, dict):
                raise ValueError("top level is not a {binary: doc} object")
            for binary, sub in doc.items():
                out.setdefault(binary, {}).update(extract_medians(sub))
        except (OSError, json.JSONDecodeError, ValueError, TypeError,
                KeyError, AttributeError) as e:
            print(f"error: malformed baseline {path} ({e}) — regenerate it "
                  "with bench/run_benches.sh", file=sys.stderr)
            raise SystemExit(3)
    return out


def extract_medians(doc):
    """benchmark name -> median real_time (ns) from one google-benchmark doc."""
    samples = {}
    for b in doc.get("benchmarks", []):
        # Prefer explicit median aggregates when a run used repetitions.
        if b.get("aggregate_name") not in (None, "median"):
            continue
        name = b.get("run_name", b["name"])
        ns = float(b["real_time"]) * TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        samples.setdefault(name, []).append(ns)
    return {name: statistics.median(v) for name, v in samples.items()}


def fmt_ms(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} us"
    return f"{ns:.0f} ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default=".")
    ap.add_argument("--fresh-dir", required=True,
                    help="directory of <bench_binary>.json smoke outputs")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="warn above this relative slowdown (default 0.25)")
    ap.add_argument("--skip", nargs="*", default=[],
                    help="bench binaries to exclude from comparison")
    ap.add_argument("--fail-over", type=float, default=None, metavar="PCT",
                    help="fail (exit 1) when a --stable-rows benchmark is "
                         "slower than baseline by more than PCT percent")
    ap.add_argument("--stable-rows", nargs="*", default=[], metavar="NAME",
                    help="benchmark names gated by --fail-over (exact "
                         "run_name match, e.g. BM_TcpFollowerCatchup/64)")
    args = ap.parse_args()
    if args.stable_rows and args.fail_over is None:
        ap.error("--stable-rows requires --fail-over")

    baselines = load_baselines(args.baseline_dir)
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 2

    fresh_files = sorted(glob.glob(os.path.join(args.fresh_dir, "*.json")))
    if not fresh_files:
        print(f"error: no fresh smoke JSON in {args.fresh_dir}", file=sys.stderr)
        return 2

    rows = []
    uncompared = 0
    skipped_binaries = []
    for path in fresh_files:
        binary = os.path.splitext(os.path.basename(path))[0]
        if binary in args.skip:
            skipped_binaries.append(binary)
            continue
        try:
            with open(path) as f:
                doc = json.load(f)
            fresh = extract_medians(doc)
        except (OSError, json.JSONDecodeError, ValueError, TypeError,
                KeyError, AttributeError) as e:
            print(f"error: unusable smoke output {path} ({e}) — did the bench "
                  "binary crash mid-write?", file=sys.stderr)
            return 2
        base = baselines.get(binary, {})
        for name, ns in sorted(fresh.items()):
            if name in base:
                rows.append((binary, name, base[name], ns))
            else:
                uncompared += 1

    print("## Bench smoke vs checked-in medians")
    print()
    print(f"Threshold: warn above **{args.threshold:+.0%}** — advisory on "
          "shared runners, never a merge blocker.")
    print()
    print("| binary | benchmark | baseline | smoke | delta | |")
    print("|---|---|---:|---:|---:|---|")
    warned = 0
    stable = set(args.stable_rows)
    stable_seen = set()
    gate_failures = []
    fail_frac = (args.fail_over / 100.0) if args.fail_over is not None else None
    for binary, name, base_ns, fresh_ns in rows:
        delta = (fresh_ns - base_ns) / base_ns
        flag = ""
        if name in stable:
            stable_seen.add(name)
            if fail_frac is not None and delta > fail_frac:
                flag = "❌ stable row regressed"
                gate_failures.append((binary, name, delta))
            elif delta > args.threshold:
                flag = "⚠️ slower (stable row)"
                warned += 1
        elif delta > args.threshold:
            flag = "⚠️ slower"
            warned += 1
        elif delta < -args.threshold:
            flag = "🟢 faster"
        print(f"| {binary} | `{name}` | {fmt_ms(base_ns)} | {fmt_ms(fresh_ns)} "
              f"| {delta:+.1%} | {flag} |")
    print()
    notes = [f"{len(rows)} compared", f"{uncompared} without a baseline match"]
    if skipped_binaries:
        notes.append("skipped (tiny-size workloads): "
                     + ", ".join(skipped_binaries))
    print("_" + "; ".join(notes) + "._")
    if warned:
        print(f"\n**{warned} benchmark(s) regressed past the threshold** — "
              "rerun `bench/run_benches.sh` on a quiet host to confirm.")

    # The --fail-over gate. An allowlisted row that was never compared is a
    # missing input: the gate must not pass vacuously.
    missing_stable = stable - stable_seen
    if missing_stable:
        print("error: stable row(s) never compared: "
              + ", ".join(sorted(missing_stable))
              + " — regenerate the baseline with bench/run_benches.sh or fix "
                "the row name", file=sys.stderr)
        return 2
    if gate_failures:
        print(f"\n**{len(gate_failures)} stable row(s) regressed more than "
              f"{args.fail_over:.0f}% — failing the job:**")
        for binary, name, delta in gate_failures:
            print(f"- {binary} `{name}`: {delta:+.1%}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
