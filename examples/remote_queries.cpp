// Remote queries: the network front door end to end (DESIGN.md §13).
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/example_remote_queries
//
// A sharded service goes live behind a NetServer on an ephemeral loopback
// port, and everything after that happens over the wire protocol — the
// CRC-framed, varint-delta-compressed binary format the WAL conventions
// froze. One client submits edge batches and runs the flush barrier for
// read-your-writes; another pins the flush's VersionVector and proves the
// pinned snapshot stays frozen while later publishes race past it; a
// third wedges a tiny admission queue and shows backpressure arriving as
// a RETRY_AFTER protocol answer instead of a stalled connection. The same
// client and protocol reach a server across machines — loopback is just
// where the example lives.
#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/sharded_service.hpp"

using namespace parspan;

int main() {
  const size_t n = 4096;

  // --- Serve one vertex-partitioned graph over two shards. -----------------
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;  // stretch 2k-1 = 3
  auto svc = ShardedSpannerService::single_graph(
      n, gen_erdos_renyi(n, 2 * n, /*seed=*/11), /*num_shards=*/2, cfg);

  net::NetServer server(*svc);  // 127.0.0.1, ephemeral port
  if (!server.start()) {
    std::printf("failed to start server\n");
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // --- Hello handshake + composed queries over the wire. -------------------
  auto client = net::NetClient::connect("127.0.0.1", server.port());
  if (!client) return 1;
  std::printf("hello: %u shards, single_graph=%d, vertex space %llu\n",
              client->info().num_shards, int(client->info().single_graph),
              (unsigned long long)client->info().vertex_space);

  // --- Write, then flush for read-your-writes. -----------------------------
  // submit() is asynchronous ingestion; the flush barrier returns the
  // VersionVector every later view dominates. Until it completes, a read
  // may race the drain — after it, the writes are guaranteed visible.
  client->submit(0, {Edge(1, 2), Edge(2, 3), Edge(3, 2000)}, {});
  auto vv = client->flush();
  if (!vv) return 1;
  std::printf("flushed: versions [%llu, %llu]\n", (unsigned long long)(*vv)[0],
              (unsigned long long)(*vv)[1]);
  std::printf("has_edge(3, 2000) = %d\n",
              int(*client->has_edge(0, 3, 2000)));  // pin 0 = current view

  // --- Pin the flush's VersionVector; later publishes can't move it. -------
  auto pin = client->pin(*vv);
  if (pin.status != net::Status::kOk) return 1;
  client->submit(0, {Edge(5, 6)}, {});
  client->flush();
  std::printf("after a later publish: pinned has_edge(5,6)=%d, "
              "current has_edge(5,6)=%d\n",
              int(*client->has_edge(pin.pin.id, 5, 6)),
              int(*client->has_edge(0, 5, 6)));
  client->unpin(pin.pin.id);

  // --- Backpressure is a protocol answer, not a stalled socket. ------------
  // A second service with a tiny paused admission queue: the first submit
  // wedges it, the second bounces with RETRY_AFTER + a backoff hint while
  // the event loop keeps serving everything else.
  ShardedConfig tiny;
  tiny.queue_capacity = 1;
  tiny.start_paused = true;
  auto small = ShardedSpannerService::single_graph(64, {}, 1, cfg, tiny);
  net::NetServer small_server(*small);
  if (!small_server.start()) return 1;
  auto writer = net::NetClient::connect("127.0.0.1", small_server.port());
  if (!writer) return 1;
  writer->submit(0, {Edge(1, 2)}, {});  // fills capacity-1 queue
  auto pushback = writer->submit(0, {Edge(3, 4)}, {});
  std::printf("wedged queue: status=%s retry_after=%ums\n",
              pushback.status == net::Status::kRetryAfter ? "RETRY_AFTER"
                                                          : "unexpected",
              pushback.retry_after_ms);
  small->resume();  // drain frees capacity; the retry now admits
  auto retry = writer->submit(0, {Edge(3, 4)}, {});
  std::printf("after resume: status=%s\n",
              retry.status == net::Status::kOk ? "OK" : "unexpected");

  auto stats = client->stats();
  if (stats)
    std::printf("server stats: %llu ingested, %llu rejected, %llu timed out\n",
                (unsigned long long)stats->edges_ingested,
                (unsigned long long)stats->edges_rejected,
                (unsigned long long)stats->edges_timed_out);
  return 0;
}
