// Network overlay scenario: a service mesh whose links churn over time
// (sliding window) while the control plane maintains an O(n)-edge overlay
// with polylogarithmic stretch — the sparse spanner of Theorem 1.3.
//
// This is the packet-routing motivation of the paper's introduction: the
// overlay has asymptotically as few edges as a spanning tree, yet routing
// over it only stretches paths by a polylog factor.
#include <cstdio>

#include "core/sparse_spanner.hpp"
#include "graph/bfs.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace parspan;

int main() {
  const size_t n = 1500;
  auto [initial, batches] =
      gen_sliding_window(n, /*universe=*/30000, /*window=*/12000,
                         /*batch=*/400, /*num_batches=*/15, /*seed=*/3);

  SparseSpannerConfig cfg;
  cfg.seed = 11;
  Timer t;
  SparseSpanner overlay(n, initial, cfg);
  std::printf(
      "overlay init: %zu links -> %zu overlay edges (%.2f per node, "
      "stretch bound %u) in %.1f ms\n",
      initial.size(), overlay.spanner_size(),
      double(overlay.spanner_size()) / double(n), overlay.stretch_bound(),
      t.elapsed_ms());

  DynamicGraph g(n);
  g.insert_edges(initial);
  Rng rng(99);
  for (size_t i = 0; i < batches.size(); ++i) {
    t.reset();
    overlay.update(batches[i].insertions, batches[i].deletions);
    double ms = t.elapsed_ms();
    g.erase_edges(batches[i].deletions);
    g.insert_edges(batches[i].insertions);

    // Spot-check: routing stretch on a few random connected pairs.
    DynamicGraph h(n);
    h.insert_edges(overlay.spanner_edges());
    double worst = 0;
    for (int probe = 0; probe < 5; ++probe) {
      VertexId s = VertexId(rng.next_below(n));
      auto dg = bfs_distances(g, s);
      auto dh = bfs_distances(h, s);
      for (int q = 0; q < 20; ++q) {
        VertexId v = VertexId(rng.next_below(n));
        if (dg[v] == kUnreached || dg[v] == 0) continue;
        worst = std::max(worst, double(dh[v]) / double(dg[v]));
      }
    }
    std::printf(
        "epoch %2zu: %6zu links, overlay %5zu edges (%.2f/node), sampled "
        "stretch <= %.1f, update %.2f ms\n",
        i, g.num_edges(), overlay.spanner_size(),
        double(overlay.spanner_size()) / double(n), worst, ms);
  }
  return 0;
}
