// Crash recovery: write-ahead logging, a power failure, and a checksum-
// verified restore (DESIGN.md §10).
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/example_crash_recovery
//
// The walkthrough runs a SpannerService with durability enabled over MemFs
// — the in-memory filesystem of the fault-injection harness — so the
// "power failure" is a deterministic in-process event: at a scheduled I/O
// operation the disk dies, the unsynced tail of every file survives only
// as a random prefix (a torn tail), and recovery has to rebuild the
// service from exactly the bytes a real crash would have left. Swap MemFs
// for PosixFs and the same code persists across real process restarts.
#include <cstdio>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "durability/fault_fs.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "service/spanner_service.hpp"
#include "util/rng.hpp"
#include "verify/spanner_check.hpp"

using namespace parspan;

int main() {
  const size_t n = 600;
  const uint32_t k = 3;  // stretch 2k-1 = 5

  auto [initial, batches] = gen_mixed_stream(n, 10 * n, 128, 24, /*seed=*/11);
  FullyDynamicSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = 42;

  // --- Phase 1: a durable service ingests half the stream. -----------------
  auto fs = std::make_shared<MemFs>();
  DurabilityOptions opts;
  opts.fsync_policy = FsyncPolicy::kEveryN;  // sync once per 4 batches:
  opts.fsync_every_n = 4;                    // bounded loss, amortized fsync
  opts.checkpoint_every = 8;                 // bounded replay after a crash

  auto svc = std::make_unique<SpannerService>(
      std::make_unique<FullyDynamicSpanner>(n, initial, cfg), 2 * k - 1);
  if (!svc->enable_durability(fs, "dur", opts, initial)) {
    std::printf("enable_durability failed\n");
    return 1;
  }

  // checksums[v] = content checksum the live run published at version v —
  // the oracle recovery must reproduce bit-exactly.
  std::vector<uint64_t> checksums{svc->snapshot()->checksum()};
  const size_t half = batches.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    auto res = svc->apply(batches[i].insertions, batches[i].deletions);
    checksums.push_back(res.snapshot->checksum());
  }
  std::printf("ingested %zu batches; durable through version %llu of %llu\n",
              half,
              (unsigned long long)svc->durability()->durable_version(),
              (unsigned long long)svc->version());

  // --- Phase 2: power fails mid-batch. --------------------------------------
  // The next mutating I/O operation dies mid-append — a short write — and
  // every operation after it fails too. Under every-N the writer stages
  // frames in user space and writes them out at sync time, so the next
  // operation is that multi-frame flush: the crash tears it partway
  // through. The service goes sticky-failed: it keeps serving reads but
  // refuses to claim durability.
  fs->crash_at_op(1);
  size_t applied = half;
  while (applied < batches.size() && !svc->durability()->failed()) {
    auto res = svc->apply(batches[applied].insertions,
                          batches[applied].deletions);
    checksums.push_back(res.snapshot->checksum());
    ++applied;
  }
  const uint64_t watermark = svc->durability()->durable_version();
  std::printf("crash at version %llu; durability watermark %llu\n",
              (unsigned long long)svc->version(),
              (unsigned long long)watermark);

  svc.reset();  // the process is gone
  Rng rng(7);
  fs->crash_and_restart(CrashTail::kKeepPrefix, rng);  // torn unsynced tail

  // --- Phase 3: recover. ----------------------------------------------------
  // Newest valid checkpoint + checksum-verified WAL replay, truncating the
  // torn tail at the first bad frame; then a rebase epoch: a fresh backend
  // is rebuilt from the recovered graph and published as the next version.
  SpannerService::RecoveryReport rep;
  auto recovered = SpannerService::recover(
      fs, "dur", opts,
      [&cfg](uint64_t rn, const std::vector<Edge>& edges, uint32_t) {
        return std::make_unique<FullyDynamicSpanner>(size_t(rn), edges, cfg);
      },
      &rep);
  if (recovered == nullptr) {
    std::printf("recovery failed: no valid checkpoint\n");
    return 1;
  }
  std::printf(
      "recovered version %llu (checksum %016llx, %llu records replayed, "
      "tail %s), serving rebase version %llu\n",
      (unsigned long long)rep.restored_version,
      (unsigned long long)rep.restored_checksum,
      (unsigned long long)rep.replayed_records,
      rep.tail_truncated ? "TORN (truncated)" : "clean",
      (unsigned long long)rep.published_version);

  // The durability contract: everything synced survives, and whatever
  // survives is bit-exact — the restored checksum equals what the live run
  // published at that version.
  bool ok = rep.restored_version >= watermark &&
            rep.restored_checksum == checksums[rep.restored_version];
  std::printf("watermark honored: %s; checksum matches live history: %s\n",
              rep.restored_version >= watermark ? "YES" : "NO",
              rep.restored_checksum == checksums[rep.restored_version]
                  ? "YES" : "NO");

  // --- Phase 4: carry on from the recovered state. --------------------------
  // Re-apply the batches past the restored version, then verify stretch
  // against the graph those batches produce — the recovered service is a
  // full peer of the original, not a read-only archive.
  DynamicGraph g(n);
  g.insert_edges(initial);
  for (size_t i = 0; i < rep.restored_version; ++i) {
    g.erase_edges(batches[i].deletions);
    g.insert_edges(batches[i].insertions);
  }
  for (size_t i = rep.restored_version; i < batches.size(); ++i) {
    recovered->apply(batches[i].insertions, batches[i].deletions);
    g.erase_edges(batches[i].deletions);
    g.insert_edges(batches[i].insertions);
  }
  bool stretch_ok =
      is_spanner(n, g.edges(), recovered->export_spanner(), 2 * k - 1);
  std::printf("resumed ingest to version %llu; stretch <= %u verified: %s\n",
              (unsigned long long)recovered->version(), 2 * k - 1,
              stretch_ok ? "YES" : "NO");
  return ok && stretch_ok ? 0 : 1;
}
