// Bundle anatomy: peel a graph into a t-bundle of spanners (Theorem 1.5)
// and watch how levels absorb the graph under deletions. Each level H_i is
// an O(log n)-spanner of what the previous levels left behind — the
// t-bundle is the backbone of the sparsifier chain.
#include <cstdio>

#include "core/bundle.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"

using namespace parspan;

int main() {
  const size_t n = 400;
  auto edges = gen_erdos_renyi(n, 30 * n, 9);

  BundleConfig cfg;
  cfg.t = 3;
  cfg.instances = 5;  // forests per monotone-spanner level
  cfg.seed = 4;
  Timer t;
  SpannerBundle bundle(n, edges, cfg);
  std::printf("t=%u bundle of G(n=%zu, m=%zu) built in %.1f ms\n", cfg.t, n,
              edges.size(), t.elapsed_ms());
  for (size_t i = 0; i < bundle.levels(); ++i)
    std::printf("  level %zu: %5zu edges (stretch bound %u)\n", i,
                bundle.level_edges(i).size(), bundle.level_stretch_bound(i));
  std::printf("  residual (not in bundle): %zu edges\n",
              bundle.residual_edges().size());

  auto stream = gen_decremental_stream(edges, 512, 11);
  size_t deleted = 0;
  for (auto& b : stream) {
    bundle.delete_edges(b.deletions);
    deleted += b.deletions.size();
    if (deleted % 2048 < 512 || bundle.alive_edges() == 0) {
      std::printf(
          "after %5zu deletions: bundle %5zu edges, residual %5zu, "
          "lifetime recourse %.2f per deletion\n",
          deleted, bundle.bundle_size(), bundle.residual_edges().size(),
          double(bundle.cumulative_recourse()) / double(deleted));
    }
  }
  return 0;
}
