// Live queries: serve spanner reads while updates stream in (DESIGN.md §8).
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/example_live_queries
//
// One writer thread drives a FullyDynamicSpanner through a mixed
// insert/delete stream via SpannerService — each batch publishes a new
// immutable SpannerSnapshot version. Three reader threads concurrently
// answer has_edge / neighbors / bounded-BFS distance queries against
// whatever version they pinned, never blocking the writer and never seeing
// a half-applied batch. This is the read-mostly serving pattern the
// batch-dynamic structures exist for: queries hit a consistent view while
// the structure absorbs updates.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "service/spanner_service.hpp"
#include "verify/spanner_check.hpp"

using namespace parspan;

int main() {
  const size_t n = 2000;
  const uint32_t k = 3;  // stretch 2k-1 = 5
  const size_t num_batches = 40;

  // Denser than n^{1+1/k} so sparsification is visible (below that the
  // spanner may legitimately keep every edge).
  auto [initial, batches] = gen_mixed_stream(n, 40 * n, 256, num_batches, 7);

  FullyDynamicSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = 42;
  SpannerService service(
      std::make_unique<FullyDynamicSpanner>(n, initial, cfg), 2 * k - 1);
  std::printf("serving version %zu: %zu vertices, %zu spanner edges\n",
              size_t(service.version()), n,
              service.snapshot()->num_edges());

  // Readers: pin a snapshot, answer a block of queries against it, refresh.
  std::atomic<bool> done{false};
  const int R = 3;
  std::vector<uint64_t> reads(R, 0);
  std::vector<uint64_t> versions_seen(R, 0);
  std::vector<std::thread> readers;
  for (int t = 0; t < R; ++t) {
    readers.emplace_back([&, t] {
      uint64_t ops = 0, sink = 0, last_version = 0, distinct = 0;
      uint64_t x = uint64_t(t) + 0x9e3779b97f4a7c15ULL;
      while (!done.load(std::memory_order_acquire)) {
        SpannerSnapshot::Ptr snap = service.snapshot();
        if (snap->version() != last_version || ops == 0) {
          last_version = snap->version();
          ++distinct;
        }
        for (int q = 0; q < 256; ++q) {
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
          VertexId u = VertexId(x % n);
          auto nb = snap->neighbors(u);
          sink += nb.size();
          if (!nb.empty()) {
            VertexId v = nb[size_t(x >> 32) % nb.size()];
            sink += snap->has_edge(u, v);              // always true
            sink += snap->distance(u, v, 2);           // always 1
          }
          ++ops;
        }
      }
      reads[size_t(t)] = ops + (sink == 0 ? 1 : 0);
      versions_seen[size_t(t)] = distinct;
    });
  }

  // Writer: apply the stream, one published version per batch.
  size_t recourse = 0;
  for (size_t i = 0; i < batches.size(); ++i) {
    auto r = service.apply(batches[i].insertions, batches[i].deletions);
    recourse += r.diff.inserted.size() + r.diff.removed.size();
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  uint64_t total_reads = 0;
  for (int t = 0; t < R; ++t) {
    std::printf("reader %d: %zu queries across %zu distinct versions\n", t,
                size_t(reads[size_t(t)]), size_t(versions_seen[size_t(t)]));
    total_reads += reads[size_t(t)];
  }
  std::printf(
      "writer: %zu batches -> version %zu, %zu spanner changes total\n",
      num_batches, size_t(service.version()), recourse);
  std::printf("total concurrent reads: %zu\n", size_t(total_reads));

  // Final verification: the served snapshot equals the backend's spanner
  // and is a (2k-1)-spanner of the live graph.
  DynamicGraph g(n);
  g.insert_edges(initial);
  for (auto& b : batches) {
    g.erase_edges(b.deletions);
    g.insert_edges(b.insertions);
  }
  SpannerSnapshot::Ptr fin = service.snapshot();
  bool consistent = fin->consistent() && fin->version() == num_batches;
  bool ok = is_spanner(n, g.edges(), fin->edges(), 2 * k - 1);
  std::printf("final snapshot consistent: %s; stretch <= %u verified: %s\n",
              consistent ? "YES" : "NO", 2 * k - 1, ok ? "YES" : "NO");
  return (consistent && ok) ? 0 : 1;
}
