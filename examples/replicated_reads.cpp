// Replicated reads: WAL shipping to follower replicas, read-your-writes
// routing across them, and a failover (DESIGN.md §11).
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/example_replicated_reads
//
// One durable leader ships its committed WAL to two followers over
// in-process transports — one healthy channel, one deliberately lossy
// (drops, duplicates, reorders, bit flips). Every applied record is
// checksum-verified on the follower, so the lossy link can delay
// convergence but never corrupt it. Reads then spread across the replicas
// under a read-your-writes watermark, and at the end the leader "dies"
// and the longest durable log is promoted in its place. Swap MemFs for
// PosixFs and ChannelTransport for a real socket and the same protocol
// runs across machines.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "durability/fault_fs.hpp"
#include "graph/generators.hpp"
#include "replication/failover.hpp"
#include "replication/replica_set.hpp"

using namespace parspan;

int main() {
  const size_t n = 600;
  const uint32_t k = 3;  // stretch 2k-1 = 5

  auto [initial, batches] = gen_mixed_stream(n, 10 * n, 128, 24, /*seed=*/7);
  FullyDynamicSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = 42;

  // --- A durable leader and two followers. ---------------------------------
  // The shippers tail the leader's WAL directory read-only and never ship
  // past ShardDurability::durable_version() — a follower can only ever
  // hold state the leader could itself recover.
  auto leader_fs = std::make_shared<MemFs>();
  DurabilityOptions opts;
  opts.checkpoint_every = 8;
  auto leader = std::make_unique<SpannerService>(
      std::make_unique<FullyDynamicSpanner>(n, initial, cfg), 2 * k - 1);
  if (!leader->enable_durability(leader_fs, "leader", opts, initial)) {
    std::printf("enable_durability failed\n");
    return 1;
  }

  ReplicationGroup group(leader.get(), /*epoch=*/1);
  // Follower 0: healthy channel. Follower 1: a hostile link — drops,
  // duplicates, reorders, and flips bits. Frame CRCs + per-record content
  // checksums turn every mangled delivery into a counted reject/retry.
  FaultPlan plan;
  plan.drop_p = 0.10;
  plan.dup_p = 0.10;
  plan.reorder_p = 0.15;
  plan.bit_flip_p = 0.05;
  auto lossy = std::make_shared<FaultyTransport>(plan, /*seed=*/99);
  for (int i = 0; i < 2; ++i) {
    std::shared_ptr<ReplicationTransport> t =
        i == 0 ? std::static_pointer_cast<ReplicationTransport>(
                     std::make_shared<ChannelTransport>())
               : lossy;
    group.add_follower(t, std::make_shared<MemFs>(), "replica", opts);
  }

  // --- Ingest + replicate: one pump round per batch. -----------------------
  for (const auto& b : batches) {
    leader->apply(b.insertions, b.deletions);
    group.pump();
  }
  // The lossy link may still owe a few frames; pump until converged.
  int extra = 0;
  while (!group.converged() && extra < 200) {
    group.pump();
    ++extra;
  }
  std::printf("converged after %d extra pump rounds\n", extra);
  for (size_t i = 0; i < group.num_followers(); ++i) {
    const FollowerReplica& f = group.follower(i);
    std::printf(
        "  follower %zu: version %llu, %llu records applied, %llu rejects, "
        "%llu dup drops, %llu resyncs\n",
        i, (unsigned long long)f.applied_version(),
        (unsigned long long)f.records_applied(),
        (unsigned long long)f.rejects(),
        (unsigned long long)f.duplicates_dropped(),
        (unsigned long long)f.snapshot_resyncs());
  }
  auto st = lossy->stats();
  std::printf(
      "  lossy link injected: %llu drops, %llu dups, %llu reorders, "
      "%llu bit flips\n",
      (unsigned long long)st.frames_dropped,
      (unsigned long long)st.frames_duplicated,
      (unsigned long long)st.frames_reordered,
      (unsigned long long)st.frames_bit_flipped);

  // --- Read-your-writes reads, spread across the replicas. -----------------
  // A client that observed version v asks for a snapshot at >= v; a
  // caught-up follower serves it (round-robin), the leader only as
  // fallback — read scaling without stale reads.
  const uint64_t watermark = leader->durability()->durable_version();
  int served_by_follower = 0;
  for (int r = 0; r < 6; ++r) {
    auto read = group.read_at_least(watermark);
    if (read.source >= 0) ++served_by_follower;
    std::printf("  read %d served by %s (version %llu)\n", r,
                read.source >= 0 ? "follower" : "leader",
                (unsigned long long)read.snap->version());
  }
  std::printf("%d of 6 reads served by followers\n", served_by_follower);

  // --- Failover: the leader dies; the longest durable log wins. ------------
  std::vector<std::unique_ptr<FollowerReplica>> survivors;
  for (int i = 0; i < 2; ++i) survivors.push_back(group.detach(0));
  leader.reset();  // gone

  auto elect = elect_longest_log(std::vector<const FollowerReplica*>{
      survivors[0].get(), survivors[1].get()});
  if (!elect) {
    std::printf("no recoverable replica\n");
    return 1;
  }
  std::printf("elected follower %zu at durable version %llu\n", elect->winner,
              (unsigned long long)elect->durable_version);

  SpannerService::RecoveryReport rep;
  auto promoted = promote_follower(
      std::move(survivors[elect->winner]),
      [cfg](uint64_t nn, const std::vector<Edge>& edges, uint32_t) {
        return std::make_unique<FullyDynamicSpanner>(static_cast<size_t>(nn),
                                                     edges, cfg);
      },
      &rep);
  if (promoted == nullptr) {
    std::printf("promotion failed\n");
    return 1;
  }
  std::printf(
      "promoted: restored version %llu (checksum %016llx), rebase published "
      "as %llu\n",
      (unsigned long long)rep.restored_version,
      (unsigned long long)rep.restored_checksum,
      (unsigned long long)rep.published_version);

  // The new leader serves immediately, and keeps ingesting under epoch 2.
  promoted->apply({Edge(0, VertexId(n / 2))}, {});
  std::printf("new leader serving at version %llu\n",
              (unsigned long long)promoted->snapshot()->version());
  return 0;
}
