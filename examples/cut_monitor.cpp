// Cut monitoring scenario: estimate cut sizes of a churning graph from a
// small weighted summary — the fully-dynamic spectral sparsifier of
// Theorem 1.6. A monitoring system can answer "how much capacity crosses
// this partition?" from the sparsifier instead of the full graph.
#include <cstdio>
#include <unordered_set>

#include "core/sparsifier.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "verify/laplacian.hpp"

using namespace parspan;

int main() {
  // Dense graph: the bundle levels keep O(n·t·instances) edges, so the
  // summary only compresses when m is well above that (cf. the paper's
  // O(n t log^3 n) bundle size).
  const size_t n = 300;
  auto [initial, batches] = gen_mixed_stream(n, 44 * n, 300, 12, /*seed=*/5);

  FullyDynamicSparsifierConfig cfg;
  cfg.stage.t = 2;         // quality knob: deeper bundles = tighter epsilon
  cfg.stage.instances = 5;  // forests per monotone spanner level
  cfg.seed = 21;
  Timer t;
  FullyDynamicSparsifier sp(n, initial, cfg);
  std::printf("init: %zu edges -> sparsifier %zu weighted edges (%.1f ms)\n",
              sp.num_edges(), sp.size(), t.elapsed_ms());

  // A fixed partition to monitor (first half vs second half).
  std::vector<uint8_t> in_s(n, 0);
  for (size_t v = 0; v < n / 2; ++v) in_s[v] = 1;

  std::vector<Edge> live = initial;
  for (size_t i = 0; i < batches.size(); ++i) {
    t.reset();
    sp.update(batches[i].insertions, batches[i].deletions);
    double ms = t.elapsed_ms();
    // Maintain the true edge list for the report.
    {
      std::unordered_set<EdgeKey> dead;
      for (auto& e : batches[i].deletions) dead.insert(e.key());
      std::vector<Edge> next;
      for (auto& e : live)
        if (!dead.count(e.key())) next.push_back(e);
      for (auto& e : batches[i].insertions) next.push_back(e);
      live = std::move(next);
    }
    std::vector<WeightedEdge> gw;
    for (const Edge& e : live) gw.push_back({e, 1.0});
    double true_cut = cut_weight(gw, in_s);
    double est_cut = cut_weight(sp.sparsifier_edges(), in_s);
    std::printf(
        "epoch %2zu: %6zu edges, summary %5zu edges (%4.1f%%), cut true "
        "%7.0f vs estimate %9.1f (err %+.1f%%), update %.1f ms\n",
        i, live.size(), sp.size(), 100.0 * double(sp.size()) / live.size(),
        true_cut, est_cut, 100.0 * (est_cut / true_cut - 1.0), ms);
  }
  return 0;
}
