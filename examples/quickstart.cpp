// Quickstart: maintain a (2k-1)-spanner of a dynamic graph (Theorem 1.1).
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
//
// The structure ingests batches of edge insertions/deletions and returns,
// per batch, the exact set of edges entering/leaving the spanner — the
// interface a routing layer or an incremental solver consumes.
#include <cstdio>

#include "core/fully_dynamic_spanner.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"
#include "verify/spanner_check.hpp"

using namespace parspan;

int main() {
  const size_t n = 800;
  const uint32_t k = 3;  // stretch 2k-1 = 5

  // A random graph and an oblivious update stream (mixed ins/del batches).
  // The graph is denser than n^{1+1/k} so that sparsification is visible
  // (below that the spanner may legitimately keep every edge).
  auto [initial, batches] = gen_mixed_stream(n, 40 * n, 256, 20, /*seed=*/7);

  Timer t;
  FullyDynamicSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = 42;
  FullyDynamicSpanner spanner(n, initial, cfg);
  std::printf("init: n=%zu m=%zu -> spanner %zu edges (%.1f ms)\n", n,
              spanner.num_edges(), spanner.spanner_size(), t.elapsed_ms());

  size_t total_recourse = 0, total_updates = 0;
  for (size_t i = 0; i < batches.size(); ++i) {
    t.reset();
    SpannerDiff diff = spanner.update(batches[i].insertions,
                                      batches[i].deletions);
    total_recourse += diff.inserted.size() + diff.removed.size();
    total_updates +=
        batches[i].insertions.size() + batches[i].deletions.size();
    std::printf(
        "batch %2zu: +%zu/-%zu graph edges -> spanner %6zu edges "
        "(diff +%zu/-%zu, %.2f ms)\n",
        i, batches[i].insertions.size(), batches[i].deletions.size(),
        spanner.spanner_size(), diff.inserted.size(), diff.removed.size(),
        t.elapsed_ms());
  }
  std::printf("amortized recourse: %.3f spanner changes per updated edge\n",
              double(total_recourse) / double(total_updates));

  // Verify the (2k-1) stretch on the final graph.
  std::vector<Edge> alive;
  DynamicGraph g(n);
  g.insert_edges(initial);
  for (auto& b : batches) {
    g.erase_edges(b.deletions);
    g.insert_edges(b.insertions);
  }
  bool ok = is_spanner(n, g.edges(), spanner.spanner_edges(), 2 * k - 1);
  std::printf("stretch <= %u verified: %s\n", 2 * k - 1,
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
