// Sharded ingestion: async writes across shards, stitched reads, and the
// flush() read-your-writes barrier (DESIGN.md §9).
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/example_sharded_ingest
//
// One producer thread streams mixed batches into a ShardedSpannerService —
// a single 3000-vertex graph partitioned across 4 vertex-range shards,
// each its own FullyDynamicSpanner behind a coalescing BatchQueue, drained
// by a pool of writer threads that publish per-shard snapshot versions
// independently. submit() returns as soon as the batch is queued; readers
// pin cross-shard ShardedViews (one immutable snapshot per shard) and run
// bounded BFS that stitches cut edges at shard boundaries. A final flush()
// proves read-your-writes: a probe edge submitted just before the barrier
// is visible in the very next view.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "service/sharded_service.hpp"

using namespace parspan;

int main() {
  const size_t n = 3000;
  const uint32_t shards = 4;
  const uint32_t k = 3;  // per-shard stretch 2k-1 = 5
  const size_t num_batches = 60;

  auto [initial, batches] = gen_mixed_stream(n, 12 * n, 256, num_batches, 7);

  FullyDynamicSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = 42;
  ShardedConfig sc;
  sc.num_writers = 4;
  sc.record_latency = true;
  auto svc = ShardedSpannerService::single_graph(n, initial, shards, cfg, sc);

  ShardedView v0 = svc->view();
  std::printf("serving %u shards: %zu vertices, %zu composed spanner edges\n",
              shards, n, v0.num_edges());
  for (size_t s = 0; s < shards; ++s)
    std::printf("  shard %zu: version %zu, %zu edges\n", s,
                size_t(v0.shard(s).version()), v0.shard(s).num_edges());

  // Readers: pin a cross-shard view, answer stitched queries, refresh.
  std::atomic<bool> done{false};
  const int R = 2;
  std::vector<uint64_t> reads(R, 0);
  std::vector<std::thread> readers;
  for (int t = 0; t < R; ++t) {
    readers.emplace_back([&, t] {
      uint64_t ops = 0, sink = 0;
      uint64_t x = uint64_t(t) + 0x9e3779b97f4a7c15ULL;
      while (!done.load(std::memory_order_acquire)) {
        ShardedView view = svc->view();
        for (int q = 0; q < 256; ++q) {
          x = splitmix64(x);
          VertexId u = VertexId(x % n);
          auto nb = view.neighbors(u);
          sink += nb.size();
          if (!nb.empty()) sink += view.has_edge(u, nb[0]);
          if ((q & 63) == 0)
            sink += view.distance(u, VertexId((u + n / 2) % n), 4);
          ++ops;
        }
      }
      reads[size_t(t)] = ops + (sink == 0xdead ? 1 : 0);
    });
  }

  // Producer: fire-and-forget submits — the router splits each batch
  // across the owning shards' queues; writer threads drain concurrently.
  for (const auto& b : batches) svc->submit(b.insertions, b.deletions);

  // Read-your-writes: submit a probe edge, then flush. The barrier
  // returns the published VersionVector; every later view dominates it
  // and must contain the probe's effect.
  const Edge probe(VertexId(1), VertexId(n - 1));  // spans shard 0 -> 3
  svc->submit({probe}, {});
  VersionVector vv = svc->flush();
  ShardedView after = svc->view();
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  std::printf("flushed: per-shard versions [");
  for (size_t s = 0; s < vv.v.size(); ++s)
    std::printf("%s%zu", s ? ", " : "", size_t(vv.v[s]));
  std::printf("], view dominates barrier: %s\n",
              after.versions().dominates(vv) ? "YES" : "NO");
  std::printf("probe edge (%u, %u) visible after flush: %s (distance %u)\n",
              probe.u, probe.v, after.has_edge(probe.u, probe.v) ? "YES" : "NO",
              after.distance(probe.u, probe.v, 2 * k - 1));

  auto lat = svc->latency_samples_ns();
  std::sort(lat.begin(), lat.end());
  if (!lat.empty())
    std::printf("ingest-to-visible latency over %zu submits: p50 %.2f ms, "
                "p99 %.2f ms\n",
                lat.size(), double(lat[lat.size() / 2]) * 1e-6,
                double(lat[lat.size() * 99 / 100]) * 1e-6);
  uint64_t total_reads = 0;
  for (int t = 0; t < R; ++t) {
    std::printf("reader %d: %zu stitched query blocks\n", t,
                size_t(reads[size_t(t)]));
    total_reads += reads[size_t(t)];
  }
  std::printf("ingested %zu edge updates across %u shards; "
              "total concurrent reads: %zu\n",
              size_t(svc->edges_ingested()), shards, size_t(total_reads));
  return 0;
}
