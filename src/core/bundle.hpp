// SpannerBundle: the parallel batch-dynamic decremental t-bundle spanner of
// Theorem 1.5.
//
// A t-bundle is B = H_1 ∪ ... ∪ H_t where H_i is an O(log n)-spanner of
// G \ (H_1 ∪ ... ∪ H_{i-1}). Each level i is the union of
//   * a MonotoneSpanner instance D_i (Lemma 6.4) over the level's graph, and
//   * a retained set J_i of edges that left D_i's spanner while still alive
//     (the monotonicity trick of [ADK+16]): once an edge is in H_i, it stays
//     there until it is globally deleted, so every edge enters and leaves
//     the bundle at most once — amortized recourse O(1) per deleted edge.
//
// A deletion batch flows down the chain: edges newly *entering* H_i
// (δH_ins of D_i) are deletions for level i+1; edges leaving D_i's spanner
// while alive move into J_i and generate no downstream work. The chain is
// inherently serial in i, but each level's MonotoneSpanner fans its own
// instances out in parallel (DESIGN.md §7.1), and the per-batch diff is
// compiled through the flat touched-key accumulator, key-sorted on drain
// (DESIGN.md §7.4).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "container/flat_map.hpp"
#include "core/mpx_spanner.hpp"
#include "util/types.hpp"

namespace parspan {

struct BundleConfig {
  /// Number of bundle levels t.
  uint32_t t = 2;
  uint64_t seed = 1;
  /// Per-level MonotoneSpanner parameters.
  double beta = 0.4;
  uint32_t instances = 0;  // 0 = default of MonotoneSpanner
};

class SpannerBundle {
 public:
  SpannerBundle(size_t n, const std::vector<Edge>& edges,
                const BundleConfig& cfg);

  size_t num_vertices() const { return n_; }
  size_t bundle_size() const { return contrib_.size(); }
  std::vector<Edge> bundle_edges() const;
  bool in_bundle(Edge e) const { return contrib_.contains(e.key()); }
  uint32_t levels() const { return uint32_t(levels_.size()); }

  /// Edges of G not claimed by any level (the residue G \ B). The spectral
  /// sparsifier samples its next stage from this set. Sorted by key.
  std::vector<Edge> residual_edges() const;
  bool in_residual(Edge e) const {
    return alive_.contains(e.key()) && !in_bundle(e);
  }

  /// Deletes a batch of (graph) edges; returns the net bundle diff (both
  /// sides sorted by canonical key).
  SpannerDiff delete_edges(const std::vector<Edge>& batch);

  /// Cumulative |δ| emitted (Theorem 1.5: O(1) amortized per deletion).
  uint64_t cumulative_recourse() const { return cumulative_recourse_; }

  /// H_i = spanner(D_i) ∪ J_i for level i (0-indexed).
  std::vector<Edge> level_edges(size_t i) const;

  /// Stretch witness of level i's spanner (from its MonotoneSpanner).
  uint32_t level_stretch_bound(size_t i) const {
    return levels_[i].spanner->stretch_bound();
  }

  size_t alive_edges() const { return alive_.size(); }

  bool check_invariants() const;

 private:
  struct Level {
    std::unique_ptr<MonotoneSpanner> spanner;  // D_i
    FlatHashSet<EdgeKey> retained;             // J_i
  };

  size_t n_ = 0;
  BundleConfig cfg_;
  std::vector<Level> levels_;
  FlatHashSet<EdgeKey> alive_;               // alive graph edges
  FlatHashMap<EdgeKey, uint32_t> contrib_;   // owning level per bundle edge
  DiffAccumulator delta_;                    // per-batch net diff
  uint64_t cumulative_recourse_ = 0;
};

}  // namespace parspan
