// ContractionLayer: the batch-dynamic Contract(G, x) procedure of Lemma 4.1
// (paper §4.1, dynamic maintenance §4.3).
//
// A fixed subset D ⊆ V is sampled once (each vertex with probability 1/x;
// D never changes — legitimate under the oblivious adversary). Every vertex
// v keeps its incident edges in a search tree Adj(v) ordered by the tuple
// (unmark_e, rand_e): unmark_e = [other endpoint ∉ D], rand_e a fresh random
// value drawn when the entry is inserted. Then
//
//   Head(v) = v                      if v ∈ D,
//   Head(v) = min-entry's endpoint   if that entry is marked (∈ D),
//   Head(v) = ⊥                      otherwise,
//
// so Head(v) changes only when the minimum of Adj(v) changes — probability
// 1/(deg±1) per update — which is what makes the expensive O(deg) head-move
// procedure O(1) edges in expectation (the analysis at the end of §4.3).
//
// The layer exposes exactly the objects of the paper:
//   * H            — this layer's spanner contribution: edges with a ⊥
//                    endpoint, plus one edge (v, Head(v)) per clustered v;
//   * NextLevelEdges — buckets keyed by contracted pairs
//                    (Head(u), Head(v)), with Bwd/FwdCorrespondence as the
//                    designated representative per pair;
//   * next_ins/next_del — the update stream for the next layer.
//
// All dictionaries are flat open-addressing tables (DESIGN.md §1); the
// per-batch UpdateResult lists are key-sorted, so the layer's output is a
// deterministic function of its inputs (DESIGN.md §7.4).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "container/counted_treap.hpp"
#include "container/flat_map.hpp"
#include "container/rep_bucket.hpp"
#include "core/cluster_spanner.hpp"  // DiffAccumulator
#include "util/types.hpp"

namespace parspan {

class ContractionLayer {
 public:
  /// n = layer vertex count; x = contraction factor (>= 2).
  ContractionLayer(size_t n, const std::vector<Edge>& edges, double x,
                   uint64_t seed);

  struct UpdateResult {
    std::vector<Edge> next_ins;  // contracted-graph insertions (next ids)
    std::vector<Edge> next_del;  // contracted-graph deletions (next ids)
    std::vector<Edge> h_ins;     // H contribution diffs (layer-local edges)
    std::vector<Edge> h_del;
    /// Pairs (next-id edges) whose designated representative changed while
    /// the pair survived the batch.
    std::vector<Edge> rep_changed;
  };

  /// Applies a batch of layer-local edge insertions and deletions
  /// (deletions first). Duplicates / no-ops are filtered.
  UpdateResult update(const std::vector<Edge>& ins,
                      const std::vector<Edge>& del);

  size_t num_vertices() const { return n_; }
  size_t next_n() const { return next_n_; }
  size_t alive_edges() const { return alive_count_; }

  bool is_sampled(VertexId v) const { return next_id_[v] != kNoVertex; }
  VertexId next_id(VertexId v) const { return next_id_[v]; }
  /// Layer-i vertex corresponding to next-layer id y.
  VertexId prev_id(VertexId y) const { return prev_id_[y]; }

  /// Head(v) as a layer-local vertex, kNoVertex for ⊥.
  VertexId head(VertexId v) const { return head_[v]; }

  /// Current contracted edges (next-id space).
  std::vector<Edge> next_edges() const;

  /// Current representative (layer-local edge) of a contracted pair;
  /// pair must exist.
  Edge rep(Edge pair) const;

  /// Current H contribution set (layer-local edges).
  std::vector<Edge> h_edges() const;
  size_t h_size() const { return h_contrib_.size(); }

  bool check_invariants() const;

 private:
  struct AdjEntry {
    VertexId other;
    uint32_t edge_id;
  };
  struct EdgeRec {
    Edge e;
    uint64_t key_u = 0;  // entry key in Adj(e.u)
    uint64_t key_v = 0;  // entry key in Adj(e.v)
    bool alive = false;
  };
  /// NextLevelEdges bucket of edge ids (container/rep_bucket.hpp; the rep
  /// is assigned with the first member).
  using Bucket = RepBucket<uint32_t>;

  uint64_t fresh_entry_key(VertexId other);
  VertexId compute_head(VertexId v);
  void set_head(VertexId v, VertexId h);

  /// Contracted pair key for edge id (using current heads), or kNoEdge if
  /// the edge is intra-cluster / touches ⊥.
  EdgeKey pair_key_of(uint32_t eid) const;

  void bucket_add(uint32_t eid);
  void bucket_remove(uint32_t eid, EdgeKey pk);
  void h_add(EdgeKey ek);
  void h_remove(EdgeKey ek);
  bool edge_in_bot(uint32_t eid) const;  // has a ⊥ endpoint

  /// Attaches/detaches edge contributions (bot membership + bucket) using
  /// the CURRENT heads of both endpoints.
  void attach(uint32_t eid);
  void detach(uint32_t eid);

  /// Recomputes Head(v); if changed, moves all incident edges.
  void recheck_head(VertexId v);

  void note_pair_touched(EdgeKey pk);

  size_t n_ = 0;
  size_t next_n_ = 0;
  double x_ = 2;
  uint64_t seed_ = 0;
  uint64_t entry_counter_ = 0;

  std::vector<VertexId> next_id_;  // kNoVertex if unsampled
  std::vector<VertexId> prev_id_;
  std::vector<VertexId> head_;
  std::vector<CountedTreap<AdjEntry>> adj_;

  std::vector<EdgeRec> edges_;
  FlatHashMap<EdgeKey, uint32_t> edge_index_;
  size_t alive_count_ = 0;

  FlatHashMap<EdgeKey, Bucket> buckets_;       // NextLevelEdges
  FlatHashMap<EdgeKey, uint32_t> h_contrib_;   // H refcounts
  std::vector<EdgeKey> head_edge_;  // per-vertex (v, Head(v)) contribution

  // Batch-scoped diff accumulation (drained key-sorted — DESIGN.md §6.4).
  DiffAccumulator h_delta_;
  struct PairSnapshot {
    bool existed = false;
    uint32_t old_rep = 0;
  };
  FlatHashMap<EdgeKey, PairSnapshot> touched_pairs_;
};

}  // namespace parspan
