#include "core/ultra.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

#include "util/rng.hpp"

namespace parspan {

UltraSparseSpanner::UltraSparseSpanner(size_t n,
                                       const std::vector<Edge>& edges,
                                       const UltraConfig& cfg)
    : n_(n), cfg_(cfg) {
  uint32_t x = std::max(2u, cfg.x);
  T_ = uint32_t(
      std::ceil(10.0 * double(x) * std::max(1.0, std::log2(double(x)))));
  Rng rng(hash_combine(cfg.seed, 0x17a));
  sampled_.assign(n, 0);
  rand_.assign(n, 0);
  bool any = false;
  for (VertexId v = 0; v < n; ++v) {
    sampled_[v] = rng.next_bool(1.0 / double(x)) ? 1 : 0;
    any |= sampled_[v];
    rand_[v] = hash_combine(cfg.seed, 0x9a0 + v);
  }
  if (!any && n > 0) sampled_[rng.next_below(n)] = 1;

  adj_.assign(n, {});
  for (const Edge& e : edges) {
    if (e.u == e.v || e.u >= n || e.v >= n) continue;
    if (!alive_.insert(e.key()).second) continue;
    adj_[e.u].insert(e.v);
    adj_[e.v].insert(e.u);
  }
  alive_count_ = alive_.size();

  // Heads: heavy/sampled first, then light (Algorithm 5 reads heavy heads).
  head_.assign(n, kBot);
  par_edge_.assign(n, kNoEdge);
  for (VertexId v = 0; v < n; ++v)
    if (sampled_[v] || heavy(v)) head_[v] = compute_head(v).head;
  std::vector<HeadResult> light_res(n);
  for (VertexId v = 0; v < n; ++v)
    if (!sampled_[v] && !heavy(v)) light_res[v] = compute_head(v);
  for (VertexId v = 0; v < n; ++v)
    if (!sampled_[v] && !heavy(v)) head_[v] = light_res[v].head;

  // H1 parent edges (recompute par for heavy too) + buckets + H2 edges.
  h2_ = std::make_unique<SmallComponentForest>(n);
  std::vector<Edge> h2_init;
  for (EdgeKey ek : alive_) {
    Edge e = edge_from_key(ek);
    attach(e);
    if (edge_in_h2(e)) h2_init.push_back(e);
  }
  for (VertexId v = 0; v < n; ++v) {
    HeadResult hr = (!sampled_[v] && !heavy(v)) ? light_res[v]
                                                : compute_head(v);
    assert(hr.head == head_[v]);
    if (hr.head != kBot && hr.head != v) {
      assert(hr.par != kNoVertex);
      par_edge_[v] = edge_key(v, hr.par);
    }
  }
  h2_->update(h2_init, {});

  // Next-level structure over the contracted graph (vertex set = V).
  SparseSpannerConfig nc = cfg.next;
  nc.seed = hash_combine(cfg.seed, 0x4e7);
  std::vector<Edge> pairs;
  pairs.reserve(buckets_.size());
  for (auto& [pk, b] : buckets_) pairs.push_back(edge_from_key(pk));
  next_ = std::make_unique<SparseSpanner>(n, pairs, nc);

  // Compose S = H1 ∪ forest(H2) ∪ rep(S_next).
  for (VertexId v = 0; v < n; ++v)
    if (par_edge_[v] != kNoEdge) s_mem_.insert(par_edge_[v]);
  for (const Edge& e : h2_->forest_edges()) {
    bool fresh = s_mem_.insert(e.key()).second;
    assert(fresh);
    (void)fresh;
  }
  for (const Edge& p : next_->spanner_edges()) {
    EdgeKey rep = buckets_.at(p.key()).rep;
    used_rep_[p.key()] = rep;
    bool fresh = s_mem_.insert(rep).second;
    assert(fresh);
    (void)fresh;
  }
  touched_pairs_.clear();
}

uint32_t UltraSparseSpanner::stretch_bound() const {
  // Lemma 5.1: 21 x log x (L+1); we use the implemented radius T_ directly:
  // 2T (H2 / intra-cluster detours) per hop of the next-level spanner.
  return (2 * T_ + 1) * (next_->stretch_bound() + 1) +
         next_->stretch_bound();
}

UltraSparseSpanner::HeadResult UltraSparseSpanner::compute_head(
    VertexId v) const {
  HeadResult hr;
  if (sampled_[v]) {
    hr.head = v;
    return hr;
  }
  if (heavy(v)) {
    // Sampled neighbor with minimum rand; else self (v joins D').
    VertexId best = kNoVertex;
    for (VertexId w : adj_[v])
      if (sampled_[w] && (best == kNoVertex || rand_[w] < rand_[best]))
        best = w;
    hr.head = best == kNoVertex ? v : best;
    hr.par = best;
    return hr;
  }
  // Algorithm 5: bounded BFS of radius T_, no branching through heavy
  // vertices; early exit once deeper levels cannot beat the best candidate.
  std::unordered_map<VertexId, uint32_t> dist;
  std::unordered_map<VertexId, VertexId> par;  // BFS parent, toward v
  std::vector<VertexId> frontier{v};
  dist[v] = 0;
  // Candidate = (distance, rand, center, realizing vertex).
  uint32_t bd = UINT32_MAX;
  uint64_t br = 0;
  VertexId bc = kNoVertex, bw = kNoVertex;
  auto offer = [&](uint32_t d, VertexId center, VertexId via) {
    if (d > T_) return;
    if (d < bd || (d == bd && rand_[center] < br)) {
      bd = d;
      br = rand_[center];
      bc = center;
      bw = via;
    }
  };
  for (uint32_t level = 0; !frontier.empty(); ++level) {
    // Examine this level's vertices for candidates.
    for (VertexId w : frontier) {
      if (!heavy(w)) {
        if (sampled_[w]) offer(level, w, w);
      } else {
        VertexId hw = head_[w];
        assert(hw != kBot);
        auto it = dist.find(hw);
        if (it != dist.end())
          offer(it->second, hw, w);  // head visited: exact distance
        else
          offer(level + 1, hw, w);  // assume Dist(w) + 1
      }
    }
    if (level >= T_ || level >= bd) break;  // deeper cannot win
    std::vector<VertexId> next;
    for (VertexId w : frontier) {
      if (heavy(w)) continue;  // no branching through heavy vertices
      for (VertexId z : adj_[w]) {
        if (dist.count(z)) continue;
        dist[z] = level + 1;
        par[z] = w;
        next.push_back(z);
      }
    }
    frontier = std::move(next);
  }
  if (bc != kNoVertex) {
    hr.head = bc;
    // Parent: first hop from v toward the realizing vertex bw (== the head
    // itself when adjacent). bw != v: v is light and unsampled, so it never
    // offers at level 0.
    VertexId walk = bw;
    while (par.at(walk) != v) walk = par.at(walk);
    hr.par = walk;
    return hr;
  }
  // No candidate: every visited vertex is light and unsampled, so the BFS
  // explored the component freely. The paper's rule: ⊥ iff the component
  // has at most 10 x log x vertices (a radius-truncated BFS has visited
  // more than T_ of them), else v stays its own unclustered vertex.
  hr.head = dist.size() <= size_t(T_) ? kBot : v;
  return hr;
}

std::vector<VertexId> UltraSparseSpanner::light_need_recompute(
    const std::vector<VertexId>& seeds) const {
  // Algorithm 6: BFS of radius T_ from the seeds, branching through light
  // vertices and through (heavy) seeds.
  std::unordered_set<VertexId> in_r(seeds.begin(), seeds.end());
  std::unordered_set<VertexId> visited(seeds.begin(), seeds.end());
  std::vector<VertexId> frontier = seeds;
  for (uint32_t level = 1; level <= T_ && !frontier.empty(); ++level) {
    std::vector<VertexId> next;
    for (VertexId w : frontier) {
      if (heavy(w) && !in_r.count(w)) continue;
      for (VertexId z : adj_[w]) {
        if (visited.insert(z).second) next.push_back(z);
      }
    }
    frontier = std::move(next);
  }
  std::vector<VertexId> out;
  for (VertexId w : visited)
    if (!heavy(w) && !sampled_[w]) out.push_back(w);
  return out;
}

EdgeKey UltraSparseSpanner::pair_key_of(Edge e) const {
  VertexId hu = head_[e.u], hv = head_[e.v];
  if (hu == kBot || hv == kBot || hu == hv) return kNoEdge;
  return edge_key(hu, hv);
}

void UltraSparseSpanner::note_pair_touched(EdgeKey pk) {
  if (touched_pairs_.count(pk)) return;
  auto it = buckets_.find(pk);
  touched_pairs_[pk] = PairSnapshot{
      it != buckets_.end(), it != buckets_.end() ? it->second.rep : kNoEdge};
}

void UltraSparseSpanner::bucket_add(Edge e) {
  EdgeKey pk = pair_key_of(e);
  if (pk == kNoEdge) return;
  note_pair_touched(pk);
  auto [it, fresh] = buckets_.try_emplace(pk);
  it->second.members.insert(e.key());
  if (fresh) it->second.rep = e.key();
}

void UltraSparseSpanner::bucket_remove(Edge e, EdgeKey pk) {
  if (pk == kNoEdge) return;
  note_pair_touched(pk);
  auto it = buckets_.find(pk);
  assert(it != buckets_.end());
  it->second.members.erase(e.key());
  if (it->second.members.empty())
    buckets_.erase(it);
  else if (it->second.rep == e.key())
    it->second.rep = *it->second.members.begin();
}

void UltraSparseSpanner::attach(Edge e) { bucket_add(e); }

void UltraSparseSpanner::detach(Edge e) { bucket_remove(e, pair_key_of(e)); }

void UltraSparseSpanner::commit_head(VertexId v, const HeadResult& hr) {
  // Move incident edges' bucket / H2 membership from the old head state to
  // the new one, and refresh the H1 parent contribution.
  std::vector<Edge> incident;
  incident.reserve(adj_[v].size());
  for (VertexId w : adj_[v]) incident.emplace_back(v, w);
  for (const Edge& e : incident) {
    if (edge_in_h2(e)) h2_del_.push_back(e);
    detach(e);
  }
  head_[v] = hr.head;
  for (const Edge& e : incident) {
    if (edge_in_h2(e)) h2_ins_.push_back(e);
    attach(e);
  }
  EdgeKey want = kNoEdge;
  if (hr.head != kBot && hr.head != v) {
    assert(hr.par != kNoVertex);
    want = edge_key(v, hr.par);
  }
  if (par_edge_[v] != want) {
    if (par_edge_[v] != kNoEdge) s_remove(par_edge_[v]);
    par_edge_[v] = want;
    if (want != kNoEdge) s_add(want);
  }
}

void UltraSparseSpanner::s_add(EdgeKey ek) {
  // Deferred: an edge may change roles (H1 parent / H2 forest / pair
  // representative) within one batch; applying all removals before all
  // insertions at the end keeps S a true set.
  pending_add_.push_back(ek);
  ++s_delta_[ek];
}

void UltraSparseSpanner::s_remove(EdgeKey ek) {
  pending_rem_.push_back(ek);
  --s_delta_[ek];
}

SpannerDiff UltraSparseSpanner::update(const std::vector<Edge>& insertions,
                                       const std::vector<Edge>& deletions) {
  s_delta_.clear();
  touched_pairs_.clear();
  h2_ins_.clear();
  h2_del_.clear();

  std::unordered_set<VertexId> touched;
  // --- Deletions. ---
  for (const Edge& er : deletions) {
    Edge e(er.u, er.v);
    if (e.u == e.v || e.u >= n_ || e.v >= n_) continue;
    if (!alive_.erase(e.key())) continue;
    if (edge_in_h2(e)) h2_del_.push_back(e);
    detach(e);
    adj_[e.u].erase(e.v);
    adj_[e.v].erase(e.u);
    --alive_count_;
    // A dying parent edge leaves H1 immediately; the endpoint's head is
    // recomputed below.
    for (VertexId w : {e.u, e.v}) {
      if (par_edge_[w] == e.key()) {
        s_remove(par_edge_[w]);
        par_edge_[w] = kNoEdge;
      }
      touched.insert(w);
    }
  }
  // --- Insertions. ---
  for (const Edge& er : insertions) {
    Edge e(er.u, er.v);
    if (e.u == e.v || e.u >= n_ || e.v >= n_) continue;
    if (!alive_.insert(e.key()).second) continue;
    adj_[e.u].insert(e.v);
    adj_[e.v].insert(e.u);
    ++alive_count_;
    attach(e);
    if (edge_in_h2(e)) h2_ins_.push_back(e);
    touched.insert(e.u);
    touched.insert(e.v);
  }

  // --- Recomputation (paper §5.2): heavy seeds first, then Algorithm 6's
  // light set against the committed heavy heads. ---
  std::vector<VertexId> seeds(touched.begin(), touched.end());
  for (VertexId v : seeds) {
    if (!sampled_[v] && !heavy(v)) continue;  // light handled below
    HeadResult hr = compute_head(v);
    EdgeKey want = (hr.head != kBot && hr.head != v)
                       ? edge_key(v, hr.par)
                       : kNoEdge;
    if (hr.head != head_[v] || par_edge_[v] != want) commit_head(v, hr);
  }
  std::vector<VertexId> lights = light_need_recompute(seeds);
  std::vector<HeadResult> results(lights.size());
  for (size_t i = 0; i < lights.size(); ++i)
    results[i] = compute_head(lights[i]);
  for (size_t i = 0; i < lights.size(); ++i) {
    VertexId v = lights[i];
    const HeadResult& hr = results[i];
    EdgeKey want = (hr.head != kBot && hr.head != v)
                       ? edge_key(v, hr.par)
                       : kNoEdge;
    if (hr.head != head_[v] || par_edge_[v] != want) commit_head(v, hr);
  }

  // --- H2 forest update (net the membership churn first). ---
  {
    std::unordered_map<EdgeKey, int32_t> net;
    for (const Edge& e : h2_ins_) ++net[e.key()];
    for (const Edge& e : h2_del_) --net[e.key()];
    std::vector<Edge> ins2, del2;
    for (auto& [ek, d] : net) {
      assert(d >= -1 && d <= 1);
      if (d > 0) ins2.push_back(edge_from_key(ek));
      if (d < 0) del2.push_back(edge_from_key(ek));
    }
    SpannerDiff fd = h2_->update(ins2, del2);
    for (const Edge& e : fd.removed) s_remove(e.key());
    for (const Edge& e : fd.inserted) s_add(e.key());
  }

  // --- Next-level update and representative composition. ---
  std::vector<Edge> next_ins, next_del, rep_changed;
  for (auto& [pk, snap] : touched_pairs_) {
    auto it = buckets_.find(pk);
    bool exists = it != buckets_.end();
    if (snap.existed && !exists) next_del.push_back(edge_from_key(pk));
    if (!snap.existed && exists) next_ins.push_back(edge_from_key(pk));
    if (snap.existed && exists && snap.old_rep != it->second.rep)
      rep_changed.push_back(edge_from_key(pk));
  }
  SpannerDiff nd = next_->update(next_ins, next_del);
  for (const Edge& p : nd.removed) {
    auto it = used_rep_.find(p.key());
    assert(it != used_rep_.end());
    s_remove(it->second);
    used_rep_.erase(it);
  }
  std::vector<EdgeKey> pending;
  for (const Edge& p : rep_changed) {
    auto it = used_rep_.find(p.key());
    if (it == used_rep_.end()) continue;
    EdgeKey cur = buckets_.at(p.key()).rep;
    if (it->second == cur) continue;
    s_remove(it->second);
    used_rep_.erase(it);
    pending.push_back(p.key());
  }
  for (const Edge& p : nd.inserted) {
    EdgeKey rep = buckets_.at(p.key()).rep;
    used_rep_[p.key()] = rep;
    s_add(rep);
  }
  for (EdgeKey pk : pending) {
    EdgeKey rep = buckets_.at(pk).rep;
    used_rep_[pk] = rep;
    s_add(rep);
  }

  // Apply deferred S mutations: removals first, then insertions.
  for (EdgeKey ek : pending_rem_) {
    size_t erased = s_mem_.erase(ek);
    assert(erased == 1);
    (void)erased;
  }
  for (EdgeKey ek : pending_add_) {
    bool fresh = s_mem_.insert(ek).second;
    assert(fresh && "spanner components must stay disjoint");
    (void)fresh;
  }
  pending_rem_.clear();
  pending_add_.clear();

  SpannerDiff diff;
  for (auto& [ek, d] : s_delta_) {
    assert(d >= -1 && d <= 1);
    if (d > 0) diff.inserted.push_back(edge_from_key(ek));
    if (d < 0) diff.removed.push_back(edge_from_key(ek));
  }
  return diff;
}

std::vector<Edge> UltraSparseSpanner::spanner_edges() const {
  std::vector<Edge> out;
  out.reserve(s_mem_.size());
  for (EdgeKey ek : s_mem_) out.push_back(edge_from_key(ek));
  return out;
}

bool UltraSparseSpanner::check_invariants() const {
  // Reference heads: heavy/sampled from adjacency, then light.
  std::vector<VertexId> ref(n_, kBot);
  std::vector<VertexId> ref_par(n_, kNoVertex);
  for (VertexId v = 0; v < n_; ++v)
    if (sampled_[v] || heavy(v)) {
      if (compute_head(v).head != head_[v]) return false;
      ref[v] = head_[v];
    }
  for (VertexId v = 0; v < n_; ++v) {
    if (sampled_[v] || heavy(v)) continue;
    HeadResult hr = compute_head(v);
    if (hr.head != head_[v]) return false;
  }
  // H1 parent contributions: for clustered v the stored edge must connect v
  // to a live neighbor sharing v's head.
  for (VertexId v = 0; v < n_; ++v) {
    if (head_[v] == kBot || head_[v] == v) {
      if (par_edge_[v] != kNoEdge) return false;
      continue;
    }
    if (par_edge_[v] == kNoEdge) return false;
    Edge pe = edge_from_key(par_edge_[v]);
    if (!alive_.count(pe.key())) return false;
    VertexId p = pe.other(v);
    if (!adj_[v].count(p)) return false;
    if (head_[p] != head_[v]) return false;  // Lemma 5.3 in-cluster parent
  }
  // Buckets from scratch.
  std::unordered_map<EdgeKey, std::unordered_set<EdgeKey>> ref_buckets;
  size_t h2_edges = 0;
  for (EdgeKey ek : alive_) {
    Edge e = edge_from_key(ek);
    EdgeKey pk = pair_key_of(e);
    if (pk != kNoEdge) ref_buckets[pk].insert(ek);
    if (edge_in_h2(e)) ++h2_edges;
  }
  if (ref_buckets.size() != buckets_.size()) return false;
  for (auto& [pk, members] : ref_buckets) {
    auto it = buckets_.find(pk);
    if (it == buckets_.end()) return false;
    if (it->second.members != members) return false;
    if (!members.count(it->second.rep)) return false;
  }
  if (h2_->num_edges() != h2_edges) return false;
  if (!h2_->check_invariants()) return false;
  if (!next_->check_invariants()) return false;
  // Next structure's graph must equal the bucket pairs.
  if (next_->num_edges() != buckets_.size()) return false;
  // Composition.
  std::unordered_set<EdgeKey> ref_s;
  for (VertexId v = 0; v < n_; ++v)
    if (par_edge_[v] != kNoEdge) ref_s.insert(par_edge_[v]);
  for (const Edge& e : h2_->forest_edges())
    if (!ref_s.insert(e.key()).second) return false;
  auto ns = next_->spanner_edges();
  if (used_rep_.size() != ns.size()) return false;
  for (const Edge& p : ns) {
    auto it = used_rep_.find(p.key());
    if (it == used_rep_.end()) return false;
    if (buckets_.at(p.key()).rep != it->second) return false;
    if (!ref_s.insert(it->second).second) return false;
  }
  return ref_s == s_mem_;
}

}  // namespace parspan
