#include "core/ultra.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parallel/arena.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "util/rng.hpp"

namespace parspan {

namespace {

/// Per-executor scratch slot for the calling thread. The pool must be sized
/// to executor_slots() (serially) before any parallel compute phase starts:
/// work stealing lets ANY scheduler thread run a loop body regardless of the
/// active loop parallelism, so sizing by num_workers() alone would alias
/// slots across threads.
template <typename T>
T& slot_for_thread(std::vector<T>& pool) {
  return pool[size_t(worker_slot()) % pool.size()];
}

}  // namespace

UltraSparseSpanner::UltraSparseSpanner(size_t n,
                                       const std::vector<Edge>& edges,
                                       const UltraConfig& cfg)
    : n_(n), cfg_(cfg), graph_(n) {
  uint32_t x = std::max(2u, cfg.x);
  T_ = uint32_t(
      std::ceil(10.0 * double(x) * std::max(1.0, std::log2(double(x)))));
  Rng rng(hash_combine(cfg.seed, 0x17a));
  sampled_.assign(n, 0);
  rand_.assign(n, 0);
  bool any = false;
  for (VertexId v = 0; v < n; ++v) {
    sampled_[v] = rng.next_bool(1.0 / double(x)) ? 1 : 0;
    any |= sampled_[v];
    rand_[v] = hash_combine(cfg.seed, 0x9a0 + v);
  }
  if (!any && n > 0) sampled_[rng.next_below(n)] = 1;

  std::vector<Edge> applied = graph_.insert_edges(edges);

  // Heads, two phases (DESIGN.md §7.2): heavy/sampled heads are computed
  // and written first (they read adjacency only), then the light
  // Algorithm-5 balls run against them under parallel_for with per-thread
  // scratch. Writes are per-vertex disjoint, so both phases commit in the
  // parallel loop itself.
  head_.assign(n, kBot);
  par_edge_.assign(n, kNoEdge);
  scratch_.resize(size_t(std::max(1, executor_slots())));
  ArenaScope head_scratch;  // res is construction-scoped (DESIGN.md §12.5)
  ArenaVector<HeadResult> res(n);
  parallel_for(0, n, [&](size_t v) {
    if (sampled_[v] || heavy(VertexId(v))) {
      res[v] = compute_head(VertexId(v), slot_for_thread(scratch_));
      head_[v] = res[v].head;
    }
  });
  parallel_for(0, n, [&](size_t v) {
    if (!sampled_[v] && !heavy(VertexId(v))) {
      res[v] = compute_head(VertexId(v), slot_for_thread(scratch_));
      head_[v] = res[v].head;
    }
  });

  // H1 parent edges + buckets + H2 edges (serial, canonical edge order).
  h2_ = std::make_unique<SmallComponentForest>(n);
  std::vector<Edge> h2_init;
  for (const Edge& e : applied) {
    attach(e);
    if (edge_in_h2(e)) h2_init.push_back(e);
  }
  for (VertexId v = 0; v < n; ++v) {
    const HeadResult& hr = res[v];
    assert(hr.head == head_[v]);
    if (hr.head != kBot && hr.head != v) {
      assert(hr.par != kNoVertex);
      par_edge_[v] = edge_key(v, hr.par);
    }
  }
  h2_->update(h2_init, {});

  // Next-level structure over the contracted graph (vertex set = V).
  SparseSpannerConfig nc = cfg.next;
  nc.seed = hash_combine(cfg.seed, 0x4e7);
  std::vector<Edge> pairs;
  pairs.reserve(buckets_.size());
  for (EdgeKey pk : buckets_.sorted_keys()) pairs.push_back(edge_from_key(pk));
  next_ = std::make_unique<SparseSpanner>(n, pairs, nc);

  // Compose S = H1 ∪ forest(H2) ∪ rep(S_next).
  for (VertexId v = 0; v < n; ++v)
    if (par_edge_[v] != kNoEdge) s_mem_.insert(par_edge_[v]);
  for (const Edge& e : h2_->forest_edges()) {
    bool fresh = s_mem_.insert(e.key());
    assert(fresh);
    (void)fresh;
  }
  for (const Edge& p : next_->spanner_edges()) {
    EdgeKey rep = buckets_.find(p.key())->rep;
    used_rep_[p.key()] = rep;
    bool fresh = s_mem_.insert(rep);
    assert(fresh);
    (void)fresh;
  }
  touched_pairs_.clear();
}

uint32_t UltraSparseSpanner::stretch_bound() const {
  // Lemma 5.1: 21 x log x (L+1); we use the implemented radius T_ directly:
  // 2T (H2 / intra-cluster detours) per hop of the next-level spanner.
  return (2 * T_ + 1) * (next_->stretch_bound() + 1) +
         next_->stretch_bound();
}

UltraSparseSpanner::HeadResult UltraSparseSpanner::compute_head(
    VertexId v, HeadScratch& hs) const {
  HeadResult hr;
  if (sampled_[v]) {
    hr.head = v;
    return hr;
  }
  if (heavy(v)) {
    // Sampled neighbor with minimum rand; else self (v joins D').
    VertexId best = kNoVertex;
    for (VertexId w : graph_.neighbors(v))
      if (sampled_[w] && (best == kNoVertex || rand_[w] < rand_[best]))
        best = w;
    hr.head = best == kNoVertex ? v : best;
    hr.par = best;
    return hr;
  }
  // Algorithm 5: bounded BFS of radius T_, no branching through heavy
  // vertices; early exit once deeper levels cannot beat the best candidate.
  // Ball state lives in the epoch-stamped scratch: O(ball) words touched,
  // no hashing, no per-call allocation after warm-up.
  hs.ensure(n_);
  ++hs.epoch;
  hs.frontier.clear();
  hs.frontier.push_back(v);
  hs.stamp[v] = hs.epoch;
  hs.dist[v] = 0;
  hs.par[v] = kNoVertex;
  size_t ball = 1;  // visited vertices
  // Candidate = (distance, rand, center, realizing vertex).
  uint32_t bd = UINT32_MAX;
  uint64_t br = 0;
  VertexId bc = kNoVertex, bw = kNoVertex;
  auto offer = [&](uint32_t d, VertexId center, VertexId via) {
    if (d > T_) return;
    if (d < bd || (d == bd && rand_[center] < br)) {
      bd = d;
      br = rand_[center];
      bc = center;
      bw = via;
    }
  };
  for (uint32_t level = 0; !hs.frontier.empty(); ++level) {
    // Examine this level's vertices for candidates.
    for (VertexId w : hs.frontier) {
      if (!heavy(w)) {
        if (sampled_[w]) offer(level, w, w);
      } else {
        VertexId hw = head_[w];
        assert(hw != kBot);
        if (hs.stamp[hw] == hs.epoch)
          offer(hs.dist[hw], hw, w);  // head visited: exact distance
        else
          offer(level + 1, hw, w);  // assume Dist(w) + 1
      }
    }
    if (level >= T_ || level >= bd) break;  // deeper cannot win
    hs.next.clear();
    for (VertexId w : hs.frontier) {
      if (heavy(w)) continue;  // no branching through heavy vertices
      for (VertexId z : graph_.neighbors(w)) {
        if (hs.stamp[z] == hs.epoch) continue;
        hs.stamp[z] = hs.epoch;
        hs.dist[z] = level + 1;
        hs.par[z] = w;
        hs.next.push_back(z);
        ++ball;
      }
    }
    std::swap(hs.frontier, hs.next);
  }
  if (bc != kNoVertex) {
    hr.head = bc;
    // Parent: first hop from v toward the realizing vertex bw (== the head
    // itself when adjacent). bw != v: v is light and unsampled, so it never
    // offers at level 0.
    VertexId walk = bw;
    while (hs.par[walk] != v) walk = hs.par[walk];
    hr.par = walk;
    return hr;
  }
  // No candidate: every visited vertex is light and unsampled, so the BFS
  // explored the component freely. The paper's rule: ⊥ iff the component
  // has at most 10 x log x vertices (a radius-truncated BFS has visited
  // more than T_ of them), else v stays its own unclustered vertex.
  hr.head = ball <= size_t(T_) ? kBot : v;
  return hr;
}

std::vector<VertexId> UltraSparseSpanner::light_need_recompute(
    const std::vector<VertexId>& seeds) {
  // Algorithm 6: BFS of radius T_ from the seeds, branching through light
  // vertices and through (heavy) seeds. Epoch-stamped marks keep the sweep
  // allocation-free; the result is sorted so the downstream recompute and
  // commit order is canonical.
  if (seed_mark_.size() < n_) {
    seed_mark_.resize(n_, 0);
    visit_mark_.resize(n_, 0);
  }
  ++mark_epoch_;
  std::vector<VertexId> visited = seeds;
  std::vector<VertexId> frontier = seeds;
  for (VertexId s : seeds) {
    seed_mark_[s] = mark_epoch_;
    visit_mark_[s] = mark_epoch_;
  }
  for (uint32_t level = 1; level <= T_ && !frontier.empty(); ++level) {
    std::vector<VertexId> next;
    for (VertexId w : frontier) {
      if (heavy(w) && seed_mark_[w] != mark_epoch_) continue;
      for (VertexId z : graph_.neighbors(w)) {
        if (visit_mark_[z] == mark_epoch_) continue;
        visit_mark_[z] = mark_epoch_;
        next.push_back(z);
        visited.push_back(z);
      }
    }
    frontier = std::move(next);
  }
  std::vector<VertexId> out;
  for (VertexId w : visited)
    if (!heavy(w) && !sampled_[w]) out.push_back(w);
  std::sort(out.begin(), out.end());
  return out;
}

EdgeKey UltraSparseSpanner::pair_key_of(Edge e) const {
  VertexId hu = head_[e.u], hv = head_[e.v];
  if (hu == kBot || hv == kBot || hu == hv) return kNoEdge;
  return edge_key(hu, hv);
}

void UltraSparseSpanner::note_pair_touched(EdgeKey pk) {
  if (touched_pairs_.contains(pk)) return;
  Bucket* b = buckets_.find(pk);
  touched_pairs_[pk] =
      PairSnapshot{b != nullptr, b != nullptr ? b->rep : kNoEdge};
}

void UltraSparseSpanner::bucket_add(Edge e) {
  EdgeKey pk = pair_key_of(e);
  if (pk == kNoEdge) return;
  note_pair_touched(pk);
  Bucket& b = buckets_[pk];
  if (b.members.empty()) b.rep = e.key();
  assert(std::find(b.members.begin(), b.members.end(), e.key()) ==
         b.members.end());
  b.members.push_back(e.key());
}

void UltraSparseSpanner::bucket_remove(Edge e, EdgeKey pk) {
  if (pk == kNoEdge) return;
  note_pair_touched(pk);
  Bucket* b = buckets_.find(pk);
  assert(b != nullptr);
  if (b->erase_member(e.key()))
    buckets_.erase(pk);
  else if (b->rep == e.key())
    b->rep = b->members[0];
}

void UltraSparseSpanner::attach(Edge e) { bucket_add(e); }

void UltraSparseSpanner::detach(Edge e) { bucket_remove(e, pair_key_of(e)); }

void UltraSparseSpanner::commit_head(VertexId v, const HeadResult& hr) {
  // Move incident edges' bucket / H2 membership from the old head state to
  // the new one, and refresh the H1 parent contribution. Adjacency is
  // stable during a commit phase, so the neighbor span is iterated twice.
  auto nbrs = graph_.neighbors(v);
  for (VertexId w : nbrs) {
    Edge e(v, w);
    if (edge_in_h2(e)) h2_net_.remove(e.key());
    detach(e);
  }
  head_[v] = hr.head;
  for (VertexId w : nbrs) {
    Edge e(v, w);
    if (edge_in_h2(e)) h2_net_.add(e.key());
    attach(e);
  }
  EdgeKey want = kNoEdge;
  if (hr.head != kBot && hr.head != v) {
    assert(hr.par != kNoVertex);
    want = edge_key(v, hr.par);
  }
  if (par_edge_[v] != want) {
    if (par_edge_[v] != kNoEdge) s_remove(par_edge_[v]);
    par_edge_[v] = want;
    if (want != kNoEdge) s_add(want);
  }
}

void UltraSparseSpanner::s_add(EdgeKey ek) {
  // Deferred: an edge may change roles (H1 parent / H2 forest / pair
  // representative) within one batch; applying all removals before all
  // insertions at the end keeps S a true set.
  pending_add_.push_back(ek);
  s_delta_.add(ek);
}

void UltraSparseSpanner::s_remove(EdgeKey ek) {
  pending_rem_.push_back(ek);
  s_delta_.remove(ek);
}

SpannerDiff UltraSparseSpanner::update(const std::vector<Edge>& insertions,
                                       const std::vector<Edge>& deletions) {
  assert(s_delta_.empty() && h2_net_.empty());
  touched_pairs_.clear();

  // --- Apply the batch to the flat graph; bookkeep per applied edge. The
  // applied lists come back canonical and key-sorted, which pins down every
  // bucket-representative election below. ---
  std::vector<Edge> removed = graph_.erase_edges(deletions);
  std::vector<VertexId> touched;
  touched.reserve(2 * (removed.size() + insertions.size()));
  for (const Edge& e : removed) {
    if (edge_in_h2(e)) h2_net_.remove(e.key());
    detach(e);
    // A dying parent edge leaves H1 immediately; the endpoint's head is
    // recomputed below.
    for (VertexId w : {e.u, e.v}) {
      if (par_edge_[w] == e.key()) {
        s_remove(par_edge_[w]);
        par_edge_[w] = kNoEdge;
      }
      touched.push_back(w);
    }
  }
  std::vector<Edge> added = graph_.insert_edges(insertions);
  for (const Edge& e : added) {
    attach(e);
    if (edge_in_h2(e)) h2_net_.add(e.key());
    touched.push_back(e.u);
    touched.push_back(e.v);
  }
  sort_unique(touched);

  // --- Recomputation (paper §5.2): heavy seeds first, then Algorithm 6's
  // light set against the committed heavy heads. Each phase computes heads
  // in parallel (reads committed state only) and commits serially in
  // ascending vertex order (DESIGN.md §7.2). ---
  if (scratch_.size() < size_t(std::max(1, executor_slots())))
    scratch_.resize(size_t(std::max(1, executor_slots())));
  // Head-result arrays are the batch's big scratch: arena-backed, reclaimed
  // when this scope closes at the end of the recomputation (§12.5).
  ArenaScope recompute_scratch;
  ArenaVector<HeadResult> hres(touched.size());
  parallel_for(
      0, touched.size(),
      [&](size_t i) {
        VertexId v = touched[i];
        if (sampled_[v] || heavy(v))
          hres[i] = compute_head(v, slot_for_thread(scratch_));
      },
      /*grain=*/1);
  for (size_t i = 0; i < touched.size(); ++i) {
    VertexId v = touched[i];
    if (!sampled_[v] && !heavy(v)) continue;  // light handled below
    const HeadResult& hr = hres[i];
    EdgeKey want = (hr.head != kBot && hr.head != v)
                       ? edge_key(v, hr.par)
                       : kNoEdge;
    if (hr.head != head_[v] || par_edge_[v] != want) commit_head(v, hr);
  }
  std::vector<VertexId> lights = light_need_recompute(touched);
  ArenaVector<HeadResult> lres(lights.size());
  parallel_for(
      0, lights.size(),
      [&](size_t i) {
        lres[i] = compute_head(lights[i], slot_for_thread(scratch_));
      },
      /*grain=*/1);
  for (size_t i = 0; i < lights.size(); ++i) {
    VertexId v = lights[i];
    const HeadResult& hr = lres[i];
    EdgeKey want = (hr.head != kBot && hr.head != v)
                       ? edge_key(v, hr.par)
                       : kNoEdge;
    if (hr.head != head_[v] || par_edge_[v] != want) commit_head(v, hr);
  }

  // --- H2 forest update (the accumulator nets the membership churn and
  // drains it key-sorted). ---
  {
    SpannerDiff net = h2_net_.drain();
    SpannerDiff fd = h2_->update(net.inserted, net.removed);
    for (const Edge& e : fd.removed) s_remove(e.key());
    for (const Edge& e : fd.inserted) s_add(e.key());
  }

  // --- Next-level update and representative composition, touched pairs in
  // canonical key order. ---
  std::vector<Edge> next_ins, next_del, rep_changed;
  for (EdgeKey pk : touched_pairs_.sorted_keys()) {
    const PairSnapshot& snap = *touched_pairs_.find(pk);
    Bucket* b = buckets_.find(pk);
    bool exists = b != nullptr;
    if (snap.existed && !exists) next_del.push_back(edge_from_key(pk));
    if (!snap.existed && exists) next_ins.push_back(edge_from_key(pk));
    if (snap.existed && exists && snap.old_rep != b->rep)
      rep_changed.push_back(edge_from_key(pk));
  }
  SpannerDiff nd = next_->update(next_ins, next_del);
  for (const Edge& p : nd.removed) {
    EdgeKey* it = used_rep_.find(p.key());
    assert(it != nullptr);
    s_remove(*it);
    used_rep_.erase(p.key());
  }
  std::vector<EdgeKey> pending;
  for (const Edge& p : rep_changed) {
    EdgeKey* it = used_rep_.find(p.key());
    if (it == nullptr) continue;
    EdgeKey cur = buckets_.find(p.key())->rep;
    if (*it == cur) continue;
    s_remove(*it);
    used_rep_.erase(p.key());
    pending.push_back(p.key());
  }
  for (const Edge& p : nd.inserted) {
    EdgeKey rep = buckets_.find(p.key())->rep;
    used_rep_[p.key()] = rep;
    s_add(rep);
  }
  for (EdgeKey pk : pending) {
    EdgeKey rep = buckets_.find(pk)->rep;
    used_rep_[pk] = rep;
    s_add(rep);
  }
  touched_pairs_.clear();

  // Apply deferred S mutations: removals first, then insertions.
  for (EdgeKey ek : pending_rem_) {
    bool erased = s_mem_.erase(ek);
    assert(erased);
    (void)erased;
  }
  for (EdgeKey ek : pending_add_) {
    bool fresh = s_mem_.insert(ek);
    assert(fresh && "spanner components must stay disjoint");
    (void)fresh;
  }
  pending_rem_.clear();
  pending_add_.clear();

  return s_delta_.drain();
}

std::vector<Edge> UltraSparseSpanner::spanner_edges() const {
  std::vector<Edge> out;
  out.reserve(s_mem_.size());
  for (EdgeKey ek : s_mem_.sorted_keys()) out.push_back(edge_from_key(ek));
  return out;
}

bool UltraSparseSpanner::check_invariants() const {
  // Reference heads: heavy/sampled from adjacency, then light against the
  // committed heavy heads.
  HeadScratch hs;
  for (VertexId v = 0; v < n_; ++v)
    if (sampled_[v] || heavy(v))
      if (compute_head(v, hs).head != head_[v]) return false;
  for (VertexId v = 0; v < n_; ++v) {
    if (sampled_[v] || heavy(v)) continue;
    if (compute_head(v, hs).head != head_[v]) return false;
  }
  // H1 parent contributions: for clustered v the stored edge must connect v
  // to a live neighbor sharing v's head.
  for (VertexId v = 0; v < n_; ++v) {
    if (head_[v] == kBot || head_[v] == v) {
      if (par_edge_[v] != kNoEdge) return false;
      continue;
    }
    if (par_edge_[v] == kNoEdge) return false;
    Edge pe = edge_from_key(par_edge_[v]);
    VertexId p = pe.other(v);
    if (!graph_.has_edge(v, p)) return false;
    if (head_[p] != head_[v]) return false;  // Lemma 5.3 in-cluster parent
  }
  // Buckets from scratch.
  FlatHashMap<EdgeKey, std::vector<EdgeKey>> ref_buckets;
  size_t h2_edges = 0;
  bool ok = true;
  graph_.for_each_edge([&](Edge e) {
    EdgeKey pk = pair_key_of(e);
    if (pk != kNoEdge) ref_buckets[pk].push_back(e.key());
    if (edge_in_h2(e)) ++h2_edges;
  });
  if (ref_buckets.size() != buckets_.size()) return false;
  ref_buckets.for_each([&](EdgeKey pk, std::vector<EdgeKey>& members) {
    const Bucket* b = buckets_.find(pk);
    if (b == nullptr) {
      ok = false;
      return;
    }
    std::vector<EdgeKey> have = b->members;
    std::sort(members.begin(), members.end());
    std::sort(have.begin(), have.end());
    if (have != members) ok = false;
    if (std::find(have.begin(), have.end(), b->rep) == have.end())
      ok = false;
  });
  if (!ok) return false;
  if (h2_->num_edges() != h2_edges) return false;
  if (!h2_->check_invariants()) return false;
  if (!next_->check_invariants()) return false;
  // Next structure's graph must equal the bucket pairs.
  if (next_->num_edges() != buckets_.size()) return false;
  // Composition.
  FlatHashSet<EdgeKey> ref_s;
  for (VertexId v = 0; v < n_; ++v)
    if (par_edge_[v] != kNoEdge) ref_s.insert(par_edge_[v]);
  for (const Edge& e : h2_->forest_edges())
    if (!ref_s.insert(e.key())) return false;
  auto ns = next_->spanner_edges();
  if (used_rep_.size() != ns.size()) return false;
  for (const Edge& p : ns) {
    const EdgeKey* it = used_rep_.find(p.key());
    if (it == nullptr) return false;
    if (buckets_.find(p.key())->rep != *it) return false;
    if (!ref_s.insert(*it)) return false;
  }
  if (ref_s.size() != s_mem_.size()) return false;
  ref_s.for_each([&](EdgeKey ek) {
    if (!s_mem_.contains(ek)) ok = false;
  });
  return ok;
}

}  // namespace parspan
