// ESTree: parallel batch-dynamic decremental single-source shortest-path
// tree of bounded depth L on a directed graph — Theorem 1.2 of the paper,
// implementing Algorithm 1 verbatim.
//
// Every vertex v with 1 <= Dist(v) <= L maintains a pointer Scan(v) into its
// in-arc list In(v), which is ordered by decreasing priority key (the
// PriorityList of Lemma 3.1; realized as a CountedTreap — see DESIGN.md §1).
//
//   Invariant A1: Scan(v) points to the first (highest-key) in-arc whose
//                 source has distance Dist(v) - 1; that arc is v's parent.
//
// The batch deletion procedure runs phases i = 0..L maintaining the paper's
// invariants A2-A4; the per-phase sets U are deduplicated with epoch stamps.
//
// Scan(v) is represented by the *priority key* of the parent arc rather than
// a rank, so that priority updates (used by the clustering layer of Lemma
// 3.3) never invalidate it: the "skipped prefix" is exactly the arcs with
// key > scan_key(v). While Dist(v) is unchanged, priorities of valid parent
// candidates only decrease (paper §3.3), so arcs only ever *leave* the
// skipped prefix; when Dist(v) changes the pointer resets to the head.
//
// Work/depth: O(L log n) amortized work per deleted arc and O(L) phases per
// batch (each phase is a parallel loop over U), matching Theorem 1.2 with
// phases as the depth proxy. Batch arc removal is also parallel: doomed
// arcs are grouped by destination (distinct destinations own independent
// in-trees) and the treap erases fan out over groups, with the orphan list
// compiled serially in (dst, arc) order so every downstream queue fill is
// thread-count independent (DESIGN.md §6.3).
//
// Thread safety: calls into one ESTree must be serialized; the structure
// parallelizes internally. Work counters are accumulated with atomic adds
// where they sit inside parallel loops, so their totals are deterministic.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <limits>
#include <span>
#include <vector>

#include "container/counted_treap.hpp"
#include "util/types.hpp"

namespace parspan {

/// Operation counters for validating the amortized work bounds empirically.
struct ESWorkCounters {
  uint64_t scan_steps = 0;    // in-list entries examined by NextWith
  uint64_t treap_ops = 0;     // insert/erase on In(v) trees
  uint64_t queue_pushes = 0;  // insertions into the phase sets U
  uint64_t phases = 0;        // total non-empty phases across all batches

  void reset() { *this = ESWorkCounters{}; }
};

class ESTree {
 public:
  /// Key value representing "pointer at the head of In(v)" (before any arc).
  static constexpr uint64_t kHeadKey = std::numeric_limits<uint64_t>::max();
  static constexpr int32_t kNoArc = -1;

  struct Arc {
    VertexId src = kNoVertex;
    VertexId dst = kNoVertex;
    uint64_t key = 0;    // current priority key in In(dst); distinct per dst
    bool valid = false;  // false once deleted
  };

  ESTree() = default;

  /// Builds the tree on `n` vertices with the given arcs and priority keys
  /// (keys[i] is the key of arcs[i]; keys must be distinct within each
  /// destination's in-list and < kHeadKey). Runs a bounded BFS from `source`
  /// and selects each parent as the highest-key in-arc from the previous
  /// level (Invariant A1).
  void init(size_t n, const std::vector<std::pair<VertexId, VertexId>>& arcs,
            const std::vector<uint64_t>& keys, VertexId source, uint32_t L);

  /// Result of a batch deletion.
  struct DeletionReport {
    /// Vertices whose parent arc at batch end differs from batch start
    /// (including vertices that lost their parent), with the old arc id.
    std::vector<std::pair<VertexId, int32_t>> parent_changed;
    /// Vertices whose distance label increased during the batch.
    std::vector<VertexId> dist_changed;
    /// Number of phases executed (depth proxy).
    uint32_t phases = 0;
  };

  /// Deletes a batch of arcs by id (ids into the init-time arc array).
  /// Already-deleted ids are ignored. Runs Algorithm 1. Takes a span so
  /// callers can pass arena-backed batch scratch (DESIGN.md §12.5) as well
  /// as plain vectors.
  DeletionReport delete_arcs(std::span<const uint32_t> arc_ids);
  DeletionReport delete_arcs(std::initializer_list<uint32_t> arc_ids) {
    return delete_arcs(std::span<const uint32_t>(arc_ids.begin(),
                                                 arc_ids.size()));
  }

  /// Distance label of v (L+1 if unreachable within L).
  uint32_t dist(VertexId v) const { return dist_[v]; }

  /// Parent arc id of v, or kNoArc.
  int32_t parent_arc(VertexId v) const { return parent_arc_[v]; }

  /// Parent vertex of v, or kNoVertex.
  VertexId parent(VertexId v) const {
    return parent_arc_[v] == kNoArc ? kNoVertex
                                    : arcs_[parent_arc_[v]].src;
  }

  const Arc& arc(uint32_t a) const { return arcs_[a]; }
  size_t num_arcs() const { return arcs_.size(); }
  size_t num_vertices() const { return dist_.size(); }
  uint32_t depth_bound() const { return L_; }
  VertexId source() const { return source_; }

  /// Changes the priority key of arc `a` (new key must be distinct within
  /// In(dst) and < kHeadKey). If the arc is its destination's parent, the
  /// caller must follow up with rescan(dst) — flagged by the return value.
  /// Priorities of *valid parent candidates* must only decrease while the
  /// destination's distance is unchanged (asserted in debug builds).
  bool update_arc_priority(uint32_t a, uint64_t new_key);

  /// Re-selects the parent of v by scanning In(v) from the current pointer
  /// (NextWith with f = "source at distance Dist(v)-1"). Returns true if the
  /// parent arc changed. Requires 1 <= Dist(v) <= L; the caller guarantees a
  /// valid candidate still exists (true during the cluster cascade, where
  /// only priorities — not distances — changed).
  bool rescan(VertexId v);

  /// Like rescan but restarts the pointer from the head of In(v). Used by
  /// the clustering layer for vertices whose distance changed during the
  /// batch: their phase-time parent selection used pre-cascade priorities,
  /// so the argmax must be re-evaluated over the whole list.
  bool rescan_from_head(VertexId v);

  /// Iterates over the valid out-arcs of v: fn(arc_id, const Arc&).
  /// Out-arcs live in a flat CSR slice (arcs are never added after init,
  /// only invalidated), so traversal is one contiguous scan.
  template <typename Fn>
  void for_each_out_arc(VertexId v, Fn&& fn) const {
    for (uint32_t j = out_offsets_[v]; j < out_offsets_[v + 1]; ++j) {
      uint32_t a = out_arcs_[j];
      if (arcs_[a].valid) fn(a, arcs_[a]);
    }
  }

  /// Children of v in the current tree (destinations whose parent arc
  /// originates at v).
  template <typename Fn>
  void for_each_child(VertexId v, Fn&& fn) const {
    for (uint32_t j = out_offsets_[v]; j < out_offsets_[v + 1]; ++j) {
      uint32_t a = out_arcs_[j];
      if (arcs_[a].valid && parent_arc_[arcs_[a].dst] == int32_t(a))
        fn(arcs_[a].dst, a);
    }
  }

  ESWorkCounters& counters() { return counters_; }
  const ESWorkCounters& counters() const { return counters_; }

  /// Debug invariant check (A1 + distance correctness via BFS recompute).
  /// Expensive; used by tests.
  bool check_invariants() const;

 private:
  /// NextWith: finds the highest-key valid parent candidate with key <=
  /// `from_key`; returns arc id or kNoArc. Updates counters.
  int32_t next_with(VertexId v, uint64_t from_key);

  /// Records v's original parent the first time it changes in this batch.
  void note_parent_change(VertexId v);

  std::vector<Arc> arcs_;
  std::vector<CountedTreap<uint32_t>> in_;  // key -> arc id
  std::vector<uint32_t> out_offsets_;       // CSR offsets into out_arcs_
  std::vector<uint32_t> out_arcs_;          // arc ids grouped by source
  std::vector<uint32_t> dist_;
  std::vector<uint64_t> scan_key_;
  std::vector<int32_t> parent_arc_;
  VertexId source_ = kNoVertex;
  uint32_t L_ = 0;

  // Batch-scoped bookkeeping (members so that per-batch work stays
  // proportional to the batch, not to n).
  uint64_t batch_epoch_ = 0;
  uint64_t unew_epoch_ = 0;
  std::vector<uint64_t> changed_epoch_;      // parent-change dedup stamps
  std::vector<int32_t> old_parent_;          // original parent per batch
  std::vector<VertexId> changed_list_;       // vertices noted this batch
  std::vector<uint64_t> in_unew_;            // U_new dedup stamps
  std::vector<uint64_t> dist_bumped_epoch_;  // dist-change dedup stamps

  ESWorkCounters counters_;
};

}  // namespace parspan
