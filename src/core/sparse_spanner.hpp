// SparseSpanner: the fully-dynamic O(log n · poly(log log n))-spanner with
// O(n) edges of Theorem 1.3, via nested contractions (paper §4.2-§4.3).
//
// Layers 0..L-1 run the batch-dynamic Contract(G_i, x_i) of Lemma 4.1;
// layer L runs the fully-dynamic (2k-1)-spanner of Theorem 1.1 with
// k = Θ(log n_L) on the contracted graph. The contraction schedule follows
// Lemma 4.2/4.3: x_0 = 100, x_i = 100^{1.5^i - 1.5^{i-1}}, truncated so
// that ∏ x_i = Θ(log n) — for practical n this is a single layer with
// x_0 = Θ(log n), and the deeper schedules are exercised via explicit
// configuration.
//
// The spanner at layer i is S_i = H_i ∪ Bwd_i(S_{i+1}) (Algorithm 4's
// "add the corresponding edges"): updates flow upward through the layers,
// and spanner diffs flow back down, replacing each contracted pair by its
// current representative edge. S_0 is the answer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "container/flat_map.hpp"
#include "core/contraction.hpp"
#include "core/fully_dynamic_spanner.hpp"
#include "util/types.hpp"

namespace parspan {

/// The Lemma 4.3 contraction schedule: factors x_0.. with product Θ(target).
/// target defaults to log2(n) at the call site.
std::vector<double> contraction_schedule(double target);

struct SparseSpannerConfig {
  uint64_t seed = 1;
  /// Contraction factors; empty = contraction_schedule(max(4, log2 n)).
  std::vector<double> xs;
  /// Stretch parameter of the top-level Theorem 1.1 spanner;
  /// 0 = ceil(log2(n_top + 2)).
  uint32_t top_k = 0;
};

class SparseSpanner {
 public:
  SparseSpanner(size_t n, const std::vector<Edge>& edges,
                const SparseSpannerConfig& cfg);

  size_t num_vertices() const { return n_; }
  size_t num_edges() const { return num_edges_; }
  size_t spanner_size() const { return s_mem_[0].size(); }
  std::vector<Edge> spanner_edges() const;
  bool in_spanner(Edge e) const { return s_mem_[0].contains(e.key()); }

  /// Applies one batch (deletions then insertions); returns the net diff,
  /// both sides sorted by canonical key (DESIGN.md §7.4).
  SpannerDiff update(const std::vector<Edge>& insertions,
                     const std::vector<Edge>& deletions);
  SpannerDiff insert_edges(const std::vector<Edge>& ins) {
    return update(ins, {});
  }
  SpannerDiff delete_edges(const std::vector<Edge>& del) {
    return update({}, del);
  }

  size_t num_layers() const { return layers_.size(); }

  /// Composed stretch bound: layer recurrence stretch_i = 3*stretch_{i+1}+2
  /// over the top spanner's (2k-1) (Lemma 4.1's "3L+2").
  uint32_t stretch_bound() const { return stretch_bound_; }

  bool check_invariants() const;

 private:
  size_t n_ = 0;
  size_t num_edges_ = 0;
  std::vector<std::unique_ptr<ContractionLayer>> layers_;
  std::unique_ptr<FullyDynamicSpanner> top_;
  uint32_t stretch_bound_ = 0;

  /// s_mem_[i] = S_i (layer-i local edge keys), i in [0, L]; s_mem_[L] is
  /// the top spanner (top-graph edge keys).
  std::vector<FlatHashSet<EdgeKey>> s_mem_;
  /// used_rep_[i]: contracted pair (layer-(i+1) key) -> the layer-i edge
  /// key currently standing in for it inside S_i.
  std::vector<FlatHashMap<EdgeKey, EdgeKey>> used_rep_;
};

}  // namespace parspan
