#include "core/es_tree.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "parallel/csr.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"

namespace parspan {

void ESTree::init(size_t n,
                  const std::vector<std::pair<VertexId, VertexId>>& arcs,
                  const std::vector<uint64_t>& keys, VertexId source,
                  uint32_t L) {
  assert(arcs.size() == keys.size());
  source_ = source;
  L_ = L;
  size_t num_arcs = arcs.size();
  arcs_.resize(num_arcs);
  dist_.assign(n, L + 1);
  scan_key_.assign(n, kHeadKey);
  parent_arc_.assign(n, kNoArc);
  changed_epoch_.assign(n, 0);
  old_parent_.assign(n, kNoArc);
  in_unew_.assign(n, 0);
  dist_bumped_epoch_.assign(n, 0);
  changed_list_.clear();
  batch_epoch_ = 0;
  unew_epoch_ = 0;

  std::vector<uint32_t> srcs(num_arcs), dsts(num_arcs);
  parallel_for(0, num_arcs, [&](size_t i) {
    auto [u, v] = arcs[i];
    assert(keys[i] < kHeadKey);
    arcs_[i] = Arc{u, v, keys[i], true};
    srcs[i] = u;
    dsts[i] = v;
  });
  // Out-arcs as a flat CSR layout (histogram -> scan -> scatter): arcs are
  // only ever invalidated after init, never added, so the slices stay valid
  // for the lifetime of the tree.
  {
    GroupedIndices out = group_by_key(n, srcs);
    out_offsets_ = std::move(out.offsets);
    out_arcs_ = std::move(out.items);
  }
  // In-lists: group arcs by destination, then bulk-build each treap from
  // its key-sorted slice in O(size) instead of O(size log size) pointer-
  // chasing inserts. Trees are independent, so the build runs per-vertex
  // in parallel.
  {
    GroupedIndices by_dst = group_by_key(n, dsts);
    in_.assign(n, {});
    std::vector<std::pair<uint64_t, uint32_t>> entries(num_arcs);
    parallel_for(0, num_arcs, [&](size_t j) {
      uint32_t a = by_dst.items[j];
      entries[j] = {arcs_[a].key, a};
    });
    parallel_for(
        0, n,
        [&](size_t v) {
          uint32_t lo = by_dst.offsets[v], hi = by_dst.offsets[v + 1];
          if (lo == hi) return;
          std::sort(entries.begin() + lo, entries.begin() + hi);
          in_[v].build_sorted(entries.data() + lo, hi - lo);
        });
    counters_.treap_ops += num_arcs;
  }

  // Bounded BFS from the source over the CSR out-slices (Lemma 3.2).
  dist_[source] = 0;
  std::vector<VertexId> frontier = {source};
  for (uint32_t level = 0; level < L && !frontier.empty(); ++level) {
    std::vector<VertexId> next;
    for (VertexId u : frontier) {
      for (uint32_t j = out_offsets_[u]; j < out_offsets_[u + 1]; ++j) {
        VertexId w = arcs_[out_arcs_[j]].dst;
        if (dist_[w] == L + 1) {
          dist_[w] = level + 1;
          next.push_back(w);
        }
      }
    }
    frontier = std::move(next);
  }

  // Parent selection: NextWith from the head of each In(v) (Invariant A1).
  std::vector<VertexId> reached;
  for (VertexId v = 0; v < n; ++v)
    if (v != source && dist_[v] <= L) reached.push_back(v);
  parallel_for(0, reached.size(), [&](size_t i) {
    VertexId v = reached[i];
    int32_t a = next_with(v, kHeadKey);
    assert(a != kNoArc && "BFS-reached vertex must have a parent candidate");
    parent_arc_[v] = a;
    scan_key_[v] = arcs_[a].key;
  });
}

int32_t ESTree::next_with(VertexId v, uint64_t from_key) {
  int32_t found = kNoArc;
  uint32_t want = dist_[v] - 1;
  uint64_t steps = 0;
  in_[v].for_each_desc_from(from_key, [&](uint64_t /*key*/, uint32_t& a) {
    ++steps;
    if (arcs_[a].valid && dist_[arcs_[a].src] == want) {
      found = static_cast<int32_t>(a);
      return false;
    }
    return true;
  });
  // next_with runs inside parallel loops (Algorithm 1's per-phase scans,
  // the cluster cascade's phase A), where the shared counter add must be
  // atomic; serial callers skip the RMW. The sum is order-independent
  // either way, keeping the counters deterministic.
  if (in_parallel()) {
    std::atomic_ref<uint64_t>(counters_.scan_steps)
        .fetch_add(steps, std::memory_order_relaxed);
  } else {
    counters_.scan_steps += steps;
  }
  return found;
}

void ESTree::note_parent_change(VertexId v) {
  if (changed_epoch_[v] != batch_epoch_) {
    changed_epoch_[v] = batch_epoch_;
    old_parent_[v] = parent_arc_[v];
    changed_list_.push_back(v);
  }
}

ESTree::DeletionReport ESTree::delete_arcs(std::span<const uint32_t> arc_ids) {
  DeletionReport report;
  ++batch_epoch_;

  // --- Step 1: remove all the arcs from the data structures. ---
  // Batched: invalidate serially (dedups repeated ids), then group the
  // doomed arcs by destination — distinct destinations own independent
  // in-trees, so the treap erases run as a parallel loop over groups. The
  // orphan list is compiled serially in (dst, arc) order afterwards, which
  // keeps every downstream queue fill deterministic across thread counts.
  std::vector<std::pair<VertexId, uint32_t>> doomed;
  doomed.reserve(arc_ids.size());
  for (uint32_t a : arc_ids) {
    if (a >= arcs_.size() || !arcs_[a].valid) continue;
    arcs_[a].valid = false;
    doomed.push_back({arcs_[a].dst, a});
  }
  parallel_sort(doomed);
  std::vector<size_t> group_start;
  for (size_t i = 0; i < doomed.size(); ++i)
    if (i == 0 || doomed[i].first != doomed[i - 1].first)
      group_start.push_back(i);
  group_start.push_back(doomed.size());
  size_t num_groups = group_start.empty() ? 0 : group_start.size() - 1;
  std::vector<uint8_t> lost_parent(num_groups, 0);
  parallel_for(
      0, num_groups,
      [&](size_t g) {
        for (size_t i = group_start[g]; i < group_start[g + 1]; ++i) {
          auto [dst, a] = doomed[i];
          in_[dst].erase(arcs_[a].key);
          if (parent_arc_[dst] == int32_t(a)) lost_parent[g] = 1;
        }
      });
  counters_.treap_ops += doomed.size();
  std::vector<VertexId> orphaned;  // tree-arc destinations
  for (size_t g = 0; g < num_groups; ++g) {
    if (!lost_parent[g]) continue;
    VertexId dst = doomed[group_start[g]].first;
    note_parent_change(dst);
    parent_arc_[dst] = kNoArc;
    orphaned.push_back(dst);
  }

  // --- Step 2: each orphaned vertex advances Scan(v) with NextWith. ---
  // Successful vertices keep their distance; failures become "pending" and
  // will enter U at phase i = Dist(v) (pseudocode line 12).
  std::vector<std::vector<VertexId>> pending_by_dist(L_ + 2);
  uint32_t min_phase = L_ + 1;
  parallel_for(0, orphaned.size(), [&](size_t idx) {
    VertexId v = orphaned[idx];
    int32_t a = next_with(v, scan_key_[v]);
    if (a != kNoArc) {
      parent_arc_[v] = a;
      scan_key_[v] = arcs_[a].key;
    } else {
      scan_key_[v] = kHeadKey;  // reset for the post-bump rescan
    }
  });
  for (VertexId v : orphaned) {
    if (parent_arc_[v] == kNoArc) {
      pending_by_dist[dist_[v]].push_back(v);
      min_phase = std::min(min_phase, dist_[v]);
      ++counters_.queue_pushes;
    }
  }

  // --- Phase loop (Algorithm 1 lines 4-15). ---
  // Members of U at phase i carry Dist = i (set at the end of phase i-1).
  std::vector<VertexId> U;
  if (in_unew_.size() < dist_.size()) in_unew_.assign(dist_.size(), 0);
  size_t pending_left = 0;
  for (auto& b : pending_by_dist) pending_left += b.size();

  for (uint32_t i = min_phase; i <= L_; ++i) {
    if (U.empty() && pending_left == 0) break;
    ++unew_epoch_;
    // Line 7: parallel NextWith for all U members (their Dist is i, so they
    // seek parents at distance i-1; those distances are final by A2).
    std::vector<uint8_t> failed(U.size(), 0);
    parallel_for(0, U.size(), [&](size_t idx) {
      VertexId v = U[idx];
      int32_t a = next_with(v, scan_key_[v]);
      if (a != kNoArc) {
        parent_arc_[v] = a;
        scan_key_[v] = arcs_[a].key;
      } else {
        failed[idx] = 1;
      }
    });
    std::vector<VertexId> unew;
    auto push_unew = [&](VertexId w) {
      if (in_unew_[w] != unew_epoch_) {
        in_unew_[w] = unew_epoch_;
        unew.push_back(w);
        ++counters_.queue_pushes;
      }
    };
    for (size_t idx = 0; idx < U.size(); ++idx) {
      if (!failed[idx]) continue;
      VertexId v = U[idx];
      // Lines 8-11: reset pointer, requeue v and its current tree children.
      scan_key_[v] = kHeadKey;
      push_unew(v);
      for_each_child(v, [&](VertexId c, uint32_t) {
        assert(dist_[c] == i + 1);
        note_parent_change(c);
        parent_arc_[c] = kNoArc;
        // NB: children keep their Scan pointer (paper line 11 adds them to
        // U without a reset); their skipped prefix only contains arcs whose
        // sources have distance >= Dist(c), so no candidate is missed.
        push_unew(c);
      });
    }
    // Line 12: pending vertices at this distance join. Their distance is
    // about to increase (line 14), so — exactly as in the scan-failure path
    // — their current tree children become stale and must be requeued
    // ("all descendants of v ... may potentially have an incorrect value").
    for (VertexId v : pending_by_dist[i]) {
      push_unew(v);
      --pending_left;
      for_each_child(v, [&](VertexId c, uint32_t) {
        assert(dist_[c] == i + 1);
        note_parent_change(c);
        parent_arc_[c] = kNoArc;
        push_unew(c);
      });
    }
    pending_by_dist[i].clear();
    // Lines 13-15: advance distances.
    if (!unew.empty()) ++counters_.phases, ++report.phases;
    for (VertexId v : unew) {
      if (dist_[v] != i + 1) {
        if (dist_bumped_epoch_[v] != batch_epoch_) {
          dist_bumped_epoch_[v] = batch_epoch_;
          report.dist_changed.push_back(v);
        }
      }
      dist_[v] = i + 1;
      if (dist_[v] > L_) {
        // Out of the depth-L tree entirely.
        note_parent_change(v);
        parent_arc_[v] = kNoArc;
        scan_key_[v] = kHeadKey;
      }
    }
    if (i == L_) break;
    U = std::move(unew);
    // Drop vertices that fell out of the tree.
    U.erase(std::remove_if(U.begin(), U.end(),
                           [&](VertexId v) { return dist_[v] > L_; }),
            U.end());
  }

  // Compile the parent-change log from the vertices touched this batch.
  for (VertexId v : changed_list_) {
    if (old_parent_[v] != parent_arc_[v])
      report.parent_changed.push_back({v, old_parent_[v]});
  }
  changed_list_.clear();
  return report;
}

bool ESTree::update_arc_priority(uint32_t a, uint64_t new_key) {
  Arc& arc = arcs_[a];
  assert(arc.valid);
  assert(new_key < kHeadKey);
  if (arc.key == new_key) return false;
  // NB: while a destination's distance is stable, valid parent candidates
  // only move toward smaller keys (paper §3.3); keys may move upward past
  // the scan pointer only for destinations whose distance changed in the
  // current batch — those are rescanned from the head by the cluster layer.
  bool was_parent = parent_arc_[arc.dst] == int32_t(a);
  in_[arc.dst].erase(arc.key);
  arc.key = new_key;
  in_[arc.dst].insert(new_key, a);
  counters_.treap_ops += 2;
  return was_parent;
}

bool ESTree::rescan(VertexId v) {
  if (v == source_ || dist_[v] == 0 || dist_[v] > L_) return false;
  int32_t a = next_with(v, scan_key_[v]);
  assert(a != kNoArc &&
         "rescan must find a parent: distances did not change");
  if (a == parent_arc_[v] && arcs_[a].key == scan_key_[v]) return false;
  bool changed = (a != parent_arc_[v]);
  if (changed) parent_arc_[v] = a;
  scan_key_[v] = arcs_[a].key;
  return changed;
}

bool ESTree::rescan_from_head(VertexId v) {
  if (v == source_ || dist_[v] == 0 || dist_[v] > L_) return false;
  int32_t a = next_with(v, kHeadKey);
  assert(a != kNoArc && "rescan_from_head must find a parent");
  bool changed = (a != parent_arc_[v]);
  if (changed) parent_arc_[v] = a;
  scan_key_[v] = arcs_[a].key;
  return changed;
}

bool ESTree::check_invariants() const {
  size_t n = dist_.size();
  // Recompute distances with a bounded BFS over valid arcs.
  std::vector<uint32_t> ref(n, L_ + 1);
  ref[source_] = 0;
  std::vector<VertexId> frontier = {source_};
  for (uint32_t level = 0; level < L_ && !frontier.empty(); ++level) {
    std::vector<VertexId> next;
    for (VertexId u : frontier)
      for (uint32_t j = out_offsets_[u]; j < out_offsets_[u + 1]; ++j) {
        uint32_t a = out_arcs_[j];
        if (arcs_[a].valid && ref[arcs_[a].dst] == L_ + 1) {
          ref[arcs_[a].dst] = level + 1;
          next.push_back(arcs_[a].dst);
        }
      }
    frontier = std::move(next);
  }
  for (VertexId v = 0; v < n; ++v) {
    if (dist_[v] != ref[v]) return false;
    if (v == source_ || dist_[v] > L_) {
      if (parent_arc_[v] != kNoArc) return false;
      continue;
    }
    int32_t pa = parent_arc_[v];
    if (pa == kNoArc) return false;
    const Arc& arc = arcs_[pa];
    if (!arc.valid || arc.dst != v) return false;
    if (dist_[arc.src] + 1 != dist_[v]) return false;
    if (arc.key != scan_key_[v]) return false;
    // A1: no valid parent candidate with a key above the scan pointer.
    bool bad = false;
    const_cast<CountedTreap<uint32_t>&>(in_[v]).for_each_desc(
        [&](uint64_t key, uint32_t& aid) {
          if (key <= scan_key_[v]) return false;
          if (arcs_[aid].valid && dist_[arcs_[aid].src] + 1 == dist_[v])
            bad = true;
          return !bad;
        });
    if (bad) return false;
  }
  return true;
}

}  // namespace parspan
