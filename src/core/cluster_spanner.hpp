// DecrementalClusterSpanner: the batch-dynamic decremental (2k-1)-spanner of
// Lemma 3.3, built on exponential start-time clustering [MPVX15] maintained
// by the batch-dynamic Even-Shiloach tree of Theorem 1.2.
//
// Construction (paper §3.3):
//  * every vertex u draws delta_u ~ Exp(beta) with beta = ln(10 n)/k,
//    resampled (Las Vegas) until max_u delta_u < k;
//  * delta_u = d_u + f_u splits into the integer part d_u and fraction f_u;
//    Priority(v) = rank of f_v (larger fraction = higher priority);
//  * the auxiliary digraph G' adds path vertices p_0 .. p_{t-1}
//    (t = max d_u + 1) with arcs p_i -> p_{i+1}, a head-start arc
//    p_{t-1-d_v} -> v per vertex, and both orientations of every edge;
//  * an ES tree from p_0 with depth bound L = t maintains the clustering:
//    Cluster(v) = v if v's parent is a path vertex, else Cluster(parent);
//  * the priority key of arc (w -> v) in In(v) is
//    Priority(Cluster(w)) * 2^32 + arc_id (distinct keys, Lemma 3.1),
//    head-start arcs use Priority(v); thus the ES parent choice maximizes
//    the cluster priority among min-distance candidates.
//
// The spanner is the union of
//  * intra-cluster tree edges: (parent(v), v) for parents in V, and
//  * inter-cluster representatives: one edge per nonempty InterCluster[(v,c)]
//    group with c != Cluster(v).
//
// After each deletion batch the distance phases of Algorithm 1 run first;
// then a *cluster cascade* repairs clusters in level order (DESIGN.md §3.2):
// a vertex is re-examined only after all potential parents carry final
// distances and final cluster priorities. Vertices whose distance changed
// re-select from the head of In(v); distance-stable vertices use the
// forward-only NextWith (their candidates' priorities can only drop).
// Each level runs two phases — parallel parent re-selection, then serial
// deterministic application of contribution and cluster changes
// (DESIGN.md §6.3).
//
// With cfg.intercluster = false the structure maintains only the forest of
// intra-cluster tree edges — the per-instance mode of the monotone spanner
// (Lemma 6.4), where beta is an explicit constant.
//
// Batch semantics: delete_edges applies the whole batch atomically — the
// returned SpannerDiff is the NET change between the spanner before and
// after the batch (an edge that enters and leaves within one batch does not
// appear), with inserted/removed each sorted by canonical edge key. The
// diff is a deterministic function of (construction inputs, deletion batch
// history): it does not depend on the worker-thread count (DESIGN.md §6).
//
// Thread safety: construction and delete_edges parallelize internally but
// external calls must be serialized — one batch at a time, no concurrent
// readers during a batch. Distinct instances are fully independent and may
// be constructed/updated concurrently (the Bentley-Saxe layer of Theorem
// 1.1 rebuilds disjoint partitions in parallel this way).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "container/concurrent_map.hpp"
#include "container/flat_map.hpp"
#include "core/es_tree.hpp"
#include "parallel/arena.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace parspan {

/// Net change of a spanner edge set after one update batch. Producers in
/// core/ emit both sides sorted by canonical edge key, so equal spanner
/// evolutions compare equal element-wise.
struct SpannerDiff {
  std::vector<Edge> inserted;
  std::vector<Edge> removed;
};

/// Per-batch net-diff accumulator shared by the spanner layers: a flat
/// delta table plus the list of keys it holds. Draining by touched key
/// keeps diff compilation O(batch) — a clear() would scan the table's
/// whole high-water capacity every batch (DESIGN.md §6.4).
class DiffAccumulator {
 public:
  void bump(EdgeKey e, int32_t dir) {
    size_t before = delta_.size();
    int32_t& d = delta_[e];
    if (delta_.size() != before) touched_.push_back(e);
    d += dir;
  }
  void add(EdgeKey e) { bump(e, +1); }
  void remove(EdgeKey e) { bump(e, -1); }

  bool empty() const { return delta_.empty(); }

  /// Compiles the net diff (both sides sorted by canonical key) and leaves
  /// the accumulator empty. Net values must lie in [-1, 1].
  SpannerDiff drain();

  /// Discards all accumulated state without compiling a diff.
  void reset() {
    delta_.clear();
    touched_.clear();
  }

 private:
  FlatHashMap<EdgeKey, int32_t> delta_;
  std::vector<EdgeKey> touched_;
};

struct ClusterSpannerConfig {
  /// Stretch parameter: the spanner has stretch 2k-1.
  uint32_t k = 4;
  /// Seed for delta sampling and the priority permutation.
  uint64_t seed = 1;
  /// Maintain inter-cluster representative edges (true for Lemma 3.3;
  /// false for the forest-only instances of Lemma 6.4).
  bool intercluster = true;
  /// Exponential rate; 0 means the paper's ln(10 n)/k.
  double beta = 0.0;
  /// Las Vegas resample threshold for max delta; 0 means k.
  double delta_cap = 0.0;
};

class DecrementalClusterSpanner {
 public:
  DecrementalClusterSpanner(size_t n, const std::vector<Edge>& edges,
                            const ClusterSpannerConfig& cfg);

  /// Tag selecting the pre-canonicalized construction path.
  struct FromSortedKeys {};

  /// Construction from canonical edge keys, sorted ascending and unique
  /// (the output format of canonical_edge_keys). Skips the dedup sort —
  /// this is the entry point the Bentley-Saxe partition rebuild uses after
  /// its own merge-as-sort already produced exactly this representation.
  DecrementalClusterSpanner(size_t n, FromSortedKeys,
                            std::vector<EdgeKey> sorted_keys,
                            const ClusterSpannerConfig& cfg);

  size_t num_vertices() const { return n_; }
  size_t alive_edges() const { return alive_count_; }

  /// Current spanner size (number of edges).
  size_t spanner_size() const { return contrib_.size(); }

  /// Materializes the current spanner edge set.
  std::vector<Edge> spanner_edges() const;

  /// True iff e is currently in the spanner.
  bool in_spanner(Edge e) const { return contrib_.contains(e.key()); }

  /// Deletes a batch of edges (absent/dead edges ignored); returns the net
  /// spanner diff. Amortized work O(k log^2 n) per deleted edge. Takes a
  /// span so callers can pass arena-backed batch scratch (DESIGN.md §12.5)
  /// as well as plain vectors.
  SpannerDiff delete_edges(std::span<const Edge> batch);
  SpannerDiff delete_edges(std::initializer_list<Edge> batch) {
    return delete_edges(std::span<const Edge>(batch.begin(), batch.size()));
  }

  /// Cluster center of v (= v itself for cluster centers).
  VertexId cluster(VertexId v) const { return cluster_[v]; }

  /// Total number of cluster reassignments across all batches (Lemma 3.6:
  /// expected <= 2 t log n per vertex over a full deletion sequence).
  uint64_t cluster_changes() const { return cluster_change_count_; }

  /// Depth t of the auxiliary path (= ES depth bound).
  uint32_t t() const { return t_; }

  /// Priority rank of v's fractional part (1..n).
  uint32_t priority(VertexId v) const { return priority_[v]; }

  const ESTree& es() const { return es_; }

  /// Number of phases executed by the last delete_edges call (depth proxy).
  uint32_t last_phases() const { return last_phases_; }

  /// Full oracle check: ES invariants, cluster fixpoint, InterCluster
  /// membership, spanner contribution refcounts. Expensive; for tests.
  bool check_invariants() const;

 private:
  uint64_t arc_key(uint32_t arc_id, VertexId center) const {
    return (static_cast<uint64_t>(priority_[center]) << 32) | arc_id;
  }

  /// Per-batch dirty-vertex buckets, one per ES level. Arena-backed: the
  /// whole structure is scratch that dies with delete_edges' ArenaScope.
  using Buckets = ArenaVector<ArenaVector<VertexId>>;

  VertexId cluster_from_parent(VertexId v) const;
  void refresh_tree_contrib(VertexId v);
  void add_contrib(EdgeKey e);
  void remove_contrib(EdgeKey e);
  void add_membership(VertexId x, VertexId c, VertexId other);
  void remove_membership(VertexId x, VertexId c, VertexId other);
  void apply_cluster_change(VertexId v, VertexId newc, Buckets& buckets);
  void flag_dirty(VertexId v, Buckets& buckets);

  size_t n_ = 0;
  ClusterSpannerConfig cfg_;
  uint32_t t_ = 1;

  std::vector<uint32_t> du_;        // integer parts of delta
  std::vector<uint32_t> priority_;  // fraction ranks, 1..n

  std::vector<Edge> edges_;  // arc ids 2i (u->v), 2i+1 (v->u)
  std::vector<uint8_t> alive_;
  /// EdgeKey -> index into edges_. Keys are fixed at construction (deletion
  /// only flips alive_), so the lock-free fixed-capacity table applies; it
  /// is also what lets construction insert the dedup index in parallel.
  ConcurrentFixedMap edge_index_;
  size_t alive_count_ = 0;

  ESTree es_;
  std::vector<VertexId> cluster_;
  std::vector<EdgeKey> tree_contrib_;  // per-vertex tree edge, kNoEdge if none

  /// InterCluster[(v, c)]: neighbors of v lying in cluster c, plus the
  /// designated representative (paper's hash table of hash tables; the
  /// outer level is a flat open-addressing table — DESIGN.md §1). Members
  /// are a small unordered vector (erase = swap-pop): group sizes are
  /// degree-bounded and average 1-2 entries, where a linear scan beats any
  /// hash structure and teardown is one vector free.
  struct Group {
    std::vector<VertexId> members;
    VertexId rep = kNoVertex;

    bool contains(VertexId m) const {
      return std::find(members.begin(), members.end(), m) != members.end();
    }
    /// Removes m (must be present); returns true if the group emptied.
    bool erase_member(VertexId m) {
      auto it = std::find(members.begin(), members.end(), m);
      assert(it != members.end());
      *it = members.back();
      members.pop_back();
      return members.empty();
    }
  };
  std::vector<FlatHashMap<VertexId, Group>> groups_;

  FlatHashMap<EdgeKey, uint32_t> contrib_;  // spanner refcounts
  DiffAccumulator batch_delta_;             // per-batch diff (DESIGN.md §6.4)

  // Cascade scratch (epoch-stamped to keep per-batch work batch-sized).
  std::vector<uint64_t> dirty_epoch_;
  std::vector<uint64_t> distch_epoch_;
  uint64_t epoch_ = 0;

  uint64_t cluster_change_count_ = 0;
  uint32_t last_phases_ = 0;
};

}  // namespace parspan
