#include "core/baselines/static_mpvx.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.hpp"

namespace parspan {

MpvxResult mpvx_spanner(size_t n, const std::vector<Edge>& edges, uint32_t k,
                        uint64_t seed) {
  MpvxResult res;
  res.cluster.assign(n, kNoVertex);
  if (n == 0) return res;

  // Las Vegas delta sampling (Algorithm 2 lines 1-3).
  double beta = std::log(10.0 * double(n)) / double(k);
  Rng rng(seed);
  std::vector<double> delta(n);
  while (true) {
    double mx = 0;
    for (size_t v = 0; v < n; ++v) {
      delta[v] = rng.next_exponential(beta);
      mx = std::max(mx, delta[v]);
    }
    if (mx < double(k)) break;
  }

  // Adjacency.
  std::vector<std::vector<VertexId>> adj(n);
  std::unordered_set<EdgeKey> seen;
  for (const Edge& e : edges) {
    if (e.u == e.v || e.u >= n || e.v >= n) continue;
    if (!seen.insert(e.key()).second) continue;
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }

  // Clustering: v joins argmax_u (delta_u - dist(u, v)). Computed as a
  // level-synchronous multi-source BFS with fractional head starts: vertex
  // u starts "running" at time k - delta_u; ties at equal arrival level are
  // broken by the larger fractional remainder (equivalently, the fractional
  // priority permutation of §3.3).
  std::vector<double> best(n, -1e18);   // delta_u - dist(u, v) so far
  std::vector<uint32_t> dist(n, 0);     // distance to the winning center
  std::vector<VertexId> parent(n, kNoVertex);
  // Initialize with self-candidacy.
  struct Cand {
    double score;
    VertexId center;
  };
  for (VertexId v = 0; v < n; ++v) {
    best[v] = delta[v];
    res.cluster[v] = v;
  }
  // Bellman-Ford-style level relaxation; at most k rounds since
  // delta < k bounds cluster radii.
  for (uint32_t round = 1; round <= k; ++round) {
    bool changed = false;
    std::vector<double> nbest = best;
    std::vector<VertexId> ncluster = res.cluster;
    std::vector<VertexId> nparent = parent;
    std::vector<uint32_t> ndist = dist;
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId w : adj[v]) {
        double cand = best[w] - 1.0;
        // Strictly-better rule with deterministic tiebreak by center id.
        if (cand > nbest[v] + 1e-12 ||
            (std::abs(cand - nbest[v]) <= 1e-12 &&
             res.cluster[w] != kNoVertex && ncluster[v] != kNoVertex &&
             res.cluster[w] < ncluster[v])) {
          nbest[v] = cand;
          ncluster[v] = res.cluster[w];
          nparent[v] = w;
          ndist[v] = dist[w] + 1;
          changed = true;
        }
      }
    }
    best = std::move(nbest);
    res.cluster = std::move(ncluster);
    parent = std::move(nparent);
    dist = std::move(ndist);
    res.rounds = round;
    if (!changed) break;
  }

  // Spanner: cluster forest + one edge per (vertex, adjacent cluster).
  std::unordered_set<EdgeKey> h;
  for (VertexId v = 0; v < n; ++v)
    if (parent[v] != kNoVertex) h.insert(edge_key(v, parent[v]));
  for (VertexId v = 0; v < n; ++v) {
    std::unordered_map<VertexId, VertexId> per_cluster;
    for (VertexId w : adj[v])
      if (res.cluster[w] != res.cluster[v])
        per_cluster.emplace(res.cluster[w], w);
    for (auto& [c, w] : per_cluster) h.insert(edge_key(v, w));
  }
  // Isolated vertices have no cluster.
  for (VertexId v = 0; v < n; ++v)
    if (adj[v].empty()) res.cluster[v] = kNoVertex;
  res.spanner.reserve(h.size());
  for (EdgeKey ek : h) res.spanner.push_back(edge_from_key(ek));
  return res;
}

}  // namespace parspan
