#include "core/baselines/baswana_sen.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.hpp"

namespace parspan {

std::vector<Edge> baswana_sen_spanner(size_t n,
                                      const std::vector<Edge>& edges,
                                      uint32_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> spanner;
  // Active adjacency.
  std::vector<std::unordered_set<VertexId>> adj(n);
  for (const Edge& e : edges) {
    if (e.u == e.v || e.u >= n || e.v >= n) continue;
    adj[e.u].insert(e.v);
    adj[e.v].insert(e.u);
  }
  std::vector<VertexId> cluster(n);
  for (VertexId v = 0; v < n; ++v) cluster[v] = v;
  std::vector<uint8_t> active(n, 1);
  double p = std::pow(double(std::max<size_t>(n, 2)), -1.0 / double(k));

  auto drop_vertex_edges_to_cluster = [&](VertexId v, VertexId c) {
    std::vector<VertexId> doomed;
    for (VertexId w : adj[v])
      if (cluster[w] == c) doomed.push_back(w);
    for (VertexId w : doomed) {
      adj[v].erase(w);
      adj[w].erase(v);
    }
  };

  for (uint32_t phase = 1; phase + 1 <= k; ++phase) {
    // Sample the surviving clusters.
    std::unordered_set<VertexId> sampled;
    std::unordered_set<VertexId> centers;
    for (VertexId v = 0; v < n; ++v)
      if (active[v]) centers.insert(cluster[v]);
    for (VertexId c : centers)
      if (rng.next_bool(p)) sampled.insert(c);

    std::vector<VertexId> new_cluster = cluster;
    for (VertexId v = 0; v < n; ++v) {
      if (!active[v]) continue;
      if (sampled.count(cluster[v])) continue;  // stays in its cluster
      // Adjacent sampled cluster?
      VertexId join = kNoVertex, via = kNoVertex;
      for (VertexId w : adj[v]) {
        if (sampled.count(cluster[w])) {
          join = cluster[w];
          via = w;
          break;
        }
      }
      if (join != kNoVertex) {
        spanner.emplace_back(v, via);
        new_cluster[v] = join;
        drop_vertex_edges_to_cluster(v, join);
      } else {
        // One edge per adjacent cluster, then retire v.
        std::unordered_map<VertexId, VertexId> per_cluster;
        for (VertexId w : adj[v]) per_cluster.emplace(cluster[w], w);
        for (auto& [c, w] : per_cluster) spanner.emplace_back(v, w);
        std::vector<VertexId> nbrs(adj[v].begin(), adj[v].end());
        for (VertexId w : nbrs) {
          adj[v].erase(w);
          adj[w].erase(v);
        }
        active[v] = 0;
      }
    }
    cluster = std::move(new_cluster);
  }
  // Final phase: one edge per adjacent cluster for every surviving vertex.
  for (VertexId v = 0; v < n; ++v) {
    if (!active[v]) continue;
    std::unordered_map<VertexId, VertexId> per_cluster;
    for (VertexId w : adj[v])
      if (cluster[w] != cluster[v]) per_cluster.emplace(cluster[w], w);
    for (auto& [c, w] : per_cluster) {
      spanner.emplace_back(v, w);
      drop_vertex_edges_to_cluster(v, c);
    }
  }
  // Deduplicate.
  std::unordered_set<EdgeKey> seen;
  std::vector<Edge> out;
  for (const Edge& e : spanner)
    if (seen.insert(e.key()).second) out.push_back(e);
  return out;
}

}  // namespace parspan
