// Static (2k-1)-spanner via exponential start-time clustering — the
// algorithm of Miller-Peng-Vladu-Xu [MPVX15] with the Elkin-Neiman [EN18]
// analysis, exactly as recalled in the paper's Algorithm 2 (including the
// Las Vegas resampling of lines 1-3).
//
// This is the *static parallel* counterpart of the dynamic structure of
// Lemma 3.3: each vertex u draws delta_u ~ Exp(ln(10n)/k) (resampled until
// max delta < k), vertices join the cluster of the u maximizing
// delta_u - dist(u, v), the spanner is the union of the cluster BFS forest
// and one edge per (vertex, adjacent-cluster) pair. Expected size
// O(n^{1+1/k}), stretch 2k-1.
//
// Used as a second recompute-from-scratch baseline and as a cross-check
// for the dynamic structure's clustering (both must produce valid
// (2k-1)-spanners from the same ingredients).
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace parspan {

struct MpvxResult {
  std::vector<Edge> spanner;
  /// Cluster center per vertex (kNoVertex for isolated vertices).
  std::vector<VertexId> cluster;
  /// Number of BFS rounds used (depth proxy, <= k).
  uint32_t rounds = 0;
};

/// Computes a (2k-1)-spanner with exponential start-time clustering.
MpvxResult mpvx_spanner(size_t n, const std::vector<Edge>& edges, uint32_t k,
                        uint64_t seed);

}  // namespace parspan
