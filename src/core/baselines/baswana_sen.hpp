// Static (2k-1)-spanner of Baswana & Sen [BS07] — the classic randomized
// clustering construction, expected size O(k · n^{1+1/k}).
//
// This is the recompute-from-scratch baseline of experiment E9
// (DESIGN.md §5): a batch-dynamic structure must beat rebuilding this after
// every batch once batches are small relative to m.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace parspan {

/// Computes a (2k-1)-spanner of the given graph.
std::vector<Edge> baswana_sen_spanner(size_t n, const std::vector<Edge>& edges,
                                      uint32_t k, uint64_t seed);

}  // namespace parspan
