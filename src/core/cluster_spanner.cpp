#include "core/cluster_spanner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "parallel/csr.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"

namespace parspan {

SpannerDiff DiffAccumulator::drain() {
  SpannerDiff diff;
  for (EdgeKey ek : touched_) {
    int32_t* d = delta_.find(ek);
    assert(d != nullptr && *d >= -1 && *d <= 1);
    if (*d > 0) diff.inserted.push_back(edge_from_key(ek));
    if (*d < 0) diff.removed.push_back(edge_from_key(ek));
    delta_.erase(ek);
  }
  touched_.clear();
  parallel_sort(diff.inserted);
  parallel_sort(diff.removed);
  return diff;
}

DecrementalClusterSpanner::DecrementalClusterSpanner(
    size_t n, const std::vector<Edge>& edges,
    const ClusterSpannerConfig& cfg)
    : DecrementalClusterSpanner(n, FromSortedKeys{},
                                canonical_edge_keys(n, edges), cfg) {}

DecrementalClusterSpanner::DecrementalClusterSpanner(
    size_t n, FromSortedKeys, std::vector<EdgeKey> sorted_keys,
    const ClusterSpannerConfig& cfg)
    : n_(n), cfg_(cfg) {
  assert(n >= 1);
  double beta = cfg.beta > 0 ? cfg.beta
                             : std::log(10.0 * double(n)) / double(cfg.k);
  double cap = cfg.delta_cap > 0 ? cfg.delta_cap : double(cfg.k);

  // --- Las Vegas delta sampling (Algorithm 2 lines 1-3). ---
  // Every vertex draws from its own (seed, round, v) stream, so the whole
  // round is one parallel loop and the result is independent of the
  // iteration order and thread count.
  std::vector<double> delta(n);
  for (uint64_t round = 0;; ++round) {
    uint64_t round_seed = hash_combine(cfg.seed, round);
    parallel_for(0, n, [&](size_t v) {
      Rng stream(hash_combine(round_seed, v));
      delta[v] = stream.next_exponential(beta);
    });
    double mx = parallel_reduce(
        0, n, 0.0, [&](size_t v) { return delta[v]; },
        [](double a, double b) { return a < b ? b : a; });
    if (mx < cap) break;
  }
  du_.resize(n);
  std::vector<double> frac(n);
  parallel_for(0, n, [&](size_t v) {
    du_[v] = static_cast<uint32_t>(delta[v]);
    frac[v] = delta[v] - double(du_[v]);
  });
  uint32_t maxd = parallel_reduce(
      0, n, 0u, [&](size_t v) { return du_[v]; },
      [](uint32_t a, uint32_t b) { return a < b ? b : a; });
  t_ = maxd + 1;

  // --- Priority permutation: rank of the fractional part (1..n). ---
  // Sort packed (frac, id) keys: the fraction quantized to 32 bits in the
  // high word, the vertex id in the low word as the tie-break. One flat
  // 64-bit sort instead of a comparator chasing a separate double array.
  std::vector<uint64_t> pkeys(n);
  parallel_for(0, n, [&](size_t v) {
    uint64_t f = static_cast<uint64_t>(frac[v] * 0x1.0p32);
    if (f > 0xffffffffULL) f = 0xffffffffULL;
    pkeys[v] = (f << 32) | v;
  });
  parallel_sort(pkeys);
  priority_.resize(n);
  parallel_for(0, n, [&](size_t r) {
    priority_[static_cast<VertexId>(pkeys[r] & 0xffffffffULL)] =
        uint32_t(r + 1);
  });

  // --- Build the arc table from the pre-canonicalized keys. ---
  // Keys arrive sorted ascending and unique (delegating ctor or the caller's
  // merge-as-sort); the index build is a lock-free parallel fill with no
  // hash-node allocation per edge.
  const std::vector<EdgeKey>& keys = sorted_keys;
  assert(std::is_sorted(keys.begin(), keys.end()));
  assert(std::adjacent_find(keys.begin(), keys.end()) == keys.end());
  assert(keys.empty() || keys.back() != kNoEdge);
  edges_.resize(keys.size());
  edge_index_.rebuild(keys.size());
  parallel_for(0, keys.size(), [&](size_t i) {
    edges_[i] = edge_from_key(keys[i]);
    edge_index_.insert(keys[i], i);
  });
  alive_.assign(edges_.size(), 1);
  alive_count_ = edges_.size();

  // --- Precompute the cluster fixpoint level by level. ---
  // dist'(v) in G' is min(t - d_v, min_w dist'(w) + 1); the cluster of v is
  // the candidate maximizing (Priority(cluster), arc_id) among the arcs that
  // realize dist'(v). Head-start arc ids come after the 2|E| edge arcs.
  size_t num_vp = n + t_;  // V plus path vertices p_0..p_{t-1}
  VertexId path0 = VertexId(n);
  auto path_vertex = [&](uint32_t j) { return VertexId(n + j); };
  uint32_t num_edge_arcs = uint32_t(2 * edges_.size());
  // head-start arc id for v: num_edge_arcs + (t_-1) path arcs + v
  auto headstart_arc = [&](VertexId v) {
    return num_edge_arcs + (t_ - 1) + v;
  };

  // Flat CSR adjacency (arc ids 2i / 2i+1 match the ES arc table below);
  // reused further down to bulk-build the InterCluster groups.
  CsrGraph adj = csr_build(n, edges_);

  std::vector<uint32_t> distp(n, UINT32_MAX);
  cluster_.assign(n, kNoVertex);
  {
    std::vector<uint64_t> bestkey(n, 0);
    std::vector<std::vector<VertexId>> frontier_at(t_ + 2);
    for (VertexId v = 0; v < n; ++v)
      frontier_at[t_ - du_[v]].push_back(v);  // head-start arrivals
    std::vector<VertexId> frontier;
    for (uint32_t l = 1; l <= t_; ++l) {
      // Candidates arriving via head-start arcs.
      std::vector<VertexId> newly;
      for (VertexId v : frontier_at[l]) {
        if (distp[v] == UINT32_MAX) {
          distp[v] = l;
          newly.push_back(v);
          cluster_[v] = v;
          bestkey[v] = arc_key(headstart_arc(v), v);
        } else if (distp[v] == l) {
          // Settled at l via an edge this same level: head-start competes.
          uint64_t hk = arc_key(headstart_arc(v), v);
          if (hk > bestkey[v]) {
            bestkey[v] = hk;
            cluster_[v] = v;
          }
        }
      }
      // Candidates arriving via edges from the (l-1)-frontier.
      for (VertexId w : frontier) {
        auto nbrs = adj.neighbors(w);
        auto arc_ids = adj.arcs(w);
        for (size_t j = 0; j < nbrs.size(); ++j) {
          VertexId x = nbrs[j];
          uint32_t arc_id = arc_ids[j];
          if (distp[x] == UINT32_MAX) {
            distp[x] = l;
            newly.push_back(x);
            cluster_[x] = cluster_[w];
            bestkey[x] = arc_key(arc_id, cluster_[w]);
          } else if (distp[x] == l) {
            uint64_t kk = arc_key(arc_id, cluster_[w]);
            if (kk > bestkey[x]) {
              bestkey[x] = kk;
              cluster_[x] = cluster_[w];
            }
          }
        }
      }
      frontier = std::move(newly);
    }
  }

  // --- Build the ES tree over G'. ---
  // Arc counts are known up front, so the table is sized once and filled
  // with parallel loops.
  size_t total_arcs = size_t(num_edge_arcs) + (t_ - 1) + n;
  std::vector<std::pair<VertexId, VertexId>> arcs(total_arcs);
  std::vector<uint64_t> arc_keys(total_arcs);
  parallel_for(0, edges_.size(), [&](size_t i) {
    const Edge& e = edges_[i];
    arcs[2 * i] = {e.u, e.v};  // arc 2i: key uses Cluster(u)
    arc_keys[2 * i] = arc_key(uint32_t(2 * i), cluster_[e.u]);
    arcs[2 * i + 1] = {e.v, e.u};  // arc 2i+1: key uses Cluster(v)
    arc_keys[2 * i + 1] = arc_key(uint32_t(2 * i + 1), cluster_[e.v]);
  });
  for (uint32_t j = 0; j + 1 < t_; ++j) {
    arcs[num_edge_arcs + j] = {path_vertex(j), path_vertex(j + 1)};
    arc_keys[num_edge_arcs + j] = num_edge_arcs + j;  // priority irrelevant
  }
  parallel_for(0, n, [&](size_t v) {
    uint32_t a = headstart_arc(VertexId(v));
    arcs[a] = {path_vertex(t_ - 1 - du_[v]), VertexId(v)};
    arc_keys[a] = arc_key(a, VertexId(v));
  });
  (void)path0;
  es_.init(num_vp, arcs, arc_keys, path0, t_);

  // The ES parent choice must reproduce the precomputed clusters.
#ifndef NDEBUG
  for (VertexId v = 0; v < n; ++v) {
    assert(es_.dist(v) == distp[v]);
    assert(cluster_from_parent(v) == cluster_[v]);
  }
#endif

  // --- Initial contributions. ---
  tree_contrib_.assign(n, kNoEdge);
  contrib_.reserve(2 * n);
  for (VertexId v = 0; v < n; ++v) refresh_tree_contrib(v);
  groups_.assign(cfg_.intercluster ? n : 0, {});
  if (cfg_.intercluster) {
    // Bulk build: group each vertex's CSR slice by neighbor cluster, then
    // fill every group with its exact size known — no incremental rehashing
    // and no per-member node allocation.
    std::vector<std::pair<VertexId, VertexId>> scratch;  // (cluster, other)
    for (VertexId x = 0; x < n; ++x) {
      auto nbrs = adj.neighbors(x);
      if (nbrs.empty()) continue;
      scratch.clear();
      for (VertexId o : nbrs) scratch.push_back({cluster_[o], o});
      std::sort(scratch.begin(), scratch.end());
      size_t ngroups = 0;
      for (size_t j = 0; j < scratch.size(); ++j)
        if (j == 0 || scratch[j].first != scratch[j - 1].first) ++ngroups;
      groups_[x].reserve(ngroups);
      size_t j = 0;
      while (j < scratch.size()) {
        VertexId c = scratch[j].first;
        size_t k = j;
        while (k < scratch.size() && scratch[k].first == c) ++k;
        Group& g = groups_[x][c];
        g.members.reserve(k - j);
        for (size_t idx = j; idx < k; ++idx)
          g.members.push_back(scratch[idx].second);
        g.rep = scratch[j].second;
        if (c != cluster_[x]) add_contrib(edge_key(x, g.rep));
        j = k;
      }
    }
  }
  // Init contributions are not a "diff".
  batch_delta_.reset();

  dirty_epoch_.assign(n, 0);
  distch_epoch_.assign(n, 0);
}

VertexId DecrementalClusterSpanner::cluster_from_parent(VertexId v) const {
  int32_t pa = es_.parent_arc(v);
  assert(pa != ESTree::kNoArc && "original vertices always stay in the tree");
  VertexId src = es_.arc(pa).src;
  return src >= n_ ? v : cluster_[src];
}

void DecrementalClusterSpanner::add_contrib(EdgeKey e) {
  if (++contrib_[e] == 1) batch_delta_.add(e);
}

void DecrementalClusterSpanner::remove_contrib(EdgeKey e) {
  uint32_t* c = contrib_.find(e);
  assert(c != nullptr);
  if (--*c == 0) {
    contrib_.erase(e);
    batch_delta_.remove(e);
  }
}

void DecrementalClusterSpanner::refresh_tree_contrib(VertexId v) {
  EdgeKey cur = kNoEdge;
  int32_t pa = es_.parent_arc(v);
  if (pa != ESTree::kNoArc) {
    const auto& arc = es_.arc(pa);
    if (arc.src < n_) cur = edge_key(arc.src, v);
  }
  if (cur == tree_contrib_[v]) return;
  if (tree_contrib_[v] != kNoEdge) remove_contrib(tree_contrib_[v]);
  if (cur != kNoEdge) add_contrib(cur);
  tree_contrib_[v] = cur;
}

void DecrementalClusterSpanner::add_membership(VertexId x, VertexId c,
                                               VertexId other) {
  Group* g = groups_[x].find(c);
  if (g == nullptr) {
    Group& ng = groups_[x][c];
    ng.members.push_back(other);
    ng.rep = other;
    if (c != cluster_[x]) add_contrib(edge_key(x, other));
  } else {
    assert(!g->contains(other));
    g->members.push_back(other);
  }
}

void DecrementalClusterSpanner::remove_membership(VertexId x, VertexId c,
                                                  VertexId other) {
  Group* g = groups_[x].find(c);
  assert(g != nullptr);
  if (g->erase_member(other)) {
    VertexId rep = g->rep;
    if (c != cluster_[x]) remove_contrib(edge_key(x, rep));
    groups_[x].erase(c);
  } else if (g->rep == other) {
    VertexId nr = g->members.front();
    if (c != cluster_[x]) {
      remove_contrib(edge_key(x, other));
      add_contrib(edge_key(x, nr));
    }
    g->rep = nr;
  }
}

void DecrementalClusterSpanner::flag_dirty(VertexId v, Buckets& buckets) {
  if (dirty_epoch_[v] == epoch_) return;
  dirty_epoch_[v] = epoch_;
  buckets[es_.dist(v)].push_back(v);
}

void DecrementalClusterSpanner::apply_cluster_change(VertexId v, VertexId newc,
                                                     Buckets& buckets) {
  VertexId oldc = cluster_[v];
  assert(newc != oldc);
  ++cluster_change_count_;

  if (cfg_.intercluster) {
    // Eligibility flips for v's own groups: (v, oldc) becomes eligible,
    // (v, newc) becomes ineligible (still using cluster_[v] == oldc).
    auto& m = groups_[v];
    Group* go = m.find(oldc);
    if (go != nullptr) add_contrib(edge_key(v, go->rep));
    Group* gn = m.find(newc);
    if (gn != nullptr) remove_contrib(edge_key(v, gn->rep));
  }
  cluster_[v] = newc;

  // Re-key v's out-arcs: the In(w) priority of (v -> w) is
  // Priority(Cluster(v)). Destinations at the next level are flagged for
  // re-examination; membership of incident edges moves between groups.
  es_.for_each_out_arc(v, [&](uint32_t a, const ESTree::Arc& arc) {
    VertexId w = arc.dst;
    if (w >= n_) return;  // never: original vertices only point into V
    es_.update_arc_priority(a, arc_key(a, newc));
    if (es_.dist(w) == es_.dist(v) + 1) flag_dirty(w, buckets);
    if (cfg_.intercluster) {
      remove_membership(w, oldc, v);
      add_membership(w, newc, v);
    }
  });
}

SpannerDiff DecrementalClusterSpanner::delete_edges(std::span<const Edge> batch) {
  ++epoch_;
  assert(batch_delta_.empty() && "previous batch drained its delta");

  // Everything batch-scoped below (doomed arc ids, dirty buckets) comes
  // from the calling thread's bump arena and is reclaimed wholesale when
  // this scope closes — steady state does zero system allocations per
  // batch (DESIGN.md §12.5).
  ArenaScope batch_scratch;

  // --- Step 1: kill edges; detach their InterCluster memberships using the
  // pre-batch cluster values. ---
  ArenaVector<uint32_t> arc_ids;
  for (const Edge& e : batch) {
    auto idx = edge_index_.find(e.key());
    if (!idx || !alive_[*idx]) continue;
    uint32_t i = uint32_t(*idx);
    alive_[i] = 0;
    --alive_count_;
    arc_ids.push_back(2 * i);
    arc_ids.push_back(2 * i + 1);
    if (cfg_.intercluster) {
      remove_membership(edges_[i].u, cluster_[edges_[i].v], edges_[i].v);
      remove_membership(edges_[i].v, cluster_[edges_[i].u], edges_[i].u);
    }
  }

  // --- Step 2: distance phases (Algorithm 1). ---
  auto rep = es_.delete_arcs(arc_ids);
  last_phases_ = rep.phases;

  // --- Step 3: cluster cascade in level order. ---
  // The ES repair report is applied batch-style: distance stamps are a
  // parallel loop, the dirty buckets are then seeded serially so their fill
  // order (and thus every downstream tie-break) is thread-count independent.
  parallel_for(
      0, rep.dist_changed.size(),
      [&](size_t i) {
        VertexId v = rep.dist_changed[i];
        if (v < n_) distch_epoch_[v] = epoch_;
      });
  Buckets buckets(t_ + 2);
  for (auto& [v, old_arc] : rep.parent_changed)
    if (v < n_) flag_dirty(v, buckets);

  // Each level runs in two phases (DESIGN.md §6). Phase A re-selects
  // parents in parallel: rescan touches only v-local ES state (scan
  // pointer, parent arc) and reads distances/keys that are final for level
  // d-1, so bucket members are independent. Arc re-keys issued by same-level
  // peers in the serial version never affect a level-d parent choice (their
  // sources sit at level d, not d-1), which is what makes the phase split
  // result-identical to the old interleaved loop. Phase B applies
  // contribution and cluster changes serially in bucket order, so the diff
  // and every group-representative election stay deterministic.
  for (uint32_t d = 1; d <= t_; ++d) {
    ArenaVector<VertexId>& bucket = buckets[d];
    // Cluster changes at level d only flag level d+1 (dist(w) == d+1), so
    // `bucket` is complete before the level starts.
    parallel_for(
        0, bucket.size(),
        [&](size_t idx) {
          VertexId v = bucket[idx];
          assert(es_.dist(v) == d);
          if (distch_epoch_[v] == epoch_)
            es_.rescan_from_head(v);
          else
            es_.rescan(v);
        },
        /*grain=*/1);
    for (size_t idx = 0; idx < bucket.size(); ++idx) {
      VertexId v = bucket[idx];
      refresh_tree_contrib(v);
      VertexId newc = cluster_from_parent(v);
      if (newc != cluster_[v]) apply_cluster_change(v, newc, buckets);
    }
  }

  // --- Step 4: compile the net diff by draining the touched keys. ---
  return batch_delta_.drain();
}

std::vector<Edge> DecrementalClusterSpanner::spanner_edges() const {
  std::vector<Edge> out;
  out.reserve(contrib_.size());
  contrib_.for_each(
      [&](EdgeKey ek, const uint32_t&) { out.push_back(edge_from_key(ek)); });
  return out;
}

bool DecrementalClusterSpanner::check_invariants() const {
  if (!es_.check_invariants()) return false;

  // Recompute the cluster fixpoint from the ES distances and compare.
  std::vector<VertexId> by_dist(n_);
  for (VertexId v = 0; v < n_; ++v) by_dist[v] = v;
  std::sort(by_dist.begin(), by_dist.end(), [&](VertexId a, VertexId b) {
    return es_.dist(a) < es_.dist(b);
  });
  std::vector<VertexId> refc(n_, kNoVertex);
  for (VertexId v : by_dist) {
    // Best candidate among valid in-arcs from the previous level.
    uint64_t best = 0;
    VertexId bc = kNoVertex;
    // Edge arcs into v.
    for (uint32_t i = 0; i < edges_.size(); ++i) {
      if (!alive_[i]) continue;
      const Edge& e = edges_[i];
      VertexId src;
      uint32_t a;
      if (e.u == v) {
        src = e.v;
        a = 2 * i + 1;
      } else if (e.v == v) {
        src = e.u;
        a = 2 * i;
      } else {
        continue;
      }
      if (es_.dist(src) + 1 != es_.dist(v)) continue;
      uint64_t kk =
          (static_cast<uint64_t>(priority_[refc[src]]) << 32) | a;
      if (kk > best) {
        best = kk;
        bc = refc[src];
      }
    }
    // Head-start arc.
    if (t_ - du_[v] == es_.dist(v)) {
      uint32_t a = uint32_t(2 * edges_.size()) + (t_ - 1) + v;
      uint64_t kk = (static_cast<uint64_t>(priority_[v]) << 32) | a;
      if (kk > best) {
        best = kk;
        bc = v;
      }
    }
    if (bc == kNoVertex) return false;  // every vertex must be clustered
    refc[v] = bc;
    if (refc[v] != cluster_[v]) return false;
  }

  // Stored arc keys must match the cluster of their source.
  for (uint32_t i = 0; i < edges_.size(); ++i) {
    if (!alive_[i]) continue;
    const Edge& e = edges_[i];
    if (es_.arc(2 * i).key != arc_key(2 * i, cluster_[e.u])) return false;
    if (es_.arc(2 * i + 1).key != arc_key(2 * i + 1, cluster_[e.v]))
      return false;
  }

  // Rebuild expected contributions.
  std::unordered_map<EdgeKey, uint32_t> expect;
  for (VertexId v = 0; v < n_; ++v) {
    int32_t pa = es_.parent_arc(v);
    if (pa == ESTree::kNoArc) return false;
    const auto& arc = es_.arc(pa);
    if (arc.src < n_) {
      if (tree_contrib_[v] != edge_key(arc.src, v)) return false;
      ++expect[edge_key(arc.src, v)];
    } else if (tree_contrib_[v] != kNoEdge) {
      return false;
    }
  }
  if (cfg_.intercluster) {
    // Rebuild memberships.
    std::vector<std::unordered_map<VertexId, std::unordered_set<VertexId>>>
        ref_groups(n_);
    for (uint32_t i = 0; i < edges_.size(); ++i) {
      if (!alive_[i]) continue;
      const Edge& e = edges_[i];
      ref_groups[e.u][cluster_[e.v]].insert(e.v);
      ref_groups[e.v][cluster_[e.u]].insert(e.u);
    }
    for (VertexId v = 0; v < n_; ++v) {
      if (ref_groups[v].size() != groups_[v].size()) return false;
      bool ok = true;
      groups_[v].for_each([&](VertexId c, const Group& g) {
        auto it = ref_groups[v].find(c);
        if (it == ref_groups[v].end() ||
            it->second.size() != g.members.size()) {
          ok = false;
          return;
        }
        for (VertexId m : it->second)
          if (!g.contains(m)) ok = false;
        if (!g.contains(g.rep)) ok = false;
        if (c != cluster_[v]) ++expect[edge_key(v, g.rep)];
      });
      if (!ok) return false;
    }
  }
  if (expect.size() != contrib_.size()) return false;
  for (auto& [ek, cnt] : expect) {
    const uint32_t* c = contrib_.find(ek);
    if (c == nullptr || *c != cnt) return false;
  }
  return true;
}

}  // namespace parspan
