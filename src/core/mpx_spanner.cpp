#include "core/mpx_spanner.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace parspan {

MonotoneSpanner::MonotoneSpanner(size_t n, const std::vector<Edge>& edges,
                                 const MonotoneSpannerConfig& cfg)
    : n_(n) {
  uint32_t count = cfg.instances;
  if (count == 0)
    count = 3 * uint32_t(std::ceil(std::log2(double(std::max<size_t>(n, 2))))) +
            2;
  // Resample cap 10 ln(n)/beta keeps the path length t = O(log n) and is
  // exceeded with probability <= n^{-9} (paper §6.2).
  double cap =
      10.0 * std::log(double(std::max<size_t>(n, 2))) / cfg.beta + 1.0;
  inst_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ClusterSpannerConfig c;
    c.k = 1;  // unused: beta and cap are explicit
    c.beta = cfg.beta;
    c.delta_cap = cap;
    c.intercluster = false;
    c.seed = hash_combine(cfg.seed, i);
    inst_.push_back(std::make_unique<DecrementalClusterSpanner>(n, edges, c));
    stretch_bound_ =
        std::max(stretch_bound_, 2 * (inst_.back()->t() - 1) + 1);
    for (const Edge& e : inst_.back()->spanner_edges()) ++contrib_[e.key()];
  }
}

size_t MonotoneSpanner::alive_edges() const {
  return inst_.empty() ? 0 : inst_[0]->alive_edges();
}

std::vector<Edge> MonotoneSpanner::spanner_edges() const {
  std::vector<Edge> out;
  out.reserve(contrib_.size());
  for (auto& [ek, c] : contrib_) out.push_back(edge_from_key(ek));
  return out;
}

SpannerDiff MonotoneSpanner::delete_edges(const std::vector<Edge>& batch) {
  std::unordered_map<EdgeKey, int32_t> delta;
  for (auto& inst : inst_) {
    SpannerDiff d = inst->delete_edges(batch);
    cumulative_recourse_ += d.inserted.size() + d.removed.size();
    for (const Edge& e : d.inserted)
      if (++contrib_[e.key()] == 1) ++delta[e.key()];
    for (const Edge& e : d.removed) {
      auto it = contrib_.find(e.key());
      assert(it != contrib_.end());
      if (--it->second == 0) {
        contrib_.erase(it);
        --delta[e.key()];
      }
    }
  }
  SpannerDiff diff;
  for (auto& [ek, d] : delta) {
    assert(d >= -1 && d <= 1);
    if (d > 0) diff.inserted.push_back(edge_from_key(ek));
    if (d < 0) diff.removed.push_back(edge_from_key(ek));
  }
  return diff;
}

bool MonotoneSpanner::check_invariants() const {
  std::unordered_map<EdgeKey, uint32_t> expect;
  for (auto& inst : inst_) {
    if (!inst->check_invariants()) return false;
    for (const Edge& e : inst->spanner_edges()) ++expect[e.key()];
  }
  if (expect.size() != contrib_.size()) return false;
  for (auto& [ek, c] : expect) {
    auto it = contrib_.find(ek);
    if (it == contrib_.end() || it->second != c) return false;
  }
  return true;
}

}  // namespace parspan
