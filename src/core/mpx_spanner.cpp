#include "core/mpx_spanner.hpp"

#include <cassert>
#include <cmath>

#include "parallel/parallel_for.hpp"
#include "util/rng.hpp"

namespace parspan {

MonotoneSpanner::MonotoneSpanner(size_t n, const std::vector<Edge>& edges,
                                 const MonotoneSpannerConfig& cfg)
    : n_(n) {
  uint32_t count = cfg.instances;
  if (count == 0)
    count = 3 * uint32_t(std::ceil(std::log2(double(std::max<size_t>(n, 2))))) +
            2;
  // Resample cap 10 ln(n)/beta keeps the path length t = O(log n) and is
  // exceeded with probability <= n^{-9} (paper §6.2).
  double cap =
      10.0 * std::log(double(std::max<size_t>(n, 2))) / cfg.beta + 1.0;
  // Per-instance seeds are fixed up front, so each build job is a pure
  // function of (seed, edges) and the fan-out below is schedule-independent.
  inst_.resize(count);
  parallel_for(
      0, count,
      [&](size_t i) {
        ClusterSpannerConfig c;
        c.k = 1;  // unused: beta and cap are explicit
        c.beta = cfg.beta;
        c.delta_cap = cap;
        c.intercluster = false;
        c.seed = hash_combine(cfg.seed, i);
        inst_[i] = std::make_unique<DecrementalClusterSpanner>(n, edges, c);
      },
      1);
  // Serial merge in instance order: contrib_ refcounts and the stretch
  // witness are independent of the build schedule.
  for (uint32_t i = 0; i < count; ++i) {
    stretch_bound_ = std::max(stretch_bound_, 2 * (inst_[i]->t() - 1));
    for (const Edge& e : inst_[i]->spanner_edges()) ++contrib_[e.key()];
  }
}

size_t MonotoneSpanner::alive_edges() const {
  return inst_.empty() ? 0 : inst_[0]->alive_edges();
}

std::vector<Edge> MonotoneSpanner::spanner_edges() const {
  std::vector<EdgeKey> keys = contrib_.sorted_keys();
  std::vector<Edge> out;
  out.reserve(keys.size());
  for (EdgeKey ek : keys) out.push_back(edge_from_key(ek));
  return out;
}

SpannerDiff MonotoneSpanner::delete_edges(const std::vector<Edge>& batch) {
  // Phase 1 (parallel): the O(log n) instances are fully independent
  // (DESIGN.md §7.1) — each applies the batch and reports its own net diff.
  // Instance diffs are themselves deterministic (Lemma 3.3's contract).
  std::vector<SpannerDiff> diffs(inst_.size());
  parallel_for(
      0, inst_.size(),
      [&](size_t i) { diffs[i] = inst_[i]->delete_edges(batch); }, 1);
  // Phase 2 (serial, instance order): merge refcounts into the flat
  // touched-key accumulator. The drain sorts both sides by canonical key.
  assert(delta_.empty());
  for (const SpannerDiff& d : diffs) {
    cumulative_recourse_ += d.inserted.size() + d.removed.size();
    for (const Edge& e : d.inserted)
      if (++contrib_[e.key()] == 1) delta_.add(e.key());
    for (const Edge& e : d.removed) {
      uint32_t* c = contrib_.find(e.key());
      assert(c != nullptr);
      if (--*c == 0) {
        contrib_.erase(e.key());
        delta_.remove(e.key());
      }
    }
  }
  return delta_.drain();
}

bool MonotoneSpanner::check_invariants() const {
  FlatHashMap<EdgeKey, uint32_t> expect;
  for (auto& inst : inst_) {
    if (!inst->check_invariants()) return false;
    for (const Edge& e : inst->spanner_edges()) ++expect[e.key()];
  }
  if (expect.size() != contrib_.size()) return false;
  bool ok = true;
  expect.for_each([&](EdgeKey ek, uint32_t c) {
    const uint32_t* it = contrib_.find(ek);
    if (it == nullptr || *it != c) ok = false;
  });
  return ok;
}

}  // namespace parspan
