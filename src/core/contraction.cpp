#include "core/contraction.hpp"

#include <algorithm>
#include <cassert>

#include "parallel/primitives.hpp"
#include "util/rng.hpp"

namespace parspan {

ContractionLayer::ContractionLayer(size_t n, const std::vector<Edge>& edges,
                                   double x, uint64_t seed)
    : n_(n), x_(std::max(2.0, x)), seed_(seed) {
  // Fixed sample D: each vertex with probability 1/x; at least one vertex
  // is forced into D so the contracted graph is never empty (the paper's
  // "V' is not empty w.h.p."; the forcing only matters for tiny n).
  next_id_.assign(n, kNoVertex);
  Rng rng(hash_combine(seed, 0xd));
  for (VertexId v = 0; v < n; ++v) {
    if (rng.next_bool(1.0 / x_)) {
      next_id_[v] = VertexId(prev_id_.size());
      prev_id_.push_back(v);
    }
  }
  if (prev_id_.empty() && n > 0) {
    VertexId v = VertexId(rng.next_below(n));
    next_id_[v] = 0;
    prev_id_.push_back(v);
  }
  next_n_ = prev_id_.size();

  adj_.assign(n, {});
  head_.assign(n, kNoVertex);
  head_edge_.assign(n, kNoEdge);

  // Insert edges, then compute heads, then attach contributions: init is
  // just an update() on an empty structure, but done in bulk.
  edge_index_.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.u == e.v || e.u >= n || e.v >= n) continue;
    if (edge_index_.contains(e.key())) continue;
    edge_index_[e.key()] = uint32_t(edges_.size());
    EdgeRec rec;
    rec.e = e;
    rec.alive = true;
    rec.key_u = fresh_entry_key(e.v);
    rec.key_v = fresh_entry_key(e.u);
    adj_[e.u].insert(rec.key_u, {e.v, uint32_t(edges_.size())});
    adj_[e.v].insert(rec.key_v, {e.u, uint32_t(edges_.size())});
    edges_.push_back(rec);
    ++alive_count_;
  }
  for (VertexId v = 0; v < n; ++v) set_head(v, compute_head(v));
  for (uint32_t eid = 0; eid < edges_.size(); ++eid) attach(eid);
  // head-edge contributions.
  for (VertexId v = 0; v < n; ++v) {
    if (is_sampled(v) || head_[v] == kNoVertex) continue;
    head_edge_[v] = edge_key(v, head_[v]);
    h_add(head_edge_[v]);
  }
  h_delta_.reset();
  touched_pairs_.clear();
}

uint64_t ContractionLayer::fresh_entry_key(VertexId other) {
  // Composite (unmark, rand) key: unmarked (other ∉ D) entries sort after
  // all marked ones; the low bits keep keys distinct.
  uint64_t unmark = is_sampled(other) ? 0 : 1;
  uint64_t rnd = hash_combine(seed_, ++entry_counter_) >> 2;
  return (unmark << 62) | rnd;
}

VertexId ContractionLayer::compute_head(VertexId v) {
  if (is_sampled(v)) return v;
  auto& t = adj_[v];
  if (t.empty()) return kNoVertex;
  // Minimum (unmark, rand) entry = last in descending order.
  auto [key, entry] = t.select_desc(t.size());
  if (key >> 62) return kNoVertex;  // min entry unmarked: no D neighbor
  return entry->other;
}

void ContractionLayer::set_head(VertexId v, VertexId h) { head_[v] = h; }

EdgeKey ContractionLayer::pair_key_of(uint32_t eid) const {
  const EdgeRec& r = edges_[eid];
  VertexId hu = head_[r.e.u], hv = head_[r.e.v];
  if (hu == kNoVertex || hv == kNoVertex || hu == hv) return kNoEdge;
  return edge_key(next_id_[hu], next_id_[hv]);
}

void ContractionLayer::note_pair_touched(EdgeKey pk) {
  if (touched_pairs_.contains(pk)) return;
  Bucket* b = buckets_.find(pk);
  touched_pairs_[pk] =
      PairSnapshot{b != nullptr, b != nullptr ? b->rep : uint32_t(0)};
}

void ContractionLayer::bucket_add(uint32_t eid) {
  EdgeKey pk = pair_key_of(eid);
  if (pk == kNoEdge) return;
  note_pair_touched(pk);
  Bucket& b = buckets_[pk];
  if (b.members.empty()) b.rep = eid;
  b.members.push_back(eid);
}

void ContractionLayer::bucket_remove(uint32_t eid, EdgeKey pk) {
  if (pk == kNoEdge) return;
  note_pair_touched(pk);
  Bucket* b = buckets_.find(pk);
  assert(b != nullptr);
  if (b->erase_member(eid))
    buckets_.erase(pk);
  else if (b->rep == eid)
    b->rep = b->members[0];
}

void ContractionLayer::h_add(EdgeKey ek) {
  if (++h_contrib_[ek] == 1) h_delta_.add(ek);
}

void ContractionLayer::h_remove(EdgeKey ek) {
  uint32_t* it = h_contrib_.find(ek);
  assert(it != nullptr);
  if (--*it == 0) {
    h_contrib_.erase(ek);
    h_delta_.remove(ek);
  }
}

bool ContractionLayer::edge_in_bot(uint32_t eid) const {
  const EdgeRec& r = edges_[eid];
  return head_[r.e.u] == kNoVertex || head_[r.e.v] == kNoVertex;
}

void ContractionLayer::attach(uint32_t eid) {
  if (edge_in_bot(eid)) h_add(edges_[eid].e.key());
  bucket_add(eid);
}

void ContractionLayer::detach(uint32_t eid) {
  if (edge_in_bot(eid)) h_remove(edges_[eid].e.key());
  bucket_remove(eid, pair_key_of(eid));
}

void ContractionLayer::recheck_head(VertexId v) {
  if (is_sampled(v)) return;
  VertexId h = compute_head(v);
  if (h == head_[v]) {
    // Head unchanged, but the head-edge contribution may have been dropped
    // if the head edge was deleted and re-inserted within this batch.
    EdgeKey want = h == kNoVertex ? kNoEdge : edge_key(v, h);
    if (head_edge_[v] != want) {
      if (head_edge_[v] != kNoEdge) h_remove(head_edge_[v]);
      head_edge_[v] = want;
      if (want != kNoEdge) h_add(want);
    }
    return;
  }
  // Move every incident edge: bot membership and bucket key both depend on
  // Head(v). Remove under the old head, flip, re-add under the new head.
  std::vector<uint32_t> incident;
  adj_[v].for_each(
      [&](uint64_t, const AdjEntry& a) { incident.push_back(a.edge_id); });
  for (uint32_t eid : incident) detach(eid);
  if (head_edge_[v] != kNoEdge) {
    h_remove(head_edge_[v]);
    head_edge_[v] = kNoEdge;
  }
  set_head(v, h);
  for (uint32_t eid : incident) attach(eid);
  if (h != kNoVertex) {
    head_edge_[v] = edge_key(v, h);
    h_add(head_edge_[v]);
  }
}

ContractionLayer::UpdateResult ContractionLayer::update(
    const std::vector<Edge>& ins, const std::vector<Edge>& del) {
  assert(h_delta_.empty());
  touched_pairs_.clear();
  std::vector<VertexId> recheck;
  recheck.reserve(2 * (ins.size() + del.size()));

  // --- Deletions. ---
  for (const Edge& e : del) {
    const uint32_t* it = edge_index_.find(e.key());
    if (it == nullptr || !edges_[*it].alive) continue;
    uint32_t eid = *it;
    EdgeRec& r = edges_[eid];
    detach(eid);
    adj_[r.e.u].erase(r.key_u);
    adj_[r.e.v].erase(r.key_v);
    r.alive = false;
    --alive_count_;
    // The deleted edge may carry a head-edge contribution of an endpoint;
    // that endpoint's head necessarily changes (its min entry vanished), so
    // recheck_head will refresh it — but remove the stale contribution
    // first in case the new head edge coincides.
    for (VertexId w : {r.e.u, r.e.v}) {
      if (head_edge_[w] == r.e.key()) {
        h_remove(head_edge_[w]);
        head_edge_[w] = kNoEdge;
      }
      recheck.push_back(w);
    }
  }
  // --- Insertions. ---
  for (const Edge& e : ins) {
    if (e.u == e.v || e.u >= n_ || e.v >= n_) continue;
    const uint32_t* it = edge_index_.find(e.key());
    uint32_t eid;
    if (it != nullptr) {
      if (edges_[*it].alive) continue;  // already present
      eid = *it;  // resurrect dead record with fresh entries
    } else {
      eid = uint32_t(edges_.size());
      edge_index_[e.key()] = eid;
      edges_.push_back(EdgeRec{});
      edges_[eid].e = e;
    }
    EdgeRec& r = edges_[eid];
    r.alive = true;
    ++alive_count_;
    r.key_u = fresh_entry_key(e.v);
    r.key_v = fresh_entry_key(e.u);
    adj_[e.u].insert(r.key_u, {e.v, eid});
    adj_[e.v].insert(r.key_v, {e.u, eid});
    attach(eid);
    recheck.push_back(e.u);
    recheck.push_back(e.v);
  }
  // --- Head rechecks (the D4/I4/I5 procedures), in ascending vertex order
  // so every bucket-representative election is deterministic. ---
  sort_unique(recheck);
  for (VertexId v : recheck) recheck_head(v);

  // --- Compile diffs, key-sorted (DESIGN.md §7.4). ---
  UpdateResult res;
  SpannerDiff hd = h_delta_.drain();
  res.h_ins = std::move(hd.inserted);
  res.h_del = std::move(hd.removed);
  for (EdgeKey pk : touched_pairs_.sorted_keys()) {
    const PairSnapshot& snap = *touched_pairs_.find(pk);
    Bucket* b = buckets_.find(pk);
    bool exists = b != nullptr;
    if (snap.existed && !exists) res.next_del.push_back(edge_from_key(pk));
    if (!snap.existed && exists) res.next_ins.push_back(edge_from_key(pk));
    if (snap.existed && exists && snap.old_rep != b->rep)
      res.rep_changed.push_back(edge_from_key(pk));
  }
  return res;
}

std::vector<Edge> ContractionLayer::next_edges() const {
  std::vector<Edge> out;
  out.reserve(buckets_.size());
  for (EdgeKey pk : buckets_.sorted_keys()) out.push_back(edge_from_key(pk));
  return out;
}

Edge ContractionLayer::rep(Edge pair) const {
  const Bucket* b = buckets_.find(pair.key());
  assert(b != nullptr);
  return edges_[b->rep].e;
}

std::vector<Edge> ContractionLayer::h_edges() const {
  std::vector<Edge> out;
  out.reserve(h_contrib_.size());
  for (EdgeKey ek : h_contrib_.sorted_keys()) out.push_back(edge_from_key(ek));
  return out;
}

bool ContractionLayer::check_invariants() const {
  // Recompute heads.
  for (VertexId v = 0; v < n_; ++v) {
    VertexId h =
        const_cast<ContractionLayer*>(this)->compute_head(v);
    if (is_sampled(v)) h = v;
    if (h != head_[v]) return false;
  }
  // Recompute buckets and H from scratch.
  FlatHashMap<EdgeKey, std::vector<uint32_t>> ref_buckets;
  FlatHashMap<EdgeKey, uint32_t> ref_h;
  for (uint32_t eid = 0; eid < edges_.size(); ++eid) {
    if (!edges_[eid].alive) continue;
    EdgeKey pk = pair_key_of(eid);
    if (pk != kNoEdge) ref_buckets[pk].push_back(eid);
    if (edge_in_bot(eid)) ++ref_h[edges_[eid].e.key()];
  }
  for (VertexId v = 0; v < n_; ++v) {
    if (is_sampled(v) || head_[v] == kNoVertex) {
      if (head_edge_[v] != kNoEdge) return false;
      continue;
    }
    if (head_edge_[v] != edge_key(v, head_[v])) return false;
    ++ref_h[head_edge_[v]];
  }
  if (ref_buckets.size() != buckets_.size()) return false;
  bool ok = true;
  ref_buckets.for_each([&](EdgeKey pk, std::vector<uint32_t>& members) {
    const Bucket* b = buckets_.find(pk);
    if (b == nullptr) {
      ok = false;
      return;
    }
    std::vector<uint32_t> have = b->members;
    std::sort(members.begin(), members.end());
    std::sort(have.begin(), have.end());
    if (have != members) ok = false;
    if (std::find(have.begin(), have.end(), b->rep) == have.end())
      ok = false;
  });
  if (!ok) return false;
  if (ref_h.size() != h_contrib_.size()) return false;
  ref_h.for_each([&](EdgeKey ek, uint32_t c) {
    const uint32_t* it = h_contrib_.find(ek);
    if (it == nullptr || *it != c) ok = false;
  });
  return ok;
}

}  // namespace parspan
