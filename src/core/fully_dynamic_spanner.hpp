// FullyDynamicSpanner: the fully-dynamic (2k-1)-spanner of Theorem 1.1,
// obtained from the decremental structure of Lemma 3.3 via the
// Bentley-Saxe-style reduction of [BS80, BS08] (paper §3.4).
//
// Edges are kept in a partition E = E_0 ∪ E_1 ∪ ... ∪ E_b with
//
//   Invariant B1:  |E_i| <= 2^{i + l0},   2^{l0} >= n^{1+1/k}.
//
// E_0 is maintained trivially (all of its edges are in the spanner; its
// capacity matches the target spanner size). Every other E_i runs its own
// DecrementalClusterSpanner. By Observation 3.7 (spanners are decomposable)
// the union of the per-partition spanners is a (2k-1)-spanner of G.
//
// Batch insertion U splits into U_r ∪ U_0 ∪ ... ∪ U_b with |U_i| = 2^{l0+i}
// or empty (determined by the binary representation of |U|); each nonempty
// U_i is merged with E_i..E_{j-1} into the first empty slot E_j (j >= i),
// rebuilding one decremental instance there. Deletions are routed to their
// partition through the Index hash table.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/cluster_spanner.hpp"
#include "util/types.hpp"

namespace parspan {

struct FullyDynamicSpannerConfig {
  /// Stretch parameter: the spanner has stretch 2k-1.
  uint32_t k = 4;
  /// Base seed; each rebuilt decremental instance derives a fresh stream.
  uint64_t seed = 1;
};

class FullyDynamicSpanner {
 public:
  FullyDynamicSpanner(size_t n, const std::vector<Edge>& initial,
                      const FullyDynamicSpannerConfig& cfg);

  size_t num_vertices() const { return n_; }
  size_t num_edges() const { return index_.size(); }
  size_t spanner_size() const;
  std::vector<Edge> spanner_edges() const;
  bool has_edge(Edge e) const { return index_.count(e.key()) > 0; }

  /// Applies one batch of updates (deletions first, then insertions;
  /// duplicates and no-ops are filtered). Returns the net spanner diff.
  SpannerDiff update(const std::vector<Edge>& insertions,
                     const std::vector<Edge>& deletions);

  /// Convenience wrappers.
  SpannerDiff insert_edges(const std::vector<Edge>& ins) {
    return update(ins, {});
  }
  SpannerDiff delete_edges(const std::vector<Edge>& del) {
    return update({}, del);
  }

  /// Number of partitions currently allocated.
  size_t num_partitions() const { return parts_.size(); }

  /// Number of decremental-instance rebuilds so far (amortization witness).
  uint64_t rebuilds() const { return rebuilds_; }

  /// Oracle: Invariant B1, Index consistency, sub-structure invariants,
  /// and spanner-union consistency. Expensive; for tests.
  bool check_invariants() const;

 private:
  struct Partition {
    std::unordered_set<EdgeKey> edges;  // alive edges assigned here
    std::unique_ptr<DecrementalClusterSpanner> spanner;  // null for E_0
  };

  /// Capacity 2^{i+l0} of partition i.
  size_t capacity(size_t i) const { return size_t{1} << (i + l0_); }

  void ensure_parts(size_t j);

  /// Rebuilds partition j from the union of `fresh` edges and partitions
  /// lo..j-1 (which are emptied). Accounts all spanner membership changes
  /// into delta_.
  void rebuild_into(size_t j, size_t lo, const std::vector<Edge>& fresh);

  void delta_add(EdgeKey e) { ++delta_[e]; }
  void delta_remove(EdgeKey e) { --delta_[e]; }
  void absorb_diff(const SpannerDiff& d) {
    for (const Edge& e : d.inserted) delta_add(e.key());
    for (const Edge& e : d.removed) delta_remove(e.key());
  }

  size_t n_ = 0;
  FullyDynamicSpannerConfig cfg_;
  uint32_t l0_ = 0;
  std::vector<Partition> parts_;
  std::unordered_map<EdgeKey, uint32_t> index_;  // alive edge -> partition
  std::unordered_map<EdgeKey, int32_t> delta_;   // per-batch diff
  uint64_t rebuilds_ = 0;
  uint64_t instance_counter_ = 0;  // fresh seeds for rebuilt instances
};

}  // namespace parspan
