// FullyDynamicSpanner: the fully-dynamic (2k-1)-spanner of Theorem 1.1,
// obtained from the decremental structure of Lemma 3.3 via the
// Bentley-Saxe-style reduction of [BS80, BS08] (paper §3.4).
//
// Edges are kept in a partition E = E_0 ∪ E_1 ∪ ... ∪ E_b with
//
//   Invariant B1:  |E_i| <= 2^{i + l0},   2^{l0} >= n^{1+1/k}.
//
// E_0 is maintained trivially (all of its edges are in the spanner; its
// capacity matches the target spanner size). Every other E_i runs its own
// DecrementalClusterSpanner. By Observation 3.7 (spanners are decomposable)
// the union of the per-partition spanners is a (2k-1)-spanner of G.
//
// Batch insertion U splits into U_r ∪ U_0 ∪ ... ∪ U_b with |U_i| = 2^{l0+i}
// or empty (determined by the binary representation of |U|); each nonempty
// U_i is merged with E_i..E_{j-1} into the first empty slot E_j (j >= i).
// The merge is one parallel sort over the union (DESIGN.md §6), and the
// decremental instances of the rebuilt slots — disjoint by construction —
// are built concurrently. Deletions are routed to their partition through
// the flat open-addressing Index table (DESIGN.md §1).
//
// Batch semantics: update() applies deletions first, then insertions;
// duplicates and no-ops are filtered. The returned SpannerDiff is the NET
// spanner change of the whole batch, both sides sorted by canonical edge
// key, and is a deterministic function of (n, initial edges, config, batch
// history) — independent of the worker-thread count (DESIGN.md §6).
//
// Thread safety: update() parallelizes internally; external calls must be
// serialized (one batch at a time, no concurrent reads during a batch).
// Distinct FullyDynamicSpanner instances are fully independent.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "container/flat_map.hpp"
#include "core/cluster_spanner.hpp"
#include "util/types.hpp"

namespace parspan {

struct FullyDynamicSpannerConfig {
  /// Stretch parameter: the spanner has stretch 2k-1.
  uint32_t k = 4;
  /// Base seed; each rebuilt decremental instance derives a fresh stream.
  uint64_t seed = 1;
};

class FullyDynamicSpanner {
 public:
  FullyDynamicSpanner(size_t n, const std::vector<Edge>& initial,
                      const FullyDynamicSpannerConfig& cfg);

  size_t num_vertices() const { return n_; }
  size_t num_edges() const { return index_.size(); }
  size_t spanner_size() const;
  std::vector<Edge> spanner_edges() const;
  bool has_edge(Edge e) const { return index_.contains(e.key()); }

  /// Applies one batch of updates (deletions first, then insertions;
  /// duplicates and no-ops are filtered). Returns the net spanner diff,
  /// sorted by canonical edge key on both sides.
  SpannerDiff update(const std::vector<Edge>& insertions,
                     const std::vector<Edge>& deletions);

  /// Convenience wrappers.
  SpannerDiff insert_edges(const std::vector<Edge>& ins) {
    return update(ins, {});
  }
  SpannerDiff delete_edges(const std::vector<Edge>& del) {
    return update({}, del);
  }

  /// Number of partitions currently allocated.
  size_t num_partitions() const { return parts_.size(); }

  /// Number of decremental-instance rebuilds so far (amortization witness).
  uint64_t rebuilds() const { return rebuilds_; }

  /// Oracle: Invariant B1, Index consistency, sub-structure invariants,
  /// and spanner-union consistency. Expensive; for tests.
  bool check_invariants() const;

 private:
  struct Partition {
    FlatHashSet<EdgeKey> edges;  // alive edges assigned here
    std::unique_ptr<DecrementalClusterSpanner> spanner;  // null for E_0
  };

  /// One pending partition rebuild: slot, derived seed, and the merged
  /// (sorted, unique) edge keys. Jobs target disjoint slots, so their
  /// instance constructions run concurrently; `built` is filled by the
  /// parallel build phase and installed serially in job order. A later
  /// chunk of the same batch may absorb a slot whose job has not been
  /// built yet — the job is then `cancelled` and its edges move into the
  /// larger merge (it contributed nothing to the diff yet, so no delta
  /// accounting is rolled back).
  struct RebuildJob {
    uint32_t j = 0;
    uint64_t seed = 0;
    bool cancelled = false;
    std::vector<EdgeKey> merged;
    std::unique_ptr<DecrementalClusterSpanner> built;
  };

  /// Index value marking an edge accepted this batch but not yet assigned
  /// to a partition (set by prepare_rebuild / the E_0 append path).
  static constexpr uint32_t kUnassigned = static_cast<uint32_t>(-1);

  /// Capacity 2^{i+l0} of partition i.
  size_t capacity(size_t i) const { return size_t{1} << (i + l0_); }

  void ensure_parts(size_t j);

  /// Phase 1 of a rebuild into slot j: empties partitions lo..j-1,
  /// accounts their departing spanner contributions, merges their edges
  /// with `fresh` via one parallel sort, installs the Index/partition
  /// membership — and queues the (expensive) decremental-instance
  /// construction as a RebuildJob instead of running it inline.
  void prepare_rebuild(size_t j, size_t lo, std::vector<EdgeKey> fresh,
                       std::vector<RebuildJob>& jobs);

  void absorb_diff(const SpannerDiff& d) {
    for (const Edge& e : d.inserted) delta_.add(e.key());
    for (const Edge& e : d.removed) delta_.remove(e.key());
  }

  size_t n_ = 0;
  FullyDynamicSpannerConfig cfg_;
  uint32_t l0_ = 0;
  std::vector<Partition> parts_;
  FlatHashMap<EdgeKey, uint32_t> index_;  // alive edge -> partition
  DiffAccumulator delta_;                 // per-batch diff (DESIGN.md §6.4)
  uint64_t rebuilds_ = 0;
  uint64_t instance_counter_ = 0;  // fresh seeds for rebuilt instances
};

}  // namespace parspan
