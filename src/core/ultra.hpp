// UltraSparseSpanner: the batch-dynamic ultra-sparse spanner of Theorem 1.4
// — n + O(n/x) edges with stretch O(x log x · log n · poly(log log n)) —
// via the single contraction ContractUltra(G, x) of Lemma 5.1 composed with
// the sparse spanner of Theorem 1.3.
//
// ContractUltra (paper §5.1-§5.2):
//  * D ⊆ V sampled once with probability 1/x; rand_v a fixed random value
//    per vertex (the tie-breaking permutation P).
//  * v is HEAVY if deg(v) >= T = ceil(10 x log2 x), else LIGHT (the status
//    is dynamic; crossings are handled as recomputations).
//  * Head(v): sampled vertices head to themselves. Heavy vertices head to
//    the sampled neighbor minimizing rand (else themselves, joining D').
//    Light vertices run the bounded BFS of Algorithm 5 — radius R = T,
//    never branching through heavy vertices — and head to the closest
//    D ∪ D' member (ties by rand), becoming ⊥ when their whole (light)
//    component is exhausted with no candidate, or heading to themselves
//    when the radius truncates.
//  * H1 = the per-cluster shortest-path forest: one parent edge per
//    clustered vertex (Lemma 5.3 guarantees the parent is in-cluster).
//  * H2 = a spanning forest of the edges with both endpoints ⊥, maintained
//    by SmallComponentForest (the [AABD19] substitution, DESIGN.md §1).
//  * NextLevelEdges buckets + representatives map the contracted graph
//    (over the original vertex-id space, as in the paper's white-box use
//    of Theorem 1.3) into a SparseSpanner.
//
// After a batch, recomputation follows the paper exactly: heavy heads are
// refreshed at updated endpoints first; Algorithm 6's bounded BFS then
// collects every light vertex whose Algorithm-5 ball was touched, and those
// are recomputed against the committed heavy heads.
//
// Layout & parallelism (DESIGN.md §7.2): adjacency is the flat DynamicGraph
// substrate (per-vertex dense vectors + one flat position index); buckets,
// membership sets, and the contracted-pair index are flat open-addressing
// tables; the Algorithm-5 balls run on epoch-stamped per-thread scratch.
// Each recomputation phase is two-phase — head *computation* is a
// parallel_for over the affected vertices (reads committed state only),
// head *commits* run serially in ascending vertex order — and the batch
// diff drains key-sorted from a flat accumulator, so output never depends
// on the worker-thread count.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "connectivity/dynamic_forest.hpp"
#include "container/flat_map.hpp"
#include "container/rep_bucket.hpp"
#include "core/sparse_spanner.hpp"
#include "graph/dynamic_graph.hpp"
#include "util/types.hpp"

namespace parspan {

struct UltraConfig {
  /// Integer contraction parameter x >= 2 (paper: 2 <= x <=
  /// O(log log n / (log log log n)^2)).
  uint32_t x = 2;
  uint64_t seed = 1;
  /// Configuration of the Theorem 1.3 structure on the contracted graph
  /// (its seed is derived from `seed`).
  SparseSpannerConfig next;
};

class UltraSparseSpanner {
 public:
  UltraSparseSpanner(size_t n, const std::vector<Edge>& edges,
                     const UltraConfig& cfg);

  size_t num_vertices() const { return n_; }
  size_t num_edges() const { return graph_.num_edges(); }
  size_t spanner_size() const { return s_mem_.size(); }
  std::vector<Edge> spanner_edges() const;
  bool in_spanner(Edge e) const { return s_mem_.contains(e.key()); }

  /// Applies one batch (deletions then insertions); returns the net spanner
  /// diff, both sides sorted by canonical key (deterministic across thread
  /// counts — DESIGN.md §7).
  SpannerDiff update(const std::vector<Edge>& insertions,
                     const std::vector<Edge>& deletions);
  SpannerDiff insert_edges(const std::vector<Edge>& ins) {
    return update(ins, {});
  }
  SpannerDiff delete_edges(const std::vector<Edge>& del) {
    return update({}, del);
  }

  /// Head of v: v itself for centers/unclustered, kNoVertex for ⊥.
  VertexId head(VertexId v) const { return head_[v]; }
  bool is_sampled(VertexId v) const { return sampled_[v] != 0; }
  uint32_t heavy_threshold() const { return T_; }

  /// Composed stretch witness: 21 x log x · (L+1) over the next level's L.
  uint32_t stretch_bound() const;

  bool check_invariants() const;

 private:
  static constexpr VertexId kBot = kNoVertex;

  struct HeadResult {
    VertexId head = kBot;
    VertexId par = kNoVertex;  // neighbor toward the head (kNoVertex: none)
  };

  /// Epoch-stamped scratch for one Algorithm-5 ball: O(ball) touched words
  /// per call, no per-call allocation after warm-up. One instance per
  /// worker thread (compute_head runs under parallel_for).
  struct HeadScratch {
    std::vector<uint32_t> dist;   // valid iff stamp[v] == epoch
    std::vector<VertexId> par;    // BFS parent toward the source
    std::vector<uint64_t> stamp;
    std::vector<VertexId> frontier, next;
    uint64_t epoch = 0;

    void ensure(size_t n) {
      if (stamp.size() < n) {
        dist.resize(n);
        par.resize(n);
        stamp.resize(n, 0);
      }
    }
  };

  bool heavy(VertexId v) const { return graph_.degree(v) >= T_; }

  /// Algorithm 5 (light) / neighbor-min (heavy). Reads committed heavy
  /// heads; does not mutate structure state (scratch is caller-owned).
  HeadResult compute_head(VertexId v, HeadScratch& hs) const;

  /// Algorithm 6: light vertices whose Algorithm-5 ball contains a seed,
  /// branching through light vertices and through heavy seeds. Returns the
  /// affected light vertices sorted ascending.
  std::vector<VertexId> light_need_recompute(
      const std::vector<VertexId>& seeds);

  EdgeKey pair_key_of(Edge e) const;
  bool edge_in_h2(Edge e) const {
    return head_[e.u] == kBot && head_[e.v] == kBot;
  }

  void bucket_add(Edge e);
  void bucket_remove(Edge e, EdgeKey pk);
  void note_pair_touched(EdgeKey pk);
  void attach(Edge e);
  void detach(Edge e);
  void commit_head(VertexId v, const HeadResult& hr);

  void s_add(EdgeKey ek);
  void s_remove(EdgeKey ek);

  size_t n_ = 0;
  UltraConfig cfg_;
  uint32_t T_ = 2;  // heavy threshold = BFS radius (10 x log2 x)

  std::vector<uint8_t> sampled_;
  std::vector<uint64_t> rand_;
  DynamicGraph graph_;  // flat adjacency + edge index (DESIGN.md §2)

  std::vector<VertexId> head_;
  std::vector<EdgeKey> par_edge_;  // H1 contribution per vertex

  /// NextLevelEdges[(c, c')]: the alive layer-0 edges whose endpoint heads
  /// are {c, c'}, plus the designated representative (container/
  /// rep_bucket.hpp; the rep is assigned with the first member).
  using Bucket = RepBucket<EdgeKey>;
  FlatHashMap<EdgeKey, Bucket> buckets_;

  std::unique_ptr<SmallComponentForest> h2_;
  std::unique_ptr<SparseSpanner> next_;

  // Final spanner composition S = H1 ∪ forest(H2) ∪ rep(S_next).
  FlatHashSet<EdgeKey> s_mem_;
  FlatHashMap<EdgeKey, EdgeKey> used_rep_;  // pair -> layer-0 edge
  DiffAccumulator s_delta_;

  // Batch-scoped accumulators.
  struct PairSnapshot {
    bool existed = false;
    EdgeKey old_rep = kNoEdge;
  };
  FlatHashMap<EdgeKey, PairSnapshot> touched_pairs_;
  DiffAccumulator h2_net_;                          // H2 membership churn
  std::vector<EdgeKey> pending_add_, pending_rem_;  // deferred S mutations

  // Algorithm-6 scratch (epoch-stamped seed/visited marks).
  std::vector<uint64_t> seed_mark_, visit_mark_;
  uint64_t mark_epoch_ = 0;
  // Per-thread Algorithm-5 scratch for the parallel compute phases.
  mutable std::vector<HeadScratch> scratch_;
};

}  // namespace parspan
