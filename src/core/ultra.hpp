// UltraSparseSpanner: the batch-dynamic ultra-sparse spanner of Theorem 1.4
// — n + O(n/x) edges with stretch O(x log x · log n · poly(log log n)) —
// via the single contraction ContractUltra(G, x) of Lemma 5.1 composed with
// the sparse spanner of Theorem 1.3.
//
// ContractUltra (paper §5.1-§5.2):
//  * D ⊆ V sampled once with probability 1/x; rand_v a fixed random value
//    per vertex (the tie-breaking permutation P).
//  * v is HEAVY if deg(v) >= T = ceil(10 x log2 x), else LIGHT (the status
//    is dynamic; crossings are handled as recomputations).
//  * Head(v): sampled vertices head to themselves. Heavy vertices head to
//    the sampled neighbor minimizing rand (else themselves, joining D').
//    Light vertices run the bounded BFS of Algorithm 5 — radius R = T,
//    never branching through heavy vertices — and head to the closest
//    D ∪ D' member (ties by rand), becoming ⊥ when their whole (light)
//    component is exhausted with no candidate, or heading to themselves
//    when the radius truncates.
//  * H1 = the per-cluster shortest-path forest: one parent edge per
//    clustered vertex (Lemma 5.3 guarantees the parent is in-cluster).
//  * H2 = a spanning forest of the edges with both endpoints ⊥, maintained
//    by SmallComponentForest (the [AABD19] substitution, DESIGN.md §1).
//  * NextLevelEdges buckets + representatives map the contracted graph
//    (over the original vertex-id space, as in the paper's white-box use
//    of Theorem 1.3) into a SparseSpanner.
//
// After a batch, recomputation follows the paper exactly: heavy heads are
// refreshed at updated endpoints first; Algorithm 6's bounded BFS then
// collects every light vertex whose Algorithm-5 ball was touched, and those
// are recomputed against the committed heavy heads.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "connectivity/dynamic_forest.hpp"
#include "container/counted_treap.hpp"
#include "core/sparse_spanner.hpp"
#include "util/types.hpp"

namespace parspan {

struct UltraConfig {
  /// Integer contraction parameter x >= 2 (paper: 2 <= x <=
  /// O(log log n / (log log log n)^2)).
  uint32_t x = 2;
  uint64_t seed = 1;
  /// Configuration of the Theorem 1.3 structure on the contracted graph
  /// (its seed is derived from `seed`).
  SparseSpannerConfig next;
};

class UltraSparseSpanner {
 public:
  UltraSparseSpanner(size_t n, const std::vector<Edge>& edges,
                     const UltraConfig& cfg);

  size_t num_vertices() const { return n_; }
  size_t num_edges() const { return alive_count_; }
  size_t spanner_size() const { return s_mem_.size(); }
  std::vector<Edge> spanner_edges() const;
  bool in_spanner(Edge e) const { return s_mem_.count(e.key()) > 0; }

  SpannerDiff update(const std::vector<Edge>& insertions,
                     const std::vector<Edge>& deletions);
  SpannerDiff insert_edges(const std::vector<Edge>& ins) {
    return update(ins, {});
  }
  SpannerDiff delete_edges(const std::vector<Edge>& del) {
    return update({}, del);
  }

  /// Head of v: v itself for centers/unclustered, kNoVertex for ⊥.
  VertexId head(VertexId v) const { return head_[v]; }
  bool is_sampled(VertexId v) const { return sampled_[v] != 0; }
  uint32_t heavy_threshold() const { return T_; }

  /// Composed stretch witness: 21 x log x · (L+1) over the next level's L.
  uint32_t stretch_bound() const;

  bool check_invariants() const;

 private:
  static constexpr VertexId kBot = kNoVertex;

  struct HeadResult {
    VertexId head = kBot;
    VertexId par = kNoVertex;  // neighbor toward the head (kNoVertex: none)
  };

  bool heavy(VertexId v) const { return adj_[v].size() >= T_; }
  uint64_t nbr_key(VertexId w) const {
    return ((sampled_[w] ? 0ull : 1ull) << 62) | (rand_[w] >> 2);
  }

  /// Algorithm 5 (light) / neighbor-min (heavy). Reads committed heavy
  /// heads; does not mutate state.
  HeadResult compute_head(VertexId v) const;

  /// Algorithm 6: light vertices whose Algorithm-5 ball contains a seed,
  /// branching through light vertices and through heavy seeds.
  std::vector<VertexId> light_need_recompute(
      const std::vector<VertexId>& seeds) const;

  EdgeKey pair_key_of(Edge e) const;
  bool edge_in_h2(Edge e) const {
    return head_[e.u] == kBot && head_[e.v] == kBot;
  }

  void bucket_add(Edge e);
  void bucket_remove(Edge e, EdgeKey pk);
  void note_pair_touched(EdgeKey pk);
  void attach(Edge e);
  void detach(Edge e);
  void commit_head(VertexId v, const HeadResult& hr);

  void s_add(EdgeKey ek);
  void s_remove(EdgeKey ek);

  size_t n_ = 0;
  UltraConfig cfg_;
  uint32_t T_ = 2;  // heavy threshold = BFS radius (10 x log2 x)

  std::vector<uint8_t> sampled_;
  std::vector<uint64_t> rand_;
  std::vector<std::unordered_set<VertexId>> adj_;
  std::unordered_set<EdgeKey> alive_;
  size_t alive_count_ = 0;

  std::vector<VertexId> head_;
  std::vector<EdgeKey> par_edge_;  // H1 contribution per vertex

  struct Bucket {
    std::unordered_set<EdgeKey> members;  // supporting layer-0 edges
    EdgeKey rep = kNoEdge;
  };
  std::unordered_map<EdgeKey, Bucket> buckets_;

  std::unique_ptr<SmallComponentForest> h2_;
  std::unique_ptr<SparseSpanner> next_;

  // Final spanner composition S = H1 ∪ forest(H2) ∪ rep(S_next).
  std::unordered_set<EdgeKey> s_mem_;
  std::unordered_map<EdgeKey, EdgeKey> used_rep_;  // pair -> layer-0 edge
  std::unordered_map<EdgeKey, int32_t> s_delta_;

  // Batch-scoped accumulators.
  struct PairSnapshot {
    bool existed;
    EdgeKey old_rep;
  };
  std::unordered_map<EdgeKey, PairSnapshot> touched_pairs_;
  std::vector<Edge> h2_ins_, h2_del_;
  std::vector<EdgeKey> pending_add_, pending_rem_;  // deferred S mutations
};

}  // namespace parspan
