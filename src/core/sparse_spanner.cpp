#include "core/sparse_spanner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parallel/csr.hpp"
#include "util/rng.hpp"

namespace parspan {

std::vector<double> contraction_schedule(double target) {
  std::vector<double> xs;
  double prod = 1.0;
  double prev_exp = 0.0;
  for (int i = 0; prod < target && i < 8; ++i) {
    // Lemma 4.2: exponents 1.5^i - 1.5^{i-1} over base 100 (x_0 = 100).
    double expo = std::pow(1.5, double(i));
    double xi = std::pow(100.0, expo - prev_exp);
    prev_exp = expo;
    // Lemma 4.3: scale the last factor down so the product hits the target.
    if (prod * xi >= target) xi = std::max(2.0, target / prod);
    xs.push_back(xi);
    prod *= xi;
  }
  if (xs.empty()) xs.push_back(2.0);
  return xs;
}

SparseSpanner::SparseSpanner(size_t n, const std::vector<Edge>& edges,
                             const SparseSpannerConfig& cfg)
    : n_(n) {
  std::vector<double> xs = cfg.xs;
  if (xs.empty())
    xs = contraction_schedule(
        std::max(4.0, std::log2(double(std::max<size_t>(n, 2)))));

  // Deduplicate input edges (canonical key order).
  std::vector<Edge> cur;
  {
    std::vector<EdgeKey> keys = canonical_edge_keys(n, edges);
    cur.reserve(keys.size());
    for (EdgeKey ek : keys) cur.push_back(edge_from_key(ek));
  }
  num_edges_ = cur.size();

  // Build contraction layers bottom-up.
  size_t layer_n = n;
  for (size_t i = 0; i < xs.size(); ++i) {
    layers_.push_back(std::make_unique<ContractionLayer>(
        layer_n, cur, xs[i], hash_combine(cfg.seed, 0xc0 + i)));
    cur = layers_.back()->next_edges();
    layer_n = layers_.back()->next_n();
    if (layer_n <= 2) break;
  }
  // Top spanner (Theorem 1.1) on the contracted graph.
  uint32_t k = cfg.top_k;
  if (k == 0)
    k = uint32_t(
        std::ceil(std::log2(double(std::max<size_t>(layer_n, 2)) + 2.0)));
  FullyDynamicSpannerConfig tc;
  tc.k = k;
  tc.seed = hash_combine(cfg.seed, 0x707);
  top_ = std::make_unique<FullyDynamicSpanner>(layer_n, cur, tc);

  // Compose the initial spanner downward: S_L = top spanner,
  // S_i = H_i ∪ rep(S_{i+1}).
  size_t L = layers_.size();
  s_mem_.assign(L + 1, {});
  used_rep_.assign(L, {});
  for (const Edge& e : top_->spanner_edges()) s_mem_[L].insert(e.key());
  stretch_bound_ = 2 * k - 1;
  for (size_t i = L; i-- > 0;) {
    for (const Edge& e : layers_[i]->h_edges()) s_mem_[i].insert(e.key());
    for (EdgeKey pk : s_mem_[i + 1].sorted_keys()) {
      Edge r = layers_[i]->rep(edge_from_key(pk));
      used_rep_[i][pk] = r.key();
      bool fresh = s_mem_[i].insert(r.key());
      assert(fresh && "H and representatives must be disjoint");
      (void)fresh;
    }
    stretch_bound_ = 3 * stretch_bound_ + 2;
  }
}

std::vector<Edge> SparseSpanner::spanner_edges() const {
  std::vector<Edge> out;
  out.reserve(s_mem_[0].size());
  for (EdgeKey ek : s_mem_[0].sorted_keys()) out.push_back(edge_from_key(ek));
  return out;
}

SpannerDiff SparseSpanner::update(const std::vector<Edge>& insertions,
                                  const std::vector<Edge>& deletions) {
  size_t L = layers_.size();
  // Upward pass: push updates through the contraction layers.
  std::vector<ContractionLayer::UpdateResult> results(L);
  std::vector<Edge> ins = insertions, del = deletions;
  // Maintain the layer-0 edge count (duplicates / no-ops filtered by the
  // layer itself; count via its alive counter).
  for (size_t i = 0; i < L; ++i) {
    size_t before = layers_[i]->alive_edges();
    results[i] = layers_[i]->update(ins, del);
    (void)before;
    ins = results[i].next_ins;
    del = results[i].next_del;
  }
  num_edges_ = L > 0 ? layers_[0]->alive_edges() : num_edges_;
  SpannerDiff top_diff = top_->update(ins, del);

  // Downward pass: apply diffs level by level.
  // `down` is the S_{i+1} diff in layer-(i+1) edge keys.
  SpannerDiff down = top_diff;
  for (const Edge& e : top_diff.inserted) s_mem_[L].insert(e.key());
  for (const Edge& e : top_diff.removed) s_mem_[L].erase(e.key());

  for (size_t i = L; i-- > 0;) {
    DiffAccumulator delta;
    auto s_add = [&](EdgeKey ek) {
      bool fresh = s_mem_[i].insert(ek);
      assert(fresh && "S_i components must stay disjoint");
      (void)fresh;
      delta.add(ek);
    };
    auto s_remove = [&](EdgeKey ek) {
      bool erased = s_mem_[i].erase(ek);
      assert(erased);
      (void)erased;
      delta.remove(ek);
    };
    // All removals first (an edge may switch roles between H member and
    // pair representative within one batch; removals-then-additions keeps
    // S_i a true set throughout).
    for (const Edge& e : results[i].h_del) s_remove(e.key());
    for (const Edge& p : down.removed) {
      EdgeKey* it = used_rep_[i].find(p.key());
      assert(it != nullptr);
      s_remove(*it);
      used_rep_[i].erase(p.key());
    }
    std::vector<EdgeKey> pending_rep;  // surviving pairs with a stale rep
    for (const Edge& p : results[i].rep_changed) {
      EdgeKey* it = used_rep_[i].find(p.key());
      if (it == nullptr) continue;  // pair not in S_{i+1}
      Edge r = layers_[i]->rep(p);
      if (*it == r.key()) continue;
      s_remove(*it);
      used_rep_[i].erase(p.key());
      pending_rep.push_back(p.key());
    }
    // Additions.
    for (const Edge& e : results[i].h_ins) s_add(e.key());
    for (const Edge& p : down.inserted) {
      Edge r = layers_[i]->rep(p);
      used_rep_[i][p.key()] = r.key();
      s_add(r.key());
    }
    for (EdgeKey pk : pending_rep) {
      Edge r = layers_[i]->rep(edge_from_key(pk));
      used_rep_[i][pk] = r.key();
      s_add(r.key());
    }
    // Compile this layer's (key-sorted) diff for the next level down.
    down = delta.drain();
  }
  return down;
}

bool SparseSpanner::check_invariants() const {
  size_t L = layers_.size();
  for (const auto& layer : layers_)
    if (!layer->check_invariants()) return false;
  if (!top_->check_invariants()) return false;
  auto equals = [](const FlatHashSet<EdgeKey>& ref,
                   const FlatHashSet<EdgeKey>& have) {
    if (ref.size() != have.size()) return false;
    bool ok = true;
    ref.for_each([&](EdgeKey ek) {
      if (!have.contains(ek)) ok = false;
    });
    return ok;
  };
  // S_L must equal the top spanner.
  {
    FlatHashSet<EdgeKey> ref;
    for (const Edge& e : top_->spanner_edges()) ref.insert(e.key());
    if (!equals(ref, s_mem_[L])) return false;
  }
  // S_i must equal H_i ∪ rep(S_{i+1}), with used_rep_ holding the actual
  // representatives (which must be current).
  for (size_t i = L; i-- > 0;) {
    FlatHashSet<EdgeKey> ref;
    for (const Edge& e : layers_[i]->h_edges()) ref.insert(e.key());
    if (used_rep_[i].size() != s_mem_[i + 1].size()) return false;
    bool ok = true;
    s_mem_[i + 1].for_each([&](EdgeKey pk) {
      const EdgeKey* it = used_rep_[i].find(pk);
      if (it == nullptr) {
        ok = false;
        return;
      }
      Edge r = layers_[i]->rep(edge_from_key(pk));
      if (r.key() != *it) ok = false;
      else if (!ref.insert(r.key())) ok = false;
    });
    if (!ok) return false;
    if (!equals(ref, s_mem_[i])) return false;
  }
  return true;
}

}  // namespace parspan
