#include "core/fully_dynamic_spanner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parallel/arena.hpp"
#include "parallel/csr.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "util/rng.hpp"

namespace parspan {

FullyDynamicSpanner::FullyDynamicSpanner(
    size_t n, const std::vector<Edge>& initial,
    const FullyDynamicSpannerConfig& cfg)
    : n_(n), cfg_(cfg) {
  // 2^{l0} >= n^{1+1/k}.
  double target = std::pow(double(std::max<size_t>(n, 2)),
                           1.0 + 1.0 / double(cfg.k));
  l0_ = 0;
  while (std::pow(2.0, double(l0_)) < target) ++l0_;

  // Canonicalize + dedup with one parallel sort, then install everything in
  // the smallest slot j with |E| <= 2^{j+l0}.
  std::vector<EdgeKey> keys = canonical_edge_keys(n, initial);
  size_t j = 0;
  while (capacity(j) < keys.size()) ++j;
  ensure_parts(j);
  index_.reserve(keys.size());
  parts_[j].edges.reserve(keys.size());
  for (EdgeKey ek : keys) {
    parts_[j].edges.insert(ek);
    index_[ek] = uint32_t(j);
  }
  if (j > 0) {
    ClusterSpannerConfig scfg;
    scfg.k = cfg_.k;
    scfg.seed = hash_combine(cfg_.seed, ++instance_counter_);
    parts_[j].spanner = std::make_unique<DecrementalClusterSpanner>(
        n_, DecrementalClusterSpanner::FromSortedKeys{}, std::move(keys),
        scfg);
  }
}

void FullyDynamicSpanner::ensure_parts(size_t j) {
  while (parts_.size() <= j) parts_.emplace_back();
}

size_t FullyDynamicSpanner::spanner_size() const {
  size_t s = 0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i == 0 || !parts_[i].spanner)
      s += parts_[i].edges.size();  // E_0: everything is in the spanner
    else
      s += parts_[i].spanner->spanner_size();
  }
  return s;
}

std::vector<Edge> FullyDynamicSpanner::spanner_edges() const {
  std::vector<Edge> out;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i == 0 || !parts_[i].spanner) {
      parts_[i].edges.for_each(
          [&](EdgeKey ek) { out.push_back(edge_from_key(ek)); });
    } else {
      auto h = parts_[i].spanner->spanner_edges();
      out.insert(out.end(), h.begin(), h.end());
    }
  }
  return out;
}

void FullyDynamicSpanner::prepare_rebuild(size_t j, size_t lo,
                                          std::vector<EdgeKey> fresh,
                                          std::vector<RebuildJob>& jobs) {
  ensure_parts(j);
  assert(parts_[j].edges.empty());
  ++rebuilds_;
  std::vector<EdgeKey> merged = std::move(fresh);
  size_t total = merged.size();
  for (size_t i = lo; i < j; ++i) total += parts_[i].edges.size();
  merged.reserve(total);
  for (size_t i = lo; i < j; ++i) {
    Partition& p = parts_[i];
    if (p.edges.empty()) {
      p.spanner.reset();
      continue;
    }
    // A slot filled earlier in this batch whose instance is still pending:
    // cancel the job and take its edges. It never entered the diff (delta
    // adds happen at install), so no contributions leave here.
    RebuildJob* pending = nullptr;
    for (RebuildJob& job : jobs)
      if (!job.cancelled && job.j == uint32_t(i)) pending = &job;
    if (pending != nullptr) {
      assert(!p.spanner);
      pending->cancelled = true;
      merged.insert(merged.end(), pending->merged.begin(),
                    pending->merged.end());
    } else if (i == 0 || !p.spanner) {
      // Current spanner contributions of the absorbed partition leave.
      p.edges.for_each([&](EdgeKey ek) {
        delta_.remove(ek);
        merged.push_back(ek);
      });
    } else {
      for (const Edge& e : p.spanner->spanner_edges())
        delta_.remove(e.key());
      p.edges.for_each([&](EdgeKey ek) { merged.push_back(ek); });
    }
    p.edges = FlatHashSet<EdgeKey>{};  // release the absorbed slot array
    p.spanner.reset();
  }
  // U_i ∪ E_lo..E_{j-1} as one parallel sort (partitions are disjoint and
  // fresh keys are new, so the union is already duplicate-free).
  parallel_sort(merged);
  assert(std::adjacent_find(merged.begin(), merged.end()) == merged.end());
  assert(merged.size() <= capacity(j));
  Partition& pj = parts_[j];
  pj.edges.reserve(merged.size());
  for (EdgeKey ek : merged) {
    pj.edges.insert(ek);
    index_[ek] = uint32_t(j);
  }
  if (j == 0) {
    // E_0 keeps everything in the spanner; no instance to build.
    for (EdgeKey ek : merged) delta_.add(ek);
    return;
  }
  RebuildJob job;
  job.j = uint32_t(j);
  job.seed = hash_combine(cfg_.seed, ++instance_counter_);
  job.merged = std::move(merged);
  jobs.push_back(std::move(job));
}

SpannerDiff FullyDynamicSpanner::update(const std::vector<Edge>& insertions,
                                        const std::vector<Edge>& deletions) {
  assert(delta_.empty() && "previous batch drained its delta");

  // Batch-scoped scratch (the routed deletion lists, the insertion key
  // buffer) lives on the calling thread's bump arena and is reclaimed
  // wholesale when the scope closes — the partition-rebuild path allocates
  // these same shapes every batch (DESIGN.md §12.5). Job payloads that
  // outlive the batch (job.merged moves into the new instance) stay on the
  // heap.
  ArenaScope batch_scratch;

  // --- Deletions: route to partitions through Index. ---
  ArenaVector<ArenaVector<Edge>> per_part(parts_.size());
  for (const Edge& e : deletions) {
    uint32_t* slot = index_.find(e.key());
    if (slot == nullptr) continue;
    per_part[*slot].push_back(e);
    index_.erase(e.key());
  }
  for (size_t i = 0; i < per_part.size(); ++i) {
    if (per_part[i].empty()) continue;
    Partition& p = parts_[i];
    for (const Edge& e : per_part[i]) p.edges.erase(e.key());
    if (i == 0 || !p.spanner) {
      for (const Edge& e : per_part[i]) delta_.remove(e.key());
    } else {
      absorb_diff(p.spanner->delete_edges(per_part[i]));
    }
  }

  // --- Insertions: split U into U_r ∪ U_0 ∪ ... and merge upward. ---
  ArenaVector<EdgeKey> u;
  for (const Edge& e : insertions) {
    if (e.u == e.v || e.u >= n_ || e.v >= n_) continue;
    EdgeKey ek = e.key();
    if (index_.contains(ek)) continue;  // already alive (or seen this batch)
    index_[ek] = kUnassigned;           // reserved; set by prepare_rebuild
    u.push_back(ek);
  }
  std::vector<RebuildJob> jobs;
  if (!u.empty()) {
    // Chunk sizes by the binary representation of |U|: highest first.
    size_t remaining = u.size();
    size_t pos = 0;
    int bmax = 0;
    while (capacity(bmax + 1) <= remaining) ++bmax;
    for (int i = bmax; i >= 0; --i) {
      size_t chunk = capacity(size_t(i));
      if (remaining < chunk) continue;
      std::vector<EdgeKey> ui(u.begin() + pos, u.begin() + pos + chunk);
      pos += chunk;
      remaining -= chunk;
      size_t j = size_t(i);
      while (j < parts_.size() && !parts_[j].edges.empty()) ++j;
      prepare_rebuild(j, size_t(i), std::move(ui), jobs);
    }
    // Remainder U_r (< 2^{l0}).
    if (remaining > 0) {
      std::vector<EdgeKey> ur(u.begin() + pos, u.end());
      ensure_parts(0);
      if (parts_[0].edges.size() + ur.size() <= capacity(0)) {
        for (EdgeKey ek : ur) {
          parts_[0].edges.insert(ek);
          index_[ek] = 0;
          delta_.add(ek);
        }
      } else {
        size_t j = 0;
        while (j < parts_.size() && !parts_[j].edges.empty()) ++j;
        prepare_rebuild(j, 0, std::move(ur), jobs);
      }
    }
  }

  // --- Build the rebuilt decremental instances concurrently. ---
  // Jobs target disjoint slots and share no state; each construction is
  // itself parallel, and nested parallel_for calls steal from the same
  // scheduler instead of oversubscribing. grain 1 so every job is its own
  // task (few, heavy iterations).
  parallel_for(
      0, jobs.size(),
      [&](size_t idx) {
        RebuildJob& job = jobs[idx];
        if (job.cancelled) return;
        ClusterSpannerConfig scfg;
        scfg.k = cfg_.k;
        scfg.seed = job.seed;
        job.built = std::make_unique<DecrementalClusterSpanner>(
            n_, DecrementalClusterSpanner::FromSortedKeys{},
            std::move(job.merged), scfg);
      },
      /*grain=*/1);
  // Install + account serially in job order: the diff stays deterministic
  // no matter how the parallel build phase was scheduled.
  for (RebuildJob& job : jobs) {
    if (job.cancelled) continue;
    parts_[job.j].spanner = std::move(job.built);
    for (const Edge& e : parts_[job.j].spanner->spanner_edges())
      delta_.add(e.key());
  }

  // --- Compile the net diff by draining the touched keys. ---
  return delta_.drain();
}

bool FullyDynamicSpanner::check_invariants() const {
  size_t total = 0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    const Partition& p = parts_[i];
    if (p.edges.size() > capacity(i)) return false;  // Invariant B1
    total += p.edges.size();
    bool ok = true;
    p.edges.for_each([&](EdgeKey ek) {
      const uint32_t* slot = index_.find(ek);
      if (slot == nullptr || *slot != i) ok = false;
    });
    if (!ok) return false;
    if (i >= 1 && p.spanner) {
      if (!p.spanner->check_invariants()) return false;
      // The instance's alive edges must be exactly p.edges.
      if (p.spanner->alive_edges() != p.edges.size()) return false;
      for (const Edge& e : p.spanner->spanner_edges())
        if (!p.edges.contains(e.key())) return false;
    }
    if (i >= 1 && !p.spanner && !p.edges.empty()) return false;
  }
  return total == index_.size();
}

}  // namespace parspan
