#include "core/fully_dynamic_spanner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace parspan {

FullyDynamicSpanner::FullyDynamicSpanner(
    size_t n, const std::vector<Edge>& initial,
    const FullyDynamicSpannerConfig& cfg)
    : n_(n), cfg_(cfg) {
  // 2^{l0} >= n^{1+1/k}.
  double target = std::pow(double(std::max<size_t>(n, 2)),
                           1.0 + 1.0 / double(cfg.k));
  l0_ = 0;
  while (std::pow(2.0, double(l0_)) < target) ++l0_;

  // Deduplicated initial edges.
  std::vector<Edge> edges;
  for (const Edge& e : initial) {
    if (e.u == e.v || e.u >= n || e.v >= n) continue;
    if (index_.count(e.key())) continue;
    index_[e.key()] = 0;  // placeholder, fixed below
    edges.push_back(e);
  }
  // Smallest j with |E| <= 2^{j+l0}.
  size_t j = 0;
  while (capacity(j) < edges.size()) ++j;
  ensure_parts(j);
  if (j == 0) {
    for (const Edge& e : edges) parts_[0].edges.insert(e.key());
  } else {
    parts_[j].edges.reserve(edges.size() * 2);
    for (const Edge& e : edges) parts_[j].edges.insert(e.key());
    ClusterSpannerConfig scfg;
    scfg.k = cfg_.k;
    scfg.seed = hash_combine(cfg_.seed, ++instance_counter_);
    parts_[j].spanner =
        std::make_unique<DecrementalClusterSpanner>(n_, edges, scfg);
  }
  for (const Edge& e : edges) index_[e.key()] = uint32_t(j);
}

void FullyDynamicSpanner::ensure_parts(size_t j) {
  while (parts_.size() <= j) parts_.emplace_back();
}

size_t FullyDynamicSpanner::spanner_size() const {
  size_t s = 0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i == 0 || !parts_[i].spanner)
      s += parts_[i].edges.size();  // E_0: everything is in the spanner
    else
      s += parts_[i].spanner->spanner_size();
  }
  return s;
}

std::vector<Edge> FullyDynamicSpanner::spanner_edges() const {
  std::vector<Edge> out;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i == 0 || !parts_[i].spanner) {
      for (EdgeKey ek : parts_[i].edges) out.push_back(edge_from_key(ek));
    } else {
      auto h = parts_[i].spanner->spanner_edges();
      out.insert(out.end(), h.begin(), h.end());
    }
  }
  return out;
}

void FullyDynamicSpanner::rebuild_into(size_t j, size_t lo,
                                       const std::vector<Edge>& fresh) {
  ensure_parts(j);
  assert(parts_[j].edges.empty());
  ++rebuilds_;
  std::vector<Edge> merged = fresh;
  for (size_t i = lo; i < j; ++i) {
    Partition& p = parts_[i];
    if (p.edges.empty()) {
      p.spanner.reset();
      continue;
    }
    // Current spanner contributions of the absorbed partition leave.
    if (i == 0 || !p.spanner) {
      for (EdgeKey ek : p.edges) delta_remove(ek);
    } else {
      for (const Edge& e : p.spanner->spanner_edges())
        delta_remove(e.key());
    }
    for (EdgeKey ek : p.edges) merged.push_back(edge_from_key(ek));
    p.edges.clear();
    p.spanner.reset();
  }
  assert(merged.size() <= capacity(j));
  for (const Edge& e : merged) {
    parts_[j].edges.insert(e.key());
    index_[e.key()] = uint32_t(j);
  }
  if (j == 0) {
    // E_0 keeps everything in the spanner.
    for (const Edge& e : merged) delta_add(e.key());
    return;
  }
  ClusterSpannerConfig scfg;
  scfg.k = cfg_.k;
  scfg.seed = hash_combine(cfg_.seed, ++instance_counter_);
  parts_[j].spanner =
      std::make_unique<DecrementalClusterSpanner>(n_, merged, scfg);
  for (const Edge& e : parts_[j].spanner->spanner_edges())
    delta_add(e.key());
}

SpannerDiff FullyDynamicSpanner::update(const std::vector<Edge>& insertions,
                                        const std::vector<Edge>& deletions) {
  delta_.clear();

  // --- Deletions: route to partitions through Index. ---
  std::vector<std::vector<Edge>> per_part(parts_.size());
  for (const Edge& e : deletions) {
    auto it = index_.find(e.key());
    if (it == index_.end()) continue;
    per_part[it->second].push_back(e);
    index_.erase(it);
  }
  for (size_t i = 0; i < per_part.size(); ++i) {
    if (per_part[i].empty()) continue;
    Partition& p = parts_[i];
    for (const Edge& e : per_part[i]) p.edges.erase(e.key());
    if (i == 0 || !p.spanner) {
      for (const Edge& e : per_part[i]) delta_remove(e.key());
    } else {
      absorb_diff(p.spanner->delete_edges(per_part[i]));
    }
  }

  // --- Insertions: split U into U_r ∪ U_0 ∪ ... and merge upward. ---
  std::vector<Edge> u;
  for (const Edge& e : insertions) {
    if (e.u == e.v || e.u >= n_ || e.v >= n_) continue;
    if (index_.count(e.key())) continue;  // already alive
    index_[e.key()] = uint32_t(-1);       // reserved; set by rebuild_into
    u.push_back(e);
  }
  if (!u.empty()) {
    // Chunk sizes by the binary representation of |U|: highest first.
    size_t remaining = u.size();
    size_t pos = 0;
    int bmax = 0;
    while (capacity(bmax + 1) <= remaining) ++bmax;
    for (int i = bmax; i >= 0; --i) {
      size_t chunk = capacity(size_t(i));
      if (remaining < chunk) continue;
      std::vector<Edge> ui(u.begin() + pos, u.begin() + pos + chunk);
      pos += chunk;
      remaining -= chunk;
      size_t j = size_t(i);
      while (j < parts_.size() && !parts_[j].edges.empty()) ++j;
      rebuild_into(j, size_t(i), ui);
    }
    // Remainder U_r (< 2^{l0}).
    if (remaining > 0) {
      std::vector<Edge> ur(u.begin() + pos, u.end());
      ensure_parts(0);
      if (parts_[0].edges.size() + ur.size() <= capacity(0)) {
        for (const Edge& e : ur) {
          parts_[0].edges.insert(e.key());
          index_[e.key()] = 0;
          delta_add(e.key());
        }
      } else {
        size_t j = 0;
        while (j < parts_.size() && !parts_[j].edges.empty()) ++j;
        rebuild_into(j, 0, ur);
      }
    }
  }

  // --- Compile the net diff. ---
  SpannerDiff diff;
  for (auto& [ek, d] : delta_) {
    assert(d >= -1 && d <= 1);
    if (d > 0) diff.inserted.push_back(edge_from_key(ek));
    if (d < 0) diff.removed.push_back(edge_from_key(ek));
  }
  return diff;
}

bool FullyDynamicSpanner::check_invariants() const {
  size_t total = 0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    const Partition& p = parts_[i];
    if (p.edges.size() > capacity(i)) return false;  // Invariant B1
    total += p.edges.size();
    for (EdgeKey ek : p.edges) {
      auto it = index_.find(ek);
      if (it == index_.end() || it->second != i) return false;
    }
    if (i >= 1 && p.spanner) {
      if (!p.spanner->check_invariants()) return false;
      // The instance's alive edges must be exactly p.edges.
      if (p.spanner->alive_edges() != p.edges.size()) return false;
      for (const Edge& e : p.spanner->spanner_edges())
        if (!p.edges.count(e.key())) return false;
    }
    if (i >= 1 && !p.spanner && !p.edges.empty()) return false;
  }
  return total == index_.size();
}

}  // namespace parspan
