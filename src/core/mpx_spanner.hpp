// MonotoneSpanner: the decremental O(log n)-spanner with the monotonicity
// property (Lemma 6.4), following Algorithm 8: O(log n) independent
// instances of the MPX clustering [MPX13] with a *constant* exponential
// rate beta, each maintained by the clustering engine of Lemma 3.3 run in
// forest-only mode (no inter-cluster edges, no explicit cluster readout).
//
// The spanner is the union of the per-instance intra-cluster forests. With
// beta chosen so that an edge is cut by one instance's clustering with
// probability <= 1/2, every edge is covered by some instance w.h.p. An edge
// covered by instance i has both endpoints within distance t_i - 1 of the
// covering cluster's center, so its detour through the forest is at most
// 2 (t_i - 1); the stretch of the union is 2 * max_i (t_i - 1) = O(log n).
//
// Monotonicity (the property Theorem 1.5 exploits): the total volume of
// spanner changes over an entire deletion sequence is O(n log^3 n),
// independent of m — each vertex changes its parent O(log^2 n) times per
// instance in expectation.
//
// Parallelism (DESIGN.md §7.1): the instances are independent by
// construction, so both the constructor and delete_edges fan out one job
// per instance; per-instance diffs are merged serially in instance order
// into a flat touched-key accumulator, and the returned diff is drained
// key-sorted — output is a function of (seed, inputs), never of the
// worker-thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "container/flat_map.hpp"
#include "core/cluster_spanner.hpp"
#include "util/types.hpp"

namespace parspan {

struct MonotoneSpannerConfig {
  uint64_t seed = 1;
  /// Exponential rate per instance; constant (Lemma 6.5 regime).
  double beta = 0.4;
  /// Number of independent instances; 0 means 3*ceil(log2 n) + 2.
  uint32_t instances = 0;
};

class MonotoneSpanner {
 public:
  MonotoneSpanner(size_t n, const std::vector<Edge>& edges,
                  const MonotoneSpannerConfig& cfg);

  size_t num_vertices() const { return n_; }
  size_t alive_edges() const;
  size_t spanner_size() const { return contrib_.size(); }
  std::vector<Edge> spanner_edges() const;
  bool in_spanner(Edge e) const { return contrib_.contains(e.key()); }

  /// Deletes a batch of edges; returns the net spanner diff (both sides
  /// sorted by canonical key; deterministic across thread counts).
  SpannerDiff delete_edges(const std::vector<Edge>& batch);

  /// Stretch bound witness: 2 * max_i (t_i - 1) (Lemma 6.4; the witness of
  /// the covering instance's in-cluster detour).
  uint32_t stretch_bound() const { return stretch_bound_; }

  size_t num_instances() const { return inst_.size(); }

  /// Auxiliary path depth t of instance i (the per-instance stretch witness
  /// component; stretch_bound() == 2 * max_i (instance_t(i) - 1)).
  uint32_t instance_t(size_t i) const { return inst_[i]->t(); }

  /// Total |δH_ins| + |δH_del| emitted over the structure's lifetime
  /// (the monotonicity property bounds this by O(n log^3 n)).
  uint64_t cumulative_recourse() const { return cumulative_recourse_; }

  bool check_invariants() const;

 private:
  size_t n_ = 0;
  std::vector<std::unique_ptr<DecrementalClusterSpanner>> inst_;
  FlatHashMap<EdgeKey, uint32_t> contrib_;  // instance refcounts
  DiffAccumulator delta_;                   // per-batch net diff
  uint32_t stretch_bound_ = 0;
  uint64_t cumulative_recourse_ = 0;
};

}  // namespace parspan
