// Spectral/cut sparsifiers (Lemma 6.6 and Theorem 1.6).
//
// DecrementalSparsifier implements the chain of Algorithm 10
// (Spectral-Sparsify of [ADK+16]) under batch deletions:
//
//   G_0 = G;  for stage j: B_j = t-bundle spanner of G_j (Theorem 1.5),
//   G_{j+1} = each edge of G_j \ B_j kept independently with prob. 1/4.
//
// The sparsifier is H = ∪_j B_j (weight 4^j) ∪ G_K (weight 4^K): since the
// input is unweighted, all edges of stage j carry weight 4^j, assigned at
// readout (paper §6.4). Sampling coins are a fixed hash of (edge, stage) —
// legitimate under the oblivious adversary, and exactly the "filter only
// the edges that are sampled in G_{i+1}" propagation of Lemma 6.6.
//
// A deletion batch runs in two rounds (DESIGN.md §7.3): the coin-filtered
// global deletions are independent per stage and fan out under
// parallel_for; the absorption fallout (edges newly entering B_j leave
// stage j+1 and beyond) then cascades serially — at most one extra batch
// per stage. Diff events are netted by one parallel sort over packed
// (key, weight-bits) tuples, so the returned WeightedDiff is (key, weight)-
// sorted and independent of the stage schedule.
//
// FullyDynamicSparsifier applies the Bentley-Saxe reduction of Theorem 1.6
// (Invariant B2, Lemma 6.7: unions of (1±ε)-sparsifiers sparsify unions).
//
// The bundle depth t controls quality: the theorem's
// t = O(ε^{-2} log^2 m log^3 n) constants are far beyond practical sizes,
// so t is an explicit knob and EXPERIMENTS.md reports measured ε vs t.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "container/flat_map.hpp"
#include "core/bundle.hpp"
#include "verify/laplacian.hpp"

namespace parspan {

/// Net weighted-edge change of the sparsifier after one batch. Both sides
/// are sorted by (canonical edge key, weight bits) — the weighted analogue
/// of the SpannerDiff determinism contract (DESIGN.md §7.4).
struct WeightedDiff {
  std::vector<WeightedEdge> inserted;
  std::vector<WeightedEdge> removed;
};

struct SparsifierConfig {
  /// Bundle depth per stage (quality knob; see header comment).
  uint32_t t = 3;
  /// Per-stage keep probability for the residual sampling.
  double sample_rate = 0.25;
  /// Maximum number of stages; 0 means ceil(log2 m) + 1.
  uint32_t max_stages = 0;
  /// Stop chaining when a stage has at most this many edges (the paper's
  /// "less than O(log n) edges" break).
  size_t min_stage_edges = 8;
  uint64_t seed = 1;
  /// MonotoneSpanner parameters inside the bundles.
  double beta = 0.4;
  uint32_t instances = 0;
};

class DecrementalSparsifier {
 public:
  DecrementalSparsifier(size_t n, const std::vector<Edge>& edges,
                        const SparsifierConfig& cfg);

  size_t num_vertices() const { return n_; }
  size_t size() const;
  std::vector<WeightedEdge> sparsifier_edges() const;
  size_t num_stages() const { return stages_.size(); }
  size_t alive_edges() const;

  /// Deletes a batch of edges; returns the net weighted diff.
  WeightedDiff delete_edges(const std::vector<Edge>& batch);

  bool check_invariants() const;

 private:
  bool coin(EdgeKey ek, uint32_t stage) const;
  double stage_weight(uint32_t stage) const;

  size_t n_ = 0;
  SparsifierConfig cfg_;
  std::vector<std::unique_ptr<SpannerBundle>> stages_;
  FlatHashSet<EdgeKey> final_;  // G_K
  uint64_t coin_seed_ = 0;
};

struct FullyDynamicSparsifierConfig {
  SparsifierConfig stage;  // per-instance parameters
  uint64_t seed = 1;
};

class FullyDynamicSparsifier {
 public:
  FullyDynamicSparsifier(size_t n, const std::vector<Edge>& initial,
                         const FullyDynamicSparsifierConfig& cfg);

  size_t num_vertices() const { return n_; }
  size_t num_edges() const { return index_.size(); }
  size_t size() const;
  std::vector<WeightedEdge> sparsifier_edges() const;

  /// Applies a batch (deletions then insertions); returns the net diff.
  WeightedDiff update(const std::vector<Edge>& insertions,
                      const std::vector<Edge>& deletions);

  size_t num_partitions() const { return parts_.size(); }
  bool check_invariants() const;

 private:
  struct Partition {
    FlatHashSet<EdgeKey> edges;
    std::unique_ptr<DecrementalSparsifier> sp;  // null for E_0
  };
  size_t capacity(size_t i) const { return size_t{1} << (i + l0_); }
  void ensure_parts(size_t j);
  void rebuild_into(size_t j, size_t lo, const std::vector<Edge>& fresh,
                    WeightedDiff& diff);

  size_t n_ = 0;
  FullyDynamicSparsifierConfig cfg_;
  uint32_t l0_ = 0;
  std::vector<Partition> parts_;
  FlatHashMap<EdgeKey, uint32_t> index_;
  uint64_t instance_counter_ = 0;
};

}  // namespace parspan
