#include "core/sparsifier.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "parallel/csr.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "util/rng.hpp"

namespace parspan {

namespace {

/// One signed weighted-diff event, weight packed as raw bits so events sort
/// and net as plain integers.
struct WEvent {
  EdgeKey key;
  uint64_t wbits;
  int32_t sgn;
};

/// Packs an event, normalizing the weight first: -0.0 is folded into +0.0
/// (they compare equal but differ in bit pattern, so keying raw bits would
/// split one weight class into two and a cancel-out could emit both an
/// insert and a remove for the same edge), and NaN weights are rejected —
/// NaN != NaN would make the weight class unmatchable forever.
WEvent wevent(Edge e, double w, int32_t sgn) {
  assert(!std::isnan(w) && "sparsifier weights must be numbers");
  if (w == 0.0) w = 0.0;  // +0.0 and -0.0 share a class
  uint64_t wbits;
  std::memcpy(&wbits, &w, sizeof(wbits));
  return WEvent{e.key(), wbits, sgn};
}

/// Nets raw weighted-diff events by (edge, weight) class: one parallel sort
/// over the packed tuples, then a run scan (DESIGN.md §7.3). Output sides
/// are (key, weight-bits)-sorted; all stage weights are positive, so bit
/// order is numeric order.
WeightedDiff net_weighted(std::vector<WEvent>& events) {
  parallel_sort(events, [](const WEvent& a, const WEvent& b) {
    return a.key != b.key ? a.key < b.key : a.wbits < b.wbits;
  });
  WeightedDiff out;
  for (size_t i = 0; i < events.size();) {
    size_t j = i;
    int32_t c = 0;
    while (j < events.size() && events[j].key == events[i].key &&
           events[j].wbits == events[i].wbits)
      c += events[j++].sgn;
    if (c != 0) {
      assert(c == 1 || c == -1);
      double w;
      std::memcpy(&w, &events[i].wbits, sizeof(w));
      WeightedEdge we{edge_from_key(events[i].key), w};
      if (c > 0) out.inserted.push_back(we);
      else out.removed.push_back(we);
    }
    i = j;
  }
  return out;
}

void emit(std::vector<WEvent>& events, const SpannerDiff& d, double w) {
  for (const Edge& e : d.removed) events.push_back(wevent(e, w, -1));
  for (const Edge& e : d.inserted) events.push_back(wevent(e, w, +1));
}

}  // namespace

// ---------------------------------------------------------------------------
// DecrementalSparsifier
// ---------------------------------------------------------------------------

DecrementalSparsifier::DecrementalSparsifier(size_t n,
                                             const std::vector<Edge>& edges,
                                             const SparsifierConfig& cfg)
    : n_(n), cfg_(cfg) {
  coin_seed_ = hash_combine(cfg.seed, 0xc01);
  uint32_t max_stages = cfg.max_stages;
  if (max_stages == 0) {
    size_t m = std::max<size_t>(edges.size(), 2);
    max_stages = uint32_t(std::ceil(std::log2(double(m)))) + 1;
  }
  std::vector<EdgeKey> keys = canonical_edge_keys(n, edges);
  std::vector<Edge> cur;
  cur.reserve(keys.size());
  for (EdgeKey ek : keys) cur.push_back(edge_from_key(ek));
  // The chain is serial by definition (stage j+1 samples stage j's
  // residual); each stage's bundle parallelizes internally.
  for (uint32_t j = 0; j < max_stages; ++j) {
    if (cur.size() <= cfg.min_stage_edges) break;
    BundleConfig bc;
    bc.t = cfg.t;
    bc.seed = hash_combine(cfg.seed, 0xb000 + j);
    bc.beta = cfg.beta;
    bc.instances = cfg.instances;
    stages_.push_back(std::make_unique<SpannerBundle>(n, cur, bc));
    std::vector<Edge> next;
    for (const Edge& e : stages_.back()->residual_edges())
      if (coin(e.key(), j)) next.push_back(e);
    cur = std::move(next);
  }
  final_.reserve(cur.size());
  for (const Edge& e : cur) final_.insert(e.key());
}

bool DecrementalSparsifier::coin(EdgeKey ek, uint32_t stage) const {
  uint64_t h = hash_combine(coin_seed_, ek * 64 + stage);
  return double(h >> 11) * 0x1.0p-53 < cfg_.sample_rate;
}

double DecrementalSparsifier::stage_weight(uint32_t stage) const {
  // Edges of stage j carry weight (1/rate)^j; the final residue carries
  // (1/rate)^{#stages}. With rate = 1/4 this is the paper's 4^j.
  return std::pow(1.0 / cfg_.sample_rate, double(stage));
}

size_t DecrementalSparsifier::size() const {
  size_t s = final_.size();
  for (const auto& b : stages_) s += b->bundle_size();
  return s;
}

size_t DecrementalSparsifier::alive_edges() const {
  return stages_.empty() ? final_.size() : stages_[0]->alive_edges();
}

std::vector<WeightedEdge> DecrementalSparsifier::sparsifier_edges() const {
  std::vector<WeightedEdge> out;
  out.reserve(size());
  for (uint32_t j = 0; j < stages_.size(); ++j) {
    double w = stage_weight(j);
    for (const Edge& e : stages_[j]->bundle_edges()) out.push_back({e, w});
  }
  double wf = stage_weight(uint32_t(stages_.size()));
  for (EdgeKey ek : final_.sorted_keys())
    out.push_back({edge_from_key(ek), wf});
  return out;
}

WeightedDiff DecrementalSparsifier::delete_edges(
    const std::vector<Edge>& batch) {
  size_t K = stages_.size();
  std::vector<WEvent> events;

  // The two-round scheme below runs at every worker count, including one.
  // It is NOT interchangeable with the classic one-call-per-stage serial
  // chain: a bundle's J-retention makes its state depend on batch
  // *boundaries*, not just on the accumulated deletion set — an edge
  // transiently absorbed into B_j between the rounds is retained in J_j
  // forever, where the single-call chain would never have absorbed it.
  // Both evolutions satisfy every bundle/stage invariant, but they differ,
  // so the determinism contract (output independent of worker count)
  // requires one fixed decomposition; the rounds themselves are
  // schedule-independent because the stages are disjoint structures and
  // the cascade is serial.

  // glob[j]: batch edges surviving coins 0..j-1 — stage j's share of the
  // *global* deletions, computable up front.
  std::vector<std::vector<Edge>> glob(K + 1);
  glob[0] = batch;
  for (size_t j = 0; j < K; ++j) {
    glob[j + 1].reserve(glob[j].size() / 3);
    for (const Edge& e : glob[j])
      if (coin(e.key(), uint32_t(j))) glob[j + 1].push_back(e);
  }

  // Round 1 (parallel): the stages are independent structures, and their
  // global-deletion slices are known up front, so the expensive bundle
  // deletes fan out across stages (DESIGN.md §7.3).
  std::vector<SpannerDiff> d1(K);
  parallel_for(
      0, K, [&](size_t j) { d1[j] = stages_[j]->delete_edges(glob[j]); }, 1);

  // Round 2 (serial cascade): edges newly absorbed into B_j leave stage
  // j+1 and beyond. Each stage sees at most one cascade batch: the edges
  // absorbed at *any* earlier stage that survive the coin chain down to
  // it — the carry itself must keep propagating through each stage's coin
  // exactly like the serial `del` list, not just the freshly absorbed
  // edges (an edge absorbed at stage i and merely *deleted* at stage i+1
  // still has to leave stage i+2 if it passes coin i+1).
  std::vector<Edge> carry;  // absorbed upstream, coin-filtered to stage j
  for (size_t j = 0; j < K; ++j) {
    double w = stage_weight(uint32_t(j));
    emit(events, d1[j], w);
    SpannerDiff d2;
    if (!carry.empty()) {
      d2 = stages_[j]->delete_edges(carry);
      emit(events, d2, w);
    }
    std::vector<Edge> next;
    for (const Edge& e : carry)
      if (coin(e.key(), uint32_t(j))) next.push_back(e);
    for (const Edge& e : d1[j].inserted)
      if (coin(e.key(), uint32_t(j))) next.push_back(e);
    for (const Edge& e : d2.inserted)
      if (coin(e.key(), uint32_t(j))) next.push_back(e);
    carry = std::move(next);
  }

  // Final residue G_K: global deletions surviving every coin, plus the
  // last stage's absorption fallout.
  double wf = stage_weight(uint32_t(K));
  for (const Edge& e : glob[K])
    if (final_.erase(e.key())) events.push_back(wevent(e, wf, -1));
  for (const Edge& e : carry)
    if (final_.erase(e.key())) events.push_back(wevent(e, wf, -1));
  return net_weighted(events);
}

bool DecrementalSparsifier::check_invariants() const {
  for (const auto& b : stages_)
    if (!b->check_invariants()) return false;
  // Stage universes nest: stage j+1 alive ⊆ stage j residual ∩ coin_j.
  for (size_t j = 0; j + 1 < stages_.size(); ++j) {
    FlatHashSet<EdgeKey> resid;
    for (const Edge& e : stages_[j]->residual_edges())
      resid.insert(e.key());
    std::vector<EdgeKey> deeper;
    for (const Edge& e : stages_[j + 1]->bundle_edges())
      deeper.push_back(e.key());
    for (const Edge& e : stages_[j + 1]->residual_edges())
      deeper.push_back(e.key());
    for (EdgeKey ek : deeper) {
      if (!resid.contains(ek)) return false;
      if (!coin(ek, uint32_t(j))) return false;
    }
  }
  if (!stages_.empty()) {
    size_t last = stages_.size() - 1;
    FlatHashSet<EdgeKey> resid;
    for (const Edge& e : stages_[last]->residual_edges())
      resid.insert(e.key());
    bool ok = true;
    final_.for_each([&](EdgeKey ek) {
      if (!resid.contains(ek)) ok = false;
      if (!coin(ek, uint32_t(last))) ok = false;
    });
    if (!ok) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// FullyDynamicSparsifier (Theorem 1.6)
// ---------------------------------------------------------------------------

FullyDynamicSparsifier::FullyDynamicSparsifier(
    size_t n, const std::vector<Edge>& initial,
    const FullyDynamicSparsifierConfig& cfg)
    : n_(n), cfg_(cfg) {
  // Invariant B2: 2^{l0} >= n.
  l0_ = 0;
  while ((size_t{1} << l0_) < std::max<size_t>(n, 2)) ++l0_;
  std::vector<Edge> edges;
  for (const Edge& e : initial) {
    if (e.u == e.v || e.u >= n || e.v >= n) continue;
    if (index_.contains(e.key())) continue;
    index_[e.key()] = 0;
    edges.push_back(e);
  }
  size_t j = 0;
  while (capacity(j) < edges.size()) ++j;
  ensure_parts(j);
  for (const Edge& e : edges) {
    parts_[j].edges.insert(e.key());
    index_[e.key()] = uint32_t(j);
  }
  if (j > 0 && !edges.empty()) {
    SparsifierConfig sc = cfg_.stage;
    sc.seed = hash_combine(cfg_.seed, ++instance_counter_);
    parts_[j].sp = std::make_unique<DecrementalSparsifier>(n_, edges, sc);
  }
}

void FullyDynamicSparsifier::ensure_parts(size_t j) {
  while (parts_.size() <= j) parts_.emplace_back();
}

size_t FullyDynamicSparsifier::size() const {
  size_t s = 0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i == 0 || !parts_[i].sp)
      s += parts_[i].edges.size();
    else
      s += parts_[i].sp->size();
  }
  return s;
}

std::vector<WeightedEdge> FullyDynamicSparsifier::sparsifier_edges() const {
  std::vector<WeightedEdge> out;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i == 0 || !parts_[i].sp) {
      for (EdgeKey ek : parts_[i].edges.sorted_keys())
        out.push_back({edge_from_key(ek), 1.0});
    } else {
      auto h = parts_[i].sp->sparsifier_edges();
      out.insert(out.end(), h.begin(), h.end());
    }
  }
  return out;
}

void FullyDynamicSparsifier::rebuild_into(size_t j, size_t lo,
                                          const std::vector<Edge>& fresh,
                                          WeightedDiff& diff) {
  ensure_parts(j);
  assert(parts_[j].edges.empty());
  std::vector<Edge> merged = fresh;
  for (size_t i = lo; i < j; ++i) {
    Partition& p = parts_[i];
    if (p.edges.empty()) {
      p.sp.reset();
      continue;
    }
    std::vector<EdgeKey> keys = p.edges.sorted_keys();
    if (i == 0 || !p.sp) {
      for (EdgeKey ek : keys) diff.removed.push_back({edge_from_key(ek), 1.0});
    } else {
      auto h = p.sp->sparsifier_edges();
      diff.removed.insert(diff.removed.end(), h.begin(), h.end());
    }
    for (EdgeKey ek : keys) merged.push_back(edge_from_key(ek));
    p.edges.clear();
    p.sp.reset();
  }
  assert(merged.size() <= capacity(j));
  for (const Edge& e : merged) {
    parts_[j].edges.insert(e.key());
    index_[e.key()] = uint32_t(j);
  }
  if (j == 0) {
    for (const Edge& e : merged) diff.inserted.push_back({e, 1.0});
    return;
  }
  SparsifierConfig sc = cfg_.stage;
  sc.seed = hash_combine(cfg_.seed, ++instance_counter_);
  parts_[j].sp = std::make_unique<DecrementalSparsifier>(n_, merged, sc);
  auto h = parts_[j].sp->sparsifier_edges();
  diff.inserted.insert(diff.inserted.end(), h.begin(), h.end());
}

WeightedDiff FullyDynamicSparsifier::update(
    const std::vector<Edge>& insertions, const std::vector<Edge>& deletions) {
  WeightedDiff work;

  // Deletions routed through Index (serial), then applied per partition in
  // parallel — partitions are disjoint structures (§6.1's discipline), and
  // the per-partition diffs merge serially in partition order.
  std::vector<std::vector<Edge>> per_part(parts_.size());
  for (const Edge& e : deletions) {
    uint32_t* it = index_.find(e.key());
    if (it == nullptr) continue;
    per_part[*it].push_back(e);
    index_.erase(e.key());
  }
  std::vector<WeightedDiff> pdiffs(parts_.size());
  parallel_for(
      0, per_part.size(),
      [&](size_t i) {
        if (per_part[i].empty()) return;
        Partition& p = parts_[i];
        for (const Edge& e : per_part[i]) p.edges.erase(e.key());
        if (i == 0 || !p.sp) {
          for (const Edge& e : per_part[i])
            pdiffs[i].removed.push_back({e, 1.0});
        } else {
          pdiffs[i] = p.sp->delete_edges(per_part[i]);
        }
      },
      1);
  for (const WeightedDiff& d : pdiffs) {
    work.inserted.insert(work.inserted.end(), d.inserted.begin(),
                         d.inserted.end());
    work.removed.insert(work.removed.end(), d.removed.begin(),
                        d.removed.end());
  }

  // Insertions: Bentley-Saxe merge (as in Theorem 1.1, with B2 capacities).
  std::vector<Edge> u;
  for (const Edge& e : insertions) {
    if (e.u == e.v || e.u >= n_ || e.v >= n_) continue;
    if (index_.contains(e.key())) continue;
    index_[e.key()] = uint32_t(-1);
    u.push_back(e);
  }
  if (!u.empty()) {
    size_t remaining = u.size(), pos = 0;
    int bmax = 0;
    while (capacity(size_t(bmax) + 1) <= remaining) ++bmax;
    for (int i = bmax; i >= 0; --i) {
      size_t chunk = capacity(size_t(i));
      if (remaining < chunk) continue;
      std::vector<Edge> ui(u.begin() + pos, u.begin() + pos + chunk);
      pos += chunk;
      remaining -= chunk;
      size_t j = size_t(i);
      while (j < parts_.size() && !parts_[j].edges.empty()) ++j;
      rebuild_into(j, size_t(i), ui, work);
    }
    if (remaining > 0) {
      std::vector<Edge> ur(u.begin() + pos, u.end());
      ensure_parts(0);
      if (parts_[0].edges.size() + ur.size() <= capacity(0)) {
        for (const Edge& e : ur) {
          parts_[0].edges.insert(e.key());
          index_[e.key()] = 0;
          work.inserted.push_back({e, 1.0});
        }
      } else {
        size_t j = 0;
        while (j < parts_.size() && !parts_[j].edges.empty()) ++j;
        rebuild_into(j, 0, ur, work);
      }
    }
  }

  std::vector<WEvent> events;
  events.reserve(work.inserted.size() + work.removed.size());
  for (const WeightedEdge& we : work.inserted)
    events.push_back(wevent(we.e, we.w, +1));
  for (const WeightedEdge& we : work.removed)
    events.push_back(wevent(we.e, we.w, -1));
  return net_weighted(events);
}

bool FullyDynamicSparsifier::check_invariants() const {
  size_t total = 0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    const Partition& p = parts_[i];
    if (p.edges.size() > capacity(i)) return false;  // Invariant B2
    total += p.edges.size();
    bool ok = true;
    p.edges.for_each([&](EdgeKey ek) {
      const uint32_t* it = index_.find(ek);
      if (it == nullptr || *it != i) ok = false;
    });
    if (!ok) return false;
    if (i >= 1 && p.sp) {
      if (!p.sp->check_invariants()) return false;
      if (p.sp->alive_edges() != p.edges.size()) return false;
    }
    if (i >= 1 && !p.sp && !p.edges.empty()) return false;
  }
  return total == index_.size();
}

}  // namespace parspan
