#include "core/sparsifier.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <map>

#include "util/rng.hpp"

namespace parspan {

namespace {

/// Nets raw weighted-diff events by (edge, weight) pair.
WeightedDiff net_weighted(
    const std::vector<std::pair<WeightedEdge, int>>& events) {
  std::map<std::pair<EdgeKey, uint64_t>, int> acc;
  for (const auto& [we, sgn] : events) {
    uint64_t wbits;
    std::memcpy(&wbits, &we.w, sizeof(wbits));
    acc[{we.e.key(), wbits}] += sgn;
  }
  WeightedDiff out;
  for (const auto& [kw, c] : acc) {
    if (c == 0) continue;
    double w;
    std::memcpy(&w, &kw.second, sizeof(w));
    WeightedEdge we{edge_from_key(kw.first), w};
    assert(c == 1 || c == -1);
    if (c > 0) out.inserted.push_back(we);
    else out.removed.push_back(we);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// DecrementalSparsifier
// ---------------------------------------------------------------------------

DecrementalSparsifier::DecrementalSparsifier(size_t n,
                                             const std::vector<Edge>& edges,
                                             const SparsifierConfig& cfg)
    : n_(n), cfg_(cfg) {
  coin_seed_ = hash_combine(cfg.seed, 0xc01);
  uint32_t max_stages = cfg.max_stages;
  if (max_stages == 0) {
    size_t m = std::max<size_t>(edges.size(), 2);
    max_stages = uint32_t(std::ceil(std::log2(double(m)))) + 1;
  }
  std::vector<Edge> cur;
  std::unordered_set<EdgeKey> seen;
  for (const Edge& e : edges) {
    if (e.u == e.v || e.u >= n || e.v >= n) continue;
    if (seen.insert(e.key()).second) cur.push_back(e);
  }
  for (uint32_t j = 0; j < max_stages; ++j) {
    if (cur.size() <= cfg.min_stage_edges) break;
    BundleConfig bc;
    bc.t = cfg.t;
    bc.seed = hash_combine(cfg.seed, 0xb000 + j);
    bc.beta = cfg.beta;
    bc.instances = cfg.instances;
    stages_.push_back(std::make_unique<SpannerBundle>(n, cur, bc));
    std::vector<Edge> next;
    for (const Edge& e : stages_.back()->residual_edges())
      if (coin(e.key(), j)) next.push_back(e);
    cur = std::move(next);
  }
  for (const Edge& e : cur) final_.insert(e.key());
}

bool DecrementalSparsifier::coin(EdgeKey ek, uint32_t stage) const {
  uint64_t h = hash_combine(coin_seed_, ek * 64 + stage);
  return double(h >> 11) * 0x1.0p-53 < cfg_.sample_rate;
}

double DecrementalSparsifier::stage_weight(uint32_t stage) const {
  // Edges of stage j carry weight (1/rate)^j; the final residue carries
  // (1/rate)^{#stages}. With rate = 1/4 this is the paper's 4^j.
  return std::pow(1.0 / cfg_.sample_rate, double(stage));
}

size_t DecrementalSparsifier::size() const {
  size_t s = final_.size();
  for (const auto& b : stages_) s += b->bundle_size();
  return s;
}

size_t DecrementalSparsifier::alive_edges() const {
  return stages_.empty() ? final_.size() : stages_[0]->alive_edges();
}

std::vector<WeightedEdge> DecrementalSparsifier::sparsifier_edges() const {
  std::vector<WeightedEdge> out;
  out.reserve(size());
  for (uint32_t j = 0; j < stages_.size(); ++j) {
    double w = stage_weight(j);
    for (const Edge& e : stages_[j]->bundle_edges()) out.push_back({e, w});
  }
  double wf = stage_weight(uint32_t(stages_.size()));
  for (EdgeKey ek : final_) out.push_back({edge_from_key(ek), wf});
  return out;
}

WeightedDiff DecrementalSparsifier::delete_edges(
    const std::vector<Edge>& batch) {
  std::vector<std::pair<WeightedEdge, int>> events;
  std::vector<Edge> del = batch;
  for (uint32_t j = 0; j < stages_.size(); ++j) {
    SpannerDiff d = stages_[j]->delete_edges(del);
    double w = stage_weight(j);
    for (const Edge& e : d.removed) events.push_back({{e, w}, -1});
    for (const Edge& e : d.inserted) events.push_back({{e, w}, +1});
    // Propagate: deletions that survive the coin, plus edges newly absorbed
    // into B_j (they leave G_{j+1} and beyond).
    std::vector<Edge> next;
    for (const Edge& e : del)
      if (coin(e.key(), j)) next.push_back(e);
    for (const Edge& e : d.inserted)
      if (coin(e.key(), j)) next.push_back(e);
    del = std::move(next);
  }
  double wf = stage_weight(uint32_t(stages_.size()));
  for (const Edge& e : del)
    if (final_.erase(e.key())) events.push_back({{e, wf}, -1});
  return net_weighted(events);
}

bool DecrementalSparsifier::check_invariants() const {
  for (const auto& b : stages_)
    if (!b->check_invariants()) return false;
  // Stage universes nest: stage j+1 alive ⊆ stage j residual ∩ coin_j.
  for (size_t j = 0; j + 1 < stages_.size(); ++j) {
    std::unordered_set<EdgeKey> resid;
    for (const Edge& e : stages_[j]->residual_edges())
      resid.insert(e.key());
    std::unordered_set<EdgeKey> deeper;
    for (const Edge& e : stages_[j + 1]->bundle_edges())
      deeper.insert(e.key());
    for (const Edge& e : stages_[j + 1]->residual_edges())
      deeper.insert(e.key());
    for (EdgeKey ek : deeper) {
      if (!resid.count(ek)) return false;
      if (!coin(ek, uint32_t(j))) return false;
    }
  }
  if (!stages_.empty()) {
    size_t last = stages_.size() - 1;
    std::unordered_set<EdgeKey> resid;
    for (const Edge& e : stages_[last]->residual_edges())
      resid.insert(e.key());
    for (EdgeKey ek : final_) {
      if (!resid.count(ek)) return false;
      if (!coin(ek, uint32_t(last))) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// FullyDynamicSparsifier (Theorem 1.6)
// ---------------------------------------------------------------------------

FullyDynamicSparsifier::FullyDynamicSparsifier(
    size_t n, const std::vector<Edge>& initial,
    const FullyDynamicSparsifierConfig& cfg)
    : n_(n), cfg_(cfg) {
  // Invariant B2: 2^{l0} >= n.
  l0_ = 0;
  while ((size_t{1} << l0_) < std::max<size_t>(n, 2)) ++l0_;
  std::vector<Edge> edges;
  for (const Edge& e : initial) {
    if (e.u == e.v || e.u >= n || e.v >= n) continue;
    if (index_.count(e.key())) continue;
    index_[e.key()] = 0;
    edges.push_back(e);
  }
  size_t j = 0;
  while (capacity(j) < edges.size()) ++j;
  ensure_parts(j);
  for (const Edge& e : edges) {
    parts_[j].edges.insert(e.key());
    index_[e.key()] = uint32_t(j);
  }
  if (j > 0 && !edges.empty()) {
    SparsifierConfig sc = cfg_.stage;
    sc.seed = hash_combine(cfg_.seed, ++instance_counter_);
    parts_[j].sp = std::make_unique<DecrementalSparsifier>(n_, edges, sc);
  }
}

void FullyDynamicSparsifier::ensure_parts(size_t j) {
  while (parts_.size() <= j) parts_.emplace_back();
}

size_t FullyDynamicSparsifier::size() const {
  size_t s = 0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i == 0 || !parts_[i].sp)
      s += parts_[i].edges.size();
    else
      s += parts_[i].sp->size();
  }
  return s;
}

std::vector<WeightedEdge> FullyDynamicSparsifier::sparsifier_edges() const {
  std::vector<WeightedEdge> out;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i == 0 || !parts_[i].sp) {
      for (EdgeKey ek : parts_[i].edges)
        out.push_back({edge_from_key(ek), 1.0});
    } else {
      auto h = parts_[i].sp->sparsifier_edges();
      out.insert(out.end(), h.begin(), h.end());
    }
  }
  return out;
}

void FullyDynamicSparsifier::rebuild_into(size_t j, size_t lo,
                                          const std::vector<Edge>& fresh,
                                          WeightedDiff& diff) {
  ensure_parts(j);
  assert(parts_[j].edges.empty());
  std::vector<Edge> merged = fresh;
  for (size_t i = lo; i < j; ++i) {
    Partition& p = parts_[i];
    if (p.edges.empty()) {
      p.sp.reset();
      continue;
    }
    if (i == 0 || !p.sp) {
      for (EdgeKey ek : p.edges)
        diff.removed.push_back({edge_from_key(ek), 1.0});
    } else {
      auto h = p.sp->sparsifier_edges();
      diff.removed.insert(diff.removed.end(), h.begin(), h.end());
    }
    for (EdgeKey ek : p.edges) merged.push_back(edge_from_key(ek));
    p.edges.clear();
    p.sp.reset();
  }
  assert(merged.size() <= capacity(j));
  for (const Edge& e : merged) {
    parts_[j].edges.insert(e.key());
    index_[e.key()] = uint32_t(j);
  }
  if (j == 0) {
    for (const Edge& e : merged) diff.inserted.push_back({e, 1.0});
    return;
  }
  SparsifierConfig sc = cfg_.stage;
  sc.seed = hash_combine(cfg_.seed, ++instance_counter_);
  parts_[j].sp = std::make_unique<DecrementalSparsifier>(n_, merged, sc);
  auto h = parts_[j].sp->sparsifier_edges();
  diff.inserted.insert(diff.inserted.end(), h.begin(), h.end());
}

WeightedDiff FullyDynamicSparsifier::update(
    const std::vector<Edge>& insertions, const std::vector<Edge>& deletions) {
  std::vector<std::pair<WeightedEdge, int>> events;
  WeightedDiff work;

  // Deletions routed through Index.
  std::vector<std::vector<Edge>> per_part(parts_.size());
  for (const Edge& e : deletions) {
    auto it = index_.find(e.key());
    if (it == index_.end()) continue;
    per_part[it->second].push_back(e);
    index_.erase(it);
  }
  for (size_t i = 0; i < per_part.size(); ++i) {
    if (per_part[i].empty()) continue;
    Partition& p = parts_[i];
    for (const Edge& e : per_part[i]) p.edges.erase(e.key());
    if (i == 0 || !p.sp) {
      for (const Edge& e : per_part[i]) work.removed.push_back({e, 1.0});
    } else {
      WeightedDiff d = p.sp->delete_edges(per_part[i]);
      work.inserted.insert(work.inserted.end(), d.inserted.begin(),
                           d.inserted.end());
      work.removed.insert(work.removed.end(), d.removed.begin(),
                          d.removed.end());
    }
  }

  // Insertions: Bentley-Saxe merge (as in Theorem 1.1, with B2 capacities).
  std::vector<Edge> u;
  for (const Edge& e : insertions) {
    if (e.u == e.v || e.u >= n_ || e.v >= n_) continue;
    if (index_.count(e.key())) continue;
    index_[e.key()] = uint32_t(-1);
    u.push_back(e);
  }
  if (!u.empty()) {
    size_t remaining = u.size(), pos = 0;
    int bmax = 0;
    while (capacity(size_t(bmax) + 1) <= remaining) ++bmax;
    for (int i = bmax; i >= 0; --i) {
      size_t chunk = capacity(size_t(i));
      if (remaining < chunk) continue;
      std::vector<Edge> ui(u.begin() + pos, u.begin() + pos + chunk);
      pos += chunk;
      remaining -= chunk;
      size_t j = size_t(i);
      while (j < parts_.size() && !parts_[j].edges.empty()) ++j;
      rebuild_into(j, size_t(i), ui, work);
    }
    if (remaining > 0) {
      std::vector<Edge> ur(u.begin() + pos, u.end());
      ensure_parts(0);
      if (parts_[0].edges.size() + ur.size() <= capacity(0)) {
        for (const Edge& e : ur) {
          parts_[0].edges.insert(e.key());
          index_[e.key()] = 0;
          work.inserted.push_back({e, 1.0});
        }
      } else {
        size_t j = 0;
        while (j < parts_.size() && !parts_[j].edges.empty()) ++j;
        rebuild_into(j, 0, ur, work);
      }
    }
  }

  for (const WeightedEdge& we : work.inserted) events.push_back({we, +1});
  for (const WeightedEdge& we : work.removed) events.push_back({we, -1});
  return net_weighted(events);
}

bool FullyDynamicSparsifier::check_invariants() const {
  size_t total = 0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    const Partition& p = parts_[i];
    if (p.edges.size() > capacity(i)) return false;  // Invariant B2
    total += p.edges.size();
    for (EdgeKey ek : p.edges) {
      auto it = index_.find(ek);
      if (it == index_.end() || it->second != i) return false;
    }
    if (i >= 1 && p.sp) {
      if (!p.sp->check_invariants()) return false;
      if (p.sp->alive_edges() != p.edges.size()) return false;
    }
    if (i >= 1 && !p.sp && !p.edges.empty()) return false;
  }
  return total == index_.size();
}

}  // namespace parspan
