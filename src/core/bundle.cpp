#include "core/bundle.hpp"

#include <cassert>

#include "util/rng.hpp"

namespace parspan {

SpannerBundle::SpannerBundle(size_t n, const std::vector<Edge>& edges,
                             const BundleConfig& cfg)
    : n_(n), cfg_(cfg) {
  for (const Edge& e : edges)
    if (e.u != e.v && e.u < n && e.v < n) alive_.insert(e.key());

  // Build levels: D_i over G minus the previous levels' H sets.
  std::vector<Edge> remaining;
  remaining.reserve(alive_.size());
  for (EdgeKey ek : alive_) remaining.push_back(edge_from_key(ek));
  levels_.reserve(cfg.t);
  for (uint32_t i = 0; i < cfg.t; ++i) {
    Level lvl;
    MonotoneSpannerConfig mc;
    mc.seed = hash_combine(cfg.seed, 0x10000 + i);
    mc.beta = cfg.beta;
    mc.instances = cfg.instances;
    lvl.spanner = std::make_unique<MonotoneSpanner>(n, remaining, mc);
    std::vector<Edge> next;
    std::unordered_set<EdgeKey> in_h;
    for (const Edge& e : lvl.spanner->spanner_edges()) {
      in_h.insert(e.key());
      auto inserted = contrib_.emplace(e.key(), i).second;
      assert(inserted);
      (void)inserted;
    }
    for (const Edge& e : remaining)
      if (!in_h.count(e.key())) next.push_back(e);
    levels_.push_back(std::move(lvl));
    remaining = std::move(next);
    if (remaining.empty()) break;
  }
}

std::vector<Edge> SpannerBundle::bundle_edges() const {
  std::vector<Edge> out;
  out.reserve(contrib_.size());
  for (auto& [ek, lvl] : contrib_) out.push_back(edge_from_key(ek));
  return out;
}

std::vector<Edge> SpannerBundle::level_edges(size_t i) const {
  std::vector<Edge> out = levels_[i].spanner->spanner_edges();
  for (EdgeKey ek : levels_[i].retained) out.push_back(edge_from_key(ek));
  return out;
}

std::vector<Edge> SpannerBundle::residual_edges() const {
  std::vector<Edge> out;
  for (EdgeKey ek : alive_)
    if (!contrib_.count(ek)) out.push_back(edge_from_key(ek));
  return out;
}

SpannerDiff SpannerBundle::delete_edges(const std::vector<Edge>& batch) {
  // Deduplicate & filter to alive edges.
  std::vector<Edge> global;
  std::unordered_set<EdgeKey> global_set;
  for (const Edge& e : batch) {
    if (!alive_.count(e.key()) || global_set.count(e.key())) continue;
    global_set.insert(e.key());
    global.push_back(e);
    alive_.erase(e.key());
  }

  std::unordered_map<EdgeKey, int32_t> delta;
  std::vector<Edge> down = global;  // deletions to apply at this level
  std::unordered_set<EdgeKey> down_set = global_set;
  for (size_t i = 0; i < levels_.size(); ++i) {
    Level& lvl = levels_[i];
    SpannerDiff d = lvl.spanner->delete_edges(down);
    // Edges absorbed into H_i this round; they must leave *every* deeper
    // level, so they are appended to the accumulating `down` list.
    std::vector<Edge> absorbed;
    for (const Edge& e : d.removed) {
      if (global_set.count(e.key())) {
        // Globally deleted: leaves H_i for good.
        assert(contrib_.count(e.key()));
        contrib_.erase(e.key());
        --delta[e.key()];
      } else if (down_set.count(e.key())) {
        // Removed because an earlier level absorbed it this batch; its
        // contrib entry already points to that level. Not retained here.
        assert(contrib_.count(e.key()) &&
               contrib_.at(e.key()) < uint32_t(i));
      } else {
        // Still alive: retained in J_i, stays in the bundle.
        lvl.retained.insert(e.key());
      }
    }
    for (const Edge& e : d.inserted) {
      if (lvl.retained.erase(e.key())) {
        // Re-entered D_i's spanner from J_i: bundle membership unchanged,
        // and it is already absent downstream.
        continue;
      }
      auto it = contrib_.find(e.key());
      if (it != contrib_.end()) {
        // Currently held by a *deeper* level (it was alive in D_i all
        // along): move it up to level i and evict it downstream.
        assert(it->second > uint32_t(i));
        it->second = uint32_t(i);
      } else {
        contrib_.emplace(e.key(), uint32_t(i));
        ++delta[e.key()];
      }
      absorbed.push_back(e);  // must leave G_{i+1}, ..., and deeper H's
    }
    // J_i cleanup: edges deleted at this level leave J_i. Globally deleted
    // ones leave the bundle; upstream-absorbed ones were remapped already.
    for (const Edge& e : down) {
      if (lvl.retained.erase(e.key())) {
        if (global_set.count(e.key())) {
          assert(contrib_.count(e.key()));
          contrib_.erase(e.key());
          --delta[e.key()];
        } else {
          assert(contrib_.count(e.key()) &&
                 contrib_.at(e.key()) < uint32_t(i));
        }
      }
    }
    for (const Edge& e : absorbed) {
      down.push_back(e);
      down_set.insert(e.key());
    }
  }

  SpannerDiff diff;
  for (auto& [ek, d] : delta) {
    assert(d >= -1 && d <= 1);
    if (d > 0) diff.inserted.push_back(edge_from_key(ek));
    if (d < 0) diff.removed.push_back(edge_from_key(ek));
  }
  cumulative_recourse_ += diff.inserted.size() + diff.removed.size();
  return diff;
}

bool SpannerBundle::check_invariants() const {
  // Per-level invariants and bundle refcount consistency.
  std::unordered_map<EdgeKey, uint32_t> expect;
  for (size_t i = 0; i < levels_.size(); ++i) {
    const Level& lvl = levels_[i];
    if (!lvl.spanner->check_invariants()) return false;
    for (const Edge& e : lvl.spanner->spanner_edges()) {
      if (lvl.retained.count(e.key())) return false;  // J ∩ spanner = ∅
      if (!expect.emplace(e.key(), uint32_t(i)).second)
        return false;  // levels must be disjoint
    }
    for (EdgeKey ek : lvl.retained) {
      if (!alive_.count(ek)) return false;  // J contains only alive edges
      if (!expect.emplace(ek, uint32_t(i)).second) return false;
    }
  }
  if (expect.size() != contrib_.size()) return false;
  for (auto& [ek, lvl] : expect) {
    auto it = contrib_.find(ek);
    if (it == contrib_.end() || it->second != lvl) return false;
    if (!alive_.count(ek)) return false;  // bundle ⊆ alive
  }
  return true;
}

}  // namespace parspan
