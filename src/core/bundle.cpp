#include "core/bundle.hpp"

#include <cassert>

#include "parallel/csr.hpp"
#include "util/rng.hpp"

namespace parspan {

SpannerBundle::SpannerBundle(size_t n, const std::vector<Edge>& edges,
                             const BundleConfig& cfg)
    : n_(n), cfg_(cfg) {
  // Canonicalize once; the level-0 universe is the deduplicated edge set.
  std::vector<EdgeKey> keys = canonical_edge_keys(n, edges);
  alive_.reserve(keys.size());
  for (EdgeKey ek : keys) alive_.insert(ek);

  // Build levels: D_i over G minus the previous levels' H sets. The chain
  // is serial in i (level i+1's graph is level i's residual); each level's
  // MonotoneSpanner parallelizes over its own instances.
  std::vector<Edge> remaining;
  remaining.reserve(keys.size());
  for (EdgeKey ek : keys) remaining.push_back(edge_from_key(ek));
  levels_.reserve(cfg.t);
  for (uint32_t i = 0; i < cfg.t; ++i) {
    Level lvl;
    MonotoneSpannerConfig mc;
    mc.seed = hash_combine(cfg.seed, 0x10000 + i);
    mc.beta = cfg.beta;
    mc.instances = cfg.instances;
    lvl.spanner = std::make_unique<MonotoneSpanner>(n, remaining, mc);
    FlatHashSet<EdgeKey> in_h;
    for (const Edge& e : lvl.spanner->spanner_edges()) {
      in_h.insert(e.key());
      assert(!contrib_.contains(e.key()));
      contrib_[e.key()] = i;
    }
    std::vector<Edge> next;
    next.reserve(remaining.size() - in_h.size());
    for (const Edge& e : remaining)
      if (!in_h.contains(e.key())) next.push_back(e);
    levels_.push_back(std::move(lvl));
    remaining = std::move(next);
    if (remaining.empty()) break;
  }
}

std::vector<Edge> SpannerBundle::bundle_edges() const {
  std::vector<EdgeKey> keys = contrib_.sorted_keys();
  std::vector<Edge> out;
  out.reserve(keys.size());
  for (EdgeKey ek : keys) out.push_back(edge_from_key(ek));
  return out;
}

std::vector<Edge> SpannerBundle::level_edges(size_t i) const {
  std::vector<Edge> out = levels_[i].spanner->spanner_edges();
  for (EdgeKey ek : levels_[i].retained.sorted_keys())
    out.push_back(edge_from_key(ek));
  return out;
}

std::vector<Edge> SpannerBundle::residual_edges() const {
  std::vector<Edge> out;
  for (EdgeKey ek : alive_.sorted_keys())
    if (!contrib_.contains(ek)) out.push_back(edge_from_key(ek));
  return out;
}

SpannerDiff SpannerBundle::delete_edges(const std::vector<Edge>& batch) {
  // Deduplicate & filter to alive edges.
  std::vector<Edge> global;
  FlatHashSet<EdgeKey> global_set;
  for (const Edge& e : batch) {
    if (!alive_.contains(e.key()) || global_set.contains(e.key())) continue;
    global_set.insert(e.key());
    global.push_back(e);
    alive_.erase(e.key());
  }

  assert(delta_.empty());
  std::vector<Edge> down = global;  // deletions to apply at this level
  FlatHashSet<EdgeKey> down_set;
  for (const Edge& e : global) down_set.insert(e.key());
  for (size_t i = 0; i < levels_.size(); ++i) {
    Level& lvl = levels_[i];
    SpannerDiff d = lvl.spanner->delete_edges(down);
    // Edges absorbed into H_i this round; they must leave *every* deeper
    // level, so they are appended to the accumulating `down` list.
    std::vector<Edge> absorbed;
    for (const Edge& e : d.removed) {
      if (global_set.contains(e.key())) {
        // Globally deleted: leaves H_i for good.
        assert(contrib_.contains(e.key()));
        contrib_.erase(e.key());
        delta_.remove(e.key());
      } else if (down_set.contains(e.key())) {
        // Removed because an earlier level absorbed it this batch; its
        // contrib entry already points to that level. Not retained here.
        assert(contrib_.contains(e.key()) &&
               *contrib_.find(e.key()) < uint32_t(i));
      } else {
        // Still alive: retained in J_i, stays in the bundle.
        lvl.retained.insert(e.key());
      }
    }
    for (const Edge& e : d.inserted) {
      if (lvl.retained.erase(e.key())) {
        // Re-entered D_i's spanner from J_i: bundle membership unchanged,
        // and it is already absent downstream.
        continue;
      }
      uint32_t* it = contrib_.find(e.key());
      if (it != nullptr) {
        // Currently held by a *deeper* level (it was alive in D_i all
        // along): move it up to level i and evict it downstream.
        assert(*it > uint32_t(i));
        *it = uint32_t(i);
      } else {
        contrib_[e.key()] = uint32_t(i);
        delta_.add(e.key());
      }
      absorbed.push_back(e);  // must leave G_{i+1}, ..., and deeper H's
    }
    // J_i cleanup: edges deleted at this level leave J_i. Globally deleted
    // ones leave the bundle; upstream-absorbed ones were remapped already.
    for (const Edge& e : down) {
      if (lvl.retained.erase(e.key())) {
        if (global_set.contains(e.key())) {
          assert(contrib_.contains(e.key()));
          contrib_.erase(e.key());
          delta_.remove(e.key());
        } else {
          assert(contrib_.contains(e.key()) &&
                 *contrib_.find(e.key()) < uint32_t(i));
        }
      }
    }
    for (const Edge& e : absorbed) {
      down.push_back(e);
      down_set.insert(e.key());
    }
  }

  SpannerDiff diff = delta_.drain();
  cumulative_recourse_ += diff.inserted.size() + diff.removed.size();
  return diff;
}

bool SpannerBundle::check_invariants() const {
  // Per-level invariants and bundle refcount consistency.
  FlatHashMap<EdgeKey, uint32_t> expect;
  for (size_t i = 0; i < levels_.size(); ++i) {
    const Level& lvl = levels_[i];
    if (!lvl.spanner->check_invariants()) return false;
    for (const Edge& e : lvl.spanner->spanner_edges()) {
      if (lvl.retained.contains(e.key())) return false;  // J ∩ spanner = ∅
      if (expect.contains(e.key())) return false;  // levels must be disjoint
      expect[e.key()] = uint32_t(i);
    }
    bool ok = true;
    lvl.retained.for_each([&](EdgeKey ek) {
      if (!alive_.contains(ek)) ok = false;  // J contains only alive edges
      if (expect.contains(ek)) ok = false;
      expect[ek] = uint32_t(i);
    });
    if (!ok) return false;
  }
  if (expect.size() != contrib_.size()) return false;
  bool ok = true;
  expect.for_each([&](EdgeKey ek, uint32_t lvl) {
    const uint32_t* it = contrib_.find(ek);
    if (it == nullptr || *it != lvl) ok = false;
    if (!alive_.contains(ek)) ok = false;  // bundle ⊆ alive
  });
  return ok;
}

}  // namespace parspan
