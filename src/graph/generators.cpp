#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "parallel/primitives.hpp"

namespace parspan {

namespace {

/// Deduplicates by canonical key, drops self-loops.
std::vector<Edge> canonicalize(std::vector<EdgeKey> keys) {
  sort_unique(keys);
  std::vector<Edge> out;
  out.reserve(keys.size());
  for (EdgeKey k : keys) {
    Edge e = edge_from_key(k);
    if (e.u != e.v) out.push_back(e);
  }
  return out;
}

}  // namespace

std::vector<Edge> gen_erdos_renyi(size_t n, size_t m, uint64_t seed) {
  assert(n >= 2);
  size_t max_m = n * (n - 1) / 2;
  m = std::min(m, max_m);
  Rng rng(seed);
  std::unordered_set<EdgeKey> chosen;
  chosen.reserve(2 * m);
  // Rejection sampling is fine while m << n^2; fall back to dense shuffle
  // when the graph is dense.
  if (m * 3 < max_m) {
    while (chosen.size() < m) {
      VertexId u = VertexId(rng.next_below(n));
      VertexId v = VertexId(rng.next_below(n));
      if (u == v) continue;
      chosen.insert(edge_key(u, v));
    }
    std::vector<EdgeKey> keys(chosen.begin(), chosen.end());
    return canonicalize(std::move(keys));
  }
  std::vector<EdgeKey> all;
  all.reserve(max_m);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) all.push_back(edge_key(u, v));
  for (size_t i = all.size(); i > 1; --i)
    std::swap(all[i - 1], all[rng.next_below(i)]);
  all.resize(m);
  return canonicalize(std::move(all));
}

std::vector<Edge> gen_rmat(size_t n, size_t m, uint64_t seed, double a,
                           double b, double c) {
  size_t bits = 1;
  while ((size_t{1} << bits) < n) ++bits;
  Rng rng(seed);
  std::unordered_set<EdgeKey> chosen;
  chosen.reserve(2 * m);
  size_t attempts = 0, max_attempts = 100 * m + 1000;
  while (chosen.size() < m && attempts++ < max_attempts) {
    size_t u = 0, v = 0;
    for (size_t i = 0; i < bits; ++i) {
      double r = rng.next_double();
      size_t ubit = (r >= a + b) ? 1 : 0;
      size_t vbit = (r >= a && r < a + b) || (r >= a + b + c) ? 1 : 0;
      u = (u << 1) | ubit;
      v = (v << 1) | vbit;
    }
    if (u >= n || v >= n || u == v) continue;
    chosen.insert(edge_key(VertexId(u), VertexId(v)));
  }
  std::vector<EdgeKey> keys(chosen.begin(), chosen.end());
  return canonicalize(std::move(keys));
}

std::vector<Edge> gen_grid(size_t rows, size_t cols) {
  std::vector<Edge> out;
  out.reserve(2 * rows * cols);
  auto id = [&](size_t r, size_t c) { return VertexId(r * cols + c); };
  for (size_t r = 0; r < rows; ++r)
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) out.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) out.emplace_back(id(r, c), id(r + 1, c));
    }
  return out;
}

std::vector<Edge> gen_cycle(size_t n) {
  std::vector<Edge> out = gen_path(n);
  if (n >= 3) out.emplace_back(VertexId(n - 1), VertexId(0));
  return out;
}

std::vector<Edge> gen_path(size_t n) {
  std::vector<Edge> out;
  out.reserve(n);
  for (size_t i = 0; i + 1 < n; ++i)
    out.emplace_back(VertexId(i), VertexId(i + 1));
  return out;
}

std::vector<Edge> gen_complete(size_t n) {
  std::vector<Edge> out;
  out.reserve(n * (n - 1) / 2);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) out.emplace_back(u, v);
  return out;
}

std::vector<Edge> gen_star(size_t n) {
  std::vector<Edge> out;
  out.reserve(n > 0 ? n - 1 : 0);
  for (VertexId v = 1; v < n; ++v) out.emplace_back(VertexId(0), v);
  return out;
}

std::vector<Edge> gen_random_regular(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<EdgeKey> keys;
  std::vector<VertexId> perm(n);
  for (size_t round = 0; round < (d + 1) / 2; ++round) {
    for (size_t i = 0; i < n; ++i) perm[i] = VertexId(i);
    for (size_t i = n; i > 1; --i)
      std::swap(perm[i - 1], perm[rng.next_below(i)]);
    // Hamiltonian cycle over the permutation contributes degree 2.
    for (size_t i = 0; i < n; ++i) {
      VertexId u = perm[i], v = perm[(i + 1) % n];
      if (u != v) keys.push_back(edge_key(u, v));
    }
  }
  return canonicalize(std::move(keys));
}

std::vector<UpdateBatch> gen_decremental_stream(std::vector<Edge> edges,
                                                size_t batch_size,
                                                uint64_t seed) {
  Rng rng(seed);
  for (size_t i = edges.size(); i > 1; --i)
    std::swap(edges[i - 1], edges[rng.next_below(i)]);
  std::vector<UpdateBatch> out;
  for (size_t lo = 0; lo < edges.size(); lo += batch_size) {
    UpdateBatch b;
    size_t hi = std::min(edges.size(), lo + batch_size);
    b.deletions.assign(edges.begin() + lo, edges.begin() + hi);
    out.push_back(std::move(b));
  }
  return out;
}

std::pair<std::vector<Edge>, std::vector<UpdateBatch>> gen_sliding_window(
    size_t n, size_t universe_m, size_t window, size_t batch_size,
    size_t num_batches, uint64_t seed) {
  std::vector<Edge> universe = gen_erdos_renyi(n, universe_m, seed);
  Rng rng(seed ^ 0xabcdef);
  for (size_t i = universe.size(); i > 1; --i)
    std::swap(universe[i - 1], universe[rng.next_below(i)]);
  window = std::min(window, universe.size());
  std::vector<Edge> initial(universe.begin(), universe.begin() + window);
  std::vector<UpdateBatch> batches;
  size_t head = window;  // next unseen edge
  size_t tail = 0;       // oldest live edge
  for (size_t b = 0; b < num_batches; ++b) {
    UpdateBatch ub;
    for (size_t i = 0; i < batch_size && head < universe.size(); ++i)
      ub.insertions.push_back(universe[head++]);
    for (size_t i = 0; i < batch_size && tail < head; ++i)
      ub.deletions.push_back(universe[tail++]);
    if (ub.insertions.empty() && ub.deletions.empty()) break;
    batches.push_back(std::move(ub));
  }
  return {std::move(initial), std::move(batches)};
}

std::pair<std::vector<Edge>, std::vector<UpdateBatch>> gen_mixed_stream(
    size_t n, size_t initial_m, size_t batch_size, size_t num_batches,
    uint64_t seed) {
  std::vector<Edge> initial = gen_erdos_renyi(n, initial_m, seed);
  Rng rng(seed ^ 0x5eed);
  std::unordered_set<EdgeKey> live;
  for (const Edge& e : initial) live.insert(e.key());
  std::vector<EdgeKey> live_vec(live.begin(), live.end());
  std::vector<UpdateBatch> batches;
  for (size_t b = 0; b < num_batches; ++b) {
    UpdateBatch ub;
    size_t half = batch_size / 2;
    // Deletions: random live edges.
    for (size_t i = 0; i < half && !live_vec.empty(); ++i) {
      size_t j = rng.next_below(live_vec.size());
      EdgeKey k = live_vec[j];
      live_vec[j] = live_vec.back();
      live_vec.pop_back();
      if (!live.erase(k)) {
        --i;
        continue;
      }
      ub.deletions.push_back(edge_from_key(k));
    }
    // Insertions: random absent edges.
    size_t inserted = 0, guard = 0;
    while (inserted < half && guard++ < 100 * half + 100) {
      VertexId u = VertexId(rng.next_below(n));
      VertexId v = VertexId(rng.next_below(n));
      if (u == v) continue;
      EdgeKey k = edge_key(u, v);
      if (live.count(k)) continue;
      live.insert(k);
      live_vec.push_back(k);
      ub.insertions.push_back(edge_from_key(k));
      ++inserted;
    }
    batches.push_back(std::move(ub));
  }
  return {std::move(initial), std::move(batches)};
}

}  // namespace parspan
