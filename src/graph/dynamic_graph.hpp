// DynamicGraph: a simple undirected graph under batch edge insertions and
// deletions. This is the "input graph" substrate all batch-dynamic
// structures observe. Adjacency is stored as per-vertex dense vectors with
// a position index for O(1) removal; batches are applied with per-vertex
// parallelism (each endpoint's adjacency touched by exactly one task).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/types.hpp"

namespace parspan {

class DynamicGraph {
 public:
  /// Creates an edgeless graph on n vertices.
  explicit DynamicGraph(size_t n = 0) : adj_(n), pos_(n) {}

  size_t num_vertices() const { return adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Degree of v.
  size_t degree(VertexId v) const { return adj_[v].size(); }

  /// Neighbors of v (unordered; invalidated by updates).
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adj_[v].data(), adj_[v].size()};
  }

  /// True iff the undirected edge {u, v} is present.
  bool has_edge(VertexId u, VertexId v) const {
    if (u == v) return false;
    const auto& p = degree(u) <= degree(v) ? pos_[u] : pos_[v];
    VertexId other = degree(u) <= degree(v) ? v : u;
    return p.find(other) != p.end();
  }

  /// Inserts a batch of edges. Self-loops, duplicates within the batch, and
  /// edges already present are filtered out. Returns the edges actually
  /// inserted (canonical orientation).
  std::vector<Edge> insert_edges(const std::vector<Edge>& batch);

  /// Deletes a batch of edges; absent edges are ignored. Returns the edges
  /// actually removed (canonical orientation).
  std::vector<Edge> erase_edges(const std::vector<Edge>& batch);

  /// Visits every edge once (u < v order).
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    for (VertexId u = 0; u < adj_.size(); ++u)
      for (VertexId v : adj_[u])
        if (u < v) fn(Edge(u, v));
  }

  /// All edges as a vector (u < v).
  std::vector<Edge> edges() const {
    std::vector<Edge> out;
    out.reserve(num_edges_);
    for_each_edge([&](Edge e) { out.push_back(e); });
    return out;
  }

 private:
  void add_arc(VertexId u, VertexId v) {
    pos_[u].emplace(v, static_cast<uint32_t>(adj_[u].size()));
    adj_[u].push_back(v);
  }
  void remove_arc(VertexId u, VertexId v) {
    auto it = pos_[u].find(v);
    uint32_t i = it->second;
    VertexId last = adj_[u].back();
    adj_[u][i] = last;
    pos_[u][last] = i;
    adj_[u].pop_back();
    pos_[u].erase(it);
  }

  std::vector<std::vector<VertexId>> adj_;
  std::vector<std::unordered_map<VertexId, uint32_t>> pos_;
  size_t num_edges_ = 0;
};

}  // namespace parspan
