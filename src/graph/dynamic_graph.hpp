// DynamicGraph: a simple undirected graph under batch edge insertions and
// deletions. This is the "input graph" substrate all batch-dynamic
// structures observe.
//
// Adjacency is stored as per-vertex dense vectors. Instead of a per-vertex
// std::unordered_map position index (one node allocation and pointer chase
// per arc), a single flat open-addressing table maps each edge key to the
// packed positions of its two arcs, giving O(1) membership tests and O(1)
// swap-removal with no allocation per arc (DESIGN.md §2). Batches are
// canonicalized and deduplicated with the parallel sort primitives; the
// application sweep itself is a serial O(1)-per-arc scan over the flat
// table (see DESIGN.md §2 for the parallelization trade-off).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "container/flat_map.hpp"
#include "util/types.hpp"

namespace parspan {

class DynamicGraph {
 public:
  /// Creates an edgeless graph on n vertices.
  explicit DynamicGraph(size_t n = 0) : adj_(n) {}

  size_t num_vertices() const { return adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Degree of v.
  size_t degree(VertexId v) const { return adj_[v].size(); }

  /// Neighbors of v (unordered; invalidated by updates).
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adj_[v].data(), adj_[v].size()};
  }

  /// True iff the undirected edge {u, v} is present.
  bool has_edge(VertexId u, VertexId v) const {
    return u != v && pos_.contains(edge_key(u, v));
  }

  /// Inserts a batch of edges. Self-loops, duplicates within the batch, and
  /// edges already present are filtered out. Returns the edges actually
  /// inserted (canonical orientation).
  std::vector<Edge> insert_edges(const std::vector<Edge>& batch);

  /// Deletes a batch of edges; absent edges are ignored. Returns the edges
  /// actually removed (canonical orientation).
  std::vector<Edge> erase_edges(const std::vector<Edge>& batch);

  /// Visits every edge once (u < v order).
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    for (VertexId u = 0; u < adj_.size(); ++u)
      for (VertexId v : adj_[u])
        if (u < v) fn(Edge(u, v));
  }

  /// All edges as a vector (u < v).
  std::vector<Edge> edges() const {
    std::vector<Edge> out;
    out.reserve(num_edges_);
    for_each_edge([&](Edge e) { out.push_back(e); });
    return out;
  }

 private:
  /// Packed arc positions of edge {lo, hi} (lo < hi): high word is the
  /// position of hi within adj_[lo], low word the position of lo within
  /// adj_[hi].
  static uint64_t pack_pos(uint32_t pos_in_lo, uint32_t pos_in_hi) {
    return (static_cast<uint64_t>(pos_in_lo) << 32) | pos_in_hi;
  }

  /// Swap-removes slot i of adj_[x], repairing the moved neighbor's stored
  /// position.
  void remove_arc_slot(VertexId x, uint32_t i);

  /// Canonicalizes a batch: drops self-loops/out-of-range endpoints,
  /// deduplicates, and keeps the keys whose presence in pos_ equals
  /// `want_present`.
  std::vector<Edge> canonical_batch(const std::vector<Edge>& batch,
                                    bool want_present) const;

  std::vector<std::vector<VertexId>> adj_;
  FlatHashMap<EdgeKey, uint64_t> pos_;
  size_t num_edges_ = 0;
};

}  // namespace parspan
