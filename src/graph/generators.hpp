// Graph and update-stream generators.
//
// These produce the synthetic workloads of the experiment suite (DESIGN.md
// §5). Update streams are generated from their own seed, independently of
// any structure's internal coins — this realizes the paper's *oblivious
// adversary* model.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace parspan {

/// m distinct uniformly random edges on n vertices (Erdős–Rényi G(n, m)).
std::vector<Edge> gen_erdos_renyi(size_t n, size_t m, uint64_t seed);

/// R-MAT / power-law-ish graph: m distinct edges, recursive quadrant
/// sampling with probabilities (a, b, c, 1-a-b-c).
std::vector<Edge> gen_rmat(size_t n, size_t m, uint64_t seed, double a = 0.57,
                           double b = 0.19, double c = 0.19);

/// 2D grid graph on rows x cols vertices (4-neighborhood).
std::vector<Edge> gen_grid(size_t rows, size_t cols);

/// Cycle on n vertices.
std::vector<Edge> gen_cycle(size_t n);

/// Path on n vertices.
std::vector<Edge> gen_path(size_t n);

/// Complete graph on n vertices (use only for small n).
std::vector<Edge> gen_complete(size_t n);

/// Star centered at vertex 0.
std::vector<Edge> gen_star(size_t n);

/// Random d-regular-ish graph via d/2 superposed random perfect matchings
/// on a shuffled cycle (multi-edges removed, so degrees are <= d).
std::vector<Edge> gen_random_regular(size_t n, size_t d, uint64_t seed);

/// One batch of a dynamic update stream.
struct UpdateBatch {
  std::vector<Edge> insertions;
  std::vector<Edge> deletions;
};

/// Decremental stream: deletes all of `edges` in random order, in batches
/// of `batch_size` (last batch may be smaller).
std::vector<UpdateBatch> gen_decremental_stream(std::vector<Edge> edges,
                                                size_t batch_size,
                                                uint64_t seed);

/// Sliding-window stream over a universe of edges: starts from the first
/// `window` edges; each batch deletes the `batch_size` oldest live edges and
/// inserts the next `batch_size` unseen ones. Models, e.g., a network whose
/// links churn over time. Returns (initial_edges, batches).
std::pair<std::vector<Edge>, std::vector<UpdateBatch>> gen_sliding_window(
    size_t n, size_t universe_m, size_t window, size_t batch_size,
    size_t num_batches, uint64_t seed);

/// Mixed stream on a fixed vertex set: each batch deletes `batch_size/2`
/// random live edges and inserts `batch_size/2` random absent ones,
/// starting from `initial` edges. Returns (initial_edges, batches).
std::pair<std::vector<Edge>, std::vector<UpdateBatch>> gen_mixed_stream(
    size_t n, size_t initial_m, size_t batch_size, size_t num_batches,
    uint64_t seed);

}  // namespace parspan
