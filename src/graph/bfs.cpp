#include "graph/bfs.hpp"

#include <atomic>

#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"

namespace parspan {

std::vector<uint32_t> bounded_bfs(const DynamicGraph& g,
                                  const std::vector<VertexId>& sources,
                                  uint32_t L) {
  size_t n = g.num_vertices();
  std::vector<std::atomic<uint32_t>> dist(n);
  parallel_for(0, n, [&](size_t v) {
    dist[v].store(L + 1, std::memory_order_relaxed);
  });
  std::vector<VertexId> frontier;
  for (VertexId s : sources) {
    uint32_t expect = L + 1;
    if (dist[s].compare_exchange_strong(expect, 0)) frontier.push_back(s);
  }
  for (uint32_t level = 0; level < L && !frontier.empty(); ++level) {
    // Flat scan-based expansion: degree histogram -> exclusive scan ->
    // scatter claimed neighbors into one contiguous candidate array, then
    // pack out the gaps. No per-frontier-vertex buffers to allocate or
    // re-concatenate; vertex acquisition stays a CAS.
    std::vector<uint64_t> offsets(frontier.size());
    parallel_for(0, frontier.size(),
                 [&](size_t i) { offsets[i] = g.degree(frontier[i]); }, 512);
    uint64_t total = exclusive_scan_inplace(offsets);
    std::vector<VertexId> cand(total, kNoVertex);
    parallel_for(0, frontier.size(), [&](size_t i) {
      VertexId u = frontier[i];
      auto nbrs = g.neighbors(u);
      for (size_t j = 0; j < nbrs.size(); ++j) {
        uint32_t expect = L + 1;
        if (dist[nbrs[j]].compare_exchange_strong(expect, level + 1,
                                                  std::memory_order_relaxed))
          cand[offsets[i] + j] = nbrs[j];
      }
    }, 64);
    frontier = filter(cand, [](VertexId w) { return w != kNoVertex; });
  }
  std::vector<uint32_t> out(n);
  for (size_t v = 0; v < n; ++v)
    out[v] = dist[v].load(std::memory_order_relaxed);
  return out;
}

std::vector<uint32_t> bfs_distances(const DynamicGraph& g, VertexId source) {
  uint32_t L = g.num_vertices() == 0
                   ? 0
                   : static_cast<uint32_t>(g.num_vertices() - 1);
  auto d = bounded_bfs(g, {source}, L);
  for (auto& x : d)
    if (x == L + 1) x = kUnreached;
  return d;
}

}  // namespace parspan
