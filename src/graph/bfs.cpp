#include "graph/bfs.hpp"

#include <atomic>

#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"

namespace parspan {

std::vector<uint32_t> bounded_bfs(const DynamicGraph& g,
                                  const std::vector<VertexId>& sources,
                                  uint32_t L) {
  size_t n = g.num_vertices();
  std::vector<std::atomic<uint32_t>> dist(n);
  parallel_for(0, n, [&](size_t v) {
    dist[v].store(L + 1, std::memory_order_relaxed);
  });
  std::vector<VertexId> frontier;
  for (VertexId s : sources) {
    uint32_t expect = L + 1;
    if (dist[s].compare_exchange_strong(expect, 0)) frontier.push_back(s);
  }
  for (uint32_t level = 0; level < L && !frontier.empty(); ++level) {
    // Gather per-frontier-vertex neighbor candidates, claim with CAS.
    std::vector<std::vector<VertexId>> next_local(frontier.size());
    parallel_for(0, frontier.size(), [&](size_t i) {
      VertexId u = frontier[i];
      for (VertexId w : g.neighbors(u)) {
        uint32_t expect = L + 1;
        if (dist[w].compare_exchange_strong(expect, level + 1,
                                            std::memory_order_relaxed))
          next_local[i].push_back(w);
      }
    }, 64);
    size_t total = 0;
    for (auto& loc : next_local) total += loc.size();
    std::vector<VertexId> next;
    next.reserve(total);
    for (auto& loc : next_local)
      next.insert(next.end(), loc.begin(), loc.end());
    frontier = std::move(next);
  }
  std::vector<uint32_t> out(n);
  for (size_t v = 0; v < n; ++v)
    out[v] = dist[v].load(std::memory_order_relaxed);
  return out;
}

std::vector<uint32_t> bfs_distances(const DynamicGraph& g, VertexId source) {
  uint32_t L = g.num_vertices() == 0
                   ? 0
                   : static_cast<uint32_t>(g.num_vertices() - 1);
  auto d = bounded_bfs(g, {source}, L);
  for (auto& x : d)
    if (x == L + 1) x = kUnreached;
  return d;
}

}  // namespace parspan
