// Parallel bounded breadth-first search (Lemma 3.2 of the paper).
//
// Computes, for every vertex v, Dist(v) = the s->v distance if it is <= L,
// and L+1 otherwise. The frontier is expanded level by level ("for each
// i = 0,1,...,L-1 compute S(i+1) from S(i)"); vertex acquisition uses an
// atomic CAS, matching the O(m log n) work / O(L log n) depth statement
// (our depth proxy is the number of levels).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "util/types.hpp"

namespace parspan {

/// Distance value used for "unreached within L".
inline constexpr uint32_t kUnreached = static_cast<uint32_t>(-1);

/// Bounded multi-source BFS on an undirected DynamicGraph.
/// Returns dist[] with dist[v] = min distance from any source, or L+1 if the
/// distance exceeds L (or v is unreachable).
std::vector<uint32_t> bounded_bfs(const DynamicGraph& g,
                                  const std::vector<VertexId>& sources,
                                  uint32_t L);

/// Exact single-source distances (L = n), convenience wrapper used by the
/// verification oracles.
std::vector<uint32_t> bfs_distances(const DynamicGraph& g, VertexId source);

}  // namespace parspan
