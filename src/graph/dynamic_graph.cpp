#include "graph/dynamic_graph.hpp"

#include <algorithm>

#include "parallel/csr.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"

namespace parspan {

std::vector<Edge> DynamicGraph::canonical_batch(const std::vector<Edge>& batch,
                                                bool want_present) const {
  std::vector<EdgeKey> keys = canonical_edge_keys(adj_.size(), batch);
  // Presence filter (read-only on pos_, safe in parallel).
  keys = filter(keys, [&](EdgeKey k) {
    return pos_.contains(k) == want_present;
  });
  std::vector<Edge> out(keys.size());
  parallel_for(0, keys.size(),
               [&](size_t i) { out[i] = edge_from_key(keys[i]); });
  return out;
}

void DynamicGraph::remove_arc_slot(VertexId x, uint32_t i) {
  auto& a = adj_[x];
  VertexId last = a.back();
  a.pop_back();
  if (i < a.size()) {
    a[i] = last;
    uint64_t* p = pos_.find(edge_key(x, last));
    assert(p != nullptr);
    if (x < last)
      *p = (*p & 0xffffffffULL) | (static_cast<uint64_t>(i) << 32);
    else
      *p = (*p & ~0xffffffffULL) | i;
  }
}

std::vector<Edge> DynamicGraph::insert_edges(const std::vector<Edge>& batch) {
  std::vector<Edge> applied = canonical_batch(batch, /*want_present=*/false);
  pos_.reserve(num_edges_ + applied.size());
  for (const Edge& e : applied) {  // canonical: e.u < e.v
    uint32_t pu = static_cast<uint32_t>(adj_[e.u].size());
    uint32_t pv = static_cast<uint32_t>(adj_[e.v].size());
    adj_[e.u].push_back(e.v);
    adj_[e.v].push_back(e.u);
    pos_[e.key()] = pack_pos(pu, pv);
  }
  num_edges_ += applied.size();
  return applied;
}

std::vector<Edge> DynamicGraph::erase_edges(const std::vector<Edge>& batch) {
  std::vector<Edge> applied = canonical_batch(batch, /*want_present=*/true);
  for (const Edge& e : applied) {  // canonical: e.u < e.v
    uint64_t packed = *pos_.find(e.key());
    pos_.erase(e.key());
    remove_arc_slot(e.u, static_cast<uint32_t>(packed >> 32));
    remove_arc_slot(e.v, static_cast<uint32_t>(packed));
  }
  num_edges_ -= applied.size();
  return applied;
}

}  // namespace parspan
