#include "graph/dynamic_graph.hpp"

#include <algorithm>

#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"

namespace parspan {

std::vector<Edge> DynamicGraph::insert_edges(const std::vector<Edge>& batch) {
  // Filter: drop self-loops, in-batch duplicates, and already-present edges.
  std::vector<EdgeKey> keys;
  keys.reserve(batch.size());
  for (const Edge& e : batch) {
    if (e.u == e.v || e.u >= adj_.size() || e.v >= adj_.size()) continue;
    keys.push_back(e.key());
  }
  sort_unique(keys);
  std::vector<Edge> applied;
  applied.reserve(keys.size());
  for (EdgeKey k : keys) {
    Edge e = edge_from_key(k);
    if (!has_edge(e.u, e.v)) applied.push_back(e);
  }
  // Apply grouped by endpoint so each adjacency list has one writer.
  // Arcs: (owner, other) for both directions.
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(2 * applied.size());
  for (const Edge& e : applied) {
    arcs.push_back({e.u, e.v});
    arcs.push_back({e.v, e.u});
  }
  parallel_sort(arcs);
  // Parallel over runs of equal owner.
  std::vector<size_t> starts;
  for (size_t i = 0; i < arcs.size(); ++i)
    if (i == 0 || arcs[i].first != arcs[i - 1].first) starts.push_back(i);
  parallel_for(0, starts.size(), [&](size_t r) {
    size_t lo = starts[r];
    size_t hi = r + 1 < starts.size() ? starts[r + 1] : arcs.size();
    for (size_t i = lo; i < hi; ++i) add_arc(arcs[i].first, arcs[i].second);
  });
  num_edges_ += applied.size();
  return applied;
}

std::vector<Edge> DynamicGraph::erase_edges(const std::vector<Edge>& batch) {
  std::vector<EdgeKey> keys;
  keys.reserve(batch.size());
  for (const Edge& e : batch) {
    if (e.u == e.v || e.u >= adj_.size() || e.v >= adj_.size()) continue;
    keys.push_back(e.key());
  }
  sort_unique(keys);
  std::vector<Edge> applied;
  applied.reserve(keys.size());
  for (EdgeKey k : keys) {
    Edge e = edge_from_key(k);
    if (has_edge(e.u, e.v)) applied.push_back(e);
  }
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(2 * applied.size());
  for (const Edge& e : applied) {
    arcs.push_back({e.u, e.v});
    arcs.push_back({e.v, e.u});
  }
  parallel_sort(arcs);
  std::vector<size_t> starts;
  for (size_t i = 0; i < arcs.size(); ++i)
    if (i == 0 || arcs[i].first != arcs[i - 1].first) starts.push_back(i);
  parallel_for(0, starts.size(), [&](size_t r) {
    size_t lo = starts[r];
    size_t hi = r + 1 < starts.size() ? starts[r + 1] : arcs.size();
    for (size_t i = lo; i < hi; ++i)
      remove_arc(arcs[i].first, arcs[i].second);
  });
  num_edges_ -= applied.size();
  return applied;
}

}  // namespace parspan
