// ShardDurability: one shard's write-ahead log + checkpoint lifecycle
// (DESIGN.md §10).
//
// Owns a directory of WAL segments and checkpoints and drives the
// protocol: every published version appends one record (WAL-before-publish
// — the caller appends, then publishes), a checkpoint every
// `checkpoint_every` records rotates the log to a fresh segment and
// garbage-collects everything older than the last `keep_checkpoints`
// checkpoints, and recover() rebuilds the exact pre-crash serving state —
// newest valid checkpoint, replay the log tail diff-by-diff with the
// content checksum re-verified per record, truncate at the first invalid
// frame — plus the graph shadow a fresh backend is rebuilt from.
//
// The graph shadow: the durability layer folds every record's *input*
// batch (deletions then insertions, set semantics — exactly the backend's
// documented batch semantics) into a running edge-key set, so a checkpoint
// can serialize the graph without reaching into backend internals, and
// recovery can hand back the edge set the rebuilt backend must start from
// (DESIGN.md §10.4).
//
// Failure is sticky: after any WAL or checkpoint I/O error the shard keeps
// serving from memory but failed() stays true and nothing further is
// logged — recovery then restores the last durable prefix (DESIGN.md
// §10.5). Cleanup failures (GC of old segments) are NOT failures: extra
// files never confuse recovery.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "container/flat_map.hpp"
#include "durability/checkpoint.hpp"
#include "durability/fs.hpp"
#include "durability/wal.hpp"

namespace parspan {

struct DurabilityOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryRecord;
  /// Sync once per this many records (kEveryN).
  uint32_t fsync_every_n = 8;
  /// Sync when this much time passed since the last sync (kTimed; checked
  /// on the append path — an idle shard syncs on its next append).
  std::chrono::milliseconds fsync_interval{50};
  /// Checkpoint + truncate the log every this many records (0 = only the
  /// genesis/recovery checkpoints; the log then grows unboundedly).
  uint64_t checkpoint_every = 64;
  /// Older checkpoints kept as fallback against media rot of the newest
  /// (their log segments are retained too).
  uint32_t keep_checkpoints = 2;
};

class ShardDurability {
 public:
  /// Initializes a FRESH shard directory: wipes leftover ckpt/wal files,
  /// writes the genesis checkpoint for `version` (the just-published
  /// snapshot and the matching graph edge set, both ascending key lists),
  /// and opens the first log segment. nullptr on I/O failure.
  static std::unique_ptr<ShardDurability> create(
      std::shared_ptr<Fs> fs, std::string dir, const DurabilityOptions& opts,
      uint64_t n, uint32_t stretch, uint64_t version,
      std::span<const EdgeKey> snap_keys, uint64_t snapshot_checksum,
      std::vector<EdgeKey> graph_keys);

  /// Everything recover() restores about one shard.
  struct Recovered {
    uint64_t n = 0;
    uint32_t stretch = 0;
    uint64_t version = 0;   // restored snapshot version
    uint64_t checksum = 0;  // its content checksum (== last durably logged)
    std::vector<EdgeKey> snap_keys;   // the restored spanner, ascending
    std::vector<EdgeKey> graph_keys;  // the restored graph, ascending
    uint64_t replayed_records = 0;
    /// True when the log ended in a torn/corrupt frame that was truncated
    /// (vs a clean end).
    bool tail_truncated = false;
    /// Positioned to continue logging at `version` (fresh segment).
    std::unique_ptr<ShardDurability> dur;
  };

  /// Loads the newest valid checkpoint and replays the log tail, verifying
  /// each record's content checksum before applying it and truncating at
  /// the first invalid frame (DESIGN.md §10.3). nullopt when no valid
  /// checkpoint exists at all.
  static std::optional<Recovered> recover(std::shared_ptr<Fs> fs,
                                          std::string dir,
                                          const DurabilityOptions& opts);

  /// Appends one record (input batch + diff + resulting version/checksum),
  /// folds the input into the graph shadow, applies the fsync policy.
  /// False on (sticky) failure — the caller publishes anyway and the shard
  /// keeps serving, minus the durability claim.
  bool log_record(const WalRecord& rec);

  /// Checkpoint + rotate + GC if `checkpoint_every` records have been
  /// logged since the last checkpoint. `snap_keys`/`snapshot_checksum`
  /// must describe the snapshot at `version` (the one just published).
  bool maybe_checkpoint(uint64_t version, uint64_t snapshot_checksum,
                        std::span<const EdgeKey> snap_keys);

  /// Unconditional checkpoint (recovery epilogue: compact immediately so
  /// repeated crash/recover cycles never accumulate log).
  bool checkpoint_now(uint64_t version, uint64_t snapshot_checksum,
                      std::span<const EdgeKey> snap_keys);

  bool failed() const { return failed_; }

  /// Highest version guaranteed durable: covered by a synced WAL frame or
  /// a committed checkpoint. The crash sweep's recovery lower bound.
  uint64_t durable_version() const;

  uint64_t records_logged() const { return records_logged_; }

  /// Directory / filesystem / options this shard logs to — the log
  /// shipper tails the same directory read-only (DESIGN.md §11.1), and
  /// failover promotion rebuilds a service on a follower's own chain.
  const std::string& dir() const { return dir_; }
  const std::shared_ptr<Fs>& fs() const { return fs_; }
  const DurabilityOptions& options() const { return opts_; }

 private:
  ShardDurability(std::shared_ptr<Fs> fs, std::string dir,
                  const DurabilityOptions& opts, uint64_t n, uint32_t stretch);

  bool open_segment(uint64_t base_version);
  void gc_old_files();

  std::shared_ptr<Fs> fs_;
  std::string dir_;
  DurabilityOptions opts_;
  uint64_t n_;
  uint32_t stretch_;
  FlatHashSet<EdgeKey> graph_;  // shadow of the backend's graph edge set
  std::unique_ptr<WalWriter> wal_;
  bool failed_ = false;
  uint64_t last_ckpt_version_ = 0;
  uint64_t records_since_ckpt_ = 0;
  uint64_t records_logged_ = 0;
  std::vector<uint64_t> ckpt_versions_;  // committed, ascending
};

}  // namespace parspan
