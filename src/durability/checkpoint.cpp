#include "durability/checkpoint.hpp"

#include <cassert>
#include <cstdio>

#include "durability/wal.hpp"

namespace parspan {

namespace {
constexpr uint64_t kCkptMagic = 0x3130504B43505350ULL;  // "PSPCKP01" LE
}

std::string checkpoint_file_name(uint64_t version) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "ckpt-%016llx.snap",
                static_cast<unsigned long long>(version));
  return buf;
}

std::optional<uint64_t> parse_checkpoint_file_name(const std::string& name) {
  unsigned long long v = 0;
  char tail = 0;
  if (std::sscanf(name.c_str(), "ckpt-%16llx.sna%c", &v, &tail) != 2 ||
      tail != 'p' || name.size() != checkpoint_file_name(v).size())
    return std::nullopt;
  return v;
}

bool write_checkpoint(Fs& fs, const std::string& dir, const Checkpoint& ckpt) {
  // Pre-sized with raw stores; the key lists (hundreds of KB raw per
  // checkpoint) are strictly ascending and stored varint-delta compressed
  // like WAL key lists — roughly 3x fewer bytes to write, sync and read
  // back on every checkpoint.
  constexpr size_t kFixed = 8 + 8 + 8 + 4 + 8 + 8 + 8;
  std::vector<uint8_t> body(
      kFixed +
      kMaxUvarintLen * (ckpt.snap_keys.size() + ckpt.graph_keys.size()) + 4);
  uint8_t* p = body.data();
  store_le64(p, kCkptMagic);
  store_le64(p + 8, ckpt.version);
  store_le64(p + 16, ckpt.n);
  store_le32(p + 24, ckpt.stretch);
  store_le64(p + 28, ckpt.snapshot_checksum);
  store_le64(p + 36, ckpt.snap_keys.size());
  store_le64(p + 44, ckpt.graph_keys.size());
  p += kFixed;
  for (const std::vector<EdgeKey>* v : {&ckpt.snap_keys, &ckpt.graph_keys}) {
    uint64_t prev = 0;
    bool first = true;
    for (EdgeKey k : *v) {
      assert((first || k > prev) && "checkpoint key lists must be ascending");
      p += put_uvarint(p, first ? k : k - prev);
      prev = k;
      first = false;
    }
  }
  body.resize(size_t(p - body.data()) + 4);
  store_le32(body.data() + body.size() - 4,
             crc32c(body.data(), body.size() - 4));

  const std::string tmp = dir + "/ckpt.tmp";
  {
    std::unique_ptr<FsFile> f = fs.create(tmp);
    if (f == nullptr || !f->append(body.data(), body.size()) || !f->sync())
      return false;
  }
  return fs.rename(tmp, dir + "/" + checkpoint_file_name(ckpt.version));
}

std::optional<Checkpoint> load_checkpoint(Fs& fs, const std::string& dir,
                                          uint64_t version) {
  std::vector<uint8_t> body;
  if (!fs.read_file(dir + "/" + checkpoint_file_name(version), &body))
    return std::nullopt;
  constexpr size_t kFixed = 8 + 8 + 8 + 4 + 8 + 8 + 8;
  if (body.size() < kFixed + 4) return std::nullopt;
  if (crc32c(body.data(), body.size() - 4) !=
      get_le32(body.data() + body.size() - 4))
    return std::nullopt;
  const uint8_t* p = body.data();
  if (get_le64(p) != kCkptMagic) return std::nullopt;
  Checkpoint c;
  c.version = get_le64(p + 8);
  c.n = get_le64(p + 16);
  c.stretch = get_le32(p + 24);
  c.snapshot_checksum = get_le64(p + 28);
  uint64_t ns = get_le64(p + 36);
  uint64_t ng = get_le64(p + 44);
  if (c.version != version) return std::nullopt;
  // A garbage count would make the reserve below attempt absurd memory.
  if (ns + ng > (body.size() - kFixed - 4)) return std::nullopt;
  p += kFixed;
  const uint8_t* end = body.data() + body.size() - 4;
  // Delta decoding proves strict ascent (sorted + unique) as a side effect
  // — a zero delta or truncated varint rejects the checkpoint.
  auto read_list = [&](std::vector<EdgeKey>* out, uint64_t cnt) {
    out->clear();
    out->reserve(cnt);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < cnt; ++i) {
      uint64_t d = 0;
      if (!get_uvarint(&p, end, &d)) return false;
      if (i > 0 && (d == 0 || d > UINT64_MAX - prev)) return false;
      prev = i == 0 ? d : prev + d;
      out->push_back(prev);
    }
    return true;
  };
  if (!read_list(&c.snap_keys, ns) || !read_list(&c.graph_keys, ng))
    return std::nullopt;
  if (p != end) return std::nullopt;  // trailing garbage
  return c;
}

}  // namespace parspan
