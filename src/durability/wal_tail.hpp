// Read-only tailing of a live shard durability directory (DESIGN.md §11.1).
//
// The log shipper runs in the leader process but deliberately reads the
// shard's WAL/checkpoint chain through the same Fs seam recovery uses,
// never through ShardDurability's in-memory state: what ships is exactly
// what a crash would restore, so a follower that applied the shipped
// stream equals a leader that crashed and recovered — one convergence
// definition for both subsystems.
//
// The watermark rule: callers clamp every read at the shard's
// durable_version() (checkpoint version ∨ WalWriter::synced_version()).
// Bytes past the watermark may be readable — the writer's flush path can
// put staged frames in the page cache before any fsync — but they are not
// durable, and shipping them would let a follower get AHEAD of what the
// leader can recover, breaking failover's longest-durable-log election.
// Neither function here ever returns a record above `max_version`/`to`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "durability/fs.hpp"
#include "durability/wal.hpp"
#include "util/types.hpp"

namespace parspan {

/// One shard's durably-recoverable state at a version: everything a
/// follower needs to adopt it wholesale (snapshot resync) — the snapshot
/// key list plus the graph shadow its own checkpoint chain must carry.
struct DurableState {
  uint64_t n = 0;
  uint32_t stretch = 0;
  uint64_t version = 0;
  uint64_t checksum = 0;  // snapshot content checksum at `version`
  std::vector<EdgeKey> snap_keys;   // ascending
  std::vector<EdgeKey> graph_keys;  // ascending
};

/// Rebuilds the durable state at the highest recoverable version
/// <= `max_version`: newest checksum-verified checkpoint at/below the cap,
/// then a fully verified replay of the log tail, clamped at the cap.
/// Read-only — unlike recover() it never deletes a rotten checkpoint or
/// opens a segment. nullopt when no checkpoint at/below the cap validates.
std::optional<DurableState> read_durable_state(Fs& fs, const std::string& dir,
                                               uint64_t max_version);

/// Collects the WAL records with versions in (from, to], in order, from
/// the segment chain. Fast path for incremental shipping: frames are CRC-
/// validated and version-contiguous (read_wal_segment's torn-tail rule)
/// but diffs are NOT re-folded here — the follower re-verifies every
/// record's content checksum before applying, so verification happens
/// once, on the consuming side. False when the chain cannot produce the
/// full range (segment GC'd, torn tail short of `to`, gap): the shipper
/// then falls back to a snapshot resync via read_durable_state().
bool read_wal_range(Fs& fs, const std::string& dir, uint64_t from,
                    uint64_t to, std::vector<WalRecord>* out);

}  // namespace parspan
