// Snapshot checkpoints: the WAL's truncation points (DESIGN.md §10.3).
//
// A checkpoint serializes one published version completely — the
// snapshot's sorted canonical keys, its content checksum, and the sorted
// key set of the *graph* the backend was maintaining at that version (the
// durability layer's graph shadow, needed to rebuild a backend after
// recovery). Once a checkpoint is durable, every WAL record at or below
// its version is dead weight and the log is truncated to a fresh segment.
//
// File format (all integers little-endian, like the WAL):
//
//   magic u64 | version u64 | n u64 | stretch u32 |
//   snapshot_checksum u64 | snap_keys u64 | graph_keys u64 |
//   snap keys ... | graph keys ... | crc32c(everything above) u32
//
// Atomicity: written to `ckpt.tmp`, synced, then renamed to
// ckpt-<version:016x>.snap (rename + directory sync = the commit point).
// A crash between the two leaves a tmp file recovery ignores; a crash
// mid-write leaves a tmp file whose CRC fails. Either way the previous
// checkpoint still commits the shard.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "durability/fs.hpp"
#include "util/types.hpp"

namespace parspan {

struct Checkpoint {
  uint64_t version = 0;
  uint64_t n = 0;
  uint32_t stretch = 0;
  uint64_t snapshot_checksum = 0;
  std::vector<EdgeKey> snap_keys;   // ascending; the spanner at `version`
  std::vector<EdgeKey> graph_keys;  // ascending; the graph at `version`
};

/// File name of a committed checkpoint ("ckpt-<version:016x>.snap").
std::string checkpoint_file_name(uint64_t version);
/// Parses a committed checkpoint file name; nullopt for other files.
std::optional<uint64_t> parse_checkpoint_file_name(const std::string& name);

/// Writes `ckpt` durably into `dir` (tmp + sync + atomic rename). False on
/// any I/O failure; `dir` is left with either the committed file or junk
/// recovery ignores.
bool write_checkpoint(Fs& fs, const std::string& dir, const Checkpoint& ckpt);

/// Loads and structurally validates (magic, CRC, sorted-unique keys) one
/// committed checkpoint. nullopt when missing or corrupt.
std::optional<Checkpoint> load_checkpoint(Fs& fs, const std::string& dir,
                                          uint64_t version);

}  // namespace parspan
