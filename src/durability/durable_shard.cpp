#include "durability/durable_shard.hpp"

#include <algorithm>
#include <cstdio>

#include "service/spanner_snapshot.hpp"

namespace parspan {

namespace {

// A canonical key the graph can actually contain: lo < hi < n. WAL bytes
// are data, not invariants — recovery and the shadow both filter.
bool valid_graph_key(EdgeKey k, uint64_t n) {
  auto [lo, hi] = edge_endpoints(k);
  return lo < hi && hi < n;
}

}  // namespace

ShardDurability::ShardDurability(std::shared_ptr<Fs> fs, std::string dir,
                                 const DurabilityOptions& opts, uint64_t n,
                                 uint32_t stretch)
    : fs_(std::move(fs)), dir_(std::move(dir)), opts_(opts), n_(n),
      stretch_(stretch) {}

bool ShardDurability::open_segment(uint64_t base_version) {
  WalWriterOptions wopts;
  wopts.policy = opts_.fsync_policy;
  wopts.every_n = opts_.fsync_every_n;
  wopts.interval = opts_.fsync_interval;
  wal_ = std::make_unique<WalWriter>(*fs_, dir_ + "/" + wal_file_name(base_version),
                                     base_version, wopts);
  if (wal_->failed()) {
    failed_ = true;
    return false;
  }
  return true;
}

std::unique_ptr<ShardDurability> ShardDurability::create(
    std::shared_ptr<Fs> fs, std::string dir, const DurabilityOptions& opts,
    uint64_t n, uint32_t stretch, uint64_t version,
    std::span<const EdgeKey> snap_keys, uint64_t snapshot_checksum,
    std::vector<EdgeKey> graph_keys) {
  if (!fs->mkdirs(dir)) return nullptr;
  // A fresh shard must not inherit another incarnation's files: a stale
  // higher-versioned checkpoint would win the next recovery.
  for (const std::string& name : fs->list(dir))
    if (parse_checkpoint_file_name(name) || parse_wal_file_name(name) ||
        name == "ckpt.tmp")
      fs->remove(dir + "/" + name);

  auto d = std::unique_ptr<ShardDurability>(
      new ShardDurability(std::move(fs), std::move(dir), opts, n, stretch));
  for (EdgeKey k : graph_keys) d->graph_.insert(k);

  Checkpoint ckpt;
  ckpt.version = version;
  ckpt.n = n;
  ckpt.stretch = stretch;
  ckpt.snapshot_checksum = snapshot_checksum;
  ckpt.snap_keys.assign(snap_keys.begin(), snap_keys.end());
  ckpt.graph_keys = std::move(graph_keys);
  if (!write_checkpoint(*d->fs_, d->dir_, ckpt)) return nullptr;
  d->last_ckpt_version_ = version;
  d->ckpt_versions_.push_back(version);
  if (!d->open_segment(version)) return nullptr;
  return d;
}

bool ShardDurability::log_record(const WalRecord& rec) {
  // The graph shadow folds the input even when the append fails: it must
  // track the BACKEND (which applied the batch regardless), so a later
  // recovery-epilogue checkpoint — if durability ever came back — would
  // not lie. With sticky failure it simply stays consistent in memory.
  for (EdgeKey k : rec.input_deleted)
    if (valid_graph_key(k, n_)) graph_.erase(k);
  for (EdgeKey k : rec.input_inserted)
    if (valid_graph_key(k, n_)) graph_.insert(k);
  if (failed_) return false;
  if (!wal_->append(rec)) {
    failed_ = true;
    return false;
  }
  ++records_logged_;
  ++records_since_ckpt_;
  return true;
}

bool ShardDurability::maybe_checkpoint(uint64_t version,
                                       uint64_t snapshot_checksum,
                                       std::span<const EdgeKey> snap_keys) {
  if (failed_ || opts_.checkpoint_every == 0 ||
      records_since_ckpt_ < opts_.checkpoint_every)
    return !failed_;
  return checkpoint_now(version, snapshot_checksum, snap_keys);
}

bool ShardDurability::checkpoint_now(uint64_t version,
                                     uint64_t snapshot_checksum,
                                     std::span<const EdgeKey> snap_keys) {
  if (failed_) return false;
  // Complete the outgoing segment (write out + sync staged frames) before
  // superseding it: a fallback replay from an OLDER retained checkpoint
  // must be able to walk this segment's full record chain up to `version`.
  if (!wal_->sync()) {
    failed_ = true;
    return false;
  }
  Checkpoint ckpt;
  ckpt.version = version;
  ckpt.n = n_;
  ckpt.stretch = stretch_;
  ckpt.snapshot_checksum = snapshot_checksum;
  ckpt.snap_keys.assign(snap_keys.begin(), snap_keys.end());
  ckpt.graph_keys = graph_.sorted_keys();
  if (!write_checkpoint(*fs_, dir_, ckpt)) {
    failed_ = true;
    return false;
  }
  last_ckpt_version_ = version;
  ckpt_versions_.push_back(version);
  records_since_ckpt_ = 0;
  // Rotate BEFORE GC: the new segment must exist before anything old goes.
  if (!open_segment(version)) return false;
  gc_old_files();
  return true;
}

void ShardDurability::gc_old_files() {
  // Best-effort: a failed remove leaves extra files recovery ignores.
  if (ckpt_versions_.size() <= opts_.keep_checkpoints) return;
  size_t drop = ckpt_versions_.size() - std::max<uint32_t>(1, opts_.keep_checkpoints);
  uint64_t oldest_kept = ckpt_versions_[drop];
  for (size_t i = 0; i < drop; ++i)
    fs_->remove(dir_ + "/" + checkpoint_file_name(ckpt_versions_[i]));
  ckpt_versions_.erase(ckpt_versions_.begin(), ckpt_versions_.begin() + drop);
  for (const std::string& name : fs_->list(dir_))
    if (auto base = parse_wal_file_name(name); base && *base < oldest_kept)
      fs_->remove(dir_ + "/" + name);
}

uint64_t ShardDurability::durable_version() const {
  uint64_t v = last_ckpt_version_;
  if (wal_ != nullptr) v = std::max(v, wal_->synced_version());
  return v;
}

std::optional<ShardDurability::Recovered> ShardDurability::recover(
    std::shared_ptr<Fs> fs, std::string dir, const DurabilityOptions& opts) {
  // Newest structurally valid checkpoint whose content checksum re-derives
  // from its own key list — older ones are the fallback against rot.
  std::vector<uint64_t> ckpts;
  for (const std::string& name : fs->list(dir))
    if (auto v = parse_checkpoint_file_name(name)) ckpts.push_back(*v);
  std::sort(ckpts.begin(), ckpts.end());
  std::optional<Checkpoint> chosen;
  while (!ckpts.empty()) {
    auto c = load_checkpoint(*fs, dir, ckpts.back());
    if (c && snapshot_content_checksum(c->n, c->stretch, c->version,
                                       c->snap_keys) == c->snapshot_checksum) {
      chosen = std::move(c);
      break;
    }
    // Unusable: drop the file so it cannot shadow the good one next time.
    fs->remove(dir + "/" + checkpoint_file_name(ckpts.back()));
    ckpts.pop_back();
  }
  if (!chosen) return std::nullopt;

  Recovered out;
  out.n = chosen->n;
  out.stretch = chosen->stretch;
  out.version = chosen->version;
  out.checksum = chosen->snapshot_checksum;
  out.snap_keys = std::move(chosen->snap_keys);
  out.graph_keys = std::move(chosen->graph_keys);

  FlatHashSet<EdgeKey> graph;
  for (EdgeKey k : out.graph_keys) graph.insert(k);

  // Replay segments at/above the checkpoint in base order. Versions must
  // chain contiguously; the first invalid frame (or semantically
  // inconsistent record — checksum verified BEFORE apply) ends replay for
  // good: bytes past a tear are garbage by the append-only discipline.
  std::vector<uint64_t> bases;
  for (const std::string& name : fs->list(dir))
    if (auto b = parse_wal_file_name(name); b && *b >= out.version)
      bases.push_back(*b);
  std::sort(bases.begin(), bases.end());
  bool stop = false;
  for (uint64_t base : bases) {
    if (stop) break;
    WalSegment seg = read_wal_segment(*fs, dir + "/" + wal_file_name(base));
    if (!seg.header_ok) {
      out.tail_truncated = true;
      break;
    }
    if (seg.base_version > out.version) break;  // gap: later epochs unusable
    for (WalRecord& rec : seg.records) {
      if (rec.version <= out.version) continue;
      if (rec.version != out.version + 1) {
        stop = true;
        out.tail_truncated = true;
        break;
      }
      auto folded =
          checked_apply_diff(out.snap_keys, rec.diff_inserted, rec.diff_removed);
      if (!folded || snapshot_content_checksum(out.n, out.stretch, rec.version,
                                               *folded) != rec.checksum) {
        stop = true;
        out.tail_truncated = true;
        break;
      }
      out.snap_keys = std::move(*folded);
      for (EdgeKey k : rec.input_deleted)
        if (valid_graph_key(k, out.n)) graph.erase(k);
      for (EdgeKey k : rec.input_inserted)
        if (valid_graph_key(k, out.n)) graph.insert(k);
      out.version = rec.version;
      out.checksum = rec.checksum;
      ++out.replayed_records;
    }
    if (seg.truncated_tail) {
      out.tail_truncated = true;
      break;
    }
  }
  out.graph_keys = graph.sorted_keys();

  auto d = std::unique_ptr<ShardDurability>(new ShardDurability(
      std::move(fs), std::move(dir), opts, out.n, out.stretch));
  d->graph_ = std::move(graph);
  d->last_ckpt_version_ = ckpts.empty() ? out.version : ckpts.back();
  d->ckpt_versions_ = std::move(ckpts);
  d->records_since_ckpt_ = out.version - d->last_ckpt_version_;
  d->open_segment(out.version);  // failure leaves d sticky-failed; state is
                                 // still good — the caller decides.
  out.dur = std::move(d);
  return out;
}

}  // namespace parspan
