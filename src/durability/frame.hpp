// Shared byte-level codec for every length-prefixed, CRC32C-framed stream
// in the repo: WAL segments (DESIGN.md §10.2), checkpoints, replication
// ship frames (§11.2), and the network wire protocol (§13). Extracted from
// the WAL so the conventions stay frozen in exactly one place:
//
//   * fixed-width integers are little-endian by explicit byte
//     serialization — the encoded image is identical on every platform;
//   * frames are `payload_len u32 | crc32c(payload) u32 | payload`;
//   * strictly-ascending integer lists (sorted edge keys, neighbor ids)
//     are LEB128 varint-delta compressed: first value absolute, each
//     subsequent value as the delta to its predecessor (>= 1 by
//     construction — a zero delta PROVES the frame malformed, the decoder
//     never has to trust the sender's sortedness claim).
//
// Everything here is pure byte manipulation with no I/O: the WAL writer
// frames into its staging buffer, the net server frames into a
// connection's output buffer, and both parse with the same incremental
// `parse_frame` that a torn tail or a hostile client can only drive to
// kBad/kNeedMore, never past the end of the input.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace parspan {

/// CRC32C (Castagnoli) of a byte range — the frame integrity check.
/// Defined in wal.cpp (slice-by-8 software tables; golden
/// crc32c("123456789") = 0xE3069283 pinned in tests/test_durability.cpp).
uint32_t crc32c(const uint8_t* data, size_t len, uint32_t seed = 0);

// --- Little-endian scalar codec ---------------------------------------------

inline void put_le32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(uint8_t(v >> (8 * i)));
}
inline void put_le64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(uint8_t(v >> (8 * i)));
}
inline uint32_t get_le32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(p[i]) << (8 * i);
  return v;
}
inline uint64_t get_le64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(p[i]) << (8 * i);
  return v;
}
// Raw-pointer variants for pre-sized buffers: the byte shifts compile to a
// single unaligned store on little-endian targets, so bulk key
// serialization is a memcpy in practice while staying endian-exact.
inline void store_le32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = uint8_t(v >> (8 * i));
}
inline void store_le64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = uint8_t(v >> (8 * i));
}

// LEB128 varints for the delta-compressed lists. A u64 takes at most
// 10 bytes; a typical sorted-key delta takes 1-3.
constexpr size_t kMaxUvarintLen = 10;
inline size_t put_uvarint(uint8_t* p, uint64_t v) {
  size_t i = 0;
  while (v >= 0x80) {
    p[i++] = uint8_t(v) | 0x80;
    v >>= 7;
  }
  p[i++] = uint8_t(v);
  return i;
}
/// Advances *p past the varint on success; false on truncation or a
/// non-canonical 10-byte overflow.
inline bool get_uvarint(const uint8_t** p, const uint8_t* end, uint64_t* v) {
  uint64_t r = 0;
  int shift = 0;
  const uint8_t* q = *p;
  for (size_t i = 0; i < kMaxUvarintLen && q < end; ++i) {
    uint8_t b = *q++;
    if (shift == 63 && b > 1) return false;  // would overflow u64
    r |= uint64_t(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *p = q;
      *v = r;
      return true;
    }
    shift += 7;
  }
  return false;
}

// --- Frame codec ------------------------------------------------------------

/// `payload_len u32 | crc32c(payload) u32` precede every framed payload.
constexpr size_t kFrameHeaderSize = 4 + 4;

/// A torn or hostile length field can claim anything; cap what a frame may
/// say so a garbage length fails fast instead of "needing" exabytes.
/// Streams with tighter budgets (the net server's per-connection limit)
/// enforce their own smaller cap on top.
constexpr uint32_t kMaxFramePayload = 1u << 30;

/// Writes the frame header for a payload already encoded in place at
/// `frame + kFrameHeaderSize` (the WAL's staging buffer and the net
/// server's output buffer both encode payloads in place, then seal).
inline void seal_frame(uint8_t* frame, size_t payload_len) {
  store_le32(frame, uint32_t(payload_len));
  store_le32(frame + 4, crc32c(frame + kFrameHeaderSize, payload_len));
}

/// Appends one sealed frame around `payload` (the copy-in convenience
/// path; hot paths encode in place and seal_frame()).
inline void append_frame(std::vector<uint8_t>& out, const uint8_t* payload,
                         size_t len) {
  const size_t at = out.size();
  out.resize(at + kFrameHeaderSize + len);
  uint8_t* frame = out.data() + at;
  for (size_t i = 0; i < len; ++i) frame[kFrameHeaderSize + i] = payload[i];
  seal_frame(frame, len);
}

enum class FrameParse : uint8_t {
  kNeedMore,  // the buffer ends mid-header or mid-payload: read more bytes
  kOk,        // one structurally valid frame parsed
  kBad,       // oversized length claim or CRC mismatch: the stream is dead
};

/// One parsed frame: payload points INTO the caller's buffer (valid until
/// the buffer moves), `consumed` is what to advance past on kOk.
struct FrameView {
  const uint8_t* payload = nullptr;
  uint32_t len = 0;
  size_t consumed = 0;
};

/// Incremental frame parser over `avail` buffered bytes. kNeedMore is the
/// streaming case (a WAL tail cut mid-frame, a TCP read that stopped
/// mid-payload); kBad is the torn/corrupt/hostile case — the caller stops
/// replay (WAL) or closes the connection (net), it NEVER skips bytes
/// hunting for the next frame (DESIGN.md §10.3's torn-tail rule).
inline FrameParse parse_frame(const uint8_t* data, size_t avail,
                              uint32_t max_payload, FrameView* out) {
  if (avail < kFrameHeaderSize) return FrameParse::kNeedMore;
  const uint32_t len = get_le32(data);
  const uint32_t crc = get_le32(data + 4);
  if (len > max_payload) return FrameParse::kBad;
  if (avail - kFrameHeaderSize < len) return FrameParse::kNeedMore;
  const uint8_t* payload = data + kFrameHeaderSize;
  if (crc32c(payload, len) != crc) return FrameParse::kBad;
  out->payload = payload;
  out->len = len;
  out->consumed = kFrameHeaderSize + size_t(len);
  return FrameParse::kOk;
}

// --- Strictly-ascending list codec ------------------------------------------

/// Worst-case encoded size of an n-element ascending list.
inline size_t ascending_list_bound(size_t n) { return kMaxUvarintLen * n; }

/// Varint-delta encodes a strictly ascending list in place; returns one
/// past the last byte written. The caller guarantees ascent (asserted) —
/// sorted canonical edge keys and ascending neighbor ids by construction.
template <typename UInt>
inline uint8_t* encode_ascending_list(const UInt* v, size_t n, uint8_t* p) {
  uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t k = uint64_t(v[i]);
    assert((i == 0 || k > prev) && "encoded lists must be strictly ascending");
    p += put_uvarint(p, i == 0 ? k : k - prev);
    prev = k;
  }
  return p;
}

/// Decodes one delta-compressed list of `cnt` values; false on truncation,
/// a zero delta (the list would not be strictly ascending), overflow, or a
/// value exceeding UInt's range — the decoder PROVES every structural
/// claim the encoder made.
template <typename UInt>
inline bool decode_ascending_list(const uint8_t** p, const uint8_t* end,
                                  uint64_t cnt, std::vector<UInt>* out) {
  out->clear();
  if (cnt > uint64_t(end - *p)) return false;  // >= 1 byte per varint
  out->reserve(size_t(cnt));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < cnt; ++i) {
    uint64_t d = 0;
    if (!get_uvarint(p, end, &d)) return false;
    if (i > 0 && (d == 0 || d > UINT64_MAX - prev)) return false;
    prev = i == 0 ? d : prev + d;
    if constexpr (sizeof(UInt) < 8) {
      if (prev > uint64_t(UInt(-1))) return false;
    }
    out->push_back(UInt(prev));
  }
  return true;
}

}  // namespace parspan
