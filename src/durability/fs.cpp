#include "durability/fs.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

namespace parspan {

namespace {

class PosixFile final : public FsFile {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool append(const void* data, size_t len) override {
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
      ssize_t w = ::write(fd_, p, len);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += w;
      len -= static_cast<size_t>(w);
    }
    return true;
  }

  // fdatasync, not fsync: it persists the data and the metadata required
  // to read it back (the size extension an append causes) while skipping
  // timestamp-only journal commits — the classic WAL sync (what SQLite,
  // Postgres and RocksDB use on Linux), measurably cheaper on the ingest
  // path. File *creation* durability still holds on ext4: persisting the
  // first appended bytes commits the journal transaction that created the
  // file, and the checkpoint protocol additionally fsyncs the parent
  // directory on rename.
  bool sync() override { return ::fdatasync(fd_) == 0; }

 private:
  int fd_;
};

// Durable rename needs the parent directory synced too: the rename is a
// directory-entry mutation, and POSIX makes no durability promise for it
// until the directory itself is fsync'ed.
bool sync_parent_dir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

std::unique_ptr<FsFile> PosixFs::create(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return nullptr;
  return std::make_unique<PosixFile>(fd);
}

bool PosixFs::read_file(const std::string& path, std::vector<uint8_t>* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    out->insert(out->end(), buf, buf + r);
  }
  ::close(fd);
  return true;
}

bool PosixFs::rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) return false;
  return sync_parent_dir(to);
}

bool PosixFs::remove(const std::string& path) {
  return ::unlink(path.c_str()) == 0;
}

bool PosixFs::mkdirs(const std::string& path) {
  std::string cur;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      cur += path[i];
      continue;
    }
    if (i < path.size()) cur += '/';
    if (cur.empty() || cur == "/") continue;
    if (::mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  return true;
}

std::vector<std::string> PosixFs::list(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode))
      out.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace parspan
