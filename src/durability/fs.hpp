// Filesystem seam for the durability layer (DESIGN.md §10).
//
// Everything the WAL and checkpoint code touches on disk goes through this
// narrow interface so that the fault-injection harness (fault_fs.hpp) can
// substitute an in-memory filesystem with precise crash semantics: which
// bytes were durable (fsync'ed) vs merely written is the entire question
// crash recovery answers, so the seam models exactly that distinction —
// append (reaches the OS), sync (reaches the platter), and the atomic
// rename that commits a checkpoint.
//
// Error model: every operation reports failure by return value instead of
// throwing. The durability layer treats any failure as sticky (the shard
// keeps serving in memory but stops claiming durability — DESIGN.md §10.5),
// so callers never retry through this interface; the fault harness relies
// on that to model "crashed" as "all subsequent I/O fails".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace parspan {

/// An open append-only file. Writes become durable only after sync().
class FsFile {
 public:
  virtual ~FsFile() = default;
  /// Appends `len` bytes; false on any short or failed write (the file's
  /// tail is then unspecified garbage — callers must stop using it).
  virtual bool append(const void* data, size_t len) = 0;
  /// Flushes everything appended so far to durable storage.
  virtual bool sync() = 0;
};

class Fs {
 public:
  virtual ~Fs() = default;

  /// Creates (truncating) `path` for appending.
  virtual std::unique_ptr<FsFile> create(const std::string& path) = 0;
  /// Reads the whole file; false when it does not exist or is unreadable.
  virtual bool read_file(const std::string& path,
                         std::vector<uint8_t>* out) = 0;
  /// Atomically renames `from` to `to` (replacing `to`) and makes the
  /// rename itself durable (directory sync).
  virtual bool rename(const std::string& from, const std::string& to) = 0;
  virtual bool remove(const std::string& path) = 0;
  /// Creates `path` and any missing parents.
  virtual bool mkdirs(const std::string& path) = 0;
  /// Names (not paths) of the regular files directly under `dir`,
  /// lexicographically sorted; empty for a missing directory.
  virtual std::vector<std::string> list(const std::string& dir) = 0;
};

/// The real thing: POSIX files with fsync + durable rename.
class PosixFs final : public Fs {
 public:
  std::unique_ptr<FsFile> create(const std::string& path) override;
  bool read_file(const std::string& path, std::vector<uint8_t>* out) override;
  bool rename(const std::string& from, const std::string& to) override;
  bool remove(const std::string& path) override;
  bool mkdirs(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir) override;
};

}  // namespace parspan
