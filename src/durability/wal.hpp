// Write-ahead log of published batches (DESIGN.md §10.2).
//
// One WAL segment per checkpoint epoch, named wal-<base-version>.log. A
// segment is a fixed header followed by length-prefixed, CRC32C-framed
// records:
//
//   header := magic u64 | base_version u64 | reserved u64 | crc32c u32
//   frame  := payload_len u32 | crc32c(payload) u32 | payload bytes
//
// Every fixed-width integer is little-endian by explicit byte
// serialization — the on-disk image is identical across platforms, like
// the snapshot checksum it protects (DESIGN.md §10.1). Key lists are
// strictly-ascending and stored delta-compressed: the first key as a
// LEB128 varint, each subsequent key as the varint delta to its
// predecessor (>= 1 by construction — a zero delta marks the frame
// malformed). Sorted edge keys are delta-friendly, so this cuts record and
// checkpoint bytes roughly 3x, which is dirty data the fsync policy would
// otherwise have to push per sync.
//
// One record per published snapshot version, carrying BOTH what the caller
// asked (the drained input batch, deletions and insertions, key-sorted) and
// what the structure answered (the net SpannerDiff, key-sorted) plus the
// resulting snapshot's version and content checksum. Replaying diffs onto
// the checkpoint's key list reproduces the snapshot sequence byte-exactly
// (the §6 determinism contract is what makes the diff a perfect recovery
// payload); folding input batches keeps the graph shadow exact for the
// post-recovery rebase (DESIGN.md §10.4).
//
// Torn-tail rule: a reader accepts the longest prefix of structurally
// valid frames with contiguous versions and stops at the first violation —
// short frame, length overrun, CRC mismatch, or version gap. Nothing after
// a bad frame is ever replayed, even if it looks intact: the writer only
// appends after durable frames, so bytes past a tear are by definition
// garbage from a torn write (DESIGN.md §10.3).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "durability/frame.hpp"
#include "durability/fs.hpp"
#include "util/types.hpp"

namespace parspan {

/// Segment file name for base version `v` ("wal-<v:016x>.log").
std::string wal_file_name(uint64_t base_version);
/// Parses a segment file name; nullopt for other files.
std::optional<uint64_t> parse_wal_file_name(const std::string& name);

/// apply_sorted_diff with the §6 preconditions *checked* instead of
/// asserted: `add` disjoint from `base`, `rem` contained in `base`, all
/// three sorted-unique. Returns nullopt on any violation. This is how every
/// consumer of logged or shipped diffs folds them — a CRC-valid but
/// semantically inconsistent record (media rot that survived the frame
/// check, or a bug) must stop replay, not corrupt the restored state or
/// crash a Release build (DESIGN.md §10.4, §11.3).
std::optional<std::vector<EdgeKey>> checked_apply_diff(
    std::span<const EdgeKey> base, std::span<const EdgeKey> add,
    std::span<const EdgeKey> rem);

// The little-endian scalar codec, LEB128 varints, CRC32C, and the frame
// header codec live in durability/frame.hpp (included above) — shared with
// the checkpoint format, the replication ship frames, and the net wire
// protocol, all of which reuse these exact frozen conventions.

/// One durable record = one published snapshot version.
struct WalRecord {
  enum Type : uint8_t {
    kBatch = 1,   // a drained client batch applied by the backend
    kRebase = 2,  // post-recovery epoch switch: diff to the new backend's
                  // spanner (input sides empty) — DESIGN.md §10.4
  };
  uint8_t type = kBatch;
  uint64_t version = 0;   // snapshot version this record produces
  uint64_t checksum = 0;  // SpannerSnapshot content checksum at `version`
  // Input batch as drained (the §9.2 coalesced set semantics). All four
  // lists MUST be strictly ascending — the delta encoding requires it, and
  // the logger canonicalizes (sorts + dedups) inputs before logging.
  std::vector<EdgeKey> input_deleted;
  std::vector<EdgeKey> input_inserted;
  // Net spanner diff of this version (key-sorted, §6 contract).
  std::vector<EdgeKey> diff_removed;
  std::vector<EdgeKey> diff_inserted;
};

/// Serializes one record payload (no frame header). Key lists must be
/// strictly ascending.
std::vector<uint8_t> encode_wal_record(const WalRecord& rec);
/// Parses one record payload; false on malformed structure (including a
/// non-ascending key list — the decoder proves the §6 sortedness
/// precondition, recovery never has to trust it).
bool decode_wal_record(const uint8_t* data, size_t len, WalRecord* out);

/// When appended frames are fsync'ed (DESIGN.md §10.2). Looser policies
/// trade the unsynced tail (lost on power failure, recovered up to the
/// last durable frame) for fewer fsyncs on the ingest path.
enum class FsyncPolicy : uint8_t {
  kEveryRecord,  // every append is durable before publish
  kEveryN,       // sync once per N appends
  kTimed,        // sync when `fsync_interval` elapsed since the last sync
};

struct WalWriterOptions {
  FsyncPolicy policy = FsyncPolicy::kEveryRecord;
  uint32_t every_n = 8;
  std::chrono::milliseconds interval{50};
};

/// Appends frames to one segment under a fsync policy. Failure is sticky:
/// after any failed append or sync the writer refuses further work (the
/// file tail is unspecified — DESIGN.md §10.5).
///
/// Frames are staged in a user-space buffer and written out at sync time
/// (or when the buffer passes a size threshold). This is loss-free by
/// construction: records between syncs are not durable under kEveryN /
/// kTimed whether they sit in the page cache or in this buffer — the crash
/// model loses both — and batching the write() keeps per-record syscall
/// and writeback cost off the ingest path. Under kEveryRecord every append
/// still reaches the disk before returning.
class WalWriter {
 public:
  /// Creates segment `path` with `base_version` and syncs the header, so
  /// the segment exists durably before any record does. failed() reports
  /// whether that worked.
  WalWriter(Fs& fs, const std::string& path, uint64_t base_version,
            const WalWriterOptions& opts);

  /// Stages one frame and applies the fsync policy. False (and sticky
  /// failure) on I/O error.
  bool append(const WalRecord& rec);

  /// Writes out staged frames and fsyncs (checkpoint barrier / policy
  /// sync). No-op while failed or with nothing pending.
  bool sync();

  bool failed() const { return failed_; }

  /// Highest record version covered by a successful sync (base_version
  /// when none) — the writer's own durability watermark, which the crash
  /// sweep uses as the recovery lower bound.
  uint64_t synced_version() const { return synced_version_; }

 private:
  /// Writes staged frames to the file without fsync (buffer bound, crash
  /// semantics unchanged: unwritten == unsynced == losable).
  bool flush_buffer();

  std::unique_ptr<FsFile> file_;
  std::vector<uint8_t> buffer_;  // staged frames since the last flush
  bool failed_ = false;
  uint64_t appended_version_;
  uint64_t synced_version_;
  uint32_t unsynced_records_ = 0;
  WalWriterOptions opts_;
  std::chrono::steady_clock::time_point last_sync_;
};

/// One parsed segment: the valid record prefix plus how it ended.
struct WalSegment {
  bool header_ok = false;
  uint64_t base_version = 0;
  std::vector<WalRecord> records;
  /// True when parsing stopped at a bad frame (torn/corrupt tail) rather
  /// than clean end-of-file.
  bool truncated_tail = false;
};

/// Reads and validates segment `path` per the torn-tail rule above.
/// Records come back with contiguous versions starting at base_version+1.
WalSegment read_wal_segment(Fs& fs, const std::string& path);

}  // namespace parspan
