#include "durability/wal_tail.hpp"

#include <algorithm>

#include "container/flat_map.hpp"
#include "durability/checkpoint.hpp"
#include "service/spanner_snapshot.hpp"

namespace parspan {

namespace {

bool valid_graph_key(EdgeKey k, uint64_t n) {
  auto [lo, hi] = edge_endpoints(k);
  return lo < hi && hi < n;
}

}  // namespace

std::optional<DurableState> read_durable_state(Fs& fs, const std::string& dir,
                                               uint64_t max_version) {
  // Newest verified checkpoint at/below the cap. A checkpoint above the
  // cap is unusable even if valid: state cannot be rolled backward, only
  // replayed forward.
  std::vector<uint64_t> ckpts;
  for (const std::string& name : fs.list(dir))
    if (auto v = parse_checkpoint_file_name(name); v && *v <= max_version)
      ckpts.push_back(*v);
  std::sort(ckpts.begin(), ckpts.end());
  std::optional<Checkpoint> chosen;
  while (!ckpts.empty()) {
    auto c = load_checkpoint(fs, dir, ckpts.back());
    if (c && snapshot_content_checksum(c->n, c->stretch, c->version,
                                       c->snap_keys) == c->snapshot_checksum) {
      chosen = std::move(c);
      break;
    }
    ckpts.pop_back();  // rotten — skip, but leave the file alone
  }
  if (!chosen) return std::nullopt;

  DurableState out;
  out.n = chosen->n;
  out.stretch = chosen->stretch;
  out.version = chosen->version;
  out.checksum = chosen->snapshot_checksum;
  out.snap_keys = std::move(chosen->snap_keys);

  FlatHashSet<EdgeKey> graph;
  for (EdgeKey k : chosen->graph_keys) graph.insert(k);

  // Same replay walk as ShardDurability::recover, clamped at the cap.
  std::vector<uint64_t> bases;
  for (const std::string& name : fs.list(dir))
    if (auto b = parse_wal_file_name(name); b && *b >= out.version)
      bases.push_back(*b);
  std::sort(bases.begin(), bases.end());
  bool stop = false;
  for (uint64_t base : bases) {
    if (stop || out.version >= max_version) break;
    WalSegment seg = read_wal_segment(fs, dir + "/" + wal_file_name(base));
    if (!seg.header_ok) break;
    if (seg.base_version > out.version) break;  // gap: later epochs unusable
    for (WalRecord& rec : seg.records) {
      if (rec.version <= out.version) continue;
      if (rec.version > max_version) {
        stop = true;
        break;
      }
      if (rec.version != out.version + 1) {
        stop = true;
        break;
      }
      auto folded =
          checked_apply_diff(out.snap_keys, rec.diff_inserted, rec.diff_removed);
      if (!folded || snapshot_content_checksum(out.n, out.stretch, rec.version,
                                               *folded) != rec.checksum) {
        stop = true;
        break;
      }
      out.snap_keys = std::move(*folded);
      for (EdgeKey k : rec.input_deleted)
        if (valid_graph_key(k, out.n)) graph.erase(k);
      for (EdgeKey k : rec.input_inserted)
        if (valid_graph_key(k, out.n)) graph.insert(k);
      out.version = rec.version;
      out.checksum = rec.checksum;
    }
    if (seg.truncated_tail) break;
  }
  out.graph_keys = graph.sorted_keys();
  return out;
}

bool read_wal_range(Fs& fs, const std::string& dir, uint64_t from, uint64_t to,
                    std::vector<WalRecord>* out) {
  out->clear();
  if (from >= to) return from == to;
  // Anchor at the newest segment whose base covers `from`: segment base b
  // holds versions (b, next-base]. A missing anchor means the history
  // below `from` was GC'd past the ack point.
  std::vector<uint64_t> bases;
  for (const std::string& name : fs.list(dir))
    if (auto b = parse_wal_file_name(name)) bases.push_back(*b);
  std::sort(bases.begin(), bases.end());
  auto it = std::upper_bound(bases.begin(), bases.end(), from);
  if (it == bases.begin()) return false;
  --it;

  uint64_t cur = from;
  for (; it != bases.end() && cur < to; ++it) {
    WalSegment seg = read_wal_segment(fs, dir + "/" + wal_file_name(*it));
    if (!seg.header_ok || seg.base_version > cur) return false;
    for (WalRecord& rec : seg.records) {
      if (rec.version <= cur) continue;
      if (rec.version != cur + 1) return false;
      cur = rec.version;
      out->push_back(std::move(rec));
      if (cur == to) return true;
    }
    // A torn tail mid-chain cannot be bridged by a later segment: its
    // missing records are gone (`cur < to` here since we didn't return).
    if (seg.truncated_tail) return false;
  }
  return cur == to;
}

}  // namespace parspan
