// MemFs: an in-memory Fs with precise crash semantics, the substrate of the
// fault-injection recovery harness (DESIGN.md §10.6).
//
// Every file is two byte ranges: `durable` (survives any crash — the bytes
// an fsync has covered) and an unsynced `tail` (appended but not yet
// synced — what real hardware may or may not have persisted when power
// dies). The harness schedules a crash at the K-th mutating operation:
// that operation fails (possibly after partially applying — a short
// write), and every later operation fails too, which is exactly how the
// durability layer experiences a dying disk (its sticky-failure model,
// DESIGN.md §10.5). crash_and_restart() then "reboots": per file, the
// unsynced tail survives as a *caller-chosen random prefix* (modeling
// partial page writeback — the torn tail), optionally with a bit flipped
// at a random offset (modeling torn-sector garbage), and I/O works again.
//
// This turns "kill -9 the process at an arbitrary instruction" into a
// deterministic, in-process sweep: hundreds of crash points per second,
// each yielding a byte-exact post-crash disk image to recover from, with
// the pre-crash run's publish history available in the same address space
// as the correctness oracle.
//
// Thread safety: all operations lock one mutex — the writer pool's shards
// append concurrently through the same MemFs in the sharded tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "durability/fs.hpp"
#include "util/rng.hpp"

namespace parspan {

/// How much of each file's unsynced tail survives a crash_and_restart().
enum class CrashTail {
  kLoseAll,     // strict power-fail: nothing unsynced survives
  kKeepPrefix,  // a random prefix per file survives (partial writeback)
  kKeepAll,     // everything reached the disk just in time
};

class MemFs final : public Fs {
 public:
  MemFs() = default;

  /// Schedules a crash at the `op`-th mutating operation from now
  /// (1-based): that operation fails — an append applies a random prefix
  /// first (short write) — and all later operations fail until
  /// crash_and_restart(). 0 cancels.
  void crash_at_op(uint64_t op) {
    std::lock_guard<std::mutex> lk(mu_);
    ops_ = 0;
    crash_at_ = op;
    crashed_ = false;
  }

  /// Makes the `op`-th mutating operation fail (appends apply a short
  /// write) WITHOUT crashing the filesystem — later operations succeed.
  /// Models a transient I/O error; the durability layer must go sticky-
  /// failed on its own.
  void fail_at_op(uint64_t op) {
    std::lock_guard<std::mutex> lk(mu_);
    ops_ = 0;
    fail_at_ = op;
  }

  bool crashed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return crashed_;
  }

  /// Mutating operations performed since the last schedule reset — run a
  /// workload once to learn the op budget, then sweep crash points in it.
  uint64_t ops() const {
    std::lock_guard<std::mutex> lk(mu_);
    return ops_;
  }

  /// "Reboots" after a crash (or just simulates one now): per file the
  /// unsynced tail is resolved per `tail` policy using `rng`, and with
  /// probability `bit_flip_p` one surviving unsynced byte gets a flipped
  /// bit. I/O works again afterwards; open FsFile handles from before the
  /// crash stay dead (their appends keep failing).
  void crash_and_restart(CrashTail tail, Rng& rng, double bit_flip_p = 0.0) {
    std::lock_guard<std::mutex> lk(mu_);
    ++epoch_;
    for (auto& [path, f] : files_) {
      size_t keep = 0;
      switch (tail) {
        case CrashTail::kLoseAll: keep = 0; break;
        case CrashTail::kKeepPrefix:
          keep = f.tail.empty()
                     ? 0
                     : static_cast<size_t>(rng.next_below(f.tail.size() + 1));
          break;
        case CrashTail::kKeepAll: keep = f.tail.size(); break;
      }
      if (keep > 0 && bit_flip_p > 0.0 && rng.next_bool(bit_flip_p)) {
        size_t at = static_cast<size_t>(rng.next_below(keep));
        f.tail[at] ^= static_cast<uint8_t>(1u << rng.next_below(8));
      }
      f.durable.insert(f.durable.end(), f.tail.begin(), f.tail.begin() + keep);
      f.tail.clear();
    }
    crashed_ = false;
    crash_at_ = 0;
    fail_at_ = 0;
    ops_ = 0;
  }

  /// Flips one bit of the DURABLE image of `path` at `offset` — corruption
  /// that an fsync already "guaranteed", i.e. silent media rot. Recovery
  /// must refuse to replay the affected frame.
  bool corrupt_durable(const std::string& path, size_t offset, uint8_t bit) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = files_.find(path);
    if (it == files_.end() || offset >= it->second.durable.size())
      return false;
    it->second.durable[offset] ^= static_cast<uint8_t>(1u << (bit & 7));
    return true;
  }

  /// Durable size of `path` (0 when missing) — lets tests aim corruption.
  size_t durable_size(const std::string& path) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = files_.find(path);
    return it == files_.end() ? 0 : it->second.durable.size();
  }

  // --- Fs interface ---------------------------------------------------------

  std::unique_ptr<FsFile> create(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (!mutate_allowed()) return nullptr;
    MemFile& f = files_[path];
    f.durable.clear();
    f.tail.clear();
    return std::make_unique<Handle>(this, path, epoch_);
  }

  bool read_file(const std::string& path, std::vector<uint8_t>* out) override {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return false;
    // Reads see everything written (durable + tail): the OS page cache
    // serves unsynced data to a live process; only a crash loses it.
    out->assign(it->second.durable.begin(), it->second.durable.end());
    out->insert(out->end(), it->second.tail.begin(), it->second.tail.end());
    return true;
  }

  bool rename(const std::string& from, const std::string& to) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (!mutate_allowed()) return false;
    auto it = files_.find(from);
    if (it == files_.end()) return false;
    // Modeled as atomic + immediately durable (PosixFs syncs the parent
    // directory). Crash points still land before/after via the op budget.
    MemFile f = std::move(it->second);
    f.durable.insert(f.durable.end(), f.tail.begin(), f.tail.end());
    f.tail.clear();
    files_.erase(it);
    files_[to] = std::move(f);
    return true;
  }

  bool remove(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (!mutate_allowed()) return false;
    return files_.erase(path) > 0;
  }

  bool mkdirs(const std::string&) override {
    std::lock_guard<std::mutex> lk(mu_);
    return mutate_allowed();  // directories are implicit in the path map
  }

  std::vector<std::string> list(const std::string& dir) override {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> out;
    std::string prefix = dir;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    for (const auto& [path, f] : files_) {
      if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0)
        continue;
      std::string rest = path.substr(prefix.size());
      if (rest.find('/') == std::string::npos) out.push_back(std::move(rest));
    }
    return out;  // map iteration is already sorted
  }

 private:
  struct MemFile {
    std::vector<uint8_t> durable;  // covered by a sync
    std::vector<uint8_t> tail;     // written, not yet synced
  };

  class Handle final : public FsFile {
   public:
    Handle(MemFs* fs, std::string path, uint64_t epoch)
        : fs_(fs), path_(std::move(path)), epoch_(epoch) {}

    bool append(const void* data, size_t len) override {
      std::lock_guard<std::mutex> lk(fs_->mu_);
      if (epoch_ != fs_->epoch_) return false;  // handle from before a crash
      auto it = fs_->files_.find(path_);
      if (it == fs_->files_.end()) return false;
      const uint8_t* p = static_cast<const uint8_t*>(data);
      uint64_t op = ++fs_->ops_;
      bool crash = fs_->crash_at_ != 0 && op >= fs_->crash_at_;
      bool fail = fs_->fail_at_ != 0 && op == fs_->fail_at_;
      if (fs_->crashed_ || crash || fail) {
        if (!fs_->crashed_ && len > 0) {
          // Short write: a prefix reaches the page cache before the fault.
          size_t part = static_cast<size_t>(fs_->fault_rng_.next_below(len));
          it->second.tail.insert(it->second.tail.end(), p, p + part);
        }
        if (crash) fs_->crashed_ = true;
        return false;
      }
      it->second.tail.insert(it->second.tail.end(), p, p + len);
      return true;
    }

    bool sync() override {
      std::lock_guard<std::mutex> lk(fs_->mu_);
      if (epoch_ != fs_->epoch_) return false;
      auto it = fs_->files_.find(path_);
      if (it == fs_->files_.end()) return false;
      uint64_t op = ++fs_->ops_;
      bool crash = fs_->crash_at_ != 0 && op >= fs_->crash_at_;
      bool fail = fs_->fail_at_ != 0 && op == fs_->fail_at_;
      if (fs_->crashed_ || crash || fail) {
        // A failed fsync promises nothing: the tail stays volatile.
        if (crash) fs_->crashed_ = true;
        return false;
      }
      auto& f = it->second;
      f.durable.insert(f.durable.end(), f.tail.begin(), f.tail.end());
      f.tail.clear();
      return true;
    }

   private:
    MemFs* fs_;
    std::string path_;
    uint64_t epoch_;
  };

  // Caller must hold mu_. Counts the op; applies crash/fail scheduling for
  // non-append mutations (create/rename/remove/mkdirs — all-or-nothing).
  bool mutate_allowed() {
    if (crashed_) return false;
    uint64_t op = ++ops_;
    if (crash_at_ != 0 && op >= crash_at_) {
      crashed_ = true;
      return false;
    }
    if (fail_at_ != 0 && op == fail_at_) return false;
    return true;
  }

  mutable std::mutex mu_;
  std::map<std::string, MemFile> files_;
  uint64_t ops_ = 0;
  uint64_t crash_at_ = 0;
  uint64_t fail_at_ = 0;
  bool crashed_ = false;
  uint64_t epoch_ = 0;  // bumped per restart; stale handles fail
  Rng fault_rng_{0x5eedf00dULL};  // short-write split points
};

}  // namespace parspan
