#include "durability/wal.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>

namespace parspan {

namespace {

// Reflected CRC32C (Castagnoli, poly 0x82F63B78), slice-by-8. Software
// only on purpose: the value must be identical on every platform the log
// might be replayed on, and slicing reaches multi-GB/s — far above WAL
// bandwidth here — without hardware instructions. Table 0 is the plain
// byte-at-a-time table; table j holds the CRC advanced j further zero
// bytes, so eight lookups fold eight message bytes per step.
std::array<std::array<uint32_t, 256>, 8> make_crc32c_tables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i)
    for (int j = 1; j < 8; ++j)
      t[j][i] = t[0][t[j - 1][i] & 0xff] ^ (t[j - 1][i] >> 8);
  return t;
}

constexpr uint64_t kWalMagic = 0x31304C4157505350ULL;  // "PSPWAL01" LE
constexpr size_t kWalHeaderSize = 8 + 8 + 8 + 4;

}  // namespace

std::string wal_file_name(uint64_t base_version) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "wal-%016llx.log",
                static_cast<unsigned long long>(base_version));
  return buf;
}

std::optional<uint64_t> parse_wal_file_name(const std::string& name) {
  unsigned long long v = 0;
  char tail = 0;
  if (std::sscanf(name.c_str(), "wal-%16llx.lo%c", &v, &tail) != 2 ||
      tail != 'g' || name.size() != wal_file_name(v).size())
    return std::nullopt;
  return v;
}

std::optional<std::vector<EdgeKey>> checked_apply_diff(
    std::span<const EdgeKey> base, std::span<const EdgeKey> add,
    std::span<const EdgeKey> rem) {
  auto sorted_unique = [](std::span<const EdgeKey> v) {
    return std::is_sorted(v.begin(), v.end()) &&
           std::adjacent_find(v.begin(), v.end()) == v.end();
  };
  if (!sorted_unique(add) || !sorted_unique(rem)) return std::nullopt;
  std::vector<EdgeKey> out;
  out.reserve(base.size() + add.size());
  size_t a = 0, r = 0;
  for (EdgeKey k : base) {
    if (r < rem.size() && rem[r] == k) {
      ++r;
      continue;
    }
    if (r < rem.size() && rem[r] < k) return std::nullopt;  // rem key absent
    while (a < add.size() && add[a] < k) out.push_back(add[a++]);
    if (a < add.size() && add[a] == k) return std::nullopt;  // add key present
    out.push_back(k);
  }
  if (r != rem.size()) return std::nullopt;
  while (a < add.size()) out.push_back(add[a++]);
  return out;
}

uint32_t crc32c(const uint8_t* data, size_t len, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> t = make_crc32c_tables();
  uint32_t c = ~seed;
  while (len >= 8) {
    c = t[7][(c ^ data[0]) & 0xff] ^ t[6][((c >> 8) ^ data[1]) & 0xff] ^
        t[5][((c >> 16) ^ data[2]) & 0xff] ^ t[4][((c >> 24) ^ data[3]) & 0xff] ^
        t[3][data[4]] ^ t[2][data[5]] ^ t[1][data[6]] ^ t[0][data[7]];
    data += 8;
    len -= 8;
  }
  for (size_t i = 0; i < len; ++i) c = t[0][(c ^ data[i]) & 0xff] ^ (c >> 8);
  return ~c;
}

namespace {

// Worst case: every varint takes its 10-byte maximum.
size_t wal_record_payload_bound(const WalRecord& rec) {
  return 1 + 8 + 8 + 16 +
         kMaxUvarintLen *
             (rec.input_deleted.size() + rec.input_inserted.size() +
              rec.diff_removed.size() + rec.diff_inserted.size());
}

// Serializes into a buffer of at least wal_record_payload_bound() bytes;
// returns one past the last byte written. Key lists must be strictly
// ascending (delta encoding).
uint8_t* encode_wal_record_to(const WalRecord& rec, uint8_t* p) {
  *p++ = rec.type;
  store_le64(p, rec.version);
  store_le64(p + 8, rec.checksum);
  p += 16;
  store_le32(p, uint32_t(rec.input_deleted.size()));
  store_le32(p + 4, uint32_t(rec.input_inserted.size()));
  store_le32(p + 8, uint32_t(rec.diff_removed.size()));
  store_le32(p + 12, uint32_t(rec.diff_inserted.size()));
  p += 16;
  for (const std::vector<EdgeKey>* v :
       {&rec.input_deleted, &rec.input_inserted, &rec.diff_removed,
        &rec.diff_inserted}) {
    assert(std::is_sorted(v->begin(), v->end()) &&
           std::adjacent_find(v->begin(), v->end()) == v->end() &&
           "WAL key lists must be strictly ascending");
    p = encode_ascending_list(v->data(), v->size(), p);
  }
  return p;
}

}  // namespace

std::vector<uint8_t> encode_wal_record(const WalRecord& rec) {
  std::vector<uint8_t> out(wal_record_payload_bound(rec));
  uint8_t* end = encode_wal_record_to(rec, out.data());
  out.resize(size_t(end - out.data()));
  return out;
}

bool decode_wal_record(const uint8_t* data, size_t len, WalRecord* out) {
  if (len < 1 + 8 + 8 + 16) return false;
  const uint8_t* p = data;
  const uint8_t* end = data + len;
  out->type = *p++;
  if (out->type != WalRecord::kBatch && out->type != WalRecord::kRebase)
    return false;
  out->version = get_le64(p);
  p += 8;
  out->checksum = get_le64(p);
  p += 8;
  uint64_t counts[4];
  for (auto& c : counts) {
    c = get_le32(p);
    p += 4;
  }
  if (!decode_ascending_list(&p, end, counts[0], &out->input_deleted) ||
      !decode_ascending_list(&p, end, counts[1], &out->input_inserted) ||
      !decode_ascending_list(&p, end, counts[2], &out->diff_removed) ||
      !decode_ascending_list(&p, end, counts[3], &out->diff_inserted))
    return false;
  return p == end;  // trailing garbage is malformed, not ignorable
}

WalWriter::WalWriter(Fs& fs, const std::string& path, uint64_t base_version,
                     const WalWriterOptions& opts)
    : appended_version_(base_version),
      synced_version_(base_version),
      opts_(opts),
      last_sync_(std::chrono::steady_clock::now()) {
  file_ = fs.create(path);
  std::vector<uint8_t> hdr;
  hdr.reserve(kWalHeaderSize);
  put_le64(hdr, kWalMagic);
  put_le64(hdr, base_version);
  put_le64(hdr, 0);  // reserved
  put_le32(hdr, crc32c(hdr.data(), hdr.size()));
  if (file_ == nullptr || !file_->append(hdr.data(), hdr.size()) ||
      !file_->sync())
    failed_ = true;
}

namespace {
// Staged-frame bound before a forced write-out: keeps writer memory flat
// during long sync intervals without changing what a crash can lose.
constexpr size_t kFlushThreshold = 256 * 1024;
}  // namespace

bool WalWriter::append(const WalRecord& rec) {
  if (failed_) return false;
  // Frames are encoded in place at the tail of the staging buffer: no
  // per-record allocation, syscall, or payload copy on the ingest path.
  const size_t at = buffer_.size();
  buffer_.resize(at + kFrameHeaderSize + wal_record_payload_bound(rec));
  uint8_t* frame = buffer_.data() + at;
  uint8_t* end = encode_wal_record_to(rec, frame + kFrameHeaderSize);
  const size_t payload_size = size_t(end - frame) - kFrameHeaderSize;
  buffer_.resize(at + kFrameHeaderSize + payload_size);
  seal_frame(frame, payload_size);
  appended_version_ = rec.version;
  ++unsynced_records_;
  bool want_sync = false;
  switch (opts_.policy) {
    case FsyncPolicy::kEveryRecord:
      want_sync = true;
      break;
    case FsyncPolicy::kEveryN:
      want_sync = unsynced_records_ >= std::max<uint32_t>(1, opts_.every_n);
      break;
    case FsyncPolicy::kTimed:
      want_sync =
          std::chrono::steady_clock::now() - last_sync_ >= opts_.interval;
      break;
  }
  if (want_sync) return sync();
  return buffer_.size() >= kFlushThreshold ? flush_buffer() : true;
}

bool WalWriter::flush_buffer() {
  if (failed_) return false;
  if (buffer_.empty()) return true;
  if (!file_->append(buffer_.data(), buffer_.size())) {
    failed_ = true;
    return false;
  }
  buffer_.clear();
  return true;
}

bool WalWriter::sync() {
  if (failed_) return false;
  if (unsynced_records_ == 0) return true;
  if (!flush_buffer() || !file_->sync()) {
    failed_ = true;
    return false;
  }
  synced_version_ = appended_version_;
  unsynced_records_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
  return true;
}

WalSegment read_wal_segment(Fs& fs, const std::string& path) {
  WalSegment seg;
  std::vector<uint8_t> bytes;
  if (!fs.read_file(path, &bytes)) return seg;
  if (bytes.size() < kWalHeaderSize) return seg;
  if (get_le64(bytes.data()) != kWalMagic) return seg;
  if (get_le32(bytes.data() + 24) != crc32c(bytes.data(), 24)) return seg;
  seg.header_ok = true;
  seg.base_version = get_le64(bytes.data() + 8);
  size_t off = kWalHeaderSize;
  uint64_t expect = seg.base_version + 1;
  while (off < bytes.size()) {
    // At EOF a partial frame is a torn tail (kNeedMore with no more bytes
    // coming), indistinguishable on disk from any other truncation.
    FrameView fv;
    if (parse_frame(bytes.data() + off, bytes.size() - off, kMaxFramePayload,
                    &fv) != FrameParse::kOk) {
      seg.truncated_tail = true;
      break;
    }
    WalRecord rec;
    if (!decode_wal_record(fv.payload, fv.len, &rec) || rec.version != expect) {
      seg.truncated_tail = true;
      break;
    }
    seg.records.push_back(std::move(rec));
    ++expect;
    off += fv.consumed;
  }
  return seg;
}

}  // namespace parspan
