// Deterministic, splittable pseudo-random number generation.
//
// All randomized algorithms in the library draw from Rng so that runs are
// reproducible given a seed, and so that per-vertex / per-edge streams can be
// split off without contention between threads (each parallel task derives an
// independent stream from (seed, index) via splitmix64).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace parspan {

/// splitmix64 finalizer: a high-quality 64-bit mixing function.
inline constexpr uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stateless hash of a (seed, index) pair to a uniform 64-bit value.
/// Used to assign independent random values to vertices/edges in parallel.
inline constexpr uint64_t hash_combine(uint64_t seed, uint64_t index) {
  return splitmix64(seed ^ splitmix64(index + 0x9e3779b97f4a7c15ULL));
}

/// xoshiro256** PRNG: fast, 256-bit state, passes BigCrush.
/// Satisfies the essentials of UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Reinitializes the state from a 64-bit seed via splitmix64 expansion.
  void reseed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      s = splitmix64(x);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return next(); }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) {
    // Lemire's nearly-divisionless method.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) coin flip.
  bool next_bool(double p) { return next_double() < p; }

  /// Exponential(beta) sample: density beta * exp(-beta x) for x >= 0.
  /// This is the distribution used by exponential start-time clustering
  /// [MPX13, MPVX15]: Exp(beta) with rate parameter beta.
  double next_exponential(double beta) {
    // Inverse CDF; guard against log(0).
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -std::log1p(-u) / beta;
  }

  /// Independent child generator for stream `index` (for parallel tasks).
  Rng split(uint64_t index) const {
    return Rng(hash_combine(s_[0] ^ s_[3], index));
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace parspan
