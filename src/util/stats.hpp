// Small descriptive-statistics helpers used by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace parspan {

/// Running mean / variance / extrema accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  double sum() const { return sum_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// p-th percentile (0 <= p <= 1) of a sample; copies and sorts.
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  double idx = p * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace parspan
