// Wall-clock timing helper for benchmarks and examples.
#pragma once

#include <chrono>

namespace parspan {

/// Simple monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last reset().
  double elapsed_ms() const { return elapsed_s() * 1e3; }

  /// Elapsed microseconds since construction or last reset().
  double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace parspan
