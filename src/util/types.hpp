// Core scalar types and edge-key helpers shared across the library.
//
// Vertices are dense integer ids in [0, n). Undirected edges are canonically
// encoded as a single 64-bit key with the smaller endpoint in the high word,
// so that an edge can be used directly as a hash-table key.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

namespace parspan {

/// Dense vertex identifier. Graphs index vertices as [0, n).
using VertexId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);

/// Canonical 64-bit key for an undirected edge {u, v} (order-insensitive).
using EdgeKey = uint64_t;

/// Sentinel for "no edge".
inline constexpr EdgeKey kNoEdge = static_cast<EdgeKey>(-1);

/// Builds the canonical key for the undirected edge {u, v}.
inline constexpr EdgeKey edge_key(VertexId u, VertexId v) {
  VertexId lo = u < v ? u : v;
  VertexId hi = u < v ? v : u;
  return (static_cast<uint64_t>(lo) << 32) | static_cast<uint64_t>(hi);
}

/// Recovers the (smaller, larger) endpoints of a canonical edge key.
inline constexpr std::pair<VertexId, VertexId> edge_endpoints(EdgeKey k) {
  return {static_cast<VertexId>(k >> 32),
          static_cast<VertexId>(k & 0xffffffffULL)};
}

/// An undirected edge as an explicit endpoint pair.
struct Edge {
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;

  Edge() = default;
  Edge(VertexId a, VertexId b) : u(a), v(b) {}

  /// Canonical key of this edge (order-insensitive).
  EdgeKey key() const { return edge_key(u, v); }

  /// The endpoint different from `w`; `w` must be one of the endpoints.
  VertexId other(VertexId w) const { return w == u ? v : u; }

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.key() == b.key();
  }
  friend bool operator!=(const Edge& a, const Edge& b) { return !(a == b); }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.key() < b.key();
  }
};

/// Constructs an Edge from a canonical key.
inline Edge edge_from_key(EdgeKey k) {
  auto [u, v] = edge_endpoints(k);
  return Edge(u, v);
}

}  // namespace parspan

namespace std {
template <>
struct hash<parspan::Edge> {
  size_t operator()(const parspan::Edge& e) const {
    // splitmix64-style finalizer over the canonical key.
    uint64_t x = e.key();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};
}  // namespace std
