#include "util/version.hpp"

namespace parspan {

const char* version() { return "0.1.0"; }

}  // namespace parspan
