// Library version string.
#pragma once

namespace parspan {

/// Returns the semantic version of the parspan library.
const char* version();

}  // namespace parspan
