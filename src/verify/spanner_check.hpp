// Spanner verification oracles.
//
// A subgraph H is a k-spanner of G iff for every EDGE (u,v) of G,
// dist_H(u,v) <= k (the per-edge condition implies the all-pairs condition
// by composing along shortest paths). The oracles here check exactly that,
// with one bounded BFS per distinct source endpoint.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace parspan {

/// True iff `spanner` ⊆ `graph` and dist_spanner(u,v) <= stretch for every
/// (u,v) in `graph`. n = number of vertices.
bool is_spanner(size_t n, const std::vector<Edge>& graph,
                const std::vector<Edge>& spanner, uint32_t stretch);

/// Maximum over graph edges (u,v) of dist_spanner(u,v); returns UINT32_MAX
/// if some graph edge's endpoints are disconnected in the spanner within
/// `limit` hops. Useful for measuring the empirical stretch in benchmarks.
uint32_t max_edge_stretch(size_t n, const std::vector<Edge>& graph,
                          const std::vector<Edge>& spanner, uint32_t limit);

}  // namespace parspan
