#include "verify/laplacian.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace parspan {

double quadratic_form(const std::vector<WeightedEdge>& edges,
                      const std::vector<double>& x) {
  double s = 0;
  for (const WeightedEdge& we : edges) {
    double d = x[we.e.u] - x[we.e.v];
    s += we.w * d * d;
  }
  return s;
}

double cut_weight(const std::vector<WeightedEdge>& edges,
                  const std::vector<uint8_t>& in_s) {
  double s = 0;
  for (const WeightedEdge& we : edges)
    if (in_s[we.e.u] != in_s[we.e.v]) s += we.w;
  return s;
}

QualityReport sparsifier_quality(size_t n, const std::vector<Edge>& g,
                                 const std::vector<WeightedEdge>& h,
                                 size_t vectors, size_t cuts, uint64_t seed) {
  std::vector<WeightedEdge> gw;
  gw.reserve(g.size());
  for (const Edge& e : g) gw.push_back({e, 1.0});
  QualityReport rep;
  Rng rng(seed);
  std::vector<double> x(n);
  for (size_t it = 0; it < vectors; ++it) {
    // Gaussian via Box-Muller on uniform doubles.
    for (size_t v = 0; v < n; ++v) {
      double u1 = std::max(rng.next_double(), 1e-12);
      double u2 = rng.next_double();
      x[v] = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307 * u2);
    }
    double fg = quadratic_form(gw, x);
    double fh = quadratic_form(h, x);
    if (fg > 1e-9) {
      rep.max_form_err = std::max(rep.max_form_err, std::abs(fh / fg - 1.0));
      ++rep.samples;
    }
  }
  std::vector<uint8_t> in_s(n);
  for (size_t it = 0; it < cuts; ++it) {
    for (size_t v = 0; v < n; ++v) in_s[v] = rng.next_bool(0.5) ? 1 : 0;
    double cg = cut_weight(gw, in_s);
    double ch = cut_weight(h, in_s);
    if (cg > 1e-9) {
      rep.max_cut_err = std::max(rep.max_cut_err, std::abs(ch / cg - 1.0));
      ++rep.samples;
    }
  }
  return rep;
}

}  // namespace parspan
