#include "verify/spanner_check.hpp"

#include <algorithm>
#include <unordered_set>

#include "graph/bfs.hpp"
#include "graph/dynamic_graph.hpp"
#include "parallel/parallel_for.hpp"

namespace parspan {

namespace {

/// Groups graph edges by their smaller endpoint and runs one bounded BFS in
/// the spanner per distinct endpoint; returns the max edge stretch found
/// (UINT32_MAX if any edge is not covered within `limit`).
uint32_t edge_stretch_impl(size_t n, const std::vector<Edge>& graph,
                           const std::vector<Edge>& spanner, uint32_t limit) {
  DynamicGraph h(n);
  h.insert_edges(spanner);
  // Bucket edges by u endpoint.
  std::vector<Edge> sorted = graph;
  std::sort(sorted.begin(), sorted.end(), [](const Edge& a, const Edge& b) {
    return std::min(a.u, a.v) < std::min(b.u, b.v);
  });
  uint32_t worst = 0;
  size_t i = 0;
  while (i < sorted.size()) {
    VertexId src = std::min(sorted[i].u, sorted[i].v);
    size_t j = i;
    while (j < sorted.size() && std::min(sorted[j].u, sorted[j].v) == src)
      ++j;
    auto d = bounded_bfs(h, {src}, limit);
    for (size_t e = i; e < j; ++e) {
      VertexId other = std::max(sorted[e].u, sorted[e].v);
      if (d[other] > limit) return UINT32_MAX;
      worst = std::max(worst, d[other]);
    }
    i = j;
  }
  return worst;
}

}  // namespace

bool is_spanner(size_t n, const std::vector<Edge>& graph,
                const std::vector<Edge>& spanner, uint32_t stretch) {
  // Subset check.
  std::unordered_set<EdgeKey> gset;
  gset.reserve(graph.size() * 2);
  for (const Edge& e : graph) gset.insert(e.key());
  for (const Edge& e : spanner)
    if (!gset.count(e.key())) return false;
  return edge_stretch_impl(n, graph, spanner, stretch) != UINT32_MAX;
}

uint32_t max_edge_stretch(size_t n, const std::vector<Edge>& graph,
                          const std::vector<Edge>& spanner, uint32_t limit) {
  return edge_stretch_impl(n, graph, spanner, limit);
}

}  // namespace parspan
