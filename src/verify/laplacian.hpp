// Laplacian / cut quality oracles for sparsifier verification.
//
// A (1±ε) spectral sparsifier satisfies
//   (1-ε) x^T L_H x <= x^T L_G x <= (1+ε) x^T L_H x  for all x,
// which cannot be checked exhaustively; the oracles sample random
// Rademacher/Gaussian vectors and random cuts (the x = 1_S special case)
// and report the worst observed relative deviation. Exact dense Laplacians
// are used, so these are only meant for small-to-medium n.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace parspan {

/// An edge with a positive weight (sparsifiers are weighted subgraphs).
struct WeightedEdge {
  Edge e;
  double w = 1.0;
};

/// x^T L x for the weighted edge list: sum_e w_e (x_u - x_v)^2.
double quadratic_form(const std::vector<WeightedEdge>& edges,
                      const std::vector<double>& x);

/// Weight of the cut (S, V\S): sum of w_e over edges with one endpoint in S.
double cut_weight(const std::vector<WeightedEdge>& edges,
                  const std::vector<uint8_t>& in_s);

struct QualityReport {
  /// max |form_H/form_G - 1| over the sampled quadratic forms (skipping
  /// near-zero forms).
  double max_form_err = 0.0;
  /// max |cut_H/cut_G - 1| over the sampled cuts.
  double max_cut_err = 0.0;
  size_t samples = 0;
};

/// Samples `vectors` random Gaussian x's and `cuts` random vertex subsets
/// and compares the weighted subgraph H against the unweighted graph G.
QualityReport sparsifier_quality(size_t n, const std::vector<Edge>& g,
                                 const std::vector<WeightedEdge>& h,
                                 size_t vectors, size_t cuts, uint64_t seed);

}  // namespace parspan
