// SpannerService: the concurrent query-serving layer over any batch-dynamic
// spanner backend (DESIGN.md §8).
//
// Roles:
//  * ONE writer thread calls apply(insertions, deletions). Each call runs
//    the backend's (internally parallel) batch update, folds the returned
//    net SpannerDiff into the previous snapshot's key list
//    (SpannerSnapshot::apply — incremental, no re-export), and publishes
//    the new version through the SnapshotStore.
//  * ANY number of reader threads call snapshot() and answer has_edge /
//    neighbors / distance / edges queries against the pinned, immutable
//    version — fully overlapped with the writer's next batch.
//
// The backend is type-erased behind a small concept (update /
// spanner_edges / num_vertices): FullyDynamicSpanner (Theorem 1.1, pass
// stretch 2k-1), UltraSparseSpanner (Theorem 1.4, pass stretch_bound()),
// or any future structure honoring the §6 diff contract — deletions first,
// duplicates filtered, both diff sides key-sorted and net. That contract
// is what the service inherits: the published snapshot sequence (and every
// diff) is a deterministic function of (backend construction, batch
// history), independent of the worker-thread count.
//
// Thread safety: apply() must be externally serialized (single writer —
// enforced by a debug trap); snapshot(), version(), and all SpannerSnapshot
// queries are safe from any thread at any time, including concurrently
// with apply().
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "core/cluster_spanner.hpp"
#include "durability/durable_shard.hpp"
#include "parallel/csr.hpp"
#include "service/snapshot_store.hpp"
#include "service/spanner_snapshot.hpp"
#include "util/types.hpp"

namespace parspan {

class SpannerService {
 public:
  /// Result of one writer batch: the diff the backend reported and the
  /// snapshot version that now serves it.
  struct ApplyResult {
    SpannerDiff diff;
    SpannerSnapshot::Ptr snapshot;
  };

  /// Takes ownership of a constructed backend and publishes version 0 from
  /// its current spanner (the only full spanner_edges() export the service
  /// ever performs). `stretch` is the backend's guarantee, served to
  /// readers via SpannerSnapshot::stretch().
  template <typename Backend>
  SpannerService(std::unique_ptr<Backend> backend, uint32_t stretch)
      : backend_(std::make_unique<Model<Backend>>(std::move(backend))) {
    store_.publish(SpannerSnapshot::initial(
        backend_->num_vertices(), backend_->spanner_edges(), stretch));
  }

  /// Applies one batch (deletions first, then insertions — the backend's
  /// documented semantics) and publishes the next snapshot version.
  /// Writer thread only. With durability enabled, the batch's WAL record
  /// is appended (and fsynced per policy) BEFORE the version becomes
  /// visible to readers — WAL-before-publish, DESIGN.md §10.2.
  ApplyResult apply(const std::vector<Edge>& insertions,
                    const std::vector<Edge>& deletions);

  /// Attaches a write-ahead log + checkpoint directory to this service
  /// (DESIGN.md §10). Must be called before the first apply() — the
  /// genesis checkpoint is cut from version 0. `graph_edges` is the edge
  /// set the backend was constructed with (empty for an empty initial
  /// graph); it seeds the graph shadow a post-crash backend is rebuilt
  /// from. False when the directory could not be initialized (the service
  /// still serves, without the durability claim).
  bool enable_durability(std::shared_ptr<Fs> fs, std::string dir,
                         const DurabilityOptions& opts,
                         const std::vector<Edge>& graph_edges);

  /// What recover() restored and republished.
  struct RecoveryReport {
    uint64_t restored_version = 0;   // version recovered from disk
    uint64_t restored_checksum = 0;  // == last durably logged checksum
    uint64_t replayed_records = 0;   // WAL records folded past the ckpt
    bool tail_truncated = false;     // log ended in a torn/corrupt frame
    uint64_t published_version = 0;  // the rebase epoch (restored + 1)
  };

  /// Rebuilds a service from a durability directory after a crash
  /// (DESIGN.md §10.4): loads the newest valid checkpoint, replays the WAL
  /// tail (each record's content checksum verified before it is applied,
  /// torn tails truncated at the first bad frame), publishes the restored
  /// snapshot at its exact pre-crash version/checksum, then REBASES — a
  /// fresh backend is built from the recovered graph via `make_backend(n,
  /// graph_edges)`, and its (generally different) spanner is published as
  /// restored_version + 1 with the symmetric diff logged as a kRebase
  /// record, followed by a forced checkpoint so repeated crash/recover
  /// cycles never accumulate log. `make_backend` must also return the
  /// stretch guarantee: it is called as make_backend(n, edges, stretch_in)
  /// where stretch_in is the recovered stretch, and returns
  /// std::unique_ptr<Backend>. nullptr when no valid checkpoint exists.
  template <typename MakeBackend>
  static std::unique_ptr<SpannerService> recover(
      std::shared_ptr<Fs> fs, std::string dir, const DurabilityOptions& opts,
      MakeBackend&& make_backend, RecoveryReport* report = nullptr) {
    auto rec = ShardDurability::recover(fs, std::move(dir), opts);
    if (!rec) return nullptr;

    std::vector<Edge> graph_edges(rec->graph_keys.size());
    for (size_t i = 0; i < rec->graph_keys.size(); ++i)
      graph_edges[i] = edge_from_key(rec->graph_keys[i]);

    auto svc = std::unique_ptr<SpannerService>(new SpannerService());
    svc->set_backend(make_backend(rec->n, graph_edges, rec->stretch));

    // Publish the EXACT pre-crash state first: readers of the restored
    // version see byte-identical content (checksum-asserted).
    SpannerSnapshot::Ptr restored = SpannerSnapshot::restore(
        rec->n, rec->stretch, rec->version, std::move(rec->snap_keys));
    assert(restored->checksum() == rec->checksum &&
           "recover: restored snapshot checksum diverged");
    svc->store_.publish(restored);

    // Rebase epoch: the rebuilt backend's spanner is a valid spanner of
    // the same graph but generally a different edge set. Publish it as the
    // next version with its diff durably logged, so the WAL chain stays
    // contiguous and a second crash recovers the rebased state.
    svc->dur_ = std::move(rec->dur);
    std::vector<EdgeKey> new_keys =
        canonical_edge_keys(rec->n, svc->backend_->spanner_edges());
    WalRecord rebase;
    rebase.type = WalRecord::kRebase;
    rebase.version = rec->version + 1;
    std::set_difference(restored->edge_keys().begin(),
                        restored->edge_keys().end(), new_keys.begin(),
                        new_keys.end(), std::back_inserter(rebase.diff_removed));
    std::set_difference(new_keys.begin(), new_keys.end(),
                        restored->edge_keys().begin(),
                        restored->edge_keys().end(),
                        std::back_inserter(rebase.diff_inserted));
    rebase.checksum = snapshot_content_checksum(rec->n, rec->stretch,
                                                rebase.version, new_keys);
    SpannerSnapshot::Ptr rebased = SpannerSnapshot::restore(
        rec->n, rec->stretch, rebase.version, std::move(new_keys));
    svc->dur_->log_record(rebase);
    svc->store_.publish(rebased);
    svc->dur_->checkpoint_now(rebased->version(), rebased->checksum(),
                              rebased->edge_keys());

    if (report != nullptr) {
      report->restored_version = rec->version;
      report->restored_checksum = rec->checksum;
      report->replayed_records = rec->replayed_records;
      report->tail_truncated = rec->tail_truncated;
      report->published_version = rebased->version();
    }
    return svc;
  }

  /// The attached durability driver, or nullptr. Exposes failed() and
  /// durable_version() — the crash sweep's recovery lower bound.
  const ShardDurability* durability() const { return dur_.get(); }

  /// Pins the currently served snapshot (one pointer-copy critical
  /// section — DESIGN.md §8.1). Any thread; the returned version stays
  /// fully valid for as long as the caller holds it, across any number of
  /// later publishes.
  SpannerSnapshot::Ptr snapshot() const { return store_.acquire(); }

  /// Version currently being served (= number of batches applied).
  uint64_t version() const { return store_.acquire()->version(); }

  size_t num_vertices() const { return backend_->num_vertices(); }

  /// Re-exports the backend's spanner (bypassing the snapshot path) for
  /// differential checks. Writer-quiescent only — not safe concurrently
  /// with apply().
  std::vector<Edge> export_spanner() const {
    return backend_->spanner_edges();
  }

 private:
  SpannerService() = default;  // recover() builds the parts by hand

  template <typename Backend>
  void set_backend(std::unique_ptr<Backend> b) {
    backend_ = std::make_unique<Model<Backend>>(std::move(b));
  }

  struct Concept {
    virtual ~Concept() = default;
    virtual SpannerDiff update(const std::vector<Edge>& ins,
                               const std::vector<Edge>& del) = 0;
    virtual std::vector<Edge> spanner_edges() const = 0;
    virtual size_t num_vertices() const = 0;
  };

  template <typename B>
  struct Model final : Concept {
    explicit Model(std::unique_ptr<B> b) : impl(std::move(b)) {}
    SpannerDiff update(const std::vector<Edge>& ins,
                       const std::vector<Edge>& del) override {
      return impl->update(ins, del);
    }
    std::vector<Edge> spanner_edges() const override {
      return impl->spanner_edges();
    }
    size_t num_vertices() const override { return impl->num_vertices(); }
    std::unique_ptr<B> impl;
  };

  std::unique_ptr<Concept> backend_;
  SnapshotStore store_;
  std::unique_ptr<ShardDurability> dur_;  // nullptr = durability off
  std::atomic<bool> writer_busy_{false};  // single-writer debug trap
};

}  // namespace parspan
