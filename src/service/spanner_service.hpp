// SpannerService: the concurrent query-serving layer over any batch-dynamic
// spanner backend (DESIGN.md §8).
//
// Roles:
//  * ONE writer thread calls apply(insertions, deletions). Each call runs
//    the backend's (internally parallel) batch update, folds the returned
//    net SpannerDiff into the previous snapshot's key list
//    (SpannerSnapshot::apply — incremental, no re-export), and publishes
//    the new version through the SnapshotStore.
//  * ANY number of reader threads call snapshot() and answer has_edge /
//    neighbors / distance / edges queries against the pinned, immutable
//    version — fully overlapped with the writer's next batch.
//
// The backend is type-erased behind a small concept (update /
// spanner_edges / num_vertices): FullyDynamicSpanner (Theorem 1.1, pass
// stretch 2k-1), UltraSparseSpanner (Theorem 1.4, pass stretch_bound()),
// or any future structure honoring the §6 diff contract — deletions first,
// duplicates filtered, both diff sides key-sorted and net. That contract
// is what the service inherits: the published snapshot sequence (and every
// diff) is a deterministic function of (backend construction, batch
// history), independent of the worker-thread count.
//
// Thread safety: apply() must be externally serialized (single writer —
// enforced by a debug trap); snapshot(), version(), and all SpannerSnapshot
// queries are safe from any thread at any time, including concurrently
// with apply().
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/cluster_spanner.hpp"
#include "service/snapshot_store.hpp"
#include "service/spanner_snapshot.hpp"
#include "util/types.hpp"

namespace parspan {

class SpannerService {
 public:
  /// Result of one writer batch: the diff the backend reported and the
  /// snapshot version that now serves it.
  struct ApplyResult {
    SpannerDiff diff;
    SpannerSnapshot::Ptr snapshot;
  };

  /// Takes ownership of a constructed backend and publishes version 0 from
  /// its current spanner (the only full spanner_edges() export the service
  /// ever performs). `stretch` is the backend's guarantee, served to
  /// readers via SpannerSnapshot::stretch().
  template <typename Backend>
  SpannerService(std::unique_ptr<Backend> backend, uint32_t stretch)
      : backend_(std::make_unique<Model<Backend>>(std::move(backend))) {
    store_.publish(SpannerSnapshot::initial(
        backend_->num_vertices(), backend_->spanner_edges(), stretch));
  }

  /// Applies one batch (deletions first, then insertions — the backend's
  /// documented semantics) and publishes the next snapshot version.
  /// Writer thread only.
  ApplyResult apply(const std::vector<Edge>& insertions,
                    const std::vector<Edge>& deletions);

  /// Pins the currently served snapshot (one pointer-copy critical
  /// section — DESIGN.md §8.1). Any thread; the returned version stays
  /// fully valid for as long as the caller holds it, across any number of
  /// later publishes.
  SpannerSnapshot::Ptr snapshot() const { return store_.acquire(); }

  /// Version currently being served (= number of batches applied).
  uint64_t version() const { return store_.acquire()->version(); }

  size_t num_vertices() const { return backend_->num_vertices(); }

  /// Re-exports the backend's spanner (bypassing the snapshot path) for
  /// differential checks. Writer-quiescent only — not safe concurrently
  /// with apply().
  std::vector<Edge> export_spanner() const {
    return backend_->spanner_edges();
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual SpannerDiff update(const std::vector<Edge>& ins,
                               const std::vector<Edge>& del) = 0;
    virtual std::vector<Edge> spanner_edges() const = 0;
    virtual size_t num_vertices() const = 0;
  };

  template <typename B>
  struct Model final : Concept {
    explicit Model(std::unique_ptr<B> b) : impl(std::move(b)) {}
    SpannerDiff update(const std::vector<Edge>& ins,
                       const std::vector<Edge>& del) override {
      return impl->update(ins, del);
    }
    std::vector<Edge> spanner_edges() const override {
      return impl->spanner_edges();
    }
    size_t num_vertices() const override { return impl->num_vertices(); }
    std::unique_ptr<B> impl;
  };

  std::unique_ptr<Concept> backend_;
  SnapshotStore store_;
  std::atomic<bool> writer_busy_{false};  // single-writer debug trap
};

}  // namespace parspan
