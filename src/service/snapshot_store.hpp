// SnapshotStore: the single-writer / multi-reader publication point of the
// serving layer (DESIGN.md §8).
//
// The store holds one strong reference to the current SpannerSnapshot.
// publish() (writer only) swings that reference to the next version;
// acquire() (any thread, any time) returns its own strong reference to
// whatever version is current. Both sides cross one pointer-copy critical
// section — a mutex held for a two-word shared_ptr copy, nothing else —
// whose lock/unlock pair is also the release/acquire edge that makes every
// byte of the immutable snapshot (all written before publish) visible to
// the reader that observed it.
//
// Why a mutex and not C++20 std::atomic<std::shared_ptr>: libstdc++'s
// _Sp_atomic unlocks its spin-bit with memory_order_relaxed on the load
// path, so a reader's pointer read and the writer's next store have no
// formal happens-before edge — ThreadSanitizer reports it (correctly, per
// the C++ memory model), and this layer's whole test story is "TSan-clean
// with zero suppressions" (DESIGN.md §8.4). The critical section is a
// refcount increment; readers amortize it by serving a block of queries
// per acquire, so it is never the scaling bottleneck — and it is trivially
// starvation- and tear-free on every platform.
//
// Reclamation is reference counting: a reader that pinned version v keeps
// it alive across any number of later publishes, and v is destroyed
// exactly when its last holder (reader or store) lets go — no epochs, no
// hazard pointers, no deferred free lists.
#pragma once

#include <cassert>
#include <memory>
#include <mutex>

#include "service/spanner_snapshot.hpp"

namespace parspan {

class SnapshotStore {
 public:
  using Ptr = SpannerSnapshot::Ptr;

  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Current snapshot (null until the first publish). Callable from any
  /// thread; the returned reference keeps the version alive for as long as
  /// the caller holds it.
  Ptr acquire() const {
    std::lock_guard<std::mutex> lk(mu_);
    return cur_;
  }

  /// Installs `next` as the current snapshot. Single writer; versions must
  /// be strictly increasing (checked in debug builds — the monotonicity
  /// readers assert on). The previous version's store reference is
  /// released *outside* the critical section, so a reader never waits on
  /// snapshot destruction.
  void publish(Ptr next) {
    assert(next != nullptr);
    Ptr prev;
    {
      std::lock_guard<std::mutex> lk(mu_);
      assert(cur_ == nullptr || next->version() > cur_->version());
      prev = std::move(cur_);
      cur_ = std::move(next);
    }
    // prev drops here; if this was the last reference, the old version's
    // teardown happens on the writer thread, off the readers' path.
  }

 private:
  mutable std::mutex mu_;
  Ptr cur_;
};

}  // namespace parspan
