#include "service/spanner_snapshot.hpp"

#include <algorithm>

#include "container/flat_map.hpp"
#include "util/rng.hpp"

namespace parspan {

uint64_t snapshot_content_checksum(uint64_t n, uint32_t stretch,
                                   uint64_t version,
                                   std::span<const EdgeKey> keys) {
  uint64_t h = hash_combine(n << 32 | stretch, version);
  // Position-dependent fold: detects reordering and truncation, not just
  // membership changes. The index is widened to uint64_t explicitly — the
  // value must not depend on size_t's width (it is persisted in WAL
  // records and checkpoints).
  for (size_t i = 0; i < keys.size(); ++i)
    h = splitmix64(h ^ hash_combine(keys[i], uint64_t(i)));
  return h;
}

SpannerSnapshot::Ptr SpannerSnapshot::finish(size_t n, uint32_t stretch,
                                             uint64_t version,
                                             std::vector<EdgeKey> keys) {
  auto snap = std::shared_ptr<SpannerSnapshot>(new SpannerSnapshot());
  snap->version_ = version;
  snap->stretch_ = stretch;
  snap->n_ = n;
  snap->keys_ = std::move(keys);
  snap->csr_ = csr_build_from_keys(n, snap->keys_);
  snap->checksum_ = snapshot_content_checksum(n, stretch, version, snap->keys_);
  return snap;
}

SpannerSnapshot::Ptr SpannerSnapshot::restore(size_t n, uint32_t stretch,
                                              uint64_t version,
                                              std::vector<EdgeKey> keys) {
  return finish(n, stretch, version, std::move(keys));
}

SpannerSnapshot::Ptr SpannerSnapshot::initial(
    size_t n, const std::vector<Edge>& spanner_edges, uint32_t stretch) {
  return finish(n, stretch, 0, canonical_edge_keys(n, spanner_edges));
}

SpannerSnapshot::Ptr SpannerSnapshot::apply(const SpannerSnapshot& prev,
                                            const SpannerDiff& diff) {
  return finish(prev.n_, prev.stretch_, prev.version_ + 1,
                apply_sorted_diff(prev.keys_, diff_side_keys(diff.inserted),
                                  diff_side_keys(diff.removed)));
}

bool SpannerSnapshot::has_edge(VertexId u, VertexId v) const {
  if (u == v || u >= n_ || v >= n_) return false;
  if (csr_.degree(u) > csr_.degree(v)) std::swap(u, v);
  auto nbrs = csr_.neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> SpannerSnapshot::edges() const {
  std::vector<Edge> out(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) out[i] = edge_from_key(keys_[i]);
  return out;
}

uint32_t SpannerSnapshot::distance(VertexId u, VertexId v,
                                   uint32_t limit) const {
  if (u >= n_ || v >= n_) return kSnapshotUnreached;
  if (u == v) return 0;
  // Ball-proportional BFS: the visited set is a small flat table, so a
  // bounded query on a sparse spanner never touches O(n) scratch and needs
  // no per-thread state — every reader's query is self-contained.
  FlatHashSet<VertexId> visited;
  std::vector<VertexId> frontier{u}, next;
  visited.insert(u);
  for (uint32_t d = 1; d <= limit; ++d) {
    next.clear();
    for (VertexId x : frontier) {
      for (VertexId y : csr_.neighbors(x)) {
        if (!visited.insert(y)) continue;
        if (y == v) return d;
        next.push_back(y);
      }
    }
    if (next.empty()) break;
    frontier.swap(next);
  }
  return kSnapshotUnreached;
}

bool SpannerSnapshot::consistent() const {
  if (!std::is_sorted(keys_.begin(), keys_.end()) ||
      std::adjacent_find(keys_.begin(), keys_.end()) != keys_.end())
    return false;
  if (csr_.num_arcs() != 2 * keys_.size()) return false;
  if (csr_.num_vertices() != n_) return false;
  return checksum_ == snapshot_content_checksum(n_, stretch_, version_, keys_);
}

}  // namespace parspan
