#include "service/sharded_service.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>

#include "container/flat_map.hpp"
#include "util/rng.hpp"

namespace parspan {

// --- ShardedView ------------------------------------------------------------

VersionVector ShardedView::versions() const {
  VersionVector vv;
  vv.v.reserve(snaps_.size());
  for (const auto& s : snaps_) vv.v.push_back(s->version());
  return vv;
}

size_t ShardedView::num_edges() const {
  size_t total = 0;
  for (const auto& s : snaps_) total += s->num_edges();
  return total;
}

void ShardedView::require_single_graph() const {
  if (router_->single_graph()) return;
  // Not an assert: composing per-tenant snapshots would answer queries
  // with other tenants' edges, so this must die in Release builds too.
  std::fprintf(stderr,
               "ShardedView: composed reads (has_edge/neighbors/distance) "
               "require single-graph routing; use graph(g) per tenant\n");
  std::abort();
}

void ShardedView::require_in_range(size_t s) const {
  if (s < snaps_.size()) return;
  std::fprintf(stderr,
               "ShardedView: shard/tenant id %zu out of range (%zu shards)\n",
               s, snaps_.size());
  std::abort();
}

bool ShardedView::has_edge(VertexId u, VertexId v) const {
  require_single_graph();
  if (u >= n_ || v >= n_ || u == v) return false;
  return snaps_[router_->shard_of(0, edge_key(u, v))]->has_edge(u, v);
}

std::vector<VertexId> ShardedView::neighbors(VertexId v) const {
  require_single_graph();
  std::vector<VertexId> out;
  if (v >= n_) return out;
  // Shard neighbor lists are ascending and pairwise disjoint (each edge has
  // exactly one owner); a repeated two-list merge keeps the union ascending.
  for (const auto& s : snaps_) {
    auto nb = s->neighbors(v);
    if (nb.empty()) continue;
    if (out.empty()) {
      out.assign(nb.begin(), nb.end());
    } else {
      std::vector<VertexId> merged;
      merged.reserve(out.size() + nb.size());
      std::merge(out.begin(), out.end(), nb.begin(), nb.end(),
                 std::back_inserter(merged));
      out.swap(merged);
    }
  }
  return out;
}

uint32_t ShardedView::distance(VertexId u, VertexId v, uint32_t limit) const {
  require_single_graph();
  if (u >= n_ || v >= n_) return kSnapshotUnreached;
  if (u == v) return 0;
  // Ball-proportional BFS like SpannerSnapshot::distance, except each
  // frontier vertex expands through EVERY shard's adjacency — that union is
  // the composed spanner, so cut edges are stitched at each hop.
  FlatHashSet<VertexId> visited;
  std::vector<VertexId> frontier{u}, next;
  visited.insert(u);
  for (uint32_t d = 1; d <= limit; ++d) {
    next.clear();
    for (VertexId x : frontier) {
      for (const auto& s : snaps_) {
        for (VertexId y : s->neighbors(x)) {
          if (!visited.insert(y)) continue;
          if (y == v) return d;
          next.push_back(y);
        }
      }
    }
    if (next.empty()) break;
    frontier.swap(next);
  }
  return kSnapshotUnreached;
}

std::vector<Edge> ShardedView::edges() const {
  // K-way merge of the shards' ascending (disjoint) key lists.
  std::vector<EdgeKey> keys;
  keys.reserve(num_edges());
  for (const auto& s : snaps_) {
    auto sk = s->edge_keys();
    keys.insert(keys.end(), sk.begin(), sk.end());
  }
  std::sort(keys.begin(), keys.end());
  std::vector<Edge> out;
  out.reserve(keys.size());
  for (EdgeKey k : keys) out.push_back(edge_from_key(k));
  return out;
}

// --- ShardedSpannerService --------------------------------------------------

namespace {

std::unique_ptr<SpannerService> make_shard_service(const ShardSpec& spec) {
  if (spec.kind == ShardSpec::Kind::kUltraSparse) {
    auto ultra =
        std::make_unique<UltraSparseSpanner>(spec.n, spec.initial, spec.ultra);
    const uint32_t stretch = ultra->stretch_bound();
    return std::make_unique<SpannerService>(std::move(ultra), stretch);
  }
  return std::make_unique<SpannerService>(
      std::make_unique<FullyDynamicSpanner>(spec.n, spec.initial, spec.fd),
      2 * spec.fd.k - 1);
}

std::string shard_dir(const std::string& root, size_t s) {
  return root + "/shard-" + std::to_string(s);
}

std::vector<std::unique_ptr<SpannerService>> build_shard_services(
    const std::vector<ShardSpec>& specs, const ShardedConfig& cfg) {
  std::vector<std::unique_ptr<SpannerService>> services;
  services.reserve(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    services.push_back(make_shard_service(specs[s]));
    // A failed enable leaves the shard serving without the durability
    // claim (durability()->failed() observable), mirroring the sticky
    // runtime failure mode — construction does not throw on bad disks.
    if (cfg.durability.enabled)
      services.back()->enable_durability(
          cfg.durability.fs, shard_dir(cfg.durability.dir, s),
          cfg.durability.opts, specs[s].initial);
  }
  return services;
}

size_t max_spec_n(const std::vector<ShardSpec>& specs) {
  size_t n = 0;
  for (const ShardSpec& spec : specs) n = std::max(n, spec.n);
  return n;
}

}  // namespace

ShardedSpannerService::ShardedSpannerService(
    std::vector<std::unique_ptr<SpannerService>> services,
    std::shared_ptr<const ShardRouter> router, ShardedConfig cfg, size_t n)
    : cfg_(std::move(cfg)), router_(std::move(router)), n_(n) {
  assert(router_ != nullptr);
  assert(services.size() == router_->num_shards() &&
         "one shard service per router shard");
  assert(!services.empty());
  paused_.store(cfg_.start_paused, std::memory_order_relaxed);
  shards_.reserve(services.size());
  for (auto& svc : services)
    shards_.push_back(std::make_unique<Shard>(std::move(svc),
                                              cfg_.queue_capacity,
                                              cfg_.record_latency,
                                              cfg_.start_paused));
  pool_ = std::make_unique<WorkerPool>(
      cfg_.num_writers, shards_.size(),
      [this](size_t s) { return drain_shard(s); });
}

ShardedSpannerService::ShardedSpannerService(std::vector<ShardSpec> specs,
                                             std::unique_ptr<ShardRouter> router,
                                             ShardedConfig cfg)
    : ShardedSpannerService(
          build_shard_services(specs, cfg),
          std::shared_ptr<const ShardRouter>(std::move(router)), cfg,
          max_spec_n(specs)) {}

std::unique_ptr<ShardedSpannerService> ShardedSpannerService::recover(
    std::vector<ShardSpec> specs, std::unique_ptr<ShardRouter> router,
    ShardedConfig cfg, std::vector<SpannerService::RecoveryReport>* reports) {
  assert(cfg.durability.enabled && cfg.durability.fs != nullptr &&
         "recover: needs the crashed service's durability fs/dir");
  if (reports != nullptr) reports->assign(specs.size(), {});
  std::vector<std::unique_ptr<SpannerService>> services;
  services.reserve(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    const ShardSpec& spec = specs[s];
    SpannerService::RecoveryReport rep;
    std::unique_ptr<SpannerService> svc;
    if (spec.kind == ShardSpec::Kind::kUltraSparse) {
      svc = SpannerService::recover(
          cfg.durability.fs, shard_dir(cfg.durability.dir, s),
          cfg.durability.opts,
          [&spec](uint64_t n, const std::vector<Edge>& edges, uint32_t) {
            return std::make_unique<UltraSparseSpanner>(size_t(n), edges,
                                                        spec.ultra);
          },
          &rep);
    } else {
      svc = SpannerService::recover(
          cfg.durability.fs, shard_dir(cfg.durability.dir, s),
          cfg.durability.opts,
          [&spec](uint64_t n, const std::vector<Edge>& edges, uint32_t) {
            return std::make_unique<FullyDynamicSpanner>(size_t(n), edges,
                                                         spec.fd);
          },
          &rep);
    }
    if (svc == nullptr) return nullptr;  // all-or-nothing across shards
    if (reports != nullptr) (*reports)[s] = rep;
    services.push_back(std::move(svc));
  }
  return std::unique_ptr<ShardedSpannerService>(new ShardedSpannerService(
      std::move(services),
      std::shared_ptr<const ShardRouter>(std::move(router)), std::move(cfg),
      max_spec_n(specs)));
}

std::unique_ptr<ShardedSpannerService> ShardedSpannerService::single_graph(
    size_t n, const std::vector<Edge>& initial, uint32_t num_shards,
    const FullyDynamicSpannerConfig& cfg, ShardedConfig scfg) {
  if (num_shards == 0) num_shards = 1;
  auto router = std::make_unique<VertexRangeRouter>(n, num_shards);
  std::vector<ShardSpec> specs(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    specs[s].kind = ShardSpec::Kind::kFullyDynamic;
    specs[s].n = n;  // full vertex-id space; only the owned edges live here
    specs[s].fd = cfg;
    // Independent per-shard seed stream: shard coins must not correlate,
    // and must not depend on the shard count of OTHER shards' streams.
    specs[s].fd.seed = hash_combine(cfg.seed, s);
  }
  for (const Edge& e : initial)
    specs[router->shard_of(0, e.key())].initial.push_back(e);
  return std::make_unique<ShardedSpannerService>(
      std::move(specs), std::move(router), scfg);
}

ShardedSpannerService::~ShardedSpannerService() { pool_->stop(); }

void ShardedSpannerService::submit(uint32_t graph_id,
                                   const std::vector<Edge>& insertions,
                                   const std::vector<Edge>& deletions) {
  const size_t S = shards_.size();
  const size_t offered = insertions.size() + deletions.size();
  // paused_ is re-read AFTER each enqueue: if resume() ran concurrently and
  // its queue scan missed this batch (scan before our insert, both under
  // the queue mutex), that same mutex ordering guarantees we observe its
  // paused_=false store here and issue the notify ourselves — the batch
  // can never be stranded between a submit and a resume.
  if (S == 1) {
    // The routers are pure in graph_id alone for the tenant decision, so
    // one representative probe validates the whole batch.
    if (router_->shard_of(graph_id, 0) != 0) {
      edges_rejected_.fetch_add(offered, std::memory_order_relaxed);
      return;
    }
    edges_ingested_.fetch_add(offered, std::memory_order_relaxed);
    shards_[0]->queue.submit(insertions, deletions);
    if (!paused_.load(std::memory_order_relaxed)) pool_->notify(0);
    return;
  }
  std::vector<std::vector<Edge>> ins_by(S), del_by(S);
  size_t rejected = 0;
  for (const Edge& e : insertions) {
    uint32_t s = router_->shard_of(graph_id, e.key());
    if (s < S)
      ins_by[s].push_back(e);
    else
      ++rejected;  // unknown tenant id: drop observably, never index OOB
  }
  for (const Edge& e : deletions) {
    uint32_t s = router_->shard_of(graph_id, e.key());
    if (s < S)
      del_by[s].push_back(e);
    else
      ++rejected;
  }
  if (rejected) edges_rejected_.fetch_add(rejected, std::memory_order_relaxed);
  edges_ingested_.fetch_add(offered - rejected, std::memory_order_relaxed);
  for (size_t s = 0; s < S; ++s) {
    if (ins_by[s].empty() && del_by[s].empty()) continue;
    shards_[s]->queue.submit(ins_by[s], del_by[s]);
    if (!paused_.load(std::memory_order_relaxed)) pool_->notify(s);
  }
}

ShardedSpannerService::RoutedBatch ShardedSpannerService::route_batch(
    uint32_t graph_id, const std::vector<Edge>& insertions,
    const std::vector<Edge>& deletions) {
  const size_t S = shards_.size();
  RoutedBatch rb;
  rb.ins_by_.resize(S);
  rb.del_by_.resize(S);
  size_t rejected = 0;
  for (const Edge& e : insertions) {
    uint32_t s = router_->shard_of(graph_id, e.key());
    if (s < S)
      rb.ins_by_[s].push_back(e);
    else
      ++rejected;
  }
  for (const Edge& e : deletions) {
    uint32_t s = router_->shard_of(graph_id, e.key());
    if (s < S)
      rb.del_by_[s].push_back(e);
    else
      ++rejected;
  }
  if (rejected) edges_rejected_.fetch_add(rejected, std::memory_order_relaxed);
  for (uint32_t s = 0; s < S; ++s)
    if (!rb.ins_by_[s].empty() || !rb.del_by_[s].empty())
      rb.pending_.push_back(s);
  return rb;
}

bool ShardedSpannerService::admit_shard(RoutedBatch& batch, size_t idx,
                                        std::chrono::nanoseconds timeout) {
  const uint32_t s = batch.pending_[idx];
  if (!shards_[s]->queue.submit_for(batch.ins_by_[s], batch.del_by_[s],
                                    timeout))
    return false;
  edges_ingested_.fetch_add(batch.ins_by_[s].size() + batch.del_by_[s].size(),
                            std::memory_order_relaxed);
  if (!paused_.load(std::memory_order_relaxed)) pool_->notify(s);
  batch.pending_.erase(batch.pending_.begin() + ptrdiff_t(idx));
  return true;
}

ShardedSpannerService::SubmitStatus ShardedSpannerService::try_admit(
    RoutedBatch& batch) {
  for (size_t i = 0; i < batch.pending_.size();)
    if (!admit_shard(batch, i, std::chrono::nanoseconds::zero())) ++i;
  return batch.pending_.empty() ? SubmitStatus::kOk : SubmitStatus::kTimeout;
}

void ShardedSpannerService::drop_pending(RoutedBatch& batch) {
  for (uint32_t s : batch.pending_)
    edges_timed_out_.fetch_add(
        batch.ins_by_[s].size() + batch.del_by_[s].size(),
        std::memory_order_relaxed);
  batch.pending_.clear();
}

ShardedSpannerService::SubmitStatus ShardedSpannerService::submit_for(
    uint32_t graph_id, const std::vector<Edge>& insertions,
    const std::vector<Edge>& deletions, std::chrono::nanoseconds timeout) {
  RoutedBatch rb = route_batch(graph_id, insertions, deletions);
  // ONE deadline shared by every owning shard: `timeout` bounds the whole
  // call, so each shard gets only the budget its predecessors left. (The
  // old per-shard grant let a cross-shard batch block up to S x timeout —
  // Sharded.SubmitForSharesOneDeadlineAcrossShards regression-tests the
  // fix.) A shard reached past the deadline still gets a zero-timeout
  // admission try: a non-full queue admits instantly either way.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (size_t i = 0; i < rb.pending_.size();) {
    const auto remaining = std::max(
        std::chrono::nanoseconds::zero(),
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline - std::chrono::steady_clock::now()));
    if (!admit_shard(rb, i, remaining)) ++i;
  }
  if (rb.done()) return SubmitStatus::kOk;
  drop_pending(rb);
  return SubmitStatus::kTimeout;
}

bool ShardedSpannerService::drain_shard(size_t s) {
  Shard& sh = *shards_[s];
  BatchQueue::Drained d = sh.queue.drain();
  if (d.ticket == 0) return false;  // raced with another round: nothing left
  if (!d.empty()) {
    // The backend batch: deletions first, then insertions — exactly the
    // coalesced set semantics the queue drained (DESIGN.md §9.2).
    SpannerService::ApplyResult r = sh.service->apply(d.insertions,
                                                      d.deletions);
    if (cfg_.record_publishes) {
      std::lock_guard<std::mutex> lk(sh.log_mu);
      sh.log.push_back(PublishRecord{r.snapshot->version(),
                                     r.snapshot->checksum(),
                                     std::move(r.diff)});
    }
  }
  const auto visible = std::chrono::steady_clock::now();
  // Samples land before the barrier ticket: once flush() returns, every
  // covered submit's latency is observable.
  if (cfg_.record_latency && !d.submit_times.empty()) {
    std::lock_guard<std::mutex> lk(lat_mu_);
    for (const auto& [ticket, t0] : d.submit_times) {
      (void)ticket;
      lat_ns_.push_back(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            visible - t0)
                            .count());
    }
  }
  // Fire every flush_async barrier this publish completed. Callbacks are
  // collected under the lock but invoked outside it: a callback may call
  // back into the service (versions(), view(), even another flush_async).
  std::vector<std::function<void(VersionVector)>> fired;
  {
    std::lock_guard<std::mutex> lk(barrier_mu_);
    if (d.ticket > sh.published_ticket) sh.published_ticket = d.ticket;
    for (size_t i = 0; i < flush_waiters_.size();) {
      bool done = true;
      for (size_t t = 0; t < shards_.size(); ++t)
        if (shards_[t]->published_ticket < flush_waiters_[i].targets[t]) {
          done = false;
          break;
        }
      if (done) {
        fired.push_back(std::move(flush_waiters_[i].done));
        flush_waiters_.erase(flush_waiters_.begin() + i);  // FIFO fairness
      } else {
        ++i;
      }
    }
  }
  for (auto& done : fired) done(versions());
  return !paused_.load(std::memory_order_relaxed) && !sh.queue.empty();
}

void ShardedSpannerService::flush_async(
    std::function<void(VersionVector)> done) {
  const size_t S = shards_.size();
  std::vector<uint64_t> targets(S);
  for (size_t s = 0; s < S; ++s) targets[s] = shards_[s]->queue.last_ticket();
  // Raise the flush demand first: it is what authorizes drains on paused
  // queues (BatchQueue::drain's gate) before the notifies land.
  for (size_t s = 0; s < S; ++s) shards_[s]->queue.demand(targets[s]);
  std::vector<size_t> needs;
  bool satisfied = true;
  {
    std::lock_guard<std::mutex> lk(barrier_mu_);
    for (size_t s = 0; s < S; ++s)
      if (shards_[s]->published_ticket < targets[s]) {
        satisfied = false;
        needs.push_back(s);
      }
    if (!satisfied)
      flush_waiters_.push_back({std::move(targets), std::move(done)});
  }
  if (satisfied) {
    done(versions());
    return;
  }
  for (size_t s : needs) pool_->notify(s);
}

VersionVector ShardedSpannerService::flush() {
  // The synchronous barrier is the async one plus a wait.
  std::promise<VersionVector> published;
  std::future<VersionVector> result = published.get_future();
  flush_async(
      [&published](VersionVector vv) { published.set_value(std::move(vv)); });
  return result.get();
}

VersionVector ShardedSpannerService::versions() const {
  VersionVector vv;
  vv.v.reserve(shards_.size());
  for (const auto& sh : shards_) vv.v.push_back(sh->service->version());
  return vv;
}

bool ShardedSpannerService::durability_failed() const {
  if (!cfg_.durability.enabled) return false;
  for (const auto& sh : shards_) {
    const ShardDurability* dur = sh->service->durability();
    if (dur == nullptr || dur->failed()) return true;
  }
  return false;
}

ShardedView ShardedSpannerService::view() const {
  std::vector<SpannerSnapshot::Ptr> snaps;
  snaps.reserve(shards_.size());
  for (const auto& sh : shards_) snaps.push_back(sh->service->snapshot());
  return ShardedView(router_, n_, std::move(snaps));
}

std::optional<ShardedView> ShardedSpannerService::try_view_at_least(
    const VersionVector& vv) const {
  if (vv.v.size() != shards_.size()) return std::nullopt;
  std::vector<SpannerSnapshot::Ptr> snaps;
  snaps.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    SpannerSnapshot::Ptr snap = shards_[s]->service->snapshot();
    if (snap->version() < vv.v[s]) return std::nullopt;
    snaps.push_back(std::move(snap));
  }
  return ShardedView(router_, n_, std::move(snaps));
}

void ShardedSpannerService::pause() {
  // The service-level flag only gates notify fast paths; the authoritative
  // gate is each queue's own (under the queue mutex, atomic with submits),
  // so a drain already notified or in flight cannot take batches submitted
  // after pause() returns — the §9.4 round boundary is exact.
  paused_.store(true, std::memory_order_relaxed);
  for (auto& sh : shards_) sh->queue.set_paused(true);
}

void ShardedSpannerService::resume() {
  for (auto& sh : shards_) sh->queue.set_paused(false);
  paused_.store(false, std::memory_order_relaxed);
  for (size_t s = 0; s < shards_.size(); ++s)
    if (!shards_[s]->queue.empty()) pool_->notify(s);
}

std::vector<PublishRecord> ShardedSpannerService::publish_log(size_t s) const {
  std::lock_guard<std::mutex> lk(shards_[s]->log_mu);
  return shards_[s]->log;
}

std::vector<int64_t> ShardedSpannerService::latency_samples_ns() const {
  std::lock_guard<std::mutex> lk(lat_mu_);
  return lat_ns_;
}

}  // namespace parspan
