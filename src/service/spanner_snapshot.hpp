// SpannerSnapshot: one immutable, versioned view of the maintained spanner
// — the unit the serving layer publishes (DESIGN.md §8).
//
// A snapshot owns its whole representation (sorted canonical key list +
// symmetric CSR adjacency + a content checksum), so any number of reader
// threads may query one concurrently with no synchronization, and a reader
// that pinned version v keeps a fully valid view while the writer publishes
// v+1, v+2, ... — immutability is what makes the concurrent serving layer
// race-free by construction.
//
// Snapshots are built *incrementally*: version v+1 applies the batch's
// net SpannerDiff to version v's sorted key list (one three-pointer merge,
// apply_sorted_diff) and rebuilds the CSR from the merged keys — O(spanner)
// with small constants, instead of re-exporting spanner_edges() from the
// dynamic structure (which walks every partition's hash tables and
// re-sorts). The deterministic key-sorted diff contract of DESIGN.md §6 is
// what makes this replay well-defined: inserted keys are guaranteed absent,
// removed keys present.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/cluster_spanner.hpp"
#include "parallel/csr.hpp"
#include "util/types.hpp"

namespace parspan {

/// Hop distance exceeding the query limit (see SpannerSnapshot::distance).
inline constexpr uint32_t kSnapshotUnreached = static_cast<uint32_t>(-1);

/// The snapshot content checksum as a stable, serialization-grade function
/// of (n, stretch, version, sorted canonical keys) — a splitmix64 fold with
/// position-dependent key mixing (DESIGN.md §10.1). Every input is widened
/// to a fixed-width integer before mixing, so the value is independent of
/// the platform's size_t width and byte order: the durability layer logs it
/// on one machine and re-derives it on whatever machine replays the WAL.
/// The formula is FROZEN — checked-in logs and the golden-value test break
/// if it changes.
uint64_t snapshot_content_checksum(uint64_t n, uint32_t stretch,
                                   uint64_t version,
                                   std::span<const EdgeKey> keys);

class SpannerSnapshot {
 public:
  using Ptr = std::shared_ptr<const SpannerSnapshot>;

  /// Version 0 snapshot from a freshly constructed structure's exported
  /// spanner edge set (the only full export the service ever does).
  static Ptr initial(size_t n, const std::vector<Edge>& spanner_edges,
                     uint32_t stretch);

  /// Version prev.version()+1 by applying one batch's net diff to prev.
  static Ptr apply(const SpannerSnapshot& prev, const SpannerDiff& diff);

  /// Rebuilds a snapshot from recovered state: sorted-unique canonical
  /// `keys` at an arbitrary `version` (the durability layer's recovery
  /// path, DESIGN.md §10.4). Precondition: keys ascending, unique, in
  /// range — recovery validates before calling.
  static Ptr restore(size_t n, uint32_t stretch, uint64_t version,
                     std::vector<EdgeKey> keys);

  uint64_t version() const { return version_; }
  uint32_t stretch() const { return stretch_; }
  size_t num_vertices() const { return n_; }
  size_t num_edges() const { return keys_.size(); }

  /// True iff {u, v} is a spanner edge: binary search in the ascending
  /// neighbor list of the smaller-degree endpoint, O(log deg).
  bool has_edge(VertexId u, VertexId v) const;

  /// Neighbors of v in the spanner, ascending; empty for out-of-range v
  /// (like every other query here, tolerant of malformed client ids).
  /// Valid as long as the snapshot is alive (readers hold it via
  /// shared_ptr).
  std::span<const VertexId> neighbors(VertexId v) const {
    if (v >= n_) return {};
    return csr_.neighbors(v);
  }
  size_t degree(VertexId v) const { return v < n_ ? csr_.degree(v) : 0; }

  /// Sorted canonical keys of the spanner edge set.
  std::span<const EdgeKey> edge_keys() const { return keys_; }

  /// Materializes the edge set (ascending by canonical key).
  std::vector<Edge> edges() const;

  /// Bounded-BFS hop distance from u to v in the spanner, or
  /// kSnapshotUnreached if it exceeds `limit` hops. Allocation-light
  /// (scratch is proportional to the explored ball) and const — safe to
  /// call from many reader threads at once.
  uint32_t distance(VertexId u, VertexId v, uint32_t limit) const;

  /// distance() bounded by the structure's stretch guarantee: for any
  /// *graph* edge (u, v) the spanner promises hops <= stretch, so a
  /// kSnapshotUnreached here witnesses a stretch violation (or that (u, v)
  /// is not a graph edge).
  uint32_t stretch_of(VertexId u, VertexId v) const {
    return distance(u, v, stretch_);
  }

  /// Content checksum fixed at construction: a splitmix64 fold over
  /// (n, stretch, version, sorted keys). Readers re-derive it with
  /// consistent() to prove the view they see is the one the writer built
  /// (the torn-publish oracle of the concurrency tests).
  uint64_t checksum() const { return checksum_; }

  /// Recomputes the checksum from the key list and cross-checks the CSR's
  /// arc count against it. O(spanner); for tests and debug readers.
  bool consistent() const;

 private:
  SpannerSnapshot() = default;

  static Ptr finish(size_t n, uint32_t stretch, uint64_t version,
                    std::vector<EdgeKey> keys);

  uint64_t version_ = 0;
  uint32_t stretch_ = 0;
  size_t n_ = 0;
  std::vector<EdgeKey> keys_;  // ascending canonical keys
  CsrGraph csr_;               // symmetric adjacency over keys_
  uint64_t checksum_ = 0;
};

}  // namespace parspan
