// BatchQueue: the bounded, coalescing ingestion queue in front of one
// shard's writer (DESIGN.md §9.2).
//
// Producers submit() insert/delete batches without waiting for the shard's
// backend; a writer later drain()s everything pending as ONE key-sorted
// backend batch. Pending operations coalesce per edge key with last-op-wins
// set semantics — each key holds at most two pending flags:
//
//   kDelete  "make the edge absent"     drained into the deletion side
//   kInsert  "make the edge present"    drained into the insertion side
//
// transitions (per key):   submit insert:  flags |= kInsert
//                          submit delete:  flags  = kDelete
//
// so insert-then-delete leaves only the delete (the queued insert is
// cancelled — if the edge never existed, the drained delete is a no-op the
// backend filters, and the batch's net diff is empty, which is the exact
// observable meaning of "insert+delete cancels"; if the edge was already
// live, the delete is the operation the caller asked for last, so pure
// cancellation would be wrong), and delete-then-insert keeps BOTH flags:
// drained as a deletion and an insertion of the same key, which the
// backend's documented deletions-first order turns into a refresh — the
// re-insert survives. The queue never consults the backend's edge set
// (that would race with the writer), which is why the delete flag is kept
// instead of truly erasing the pair.
//
// Determinism (DESIGN.md §9.4): a drained batch is a pure function of the
// multiset of submits it covers — flags are per-key state, both drained
// sides come out ascending by canonical key via FlatHashMap::sorted_keys,
// and the submit *interleaving* across keys is irrelevant. What timing
// chooses is only where drain boundaries fall; rounds bounded by
// flush()-barriers (or a paused service) therefore replay byte-identically
// at any writer count.
//
// Bounded: submit() blocks while the queue already holds `capacity` or
// more distinct pending keys — backpressure against a writer that cannot
// keep up. The bound gates *admission*: one admitted batch inserts all its
// keys, so the pending count can overshoot capacity by up to that batch's
// size. Empty batches are exempt: they contribute no pending keys and no
// drainable work, so they admit immediately — a heartbeat stream against a
// paused queue must not eat the admission budget real producers need.
// Tickets: every submit (noops included) gets the next per-queue ticket;
// drain() reports the highest ticket it covers, which is what the
// service's flush() barrier waits on. Optionally each non-empty submit's
// steady_clock timestamp rides along so the service can report
// ingest-to-visible latency per covered submit.
//
// Thread safety: any number of producer threads may submit() concurrently
// with one drain()er (drain itself is serialized per shard by WorkerPool's
// slot exclusivity). All state lives behind one mutex; the critical
// sections are O(batch), never O(pending).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "container/flat_map.hpp"
#include "util/types.hpp"

namespace parspan {

class BatchQueue {
 public:
  /// One drained backend batch: everything pending at the time of the
  /// call, both sides ascending by canonical key.
  struct Drained {
    std::vector<Edge> insertions;
    std::vector<Edge> deletions;
    /// Highest submit ticket covered (0 when nothing was pending).
    uint64_t ticket = 0;
    /// (ticket, submit time) per covered submit, in ticket order; filled
    /// only when the queue records timestamps.
    std::vector<std::pair<uint64_t, std::chrono::steady_clock::time_point>>
        submit_times;
    bool empty() const { return insertions.empty() && deletions.empty(); }
  };

  explicit BatchQueue(size_t capacity, bool record_times = false,
                      bool start_paused = false)
      : capacity_(capacity ? capacity : 1),
        record_times_(record_times),
        paused_(start_paused) {}

  /// Queues one batch, coalescing into the pending per-key flags. Blocks
  /// while the queue is full (a drain frees it; with timestamp recording
  /// on, the per-submit time log is admission-bounded too, so memory
  /// stays proportional to capacity either way). Returns this submit's
  /// ticket — flush barriers compare it against drained tickets. Empty
  /// batches still take a ticket (flush-after-noop stays well-defined) but
  /// are exempt from the admission bound and take no timestamp slot: they
  /// add no pending keys and no drainable work, so a heartbeat/noop stream
  /// against a paused queue must never fill the queue's admission budget
  /// and wedge real producers behind a bound only a drain can release.
  uint64_t submit(const std::vector<Edge>& insertions,
                  const std::vector<Edge>& deletions) {
    const bool noop = insertions.empty() && deletions.empty();
    std::unique_lock<std::mutex> lk(mu_);
    if (!noop)
      not_full_.wait(lk, [this] {
        return pending_.size() < capacity_ &&
               (!record_times_ || submit_times_.size() < capacity_);
      });
    for (const Edge& e : deletions) pending_[e.key()] = kDelete;
    for (const Edge& e : insertions) pending_[e.key()] |= kInsert;
    uint64_t t = ++last_ticket_;
    if (record_times_ && !noop)
      submit_times_.emplace_back(t, std::chrono::steady_clock::now());
    return t;
  }

  /// submit() with a deadline: waits at most `timeout` for admission
  /// capacity, then gives up WITHOUT queuing anything (nullopt) — the
  /// observable-backpressure path (DESIGN.md §9.5). A batch is admitted
  /// whole or not at all; on success, the returned ticket means exactly
  /// what submit()'s does.
  std::optional<uint64_t> submit_for(const std::vector<Edge>& insertions,
                                     const std::vector<Edge>& deletions,
                                     std::chrono::nanoseconds timeout) {
    const bool noop = insertions.empty() && deletions.empty();
    std::unique_lock<std::mutex> lk(mu_);
    if (!noop) {
      bool ok = not_full_.wait_for(lk, timeout, [this] {
        return pending_.size() < capacity_ &&
               (!record_times_ || submit_times_.size() < capacity_);
      });
      if (!ok) return std::nullopt;
    }
    for (const Edge& e : deletions) pending_[e.key()] = kDelete;
    for (const Edge& e : insertions) pending_[e.key()] |= kInsert;
    uint64_t t = ++last_ticket_;
    if (record_times_ && !noop)
      submit_times_.emplace_back(t, std::chrono::steady_clock::now());
    return t;
  }

  /// Pauses/unpauses draining. The flag lives under the queue's own mutex
  /// so the decision "may this drain take the pending delta?" is atomic
  /// with respect to concurrent submits — a straggler drain that raced a
  /// pause() can never walk off with batches submitted after it
  /// (DESIGN.md §9.4's round boundary).
  void set_paused(bool paused) {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = paused;
  }

  /// Raises the flush demand: drains are allowed (even while paused) until
  /// everything up to `ticket` has been taken.
  void demand(uint64_t ticket) {
    std::lock_guard<std::mutex> lk(mu_);
    if (ticket > demand_ticket_) demand_ticket_ = ticket;
  }

  /// Takes the whole pending delta as one key-sorted backend batch and
  /// empties the queue — unless the queue is paused and no flush demand is
  /// outstanding, in which case nothing is taken (ticket 0). Writer side
  /// (one drainer at a time).
  Drained drain() {
    Drained out;
    std::vector<EdgeKey> keys;
    FlatHashMap<EdgeKey, uint8_t> taken;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (paused_ && last_drained_ticket_ >= demand_ticket_) return out;
      if (pending_.empty() && submit_times_.empty() &&
          last_ticket_ == last_drained_ticket_)
        return out;
      // O(1) moves only under the mutex: the O(P log P) key sort happens
      // below, after producers have been released.
      taken = std::move(pending_);
      pending_ = FlatHashMap<EdgeKey, uint8_t>();
      out.ticket = last_ticket_;
      last_drained_ticket_ = last_ticket_;
      out.submit_times = std::move(submit_times_);
      submit_times_.clear();
    }
    not_full_.notify_all();
    keys = taken.sorted_keys();
    for (EdgeKey k : keys) {
      uint8_t flags = *taken.find(k);
      if (flags & kDelete) out.deletions.push_back(edge_from_key(k));
      if (flags & kInsert) out.insertions.push_back(edge_from_key(k));
    }
    return out;
  }

  /// Ticket of the most recent submit (0 before the first). The service's
  /// flush() snapshots this as its per-shard barrier target.
  uint64_t last_ticket() const {
    std::lock_guard<std::mutex> lk(mu_);
    return last_ticket_;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lk(mu_);
    return pending_.empty();
  }

  size_t pending_keys() const {
    std::lock_guard<std::mutex> lk(mu_);
    return pending_.size();
  }

 private:
  enum : uint8_t { kDelete = 1, kInsert = 2 };

  const size_t capacity_;
  const bool record_times_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  FlatHashMap<EdgeKey, uint8_t> pending_;  // key -> pending flags
  uint64_t last_ticket_ = 0;
  uint64_t last_drained_ticket_ = 0;
  uint64_t demand_ticket_ = 0;  // drains allowed up to here while paused
  bool paused_ = false;
  std::vector<std::pair<uint64_t, std::chrono::steady_clock::time_point>>
      submit_times_;
};

}  // namespace parspan
