// ShardedSpannerService: sharded multi-graph serving with asynchronous
// batch ingestion (DESIGN.md §9).
//
// SpannerService (§8) hosts exactly one graph with one *synchronous*
// writer: callers block on apply() for the whole batch-update + publish.
// This layer multiplies that by N: it hosts N independent shards — each a
// full SpannerService over its own backend (fully-dynamic or ultra-sparse,
// chosen per shard at creation) — and replaces the synchronous writer with
// an asynchronous ingestion path:
//
//   submit() ── ShardRouter ──> per-shard BatchQueue (bounded, coalescing)
//                                        │ drained by
//                               WorkerPool drain tasks on the process-wide
//                               work-stealing Scheduler (DESIGN.md §12)
//                                        │ backend update + publish
//                               per-shard SnapshotStore versions
//
// Batch-dynamic throughput comes from routing independent work onto
// independent structures (cf. the batch-dynamic forests/connectivity
// literature): distinct shards never share mutable state, so up to
// num_writers shards drain genuinely in parallel, each reusing the §8
// single-writer snapshot protocol unchanged (WorkerPool's slot exclusivity
// IS the per-shard single-writer guarantee). Each drain is a scheduler
// task whose affinity hint is the shard index — a shard keeps draining on
// its home worker (warm caches) until imbalance makes another worker steal
// it — and a backend update that calls parallel_for forks into the SAME
// scheduler, so rebuild parallelism and drain parallelism share one set of
// threads instead of oversubscribing each other.
//
// Two routing modes (pluggable via ShardRouter):
//  * multi-tenant (GraphIdRouter, the multi-graph default): shard g hosts
//    tenant graph g, whole batches route by graph id, queries go straight
//    to one shard's snapshot — tenants are perfectly isolated.
//  * single-graph (VertexRangeRouter): one logical graph partitioned by
//    vertex range; every edge is owned by the shard of its LOWER endpoint,
//    so cut edges have exactly one owner and the shard edge sets partition
//    the graph. The union of per-shard spanners is a spanner of the whole
//    graph (spanners are decomposable — paper Observation 3.7, the same
//    fact the Bentley-Saxe partition stands on), and cross-shard reads
//    compose pinned per-shard snapshots: has_edge asks the owner,
//    neighbors/BFS stitch cut edges by consulting every shard's view of
//    the vertex (ShardedView).
//
// Consistency: readers pin a ShardedView — one immutable snapshot per
// shard. Views are per-shard consistent (each shard's snapshot is exactly
// some published version) but only loosely synchronized across shards:
// ingestion is async, so shard A may be versions ahead of shard B inside
// one view. The flush() barrier closes the gap on demand: it returns only
// after every submit that preceded it is drained, applied, and published,
// and hands back the resulting VersionVector — any view acquired afterwards
// dominates it (read-your-writes across all shards). Callers that need a
// snapshot-aligned round structure (bulk loads, determinism replays) use
// pause()/resume(): while paused, submits coalesce in the queues and only
// flush() drains them, making drain boundaries — and therefore every diff
// and checksum — independent of writer count and timing (DESIGN.md §9.4).
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "core/ultra.hpp"
#include "parallel/worker_pool.hpp"
#include "service/batch_queue.hpp"
#include "service/spanner_service.hpp"
#include "util/types.hpp"

namespace parspan {

/// One snapshot version per shard, in shard order — the unit of the
/// cross-shard read-your-writes barrier: flush() returns the vector it
/// published, and a view `dominates()` it iff the view reflects at least
/// those versions on every shard.
struct VersionVector {
  std::vector<uint64_t> v;

  /// Pointwise >= (false when shard counts differ).
  bool dominates(const VersionVector& o) const {
    if (v.size() != o.v.size()) return false;
    for (size_t i = 0; i < v.size(); ++i)
      if (v[i] < o.v[i]) return false;
    return true;
  }
  friend bool operator==(const VersionVector&, const VersionVector&) = default;
};

/// Maps updates and queries to their owning shard. Implementations must be
/// pure functions of their constructor arguments (routing is part of the
/// determinism contract: the same submit stream must shard identically in
/// every run) and safe to call from any thread.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;
  virtual uint32_t num_shards() const = 0;
  /// Owning shard of one edge. `graph_id` is the tenant graph (single-graph
  /// routers ignore it; graph-id routers ignore the key).
  virtual uint32_t shard_of(uint32_t graph_id, EdgeKey e) const = 0;
  /// Owning shard of a vertex (single-graph routers only; used by query
  /// dispatch and the cut-edge stitching of ShardedView).
  virtual uint32_t shard_of_vertex(VertexId v) const = 0;
  /// True when all shards partition ONE logical graph (cross-shard reads
  /// compose); false when each shard is an independent tenant graph.
  virtual bool single_graph() const = 0;
};

/// Multi-tenant default: shard g hosts tenant graph g, one-to-one. An
/// unknown tenant id routes out of range on purpose — the service rejects
/// those updates observably (edges_rejected()) instead of trusting
/// caller-supplied ids.
class GraphIdRouter final : public ShardRouter {
 public:
  explicit GraphIdRouter(uint32_t num_shards) : num_shards_(num_shards) {}
  uint32_t num_shards() const override { return num_shards_; }
  uint32_t shard_of(uint32_t graph_id, EdgeKey) const override {
    return graph_id;
  }
  uint32_t shard_of_vertex(VertexId) const override {
    assert(false && "GraphIdRouter: vertex routing needs a tenant graph id");
    return 0;
  }
  bool single_graph() const override { return false; }

 private:
  uint32_t num_shards_;
};

/// Single-graph default: contiguous vertex ranges of ~n/num_shards; an edge
/// is owned by the shard of its lower endpoint (one owner per cut edge).
class VertexRangeRouter final : public ShardRouter {
 public:
  VertexRangeRouter(size_t n, uint32_t num_shards)
      : num_shards_(num_shards ? num_shards : 1),
        stride_((n + num_shards_ - 1) / num_shards_) {
    if (stride_ == 0) stride_ = 1;  // n < num_shards: low shards, rest empty
  }
  uint32_t num_shards() const override { return num_shards_; }
  uint32_t shard_of_vertex(VertexId v) const override {
    uint32_t s = static_cast<uint32_t>(v / stride_);
    return s < num_shards_ ? s : num_shards_ - 1;
  }
  uint32_t shard_of(uint32_t, EdgeKey e) const override {
    return shard_of_vertex(edge_endpoints(e).first);  // lower endpoint owns
  }
  bool single_graph() const override { return true; }

 private:
  uint32_t num_shards_;
  size_t stride_;
};

/// Per-shard backend selection at creation time.
struct ShardSpec {
  enum class Kind { kFullyDynamic, kUltraSparse };
  Kind kind = Kind::kFullyDynamic;
  size_t n = 0;
  std::vector<Edge> initial;
  FullyDynamicSpannerConfig fd;  // used when kind == kFullyDynamic
  UltraConfig ultra;             // used when kind == kUltraSparse
};

/// Per-service durability wiring (DESIGN.md §10.6). Shard i logs into
/// `dir`/shard-<i>; all shards share one Fs and one policy.
struct ShardedDurabilityConfig {
  bool enabled = false;
  /// Filesystem to log through (PosixFs in production, MemFs in the
  /// fault-injection tests). Required when enabled.
  std::shared_ptr<Fs> fs;
  /// Root directory; created on demand.
  std::string dir;
  DurabilityOptions opts;
};

struct ShardedConfig {
  /// Drain concurrency cap: at most this many shards drain at once on the
  /// process-wide scheduler. Drains are work-conserving — any worker runs
  /// any ready shard's drain (per-shard exclusivity enforced by the pool).
  int num_writers = 1;
  /// Admission bound on distinct pending edge keys per shard queue: a
  /// submit is admitted only while the count is below it (so one admitted
  /// batch can overshoot by its own size), and blocks otherwise
  /// (backpressure).
  size_t queue_capacity = 1 << 16;
  /// Record one ingest-to-visible latency sample (ns) per submit, readable
  /// via latency_samples_ns() — bench/monitoring instrumentation.
  bool record_latency = false;
  /// Keep a per-shard log of every publish (version, checksum, diff) —
  /// the determinism tests' witness. Off in production: it retains every
  /// diff forever.
  bool record_publishes = false;
  /// Start with draining paused (bulk-load / deterministic-round mode).
  bool start_paused = false;
  /// Per-shard write-ahead logging + checkpoints (DESIGN.md §10).
  ShardedDurabilityConfig durability;
};

/// One published batch, as the determinism tests compare them.
struct PublishRecord {
  uint64_t version = 0;
  uint64_t checksum = 0;
  SpannerDiff diff;
};

/// A pinned, immutable cross-shard view: one snapshot per shard. Cheap to
/// copy (shared_ptr per shard); valid as long as held, across any number of
/// later publishes. The composed queries (has_edge / neighbors / distance)
/// require single-graph routing; multi-tenant callers address one tenant's
/// snapshot directly via graph().
class ShardedView {
 public:
  size_t num_shards() const { return snaps_.size(); }
  /// Shard/tenant ids are client data here just as on the write path
  /// (submit() drops out-of-range updates): an unknown id fails hard and
  /// defined instead of indexing out of bounds.
  const SpannerSnapshot& shard(size_t s) const {
    require_in_range(s);
    return *snaps_[s];
  }
  SpannerSnapshot::Ptr shard_ptr(size_t s) const {
    require_in_range(s);
    return snaps_[s];
  }
  /// Tenant graph g's pinned snapshot (multi-tenant mode: shard g).
  const SpannerSnapshot& graph(uint32_t g) const { return shard(g); }

  VersionVector versions() const;

  /// Total spanner edges across shards (single-graph: the composed
  /// spanner's size — shard edge sets are disjoint by ownership).
  size_t num_edges() const;

  // --- Single-graph composed reads ----------------------------------------
  // These abort (Release builds included) when the view is multi-tenant:
  // merging per-tenant adjacency would silently leak data across tenants,
  // which is strictly worse than dying. Multi-tenant callers use graph().

  /// Dispatches to the owning shard: edges live only where routed.
  bool has_edge(VertexId u, VertexId v) const;

  /// Ascending union of v's neighbors across shards. v's own shard owns
  /// every edge where v is the lower endpoint, but v can be the HIGHER
  /// endpoint of cut edges owned elsewhere — the merge is what stitches
  /// shard boundaries back together.
  std::vector<VertexId> neighbors(VertexId v) const;

  /// Bounded-BFS hop distance over the composed spanner (cut edges
  /// stitched at every hop), or kSnapshotUnreached past `limit` — the
  /// cross-shard analogue of SpannerSnapshot::distance.
  uint32_t distance(VertexId u, VertexId v, uint32_t limit) const;

  /// The composed edge set, ascending by canonical key (verification).
  std::vector<Edge> edges() const;

  /// Assembles a view from externally pinned snapshots (one per shard, in
  /// shard order) — the replication read router's entry point: a shard's
  /// snapshot may come from a follower replica instead of the leader
  /// service, as long as it is a published version of that shard's chain
  /// (DESIGN.md §11.5). `snaps.size()` must equal router->num_shards().
  static ShardedView compose(std::shared_ptr<const ShardRouter> router,
                             size_t n,
                             std::vector<SpannerSnapshot::Ptr> snaps) {
    assert(router != nullptr && snaps.size() == router->num_shards());
    return ShardedView(std::move(router), n, std::move(snaps));
  }

 private:
  friend class ShardedSpannerService;
  ShardedView(std::shared_ptr<const ShardRouter> router, size_t n,
              std::vector<SpannerSnapshot::Ptr> snaps)
      : router_(std::move(router)), n_(n), snaps_(std::move(snaps)) {}

  void require_single_graph() const;   // aborts on multi-tenant views
  void require_in_range(size_t s) const;  // aborts on unknown shard ids

  // Shared with the service: the view is self-contained and stays fully
  // valid even past the service's destruction (matching "valid as long as
  // held" — routers are immutable after construction).
  std::shared_ptr<const ShardRouter> router_;
  size_t n_;  // max vertex-space size across shards
  std::vector<SpannerSnapshot::Ptr> snaps_;
};

class ShardedSpannerService {
 public:
  /// Builds one shard per spec (specs.size() must equal
  /// router->num_shards()) and starts the writer pool.
  ShardedSpannerService(std::vector<ShardSpec> specs,
                        std::unique_ptr<ShardRouter> router,
                        ShardedConfig cfg = {});

  /// Convenience factory for single-graph mode: vertex-range router,
  /// `initial` partitioned by edge ownership, one fully-dynamic backend per
  /// shard over the full vertex-id space with an independent per-shard seed
  /// stream derived from cfg.seed (deterministic in (n, initial, cfg,
  /// num_shards)).
  static std::unique_ptr<ShardedSpannerService> single_graph(
      size_t n, const std::vector<Edge>& initial, uint32_t num_shards,
      const FullyDynamicSpannerConfig& cfg, ShardedConfig scfg = {});

  /// Rebuilds a sharded service from its durability root after a crash:
  /// every shard recovers independently (checkpoint + WAL-tail replay +
  /// rebase epoch — SpannerService::recover), then the writer pool starts.
  /// `specs` must be the same shard layout the crashed service was built
  /// with (kind/n/configs; `initial` is ignored — the recovered graph
  /// shadow replaces it). cfg.durability must be enabled and point at the
  /// same fs/dir. nullptr when ANY shard lacks a valid checkpoint — a
  /// sharded recovery is all-or-nothing, partial shard states would break
  /// the single-graph composition. Per-shard reports land in `reports`
  /// (shard order) when non-null.
  static std::unique_ptr<ShardedSpannerService> recover(
      std::vector<ShardSpec> specs, std::unique_ptr<ShardRouter> router,
      ShardedConfig cfg,
      std::vector<SpannerService::RecoveryReport>* reports = nullptr);

  /// Stops the writer pool. Pending (unflushed) queue contents are
  /// dropped — callers that care flush() first.
  ~ShardedSpannerService();

  ShardedSpannerService(const ShardedSpannerService&) = delete;
  ShardedSpannerService& operator=(const ShardedSpannerService&) = delete;

  /// Asynchronously ingests one batch for `graph_id`: splits it by the
  /// router, coalesces into the owning shards' queues, and returns without
  /// waiting for any backend work (blocking only on a full queue's
  /// backpressure). Updates the router sends out of range (an unknown
  /// tenant id) are dropped and counted in edges_rejected() — client ids
  /// are data, not invariants. Any thread; concurrent submitters are safe,
  /// but determinism of drained batch *contents* is per submit order, so
  /// determinism-sensitive streams use one submitter (DESIGN.md §9.4).
  void submit(uint32_t graph_id, const std::vector<Edge>& insertions,
              const std::vector<Edge>& deletions);

  /// Single-graph convenience (tenant 0).
  void submit(const std::vector<Edge>& insertions,
              const std::vector<Edge>& deletions) {
    submit(0, insertions, deletions);
  }

  enum class SubmitStatus {
    kOk,       // every routed sub-batch admitted
    kTimeout,  // >= 1 shard queue stayed full past the deadline
  };

  /// submit() with a deadline: each owning shard's sub-batch waits at most
  /// `timeout` for queue admission instead of blocking indefinitely —
  /// observable backpressure for callers that must shed load rather than
  /// stall (DESIGN.md §9.5). Admission is per shard: on kTimeout the
  /// sub-batches of responsive shards WERE admitted (each sub-batch itself
  /// is all-or-nothing), only the timed-out shards' edges were dropped —
  /// counted in edges_timed_out(). Multi-shard callers that need
  /// atomicity across shards must treat kTimeout as "retry the whole
  /// batch" (resubmitting is idempotent under the queue's set semantics).
  SubmitStatus submit_for(uint32_t graph_id,
                          const std::vector<Edge>& insertions,
                          const std::vector<Edge>& deletions,
                          std::chrono::nanoseconds timeout);

  /// Single-graph convenience (tenant 0).
  SubmitStatus submit_for(const std::vector<Edge>& insertions,
                          const std::vector<Edge>& deletions,
                          std::chrono::nanoseconds timeout) {
    return submit_for(0, insertions, deletions, timeout);
  }

  /// A batch routed once, admitted incrementally — the retry-safe shape of
  /// submit_for() for callers that poll instead of block (the net server's
  /// parked kSubmitFor, DESIGN.md §13.4). Each try_admit() attempts ONLY
  /// the shards that have not admitted yet, so a request retried across
  /// many ticks still counts every edge exactly once in edges_ingested() /
  /// edges_timed_out(). Opaque to holders; drive it with try_admit() and
  /// drop_pending().
  class RoutedBatch {
   public:
    RoutedBatch() = default;
    /// True once no shard remains pending (all admitted or dropped).
    bool done() const { return pending_.empty(); }

   private:
    friend class ShardedSpannerService;
    std::vector<std::vector<Edge>> ins_by_, del_by_;
    std::vector<uint32_t> pending_;  // shard indices not yet admitted
  };

  /// Splits one batch by the router, counting router-rejected updates in
  /// edges_rejected() exactly once. Admits nothing yet.
  RoutedBatch route_batch(uint32_t graph_id,
                          const std::vector<Edge>& insertions,
                          const std::vector<Edge>& deletions);

  /// One zero-timeout admission pass over the batch's still-pending
  /// shards. An admitted sub-batch is counted (edges_ingested) and its
  /// shard notified exactly once, then never resubmitted. kOk once the
  /// whole batch is in; kTimeout while any shard's queue stays full —
  /// call again later (never blocks).
  SubmitStatus try_admit(RoutedBatch& batch);

  /// Gives up on the still-pending shards: their edges count in
  /// edges_timed_out() (exactly once) and the batch becomes done().
  void drop_pending(RoutedBatch& batch);

  /// Read-your-writes barrier: returns once every submit that happened
  /// before this call is drained, applied, and published on its shard.
  /// The returned VersionVector is dominated by every later view().
  /// Safe from any thread (including while paused — flush drains the
  /// pending rounds itself); concurrent submits may ride along.
  VersionVector flush();

  /// flush() without the wait: invokes `done` exactly once — when every
  /// submit that preceded this call is drained, applied, and published —
  /// passing a VersionVector every later view() dominates. `done` runs
  /// inline when the barrier is already satisfied, otherwise on whichever
  /// writer-pool drain completes it; it must not block (it would stall
  /// that shard's drain slot). This is the net front door's flush path: an
  /// event loop must never park a thread on the barrier (DESIGN.md §13.4).
  /// Callbacks still pending at destruction are dropped with the queues.
  void flush_async(std::function<void(VersionVector)> done);

  /// Currently served per-shard versions (no barrier).
  VersionVector versions() const;

  /// Pins one immutable snapshot per shard (shard order, no cross-shard
  /// barrier — see class comment; flush() first for read-your-writes).
  ShardedView view() const;

  /// Pin-by-VersionVector acquire: a view whose per-shard versions
  /// dominate `vv`, or nullopt when some shard has not yet published that
  /// far (or the shard counts differ). NEVER blocks — per-shard versions
  /// are monotone, so a vv handed back by flush()/flush_async() is
  /// immediately pinnable, and anything else is the caller's retry loop
  /// (protocol-level pushback, not a parked thread — DESIGN.md §13.3).
  std::optional<ShardedView> try_view_at_least(const VersionVector& vv) const;

  /// Suspends draining: submits keep coalescing in the queues (bounded by
  /// queue_capacity) until resume() or flush(). With draining paused,
  /// batch boundaries are defined by flush() barriers alone — the
  /// deterministic-round mode of DESIGN.md §9.4.
  ///
  /// CAUTION: while paused, nothing frees queue capacity, so a single
  /// producer that accumulates more than queue_capacity distinct pending
  /// keys on one shard before calling flush() blocks in submit() with no
  /// one left to unblock it. Keep paused rounds smaller than the capacity
  /// (or size the capacity to the bulk load).
  void pause();
  void resume();

  size_t num_shards() const { return shards_.size(); }
  const ShardRouter& router() const { return *router_; }
  /// Co-ownable router handle (ShardedView::compose needs shared
  /// ownership so externally composed views outlive the service).
  std::shared_ptr<const ShardRouter> router_ptr() const { return router_; }
  /// Max shard vertex-space size — the bound composed views are built with.
  size_t vertex_space() const { return n_; }
  const SpannerService& shard_service(size_t s) const {
    return *shards_[s]->service;
  }

  /// True when durability was requested but ANY shard can no longer honor
  /// it: its driver went sticky-failed after an I/O error (DESIGN.md
  /// §10.5) or never initialized. The service keeps serving either way —
  /// this is the monitoring signal that says "what you lose on a crash is
  /// now growing"; operators alert on it. False when durability is off.
  bool durability_failed() const;

  /// Copy of shard s's publish log (requires cfg.record_publishes).
  std::vector<PublishRecord> publish_log(size_t s) const;

  /// Copy of all recorded ingest-to-visible samples, ns (requires
  /// cfg.record_latency).
  std::vector<int64_t> latency_samples_ns() const;

  /// Total edge updates ACCEPTED by submit() so far (pre-coalescing: keys
  /// the queues later cancel or dedup still count). This is the offered
  /// load the service absorbed — a deterministic function of the submit
  /// stream, which is why the throughput benchmarks rate against it; the
  /// per-batch work actually reaching backends can be smaller.
  uint64_t edges_ingested() const {
    return edges_ingested_.load(std::memory_order_relaxed);
  }

  /// Edge updates dropped because the router sent them out of range
  /// (unknown tenant graph id).
  uint64_t edges_rejected() const {
    return edges_rejected_.load(std::memory_order_relaxed);
  }

  /// Edge updates dropped by submit_for() deadlines (full queues that
  /// stayed full past the timeout).
  uint64_t edges_timed_out() const {
    return edges_timed_out_.load(std::memory_order_relaxed);
  }

 private:
  /// Shared tail of construction and recovery: wraps pre-built per-shard
  /// services in queues and starts the writer pool.
  ShardedSpannerService(std::vector<std::unique_ptr<SpannerService>> services,
                        std::shared_ptr<const ShardRouter> router,
                        ShardedConfig cfg, size_t n);
  struct Shard {
    std::unique_ptr<SpannerService> service;
    BatchQueue queue;
    uint64_t published_ticket = 0;  // guarded by barrier_mu_
    std::vector<PublishRecord> log;  // guarded by log_mu
    mutable std::mutex log_mu;
    Shard(std::unique_ptr<SpannerService> svc, size_t cap, bool times,
          bool paused)
        : service(std::move(svc)), queue(cap, times, paused) {}
  };

  bool drain_shard(size_t s);

  /// Admission of batch.pending_[idx] with the given budget: on success
  /// the sub-batch is counted, its shard notified, and the index removed.
  bool admit_shard(RoutedBatch& batch, size_t idx,
                   std::chrono::nanoseconds timeout);

  /// One registered flush_async barrier: fire `done` once every shard's
  /// published ticket reaches its target. Guarded by barrier_mu_.
  struct FlushWaiter {
    std::vector<uint64_t> targets;
    std::function<void(VersionVector)> done;
  };

  ShardedConfig cfg_;
  // shared_ptr so views can co-own it (a pinned ShardedView must outlive
  // the service if its holder does).
  std::shared_ptr<const ShardRouter> router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t n_ = 0;  // max shard vertex-space size (view bounds)

  mutable std::mutex barrier_mu_;
  std::vector<FlushWaiter> flush_waiters_;  // guarded by barrier_mu_

  mutable std::mutex lat_mu_;
  std::vector<int64_t> lat_ns_;

  std::atomic<bool> paused_{false};
  std::atomic<uint64_t> edges_ingested_{0};
  std::atomic<uint64_t> edges_rejected_{0};
  std::atomic<uint64_t> edges_timed_out_{0};

  // Declared last: destroyed (joined) first, while shards_ still exist.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace parspan
