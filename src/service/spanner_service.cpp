#include "service/spanner_service.hpp"

namespace parspan {

SpannerService::ApplyResult SpannerService::apply(
    const std::vector<Edge>& insertions, const std::vector<Edge>& deletions) {
  // Single-writer discipline: concurrent apply() calls are a caller bug
  // (the backend itself forbids them), caught here before they corrupt it.
  bool was_busy = writer_busy_.exchange(true, std::memory_order_acquire);
  assert(!was_busy && "SpannerService::apply: concurrent writers");
  (void)was_busy;

  ApplyResult r;
  r.diff = backend_->update(insertions, deletions);
  // Fold the net diff into the previous version's key list instead of
  // re-exporting the spanner: O(spanner) merge + CSR rebuild, no hash-table
  // walks (DESIGN.md §8.2). The store holds the only writer-side reference,
  // so acquire() here is the previous publish.
  SpannerSnapshot::Ptr prev = store_.acquire();
  r.snapshot = SpannerSnapshot::apply(*prev, r.diff);

  // WAL-before-publish: the record covering this version hits the log (and
  // the disk, per fsync policy) before any reader can observe the version.
  // A sticky log failure downgrades the shard to serve-only — the publish
  // still happens, durable_version() just stops advancing (DESIGN.md
  // §10.2/§10.5).
  if (dur_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecord::kBatch;
    rec.version = r.snapshot->version();
    rec.checksum = r.snapshot->checksum();
    // Canonicalize (sort + dedup) the input lists: queue-drained batches
    // are already key-sorted (§9.2) but direct apply() callers may pass
    // arbitrary order, and the WAL's delta encoding needs strict ascent.
    // Set semantics make this lossless for the graph shadow.
    auto canonical_input = [](const std::vector<Edge>& edges) {
      std::vector<EdgeKey> keys;
      keys.reserve(edges.size());
      for (const Edge& e : edges) keys.push_back(edge_key(e.u, e.v));
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      return keys;
    };
    rec.input_deleted = canonical_input(deletions);
    rec.input_inserted = canonical_input(insertions);
    rec.diff_removed = diff_side_keys(r.diff.removed);
    rec.diff_inserted = diff_side_keys(r.diff.inserted);
    dur_->log_record(rec);
  }
  store_.publish(r.snapshot);
  if (dur_ != nullptr)
    dur_->maybe_checkpoint(r.snapshot->version(), r.snapshot->checksum(),
                           r.snapshot->edge_keys());

  writer_busy_.store(false, std::memory_order_release);
  return r;
}

bool SpannerService::enable_durability(std::shared_ptr<Fs> fs, std::string dir,
                                       const DurabilityOptions& opts,
                                       const std::vector<Edge>& graph_edges) {
  SpannerSnapshot::Ptr snap = store_.acquire();
  assert(snap->version() == 0 &&
         "enable_durability: must precede the first apply()");
  dur_ = ShardDurability::create(
      std::move(fs), std::move(dir), opts, snap->num_vertices(),
      snap->stretch(), snap->version(), snap->edge_keys(), snap->checksum(),
      canonical_edge_keys(snap->num_vertices(), graph_edges));
  return dur_ != nullptr;
}

}  // namespace parspan
