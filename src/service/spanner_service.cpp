#include "service/spanner_service.hpp"

namespace parspan {

SpannerService::ApplyResult SpannerService::apply(
    const std::vector<Edge>& insertions, const std::vector<Edge>& deletions) {
  // Single-writer discipline: concurrent apply() calls are a caller bug
  // (the backend itself forbids them), caught here before they corrupt it.
  bool was_busy = writer_busy_.exchange(true, std::memory_order_acquire);
  assert(!was_busy && "SpannerService::apply: concurrent writers");
  (void)was_busy;

  ApplyResult r;
  r.diff = backend_->update(insertions, deletions);
  // Fold the net diff into the previous version's key list instead of
  // re-exporting the spanner: O(spanner) merge + CSR rebuild, no hash-table
  // walks (DESIGN.md §8.2). The store holds the only writer-side reference,
  // so acquire() here is the previous publish.
  SpannerSnapshot::Ptr prev = store_.acquire();
  r.snapshot = SpannerSnapshot::apply(*prev, r.diff);
  store_.publish(r.snapshot);

  writer_busy_.store(false, std::memory_order_release);
  return r;
}

}  // namespace parspan
