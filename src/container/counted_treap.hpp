// CountedTreap: an ordered dictionary over distinct uint64 keys with subtree
// counts, supporting order statistics (k-th largest), rank queries, and
// in-order iteration in descending key order starting from an arbitrary key.
//
// This is the repo's stand-in for the parallel red-black tree of [PP01] and
// the lazily-allocated segment tree of [LS13] used in the paper's Lemma 3.1:
// every per-element operation is O(log size) expected, and batch operations
// across many per-vertex trees are parallelized at the caller level.
//
// Heap priorities are derived deterministically from the key via splitmix64,
// which makes the tree shape a function of the key set only (replayable runs,
// no RNG state needed).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace parspan {

template <typename Value>
class CountedTreap {
 public:
  CountedTreap() = default;

  /// Number of stored entries.
  size_t size() const { return root_ < 0 ? 0 : pool_[root_].count; }
  bool empty() const { return root_ < 0; }

  /// Removes all entries (keeps pool capacity).
  void clear() {
    pool_.clear();
    free_.clear();
    root_ = -1;
  }

  /// Inserts a (key, value) pair. Key must not already be present.
  void insert(uint64_t key, const Value& value) {
    assert(find(key) == nullptr && "duplicate key");
    int32_t node = alloc(key, value);
    auto [l, r] = split(root_, key);
    root_ = merge(merge(l, node), r);
  }

  /// Pre-allocates pool capacity for `n` entries.
  void reserve(size_t n) { pool_.reserve(n); }

  /// Rebuilds the treap from (key, value) pairs sorted by strictly
  /// ascending key in O(n): the classic right-spine (cartesian tree)
  /// construction. Produces the same tree shape as n inserts — the shape is
  /// a function of the key set only — at a fraction of the cost, which is
  /// what makes bulk-loading the ES tree in-lists cheap.
  void build_sorted(const std::pair<uint64_t, Value>* xs, size_t n) {
    clear();
    pool_.reserve(n);
    std::vector<int32_t>& spine = scratch_;
    spine.clear();
    for (size_t i = 0; i < n; ++i) {
      assert(i == 0 || xs[i - 1].first < xs[i].first);
      int32_t idx = alloc(xs[i].first, xs[i].second);
      int32_t last = -1;
      // Nodes leaving the right spine have final subtrees: fix counts now.
      while (!spine.empty() && pool_[spine.back()].prio < pool_[idx].prio) {
        last = spine.back();
        spine.pop_back();
        pull(last);
      }
      pool_[idx].left = last;
      if (!spine.empty()) pool_[spine.back()].right = idx;
      spine.push_back(idx);
    }
    while (!spine.empty()) {
      root_ = spine.back();
      spine.pop_back();
      pull(root_);
    }
  }

  /// Removes the entry with `key`; returns true if it was present.
  bool erase(uint64_t key) {
    int32_t* link = &root_;
    while (*link >= 0) {
      Node& n = pool_[*link];
      if (key == n.key) {
        int32_t dead = *link;
        *link = merge(n.left, n.right);
        // Fix counts up the path: simplest is to re-descend from root.
        update_counts_on_path(root_, key);
        release(dead);
        return true;
      }
      --n.count;  // optimistic: will be restored below if not found
      link = key < n.key ? &n.left : &n.right;
    }
    // Key absent: undo the optimistic decrements.
    restore_counts(root_, key);
    return false;
  }

  /// Pointer to the value stored under `key`, or nullptr.
  Value* find(uint64_t key) {
    int32_t t = root_;
    while (t >= 0) {
      Node& n = pool_[t];
      if (key == n.key) return &n.value;
      t = key < n.key ? n.left : n.right;
    }
    return nullptr;
  }
  const Value* find(uint64_t key) const {
    return const_cast<CountedTreap*>(this)->find(key);
  }

  /// Entry with the k-th largest key (k in [1, size]); returns (key, value*).
  std::pair<uint64_t, Value*> select_desc(size_t k) {
    assert(k >= 1 && k <= size());
    int32_t t = root_;
    while (true) {
      Node& n = pool_[t];
      size_t right_count = n.right >= 0 ? pool_[n.right].count : 0;
      if (k == right_count + 1) return {n.key, &n.value};
      if (k <= right_count) {
        t = n.right;
      } else {
        k -= right_count + 1;
        t = n.left;
      }
    }
  }

  /// Number of entries with key >= `key` (descending rank of `key` if
  /// present; otherwise the rank it would have).
  size_t rank_desc(uint64_t key) const {
    size_t cnt = 0;
    int32_t t = root_;
    while (t >= 0) {
      const Node& n = pool_[t];
      if (n.key >= key) {
        cnt += 1 + (n.right >= 0 ? pool_[n.right].count : 0);
        t = n.left;
      } else {
        t = n.right;
      }
    }
    return cnt;
  }

  /// Largest key, or 0 if empty (check empty() first).
  uint64_t max_key() const {
    int32_t t = root_;
    uint64_t k = 0;
    while (t >= 0) {
      k = pool_[t].key;
      t = pool_[t].right;
    }
    return k;
  }

  /// Visits entries with key <= `start` in descending key order; stops when
  /// `fn(key, value&)` returns false. This is the iteration NextWith uses:
  /// O((#visited) * O(1) + log size) amortized via the explicit stack.
  template <typename Fn>
  void for_each_desc_from(uint64_t start, Fn&& fn) {
    // Stack of subtrees whose whole content is <= the last emitted key.
    scratch_.clear();
    int32_t t = root_;
    while (t >= 0) {
      Node& n = pool_[t];
      if (n.key > start) {
        t = n.left;
      } else {
        scratch_.push_back(t);
        t = n.right;
      }
    }
    while (!scratch_.empty()) {
      int32_t cur = scratch_.back();
      scratch_.pop_back();
      Node& n = pool_[cur];
      if (!fn(n.key, n.value)) return;
      // Descend the left subtree, pushing right spines.
      int32_t s = n.left;
      while (s >= 0) {
        scratch_.push_back(s);
        s = pool_[s].right;
      }
    }
  }

  /// Visits all entries in descending key order.
  template <typename Fn>
  void for_each_desc(Fn&& fn) {
    for_each_desc_from(~uint64_t{0}, std::forward<Fn>(fn));
  }

  /// Visits all entries in unspecified order (fast path for materialization).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Node& n : pool_) {
      if (n.live) fn(n.key, n.value);
    }
  }

 private:
  struct Node {
    uint64_t key = 0;
    uint64_t prio = 0;
    int32_t left = -1;
    int32_t right = -1;
    uint32_t count = 1;
    bool live = false;
    Value value{};
  };

  int32_t alloc(uint64_t key, const Value& value) {
    int32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
      pool_[idx] = Node{};
    } else {
      idx = static_cast<int32_t>(pool_.size());
      pool_.emplace_back();
    }
    Node& n = pool_[idx];
    n.key = key;
    n.prio = splitmix64(key ^ 0x6a09e667f3bcc909ULL);
    n.count = 1;
    n.live = true;
    n.value = value;
    return idx;
  }

  void release(int32_t idx) {
    pool_[idx].live = false;
    free_.push_back(idx);
  }

  uint32_t count(int32_t t) const { return t < 0 ? 0 : pool_[t].count; }

  void pull(int32_t t) {
    pool_[t].count = 1 + count(pool_[t].left) + count(pool_[t].right);
  }

  /// Splits t into (< key, >= key).
  std::pair<int32_t, int32_t> split(int32_t t, uint64_t key) {
    if (t < 0) return {-1, -1};
    Node& n = pool_[t];
    if (n.key < key) {
      auto [l, r] = split(n.right, key);
      n.right = l;
      pull(t);
      return {t, r};
    }
    auto [l, r] = split(n.left, key);
    n.left = r;
    pull(t);
    return {l, t};
  }

  int32_t merge(int32_t a, int32_t b) {
    if (a < 0) return b;
    if (b < 0) return a;
    if (pool_[a].prio > pool_[b].prio) {
      pool_[a].right = merge(pool_[a].right, b);
      pull(a);
      return a;
    }
    pool_[b].left = merge(a, pool_[b].left);
    pull(b);
    return b;
  }

  /// After erase spliced a node out mid-path, recompute counts along the
  /// search path of `key` from the root.
  void update_counts_on_path(int32_t t, uint64_t key) {
    // Counts above the splice point were already decremented optimistically
    // during the downward pass; the spliced subtree (merge of children) has
    // correct counts. Nothing to do — kept as a named no-op for clarity.
    (void)t;
    (void)key;
  }

  /// Undo optimistic count decrements along the search path of a missing key.
  void restore_counts(int32_t t, uint64_t key) {
    while (t >= 0) {
      Node& n = pool_[t];
      if (key == n.key) return;  // unreachable for missing keys
      ++n.count;
      t = key < n.key ? n.left : n.right;
    }
  }

  std::vector<Node> pool_;
  std::vector<int32_t> free_;
  std::vector<int32_t> scratch_;
  int32_t root_ = -1;
};

}  // namespace parspan
