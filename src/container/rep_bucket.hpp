// RepBucket: a tiny member list with a designated representative — the
// value type of the NextLevelEdges tables (Lemma 4.1 / Theorem 1.4).
//
// Members are a small unordered vector with swap-pop erase: bucket sizes
// are degree-bounded and average a couple of entries, where a linear scan
// beats any hash structure and teardown is one vector free (the
// InterCluster trade-off of DESIGN.md §6.4). The representative is always
// assigned by the owner when the bucket gains its first member; after a
// represented member is erased, the owner re-elects `members[0]` — all
// bucket operations run in serial deterministic phases (DESIGN.md §7), so
// the election is reproducible.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

namespace parspan {

template <typename Id>
struct RepBucket {
  std::vector<Id> members;
  Id rep{};

  /// Removes m (must be present); returns true if the bucket emptied.
  bool erase_member(Id m) {
    auto it = std::find(members.begin(), members.end(), m);
    assert(it != members.end());
    *it = members.back();
    members.pop_back();
    return members.empty();
  }
};

}  // namespace parspan
