// PriorityList: the data structure of Lemma 3.1 of the paper.
//
// Maintains l elements, each with a distinct priority in [1, poly(n)],
// behaving as an array sorted in DECREASING order of priority:
//
//   Initialize({(v_i, p_i)})      O(l log n) work
//   UpdateValue(k, v)             O(log n)
//   UpdatePriority(k, p)          O(log n)
//   Query(k)                      O(log n)   k-th largest priority element
//   Find(p)                       O(log n)   element with priority p + its rank
//   NextWith(k, f)                O((q-k+1) log n): smallest position q >= k
//                                 whose element satisfies f, or size()+1
//
// The paper realizes this with a lazily-allocated segment tree over the
// priority universe [LS13]; we use a CountedTreap, which offers the same
// interface and the same per-operation bounds with smaller constants for
// sparse universes (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "container/counted_treap.hpp"

namespace parspan {

template <typename Value>
class PriorityList {
 public:
  PriorityList() = default;

  /// Initializes with (value, priority) pairs. Priorities must be distinct.
  explicit PriorityList(
      const std::vector<std::pair<Value, uint64_t>>& elements) {
    for (const auto& [v, p] : elements) tree_.insert(p, v);
  }

  /// Number of stored elements.
  size_t size() const { return tree_.size(); }

  /// Inserts one element (extension over the paper's fixed-size interface;
  /// used when edge insertions add entries to In(v) lists).
  void insert(const Value& v, uint64_t priority) {
    tree_.insert(priority, v);
  }

  /// Removes the element with the given priority; true if present.
  bool erase_priority(uint64_t priority) { return tree_.erase(priority); }

  /// Sets the value of the element at position k (1-indexed, k-th largest
  /// priority).
  void update_value(size_t k, const Value& v) {
    *tree_.select_desc(k).second = v;
  }

  /// Moves the element at position k to a new (distinct) priority.
  void update_priority(size_t k, uint64_t new_priority) {
    auto [old_key, val_ptr] = tree_.select_desc(k);
    Value v = *val_ptr;
    tree_.erase(old_key);
    tree_.insert(new_priority, v);
  }

  /// Element at position k together with its priority.
  std::pair<uint64_t, Value> query(size_t k) {
    auto [key, val] = tree_.select_desc(k);
    return {key, *val};
  }

  /// Element with priority p (if any) and the number of elements with
  /// priority >= p (its 1-indexed position when present).
  std::pair<std::optional<Value>, size_t> find(uint64_t p) {
    size_t rank = tree_.rank_desc(p);
    Value* v = tree_.find(p);
    if (v) return {*v, rank};
    return {std::nullopt, rank};
  }

  /// Smallest position q >= k whose element satisfies f(value); size()+1 if
  /// none. Work O((q-k+1) log n) as in the paper (the exponential-search
  /// formulation of Lemma 3.1 has the same bound).
  template <typename F>
  size_t next_with(size_t k, F&& f) {
    size_t n = tree_.size();
    if (k > n) return n + 1;
    // Start from the key at rank k and walk descending.
    uint64_t start_key = tree_.select_desc(k).first;
    size_t pos = k;
    size_t found = n + 1;
    tree_.for_each_desc_from(start_key, [&](uint64_t, Value& v) {
      if (f(v)) {
        found = pos;
        return false;
      }
      ++pos;
      return true;
    });
    return found;
  }

  /// Direct access to the underlying tree (used by the ES tree, which works
  /// with priority keys rather than ranks).
  CountedTreap<Value>& tree() { return tree_; }

 private:
  CountedTreap<Value> tree_;
};

}  // namespace parspan
