// Flat open-addressing hash containers for integer keys (DESIGN.md §1).
//
// FlatHashMap<K, V> stores slots in one contiguous array with linear probing
// and backward-shift deletion (no tombstones, so lookup cost never degrades
// under churn). One heap allocation per table regardless of entry count —
// this is what lets the hot batch-dynamic paths (DynamicGraph's position
// index, the cluster spanner's contribution refcounts and InterCluster
// groups) stop paying a node allocation + pointer chase per entry, which is
// where the std::unordered_map versions spent most of their time.
//
// Keys are unsigned integers; the all-ones value of K is reserved as the
// empty sentinel (it is already the kNoVertex / kNoEdge sentinel of
// util/types.hpp, so no valid vertex or edge key collides with it).
//
// Not thread-safe: batch phases either own a table exclusively or use the
// concurrent tables of concurrent_map.hpp.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace parspan {

template <typename K, typename V>
class FlatHashMap {
  static_assert(sizeof(K) <= sizeof(uint64_t));

 public:
  /// Reserved key marking an empty slot.
  static constexpr K kEmptyKey = static_cast<K>(~static_cast<K>(0));

  FlatHashMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Ensures capacity for `n` entries without rehashing.
  void reserve(size_t n) {
    size_t cap = required_capacity(n);
    if (cap > slots_.size()) rehash(cap);
  }

  /// Removes all entries (keeps the slot array).
  void clear() {
    for (Slot& s : slots_) {
      if (s.key != kEmptyKey) {
        s.key = kEmptyKey;
        s.value = V{};
      }
    }
    size_ = 0;
  }

  /// Pointer to the value under `key`, or nullptr. The sentinel key is
  /// never stored, so looking it up is answered (absent) rather than
  /// matching an empty slot.
  V* find(K key) {
    if (key == kEmptyKey || size_ == 0) return nullptr;
    size_t i = bucket(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == kEmptyKey) return nullptr;
      i = (i + 1) & mask_;
    }
  }
  const V* find(K key) const {
    return const_cast<FlatHashMap*>(this)->find(key);
  }

  bool contains(K key) const { return find(key) != nullptr; }

  /// Value under `key`, default-constructed and inserted if absent.
  V& operator[](K key) {
    assert(key != kEmptyKey);
    if (size_ + 1 > max_load()) rehash(grow_capacity());
    size_t i = bucket(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == kEmptyKey) {
        s.key = key;
        ++size_;
        return s.value;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Removes `key`; returns true if it was present. Backward-shift deletion:
  /// subsequent probe-chain entries whose home bucket precedes the freed slot
  /// are moved back, so no tombstones accumulate.
  bool erase(K key) {
    if (key == kEmptyKey || size_ == 0) return false;
    size_t i = bucket(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == kEmptyKey) return false;
      if (s.key == key) break;
      i = (i + 1) & mask_;
    }
    size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (slots_[j].key == kEmptyKey) break;
      size_t home = bucket(slots_[j].key);
      // slots_[j] may move into the hole at i iff its home bucket does not
      // lie strictly inside the cyclic interval (i, j].
      if (((j - home) & mask_) >= ((j - i) & mask_)) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    slots_[i].key = kEmptyKey;
    slots_[i].value = V{};
    --size_;
    return true;
  }

  /// Some occupied slot's key (any element). Requires !empty(). Scans from
  /// a remembered cursor with wrap-around, so repeatedly draining "any"
  /// elements (the group-representative re-election pattern) does not
  /// rescan the already-emptied prefix on every call.
  K first_key() const {
    assert(size_ > 0);
    size_t cap = slots_.size();
    for (size_t probe = 0; probe < cap; ++probe) {
      size_t i = (scan_cursor_ + probe) & mask_;
      if (slots_[i].key != kEmptyKey) {
        scan_cursor_ = i;
        return slots_[i].key;
      }
    }
    return kEmptyKey;  // unreachable: size_ > 0
  }

  /// Visits all entries as fn(key, value&). Mutation of the table during
  /// iteration is not allowed; value mutation is.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_)
      if (s.key != kEmptyKey) fn(s.key, s.value);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_)
      if (s.key != kEmptyKey) fn(s.key, s.value);
  }

  /// All keys, sorted ascending. Materialization APIs built on flat tables
  /// use this so their output is a function of the key *set*, never of the
  /// table's probe-layout history (DESIGN.md §7 determinism contract).
  std::vector<K> sorted_keys() const {
    std::vector<K> out;
    out.reserve(size_);
    for (const Slot& s : slots_)
      if (s.key != kEmptyKey) out.push_back(s.key);
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Slot {
    K key = kEmptyKey;
    V value{};
  };

  size_t bucket(K key) const {
    return static_cast<size_t>(splitmix64(static_cast<uint64_t>(key))) &
           mask_;
  }
  size_t max_load() const { return slots_.size() - slots_.size() / 4; }
  size_t grow_capacity() const {
    return slots_.empty() ? 8 : slots_.size() * 2;
  }
  static size_t required_capacity(size_t n) {
    size_t cap = 8;
    while (cap - cap / 4 < n) cap <<= 1;
    return cap;
  }

  void rehash(size_t cap) {
    assert((cap & (cap - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    for (Slot& s : old) {
      if (s.key == kEmptyKey) continue;
      size_t i = bucket(s.key);
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  mutable size_t scan_cursor_ = 0;  // first_key start hint; always in range
};

namespace detail {
struct Empty {};
}  // namespace detail

/// Flat open-addressing set over integer keys; same layout and deletion
/// strategy as FlatHashMap.
template <typename K>
class FlatHashSet {
 public:
  static constexpr K kEmptyKey = FlatHashMap<K, detail::Empty>::kEmptyKey;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void reserve(size_t n) { map_.reserve(n); }
  void clear() { map_.clear(); }

  /// Inserts `key`; returns true if it was newly inserted.
  bool insert(K key) {
    size_t before = map_.size();
    map_[key];
    return map_.size() != before;
  }

  bool erase(K key) { return map_.erase(key); }
  bool contains(K key) const { return map_.contains(key); }

  /// An arbitrary element (first occupied slot). Requires !empty().
  K any() const { return map_.first_key(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&](K k, const detail::Empty&) { fn(k); });
  }

  /// All elements, sorted ascending (see FlatHashMap::sorted_keys).
  std::vector<K> sorted_keys() const { return map_.sorted_keys(); }

 private:
  FlatHashMap<K, detail::Empty> map_;
};

}  // namespace parspan
