// Concurrent dictionaries used where a single global table receives parallel
// batch operations (Index(e) of Theorem 1.1, InterCluster of Lemma 3.3,
// NextLevelEdges of Lemma 4.1, ...). Stand-in for the CRCW hash table of
// [GMV91] (see DESIGN.md §1).
//
// Two flavors:
//  * ShardedMap<K,V>: striped std::unordered_map; supports arbitrary V and
//    erase; the general-purpose workhorse.
//  * ConcurrentFixedMap: open-addressing CAS table for uint64 keys, insert/
//    find only, used in hot parallel phases with pre-known capacity.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace parspan {

template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedMap {
 public:
  explicit ShardedMap(size_t num_shards = 64) {
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i)
      shards_.push_back(std::make_unique<Shard>());
  }

  /// Inserts or overwrites key -> value.
  void insert_or_assign(const K& key, const V& value) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> g(s.mu);
    s.map[key] = value;
  }

  /// Applies fn(V&) to the value of `key`, default-constructing it first if
  /// absent. The lock is held for the duration of fn.
  template <typename Fn>
  void upsert(const K& key, Fn&& fn) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> g(s.mu);
    fn(s.map[key]);
  }

  /// Applies fn(V&) if the key is present; returns whether it was. If fn
  /// returns false the entry is erased (update-or-erase in one lock).
  template <typename Fn>
  bool update_or_erase(const K& key, Fn&& fn) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    if (!fn(it->second)) s.map.erase(it);
    return true;
  }

  /// Copy of the value if present.
  std::optional<V> get(const K& key) const {
    const Shard& s = shard(key);
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
  }

  bool contains(const K& key) const { return get(key).has_value(); }

  bool erase(const K& key) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> g(s.mu);
    return s.map.erase(key) > 0;
  }

  /// Total entry count (takes all shard locks; not for hot paths).
  size_t size() const {
    size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> g(s->mu);
      n += s->map.size();
    }
    return n;
  }

  void clear() {
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> g(s->mu);
      s->map.clear();
    }
  }

  /// Visits all entries. NOT safe concurrently with writers.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& s : shards_)
      for (const auto& [k, v] : s->map) fn(k, v);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<K, V, Hash> map;
  };

  Shard& shard(const K& key) {
    return *shards_[Hash{}(key) * 0x9e3779b97f4a7c15ULL % shards_.size()];
  }
  const Shard& shard(const K& key) const {
    return *shards_[Hash{}(key) * 0x9e3779b97f4a7c15ULL % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Fixed-capacity open-addressing hash map for uint64 keys (values uint64),
/// with lock-free concurrent insert/find. No erase; keys must be != kEmpty.
/// Used in parallel phases where the batch size bounds the capacity.
class ConcurrentFixedMap {
 public:
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  explicit ConcurrentFixedMap(size_t capacity_hint = 16) { rebuild(capacity_hint); }

  /// Re-initializes with capacity for at least `n` keys (not thread-safe).
  void rebuild(size_t n) {
    size_t cap = 16;
    while (cap < 2 * n + 8) cap <<= 1;
    keys_ = std::make_unique<std::atomic<uint64_t>[]>(cap);
    vals_ = std::make_unique<std::atomic<uint64_t>[]>(cap);
    cap_ = cap;
    mask_ = cap - 1;
    for (size_t i = 0; i < cap; ++i) {
      keys_[i].store(kEmpty, std::memory_order_relaxed);
      vals_[i].store(0, std::memory_order_relaxed);
    }
    size_.store(0, std::memory_order_relaxed);
  }

  /// Inserts key -> value if absent; returns true if this call inserted.
  /// Concurrent inserts of the same key keep the first value.
  bool insert(uint64_t key, uint64_t value) {
    assert(key != kEmpty);
    size_t i = splitmix64(key) & mask_;
    while (true) {
      uint64_t cur = keys_[i].load(std::memory_order_acquire);
      if (cur == key) return false;
      if (cur == kEmpty) {
        uint64_t expected = kEmpty;
        if (keys_[i].compare_exchange_strong(expected, key,
                                             std::memory_order_acq_rel)) {
          vals_[i].store(value, std::memory_order_release);
          size_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        if (expected == key) return false;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Looks up `key`; returns the value or nullopt.
  std::optional<uint64_t> find(uint64_t key) const {
    size_t i = splitmix64(key) & mask_;
    while (true) {
      uint64_t cur = keys_[i].load(std::memory_order_acquire);
      if (cur == kEmpty) return std::nullopt;
      if (cur == key) return vals_[i].load(std::memory_order_acquire);
      i = (i + 1) & mask_;
    }
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  size_t capacity() const { return cap_; }

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> keys_;
  std::unique_ptr<std::atomic<uint64_t>[]> vals_;
  size_t cap_ = 0;
  size_t mask_ = 0;
  std::atomic<size_t> size_{0};
};

}  // namespace parspan
