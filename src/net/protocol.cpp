#include "net/protocol.hpp"

#include <algorithm>
#include <cstring>

namespace parspan::net {

namespace {

// Every request starts `op u8`; encoders build the body in place after it
// inside a frame-header-shaped hole, then seal.
std::vector<uint8_t> begin_request(Op op, size_t body_reserve) {
  std::vector<uint8_t> buf;
  buf.reserve(kFrameHeaderSize + 1 + body_reserve);
  buf.resize(kFrameHeaderSize);
  buf.push_back(static_cast<uint8_t>(op));
  return buf;
}

void finish_frame_into(std::vector<uint8_t>& out, std::vector<uint8_t> buf) {
  seal_frame(buf.data(), buf.size() - kFrameHeaderSize);
  out.insert(out.end(), buf.begin(), buf.end());
}

void put_key_list(std::vector<uint8_t>& buf, const std::vector<EdgeKey>& keys) {
  const size_t at = buf.size();
  buf.resize(at + ascending_list_bound(keys.size()));
  uint8_t* end =
      encode_ascending_list(keys.data(), keys.size(), buf.data() + at);
  buf.resize(size_t(end - buf.data()));
}

void put_submit_tail(std::vector<uint8_t>& buf, uint32_t graph_id,
                     const std::vector<EdgeKey>& ins,
                     const std::vector<EdgeKey>& del) {
  put_le32(buf, graph_id);
  put_le32(buf, uint32_t(ins.size()));
  put_le32(buf, uint32_t(del.size()));
  put_key_list(buf, ins);
  put_key_list(buf, del);
}

// Bounds-checked sequential reader over one payload. Every get_* returns
// false on underrun; decode fails closed instead of reading past the end.
struct Reader {
  const uint8_t* p;
  const uint8_t* end;
  bool get_u8(uint8_t* v) {
    if (end - p < 1) return false;
    *v = *p++;
    return true;
  }
  bool get_u32(uint32_t* v) {
    if (end - p < 4) return false;
    *v = get_le32(p);
    p += 4;
    return true;
  }
  bool get_u64(uint64_t* v) {
    if (end - p < 8) return false;
    *v = get_le64(p);
    p += 8;
    return true;
  }
  bool done() const { return p == end; }
};

bool get_submit_tail(Reader& r, Request* out) {
  uint32_t icnt = 0, dcnt = 0;
  if (!r.get_u32(&out->graph_id) || !r.get_u32(&icnt) || !r.get_u32(&dcnt))
    return false;
  return decode_ascending_list(&r.p, r.end, icnt, &out->insertions) &&
         decode_ascending_list(&r.p, r.end, dcnt, &out->deletions);
}

bool get_vv(Reader& r, std::vector<uint64_t>* out) {
  uint32_t cnt = 0;
  if (!r.get_u32(&cnt)) return false;
  if (uint64_t(cnt) * 8 > uint64_t(r.end - r.p)) return false;
  out->clear();
  out->reserve(cnt);
  for (uint32_t i = 0; i < cnt; ++i) {
    uint64_t v = 0;
    r.get_u64(&v);
    out->push_back(v);
  }
  return true;
}

void put_vv(std::vector<uint8_t>& buf, const std::vector<uint64_t>& vv) {
  put_le32(buf, uint32_t(vv.size()));
  for (uint64_t v : vv) put_le64(buf, v);
}

}  // namespace

// --- Request encoders -----------------------------------------------------

void encode_hello(std::vector<uint8_t>& out) {
  auto buf = begin_request(Op::kHello, 12);
  put_le64(buf, kMagic);
  put_le32(buf, kProtocolVersion);
  finish_frame_into(out, std::move(buf));
}

void encode_submit(std::vector<uint8_t>& out, uint32_t graph_id,
                   const std::vector<EdgeKey>& insertions,
                   const std::vector<EdgeKey>& deletions) {
  auto buf = begin_request(
      Op::kSubmit,
      12 + ascending_list_bound(insertions.size() + deletions.size()));
  put_submit_tail(buf, graph_id, insertions, deletions);
  finish_frame_into(out, std::move(buf));
}

void encode_submit_for(std::vector<uint8_t>& out, uint32_t graph_id,
                       const std::vector<EdgeKey>& insertions,
                       const std::vector<EdgeKey>& deletions,
                       uint32_t timeout_ms) {
  auto buf = begin_request(
      Op::kSubmitFor,
      16 + ascending_list_bound(insertions.size() + deletions.size()));
  put_le32(buf, timeout_ms);
  put_submit_tail(buf, graph_id, insertions, deletions);
  finish_frame_into(out, std::move(buf));
}

void encode_flush(std::vector<uint8_t>& out) {
  finish_frame_into(out, begin_request(Op::kFlush, 0));
}

void encode_pin(std::vector<uint8_t>& out, const std::vector<uint64_t>& vv) {
  auto buf = begin_request(Op::kPin, 4 + 8 * vv.size());
  put_vv(buf, vv);
  finish_frame_into(out, std::move(buf));
}

void encode_unpin(std::vector<uint8_t>& out, uint64_t pin_id) {
  auto buf = begin_request(Op::kUnpin, 8);
  put_le64(buf, pin_id);
  finish_frame_into(out, std::move(buf));
}

void encode_has_edge(std::vector<uint8_t>& out, uint64_t pin_id, VertexId u,
                     VertexId v) {
  auto buf = begin_request(Op::kHasEdge, 16);
  put_le64(buf, pin_id);
  put_le32(buf, u);
  put_le32(buf, v);
  finish_frame_into(out, std::move(buf));
}

void encode_neighbors(std::vector<uint8_t>& out, uint64_t pin_id, VertexId v) {
  auto buf = begin_request(Op::kNeighbors, 12);
  put_le64(buf, pin_id);
  put_le32(buf, v);
  finish_frame_into(out, std::move(buf));
}

void encode_bounded_bfs(std::vector<uint8_t>& out, uint64_t pin_id, VertexId u,
                        VertexId v, uint32_t limit) {
  auto buf = begin_request(Op::kBoundedBfs, 20);
  put_le64(buf, pin_id);
  put_le32(buf, u);
  put_le32(buf, v);
  put_le32(buf, limit);
  finish_frame_into(out, std::move(buf));
}

void encode_stats(std::vector<uint8_t>& out) {
  finish_frame_into(out, begin_request(Op::kStats, 0));
}

std::vector<EdgeKey> sort_unique_keys(const std::vector<Edge>& edges) {
  std::vector<EdgeKey> keys;
  keys.reserve(edges.size());
  for (const Edge& e : edges) keys.push_back(e.key());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

// --- Request decode -------------------------------------------------------

bool decode_request(const uint8_t* payload, uint32_t len, Request* out) {
  Reader r{payload, payload + len};
  uint8_t op = 0;
  if (!r.get_u8(&op)) return false;
  *out = Request{};
  out->op = static_cast<Op>(op);
  switch (out->op) {
    case Op::kHello:
      if (!r.get_u64(&out->magic) || !r.get_u32(&out->version)) return false;
      break;
    case Op::kSubmit:
      if (!get_submit_tail(r, out)) return false;
      break;
    case Op::kSubmitFor:
      if (!r.get_u32(&out->timeout_ms) || !get_submit_tail(r, out))
        return false;
      break;
    case Op::kFlush:
    case Op::kStats:
      break;
    case Op::kPin:
      if (!get_vv(r, &out->vv)) return false;
      break;
    case Op::kUnpin:
      if (!r.get_u64(&out->pin_id)) return false;
      break;
    case Op::kHasEdge:
      if (!r.get_u64(&out->pin_id) || !r.get_u32(&out->u) || !r.get_u32(&out->v))
        return false;
      break;
    case Op::kNeighbors:
      if (!r.get_u64(&out->pin_id) || !r.get_u32(&out->v)) return false;
      break;
    case Op::kBoundedBfs:
      if (!r.get_u64(&out->pin_id) || !r.get_u32(&out->u) ||
          !r.get_u32(&out->v) || !r.get_u32(&out->limit))
        return false;
      break;
    default:
      return false;  // unknown op
  }
  // Trailing bytes prove the frame malformed — nothing on this wire pads.
  return r.done();
}

// --- Response encoders ----------------------------------------------------

namespace {

void append_response(std::vector<uint8_t>& out, uint32_t seq, Status status,
                     const uint8_t* body, size_t body_len) {
  const size_t at = out.size();
  out.resize(at + kFrameHeaderSize + 5 + body_len);
  uint8_t* payload = out.data() + at + kFrameHeaderSize;
  store_le32(payload, seq);
  payload[4] = static_cast<uint8_t>(status);
  std::memcpy(payload + 5, body, body_len);
  seal_frame(out.data() + at, 5 + body_len);
}

}  // namespace

void append_ok(std::vector<uint8_t>& out, uint32_t seq,
               const std::vector<uint8_t>& body) {
  append_response(out, seq, Status::kOk, body.data(), body.size());
}

void append_retry_after(std::vector<uint8_t>& out, uint32_t seq,
                        uint32_t retry_after_ms) {
  uint8_t body[4];
  store_le32(body, retry_after_ms);
  append_response(out, seq, Status::kRetryAfter, body, sizeof(body));
}

void append_error(std::vector<uint8_t>& out, uint32_t seq,
                  const std::string& message) {
  std::vector<uint8_t> body;
  body.reserve(4 + message.size());
  put_le32(body, uint32_t(message.size()));
  body.insert(body.end(), message.begin(), message.end());
  append_response(out, seq, Status::kError, body.data(), body.size());
}

std::vector<uint8_t> build_hello_body(const HelloInfo& info) {
  std::vector<uint8_t> body;
  put_le32(body, info.num_shards);
  body.push_back(info.single_graph ? 1 : 0);
  put_le64(body, info.vertex_space);
  return body;
}

std::vector<uint8_t> build_vv_body(const std::vector<uint64_t>& vv) {
  std::vector<uint8_t> body;
  put_vv(body, vv);
  return body;
}

std::vector<uint8_t> build_pin_body(uint64_t pin_id,
                                    const std::vector<uint64_t>& vv) {
  std::vector<uint8_t> body;
  put_le64(body, pin_id);
  put_vv(body, vv);
  return body;
}

std::vector<uint8_t> build_has_edge_body(bool present) {
  return {present ? uint8_t(1) : uint8_t(0)};
}

std::vector<uint8_t> build_neighbors_body(const std::vector<VertexId>& ids) {
  std::vector<uint8_t> body;
  put_le32(body, uint32_t(ids.size()));
  const size_t at = body.size();
  body.resize(at + ascending_list_bound(ids.size()));
  uint8_t* end = encode_ascending_list(ids.data(), ids.size(), body.data() + at);
  body.resize(size_t(end - body.data()));
  return body;
}

std::vector<uint8_t> build_dist_body(uint32_t dist) {
  std::vector<uint8_t> body;
  put_le32(body, dist);
  return body;
}

std::vector<uint8_t> build_stats_body(const StatsInfo& stats) {
  std::vector<uint8_t> body;
  put_le32(body, stats.hello.num_shards);
  body.push_back(stats.hello.single_graph ? 1 : 0);
  put_le64(body, stats.hello.vertex_space);
  put_le64(body, stats.edges_ingested);
  put_le64(body, stats.edges_rejected);
  put_le64(body, stats.edges_timed_out);
  put_vv(body, stats.versions);
  put_le32(body, stats.active_connections);
  put_le64(body, stats.protocol_errors);
  return body;
}

// --- Response decode ------------------------------------------------------

bool decode_response(const uint8_t* payload, uint32_t len, Response* out) {
  if (len < 5) return false;
  out->seq = get_le32(payload);
  const uint8_t status = payload[4];
  if (status > static_cast<uint8_t>(Status::kError)) return false;
  out->status = static_cast<Status>(status);
  out->body = payload + 5;
  out->body_len = len - 5;
  return true;
}

namespace {
Reader body_reader(const Response& r) { return {r.body, r.body + r.body_len}; }

bool get_hello(Reader& r, HelloInfo* out) {
  uint8_t single = 0;
  if (!r.get_u32(&out->num_shards) || !r.get_u8(&single) ||
      !r.get_u64(&out->vertex_space))
    return false;
  out->single_graph = single != 0;
  return true;
}
}  // namespace

bool parse_hello_body(const Response& r, HelloInfo* out) {
  Reader rd = body_reader(r);
  return get_hello(rd, out) && rd.done();
}

bool parse_vv_body(const Response& r, std::vector<uint64_t>* out) {
  Reader rd = body_reader(r);
  return get_vv(rd, out) && rd.done();
}

bool parse_pin_body(const Response& r, uint64_t* pin_id,
                    std::vector<uint64_t>* vv) {
  Reader rd = body_reader(r);
  return rd.get_u64(pin_id) && get_vv(rd, vv) && rd.done();
}

bool parse_has_edge_body(const Response& r, bool* present) {
  if (r.body_len != 1 || r.body[0] > 1) return false;
  *present = r.body[0] != 0;
  return true;
}

bool parse_neighbors_body(const Response& r, std::vector<VertexId>* out) {
  Reader rd = body_reader(r);
  uint32_t cnt = 0;
  if (!rd.get_u32(&cnt)) return false;
  return decode_ascending_list(&rd.p, rd.end, cnt, out) && rd.done();
}

bool parse_dist_body(const Response& r, uint32_t* dist) {
  Reader rd = body_reader(r);
  return rd.get_u32(dist) && rd.done();
}

bool parse_stats_body(const Response& r, StatsInfo* out) {
  Reader rd = body_reader(r);
  return get_hello(rd, &out->hello) && rd.get_u64(&out->edges_ingested) &&
         rd.get_u64(&out->edges_rejected) && rd.get_u64(&out->edges_timed_out) &&
         get_vv(rd, &out->versions) && rd.get_u32(&out->active_connections) &&
         rd.get_u64(&out->protocol_errors) && rd.done();
}

bool parse_retry_after_body(const Response& r, uint32_t* retry_after_ms) {
  if (r.status != Status::kRetryAfter) return false;
  Reader rd = body_reader(r);
  return rd.get_u32(retry_after_ms) && rd.done();
}

bool parse_error_body(const Response& r, std::string* message) {
  if (r.status != Status::kError) return false;
  Reader rd = body_reader(r);
  uint32_t len = 0;
  if (!rd.get_u32(&len) || uint64_t(len) != uint64_t(rd.end - rd.p))
    return false;
  message->assign(reinterpret_cast<const char*>(rd.p), len);
  return true;
}

}  // namespace parspan::net
