// NetServer: the non-blocking network front door over one
// ShardedSpannerService (DESIGN.md §13).
//
// Thread shape: one acceptor thread owns the listening socket and nothing
// else; it accept4()s connections and deals them round-robin to N event
// loops. Each loop is one thread around one edge-triggered epoll set:
// EPOLLIN drains a connection's socket into its input buffer and
// processes every complete frame, EPOLLOUT drains the output buffer back
// into the socket, and a per-loop eventfd wakes the loop for everything
// that happens off-thread (new connections from the acceptor, flush
// completions from drain threads, stop). A connection lives on exactly
// one loop for its whole life — all its state is loop-local and
// lock-free; the only cross-thread traffic is the eventfd-guarded
// mailbox.
//
// The loop never blocks on the service (§13.4):
//   * submit admission is always a zero-timeout try; a full queue answers
//     kRetryAfter with a client backoff hint instead of parking the
//     thread the other 10k connections are sharing.
//   * kSubmitFor parks the REQUEST (not the thread) on the loop's
//     deadline ladder; epoll_wait's timeout doubles as the retry tick,
//     re-trying admission until it wins or the deadline answers
//     kRetryAfter.
//   * kFlush registers a service-side flush_async callback; the publish
//     barrier completes on whichever writer drain satisfies it and posts
//     {conn, seq, vv} to the owning loop's mailbox. Pipelined queries
//     behind the flush answer immediately — seq ordering is what lets
//     the flush response overtake nothing and still match.
//
// Snapshot pinning: kPin resolves a ShardedView (refcounted snapshot per
// shard — SnapshotStore keeps every pinned version alive) and parks it in
// the connection's pin table; queries name a pin id, 0 meaning "current".
// Dropped connections drop their pins with them, so a client crash can
// never leak snapshot retention.
//
// Trust boundary: every byte off the socket is hostile until the frame
// CRC and decode_request prove otherwise. A malformed frame counts one
// protocol error and closes the connection — no resync scanning, exactly
// the WAL's torn-tail rule. Slow readers are bounded by max_outbuf_bytes:
// a client that stops reading while piling up pipelined queries gets
// disconnected, not buffered without bound.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "service/sharded_service.hpp"

namespace parspan::net {

struct NetServerConfig {
  std::string bind_addr = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks, port() reports.
  uint16_t port = 0;
  /// Event-loop thread count (>= 1). Loops share nothing; scale with
  /// cores that are not busy draining shards.
  int num_loops = 1;
  /// Per-connection inbound frame cap (protocol error above it).
  uint32_t max_frame_payload = kDefaultMaxFramePayload;
  /// Hint returned with every kRetryAfter.
  uint32_t retry_after_ms = 10;
  /// Disconnect a connection whose unsent responses exceed this.
  size_t max_outbuf_bytes = 8u << 20;
  /// Parked submit_for retry granularity (epoll_wait timeout while any
  /// request is parked).
  uint32_t tick_ms = 2;
  /// Pin-table cap per connection (kError above it).
  size_t max_pins_per_conn = 64;
  /// A gracefully-closing connection (peer EOF with responses pending, or
  /// an error reply sent just before close) keeps flushing its output for
  /// at most this long before the fd is reaped anyway — best-effort
  /// delivery of owed responses, never an unbounded hold.
  uint32_t drain_linger_ms = 1000;
  int listen_backlog = 1024;
};

class NetServer {
 public:
  /// The service must outlive the server. Call start() to go live.
  NetServer(ShardedSpannerService& service, NetServerConfig cfg = {});
  /// stop()s if still running.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and spawns the acceptor + loop threads. False when
  /// the socket setup fails (port in use, bad address).
  bool start();

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent. Deferred work in flight (parked submits, pending flush
  /// callbacks) is dropped — clients see the close.
  void stop();

  /// The bound port (resolved after start() for ephemeral binds).
  uint16_t port() const { return port_; }

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t active_connections = 0;
    uint64_t requests = 0;
    uint64_t responses = 0;
    uint64_t retry_afters = 0;   // backpressure pushes sent
    uint64_t protocol_errors = 0;  // malformed frames/requests (fatal per conn)
  };
  Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  uint16_t port_ = 0;
};

}  // namespace parspan::net
