#include "net/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/framed_conn.hpp"

namespace parspan::net {

namespace {

using Clock = std::chrono::steady_clock;

/// One connection's entire state. Owned by exactly one event loop; never
/// touched from any other thread (deferred completions go through the
/// loop's mailbox and are resolved to a Conn* on the loop thread).
struct Conn {
  int fd = -1;
  uint64_t id = 0;
  ConnBufs bufs;  // the shared framed-stream buffer discipline
  uint32_t next_seq = 0;  // requests are implicitly numbered in arrival order
  bool hello_done = false;
  bool dead = false;   // no more reads/requests; reaped at batch end
  bool drain = false;  // dead, but flush buffered responses first (bounded)
  Clock::time_point drain_deadline{};
  uint64_t next_pin_id = 0;
  std::unordered_map<uint64_t, ShardedView> pins;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

/// A kFlush whose publish barrier completed on a drain thread: routed to
/// the owning loop by conn id (the conn may be gone — then it fizzles).
struct FlushDone {
  uint64_t conn_id = 0;
  uint32_t seq = 0;
  VersionVector vv;
};

/// A kSubmitFor waiting for queue admission: the REQUEST is parked, the
/// loop thread is not. Retried on every loop tick until admission wins or
/// the deadline expires into kRetryAfter. The RoutedBatch remembers which
/// shards already admitted, so a retry touches only the still-full ones —
/// and the service's edges_ingested/edges_timed_out counters therefore
/// count each edge exactly once, not once per tick.
struct Parked {
  uint64_t conn_id = 0;
  uint32_t seq = 0;
  ShardedSpannerService::RoutedBatch batch;
  Clock::time_point deadline;
};

/// Cross-thread mailbox of one loop. Held by shared_ptr from every
/// in-flight flush_async callback, so a completion that fires after the
/// server stopped (the service outlives it) lands on a closed mailbox
/// instead of freed memory; the eventfd lives and dies with the mailbox
/// for the same reason.
struct Mailbox {
  std::mutex mu;
  std::vector<int> incoming;  // accepted fds awaiting registration
  std::vector<FlushDone> completions;
  bool closed = false;
  int wakefd = -1;

  ~Mailbox() {
    if (wakefd >= 0) ::close(wakefd);
  }

  void wake() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(wakefd, &one, sizeof(one));
  }

  void post_conn(int fd) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (closed) {
        ::close(fd);
        return;
      }
      incoming.push_back(fd);
    }
    wake();
  }

  void post_completion(FlushDone d) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (closed) return;
      completions.push_back(std::move(d));
    }
    wake();
  }
};

struct Loop {
  int epfd = -1;
  std::shared_ptr<Mailbox> mbox;
  std::thread thread;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;  // by conn id
  std::deque<Parked> parked;
  bool draining = false;  // any conn flushing out its last responses
};

}  // namespace

struct NetServer::Impl {
  ShardedSpannerService& svc;
  NetServerConfig cfg;

  int listen_fd = -1;
  int accept_wakefd = -1;
  std::thread acceptor;
  std::vector<std::unique_ptr<Loop>> loops;
  std::atomic<bool> running{false};
  bool started = false;
  std::atomic<uint64_t> next_conn_id{1};

  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> closed{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> retry_afters{0};
  std::atomic<uint64_t> protocol_errors{0};

  Impl(ShardedSpannerService& s, NetServerConfig c) : svc(s), cfg(std::move(c)) {}

  // --- Response helpers (bump the counters exactly once per response) ---

  void respond_ok(Conn* c, uint32_t seq, const std::vector<uint8_t>& body) {
    append_ok(c->bufs.out, seq, body);
    responses.fetch_add(1, std::memory_order_relaxed);
  }
  void respond_retry(Conn* c, uint32_t seq) {
    append_retry_after(c->bufs.out, seq, cfg.retry_after_ms);
    responses.fetch_add(1, std::memory_order_relaxed);
    retry_afters.fetch_add(1, std::memory_order_relaxed);
  }
  void respond_error(Conn* c, uint32_t seq, const std::string& msg) {
    append_error(c->bufs.out, seq, msg);
    responses.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Two ways for a connection to die ---------------------------------
  // Hard: reaped at batch end no matter what is still buffered (protocol
  // violations, write errors, slow-reader overflow). Soft: stop reading
  // but keep flushing buffered responses — bounded by drain_linger_ms —
  // so a version-mismatch kError or the pipelined responses behind a
  // half-close actually reach the peer before the fd closes.

  static void kill_conn(Conn* c) {
    c->dead = true;
    c->drain = false;
  }

  void close_after_drain(Conn* c) {
    if (c->dead) return;
    c->dead = true;
    c->drain = true;
    c->drain_deadline =
        Clock::now() + std::chrono::milliseconds(cfg.drain_linger_ms);
  }

  HelloInfo hello_info() const {
    HelloInfo h;
    h.num_shards = uint32_t(svc.num_shards());
    h.single_graph = svc.router().single_graph();
    h.vertex_space = svc.vertex_space();
    return h;
  }

  /// Canonical-key validation against the serving vertex space: client
  /// keys are data, and an out-of-range vertex must bounce at the front
  /// door — past it, a backend would index out of bounds.
  bool keys_valid(const std::vector<EdgeKey>& keys) const {
    const uint64_t n = svc.vertex_space();
    for (EdgeKey k : keys) {
      auto [lo, hi] = edge_endpoints(k);
      if (lo >= hi || hi >= n) return false;
    }
    return true;
  }

  static std::vector<Edge> to_edges(const std::vector<EdgeKey>& keys) {
    std::vector<Edge> edges;
    edges.reserve(keys.size());
    for (EdgeKey k : keys) edges.push_back(edge_from_key(k));
    return edges;
  }

  // --- Request handling (loop thread) -----------------------------------

  void handle_request(Loop& loop, Conn* c, uint32_t seq,
                      const uint8_t* payload, uint32_t len) {
    Request req;
    if (!decode_request(payload, len, &req)) {
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      c->dead = true;
      return;
    }
    if (!c->hello_done) {
      // Hello-first is part of the protocol: anything else is a stray
      // client and dies before touching the service.
      if (req.op != Op::kHello || req.magic != kMagic) {
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        c->dead = true;
        return;
      }
      if (req.version != kProtocolVersion) {
        respond_error(c, seq, "protocol version mismatch");
        close_after_drain(c);  // the error response flushes before close
        return;
      }
      c->hello_done = true;
      respond_ok(c, seq, build_hello_body(hello_info()));
      return;
    }

    switch (req.op) {
      case Op::kHello:
        respond_error(c, seq, "duplicate hello");
        break;
      case Op::kSubmit:
      case Op::kSubmitFor: {
        if (!keys_valid(req.insertions) || !keys_valid(req.deletions)) {
          respond_error(c, seq, "edge key out of range");
          break;
        }
        // Admission is ALWAYS a zero-timeout try on the loop thread; a
        // parked kSubmitFor keeps the RoutedBatch and retries only its
        // not-yet-admitted shards on later ticks. On kRetryAfter some
        // shards' sub-batches are already in (the service's documented
        // partial admission) — drop_pending charges the rest to
        // edges_timed_out exactly once, and "retry the whole batch" is
        // the client contract (resubmission is idempotent under the
        // queue's last-op-wins set semantics).
        auto batch = svc.route_batch(req.graph_id, to_edges(req.insertions),
                                     to_edges(req.deletions));
        auto st = svc.try_admit(batch);
        if (st == ShardedSpannerService::SubmitStatus::kOk) {
          respond_ok(c, seq, {});
        } else if (req.op == Op::kSubmitFor && req.timeout_ms > 0) {
          loop.parked.push_back(
              {c->id, seq, std::move(batch),
               Clock::now() + std::chrono::milliseconds(req.timeout_ms)});
        } else {
          svc.drop_pending(batch);
          respond_retry(c, seq);
        }
        break;
      }
      case Op::kFlush: {
        // The barrier completes on a writer drain (or inline right here);
        // either way the result goes through the mailbox and is written
        // out by the loop thread — flush never parks this thread.
        auto mbox = loop.mbox;
        const uint64_t conn_id = c->id;
        svc.flush_async([mbox, conn_id, seq](VersionVector vv) {
          mbox->post_completion({conn_id, seq, std::move(vv)});
        });
        break;
      }
      case Op::kPin: {
        if (c->pins.size() >= cfg.max_pins_per_conn) {
          respond_error(c, seq, "pin table full");
          break;
        }
        std::optional<ShardedView> view;
        if (req.vv.empty()) {
          view = svc.view();
        } else {
          if (req.vv.size() != svc.num_shards()) {
            // A wrong-length vector can never become pinnable, so
            // kRetryAfter's "retry the SAME request" contract would loop
            // forever — this is a client bug (hello said num_shards),
            // answered as the semantic error it is.
            respond_error(c, seq, "version vector shard count mismatch");
            break;
          }
          VersionVector target;
          target.v = req.vv;
          view = svc.try_view_at_least(target);
          if (!view) {
            // Not published that far yet: protocol backpressure, the
            // client's retry loop — never a wait here.
            respond_retry(c, seq);
            break;
          }
        }
        const uint64_t pin_id = ++c->next_pin_id;
        const std::vector<uint64_t> vv = view->versions().v;
        c->pins.emplace(pin_id, std::move(*view));
        respond_ok(c, seq, build_pin_body(pin_id, vv));
        break;
      }
      case Op::kUnpin: {
        if (c->pins.erase(req.pin_id) == 0)
          respond_error(c, seq, "unknown pin id");
        else
          respond_ok(c, seq, {});
        break;
      }
      case Op::kHasEdge:
      case Op::kNeighbors:
      case Op::kBoundedBfs: {
        if (!svc.router().single_graph()) {
          respond_error(c, seq, "composed query on multi-tenant service");
          break;
        }
        const ShardedView* view = nullptr;
        std::optional<ShardedView> unpinned;
        if (req.pin_id == 0) {
          unpinned = svc.view();
          view = &*unpinned;
        } else {
          auto it = c->pins.find(req.pin_id);
          if (it == c->pins.end()) {
            respond_error(c, seq, "unknown pin id");
            break;
          }
          view = &it->second;
        }
        const uint64_t n = svc.vertex_space();
        if (req.u >= n || req.v >= n) {
          respond_error(c, seq, "vertex out of range");
          break;
        }
        if (req.op == Op::kHasEdge) {
          const bool present = req.u != req.v && view->has_edge(req.u, req.v);
          respond_ok(c, seq, build_has_edge_body(present));
        } else if (req.op == Op::kNeighbors) {
          respond_ok(c, seq, build_neighbors_body(view->neighbors(req.v)));
        } else {
          const uint32_t d = req.u == req.v
                                 ? 0
                                 : view->distance(req.u, req.v, req.limit);
          respond_ok(c, seq, build_dist_body(d));
        }
        break;
      }
      case Op::kStats: {
        StatsInfo s;
        s.hello = hello_info();
        s.edges_ingested = svc.edges_ingested();
        s.edges_rejected = svc.edges_rejected();
        s.edges_timed_out = svc.edges_timed_out();
        s.versions = svc.versions().v;
        s.active_connections = uint32_t(
            accepted.load(std::memory_order_relaxed) -
            closed.load(std::memory_order_relaxed));
        s.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
        respond_ok(c, seq, build_stats_body(s));
        break;
      }
      default:
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        c->dead = true;
        break;
    }
  }

  void process_frames(Loop& loop, Conn* c) {
    while (!c->dead) {
      FrameView fv;
      const FrameParse p = next_frame(c->bufs, cfg.max_frame_payload, &fv);
      if (p == FrameParse::kNeedMore) break;
      if (p == FrameParse::kBad) {
        // Torn/corrupt/hostile frame: the stream is unrecoverable (no
        // resync scanning — the WAL's torn-tail rule, DESIGN.md §10.3).
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        c->dead = true;
        break;
      }
      const uint32_t seq = c->next_seq++;
      requests.fetch_add(1, std::memory_order_relaxed);
      handle_request(loop, c, seq, fv.payload, fv.len);
      consume_frame(c->bufs, fv);
    }
    finish_parse(c->bufs);
  }

  /// Edge-triggered read: read_to_buffer drains the socket completely —
  /// the next EPOLLIN edge only comes after new bytes arrive.
  void handle_readable(Loop& loop, Conn* c) {
    const IoStatus st = read_to_buffer(c->fd, c->bufs, cfg.max_frame_payload);
    if (st == IoStatus::kOverflow) {
      // A client shovelling bytes that never complete a frame is claiming
      // a payload the cap already rejected.
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      c->dead = true;
    } else if (st == IoStatus::kError) {
      c->dead = true;
    }
    process_frames(loop, c);
    // Half-closed peers (shutdown(SHUT_WR)) get their pipelined responses
    // drained before the reap; full closes just fail the write.
    if (st == IoStatus::kEof) close_after_drain(c);
    flush_writes(c);
  }

  /// Edge-triggered write via the shared helper (push until done or
  /// EAGAIN; the kernel raises the next EPOLLOUT edge when the socket
  /// drains — called after every append too, because an idle-writable
  /// socket never gets another edge), plus the front door's slow-reader
  /// policy on top.
  void flush_writes(Conn* c) {
    if (net::flush_writes(c->fd, c->bufs) == IoStatus::kError) {
      kill_conn(c);  // EPIPE/ECONNRESET: nothing left to drain to
      return;
    }
    if (c->bufs.out_pending() > cfg.max_outbuf_bytes) {
      // Slow reader with unbounded pipelined responses: disconnect rather
      // than buffer without bound.
      kill_conn(c);
    }
  }

  void close_conn(Loop& loop, uint64_t conn_id) {
    auto it = loop.conns.find(conn_id);
    if (it == loop.conns.end()) return;
    // ~Conn closes the fd (epoll drops it automatically) and releases the
    // pin table — a dead client can never leak snapshot retention.
    loop.conns.erase(it);
    closed.fetch_add(1, std::memory_order_relaxed);
  }

  void register_conn(Loop& loop, int fd) {
    auto c = std::make_unique<Conn>();
    c->fd = fd;
    c->id = next_conn_id.fetch_add(1, std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
    ev.data.ptr = c.get();
    if (epoll_ctl(loop.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) return;  // ~Conn
    accepted.fetch_add(1, std::memory_order_relaxed);
    loop.conns.emplace(c->id, std::move(c));
  }

  void drain_mailbox(Loop& loop) {
    uint64_t tick = 0;
    while (::read(loop.mbox->wakefd, &tick, sizeof(tick)) > 0) {
    }
    std::vector<int> incoming;
    std::vector<FlushDone> completions;
    {
      std::lock_guard<std::mutex> lk(loop.mbox->mu);
      incoming.swap(loop.mbox->incoming);
      completions.swap(loop.mbox->completions);
    }
    for (int fd : incoming) register_conn(loop, fd);
    for (FlushDone& d : completions) {
      auto it = loop.conns.find(d.conn_id);
      if (it == loop.conns.end()) continue;  // conn died while flushing
      Conn* c = it->second.get();
      if (c->dead) continue;
      respond_ok(c, d.seq, build_vv_body(d.vv.v));
      flush_writes(c);
    }
  }

  void retry_parked(Loop& loop) {
    if (loop.parked.empty()) return;
    const auto now = Clock::now();
    for (size_t i = 0; i < loop.parked.size();) {
      Parked& p = loop.parked[i];
      auto it = loop.conns.find(p.conn_id);
      Conn* c = it == loop.conns.end() ? nullptr : it->second.get();
      if (c == nullptr || c->dead) {
        loop.parked.erase(loop.parked.begin() + ptrdiff_t(i));
        continue;
      }
      // Only the not-yet-admitted shards are retried: the batch carries
      // its admission state, so counters move once per edge, not per tick.
      const auto st = svc.try_admit(p.batch);
      if (st == ShardedSpannerService::SubmitStatus::kOk) {
        respond_ok(c, p.seq, {});
      } else if (now >= p.deadline) {
        svc.drop_pending(p.batch);
        respond_retry(c, p.seq);
      } else {
        ++i;
        continue;
      }
      flush_writes(c);
      loop.parked.erase(loop.parked.begin() + ptrdiff_t(i));
    }
  }

  void loop_main(Loop& loop) {
    epoll_event evs[64];
    std::vector<uint64_t> dead;
    while (running.load(std::memory_order_acquire)) {
      // Tick (instead of sleeping forever) while anything needs future
      // work: parked admission retries, or drain deadlines to enforce.
      const int timeout =
          loop.parked.empty() && !loop.draining ? -1 : int(cfg.tick_ms);
      const int n = epoll_wait(loop.epfd, evs, 64, timeout);
      for (int i = 0; i < n; ++i) {
        if (evs[i].data.ptr == nullptr) {
          drain_mailbox(loop);
          continue;
        }
        Conn* c = static_cast<Conn*>(evs[i].data.ptr);
        if (c->dead && !c->drain) continue;  // reaped below
        if (evs[i].events & (EPOLLERR | EPOLLHUP)) kill_conn(c);
        if (!c->dead && (evs[i].events & EPOLLIN)) handle_readable(loop, c);
        // Draining conns still take EPOLLOUT: that edge is what empties
        // their outbuf so the reap below can close them.
        if ((!c->dead || c->drain) && (evs[i].events & EPOLLOUT))
          flush_writes(c);
      }
      retry_parked(loop);
      // Reap AFTER the whole event batch: evs[] may hold more events for
      // a conn marked dead by an earlier one, so freeing mid-batch would
      // dangle. A draining conn survives the reap until its outbuf is
      // empty or its linger deadline passes — best-effort delivery of the
      // responses it was owed, never an unbounded hold.
      dead.clear();
      bool draining = false;
      const auto now = Clock::now();
      for (auto& [id, c] : loop.conns) {
        if (!c->dead) continue;
        if (c->drain && c->bufs.out_pending() > 0 &&
            now < c->drain_deadline) {
          draining = true;
          continue;
        }
        dead.push_back(id);
      }
      loop.draining = draining;
      for (uint64_t id : dead) close_conn(loop, id);
    }
  }

  void acceptor_main() {
    const int epfd = epoll_create1(EPOLL_CLOEXEC);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd;
    epoll_ctl(epfd, EPOLL_CTL_ADD, listen_fd, &ev);
    ev.data.fd = accept_wakefd;
    epoll_ctl(epfd, EPOLL_CTL_ADD, accept_wakefd, &ev);
    size_t rr = 0;
    epoll_event evs[8];
    while (running.load(std::memory_order_acquire)) {
      const int n = epoll_wait(epfd, evs, 8, -1);
      for (int i = 0; i < n; ++i) {
        if (evs[i].data.fd == accept_wakefd) {
          uint64_t tick = 0;
          while (::read(accept_wakefd, &tick, sizeof(tick)) > 0) {
          }
          continue;
        }
        for (;;) {
          const int fd = accept4(listen_fd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (fd < 0) {
            // fd exhaustion leaves the backlog readable, so the level-
            // triggered epoll would re-report it instantly and this loop
            // would spin at 100% CPU for as long as the exhaustion lasts.
            // Back off briefly instead: accepts degrade to slow, not to a
            // burned core.
            if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
                errno == ENOMEM)
              std::this_thread::sleep_for(std::chrono::milliseconds(10));
            break;  // EAGAIN, or transient (ECONNABORTED)
          }
          int one = 1;
          setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          // Round-robin dealing: a connection's loop is fixed for life,
          // which is what makes all per-conn state lock-free.
          loops[rr++ % loops.size()]->mbox->post_conn(fd);
        }
      }
    }
    ::close(epfd);
  }
};

NetServer::NetServer(ShardedSpannerService& service, NetServerConfig cfg)
    : impl_(std::make_unique<Impl>(service, std::move(cfg))) {}

NetServer::~NetServer() { stop(); }

bool NetServer::start() {
  Impl& im = *impl_;
  if (im.started) return false;
  im.listen_fd =
      tcp_listen(im.cfg.bind_addr, im.cfg.port, im.cfg.listen_backlog, &port_);
  if (im.listen_fd < 0) return false;

  im.accept_wakefd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  const int num_loops = im.cfg.num_loops < 1 ? 1 : im.cfg.num_loops;
  im.running.store(true, std::memory_order_release);
  for (int i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epfd = epoll_create1(EPOLL_CLOEXEC);
    loop->mbox = std::make_shared<Mailbox>();
    loop->mbox->wakefd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // the mailbox sentinel
    epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->mbox->wakefd, &ev);
    im.loops.push_back(std::move(loop));
  }
  for (auto& loop : im.loops) {
    Loop* lp = loop.get();
    lp->thread = std::thread([this, lp] { impl_->loop_main(*lp); });
  }
  im.acceptor = std::thread([this] { impl_->acceptor_main(); });
  im.started = true;
  return true;
}

void NetServer::stop() {
  Impl& im = *impl_;
  if (!im.started) return;
  if (im.running.exchange(false)) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t r =
        ::write(im.accept_wakefd, &one, sizeof(one));
    for (auto& loop : im.loops) loop->mbox->wake();
  }
  if (im.acceptor.joinable()) im.acceptor.join();
  for (auto& loop : im.loops) {
    if (loop->thread.joinable()) loop->thread.join();
    {
      // Close the mailbox: late flush_async completions (the service
      // outlives the server) fizzle instead of piling up; stray accepted
      // fds are closed by post_conn itself.
      std::lock_guard<std::mutex> lk(loop->mbox->mu);
      loop->mbox->closed = true;
      for (int fd : loop->mbox->incoming) ::close(fd);
      loop->mbox->incoming.clear();
      loop->mbox->completions.clear();
    }
    im.closed.fetch_add(loop->conns.size(), std::memory_order_relaxed);
    loop->conns.clear();  // ~Conn closes fds, drops pins
    loop->parked.clear();
    if (loop->epfd >= 0) ::close(loop->epfd);
    // The mailbox's eventfd closes when the last flush callback lets go.
  }
  im.loops.clear();
  if (im.listen_fd >= 0) ::close(im.listen_fd);
  if (im.accept_wakefd >= 0) ::close(im.accept_wakefd);
  im.listen_fd = im.accept_wakefd = -1;
  im.started = false;
}

NetServer::Stats NetServer::stats() const {
  const Impl& im = *impl_;
  Stats s;
  s.connections_accepted = im.accepted.load(std::memory_order_relaxed);
  s.connections_closed = im.closed.load(std::memory_order_relaxed);
  s.active_connections = s.connections_accepted - s.connections_closed;
  s.requests = im.requests.load(std::memory_order_relaxed);
  s.responses = im.responses.load(std::memory_order_relaxed);
  s.retry_afters = im.retry_afters.load(std::memory_order_relaxed);
  s.protocol_errors = im.protocol_errors.load(std::memory_order_relaxed);
  return s;
}

}  // namespace parspan::net
