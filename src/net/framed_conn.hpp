// Reusable non-blocking connection plumbing, shared by every protocol that
// speaks durability/frame.hpp frames over a socket: the NetServer front
// door (DESIGN.md §13) and the replication SocketTransport (§14). Extracted
// from server.cpp so a second wire protocol reuses the exact buffer
// discipline the front door hardened — edge-triggered-safe full drains,
// MSG_NOSIGNAL sends, bounded unparsed input, prefix compaction — instead
// of re-growing its own subtly different copy.
//
// Everything here is policy-free mechanism: callers decide what an
// overflow or a bad frame MEANS (the server kills the connection and
// counts a protocol error; the transport flags the peer gone). The only
// opinions baked in are the ones that are invariants, not policy:
//
//   * reads drain the fd to EAGAIN (required for edge-triggered epoll and
//     harmless for level-triggered/poll users);
//   * writes use MSG_NOSIGNAL, so a resetting peer surfaces as kError on
//     this connection instead of SIGPIPE killing the process;
//   * unparsed input is capped — a peer shovelling bytes that never
//     complete a frame is claiming a payload the cap already rejected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "durability/frame.hpp"

namespace parspan::net {

/// Read granularity, and the slack allowed past the frame cap before an
/// unparsed input buffer counts as hostile.
constexpr size_t kReadChunk = 64 * 1024;
/// Compact a buffer's consumed prefix once it crosses this, so long-lived
/// connections don't accrete dead bytes.
constexpr size_t kCompactAt = 64 * 1024;

/// One connection's buffered bytes in both directions. `in_off`/`out_off`
/// are the parsed-up-to / sent-up-to offsets into their buffers.
struct ConnBufs {
  std::vector<uint8_t> in;
  size_t in_off = 0;
  std::vector<uint8_t> out;
  size_t out_off = 0;

  size_t in_pending() const { return in.size() - in_off; }
  size_t out_pending() const { return out.size() - out_off; }
};

/// Drops a buffer's consumed prefix: free when fully consumed, an erase
/// once the dead prefix crosses kCompactAt, a no-op otherwise.
void drop_prefix(std::vector<uint8_t>& buf, size_t& off);

enum class IoStatus : uint8_t {
  kOk,        // progress (possibly none) and the fd is still healthy
  kEof,       // orderly peer close; buffered frames still parse first
  kError,     // hard socket error (ECONNRESET, EPIPE, ...)
  kOverflow,  // unparsed input exceeded the cap: the peer is hostile
};

/// Drains a non-blocking fd into b.in until EAGAIN, EOF, or error — the
/// full drain is what makes this safe under edge-triggered epoll, where
/// the next EPOLLIN edge only comes after NEW bytes arrive. kOverflow when
/// more than `max_frame_payload + kFrameHeaderSize + kReadChunk` unparsed
/// bytes accumulate without completing a frame.
IoStatus read_to_buffer(int fd, ConnBufs& b, uint32_t max_frame_payload);

/// Pushes b.out until empty or EAGAIN (the kernel raises the next EPOLLOUT
/// edge when the socket drains — call after every append too, because an
/// idle-writable socket never gets another edge). Compacts the sent
/// prefix. Never reports overflow: output bounding is caller policy
/// (max_outbuf_bytes at the front door, max_buffered_bytes in the
/// replication transport), checked against out_pending() after the flush.
IoStatus flush_writes(int fd, ConnBufs& b);

/// Parses the next frame from b.in at the parse offset; on kOk the view
/// points into b.in (valid until the next read or compaction) and the
/// caller advances with consume_frame.
inline FrameParse next_frame(const ConnBufs& b, uint32_t max_payload,
                             FrameView* fv) {
  return parse_frame(b.in.data() + b.in_off, b.in_pending(), max_payload, fv);
}
inline void consume_frame(ConnBufs& b, const FrameView& fv) {
  b.in_off += fv.consumed;
}
/// Call after a parse loop ends (kNeedMore) to compact the input buffer.
inline void finish_parse(ConnBufs& b) { drop_prefix(b.in, b.in_off); }

/// Non-blocking IPv4 listener: socket + SO_REUSEADDR + bind + listen.
/// Returns the fd (SOCK_NONBLOCK | SOCK_CLOEXEC) or -1; with port 0 the
/// kernel picks and *bound_port reports the result.
int tcp_listen(const std::string& bind_addr, uint16_t port, int backlog,
               uint16_t* bound_port);

/// Blocking IPv4 connect + TCP_NODELAY (CLOEXEC). When `nonblocking`, the
/// fd is switched to O_NONBLOCK after the connect succeeds — the dial
/// itself stays synchronous, which is what every caller here wants
/// (clients and transports connect once, then go event-driven). -1 on
/// failure.
int tcp_connect(const std::string& host, uint16_t port, bool nonblocking);

}  // namespace parspan::net
