#include "net/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "net/framed_conn.hpp"

namespace parspan::net {

std::optional<NetClient> NetClient::connect(const std::string& host,
                                            uint16_t port) {
  const int fd = tcp_connect(host, port, /*nonblocking=*/false);
  if (fd < 0) return std::nullopt;

  NetClient c;
  c.fd_ = fd;
  std::vector<uint8_t> frame;
  encode_hello(frame);
  c.take_seq();
  auto resp = c.send_bytes(frame) ? c.recv_response() : std::nullopt;
  if (!resp || resp->status != Status::kOk ||
      !parse_hello_body(resp->view(), &c.info_))
    return std::nullopt;  // ~NetClient closes
  return c;
}

NetClient::~NetClient() { close_now(); }

NetClient::NetClient(NetClient&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      info_(o.info_),
      next_seq_(o.next_seq_),
      rbuf_(std::move(o.rbuf_)),
      roff_(o.roff_) {}

NetClient& NetClient::operator=(NetClient&& o) noexcept {
  if (this != &o) {
    close_now();
    fd_ = std::exchange(o.fd_, -1);
    info_ = o.info_;
    next_seq_ = o.next_seq_;
    rbuf_ = std::move(o.rbuf_);
    roff_ = o.roff_;
  }
  return *this;
}

void NetClient::close_now() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool NetClient::send_bytes(const std::vector<uint8_t>& bytes) {
  if (fd_ < 0) return false;
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a server that closed this connection must read as a
    // failed send, not SIGPIPE the client process.
    const ssize_t w =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      close_now();
      return false;
    }
    off += size_t(w);
  }
  return true;
}

std::optional<OwnedResponse> NetClient::recv_response() {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    FrameView fv;
    const FrameParse p = parse_frame(rbuf_.data() + roff_, rbuf_.size() - roff_,
                                     kMaxFramePayload, &fv);
    if (p == FrameParse::kOk) {
      Response r;
      if (!decode_response(fv.payload, fv.len, &r)) {
        close_now();
        return std::nullopt;
      }
      OwnedResponse out;
      out.seq = r.seq;
      out.status = r.status;
      out.body.assign(r.body, r.body + r.body_len);
      roff_ += fv.consumed;
      if (roff_ == rbuf_.size()) {
        rbuf_.clear();
        roff_ = 0;
      }
      return out;
    }
    if (p == FrameParse::kBad) {
      close_now();
      return std::nullopt;
    }
    const size_t at = rbuf_.size();
    rbuf_.resize(at + 16 * 1024);
    const ssize_t r = ::read(fd_, rbuf_.data() + at, 16 * 1024);
    if (r <= 0) {
      rbuf_.resize(at);
      if (r < 0 && errno == EINTR) continue;
      close_now();
      return std::nullopt;
    }
    rbuf_.resize(at + size_t(r));
  }
}

std::optional<OwnedResponse> NetClient::roundtrip(
    const std::vector<uint8_t>& frame) {
  const uint32_t seq = take_seq();
  if (!send_bytes(frame)) return std::nullopt;
  auto resp = recv_response();
  if (!resp || resp->seq != seq) {
    // Typed callers have exactly one request outstanding; a mismatched
    // seq means the stream is out of step — unrecoverable.
    close_now();
    return std::nullopt;
  }
  return resp;
}

NetClient::SubmitResult NetClient::submit(uint32_t graph_id,
                                          const std::vector<Edge>& insertions,
                                          const std::vector<Edge>& deletions) {
  std::vector<uint8_t> frame;
  encode_submit(frame, graph_id, sort_unique_keys(insertions),
                sort_unique_keys(deletions));
  SubmitResult out;
  auto resp = roundtrip(frame);
  if (!resp) return out;
  out.status = resp->status;
  if (resp->status == Status::kRetryAfter)
    parse_retry_after_body(resp->view(), &out.retry_after_ms);
  return out;
}

NetClient::SubmitResult NetClient::submit_for(
    uint32_t graph_id, const std::vector<Edge>& insertions,
    const std::vector<Edge>& deletions, uint32_t timeout_ms) {
  std::vector<uint8_t> frame;
  encode_submit_for(frame, graph_id, sort_unique_keys(insertions),
                    sort_unique_keys(deletions), timeout_ms);
  SubmitResult out;
  auto resp = roundtrip(frame);
  if (!resp) return out;
  out.status = resp->status;
  if (resp->status == Status::kRetryAfter)
    parse_retry_after_body(resp->view(), &out.retry_after_ms);
  return out;
}

std::optional<std::vector<uint64_t>> NetClient::flush() {
  std::vector<uint8_t> frame;
  encode_flush(frame);
  auto resp = roundtrip(frame);
  std::vector<uint64_t> vv;
  if (!resp || resp->status != Status::kOk ||
      !parse_vv_body(resp->view(), &vv))
    return std::nullopt;
  return vv;
}

NetClient::PinResult NetClient::pin(const std::vector<uint64_t>& vv) {
  std::vector<uint8_t> frame;
  encode_pin(frame, vv);
  PinResult out;
  auto resp = roundtrip(frame);
  if (!resp) return out;
  out.status = resp->status;
  if (resp->status == Status::kOk &&
      !parse_pin_body(resp->view(), &out.pin.id, &out.pin.versions))
    out.status = Status::kError;
  return out;
}

bool NetClient::unpin(uint64_t pin_id) {
  std::vector<uint8_t> frame;
  encode_unpin(frame, pin_id);
  auto resp = roundtrip(frame);
  return resp && resp->status == Status::kOk;
}

std::optional<bool> NetClient::has_edge(uint64_t pin_id, VertexId u,
                                        VertexId v) {
  std::vector<uint8_t> frame;
  encode_has_edge(frame, pin_id, u, v);
  auto resp = roundtrip(frame);
  bool present = false;
  if (!resp || resp->status != Status::kOk ||
      !parse_has_edge_body(resp->view(), &present))
    return std::nullopt;
  return present;
}

std::optional<std::vector<VertexId>> NetClient::neighbors(uint64_t pin_id,
                                                          VertexId v) {
  std::vector<uint8_t> frame;
  encode_neighbors(frame, pin_id, v);
  auto resp = roundtrip(frame);
  std::vector<VertexId> ids;
  if (!resp || resp->status != Status::kOk ||
      !parse_neighbors_body(resp->view(), &ids))
    return std::nullopt;
  return ids;
}

std::optional<uint32_t> NetClient::bounded_bfs(uint64_t pin_id, VertexId u,
                                               VertexId v, uint32_t limit) {
  std::vector<uint8_t> frame;
  encode_bounded_bfs(frame, pin_id, u, v, limit);
  auto resp = roundtrip(frame);
  uint32_t dist = 0;
  if (!resp || resp->status != Status::kOk ||
      !parse_dist_body(resp->view(), &dist))
    return std::nullopt;
  return dist;
}

std::optional<StatsInfo> NetClient::stats() {
  std::vector<uint8_t> frame;
  encode_stats(frame);
  auto resp = roundtrip(frame);
  StatsInfo s;
  if (!resp || resp->status != Status::kOk || !parse_stats_body(resp->view(), &s))
    return std::nullopt;
  return s;
}

}  // namespace parspan::net
