// Wire protocol for the sharded service's network front door
// (DESIGN.md §13.1-§13.2): the byte layout both ends of a connection
// agree on, and nothing else — no sockets, no threads, pure codec.
//
// Every message travels as one durability/frame.hpp frame
// (`payload_len u32 | crc32c(payload) u32 | payload`), so the stream
// inherits the WAL's frozen framing conventions: explicit little-endian
// scalars, CRC-verified payloads, and varint-delta compression for the
// strictly-ascending canonical edge-key lists that dominate submit
// traffic. A torn, truncated, or bit-flipped frame parses to kBad and
// kills the connection; it can never desynchronize the stream into
// "interpreting the middle of a payload as a header".
//
// Requests carry no explicit sequence number: a connection's requests are
// implicitly numbered 0, 1, 2, ... in arrival order, and every response
// echoes that index as `seq`. That is what buys pipelining with
// out-of-order completion — a deferred flush (waiting on the publish
// barrier) or a parked submit_for (waiting on queue capacity) can answer
// AFTER later queries already did, and the client still matches responses
// to requests by seq alone.
//
//   request payload:   op u8 | body
//   response payload:  seq u32 | status u8 | body
//
// Body layouts (all integers LE; key lists are varint-delta over strictly
// ascending canonical EdgeKeys, counts given up front):
//
//   op              request body                       kOk response body
//   kHello      magic u64 | version u32        num_shards u32 | single_graph u8
//                                              | vertex_space u64
//   kSubmit     graph u32 | icnt u32 | dcnt    (empty)
//               u32 | ins keys | del keys
//   kSubmitFor  timeout_ms u32 | <kSubmit>     (empty)
//   kFlush      (empty)                        vv: cnt u32 | u64 x cnt
//   kPin        cnt u32 | u64 x cnt            pin_id u64 | vv (as kFlush)
//               (cnt 0 pins "now")
//   kUnpin      pin_id u64                     (empty)
//   kHasEdge    pin_id u64 | u u32 | v u32     present u8
//   kNeighbors  pin_id u64 | v u32             cnt u32 | ascending ids
//   kBoundedBfs pin_id u64 | u u32 | v u32     dist u32 (kSnapshotUnreached
//               | limit u32                    when unreached)
//   kStats      (empty)                        see StatsInfo
//
// Non-kOk responses replace the body: kRetryAfter carries
// `retry_after_ms u32` (backpressure — the queue admission bound, or a
// pin target no shard has published yet; retry the SAME request later),
// kError carries `len u32 | utf-8 message` (the request was understood
// but refused — unknown pin id, composed query on a multi-tenant
// service, hello version mismatch). Malformed bytes get no response at
// all: the server counts a protocol error and closes the connection.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "durability/frame.hpp"
#include "util/types.hpp"

namespace parspan::net {

/// First request on every connection; both sides refuse to proceed on a
/// mismatch. "parspan1" little-endian.
constexpr uint64_t kMagic = 0x316E617073726170ull;
constexpr uint32_t kProtocolVersion = 1;

/// Per-connection frame cap the server enforces (far below frame.hpp's
/// structural kMaxFramePayload): a hostile length claim fails before any
/// buffering happens.
constexpr uint32_t kDefaultMaxFramePayload = 1u << 20;

enum class Op : uint8_t {
  kHello = 1,
  kSubmit = 2,
  kSubmitFor = 3,
  kFlush = 4,
  kPin = 5,
  kUnpin = 6,
  kHasEdge = 7,
  kNeighbors = 8,
  kBoundedBfs = 9,
  kStats = 10,
};

enum class Status : uint8_t {
  kOk = 0,
  kRetryAfter = 1,  // backpressure: same request, later
  kError = 2,       // refused: see message
};

/// kHello kOk body.
struct HelloInfo {
  uint32_t num_shards = 0;
  bool single_graph = false;
  uint64_t vertex_space = 0;
};

/// kStats kOk body: num_shards u32 | single_graph u8 | vertex_space u64 |
/// edges_ingested u64 | edges_rejected u64 | edges_timed_out u64 |
/// vv cnt u32 | u64 x cnt | active_connections u32 | protocol_errors u64.
struct StatsInfo {
  HelloInfo hello;
  uint64_t edges_ingested = 0;
  uint64_t edges_rejected = 0;
  uint64_t edges_timed_out = 0;
  std::vector<uint64_t> versions;
  uint32_t active_connections = 0;
  uint64_t protocol_errors = 0;
};

/// One decoded request, op-discriminated. Key lists come out ascending and
/// duplicate-free (the codec proves it); vertex ids are NOT range-checked
/// here — the server validates against its vertex space.
struct Request {
  Op op = Op::kHello;
  // kHello
  uint64_t magic = 0;
  uint32_t version = 0;
  // kSubmit / kSubmitFor
  uint32_t graph_id = 0;
  uint32_t timeout_ms = 0;
  std::vector<EdgeKey> insertions;
  std::vector<EdgeKey> deletions;
  // kPin
  std::vector<uint64_t> vv;
  // kUnpin / queries
  uint64_t pin_id = 0;
  VertexId u = 0;
  VertexId v = 0;
  uint32_t limit = 0;
};

/// One decoded response envelope; `body` is a view INTO the frame payload
/// the caller handed decode_response (valid while that buffer is).
struct Response {
  uint32_t seq = 0;
  Status status = Status::kOk;
  const uint8_t* body = nullptr;
  uint32_t body_len = 0;
};

// --- Request encoders (client side): append ONE sealed frame to `out` ----

void encode_hello(std::vector<uint8_t>& out);
/// Keys must be strictly ascending (sort_unique_keys below).
void encode_submit(std::vector<uint8_t>& out, uint32_t graph_id,
                   const std::vector<EdgeKey>& insertions,
                   const std::vector<EdgeKey>& deletions);
void encode_submit_for(std::vector<uint8_t>& out, uint32_t graph_id,
                       const std::vector<EdgeKey>& insertions,
                       const std::vector<EdgeKey>& deletions,
                       uint32_t timeout_ms);
void encode_flush(std::vector<uint8_t>& out);
/// Empty vv = "pin whatever is published now".
void encode_pin(std::vector<uint8_t>& out, const std::vector<uint64_t>& vv);
void encode_unpin(std::vector<uint8_t>& out, uint64_t pin_id);
/// pin_id 0 = one-shot unpinned read against the server's current view.
void encode_has_edge(std::vector<uint8_t>& out, uint64_t pin_id, VertexId u,
                     VertexId v);
void encode_neighbors(std::vector<uint8_t>& out, uint64_t pin_id, VertexId v);
void encode_bounded_bfs(std::vector<uint8_t>& out, uint64_t pin_id, VertexId u,
                        VertexId v, uint32_t limit);
void encode_stats(std::vector<uint8_t>& out);

/// Canonical keys of `edges`, sorted ascending with duplicates dropped —
/// the precondition every key list on the wire must meet.
std::vector<EdgeKey> sort_unique_keys(const std::vector<Edge>& edges);

// --- Server side ---------------------------------------------------------

/// Decodes one request frame payload. False = malformed (wrong sizes,
/// non-ascending keys, unknown op, trailing bytes): the connection dies.
bool decode_request(const uint8_t* payload, uint32_t len, Request* out);

/// Appends one sealed kOk response frame with `body`.
void append_ok(std::vector<uint8_t>& out, uint32_t seq,
               const std::vector<uint8_t>& body);
void append_retry_after(std::vector<uint8_t>& out, uint32_t seq,
                        uint32_t retry_after_ms);
void append_error(std::vector<uint8_t>& out, uint32_t seq,
                  const std::string& message);

// kOk body builders (server side; parsers mirror them client side).
std::vector<uint8_t> build_hello_body(const HelloInfo& info);
std::vector<uint8_t> build_vv_body(const std::vector<uint64_t>& vv);
std::vector<uint8_t> build_pin_body(uint64_t pin_id,
                                    const std::vector<uint64_t>& vv);
std::vector<uint8_t> build_has_edge_body(bool present);
std::vector<uint8_t> build_neighbors_body(const std::vector<VertexId>& ids);
std::vector<uint8_t> build_dist_body(uint32_t dist);
std::vector<uint8_t> build_stats_body(const StatsInfo& stats);

// --- Client-side response decode -----------------------------------------

/// Decodes a response frame payload into the envelope (body stays a view).
bool decode_response(const uint8_t* payload, uint32_t len, Response* out);

bool parse_hello_body(const Response& r, HelloInfo* out);
bool parse_vv_body(const Response& r, std::vector<uint64_t>* out);
bool parse_pin_body(const Response& r, uint64_t* pin_id,
                    std::vector<uint64_t>* vv);
bool parse_has_edge_body(const Response& r, bool* present);
bool parse_neighbors_body(const Response& r, std::vector<VertexId>* out);
bool parse_dist_body(const Response& r, uint32_t* dist);
bool parse_stats_body(const Response& r, StatsInfo* out);
/// kRetryAfter body.
bool parse_retry_after_body(const Response& r, uint32_t* retry_after_ms);
/// kError body.
bool parse_error_body(const Response& r, std::string* message);

}  // namespace parspan::net
