#include "net/framed_conn.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace parspan::net {

void drop_prefix(std::vector<uint8_t>& buf, size_t& off) {
  if (off == buf.size()) {
    buf.clear();
    off = 0;
  } else if (off >= kCompactAt) {
    buf.erase(buf.begin(), buf.begin() + ptrdiff_t(off));
    off = 0;
  }
}

IoStatus read_to_buffer(int fd, ConnBufs& b, uint32_t max_frame_payload) {
  for (;;) {
    const size_t at = b.in.size();
    b.in.resize(at + kReadChunk);
    const ssize_t r = ::read(fd, b.in.data() + at, kReadChunk);
    if (r > 0) {
      b.in.resize(at + size_t(r));
      if (b.in_pending() >
          size_t(max_frame_payload) + kFrameHeaderSize + kReadChunk)
        return IoStatus::kOverflow;
      continue;
    }
    b.in.resize(at);
    if (r == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
    return IoStatus::kError;
  }
}

IoStatus flush_writes(int fd, ConnBufs& b) {
  while (b.out_off < b.out.size()) {
    const ssize_t w = ::send(fd, b.out.data() + b.out_off,
                             b.out.size() - b.out_off, MSG_NOSIGNAL);
    if (w > 0) {
      b.out_off += size_t(w);
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else {
      return IoStatus::kError;  // EPIPE/ECONNRESET: nothing left to drain to
    }
  }
  drop_prefix(b.out, b.out_off);
  return IoStatus::kOk;
}

int tcp_listen(const std::string& bind_addr, uint16_t port, int backlog,
               uint16_t* bound_port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1 ||
      bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, backlog) != 0) {
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    socklen_t alen = sizeof(addr);
    getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen);
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

int tcp_connect(const std::string& host, uint16_t port, bool nonblocking) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (nonblocking) {
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

}  // namespace parspan::net
