// NetClient: a small blocking client for the §13 wire protocol — the
// in-process counterpart the tests, examples, and loadgen drive. One
// TCP connection, the hello handshake on connect, then either the typed
// one-request-at-a-time methods (each sends, then blocks for its
// response) or the raw pipelining pair send_bytes()/recv_response() for
// callers that keep many requests in flight and match responses by seq
// themselves.
//
// Not thread-safe: one NetClient per thread (connections are cheap; the
// server's state is all per-connection anyway).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "util/types.hpp"

namespace parspan::net {

/// A response with its body copied out of the receive buffer (safe to
/// hold across further receives).
struct OwnedResponse {
  uint32_t seq = 0;
  Status status = Status::kOk;
  std::vector<uint8_t> body;

  /// Re-views the owned body for the parse_*_body helpers.
  Response view() const {
    Response r;
    r.seq = seq;
    r.status = status;
    r.body = body.data();
    r.body_len = uint32_t(body.size());
    return r;
  }
};

class NetClient {
 public:
  /// Connects and runs the hello handshake; nullopt on refusal, protocol
  /// mismatch, or any socket error.
  static std::optional<NetClient> connect(const std::string& host,
                                          uint16_t port);

  ~NetClient();
  NetClient(NetClient&& o) noexcept;
  NetClient& operator=(NetClient&& o) noexcept;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  const HelloInfo& info() const { return info_; }
  bool ok() const { return fd_ >= 0; }

  struct SubmitResult {
    Status status = Status::kError;
    uint32_t retry_after_ms = 0;
  };

  /// Edges are canonicalized, sorted, and deduplicated before encoding.
  SubmitResult submit(uint32_t graph_id, const std::vector<Edge>& insertions,
                      const std::vector<Edge>& deletions);
  SubmitResult submit_for(uint32_t graph_id,
                          const std::vector<Edge>& insertions,
                          const std::vector<Edge>& deletions,
                          uint32_t timeout_ms);

  /// Read-your-writes barrier over the wire: the published VersionVector,
  /// or nullopt on a connection/protocol failure.
  std::optional<std::vector<uint64_t>> flush();

  struct Pin {
    uint64_t id = 0;
    std::vector<uint64_t> versions;
  };
  /// Empty vv pins "now"; a non-empty vv the server has not reached yet
  /// returns status kRetryAfter with no pin.
  struct PinResult {
    Status status = Status::kError;
    Pin pin;
  };
  PinResult pin(const std::vector<uint64_t>& vv = {});
  bool unpin(uint64_t pin_id);

  /// pin_id 0 = the server's current view.
  std::optional<bool> has_edge(uint64_t pin_id, VertexId u, VertexId v);
  std::optional<std::vector<VertexId>> neighbors(uint64_t pin_id, VertexId v);
  std::optional<uint32_t> bounded_bfs(uint64_t pin_id, VertexId u, VertexId v,
                                      uint32_t limit);
  std::optional<StatsInfo> stats();

  // --- Raw pipelining ----------------------------------------------------

  /// Writes pre-encoded frames (encode_* into a buffer, then send in one
  /// call — many requests per syscall). False on a socket error.
  bool send_bytes(const std::vector<uint8_t>& bytes);

  /// Blocks for the next response frame; nullopt on close/corruption.
  /// Responses to deferred requests (flush, parked submit_for) may arrive
  /// out of seq order — that is the point of the seq field.
  std::optional<OwnedResponse> recv_response();

  /// Requests encoded+sent so far — the seq the NEXT request will get.
  uint32_t next_seq() const { return next_seq_; }
  /// Bumps the request counter for raw-encoded requests (one per frame).
  uint32_t take_seq() { return next_seq_++; }

 private:
  NetClient() = default;
  void close_now();
  /// Sends one encoded request and blocks for ITS seq (any earlier
  /// deferred responses are surfaced to raw callers only; typed callers
  /// have at most one outstanding request, so order holds).
  std::optional<OwnedResponse> roundtrip(const std::vector<uint8_t>& frame);

  int fd_ = -1;
  HelloInfo info_;
  uint32_t next_seq_ = 0;
  std::vector<uint8_t> rbuf_;
  size_t roff_ = 0;
};

}  // namespace parspan::net
