// ReplicationTransport: the wire seam between a leader's LogShipper and a
// FollowerReplica (DESIGN.md §11.2).
//
// Two planes, deliberately asymmetric:
//
//  * Data plane (leader -> follower): ShipFrames — REAL serialized bytes,
//    `type u8 | epoch u64 | payload_len u32 | crc u32 | payload` — so
//    transport faults operate on the representation that would cross a
//    socket. The CRC32C covers type + epoch + payload (the epoch is
//    authenticated: a flipped epoch bit must not forge a frame from a
//    phantom epoch); the length field is cross-checked against the actual
//    byte count. A truncated or bit-flipped frame is caught exactly as a
//    torn WAL frame is caught by read_wal_segment; CRC32C's linearity
//    means no single-bit flip can ever pass.
//  * Control plane (follower -> leader): ReplicaCursors — small acks
//    passed as structs. Faults may drop or delay cursors (a lost ack just
//    makes the shipper resend; the follower dedups by version), but never
//    corrupt them: corrupting acks tests nothing the data plane doesn't
//    already, while losing them exercises the retry loop.
//
// The shipping protocol is cursor-driven and idempotent: the follower
// advertises (epoch, applied version, need_snapshot) after every pump, the
// shipper ships everything between the last advertised cursor and the
// leader's durable watermark on every pump. Any frame may be lost,
// duplicated, reordered, or mangled — the follower accepts exactly the
// next version in its chain and drops/rejects everything else, so
// re-shipping is always safe and eventual convergence only needs SOME
// pump round to deliver cleanly.
//
// ChannelTransport is the in-process FIFO used by tests and by
// FaultyTransport, which wraps the same queues behind the fault knobs
// mirroring MemFs (drop/duplicate/reorder/truncate/bit-flip/partition).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "durability/wal.hpp"
#include "durability/wal_tail.hpp"
#include "util/rng.hpp"

namespace parspan {

/// One data-plane frame, as the bytes that would cross a socket.
struct ShipFrame {
  std::vector<uint8_t> bytes;
};

enum class FrameType : uint8_t {
  kSnapshot = 1,  // full durable state (bootstrap / resync)
  kRecord = 2,    // one WAL record (incremental ship)
};

/// Follower -> leader ack: what the follower has applied and whether it
/// needs a full resync (fresh, wrong epoch, or a verified-reject).
struct ReplicaCursor {
  uint64_t epoch = 0;
  uint64_t version = 0;  // highest applied version
  bool need_snapshot = false;
};

/// Frame encoders. Record frames reuse the WAL record payload encoding
/// byte-for-byte (one serialization to test, one to freeze); snapshot
/// frames carry a DurableState (both key lists delta-compressed like WAL
/// key lists).
ShipFrame make_record_frame(uint64_t epoch, const WalRecord& rec);
ShipFrame make_snapshot_frame(uint64_t epoch, const DurableState& state);

/// A structurally valid, CRC-verified frame. Exactly one of rec/state is
/// meaningful, per `type`.
struct ParsedFrame {
  FrameType type = FrameType::kRecord;
  uint64_t epoch = 0;
  WalRecord rec;
  DurableState state;
};

/// Validates and decodes one frame: length sanity, payload CRC, payload
/// structure (including strictly-ascending key lists). nullopt on any
/// violation — the follower counts it and waits for the re-ship.
std::optional<ParsedFrame> parse_frame(const ShipFrame& frame);

/// The seam. One instance connects one (shipper, follower) pair; both
/// directions are non-blocking (recv returns nullopt when empty).
/// Implementations are thread-safe: shipper and follower may pump from
/// different threads.
class ReplicationTransport {
 public:
  virtual ~ReplicationTransport() = default;
  virtual void send_frame(ShipFrame frame) = 0;
  virtual std::optional<ShipFrame> recv_frame() = 0;
  virtual void send_cursor(const ReplicaCursor& cursor) = 0;
  virtual std::optional<ReplicaCursor> recv_cursor() = 0;
};

/// Faithful in-process FIFO — the "healthy network" baseline.
class ChannelTransport final : public ReplicationTransport {
 public:
  void send_frame(ShipFrame frame) override;
  std::optional<ShipFrame> recv_frame() override;
  void send_cursor(const ReplicaCursor& cursor) override;
  std::optional<ReplicaCursor> recv_cursor() override;

 private:
  std::mutex mu_;
  std::deque<ShipFrame> frames_;
  std::deque<ReplicaCursor> cursors_;
};

/// Per-send fault probabilities, mirroring MemFs's knobs. All faults are
/// decided by one deterministic Rng(seed), so a failing schedule replays
/// exactly.
struct FaultPlan {
  double drop_p = 0.0;       // frame vanishes
  double dup_p = 0.0;        // frame delivered twice
  double reorder_p = 0.0;    // frame held back, released after later traffic
  double truncate_p = 0.0;   // frame cut to a random strict prefix
  double bit_flip_p = 0.0;   // one random bit of the frame flipped
  double cursor_drop_p = 0.0;  // ack vanishes (control plane)
};

/// Fault-injecting wrapper over a private ChannelTransport. Partition is a
/// switch, not a probability: while partitioned, NOTHING crosses in either
/// direction (frames and cursors dropped and counted) — the harness heals
/// it explicitly and asserts catch-up. Eventual delivery holds whenever
/// drop_p/cursor_drop_p < 1 and the partition heals: held-back frames are
/// flushed as soon as a recv finds the channel otherwise empty, so no
/// frame is withheld forever.
class FaultyTransport final : public ReplicationTransport {
 public:
  FaultyTransport(const FaultPlan& plan, uint64_t seed)
      : plan_(plan), rng_(seed) {}

  /// Held-back reorder frames are still pending delivery; flush them so
  /// they count as delivered, not silently vanished.
  ~FaultyTransport() override { drain(); }

  void send_frame(ShipFrame frame) override;
  std::optional<ShipFrame> recv_frame() override;
  void send_cursor(const ReplicaCursor& cursor) override;
  std::optional<ReplicaCursor> recv_cursor() override;

  /// Releases every held-back reorder frame into the channel immediately.
  /// recv_frame already flushes holdbacks once the channel runs dry, but a
  /// harness that stops pumping mid-schedule would otherwise end with held
  /// frames neither delivered nor counted as dropped — understating
  /// delivered-frame counts. Call at end-of-schedule (the destructor also
  /// calls it); frames released here are counted in frames_drained_late.
  void drain();

  void set_partitioned(bool on) {
    std::lock_guard<std::mutex> lk(mu_);
    partitioned_ = on;
  }

  /// Fault accounting, for test assertions ("this schedule actually
  /// injected something") and observability parity with MemFs.
  struct Stats {
    uint64_t frames_sent = 0;  // offered, pre-fault
    uint64_t frames_dropped = 0;
    uint64_t frames_duplicated = 0;
    uint64_t frames_reordered = 0;
    uint64_t frames_truncated = 0;
    uint64_t frames_bit_flipped = 0;
    /// Holdbacks released by an explicit drain() (or destruction) instead
    /// of the natural channel-dry flush — distinct so a schedule's
    /// delivered-count assertions can tell late delivery from loss.
    uint64_t frames_drained_late = 0;
    uint64_t cursors_sent = 0;
    uint64_t cursors_dropped = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

 private:
  // Caller holds mu_. Applies truncate/bit-flip to one frame in place.
  void mangle(ShipFrame& f);

  mutable std::mutex mu_;
  FaultPlan plan_;
  Rng rng_;
  bool partitioned_ = false;
  ChannelTransport inner_;
  std::vector<ShipFrame> held_;  // reorder holdback
  Stats stats_;
};

}  // namespace parspan
