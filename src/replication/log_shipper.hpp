// LogShipper: the leader-side half of WAL shipping (DESIGN.md §11.2).
//
// One shipper serves one follower over one transport. It owns no leader
// state: it tails the shard's durability directory read-only through the
// Fs seam (wal_tail.hpp) and is driven by two inputs per pump —
//
//   * the follower's last ReplicaCursor (epoch, applied version,
//     need_snapshot), drained from the transport's control plane;
//   * the leader's durable watermark, passed by the caller
//     (ShardDurability::durable_version()) — the hard ceiling on what may
//     ship. Unsynced WAL bytes are readable through the page cache but
//     never cross this seam.
//
// Per pump, the shipper ships the whole gap (cursor.version, watermark]
// as record frames, or a full snapshot frame when incremental shipping
// cannot work: no cursor yet says what the follower has, the cursor's
// epoch is not ours (the follower belongs to a previous leader), the
// follower asked (need_snapshot after a verified reject or its own fresh
// start), the follower is AHEAD of our durable state (it outlived a
// watermark we lost in failover), or the WAL range was GC'd past the ack
// point. Everything is resent until acked — idempotence on the follower
// side is what makes that correct under any fault schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "durability/fs.hpp"
#include "replication/transport.hpp"

namespace parspan {

class LogShipper {
 public:
  /// `dir` is the leader shard's durability directory (tail it read-only);
  /// `epoch` is the leader's rebase epoch — followers reject frames from
  /// other epochs, which is how a deposed leader's late frames die.
  LogShipper(std::shared_ptr<Fs> fs, std::string dir, uint64_t epoch,
             std::shared_ptr<ReplicationTransport> transport);

  /// One shipping round against the current durable watermark. Cheap when
  /// the follower is caught up (drains cursors, ships nothing).
  void pump(uint64_t durable_version);

  uint64_t epoch() const { return epoch_; }
  /// Follower's last advertised applied version (0 before any cursor).
  uint64_t acked_version() const { return have_cursor_ ? cursor_.version : 0; }
  /// Epoch of the follower's last cursor (0 before any). A cursor from a
  /// HIGHER epoch than ours is how a deposed leader learns it was
  /// replaced while it was away (DESIGN.md §14.3).
  uint64_t acked_epoch() const { return have_cursor_ ? cursor_.epoch : 0; }
  bool subscribed() const { return have_cursor_; }

  uint64_t records_shipped() const { return records_shipped_; }
  uint64_t snapshots_shipped() const { return snapshots_shipped_; }

 private:
  void ship_snapshot(uint64_t durable_version);

  std::shared_ptr<Fs> fs_;
  std::string dir_;
  uint64_t epoch_;
  std::shared_ptr<ReplicationTransport> transport_;
  ReplicaCursor cursor_{};
  bool have_cursor_ = false;
  uint64_t records_shipped_ = 0;
  uint64_t snapshots_shipped_ = 0;
};

}  // namespace parspan
