// FollowerReplica: the receiving half of WAL shipping (DESIGN.md §11.3).
//
// A follower is backend-less on purpose: it never runs the spanner
// algorithm. It replays the leader's verified record stream — exactly the
// recovery replay loop, fed by the network instead of a local disk — and
// serves the resulting SpannerSnapshot sequence through its own
// SnapshotStore. Every record must (a) be the NEXT version in the
// follower's chain, (b) pass checked_apply_diff's §6 preconditions against
// the follower's current key list, and (c) re-derive the leader's logged
// content checksum byte-exactly. Anything else is dropped (duplicate /
// gap: the shipper re-ships) or rejected (verification failure: the
// follower flags need_snapshot and is re-seeded wholesale). Silent
// divergence is structurally impossible: state only ever changes through a
// checksum-verified transition or a checksum-verified snapshot adoption.
//
// Durability: each applied record is appended to the follower's OWN
// WAL/checkpoint chain (same ShardDurability driver as the leader), so a
// crashed follower recovers its durable prefix locally and resumes from
// its cursor instead of re-shipping the world. That chain is also what
// failover election measures (durable_version()) and what promotion
// rebuilds a full SpannerService from.
//
// Epochs: frames carry the leader's rebase epoch. A follower adopts a
// higher epoch only via a verified snapshot (the new leader's rebase
// changed history), drops lower-epoch frames (a deposed leader's last
// breaths), and persists the adopted epoch next to its chain so a
// crash+recover rejoins the right leader.
//
// Threading: pump() is single-threaded (one replication thread per
// follower); snapshot() is safe from any thread, like every store.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "durability/durable_shard.hpp"
#include "replication/transport.hpp"
#include "service/snapshot_store.hpp"

namespace parspan {

class FollowerReplica {
 public:
  /// A fresh, stateless follower: first pump advertises need_snapshot and
  /// the shipper seeds it. `dir` is wiped on adoption (a fresh genesis).
  FollowerReplica(std::shared_ptr<Fs> fs, std::string dir,
                  const DurabilityOptions& opts,
                  std::shared_ptr<ReplicationTransport> transport);

  /// Rebuilds a follower from its own chain after a crash: newest valid
  /// checkpoint + verified WAL replay (the durable prefix — in-flight
  /// frames past the follower's own watermark are re-shipped by the
  /// leader, keyed off the recovered cursor). Never fails: with no valid
  /// checkpoint it degrades to a fresh follower that resyncs.
  static std::unique_ptr<FollowerReplica> recover(
      std::shared_ptr<Fs> fs, std::string dir, const DurabilityOptions& opts,
      std::shared_ptr<ReplicationTransport> transport);

  /// One apply round: drain frames, verify + apply each, advertise the
  /// resulting cursor. Call repeatedly (replication thread).
  void pump();

  bool has_state() const { return have_state_; }
  uint64_t applied_version() const { return version_; }
  uint64_t applied_checksum() const { return checksum_; }
  uint64_t epoch() const { return epoch_; }
  bool needs_resync() const { return need_snapshot_; }

  /// Highest version this follower can itself recover — the election
  /// metric of failover ("longest durably-verified log"). 0 while
  /// stateless or when its own chain failed at genesis.
  uint64_t durable_version() const {
    return dur_ != nullptr ? dur_->durable_version() : 0;
  }

  /// Currently served snapshot (null while stateless). Any thread.
  SpannerSnapshot::Ptr snapshot() const { return store_->acquire(); }

  // --- Apply accounting (test oracle + observability) ----------------------
  uint64_t records_applied() const { return records_applied_; }
  uint64_t duplicates_dropped() const { return duplicates_; }
  uint64_t gaps_deferred() const { return gaps_; }
  /// Frames that failed parse/CRC or checksum/precondition verification —
  /// every one is an explicit, counted rejection, never a silent skip.
  uint64_t rejects() const { return rejects_; }
  uint64_t snapshot_resyncs() const { return resyncs_; }
  uint64_t stale_epoch_drops() const { return stale_drops_; }

  // --- Promotion handoff (failover.hpp) ------------------------------------
  const std::shared_ptr<Fs>& fs() const { return fs_; }
  const std::string& dir() const { return dir_; }
  const DurabilityOptions& options() const { return opts_; }

 private:
  void adopt_snapshot(uint64_t frame_epoch, DurableState state);
  void apply_record(uint64_t frame_epoch, const WalRecord& rec);
  void persist_epoch();

  std::shared_ptr<Fs> fs_;
  std::string dir_;
  DurabilityOptions opts_;
  std::shared_ptr<ReplicationTransport> transport_;

  bool have_state_ = false;
  bool need_snapshot_ = false;
  uint64_t epoch_ = 0;
  uint64_t n_ = 0;
  uint32_t stretch_ = 0;
  uint64_t version_ = 0;
  uint64_t checksum_ = 0;
  std::vector<EdgeKey> snap_keys_;  // ascending — the replay state

  std::unique_ptr<ShardDurability> dur_;  // the follower's own chain
  // unique_ptr so a cross-epoch adoption can swap in a fresh store: a
  // rebase reuses version numbers with different content, which must not
  // mix in one monotone publish chain (pinned readers keep old snapshots
  // alive regardless).
  std::unique_ptr<SnapshotStore> store_;

  uint64_t records_applied_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t gaps_ = 0;
  uint64_t rejects_ = 0;
  uint64_t resyncs_ = 0;
  uint64_t stale_drops_ = 0;
};

}  // namespace parspan
