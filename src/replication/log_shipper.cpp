#include "replication/log_shipper.hpp"

#include "durability/wal_tail.hpp"

namespace parspan {

LogShipper::LogShipper(std::shared_ptr<Fs> fs, std::string dir, uint64_t epoch,
                       std::shared_ptr<ReplicationTransport> transport)
    : fs_(std::move(fs)), dir_(std::move(dir)), epoch_(epoch),
      transport_(std::move(transport)) {}

void LogShipper::ship_snapshot(uint64_t durable_version) {
  // The durable state is rebuilt from disk, not leader memory: what ships
  // is exactly what a leader crash would recover, so follower state can
  // never get ahead of recoverable state.
  auto state = read_durable_state(*fs_, dir_, durable_version);
  if (!state) return;  // nothing durable yet — next pump retries
  transport_->send_frame(make_snapshot_frame(epoch_, *state));
  ++snapshots_shipped_;
}

void LogShipper::pump(uint64_t durable_version) {
  // The newest cursor wins: earlier ones are superseded acks (or
  // duplicates a lossy control plane replayed).
  while (auto c = transport_->recv_cursor()) {
    cursor_ = *c;
    have_cursor_ = true;
  }
  if (!have_cursor_) return;  // not subscribed yet — nothing to aim at

  if (cursor_.epoch != epoch_ || cursor_.need_snapshot ||
      cursor_.version > durable_version) {
    ship_snapshot(durable_version);
    return;
  }
  if (cursor_.version == durable_version) return;  // caught up

  std::vector<WalRecord> records;
  if (!read_wal_range(*fs_, dir_, cursor_.version, durable_version,
                      &records)) {
    // History below the ack was GC'd (or the chain is torn short of the
    // watermark): incremental shipping is off the table, resync.
    ship_snapshot(durable_version);
    return;
  }
  for (const WalRecord& rec : records) {
    transport_->send_frame(make_record_frame(epoch_, rec));
    ++records_shipped_;
  }
}

}  // namespace parspan
