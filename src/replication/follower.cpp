#include "replication/follower.hpp"

#include "service/spanner_snapshot.hpp"

namespace parspan {

namespace {

constexpr const char* kEpochFile = "epoch";

// Tiny sidecar: epoch u64 LE + crc32c. Unreadable/torn => epoch 0, which
// is always safe — the follower just resyncs into the current epoch.
bool read_epoch_file(Fs& fs, const std::string& dir, uint64_t* epoch) {
  std::vector<uint8_t> b;
  if (!fs.read_file(dir + "/" + kEpochFile, &b) || b.size() != 12)
    return false;
  if (crc32c(b.data(), 8) != get_le32(b.data() + 8)) return false;
  *epoch = get_le64(b.data());
  return true;
}

}  // namespace

FollowerReplica::FollowerReplica(std::shared_ptr<Fs> fs, std::string dir,
                                 const DurabilityOptions& opts,
                                 std::shared_ptr<ReplicationTransport> transport)
    : fs_(std::move(fs)), dir_(std::move(dir)), opts_(opts),
      transport_(std::move(transport)),
      store_(std::make_unique<SnapshotStore>()) {}

std::unique_ptr<FollowerReplica> FollowerReplica::recover(
    std::shared_ptr<Fs> fs, std::string dir, const DurabilityOptions& opts,
    std::shared_ptr<ReplicationTransport> transport) {
  auto f = std::make_unique<FollowerReplica>(fs, dir, opts,
                                             std::move(transport));
  auto rec = ShardDurability::recover(std::move(fs), std::move(dir), opts);
  if (!rec) return f;  // nothing durable — a fresh follower that resyncs

  f->have_state_ = true;
  f->n_ = rec->n;
  f->stretch_ = rec->stretch;
  f->version_ = rec->version;
  f->checksum_ = rec->checksum;
  f->snap_keys_ = std::move(rec->snap_keys);
  f->dur_ = std::move(rec->dur);
  read_epoch_file(*f->fs_, f->dir_, &f->epoch_);
  // Compact immediately (the recovery epilogue discipline of §10.4): a
  // follower that crash-loops must not accumulate log.
  if (f->dur_ != nullptr)
    f->dur_->checkpoint_now(f->version_, f->checksum_, f->snap_keys_);
  f->store_->publish(SpannerSnapshot::restore(
      f->n_, f->stretch_, f->version_,
      std::vector<EdgeKey>(f->snap_keys_)));
  return f;
}

void FollowerReplica::persist_epoch() {
  // Best-effort: a lost epoch file downgrades a future recovery to epoch 0
  // (forced resync), never to wrong state.
  std::vector<uint8_t> b;
  put_le64(b, epoch_);
  put_le32(b, crc32c(b.data(), 8));
  auto file = fs_->create(dir_ + "/" + kEpochFile);
  if (file != nullptr && file->append(b.data(), b.size())) file->sync();
}

void FollowerReplica::adopt_snapshot(uint64_t frame_epoch, DurableState state) {
  const bool epoch_changed = frame_epoch != epoch_;
  n_ = state.n;
  stretch_ = state.stretch;
  version_ = state.version;
  checksum_ = state.checksum;
  snap_keys_ = std::move(state.snap_keys);
  epoch_ = frame_epoch;
  have_state_ = true;
  need_snapshot_ = false;
  // A fresh genesis for the follower's own chain: create() wipes the old
  // ckpt/wal files, so nothing from a previous epoch (or a previous
  // incarnation's divergent tail) can win a later recovery.
  dur_ = ShardDurability::create(fs_, dir_, opts_, n_, stretch_, version_,
                                 snap_keys_, checksum_,
                                 std::move(state.graph_keys));
  persist_epoch();
  if (epoch_changed || store_->acquire() == nullptr) {
    // Rebase epochs reuse version numbers with different content — start a
    // fresh publish chain rather than mixing them (see header).
    store_ = std::make_unique<SnapshotStore>();
  }
  store_->publish(SpannerSnapshot::restore(n_, stretch_, version_,
                                           std::vector<EdgeKey>(snap_keys_)));
  ++resyncs_;
}

void FollowerReplica::apply_record(uint64_t frame_epoch, const WalRecord& rec) {
  if (frame_epoch != epoch_ || !have_state_) {
    // A record from the future epoch is unusable without its rebase
    // snapshot; ask for one. (Past epochs were already dropped in pump().)
    need_snapshot_ = true;
    return;
  }
  if (rec.version <= version_) {
    ++duplicates_;  // re-ship overlap or transport duplicate — idempotent
    return;
  }
  if (rec.version != version_ + 1) {
    ++gaps_;  // reordered ahead of its predecessor — the re-ship closes it
    return;
  }
  auto folded =
      checked_apply_diff(snap_keys_, rec.diff_inserted, rec.diff_removed);
  if (!folded || snapshot_content_checksum(n_, stretch_, rec.version,
                                           *folded) != rec.checksum) {
    // CRC-valid but semantically wrong (or checksum mismatch): the
    // follower's chain cannot extend this way. Explicit reject + resync —
    // the §11 "never silent divergence" guarantee.
    ++rejects_;
    need_snapshot_ = true;
    return;
  }
  snap_keys_ = std::move(*folded);
  version_ = rec.version;
  checksum_ = rec.checksum;
  if (dur_ != nullptr) {
    dur_->log_record(rec);
    dur_->maybe_checkpoint(version_, checksum_, snap_keys_);
  }
  store_->publish(SpannerSnapshot::restore(n_, stretch_, version_,
                                           std::vector<EdgeKey>(snap_keys_)));
  ++records_applied_;
}

void FollowerReplica::pump() {
  while (auto frame = transport_->recv_frame()) {
    auto parsed = parse_frame(*frame);
    if (!parsed) {
      ++rejects_;  // mangled on the wire; the unchanged cursor re-ships it
      continue;
    }
    if (parsed->epoch < epoch_) {
      ++stale_drops_;  // a deposed leader's frame — dead on arrival
      continue;
    }
    if (parsed->type == FrameType::kSnapshot) {
      if (parsed->epoch == epoch_ && have_state_ &&
          parsed->state.version <= version_) {
        ++duplicates_;  // never adopt backwards within an epoch
        continue;
      }
      // Trust nothing: the checksum must re-derive from the shipped keys
      // before this state becomes ours.
      if (snapshot_content_checksum(parsed->state.n, parsed->state.stretch,
                                    parsed->state.version,
                                    parsed->state.snap_keys) !=
          parsed->state.checksum) {
        ++rejects_;
        continue;
      }
      adopt_snapshot(parsed->epoch, std::move(parsed->state));
    } else {
      apply_record(parsed->epoch, parsed->rec);
    }
  }
  ReplicaCursor c;
  c.epoch = epoch_;
  c.version = version_;
  c.need_snapshot = !have_state_ || need_snapshot_;
  transport_->send_cursor(c);
}

}  // namespace parspan
