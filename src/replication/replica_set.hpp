// ReplicationGroup / ReplicatedShardedReader: wiring one leader to N
// followers and spreading reads across them (DESIGN.md §11.5).
//
// ReplicationGroup binds one durability-enabled SpannerService (the
// leader) to N (shipper, follower) pairs over arbitrary transports. pump()
// runs one shipping + applying round for every member — the test
// harnesses' clock tick, and the loop body a production replication
// thread would run. read_at_least(v) is the read-your-writes router: a
// client that observed version v gets a snapshot at >= v, served by a
// caught-up follower when one exists (round-robin across eligible
// followers) and by the leader only as the fallback — read scaling
// without ever serving a stale read past the client's watermark.
//
// ReplicatedShardedReader lifts the same routing to the PR-5 sharded
// layer: per-shard follower lists, and view_at_least(VersionVector)
// composes a ShardedView whose every shard snapshot dominates the
// client's vector — flush()'s barrier semantics, now servable by
// replicas.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "replication/follower.hpp"
#include "replication/log_shipper.hpp"
#include "service/sharded_service.hpp"
#include "service/spanner_service.hpp"

namespace parspan {

class ReplicationGroup {
 public:
  /// `leader` must outlive the group and have durability enabled (the
  /// shippers tail its directory). `epoch` is the leader's rebase epoch —
  /// a freshly built service is epoch 1; a post-failover leader passes
  /// old epoch + 1.
  ReplicationGroup(const SpannerService* leader, uint64_t epoch);

  /// Creates a fresh follower over `transport`, chained to its own
  /// durability dir, and a shipper for it.
  FollowerReplica& add_follower(std::shared_ptr<ReplicationTransport> transport,
                                std::shared_ptr<Fs> follower_fs,
                                std::string follower_dir,
                                const DurabilityOptions& follower_opts);

  /// Adopts an existing follower (recovered from its chain, or a survivor
  /// of a failover) and builds this group's shipper for it. The follower
  /// keeps its state; if its epoch differs from the group's, the first
  /// pump resyncs it.
  FollowerReplica& attach(std::unique_ptr<FollowerReplica> follower,
                          std::shared_ptr<ReplicationTransport> transport);

  /// Removes follower i from the group and hands it back (failover
  /// election input, crash simulation). Its shipper is dropped.
  std::unique_ptr<FollowerReplica> detach(size_t i);

  /// One replication round: every shipper ships up to the leader's current
  /// durable watermark, every follower applies and acks.
  void pump();

  /// True when every follower has applied exactly the leader's durable
  /// watermark in the group's epoch.
  bool converged() const;

  uint64_t leader_durable() const;
  uint64_t epoch() const { return epoch_; }
  size_t num_followers() const { return members_.size(); }
  FollowerReplica& follower(size_t i) { return *members_[i].follower; }
  const FollowerReplica& follower(size_t i) const {
    return *members_[i].follower;
  }
  LogShipper& shipper(size_t i) { return *members_[i].shipper; }

  /// A read-your-writes read: a snapshot at version >= `version`, from a
  /// caught-up follower when possible (round-robin), else the leader.
  /// `source` reports who served it: follower index, or -1 for the leader.
  struct ReadResult {
    SpannerSnapshot::Ptr snap;
    int source = -1;
  };
  ReadResult read_at_least(uint64_t version);

 private:
  struct Member {
    std::shared_ptr<ReplicationTransport> transport;
    std::unique_ptr<LogShipper> shipper;
    std::unique_ptr<FollowerReplica> follower;
  };

  const SpannerService* leader_;
  uint64_t epoch_;
  std::vector<Member> members_;
  size_t rr_ = 0;  // round-robin cursor for read spreading
};

/// Read router over a sharded service plus per-shard follower fleets.
/// Followers are registered per shard and owned elsewhere (typically a
/// ReplicationGroup per shard); this class only routes.
class ReplicatedShardedReader {
 public:
  explicit ReplicatedShardedReader(const ShardedSpannerService* service);

  /// Registers a follower replicating shard `shard`.
  void add_follower(size_t shard, const FollowerReplica* follower);

  /// Pins a cross-shard view dominating `vv` (a flush() result): each
  /// shard's snapshot comes from a follower that has caught up to
  /// vv.v[shard], else from the leader shard — read-your-writes preserved
  /// either way. `sources` (optional, shard order) reports who served
  /// each shard: follower index within the shard's fleet, or -1 = leader.
  ShardedView view_at_least(const VersionVector& vv,
                            std::vector<int>* sources = nullptr) const;

  /// Total shard-reads served by followers / by the leader fallback.
  uint64_t follower_reads() const {
    return follower_reads_.load(std::memory_order_relaxed);
  }
  uint64_t leader_reads() const {
    return leader_reads_.load(std::memory_order_relaxed);
  }

 private:
  const ShardedSpannerService* service_;
  std::vector<std::vector<const FollowerReplica*>> fleets_;  // per shard
  mutable std::atomic<size_t> rr_{0};
  mutable std::atomic<uint64_t> follower_reads_{0};
  mutable std::atomic<uint64_t> leader_reads_{0};
};

}  // namespace parspan
