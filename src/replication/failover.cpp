#include "replication/failover.hpp"

namespace parspan {

std::optional<Election> elect_longest_log(
    const std::vector<CandidateStatus>& candidates) {
  std::optional<Election> best;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const CandidateStatus& c = candidates[i];
    if (!c.has_state) continue;
    // Strict >: ties stay with the earliest candidate (deterministic).
    if (!best || c.durable_version > best->durable_version)
      best = Election{i, c.durable_version};
  }
  return best;
}

std::optional<Election> elect_longest_log(
    const std::vector<const FollowerReplica*>& candidates) {
  std::vector<CandidateStatus> claims;
  claims.reserve(candidates.size());
  for (const FollowerReplica* f : candidates) {
    CandidateStatus s;
    if (f != nullptr && f->has_state()) {
      s.has_state = true;
      s.durable_version = f->durable_version();
    }
    claims.push_back(s);
  }
  return elect_longest_log(claims);
}

}  // namespace parspan
