#include "replication/failover.hpp"

namespace parspan {

std::optional<Election> elect_longest_log(
    const std::vector<const FollowerReplica*>& candidates) {
  std::optional<Election> best;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const FollowerReplica* f = candidates[i];
    if (f == nullptr || !f->has_state()) continue;
    uint64_t dv = f->durable_version();
    // Strict >: ties stay with the earliest candidate (deterministic).
    if (!best || dv > best->durable_version) best = Election{i, dv};
  }
  return best;
}

}  // namespace parspan
