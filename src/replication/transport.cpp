#include "replication/transport.hpp"

#include <cassert>

#include "util/types.hpp"

namespace parspan {

namespace {

// Ship-frame header: type u8 | epoch u64 | payload_len u32 | crc32c u32.
constexpr size_t kShipHeaderSize = 1 + 8 + 4 + 4;
// Snapshot payload prefix: n u64 | stretch u32 | version u64 | checksum
// u64 | snap_cnt u32 | graph_cnt u32.
constexpr size_t kSnapshotFixedSize = 8 + 4 + 8 + 8 + 4 + 4;

// Thin adapters over the shared durability/frame.hpp ascending-list codec
// (the ship format predates the extraction but used the identical layout).
void encode_key_list(std::span<const EdgeKey> keys, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + ascending_list_bound(keys.size()));
  uint8_t* end = encode_ascending_list(keys.data(), keys.size(),
                                       out->data() + at);
  out->resize(size_t(end - out->data()));
}

bool decode_key_list(const uint8_t** p, const uint8_t* end, uint64_t cnt,
                     std::vector<EdgeKey>* out) {
  return decode_ascending_list(p, end, cnt, out);
}

// Canonical, in-range edge keys only: a snapshot frame's key lists define
// a graph over n vertices, and adopting out-of-range keys would poison the
// follower's own checkpoint chain.
bool keys_in_range(std::span<const EdgeKey> keys, uint64_t n) {
  for (EdgeKey k : keys) {
    auto [lo, hi] = edge_endpoints(k);
    if (lo >= hi || hi >= n) return false;
  }
  return true;
}

ShipFrame finish_frame(FrameType type, uint64_t epoch,
                       std::vector<uint8_t> payload) {
  ShipFrame f;
  f.bytes.reserve(kShipHeaderSize + payload.size());
  f.bytes.push_back(static_cast<uint8_t>(type));
  put_le64(f.bytes, epoch);
  put_le32(f.bytes, static_cast<uint32_t>(payload.size()));
  // The CRC covers type + epoch + payload (seeded by the 9 header bytes):
  // an unauthenticated epoch would let one flipped bit forge a frame from
  // a phantom future epoch and wedge the follower there. The length field
  // needs no coverage — parse_frame cross-checks it against the actual
  // byte count.
  uint32_t seed = crc32c(f.bytes.data(), 9);
  put_le32(f.bytes, crc32c(payload.data(), payload.size(), seed));
  f.bytes.insert(f.bytes.end(), payload.begin(), payload.end());
  return f;
}

}  // namespace

ShipFrame make_record_frame(uint64_t epoch, const WalRecord& rec) {
  return finish_frame(FrameType::kRecord, epoch, encode_wal_record(rec));
}

ShipFrame make_snapshot_frame(uint64_t epoch, const DurableState& state) {
  std::vector<uint8_t> payload;
  payload.reserve(kSnapshotFixedSize +
                  2 * (state.snap_keys.size() + state.graph_keys.size()));
  put_le64(payload, state.n);
  put_le32(payload, state.stretch);
  put_le64(payload, state.version);
  put_le64(payload, state.checksum);
  put_le32(payload, static_cast<uint32_t>(state.snap_keys.size()));
  put_le32(payload, static_cast<uint32_t>(state.graph_keys.size()));
  encode_key_list(state.snap_keys, &payload);
  encode_key_list(state.graph_keys, &payload);
  return finish_frame(FrameType::kSnapshot, epoch, std::move(payload));
}

std::optional<ParsedFrame> parse_frame(const ShipFrame& frame) {
  const std::vector<uint8_t>& b = frame.bytes;
  if (b.size() < kShipHeaderSize) return std::nullopt;
  ParsedFrame out;
  if (b[0] != static_cast<uint8_t>(FrameType::kSnapshot) &&
      b[0] != static_cast<uint8_t>(FrameType::kRecord))
    return std::nullopt;
  out.type = static_cast<FrameType>(b[0]);
  out.epoch = get_le64(b.data() + 1);
  const uint32_t len = get_le32(b.data() + 9);
  const uint32_t crc = get_le32(b.data() + 13);
  // Exact length: a truncated OR padded frame is malformed, full stop.
  if (b.size() - kShipHeaderSize != len) return std::nullopt;
  const uint8_t* payload = b.data() + kShipHeaderSize;
  if (crc32c(payload, len, crc32c(b.data(), 9)) != crc) return std::nullopt;

  if (out.type == FrameType::kRecord) {
    if (!decode_wal_record(payload, len, &out.rec)) return std::nullopt;
    return out;
  }

  if (len < kSnapshotFixedSize) return std::nullopt;
  DurableState& s = out.state;
  s.n = get_le64(payload);
  s.stretch = get_le32(payload + 8);
  s.version = get_le64(payload + 12);
  s.checksum = get_le64(payload + 20);
  const uint64_t snap_cnt = get_le32(payload + 28);
  const uint64_t graph_cnt = get_le32(payload + 32);
  const uint8_t* p = payload + kSnapshotFixedSize;
  const uint8_t* end = payload + len;
  if (!decode_key_list(&p, end, snap_cnt, &s.snap_keys) ||
      !decode_key_list(&p, end, graph_cnt, &s.graph_keys) || p != end)
    return std::nullopt;
  if (!keys_in_range(s.snap_keys, s.n) || !keys_in_range(s.graph_keys, s.n))
    return std::nullopt;
  return out;
}

void ChannelTransport::send_frame(ShipFrame frame) {
  std::lock_guard<std::mutex> lk(mu_);
  frames_.push_back(std::move(frame));
}

std::optional<ShipFrame> ChannelTransport::recv_frame() {
  std::lock_guard<std::mutex> lk(mu_);
  if (frames_.empty()) return std::nullopt;
  ShipFrame f = std::move(frames_.front());
  frames_.pop_front();
  return f;
}

void ChannelTransport::send_cursor(const ReplicaCursor& cursor) {
  std::lock_guard<std::mutex> lk(mu_);
  cursors_.push_back(cursor);
}

std::optional<ReplicaCursor> ChannelTransport::recv_cursor() {
  std::lock_guard<std::mutex> lk(mu_);
  if (cursors_.empty()) return std::nullopt;
  ReplicaCursor c = cursors_.front();
  cursors_.pop_front();
  return c;
}

void FaultyTransport::mangle(ShipFrame& f) {
  if (!f.bytes.empty() && rng_.next_bool(plan_.truncate_p)) {
    f.bytes.resize(static_cast<size_t>(rng_.next_below(f.bytes.size())));
    ++stats_.frames_truncated;
  }
  if (!f.bytes.empty() && rng_.next_bool(plan_.bit_flip_p)) {
    size_t at = static_cast<size_t>(rng_.next_below(f.bytes.size()));
    f.bytes[at] ^= static_cast<uint8_t>(1u << rng_.next_below(8));
    ++stats_.frames_bit_flipped;
  }
}

void FaultyTransport::send_frame(ShipFrame frame) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.frames_sent;
  if (partitioned_ || rng_.next_bool(plan_.drop_p)) {
    ++stats_.frames_dropped;
    return;
  }
  mangle(frame);
  const bool dup = rng_.next_bool(plan_.dup_p);
  if (rng_.next_bool(plan_.reorder_p)) {
    // Held frames jump behind later traffic; recv_frame releases them when
    // the channel runs dry, so nothing is withheld forever.
    ++stats_.frames_reordered;
    if (dup) {
      ++stats_.frames_duplicated;
      held_.push_back(frame);
    }
    held_.push_back(std::move(frame));
    return;
  }
  if (dup) {
    ++stats_.frames_duplicated;
    inner_.send_frame(frame);
  }
  inner_.send_frame(std::move(frame));
}

void FaultyTransport::drain() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.frames_drained_late += held_.size();
  for (ShipFrame& h : held_) inner_.send_frame(std::move(h));
  held_.clear();
}

std::optional<ShipFrame> FaultyTransport::recv_frame() {
  std::lock_guard<std::mutex> lk(mu_);
  auto f = inner_.recv_frame();
  if (!f && !held_.empty()) {
    for (ShipFrame& h : held_) inner_.send_frame(std::move(h));
    held_.clear();
    f = inner_.recv_frame();
  }
  return f;
}

void FaultyTransport::send_cursor(const ReplicaCursor& cursor) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.cursors_sent;
  if (partitioned_ || rng_.next_bool(plan_.cursor_drop_p)) {
    ++stats_.cursors_dropped;
    return;
  }
  inner_.send_cursor(cursor);
}

std::optional<ReplicaCursor> FaultyTransport::recv_cursor() {
  std::lock_guard<std::mutex> lk(mu_);
  return inner_.recv_cursor();
}

}  // namespace parspan
