#include "replication/replica_set.hpp"

#include <cassert>

namespace parspan {

ReplicationGroup::ReplicationGroup(const SpannerService* leader, uint64_t epoch)
    : leader_(leader), epoch_(epoch) {
  assert(leader_ != nullptr && leader_->durability() != nullptr &&
         "ReplicationGroup needs a durability-enabled leader to tail");
}

FollowerReplica& ReplicationGroup::add_follower(
    std::shared_ptr<ReplicationTransport> transport,
    std::shared_ptr<Fs> follower_fs, std::string follower_dir,
    const DurabilityOptions& follower_opts) {
  return attach(std::make_unique<FollowerReplica>(
                    std::move(follower_fs), std::move(follower_dir),
                    follower_opts, transport),
                transport);
}

FollowerReplica& ReplicationGroup::attach(
    std::unique_ptr<FollowerReplica> follower,
    std::shared_ptr<ReplicationTransport> transport) {
  const ShardDurability* dur = leader_->durability();
  Member m;
  m.shipper = std::make_unique<LogShipper>(dur->fs(), dur->dir(), epoch_,
                                           transport);
  m.transport = std::move(transport);
  m.follower = std::move(follower);
  members_.push_back(std::move(m));
  return *members_.back().follower;
}

std::unique_ptr<FollowerReplica> ReplicationGroup::detach(size_t i) {
  std::unique_ptr<FollowerReplica> f = std::move(members_[i].follower);
  members_.erase(members_.begin() + static_cast<ptrdiff_t>(i));
  return f;
}

uint64_t ReplicationGroup::leader_durable() const {
  return leader_->durability()->durable_version();
}

void ReplicationGroup::pump() {
  const uint64_t durable = leader_durable();
  for (Member& m : members_) {
    m.shipper->pump(durable);
    m.follower->pump();
  }
}

bool ReplicationGroup::converged() const {
  const uint64_t durable = leader_durable();
  for (const Member& m : members_)
    if (m.follower->epoch() != epoch_ ||
        m.follower->applied_version() != durable)
      return false;
  return true;
}

ReplicationGroup::ReadResult ReplicationGroup::read_at_least(uint64_t version) {
  // Round-robin over caught-up followers; the leader serves only when no
  // follower can honor the client's watermark.
  const size_t n = members_.size();
  for (size_t k = 0; k < n; ++k) {
    size_t i = (rr_ + k) % n;
    const Member& m = members_[i];
    if (m.follower->epoch() != epoch_) continue;
    SpannerSnapshot::Ptr snap = m.follower->snapshot();
    if (snap != nullptr && snap->version() >= version) {
      rr_ = i + 1;
      return {std::move(snap), static_cast<int>(i)};
    }
  }
  return {leader_->snapshot(), -1};
}

ReplicatedShardedReader::ReplicatedShardedReader(
    const ShardedSpannerService* service)
    : service_(service), fleets_(service->num_shards()) {}

void ReplicatedShardedReader::add_follower(size_t shard,
                                           const FollowerReplica* follower) {
  fleets_.at(shard).push_back(follower);
}

ShardedView ReplicatedShardedReader::view_at_least(
    const VersionVector& vv, std::vector<int>* sources) const {
  assert(vv.v.size() == fleets_.size() &&
         "version vector must match the shard count");
  if (sources != nullptr) sources->assign(fleets_.size(), -1);
  std::vector<SpannerSnapshot::Ptr> snaps(fleets_.size());
  const size_t start = rr_.fetch_add(1, std::memory_order_relaxed);
  for (size_t s = 0; s < fleets_.size(); ++s) {
    const auto& fleet = fleets_[s];
    for (size_t k = 0; k < fleet.size() && snaps[s] == nullptr; ++k) {
      const FollowerReplica* f = fleet[(start + k) % fleet.size()];
      SpannerSnapshot::Ptr snap = f->snapshot();
      if (snap != nullptr && snap->version() >= vv.v[s]) {
        snaps[s] = std::move(snap);
        if (sources != nullptr)
          (*sources)[s] = static_cast<int>((start + k) % fleet.size());
        follower_reads_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (snaps[s] == nullptr) {
      // Leader fallback: its served version always dominates any flush()
      // vector it produced.
      snaps[s] = service_->shard_service(s).snapshot();
      leader_reads_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return ShardedView::compose(service_->router_ptr(), service_->vertex_space(),
                              std::move(snaps));
}

}  // namespace parspan
