// Failover: leader-loss handling (DESIGN.md §11.4).
//
// Election is deliberately dumb and fully deterministic: the follower with
// the LONGEST DURABLY-VERIFIED LOG wins (FollowerReplica::durable_version
// — every record behind it passed checksum verification before it was
// logged, and survives the winner's own crash). Ties break to the lowest
// index. There is no quorum machinery here — the harness (or an operator /
// external coordinator) decides THAT failover happens; this module decides
// WHO wins and makes the promotion safe:
//
//   * the winner is rebuilt by SpannerService::recover on its own chain —
//     the restored version/checksum equal its durable watermark (the
//     election metric IS the recovery lower bound), and the rebase epoch
//     (restored + 1) re-anchors the WAL chain under a rebuilt backend;
//   * the new leader ships under epoch old+1: survivors still holding the
//     old epoch reject-and-resync off the rebase snapshot, and any late
//     frame from the deposed leader dies on the followers' epoch check.
//
// What failover costs, by design: updates past the winner's durable
// watermark are lost (they were never durable ANYWHERE by the watermark
// shipping rule — the dead leader alone had them), and the rebase replaces
// the spanner edge set (same graph, different certificate), exactly like a
// single-process recovery.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "replication/follower.hpp"
#include "service/spanner_service.hpp"

namespace parspan {

struct Election {
  size_t winner = 0;            // index into the candidate vector
  uint64_t durable_version = 0; // the winning log length
};

/// What a remote candidate claims over the control plane: enough to run
/// the same election without a FollowerReplica in hand. An unreachable
/// candidate is represented by has_state = false (it cannot run — exactly
/// a stateless local follower), so process-level and in-process elections
/// share one decision procedure.
struct CandidateStatus {
  bool has_state = false;
  uint64_t durable_version = 0;
};

/// Longest-durable-log election over candidate claims. Stateless
/// candidates don't run; nullopt when nobody has state (no recoverable
/// replica — the group is lost, by honest admission). Ties break to the
/// lowest index, so every node polling the same claims elects the same
/// winner.
std::optional<Election> elect_longest_log(
    const std::vector<CandidateStatus>& candidates);

/// Convenience overload over live followers (nullptr = unreachable).
std::optional<Election> elect_longest_log(
    const std::vector<const FollowerReplica*>& candidates);

/// Promotes the elected follower to a full leader: tears the follower down
/// (closing its WAL writer) and rebuilds a SpannerService from its chain
/// via SpannerService::recover — restored state == the follower's durable
/// prefix, then the rebase epoch with a rebuilt backend. `make_backend` is
/// recover()'s factory: (n, graph_edges, stretch) -> unique_ptr<Backend>.
/// nullptr only if the chain lost its checkpoint after election (media
/// death mid-failover) — callers then try the runner-up.
template <typename MakeBackend>
std::unique_ptr<SpannerService> promote_follower(
    std::unique_ptr<FollowerReplica> follower, MakeBackend&& make_backend,
    SpannerService::RecoveryReport* report = nullptr) {
  std::shared_ptr<Fs> fs = follower->fs();
  std::string dir = follower->dir();
  DurabilityOptions opts = follower->options();
  follower.reset();  // single writer per chain: close before recover reopens
  return SpannerService::recover(std::move(fs), std::move(dir), opts,
                                 std::forward<MakeBackend>(make_backend),
                                 report);
}

}  // namespace parspan
