#include "replication/node.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "durability/frame.hpp"
#include "net/framed_conn.hpp"
#include "replication/failover.hpp"
#include "service/spanner_snapshot.hpp"

namespace parspan {

namespace {

// Control-protocol ops. One frame.hpp-framed request per connection, one
// framed response; the body layouts are fixed-size and exact (a wrong
// length is a dead connection, the same trust boundary as everywhere).
constexpr uint8_t kCtlStatus = 1;     // body: none
constexpr uint8_t kCtlPartition = 2;  // body: follower u32 | on u8
constexpr uint8_t kCtlDepose = 3;     // body: epoch u64 | leader u32

constexpr size_t kStatusBodySize = 1 + 8 + 8 + 8 + 8 + 1 + 1 + 4 + 8 + 8;
constexpr size_t kCtlMaxPayload = 64;
constexpr auto kCtlConnDeadline = std::chrono::seconds(2);
constexpr uint32_t kDeposeTimeoutMs = 100;

void encode_status(const NodeStatus& s, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(s.role));
  put_le64(*out, s.epoch);
  put_le64(*out, s.applied_version);
  put_le64(*out, s.applied_checksum);
  put_le64(*out, s.durable_version);
  out->push_back(s.lease_healthy ? 1 : 0);
  out->push_back(s.has_state ? 1 : 0);
  put_le32(*out, s.leader_index);
  put_le64(*out, s.resyncs);
  put_le64(*out, s.rejects);
}

bool decode_status(const uint8_t* p, size_t len, NodeStatus* out) {
  if (len != kStatusBodySize) return false;
  if (p[0] != static_cast<uint8_t>(NodeRole::kFollower) &&
      p[0] != static_cast<uint8_t>(NodeRole::kLeader))
    return false;
  out->role = static_cast<NodeRole>(p[0]);
  out->epoch = get_le64(p + 1);
  out->applied_version = get_le64(p + 9);
  out->applied_checksum = get_le64(p + 17);
  out->durable_version = get_le64(p + 25);
  out->lease_healthy = p[33] != 0;
  out->has_state = p[34] != 0;
  out->leader_index = get_le32(p + 35);
  out->resyncs = get_le64(p + 39);
  out->rejects = get_le64(p + 47);
  return true;
}

// Blocking ctl dial with kernel-enforced send/recv timeouts. A SIGSTOPped
// peer ACCEPTS the connection (the kernel backlog does, the process never
// sees it) but never answers — SO_RCVTIMEO is what converts that into
// "unreachable", which is exactly the election's requirement.
int dial_ctl(const PeerAddr& peer, uint32_t timeout_ms) {
  const int fd = net::tcp_connect(peer.host, peer.ctl_port, false);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  return fd;
}

bool send_all(int fd, const uint8_t* p, size_t len) {
  while (len > 0) {
    const ssize_t w = send(fd, p, len, MSG_NOSIGNAL);
    if (w <= 0) return false;
    p += w;
    len -= static_cast<size_t>(w);
  }
  return true;
}

// One framed request, optionally one framed response body.
std::optional<std::vector<uint8_t>> ctl_roundtrip(
    const PeerAddr& peer, const std::vector<uint8_t>& request,
    uint32_t timeout_ms, bool want_reply) {
  const int fd = dial_ctl(peer, timeout_ms);
  if (fd < 0) return std::nullopt;
  std::vector<uint8_t> wire;
  append_frame(wire, request.data(), request.size());
  if (!send_all(fd, wire.data(), wire.size())) {
    ::close(fd);
    return std::nullopt;
  }
  if (!want_reply) {
    ::close(fd);
    return std::vector<uint8_t>{};
  }
  std::vector<uint8_t> in;
  uint8_t chunk[512];
  std::optional<std::vector<uint8_t>> body;
  for (;;) {
    FrameView fv;
    const FrameParse pr = parse_frame(in.data(), in.size(), kCtlMaxPayload, &fv);
    if (pr == FrameParse::kOk) {
      body.emplace(fv.payload, fv.payload + fv.len);
      break;
    }
    if (pr == FrameParse::kBad) break;
    const ssize_t r = recv(fd, chunk, sizeof(chunk), 0);  // SO_RCVTIMEO bounds
    if (r <= 0) break;
    in.insert(in.end(), chunk, chunk + r);
  }
  ::close(fd);
  return body;
}

uint64_t read_epoch_sidecar(Fs& fs, const std::string& dir) {
  std::vector<uint8_t> b;
  if (!fs.read_file(dir + "/epoch", &b) || b.size() != 12) return 0;
  if (crc32c(b.data(), 8) != get_le32(b.data() + 8)) return 0;
  return get_le64(b.data());
}

// The next epoch > max_seen that is ≡ index (mod fleet size). Promotion
// epochs are therefore UNIQUE per node: if two nodes ever promote off the
// same max_seen (both sides of a poll timing out under extreme scheduler
// stall), they still mint different epochs, so the higher one's DEPOSE
// broadcast deterministically wins instead of two equal-epoch leaders
// ignoring each other forever.
uint64_t next_epoch(uint64_t max_seen, uint32_t index, size_t fleet) {
  if (fleet == 0) return max_seen + 1;
  const uint64_t base = max_seen + 1;
  const uint64_t rem = base % fleet;
  const uint64_t want = index % fleet;
  return base + (want >= rem ? want - rem : fleet - rem + want);
}

}  // namespace

struct ReplicaNode::CtlConn {
  int fd = -1;
  net::ConnBufs bufs;
  Clock::time_point since{};
  bool responded = false;
  bool dead = false;
  ~CtlConn() {
    if (fd >= 0) ::close(fd);
  }
};

struct ReplicaNode::Member {
  std::shared_ptr<SocketTransport> transport;
  std::unique_ptr<LogShipper> shipper;
  Clock::time_point last_heartbeat{};
};

ReplicaNode::ReplicaNode(ReplicaNodeConfig cfg) : cfg_(std::move(cfg)) {}

ReplicaNode::~ReplicaNode() { stop(); }

bool ReplicaNode::start() {
  std::unique_lock<std::mutex> lk(mu_);
  if (running_) return true;
  if (cfg_.index >= cfg_.peers.size() || cfg_.fs == nullptr) return false;
  const PeerAddr& self = cfg_.peers[cfg_.index];
  uint16_t bound = 0;
  ctl_fd_ = net::tcp_listen(self.host, self.ctl_port, 64, &bound);
  if (ctl_fd_ < 0) return false;
  cfg_.fs->mkdirs(shard_dir());
  if (cfg_.start_as_leader) {
    if (!become_bootstrap_leader_locked()) {
      ::close(ctl_fd_);
      ctl_fd_ = -1;
      return false;
    }
  } else {
    become_follower_locked(cfg_.initial_leader);
  }
  running_ = true;
  thread_ = std::thread(&ReplicaNode::run, this);
  ctl_thread_ = std::thread(&ReplicaNode::ctl_run, this);
  return true;
}

void ReplicaNode::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    running_ = false;
  }
  if (thread_.joinable()) thread_.join();
  if (ctl_thread_.joinable()) ctl_thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  if (net_server_ != nullptr) {
    net_server_->stop();
    net_server_.reset();
  }
  if (repl_listener_ != nullptr) {
    repl_listener_->stop();
    repl_listener_.reset();
  }
  members_.clear();
  svc_.reset();
  follower_.reset();
  transport_.reset();
  ctl_conns_.clear();
  if (ctl_fd_ >= 0) {
    ::close(ctl_fd_);
    ctl_fd_ = -1;
  }
}

NodeStatus ReplicaNode::status() const {
  std::lock_guard<std::mutex> lk(mu_);
  return status_locked();
}

NodeRole ReplicaNode::role() const {
  std::lock_guard<std::mutex> lk(mu_);
  return role_;
}

uint64_t ReplicaNode::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

// --- Threads ---------------------------------------------------------------

void ReplicaNode::run() {
  for (;;) {
    bool want_election = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!running_) return;
      tick_locked(&want_election);
    }
    if (want_election) run_election();
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.tick_ms));
  }
}

void ReplicaNode::ctl_run() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!running_) return;
    }
    serve_ctl();
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.tick_ms));
  }
}

// --- Control plane (ctl thread) --------------------------------------------

void ReplicaNode::serve_ctl() {
  for (;;) {
    const int fd =
        accept4(ctl_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;
    auto c = std::make_unique<CtlConn>();
    c->fd = fd;
    c->since = Clock::now();
    ctl_conns_.push_back(std::move(c));
  }
  const auto now = Clock::now();
  for (auto& c : ctl_conns_) {
    if (c->dead) continue;
    if (!c->responded) {
      const net::IoStatus st =
          net::read_to_buffer(c->fd, c->bufs, kCtlMaxPayload);
      if (st == net::IoStatus::kError || st == net::IoStatus::kOverflow) {
        c->dead = true;
        continue;
      }
      FrameView fv;
      const FrameParse pr = parse_frame(c->bufs.in.data() + c->bufs.in_off,
                                        c->bufs.in_pending(), kCtlMaxPayload,
                                        &fv);
      if (pr == FrameParse::kOk) {
        handle_ctl_request(*c, fv.payload, fv.len);
        c->responded = true;
      } else if (pr == FrameParse::kBad || st == net::IoStatus::kEof) {
        c->dead = true;
        continue;
      }
    }
    if (c->dead) continue;
    if (c->bufs.out_pending() > 0 &&
        net::flush_writes(c->fd, c->bufs) == net::IoStatus::kError) {
      c->dead = true;
      continue;
    }
    if (c->responded && c->bufs.out_pending() == 0)
      c->dead = true;  // served, one request per connection
    else if (now - c->since > kCtlConnDeadline)
      c->dead = true;  // stuck peer
  }
  ctl_conns_.erase(
      std::remove_if(ctl_conns_.begin(), ctl_conns_.end(),
                     [](const std::unique_ptr<CtlConn>& c) { return c->dead; }),
      ctl_conns_.end());
}

void ReplicaNode::handle_ctl_request(CtlConn& conn, const uint8_t* payload,
                                     uint32_t len) {
  std::vector<uint8_t> body;
  std::lock_guard<std::mutex> lk(mu_);
  if (len == 1 && payload[0] == kCtlStatus) {
    encode_status(status_locked(), &body);
  } else if (len == 6 && payload[0] == kCtlPartition) {
    const uint32_t follower = get_le32(payload + 1);
    const bool on = payload[5] != 0;
    bool ok = false;
    if (role_ == NodeRole::kLeader && repl_listener_ != nullptr) {
      // The refusal set is thread-safe; dropping the live member (so the
      // cut applies to the EXISTING connection too) is node-thread work.
      repl_listener_->set_refused(follower, on);
      pending_partitions_.emplace_back(follower, on);
      ok = true;
    }
    body.push_back(ok ? 1 : 0);
  } else if (len == 13 && payload[0] == kCtlDepose) {
    const uint64_t e = get_le64(payload + 1);
    const uint32_t leader = get_le32(payload + 9);
    if (e > epoch_ && (!pending_depose_ || e > pending_depose_->epoch))
      pending_depose_ = PendingDepose{e, leader};
    body.push_back(1);
  } else {
    conn.dead = true;  // malformed request: dead connection, no reply
    return;
  }
  append_frame(conn.bufs.out, body.data(), body.size());
}

NodeStatus ReplicaNode::status_locked() const {
  NodeStatus s;
  s.role = role_;
  s.epoch = epoch_;
  if (role_ == NodeRole::kLeader) {
    s.leader_index = cfg_.index;
    s.lease_healthy = true;
    s.has_state = true;
    if (svc_ != nullptr) {
      const SpannerService& shard = svc_->shard_service(0);
      if (const ShardDurability* d = shard.durability())
        s.durable_version = d->durable_version();
      if (SpannerSnapshot::Ptr snap = shard.snapshot()) {
        s.applied_version = snap->version();
        s.applied_checksum = snapshot_content_checksum(
            snap->num_vertices(), snap->stretch(), snap->version(),
            snap->edge_keys());
      }
    }
  } else {
    s.leader_index = leader_index_;
    if (follower_ != nullptr) {
      s.has_state = follower_->has_state();
      s.applied_version = follower_->applied_version();
      s.applied_checksum = follower_->applied_checksum();
      s.durable_version = follower_->durable_version();
      s.resyncs = follower_->snapshot_resyncs();
      s.rejects = follower_->rejects();
    }
    s.lease_healthy =
        transport_ != nullptr && !transport_->peer_gone() &&
        Clock::now() - last_byte_rx_ <=
            std::chrono::milliseconds(cfg_.lease_ms);
  }
  return s;
}

// --- Node thread: ticks ----------------------------------------------------

void ReplicaNode::tick_locked(bool* want_election) {
  if (pending_depose_) {
    const PendingDepose d = *pending_depose_;
    pending_depose_.reset();
    if (d.epoch > epoch_) {
      if (role_ == NodeRole::kLeader) {
        step_down_locked(d.leader_index < cfg_.peers.size() ? d.leader_index
                                                            : cfg_.index);
      } else if (d.leader_index < cfg_.peers.size() &&
                 d.leader_index != leader_index_) {
        leader_index_ = d.leader_index;
        transport_.reset();  // redial at the announced leader
        lease_anchor_ = Clock::now();
      }
    }
  }
  if (role_ == NodeRole::kLeader) {
    for (const auto& [follower, on] : pending_partitions_)
      if (on) members_.erase(follower);
    pending_partitions_.clear();
    leader_tick_locked();
  } else {
    pending_partitions_.clear();
    follower_tick_locked(want_election);
  }
}

void ReplicaNode::leader_tick_locked() {
  if (repl_listener_ == nullptr || svc_ == nullptr) return;
  repl_listener_->poll();
  for (auto& a : repl_listener_->take_accepted()) {
    Member m;
    m.transport = std::move(a.transport);
    m.shipper = std::make_unique<LogShipper>(cfg_.fs, shard_dir(), epoch_,
                                             m.transport);
    m.last_heartbeat = Clock::now();
    // A reconnect replaces any stale member for the same id.
    members_.insert_or_assign(a.follower_id, std::move(m));
  }
  const ShardDurability* d = svc_->shard_service(0).durability();
  const uint64_t durable = d != nullptr ? d->durable_version() : 0;
  const auto now = Clock::now();
  uint64_t max_acked_epoch = 0;
  for (auto it = members_.begin(); it != members_.end();) {
    Member& m = it->second;
    m.transport->poll();
    m.shipper->pump(durable);
    max_acked_epoch = std::max(max_acked_epoch, m.shipper->acked_epoch());
    if (now - m.last_heartbeat >=
        std::chrono::milliseconds(cfg_.heartbeat_ms)) {
      m.transport->send_heartbeat(epoch_);
      m.last_heartbeat = now;
    }
    if (m.transport->peer_gone() || repl_listener_->is_refused(it->first))
      it = members_.erase(it);
    else
      ++it;
  }
  if (max_acked_epoch > epoch_) {
    // A follower acked a HIGHER epoch than ours: the group moved on while
    // we were away (SIGSTOP zombie). Who leads now is unknown from a
    // cursor — step down and let the discovery poll find out.
    step_down_locked(cfg_.index);
    return;
  }
  // Periodic DEPOSE to unsubscribed, unpartitioned peers: the rejoin hint
  // for crashed-and-restarted nodes and SIGCONT'd old leaders (it only
  // acts on receivers whose epoch is behind ours).
  if (now - last_depose_bcast_ >= std::chrono::milliseconds(cfg_.lease_ms)) {
    last_depose_bcast_ = now;
    for (uint32_t i = 0; i < cfg_.peers.size(); ++i) {
      if (i == cfg_.index || members_.count(i) != 0) continue;
      if (repl_listener_->is_refused(i)) continue;  // partitioned: stay cut
      send_depose(cfg_.peers[i], epoch_, cfg_.index);
    }
  }
}

void ReplicaNode::follower_tick_locked(bool* want_election) {
  const auto now = Clock::now();
  if (transport_ != nullptr && transport_->peer_gone()) transport_.reset();
  if (transport_ != nullptr) {
    transport_->poll();
    if (follower_ != nullptr) {
      follower_->pump();
      epoch_ = std::max(epoch_, follower_->epoch());
    }
    // Only bytes received AFTER the dial count as leader life: a refused
    // or dead-on-arrival connection must not look healthy just for being
    // freshly constructed.
    if (transport_->last_rx() != conn_born_) {
      last_byte_rx_ = transport_->last_rx();
      lease_anchor_ = std::max(lease_anchor_, last_byte_rx_);
    }
  } else if (leader_index_ != cfg_.index &&
             now - last_connect_attempt_ >=
                 std::chrono::milliseconds(8 * cfg_.tick_ms)) {
    last_connect_attempt_ = now;
    reconnect_locked();
  }
  if (now - lease_anchor_ > std::chrono::milliseconds(cfg_.lease_ms))
    *want_election = true;
}

void ReplicaNode::reconnect_locked() {
  const PeerAddr& leader = cfg_.peers[leader_index_];
  std::shared_ptr<SocketTransport> t = SocketTransport::connect(
      leader.host, leader.repl_port, cfg_.index, cfg_.transport);
  if (t == nullptr || t->peer_gone()) return;
  transport_ = std::move(t);
  // The follower binds its transport at construction: recover off our own
  // chain (newest checkpoint + tail — cheap) with the fresh pipe wired in.
  // The idempotent cursor protocol makes the re-advertise safe.
  follower_.reset();  // single writer per chain: close before recover reopens
  follower_ = FollowerReplica::recover(cfg_.fs, shard_dir(), cfg_.durability,
                                       transport_);
  epoch_ = std::max(epoch_, follower_->epoch());
  conn_born_ = transport_->last_rx();
  lease_anchor_ = Clock::now();  // pacing grace; liveness waits for bytes
}

// --- Role transitions ------------------------------------------------------

void ReplicaNode::become_follower_locked(uint32_t leader_index) {
  role_ = NodeRole::kFollower;
  leader_index_ =
      leader_index < cfg_.peers.size() ? leader_index : cfg_.index;
  transport_.reset();
  // Placeholder transport until the first dial succeeds; the invariant is
  // follower_ != nullptr in the follower role (status/election read it).
  follower_ = FollowerReplica::recover(cfg_.fs, shard_dir(), cfg_.durability,
                                       std::make_shared<ChannelTransport>());
  epoch_ = std::max(epoch_, follower_->epoch());
  lease_anchor_ = Clock::now();
  last_byte_rx_ = Clock::now();  // startup grace before the first dial
  last_connect_attempt_ = Clock::time_point{};
}

bool ReplicaNode::become_bootstrap_leader_locked() {
  ShardedConfig scfg;
  scfg.durability.enabled = true;
  scfg.durability.fs = cfg_.fs;
  scfg.durability.dir = cfg_.dir;
  scfg.durability.opts = cfg_.durability;
  ShardSpec spec;
  spec.kind = ShardSpec::Kind::kFullyDynamic;
  spec.n = cfg_.n;
  spec.fd = cfg_.spanner;
  const uint64_t sidecar = read_epoch_sidecar(*cfg_.fs, shard_dir());
  std::unique_ptr<ShardedSpannerService> svc = ShardedSpannerService::recover(
      {spec}, std::make_unique<VertexRangeRouter>(cfg_.n, 1), scfg);
  if (svc == nullptr) {
    // Nothing durable yet: a genesis leader over the empty graph.
    svc = ShardedSpannerService::single_graph(cfg_.n, {}, 1, cfg_.spanner,
                                              scfg);
    if (svc == nullptr) return false;
  }
  svc_ = std::move(svc);
  // Restart = rebase (recovery rebuilt the edge set), so mint a fresh
  // epoch past anything this chain ever shipped under: survivors resync.
  epoch_ = next_epoch(sidecar, cfg_.index, cfg_.peers.size());
  persist_epoch_locked();
  return start_leader_servers_locked();
}

bool ReplicaNode::start_leader_servers_locked() {
  const PeerAddr& self = cfg_.peers[cfg_.index];
  repl_listener_ = std::make_unique<ReplicationListener>(cfg_.transport);
  if (!repl_listener_->start(self.host, self.repl_port)) {
    repl_listener_.reset();
    return false;
  }
  net::NetServerConfig ncfg;
  ncfg.bind_addr = self.host;
  ncfg.port = self.client_port;
  net_server_ = std::make_unique<net::NetServer>(*svc_, ncfg);
  if (!net_server_->start()) {
    net_server_.reset();
    repl_listener_->stop();
    repl_listener_.reset();
    return false;
  }
  members_.clear();
  role_ = NodeRole::kLeader;
  leader_index_ = cfg_.index;
  follower_.reset();
  transport_.reset();
  last_depose_bcast_ = Clock::now();
  return true;
}

void ReplicaNode::promote_locked(uint64_t max_epoch_seen) {
  follower_.reset();  // close the chain before recover reopens it
  transport_.reset();
  ShardedConfig scfg;
  scfg.durability.enabled = true;
  scfg.durability.fs = cfg_.fs;
  scfg.durability.dir = cfg_.dir;
  scfg.durability.opts = cfg_.durability;
  ShardSpec spec;
  spec.kind = ShardSpec::Kind::kFullyDynamic;
  spec.n = cfg_.n;
  spec.fd = cfg_.spanner;
  std::unique_ptr<ShardedSpannerService> svc = ShardedSpannerService::recover(
      {spec}, std::make_unique<VertexRangeRouter>(cfg_.n, 1), scfg);
  if (svc == nullptr) {
    // The chain lost its checkpoint between election and promotion (media
    // death mid-failover). Honest admission: stay a follower; the next
    // election sees has_state = false and picks someone who can run.
    become_follower_locked(cfg_.index);
    return;
  }
  svc_ = std::move(svc);
  epoch_ = next_epoch(std::max(max_epoch_seen, epoch_), cfg_.index,
                      cfg_.peers.size());
  persist_epoch_locked();
  if (!start_leader_servers_locked()) {
    svc_.reset();
    become_follower_locked(cfg_.index);
    return;
  }
  // Depose the old leader (best-effort — a stopped process reads it from
  // its accept backlog on SIGCONT) and point the losers here.
  for (uint32_t i = 0; i < cfg_.peers.size(); ++i)
    if (i != cfg_.index) send_depose(cfg_.peers[i], epoch_, cfg_.index);
}

void ReplicaNode::step_down_locked(uint32_t new_leader_index) {
  if (net_server_ != nullptr) {
    net_server_->stop();
    net_server_.reset();
  }
  if (repl_listener_ != nullptr) {
    repl_listener_->stop();
    repl_listener_.reset();
  }
  members_.clear();
  svc_.reset();  // unflushed queue drops; the durable prefix is on disk
  become_follower_locked(new_leader_index);
  if (leader_index_ == cfg_.index) {
    // Deposed without being told by whom: expire the lease now so the next
    // tick runs the discovery poll instead of waiting a full lease.
    lease_anchor_ =
        Clock::now() - std::chrono::milliseconds(2 * cfg_.lease_ms);
  }
}

// --- The leader-loss procedure ---------------------------------------------

void ReplicaNode::run_election() {
  uint64_t my_epoch = 0;
  CandidateStatus mine;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_ || role_ != NodeRole::kFollower || follower_ == nullptr)
      return;
    my_epoch = epoch_;
    mine.has_state = follower_->has_state();
    mine.durable_version = follower_->durable_version();
    lease_anchor_ = Clock::now();  // one lease of grace per attempt
  }

  // Poll with mu_ RELEASED: our ctl thread must keep answering the peers
  // that are polling us right back (see the class comment).
  const size_t fleet = cfg_.peers.size();
  std::vector<std::optional<NodeStatus>> st(fleet);
  for (size_t i = 0; i < fleet; ++i)
    if (i != cfg_.index) st[i] = poll_status(cfg_.peers[i], cfg_.peer_timeout_ms);

  std::lock_guard<std::mutex> lk(mu_);
  if (!running_ || role_ != NodeRole::kFollower) return;
  if (pending_depose_ && pending_depose_->epoch > my_epoch)
    return;  // a newer leader announced itself mid-poll; the tick handles it

  // Step 1: somebody still leads at our epoch or later — adopt, never
  // usurp. This is the partition safety net: our subscribe may be refused
  // while the leader's control port stays reachable.
  int leader = -1;
  uint64_t leader_epoch = 0;
  for (size_t i = 0; i < fleet; ++i) {
    if (!st[i] || st[i]->role != NodeRole::kLeader) continue;
    if (st[i]->epoch < my_epoch) continue;  // deposed-epoch zombie
    if (leader < 0 || st[i]->epoch > leader_epoch) {
      leader = static_cast<int>(i);
      leader_epoch = st[i]->epoch;
    }
  }
  const auto now = Clock::now();
  if (leader >= 0) {
    leader_index_ = static_cast<uint32_t>(leader);
    transport_.reset();  // our pipe was silent regardless: force a redial
    lease_anchor_ = now;
    return;
  }

  // Step 2: longest durably-verified log over every reachable follower.
  // The candidate vector is node-indexed, so every node that reaches the
  // same peers computes the same winner.
  std::vector<CandidateStatus> candidates(fleet);
  uint64_t max_epoch = my_epoch;
  candidates[cfg_.index] = mine;
  for (size_t i = 0; i < fleet; ++i) {
    if (i == cfg_.index || !st[i]) continue;
    max_epoch = std::max(max_epoch, st[i]->epoch);
    if (st[i]->role == NodeRole::kFollower)
      candidates[i] = CandidateStatus{st[i]->has_state, st[i]->durable_version};
  }
  const std::optional<Election> won = elect_longest_log(candidates);
  lease_anchor_ = now;
  if (!won) return;  // nobody can run; retry next lease
  if (won->winner == cfg_.index) {
    promote_locked(max_epoch);
  } else {
    leader_index_ = static_cast<uint32_t>(won->winner);
    transport_.reset();  // dial the winner as soon as it binds
  }
}

void ReplicaNode::persist_epoch_locked() {
  // Same 12-byte sidecar FollowerReplica persists (follower.cpp): lost or
  // torn reads back as epoch 0, which only ever forces a resync.
  std::vector<uint8_t> b;
  put_le64(b, epoch_);
  put_le32(b, crc32c(b.data(), 8));
  std::unique_ptr<FsFile> f = cfg_.fs->create(shard_dir() + "/epoch");
  if (f != nullptr && f->append(b.data(), b.size())) f->sync();
}

// --- Control-plane clients -------------------------------------------------

std::optional<NodeStatus> ReplicaNode::poll_status(const PeerAddr& peer,
                                                   uint32_t timeout_ms) {
  const std::vector<uint8_t> req{kCtlStatus};
  const auto body = ctl_roundtrip(peer, req, timeout_ms, /*want_reply=*/true);
  if (!body) return std::nullopt;
  NodeStatus s;
  if (!decode_status(body->data(), body->size(), &s)) return std::nullopt;
  return s;
}

bool ReplicaNode::request_partition(const PeerAddr& peer,
                                    uint32_t follower_index, bool on,
                                    uint32_t timeout_ms) {
  std::vector<uint8_t> req{kCtlPartition};
  put_le32(req, follower_index);
  req.push_back(on ? 1 : 0);
  const auto body = ctl_roundtrip(peer, req, timeout_ms, /*want_reply=*/true);
  return body && body->size() == 1 && (*body)[0] == 1;
}

void ReplicaNode::send_depose(const PeerAddr& peer, uint64_t new_epoch,
                              uint32_t new_leader_index) {
  std::vector<uint8_t> req{kCtlDepose};
  put_le64(req, new_epoch);
  put_le32(req, new_leader_index);
  (void)ctl_roundtrip(peer, req, kDeposeTimeoutMs, /*want_reply=*/false);
}

}  // namespace parspan
