#include "replication/socket_transport.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

namespace parspan {

namespace {

using net::ConnBufs;
using net::IoStatus;

constexpr size_t kCursorBodySize = 8 + 8 + 1;   // epoch | version | need
constexpr size_t kHeartbeatBodySize = 8;        // epoch
constexpr size_t kSubscribeBodySize = 4;        // follower_id
// A half-open dialer gets this long to produce its subscribe frame before
// the listener reclaims the fd — hostile peers must not park fds forever.
constexpr auto kHandshakeTimeout = std::chrono::seconds(5);

void append_wire_frame(std::vector<uint8_t>& out, WireKind kind,
                       const uint8_t* body, size_t len) {
  std::vector<uint8_t> payload;
  payload.reserve(1 + len);
  payload.push_back(static_cast<uint8_t>(kind));
  payload.insert(payload.end(), body, body + len);
  append_frame(out, payload.data(), payload.size());
}

}  // namespace

void encode_ship_msg(std::vector<uint8_t>& out, const ShipFrame& frame) {
  append_wire_frame(out, WireKind::kShip, frame.bytes.data(),
                    frame.bytes.size());
}

void encode_cursor_msg(std::vector<uint8_t>& out, const ReplicaCursor& cursor) {
  std::vector<uint8_t> body;
  body.reserve(kCursorBodySize);
  put_le64(body, cursor.epoch);
  put_le64(body, cursor.version);
  body.push_back(cursor.need_snapshot ? 1 : 0);
  append_wire_frame(out, WireKind::kCursor, body.data(), body.size());
}

void encode_heartbeat_msg(std::vector<uint8_t>& out, uint64_t epoch) {
  std::vector<uint8_t> body;
  body.reserve(kHeartbeatBodySize);
  put_le64(body, epoch);
  append_wire_frame(out, WireKind::kHeartbeat, body.data(), body.size());
}

void encode_subscribe_msg(std::vector<uint8_t>& out, uint32_t follower_id) {
  std::vector<uint8_t> body;
  body.reserve(kSubscribeBodySize);
  put_le32(body, follower_id);
  append_wire_frame(out, WireKind::kSubscribe, body.data(), body.size());
}

// --- SocketTransport --------------------------------------------------------

SocketTransport::SocketTransport(int fd, SocketTransportConfig cfg,
                                 std::vector<uint8_t> preread)
    : fd_(fd), cfg_(cfg), last_rx_(Clock::now()) {
  bufs_.in = std::move(preread);
  std::lock_guard<std::mutex> lk(mu_);
  // Bytes the listener over-read past the handshake are messages this
  // transport owns; parse them as if just received.
  if (!bufs_.in.empty()) parse_locked();
}

SocketTransport::~SocketTransport() {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::shared_ptr<SocketTransport> SocketTransport::connect(
    const std::string& host, uint16_t port, uint32_t follower_id,
    SocketTransportConfig cfg) {
  const int fd = net::tcp_connect(host, port, /*nonblocking=*/true);
  if (fd < 0) return nullptr;
  auto t = std::make_shared<SocketTransport>(fd, cfg);
  // The subscribe frame is tiny and the socket buffer fresh: staging plus
  // one flush delivers it; any unlikely remainder rides the next poll.
  std::lock_guard<std::mutex> lk(t->mu_);
  encode_subscribe_msg(t->bufs_.out, follower_id);
  t->flush_locked();
  return t;
}

void SocketTransport::fail_locked() {
  peer_gone_ = true;
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  // Staged output can never be sent; inbound messages already CRC-verified
  // stay deliverable (they were good before the stream died).
  bufs_.out.clear();
  bufs_.out_off = 0;
}

void SocketTransport::parse_locked() {
  while (!peer_gone_) {
    FrameView fv;
    const FrameParse p = net::next_frame(bufs_, cfg_.max_frame_payload, &fv);
    if (p == FrameParse::kNeedMore) break;
    if (p == FrameParse::kBad || fv.len < 1) {
      fail_locked();  // torn-tail rule: no resync scanning
      return;
    }
    const uint8_t* body = fv.payload + 1;
    const size_t len = fv.len - 1;
    switch (static_cast<WireKind>(fv.payload[0])) {
      case WireKind::kShip: {
        ShipFrame f;
        f.bytes.assign(body, body + len);
        frames_in_.push_back(std::move(f));
        break;
      }
      case WireKind::kCursor: {
        if (len != kCursorBodySize) {
          fail_locked();
          return;
        }
        ReplicaCursor c;
        c.epoch = get_le64(body);
        c.version = get_le64(body + 8);
        c.need_snapshot = body[16] != 0;
        cursors_in_.push_back(c);
        break;
      }
      case WireKind::kHeartbeat: {
        if (len != kHeartbeatBodySize) {
          fail_locked();
          return;
        }
        last_heartbeat_epoch_ = get_le64(body);
        break;
      }
      case WireKind::kSubscribe:
        // Subscribes only exist during the listener handshake; one here
        // is a confused or hostile peer.
        fail_locked();
        return;
      default:
        fail_locked();
        return;
    }
    net::consume_frame(bufs_, fv);
  }
  net::finish_parse(bufs_);
}

void SocketTransport::pump_locked() {
  if (peer_gone_ || fd_ < 0) return;
  const size_t before = bufs_.in.size();
  const IoStatus st = net::read_to_buffer(fd_, bufs_, cfg_.max_frame_payload);
  if (bufs_.in.size() > before) last_rx_ = Clock::now();
  if (st == IoStatus::kError || st == IoStatus::kOverflow) {
    fail_locked();
    return;
  }
  parse_locked();
  // EOF: everything buffered was parsed above; the stream is over.
  if (st == IoStatus::kEof && !peer_gone_) fail_locked();
}

void SocketTransport::flush_locked() {
  if (peer_gone_ || fd_ < 0) return;
  if (net::flush_writes(fd_, bufs_) == IoStatus::kError) {
    fail_locked();
    return;
  }
  if (bufs_.out_pending() > cfg_.max_buffered_bytes) {
    // The peer stopped reading (SIGSTOP, wedge): bounded memory beats an
    // unbounded backlog — the lease already decided this peer's fate.
    fail_locked();
  }
}

void SocketTransport::send_frame(ShipFrame frame) {
  std::lock_guard<std::mutex> lk(mu_);
  if (peer_gone_) return;
  encode_ship_msg(bufs_.out, frame);
  flush_locked();
}

std::optional<ShipFrame> SocketTransport::recv_frame() {
  std::lock_guard<std::mutex> lk(mu_);
  pump_locked();
  if (frames_in_.empty()) return std::nullopt;
  ShipFrame f = std::move(frames_in_.front());
  frames_in_.pop_front();
  return f;
}

void SocketTransport::send_cursor(const ReplicaCursor& cursor) {
  std::lock_guard<std::mutex> lk(mu_);
  if (peer_gone_) return;
  encode_cursor_msg(bufs_.out, cursor);
  flush_locked();
}

std::optional<ReplicaCursor> SocketTransport::recv_cursor() {
  std::lock_guard<std::mutex> lk(mu_);
  pump_locked();
  if (cursors_in_.empty()) return std::nullopt;
  ReplicaCursor c = cursors_in_.front();
  cursors_in_.pop_front();
  return c;
}

void SocketTransport::send_heartbeat(uint64_t epoch) {
  std::lock_guard<std::mutex> lk(mu_);
  if (peer_gone_) return;
  encode_heartbeat_msg(bufs_.out, epoch);
  flush_locked();
}

void SocketTransport::poll() {
  std::lock_guard<std::mutex> lk(mu_);
  pump_locked();
  flush_locked();
}

bool SocketTransport::peer_gone() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peer_gone_;
}

SocketTransport::Clock::time_point SocketTransport::last_rx() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_rx_;
}

uint64_t SocketTransport::last_heartbeat_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_heartbeat_epoch_;
}

// --- ReplicationListener ----------------------------------------------------

ReplicationListener::ReplicationListener(SocketTransportConfig cfg)
    : cfg_(cfg) {}

ReplicationListener::~ReplicationListener() { stop(); }

bool ReplicationListener::start(const std::string& bind_addr, uint16_t port) {
  std::lock_guard<std::mutex> lk(mu_);
  if (listen_fd_ >= 0) return false;
  listen_fd_ = net::tcp_listen(bind_addr, port, /*backlog=*/64, &port_);
  return listen_fd_ >= 0;
}

void ReplicationListener::stop() {
  std::lock_guard<std::mutex> lk(mu_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (Pending& p : pending_)
    if (p.fd >= 0) ::close(p.fd);
  pending_.clear();
  accepted_.clear();  // shared_ptr transports close their own fds
}

void ReplicationListener::poll() {
  std::lock_guard<std::mutex> lk(mu_);
  if (listen_fd_ < 0) return;
  const auto now = Clock::now();
  for (;;) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;  // EAGAIN, fd exhaustion, transient — next poll
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    pending_.push_back(Pending{fd, {}, now});
  }
  for (size_t i = 0; i < pending_.size();) {
    Pending& p = pending_[i];
    const IoStatus st = net::read_to_buffer(p.fd, p.bufs, cfg_.max_frame_payload);
    bool done = st == IoStatus::kEof || st == IoStatus::kError ||
                st == IoStatus::kOverflow;
    if (!done) {
      FrameView fv;
      const FrameParse pr = net::next_frame(p.bufs, cfg_.max_frame_payload, &fv);
      if (pr == FrameParse::kOk) {
        done = true;  // the fd is either adopted or closed below
        const bool is_subscribe =
            fv.len == 1 + kSubscribeBodySize &&
            fv.payload[0] == static_cast<uint8_t>(WireKind::kSubscribe);
        if (is_subscribe) {
          const uint32_t id = get_le32(fv.payload + 1);
          net::consume_frame(p.bufs, fv);
          if (!std::count(refused_.begin(), refused_.end(), id)) {
            // Hand any over-read bytes to the transport with the fd.
            std::vector<uint8_t> leftover(p.bufs.in.begin() +
                                              ptrdiff_t(p.bufs.in_off),
                                          p.bufs.in.end());
            accepted_.push_back(Accepted{
                id, std::make_shared<SocketTransport>(p.fd, cfg_,
                                                      std::move(leftover))});
            p.fd = -1;  // ownership moved
          }
        }
        // Non-subscribe first frame: hostile, closed below.
      } else if (pr == FrameParse::kBad) {
        done = true;
      } else {
        done = now - p.since > kHandshakeTimeout;  // half-open squatter
      }
    }
    if (done) {
      if (p.fd >= 0) ::close(p.fd);
      pending_.erase(pending_.begin() + ptrdiff_t(i));
    } else {
      ++i;
    }
  }
}

std::vector<ReplicationListener::Accepted> ReplicationListener::take_accepted() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Accepted> out;
  out.swap(accepted_);
  return out;
}

void ReplicationListener::set_refused(uint32_t follower_id, bool refused) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = std::find(refused_.begin(), refused_.end(), follower_id);
  if (refused && it == refused_.end()) refused_.push_back(follower_id);
  if (!refused && it != refused_.end()) refused_.erase(it);
}

bool ReplicationListener::is_refused(uint32_t follower_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return std::count(refused_.begin(), refused_.end(), follower_id) > 0;
}

}  // namespace parspan
