// ReplicaNode: one replica process's whole control loop (DESIGN.md §14.2)
// — the library that tools/replicad wraps in a main() and the lease tests
// drive in-process.
//
// A node is always in exactly one role:
//
//   LEADER    owns a 1-shard durability-enabled ShardedSpannerService,
//             serves clients through NetServer, accepts followers on a
//             ReplicationListener, and pumps one LogShipper per subscribed
//             follower against the shard's durable watermark. Heartbeats
//             ride the frame stream whenever it would otherwise go quiet.
//
//   FOLLOWER  runs a FollowerReplica over a SocketTransport dialed at the
//             current leader, with its own WAL/checkpoint chain at
//             <dir>/shard-0 (the exact path a leader-role service of this
//             dir would log to — promotion is a recovery of the same
//             chain, not a data migration).
//
// Failure detection is lease-based (§14.3): a follower whose transport
// delivers no bytes for lease_ms (heartbeats guarantee a minimum byte
// rate from a live leader) declares the lease expired and runs the
// LEADER-LOSS procedure:
//
//   1. poll every peer's control port. If any reachable peer claims the
//      leader role at an epoch >= ours, adopt it and stand down — this is
//      what keeps a PARTITIONED follower (listener refuses its subscribe,
//      control plane still reachable) from usurping a live leader;
//   2. otherwise run elect_longest_log over the reachable followers'
//      claimed (has_state, durable_version) — every node evaluates the
//      same deterministic rule over the same node-indexed candidate
//      vector, so concurrent expiries agree on the winner;
//   3. the winner promotes itself: close the follower chain, rebuild a
//      full service via ShardedSpannerService::recover on that chain,
//      bump the epoch past every epoch seen, then start listener +
//      NetServer. Losers point their reconnect loop at the winner.
//
// Epoch fencing ends the deposed leader: survivors drop its frames
// (stale epoch), and the new leader broadcasts a DEPOSE control message —
// a leader receiving one with a higher epoch steps down into the follower
// role on its own chain (a SIGCONT'd zombie rejoins the group instead of
// shipping into the void).
//
// The control protocol (one tiny frame.hpp-framed request per connection)
// is the only cross-node channel besides replication itself: STATUS
// (role/epoch/versions/checksum — chaosctl's oracle and the election's
// candidate claims), PARTITION (leader-side subscribe refusal — the
// harness's iptables-free network cut), DEPOSE. It is served on its OWN
// thread, and the election's peer polling runs with the node mutex
// RELEASED: two followers whose leases expire together poll each other
// concurrently, and if each served ctl only from its (busy) node loop,
// both polls would time out, each would see a candidate set of one, and
// both would crown themselves. Answering status while polling is what
// makes concurrent expiries converge on one winner.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/server.hpp"
#include "replication/follower.hpp"
#include "replication/log_shipper.hpp"
#include "replication/socket_transport.hpp"
#include "service/sharded_service.hpp"

namespace parspan {

/// One node's advertised endpoints. All three ports are fixed up front
/// (node i of a replicad fleet uses base+3i..base+3i+2): any follower may
/// later be promoted, so its listener ports must be known to every peer
/// before it binds them.
struct PeerAddr {
  std::string host = "127.0.0.1";
  uint16_t ctl_port = 0;     // control protocol (always bound)
  uint16_t repl_port = 0;    // replication listener (bound while leader)
  uint16_t client_port = 0;  // NetServer front door (bound while leader)
};

enum class NodeRole : uint8_t { kFollower = 1, kLeader = 2 };

/// The control-plane STATUS reply — chaosctl's convergence oracle and the
/// election's candidate claim, in one struct.
struct NodeStatus {
  NodeRole role = NodeRole::kFollower;
  uint64_t epoch = 0;
  uint64_t applied_version = 0;
  uint64_t applied_checksum = 0;
  uint64_t durable_version = 0;
  bool lease_healthy = false;
  bool has_state = false;
  uint32_t leader_index = 0;  // who this node believes leads
  uint64_t resyncs = 0;
  uint64_t rejects = 0;
};

struct ReplicaNodeConfig {
  uint32_t index = 0;            // this node's slot in `peers`
  std::vector<PeerAddr> peers;   // the full static topology, by node index
  std::shared_ptr<Fs> fs;        // PosixFs in replicad; any Fs in tests
  std::string dir;               // node root; the chain lives at dir/shard-0
  bool start_as_leader = false;
  uint32_t initial_leader = 0;   // who a starting follower dials first

  size_t n = 256;                          // vertex space
  FullyDynamicSpannerConfig spanner;       // backend config (k, seed, ...)
  DurabilityOptions durability;            // kEveryRecord by default

  uint32_t tick_ms = 2;          // control-loop cadence
  uint32_t heartbeat_ms = 50;    // max leader quiet time per follower
  uint32_t lease_ms = 400;       // follower's leader-death threshold
  uint32_t peer_timeout_ms = 250;  // control-plane poll timeout
  SocketTransportConfig transport;
};

class ReplicaNode {
 public:
  explicit ReplicaNode(ReplicaNodeConfig cfg);
  ~ReplicaNode();

  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  /// Binds the control listener (plus, for a bootstrap leader, service +
  /// replication listener + front door), recovers any local chain, and
  /// spawns the node thread. False when a port cannot be bound or a
  /// bootstrap-leader chain recovery fails outright.
  bool start();

  /// Stops the node thread and every server/listener. Idempotent. The
  /// durable chain stays on disk — a later start() (or another node's
  /// election) picks it up.
  void stop();

  /// This node's current status, as the control plane would report it.
  NodeStatus status() const;
  uint32_t index() const { return cfg_.index; }
  NodeRole role() const;
  uint64_t epoch() const;

  // --- Control-plane client helpers (blocking, bounded by timeout_ms) ----

  /// STATUS poll. nullopt when unreachable or silent past the timeout — a
  /// SIGSTOPped process accepts the connection (kernel backlog) but never
  /// answers, which is exactly "unreachable" for election purposes.
  static std::optional<NodeStatus> poll_status(const PeerAddr& peer,
                                               uint32_t timeout_ms);
  /// Leader-side partition switch for follower `follower_index`. False if
  /// the peer is unreachable or not the leader.
  static bool request_partition(const PeerAddr& peer, uint32_t follower_index,
                                bool on, uint32_t timeout_ms);
  /// Fire-and-forget DEPOSE (new_epoch, new_leader_index): delivered
  /// best-effort; a stopped process reads it whenever it resumes.
  static void send_depose(const PeerAddr& peer, uint64_t new_epoch,
                          uint32_t new_leader_index);

 private:
  struct CtlConn;   // one in-flight control-plane connection
  struct Member;    // one subscribed follower, leader side

  using Clock = std::chrono::steady_clock;

  void run();       // node thread: role ticks + elections
  void ctl_run();   // ctl thread: serves the control protocol
  void tick_locked(bool* want_election);
  void leader_tick_locked();
  void follower_tick_locked(bool* want_election);
  void serve_ctl();
  void handle_ctl_request(CtlConn& conn, const uint8_t* payload,
                          uint32_t len);
  NodeStatus status_locked() const;

  bool become_bootstrap_leader_locked();
  void become_follower_locked(uint32_t leader_index);
  /// The leader-loss procedure. Takes and releases mu_ itself: the peer
  /// polls in the middle run unlocked so this node's ctl thread can keep
  /// answering the peers that are polling it right back.
  void run_election();
  void promote_locked(uint64_t max_epoch_seen);
  void step_down_locked(uint32_t new_leader_index);
  void reconnect_locked();
  bool start_leader_servers_locked();
  std::string shard_dir() const { return cfg_.dir + "/shard-0"; }
  void persist_epoch_locked();

  ReplicaNodeConfig cfg_;

  mutable std::mutex mu_;
  std::thread thread_;
  std::thread ctl_thread_;
  bool running_ = false;

  NodeRole role_ = NodeRole::kFollower;
  uint64_t epoch_ = 0;
  uint32_t leader_index_ = 0;

  // Control plane (always on, own thread).
  int ctl_fd_ = -1;
  std::vector<std::unique_ptr<CtlConn>> ctl_conns_;
  // Ctl-thread requests that need node-thread work, applied next tick.
  struct PendingDepose {
    uint64_t epoch = 0;
    uint32_t leader_index = 0;
  };
  std::optional<PendingDepose> pending_depose_;
  std::vector<std::pair<uint32_t, bool>> pending_partitions_;

  // Leader role.
  std::unique_ptr<ShardedSpannerService> svc_;
  std::unique_ptr<net::NetServer> net_server_;
  std::unique_ptr<ReplicationListener> repl_listener_;
  std::map<uint32_t, Member> members_;
  Clock::time_point last_depose_bcast_{};

  // Follower role.
  std::unique_ptr<FollowerReplica> follower_;
  std::shared_ptr<SocketTransport> transport_;
  // Election pacing vs leader liveness are SEPARATE clocks: lease_anchor_
  // earns grace from connects and election rounds (when the next election
  // may run); last_byte_rx_ moves only on genuinely received bytes (what
  // lease_healthy reports). A partitioned follower retries dials forever —
  // its anchor keeps moving — but its byte clock goes stale and stays so.
  Clock::time_point lease_anchor_{};
  Clock::time_point last_byte_rx_{};
  Clock::time_point conn_born_{};  // transport_->last_rx() at dial time
  Clock::time_point last_connect_attempt_{};
};

}  // namespace parspan
