// SocketTransport: ReplicationTransport over a real TCP connection
// (DESIGN.md §14.1), so LogShipper and FollowerReplica pump across
// processes unchanged.
//
// Wire layout — one more framing layer, nothing re-invented: every message
// is a durability/frame.hpp frame (`payload_len u32 | crc32c u32 |
// payload`) whose payload is `kind u8 | body`:
//
//   kShip      body = one ShipFrame, byte-for-byte the frozen in-process
//              format (`type u8 | epoch u64 | len u32 | crc u32 |
//              payload`). The ship CRC still travels and is still checked
//              by the follower — the outer frame only provides streaming
//              delimitation and first-line integrity; a frame that crosses
//              a process boundary is verified twice, exactly like a WAL
//              record read back from disk.
//   kCursor    body = epoch u64 | version u64 | need_snapshot u8 — the
//              control-plane ack, serialized here because structs can no
//              longer cross by reference.
//   kHeartbeat body = epoch u64. Leader liveness when there is nothing to
//              ship; any received byte feeds the lease, heartbeats just
//              guarantee a minimum byte rate.
//   kSubscribe body = follower_id u32. First message on every
//              follower-dialed connection; the listener routes the
//              connection (and applies partitions) by this id before any
//              replication traffic flows.
//
// Failure semantics follow the front door's trust boundary: a torn or
// corrupt OUTER frame, an unknown kind, a wrong-sized body, or an input/
// output buffer exceeding its cap marks the peer gone and the fd dead —
// no resync scanning (the WAL's torn-tail rule). Peer-gone is not an
// error state the protocol must handle delicately: the cursor protocol is
// idempotent, so the healing move is always "dial a fresh connection and
// advertise the cursor again".
//
// Non-blocking everywhere: send_* stages bytes and opportunistically
// flushes; recv_* drains the socket and parses; nothing ever blocks the
// pumping thread. A SIGSTOPped or wedged peer therefore costs the leader
// at most max_buffered_bytes of staging memory, never a stalled shipping
// loop — the lease, not the socket, decides when the peer is dead.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/framed_conn.hpp"
#include "replication/transport.hpp"

namespace parspan {

/// Outer-frame message kinds (the `kind u8` discriminator).
enum class WireKind : uint8_t {
  kShip = 1,
  kCursor = 2,
  kHeartbeat = 3,
  kSubscribe = 4,
};

/// Message encoders, exposed for tests (golden bytes, hostile sweeps) and
/// for the listener's subscribe handshake. Each appends one sealed outer
/// frame to `out`.
void encode_ship_msg(std::vector<uint8_t>& out, const ShipFrame& frame);
void encode_cursor_msg(std::vector<uint8_t>& out, const ReplicaCursor& cursor);
void encode_heartbeat_msg(std::vector<uint8_t>& out, uint64_t epoch);
void encode_subscribe_msg(std::vector<uint8_t>& out, uint32_t follower_id);

struct SocketTransportConfig {
  /// Outer-frame payload cap. Must admit the largest snapshot frame the
  /// leader can ship (a full-graph key list); 64 MiB of keys is far past
  /// any graph the benches or chaos harness build.
  uint32_t max_frame_payload = 64u << 20;
  /// Staged-output cap: a peer that stops reading (SIGSTOP mid-frame) is
  /// declared gone once this much output backs up, bounding the leader's
  /// memory — shipping to the other followers never stalls either way.
  size_t max_buffered_bytes = 64u << 20;
};

class SocketTransport final : public ReplicationTransport {
 public:
  using Clock = std::chrono::steady_clock;

  /// Takes ownership of a connected NON-BLOCKING fd. `preread` is any
  /// bytes already consumed from the socket past the handshake (the
  /// listener may over-read past the subscribe frame); they are parsed as
  /// if just received.
  explicit SocketTransport(int fd, SocketTransportConfig cfg = {},
                           std::vector<uint8_t> preread = {});
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Follower-side dial: blocking connect, then the subscribe message with
  /// this follower's id, then non-blocking forever after. nullptr when the
  /// leader is unreachable — callers retry on their reconnect cadence.
  static std::shared_ptr<SocketTransport> connect(const std::string& host,
                                                  uint16_t port,
                                                  uint32_t follower_id,
                                                  SocketTransportConfig cfg = {});

  // --- ReplicationTransport ----------------------------------------------
  void send_frame(ShipFrame frame) override;
  std::optional<ShipFrame> recv_frame() override;
  void send_cursor(const ReplicaCursor& cursor) override;
  std::optional<ReplicaCursor> recv_cursor() override;

  /// Leader liveness signal for the follower's lease when the log is idle.
  void send_heartbeat(uint64_t epoch);

  /// One I/O round with no message: drain the socket (so last_rx moves and
  /// inbound messages queue) and push staged output. Call on every tick —
  /// recv_*/send_* also pump, poll() just guarantees progress on idle
  /// ticks.
  void poll();

  /// True once the connection is unusable: peer closed, socket error,
  /// corrupt frame, or buffer cap breached. Sticky — the healing path is a
  /// new connection, never this object.
  bool peer_gone() const;

  /// Instant of the most recent received byte (construction time before
  /// any traffic). The lease clock.
  Clock::time_point last_rx() const;

  /// Epoch carried by the most recent heartbeat (0 before any).
  uint64_t last_heartbeat_epoch() const;

 private:
  void parse_locked();
  void pump_locked();
  void flush_locked();
  void fail_locked();

  mutable std::mutex mu_;
  int fd_ = -1;
  SocketTransportConfig cfg_;
  net::ConnBufs bufs_;
  bool peer_gone_ = false;
  Clock::time_point last_rx_;
  uint64_t last_heartbeat_epoch_ = 0;
  std::deque<ShipFrame> frames_in_;
  std::deque<ReplicaCursor> cursors_in_;
};

/// Leader-side acceptor for replication connections, embedded next to
/// NetServer (same loopback process, its own port). Poll-driven from the
/// leader's replication tick — follower counts are small, so there is no
/// epoll machinery here, just non-blocking accepts and handshake reads.
///
/// A connection surfaces through take_accepted() only after its subscribe
/// frame arrives and its follower id passes the refusal set. Refusal IS
/// the partition mechanism (§14.3): chaosctl partitions a follower by
/// telling the leader to refuse its id — existing connections are for the
/// node layer to drop; this listener guarantees no NEW connection from
/// that id gets through until healed.
class ReplicationListener {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ReplicationListener(SocketTransportConfig cfg = {});
  ~ReplicationListener();

  ReplicationListener(const ReplicationListener&) = delete;
  ReplicationListener& operator=(const ReplicationListener&) = delete;

  /// Binds and listens. 0 = ephemeral (port() reports). False on failure.
  bool start(const std::string& bind_addr, uint16_t port);
  void stop();
  uint16_t port() const { return port_; }

  /// Accepts pending connections and advances handshakes. Call on the
  /// leader's replication tick.
  void poll();

  struct Accepted {
    uint32_t follower_id = 0;
    std::shared_ptr<SocketTransport> transport;
  };
  /// Drains connections whose handshake completed since the last call.
  std::vector<Accepted> take_accepted();

  /// While refused, a follower id's handshakes are closed on sight.
  void set_refused(uint32_t follower_id, bool refused);
  bool is_refused(uint32_t follower_id) const;

 private:
  struct Pending {
    int fd = -1;
    net::ConnBufs bufs;
    Clock::time_point since;
  };

  mutable std::mutex mu_;
  SocketTransportConfig cfg_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<Pending> pending_;
  std::vector<Accepted> accepted_;
  std::vector<uint32_t> refused_;
};

}  // namespace parspan
