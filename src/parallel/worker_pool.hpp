// WorkerPool: a fixed set of std::threads draining slot-addressed work with
// per-slot mutual exclusion (DESIGN.md §9.3).
//
// The pool owns nothing about the work itself — a slot is just an index a
// producer marks ready with notify(slot), and the pool guarantees that the
// user's drain function runs for that slot (i) at least once after every
// notify, and (ii) never on two threads at once for the same slot. That
// pair is exactly what the sharded ingestion layer needs: shard backends
// forbid concurrent update() calls, while distinct shards are fully
// independent and should drain on as many threads as are available.
//
// Lost-wakeup safety is a tiny per-slot state machine (kIdle → kQueued →
// kRunning → kIdle), with one extra state kRunningDirty for "notified while
// running": the drain function may miss work that arrived after it snapped
// the slot's queue, so a notify landing mid-run re-queues the slot when the
// run finishes instead of being dropped. The drain function's return value
// ("I left work behind") re-queues the same way, so a bounded drain can
// yield the thread between rounds without stranding its slot.
//
// Threads block on one condition variable when the ready deque is empty —
// an idle pool costs nothing. stop() (also run by the destructor) wakes
// everyone, lets in-flight drains finish, and joins; notify() after stop()
// is a no-op, so producers do not need to synchronize with teardown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parspan {

class WorkerPool {
 public:
  /// Drains one round of work for `slot`; returns true when the slot still
  /// has work left (it is re-queued immediately). Called with no locks
  /// held; never called concurrently for the same slot.
  using DrainFn = std::function<bool(size_t slot)>;

  WorkerPool(int num_threads, size_t num_slots, DrainFn drain)
      : drain_(std::move(drain)), state_(num_slots, kIdle) {
    if (num_threads < 1) num_threads = 1;
    threads_.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t)
      threads_.emplace_back([this] { run(); });
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() { stop(); }

  /// Marks `slot` ready. Any thread; cheap no-op when the slot is already
  /// queued. A notify that lands while the slot is mid-drain re-queues it
  /// afterwards, so work enqueued concurrently with a drain is never lost.
  void notify(size_t slot) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopped_) return;
      uint8_t& s = state_[slot];
      if (s == kIdle) {
        s = kQueued;
        ready_.push_back(slot);
      } else if (s == kRunning) {
        s = kRunningDirty;
        return;  // the running thread re-queues on completion
      } else {
        return;  // already queued (or already dirty)
      }
    }
    cv_.notify_one();
  }

  /// Wakes all threads, waits for in-flight drains to finish, joins.
  /// Idempotent; queued-but-undrained slots are simply dropped (the sharded
  /// service flushes before tearing the pool down).
  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    for (auto& th : threads_) th.join();
    threads_.clear();
  }

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  enum : uint8_t { kIdle = 0, kQueued = 1, kRunning = 2, kRunningDirty = 3 };

  void run() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait(lk, [this] { return stopped_ || !ready_.empty(); });
      if (stopped_) return;
      size_t slot = ready_.front();
      ready_.pop_front();
      state_[slot] = kRunning;
      lk.unlock();
      bool more = drain_(slot);
      lk.lock();
      if (more || state_[slot] == kRunningDirty) {
        state_[slot] = kQueued;
        ready_.push_back(slot);
        // Another thread may pick the slot up; keep the pool saturated.
        cv_.notify_one();
      } else {
        state_[slot] = kIdle;
      }
    }
  }

  DrainFn drain_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<size_t> ready_;
  std::vector<uint8_t> state_;  // per-slot machine, guarded by mu_
  bool stopped_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace parspan
