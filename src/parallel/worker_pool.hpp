// WorkerPool: slot-addressed drain scheduling with per-slot mutual
// exclusion, executed on the process-wide work-stealing scheduler
// (DESIGN.md §9.3, §12.3).
//
// The pool owns nothing about the work itself — a slot is just an index a
// producer marks ready with notify(slot), and the pool guarantees that the
// user's drain function runs for that slot (i) at least once after every
// notify, and (ii) never on two threads at once for the same slot. That
// pair is exactly what the sharded ingestion layer needs: shard backends
// forbid concurrent update() calls, while distinct shards are fully
// independent and should drain on as many threads as are available.
//
// Since PR 8 the pool no longer spawns dedicated threads: each ready slot
// becomes a root task submitted to the Scheduler with the slot index as its
// affinity hint, so a shard keeps landing on the same worker (warm caches)
// until imbalance makes another worker steal it from the mailbox sweep.
// `num_threads` survives as the drain *concurrency cap* — at most that many
// slots run at once, the rest queue FIFO. A drain that calls parallel_for
// forks tasks into the same scheduler and its join loop helps execute them,
// so nested parallelism steals instead of oversubscribing — and makes
// progress even when every scheduler thread is occupied by a drain.
//
// Lost-wakeup safety is a tiny per-slot state machine (kIdle → kQueued →
// kRunning → kIdle), with one extra state kRunningDirty for "notified while
// running": the drain function may miss work that arrived after it snapped
// the slot's queue, so a notify landing mid-run re-queues the slot when the
// run finishes instead of being dropped. The drain function's return value
// ("I left work behind") re-queues the same way, so a bounded drain can
// yield between rounds without stranding its slot.
//
// stop() (also run by the destructor) marks the pool stopped, drops queued
// slots, and waits until every submitted drain task has finished touching
// the pool — a task submitted before stop() but not yet started observes
// stopped_ and exits without draining, so teardown never races a queued
// task's use of pool state. notify() after stop() is a no-op, so producers
// do not need to synchronize with teardown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "parallel/scheduler.hpp"

namespace parspan {

class WorkerPool {
 public:
  /// Drains one round of work for `slot`; returns true when the slot still
  /// has work left (it is re-queued immediately). Called with no locks
  /// held; never called concurrently for the same slot.
  using DrainFn = std::function<bool(size_t slot)>;

  WorkerPool(int num_threads, size_t num_slots, DrainFn drain)
      : drain_(std::move(drain)),
        cap_(num_threads < 1 ? 1 : num_threads),
        state_(num_slots, kIdle) {}

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() { stop(); }

  /// Marks `slot` ready. Any thread; cheap no-op when the slot is already
  /// queued. A notify that lands while the slot is mid-drain re-queues it
  /// afterwards, so work enqueued concurrently with a drain is never lost.
  void notify(size_t slot) {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    uint8_t& s = state_[slot];
    if (s == kIdle) {
      s = kQueued;
      ready_.push_back(slot);
      maybe_launch_locked();
    } else if (s == kRunning) {
      s = kRunningDirty;  // the running task re-queues on completion
    }  // else: already queued (or already dirty)
  }

  /// Drops queued slots, lets in-flight drains finish, and waits until no
  /// submitted task can touch the pool again. Idempotent (the sharded
  /// service flushes before tearing the pool down, so dropping queued
  /// slots loses nothing).
  void stop() {
    std::unique_lock<std::mutex> lk(mu_);
    if (!stopped_) {
      stopped_ = true;
      for (size_t slot : ready_) state_[slot] = kIdle;
      ready_.clear();
    }
    cv_.wait(lk, [this] { return inflight_ == 0; });
  }

  /// The drain concurrency cap (historical name: the pool used to own this
  /// many dedicated threads).
  int num_threads() const { return cap_; }

 private:
  enum : uint8_t { kIdle = 0, kQueued = 1, kRunning = 2, kRunningDirty = 3 };

  // Requires mu_. Counts a task as in-flight from SUBMISSION, not start:
  // stop() must outwait even tasks the scheduler has not run yet.
  void maybe_launch_locked() {
    while (!stopped_ && inflight_ < cap_ && !ready_.empty()) {
      size_t slot = ready_.front();
      ready_.pop_front();
      state_[slot] = kRunning;
      ++inflight_;
      Scheduler::instance().submit([this, slot] { run_slot(slot); },
                                   /*affinity=*/int(slot));
    }
  }

  void run_slot(size_t slot) {
    bool alive;
    {
      std::lock_guard<std::mutex> lk(mu_);
      alive = !stopped_;
    }
    bool more = alive && drain_(slot);
    std::lock_guard<std::mutex> lk(mu_);
    if (!stopped_ && (more || state_[slot] == kRunningDirty)) {
      state_[slot] = kQueued;
      ready_.push_back(slot);
    } else {
      state_[slot] = kIdle;
    }
    --inflight_;
    maybe_launch_locked();
    if (inflight_ == 0) cv_.notify_all();
    // Nothing after the lock releases: stop() may destroy the pool the
    // moment it observes inflight_ == 0.
  }

  DrainFn drain_;
  const int cap_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<size_t> ready_;
  std::vector<uint8_t> state_;  // per-slot machine, guarded by mu_
  int inflight_ = 0;            // submitted drain tasks not yet finished
  bool stopped_ = false;
};

}  // namespace parspan
