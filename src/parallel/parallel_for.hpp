// Work-depth style parallel loop primitives on the in-repo work-stealing
// scheduler (scheduler.hpp, DESIGN.md §12).
//
// The paper's algorithms are stated in the work-depth (PRAM) model; this
// layer realizes "for v in U in parallel" loops as fork-join range tasks:
//
//  * parallel_for uses lazy binary splitting — a range task splits off its
//    right half only while the worker's deque runs dry (thieves are keeping
//    up), so grain adapts to the actual parallel slack instead of a fixed
//    per-call-site chunk constant. A trip count of 1 calls f inline and
//    spawns zero tasks (pinned by SchedulerTest.TripCountOneSpawnsNothing).
//  * parallel_reduce combines over a reduction tree whose SHAPE depends
//    only on (n, grain) — never on the worker count or on stealing — so
//    non-commutative combiners (float sums) give byte-identical results
//    for every worker count, including 1 (the serial path walks the same
//    tree). `init` is folded exactly once, at the root.
//
// Exceptions thrown by loop bodies are captured (first one wins), remaining
// chunks are abandoned, and the exception rethrows at the call site once
// the loop's tasks have quiesced.
//
// PARSPAN_FORCE_SERIAL=1 survives only as a documented alias for
// PARSPAN_NUM_WORKERS=1 (serial loops); the scheduler's threads stay up and
// fully sanitizer-instrumented either way.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>

#include "parallel/scheduler.hpp"

namespace parspan {

/// Serial cutoff for the blocked primitives (scan/sort) and default reduce
/// grain: below this many iterations, scheduling overhead beats the win.
inline constexpr size_t kParGrain = 2048;

/// Auto-grain serial cutoff for parallel_for: an unhinted loop shorter than
/// this runs inline. Call sites with provably heavy bodies pass grain=1 to
/// force the task path regardless of trip count.
inline constexpr size_t kParForCutoff = 512;

namespace detail {

struct LoopCtx {
  std::atomic<size_t> pending{1};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::exception_ptr eptr;

  void record_exception() {
    {
      std::lock_guard<std::mutex> lk(err_mu);
      if (!eptr) eptr = std::current_exception();
    }
    failed.store(true, std::memory_order_release);
  }
  void finish_one() {
    if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
      pending.notify_all();
  }
  [[noreturn]] void rethrow() { std::rethrow_exception(eptr); }
};

template <typename F>
void run_range(LoopCtx& ctx, const F& f, size_t lo, size_t hi, size_t grain);

/// Heap-allocated right half of a split: the spawner does not wait for it,
/// so it owns its storage (freed in invoke).
template <typename F>
struct RangeTask {
  Task task;
  LoopCtx* ctx;
  const F* f;
  size_t lo, hi, grain;

  static void invoke(Task* t) {
    RangeTask* self = reinterpret_cast<RangeTask*>(t);
    LoopCtx& ctx = *self->ctx;
    const F& f = *self->f;
    size_t lo = self->lo, hi = self->hi, grain = self->grain;
    delete self;
    run_range(ctx, f, lo, hi, grain);
    ctx.finish_one();
  }
};

/// Lazy binary splitting: keep splitting the right half off while the
/// owner's deque is nearly empty (meaning thieves — or the owner's own join
/// loop — consume as fast as we produce); otherwise chew a grain-sized
/// chunk and re-check. Every index runs exactly once; only WHO runs a chunk
/// varies with stealing, which the deterministic-diff contract permits
/// (bodies are data-parallel with disjoint writes).
template <typename F>
void run_range(LoopCtx& ctx, const F& f, size_t lo, size_t hi, size_t grain) {
  Scheduler& s = Scheduler::instance();
  while (lo < hi) {
    if (ctx.failed.load(std::memory_order_acquire)) return;
    size_t n = hi - lo;
    if (n > grain && s.want_split()) {
      size_t mid = lo + n / 2;
      ctx.pending.fetch_add(1, std::memory_order_relaxed);
      auto* rt = new RangeTask<F>{
          {&RangeTask<F>::invoke}, &ctx, &f, mid, hi, grain};
      s.spawn(&rt->task);
      hi = mid;
      continue;
    }
    size_t end = std::min(lo + grain, hi);
    try {
      for (size_t i = lo; i < end; ++i) f(i);
    } catch (...) {
      ctx.record_exception();
      return;
    }
    lo = end;
  }
}

inline size_t auto_grain(size_t n, int p) {
  size_t g = n / (size_t(p) * 8);
  return std::clamp<size_t>(g, 1, 4096);
}

}  // namespace detail

/// parallel_for(lo, hi, f): applies f(i) for all i in [lo, hi).
///
/// grain = 0 (default) picks an adaptive grain and runs short loops
/// (< kParForCutoff) inline; an explicit grain both forces the task path
/// for any trip count above it and caps the smallest chunk — pass 1 for
/// few-iteration loops with heavy bodies (partition rebuilds, per-block
/// phases).
template <typename F>
void parallel_for(size_t lo, size_t hi, F&& f, size_t grain = 0) {
  if (hi <= lo) return;
  size_t n = hi - lo;
  if (n == 1) {  // zero tasks, by contract
    f(lo);
    return;
  }
  Scheduler& s = Scheduler::instance();
  int p = s.num_workers();
  size_t g = grain ? grain : detail::auto_grain(n, p);
  if (p <= 1 || n <= g || (grain == 0 && n < kParForCutoff)) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  detail::LoopCtx ctx;
  if (Scheduler::on_worker()) {
    detail::run_range(ctx, f, lo, hi, g);
    ctx.finish_one();
  } else {
    // External threads never execute loop bodies in parallel regions: they
    // root the loop on a worker (so nested helpers can steal) and sleep on
    // the pending counter (futex) until it quiesces.
    s.submit([&ctx, &f, lo, hi, g] {
      detail::run_range(ctx, f, lo, hi, g);
      ctx.finish_one();
    });
  }
  s.join(ctx.pending);
  if (ctx.eptr) ctx.rethrow();
}

namespace detail {

template <typename T, typename F, typename C>
struct ReduceCtx {
  const F* f;
  const C* comb;
  size_t grain;
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::exception_ptr eptr;

  void record_exception() {
    {
      std::lock_guard<std::mutex> lk(err_mu);
      if (!eptr) eptr = std::current_exception();
    }
    failed.store(true, std::memory_order_release);
  }
};

template <typename T, typename F, typename C>
T reduce_range(ReduceCtx<T, F, C>& ctx, size_t lo, size_t hi);

/// Stack-allocated right subtree: the parent always joins it before leaving
/// the frame, so no heap traffic on the reduce spine.
template <typename T, typename F, typename C>
struct ReduceChild {
  Task task;
  ReduceCtx<T, F, C>* ctx;
  size_t lo, hi;
  T result;
  std::atomic<size_t> pending;

  static void invoke(Task* t) {
    ReduceChild* self = reinterpret_cast<ReduceChild*>(t);
    self->result = reduce_range(*self->ctx, self->lo, self->hi);
    if (self->pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
      self->pending.notify_all();
  }
};

/// Fixed-shape reduction: split at the midpoint whenever n > grain — a
/// function of (n, grain) only. Whether the right subtree runs on this
/// thread or a thief changes nothing: both orders produce the same operand
/// values for the same combine() nodes.
template <typename T, typename F, typename C>
T reduce_range(ReduceCtx<T, F, C>& ctx, size_t lo, size_t hi) {
  if (ctx.failed.load(std::memory_order_acquire)) return T{};
  size_t n = hi - lo;
  if (n <= ctx.grain) {
    // Leaf folds seed from the first element so `init` is never counted
    // here (it folds exactly once, at the root of the public API).
    try {
      T acc = (*ctx.f)(lo);
      for (size_t i = lo + 1; i < hi; ++i) acc = (*ctx.comb)(acc, (*ctx.f)(i));
      return acc;
    } catch (...) {
      ctx.record_exception();
      return T{};
    }
  }
  size_t mid = lo + n / 2;
  Scheduler& s = Scheduler::instance();
  if (Scheduler::on_worker() && s.num_workers() > 1 && s.want_split()) {
    ReduceChild<T, F, C> child{
        {&ReduceChild<T, F, C>::invoke}, &ctx, mid, hi, T{}, {1}};
    s.spawn(&child.task);
    T left = reduce_range(ctx, lo, mid);
    s.join(child.pending);
    if (ctx.failed.load(std::memory_order_acquire)) return T{};
    return (*ctx.comb)(left, child.result);
  }
  T left = reduce_range(ctx, lo, mid);
  T right = reduce_range(ctx, mid, hi);
  if (ctx.failed.load(std::memory_order_acquire)) return T{};
  return (*ctx.comb)(left, right);
}

}  // namespace detail

/// parallel_reduce over [lo, hi): `f(i)` produces a value, `combine(a, b)`
/// merges, `init` folds exactly once. The reduction tree's shape depends
/// only on (n, grain), so results are byte-identical across worker counts —
/// including for non-commutative float sums (DESIGN.md §12.4).
template <typename T, typename F, typename C>
T parallel_reduce(size_t lo, size_t hi, T init, F&& f, C&& combine,
                  size_t grain = kParGrain) {
  if (hi <= lo) return init;
  size_t n = hi - lo;
  if (grain == 0) grain = 1;
  if (n <= grain) {
    T acc = init;
    for (size_t i = lo; i < hi; ++i) acc = combine(acc, f(i));
    return acc;
  }
  using Fd = std::decay_t<F>;
  using Cd = std::decay_t<C>;
  detail::ReduceCtx<T, Fd, Cd> ctx{&f, &combine, grain, {}, {}, {}};
  Scheduler& s = Scheduler::instance();
  T tree{};
  if (!Scheduler::on_worker() && s.num_workers() > 1) {
    // Root the tree on a worker; this thread sleeps until it finishes.
    std::atomic<size_t> pending{1};
    s.submit([&] {
      tree = detail::reduce_range(ctx, lo, hi);
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
        pending.notify_all();
    });
    s.join(pending);
  } else {
    tree = detail::reduce_range(ctx, lo, hi);
  }
  if (ctx.eptr) std::rethrow_exception(ctx.eptr);
  return combine(std::move(init), std::move(tree));
}

}  // namespace parspan
