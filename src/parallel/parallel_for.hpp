// Work-depth style parallel loop primitives on top of OpenMP.
//
// The paper's algorithms are stated in the work-depth (PRAM) model; this
// shared-memory layer realizes "for v in U in parallel" loops. Loops fall
// back to serial execution below a grain size so that tiny batches do not
// pay scheduling overhead, which also keeps unit tests deterministic under
// single-threaded runs.
#pragma once

#include <omp.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>

namespace parspan {

/// Default minimum number of iterations before a loop is parallelized.
inline constexpr size_t kParGrain = 2048;

/// True when PARSPAN_FORCE_SERIAL is set in the environment: every OpenMP
/// region degrades to its serial path, overriding set_num_workers. The
/// ThreadSanitizer CI job uses this — libgomp is uninstrumented (its futex
/// barriers are invisible to TSan, so any cross-region data handoff would
/// be a false positive), and serializing the *internal* parallelism aims
/// the checker at the real cross-thread surface: the service layer's
/// reader/writer std::threads (DESIGN.md §8.4).
inline bool force_serial() {
  static const bool v = [] {
    const char* e = std::getenv("PARSPAN_FORCE_SERIAL");
    return e != nullptr && *e != '\0' && *e != '0';
  }();
  return v;
}

/// Number of worker threads OpenMP will use.
inline int num_workers() {
  return force_serial() ? 1 : omp_get_max_threads();
}

/// Sets the number of worker threads (global; used by benchmarks to sweep
/// and by the determinism tests; a no-op under PARSPAN_FORCE_SERIAL).
inline void set_num_workers(int p) {
  if (!force_serial()) omp_set_num_threads(p);
}

/// parallel_for(lo, hi, f): applies f(i) for all i in [lo, hi).
/// Runs serially when the trip count is below `grain`. The dynamic chunk
/// adapts to the trip count (capped at 512) so that loops barely above
/// their grain — the cluster-cascade buckets, partition rebuild fan-out —
/// still spread across workers instead of landing in one 512-wide chunk.
template <typename F>
void parallel_for(size_t lo, size_t hi, F&& f, size_t grain = kParGrain) {
  if (hi <= lo) return;
  size_t n = hi - lo;
  if (n < grain || num_workers() <= 1) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  size_t chunk = n / (static_cast<size_t>(num_workers()) * 4);
  if (chunk < 1) chunk = 1;
  if (chunk > 512) chunk = 512;
#pragma omp parallel for schedule(dynamic, chunk)
  for (size_t i = lo; i < hi; ++i) f(i);
}

/// parallel_reduce over [lo, hi) with a commutative combiner.
/// `f(i)` produces a value; `combine(a, b)` merges; `init` is the identity.
template <typename T, typename F, typename C>
T parallel_reduce(size_t lo, size_t hi, T init, F&& f, C&& combine,
                  size_t grain = kParGrain) {
  if (hi <= lo) return init;
  size_t n = hi - lo;
  if (n < grain || num_workers() <= 1) {
    T acc = init;
    for (size_t i = lo; i < hi; ++i) acc = combine(acc, f(i));
    return acc;
  }
  // Each thread seeds its accumulator from its first element, not from
  // `init`: folding `init` into every per-thread accumulator (and again at
  // the end) would count a non-identity init p + 1 times.
  T result = init;
#pragma omp parallel
  {
    T local{};
    bool has_local = false;
#pragma omp for schedule(static) nowait
    for (size_t i = lo; i < hi; ++i) {
      local = has_local ? combine(local, f(i)) : f(i);
      has_local = true;
    }
    if (has_local) {
#pragma omp critical
      result = combine(result, local);
    }
  }
  return result;
}

}  // namespace parspan
