// In-repo work-stealing task scheduler — the single parallel substrate for
// every layer of the repo (DESIGN.md §12).
//
// PRs 1-5 ran two schedulers against each other: the work-depth loops
// (parallel_for / sort / scan) forked OpenMP teams while the sharded
// service drained through its own hand-rolled thread pool, so a shard
// drain that entered a parallel loop oversubscribed the machine, and
// libgomp's uninstrumented futex barriers forced the TSan CI job to
// serialize everything (`PARSPAN_FORCE_SERIAL`). This scheduler replaces
// both: one process-wide pool of workers executes loop tasks AND service
// drain tasks, nested fork-join steals instead of spawning, and every
// synchronization edge is std::atomic / std::mutex — fully visible to
// sanitizers, so the concurrency CI finally checks real interleavings.
//
// Structure (all in-process, no dependencies):
//  * per-worker Chase-Lev deques (owner pushes/pops the bottom lock-free,
//    thieves CAS the top) hold fork-join tasks — the memory-order recipe
//    follows Le et al., "Correct and Efficient Work-Stealing for Weak
//    Memory Models" (PPoPP'13);
//  * per-worker mailboxes take root tasks with an affinity hint (a shard
//    prefers its home worker for cache locality) but stay stealable: any
//    worker scans all mailboxes before parking, so affinity never
//    serializes under imbalance;
//  * a global injection queue takes unhinted root tasks and roots
//    submitted by external (non-worker) threads;
//  * parked workers sleep on a doorbell (std::atomic wait/notify — a futex
//    on Linux) with an epoch counter so a push racing a park can never be
//    lost: the parker snapshots the epoch, rescans every queue, and only
//    sleeps while the epoch is unchanged.
//
// Loop parallelism vs pool width. num_workers() (what loops and grain
// heuristics consult, and what set_num_workers adjusts) is deliberately
// decoupled from the spawned thread count: the pool always keeps at least
// kMinPoolThreads threads so service drains overlap even on a 1-core
// container (matching the old dedicated WorkerPool), while loops stay
// serial there exactly as OpenMP-with-1-thread did. PARSPAN_NUM_WORKERS
// overrides the initial loop parallelism; PARSPAN_FORCE_SERIAL=1 is kept
// as the documented alias for PARSPAN_NUM_WORKERS=1 (it no longer
// disables instrumentation-visible threading — there is nothing opaque
// left to hide from TSan).
//
// Determinism. Work stealing moves *who executes a chunk*, never *what the
// chunks are*: parallel_for applies f(i) exactly once per index with
// data-parallel bodies (disjoint writes), parallel_reduce combines over a
// tree whose shape depends only on (n, grain) — see parallel_for.hpp — and
// every commit phase that orders results stays serial in its caller. The
// byte-identical 1-vs-4-worker diff/checksum contract of DESIGN.md §6/§9.4
// therefore survives unchanged.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace parspan {

/// One schedulable unit. Concrete tasks embed their context and a plain
/// function pointer (no virtual dispatch, no std::function on the fork-join
/// hot path). `run` must also release the task's storage if it owns any.
struct Task {
  void (*run)(Task*);
};

namespace detail {

/// Chase-Lev work-stealing deque of Task*. The owner pushes and pops at the
/// bottom without locks; thieves compete for the top with a CAS. Buffers
/// grow geometrically; retired buffers are kept until destruction so a
/// thief racing a grow never reads freed memory (the classic lazy
/// reclamation, bounded by log2(max size) buffers).
class TaskDeque {
 public:
  TaskDeque() : buf_(new Buffer(kInitialCap)) {}
  TaskDeque(const TaskDeque&) = delete;
  TaskDeque& operator=(const TaskDeque&) = delete;
  ~TaskDeque() {
    delete buf_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  /// Owner only.
  void push(Task* t) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t top = top_.load(std::memory_order_acquire);
    Buffer* buf = buf_.load(std::memory_order_relaxed);
    if (b - top > buf->cap - 1) {
      buf = grow(buf, top, b);
    }
    buf->put(b, t);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only.
  Task* pop() {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buf_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t top = top_.load(std::memory_order_relaxed);
    if (top > b) {  // empty: restore
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* t = buf->get(b);
    if (top == b) {  // last element: race thieves for it
      if (!top_.compare_exchange_strong(top, top + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        t = nullptr;  // a thief won
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return t;
  }

  /// Any thread.
  Task* steal() {
    int64_t top = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_acquire);
    if (top >= b) return nullptr;
    Buffer* buf = buf_.load(std::memory_order_consume);
    Task* t = buf->get(top);
    if (!top_.compare_exchange_strong(top, top + 1,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return nullptr;  // lost the race
    return t;
  }

  /// Approximate size; owner-accurate, advisory for thieves and for the
  /// lazy-splitting heuristic (parallel_for splits while this runs low).
  size_t size() const {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? size_t(b - t) : 0;
  }

 private:
  static constexpr int64_t kInitialCap = 256;

  struct Buffer {
    explicit Buffer(int64_t c) : cap(c), mask(c - 1), arr(new Slot[c]) {}
    ~Buffer() { delete[] arr; }
    int64_t cap;
    int64_t mask;
    struct Slot {
      std::atomic<Task*> v{nullptr};
    }* arr;
    Task* get(int64_t i) const {
      return arr[i & mask].v.load(std::memory_order_relaxed);
    }
    void put(int64_t i, Task* t) {
      arr[i & mask].v.store(t, std::memory_order_relaxed);
    }
  };

  Buffer* grow(Buffer* old, int64_t top, int64_t bottom) {
    Buffer* bigger = new Buffer(old->cap * 2);
    for (int64_t i = top; i < bottom; ++i) bigger->put(i, old->get(i));
    buf_.store(bigger, std::memory_order_release);
    retired_.push_back(old);  // thieves may still hold the old pointer
    return bigger;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buf_;
  std::vector<Buffer*> retired_;  // owner only
};

}  // namespace detail

class Scheduler {
 public:
  /// The process-wide scheduler. Workers are spawned on first use.
  static Scheduler& instance();

  /// Loop parallelism: the worker count parallel_for / parallel_reduce and
  /// the grain heuristics see. >= 1.
  int num_workers() const { return active_p_.load(std::memory_order_relaxed); }

  /// Sets the loop parallelism (spawning pool threads as needed). Global;
  /// intended for benchmarks sweeping worker counts and for the
  /// determinism tests — call it only while no parallel work is in flight.
  void set_num_workers(int p);

  /// Total executor threads that may ever run task bodies. Per-executor
  /// scratch pools (cf. UltraSparseSpanner) size themselves with this, NOT
  /// with num_workers(): stealing lets any pool thread run a loop body
  /// regardless of the active loop parallelism.
  int executor_slots() const {
    return spawned_.load(std::memory_order_acquire) + 1;  // +1: slot 0 is
                                                          // for external
                                                          // (serial) callers
  }

  /// True on a scheduler worker thread — the replacement for
  /// omp_in_parallel() at the call sites that pick atomic vs plain counter
  /// updates.
  static bool on_worker() { return tl_worker_index_ >= 0; }

  /// Executor slot of the calling thread: workers map to [1,
  /// executor_slots()), external threads (which only run loop bodies on the
  /// serial-inline path, never concurrently with workers of the same
  /// structure) share slot 0.
  static int worker_slot() { return tl_worker_index_ + 1; }

  /// Submits a root task: `fn` runs once on some pool thread. `affinity`
  /// >= 0 lands the task in that worker's mailbox (modulo pool size) —
  /// a locality hint, not a binding: any worker steals from any mailbox
  /// when its own work runs dry.
  void submit(std::function<void()> fn, int affinity = -1);

  // --- Fork-join surface (used by the templates in parallel_for.hpp). ---

  /// Pushes a fork-join task. Must be called on a worker thread.
  void spawn(Task* t) {
    assert(tl_worker_index_ >= 0);
    stat_spawned_.fetch_add(1, std::memory_order_relaxed);
    workers_[size_t(tl_worker_index_)]->deque.push(t);
    ring_doorbell();
  }

  /// Pushes a stack-allocated root task from an external thread (the
  /// caller must block until the task completes before releasing it).
  void inject(Task* t) {
    stat_spawned_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(global_mu_);
      global_.push_back(t);
    }
    ring_doorbell();
  }

  /// True when the current worker's deque is nearly dry — the lazy binary
  /// splitting predicate: a loop task keeps splitting while thieves (or
  /// its own pop path) are draining the deque, and stops splitting the
  /// moment enough parallel slack exists.
  bool want_split() const {
    assert(tl_worker_index_ >= 0);
    return workers_[size_t(tl_worker_index_)]->deque.size() < 2;
  }

  /// Runs one available *fork-join* task: the caller's own deque first,
  /// then steals from the other workers' deques. Root tasks (mailboxes,
  /// global queue) are deliberately excluded — a nested join must not
  /// swallow an unrelated long-running drain. Returns false when nothing
  /// ran. Worker threads only.
  bool help_one();

  /// Joins a fork-join context: runs/steals tasks until `pending` drops to
  /// zero. On workers this is a help-first loop; external threads (and
  /// workers that run out of stealable work) sleep on the counter itself
  /// (futex wait), woken by the final decrement.
  void join(std::atomic<size_t>& pending) {
    for (;;) {
      size_t p = pending.load(std::memory_order_acquire);
      if (p == 0) return;
      if (tl_worker_index_ >= 0 && help_one()) continue;
      pending.wait(p, std::memory_order_acquire);
    }
  }

  /// Lifetime observability for tests and benches.
  uint64_t tasks_spawned() const {
    return stat_spawned_.load(std::memory_order_relaxed);
  }
  uint64_t tasks_stolen() const {
    return stat_stolen_.load(std::memory_order_relaxed);
  }
  uint64_t parks() const {
    return stat_parks_.load(std::memory_order_relaxed);
  }

  ~Scheduler();

 private:
  Scheduler();

  struct Worker {
    detail::TaskDeque deque;
    std::mutex mail_mu;
    std::deque<Task*> mailbox;
    std::thread thread;
  };

  void worker_loop(int index);
  Task* find_root_task(int self);
  Task* try_steal(int self);
  void ring_doorbell();
  void park(int self);
  void ensure_threads_locked(int want);

  // Pool configuration. workers_ only grows (under config_mu_), and slots
  // are fully constructed before spawned_ publishes them — lock-free
  // readers (spawn/steal paths) index only below spawned_.
  static constexpr int kMinPoolThreads = 4;
  std::mutex config_mu_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<int> spawned_{0};   // constructed & running pool threads
  std::atomic<int> active_p_{1};  // loop parallelism (num_workers())

  std::mutex global_mu_;
  std::deque<Task*> global_;

  // Doorbell: epoch bumps on every push; parkers re-scan after snapshotting
  // it and sleep only while it is unchanged (no lost wakeups).
  std::atomic<uint64_t> doorbell_{0};
  std::atomic<int> parked_{0};
  std::atomic<bool> shutdown_{false};

  std::atomic<uint64_t> stat_spawned_{0};
  std::atomic<uint64_t> stat_stolen_{0};
  std::atomic<uint64_t> stat_parks_{0};

  static thread_local int tl_worker_index_;  // -1 on non-pool threads
};

/// Loop parallelism of the process-wide scheduler (compat shim for the
/// former OpenMP-backed API).
inline int num_workers() { return Scheduler::instance().num_workers(); }

/// Sets the loop parallelism (benchmarks sweeping worker counts, the
/// determinism tests). Call while no parallel work is in flight.
inline void set_num_workers(int p) { Scheduler::instance().set_num_workers(p); }

/// True when called from inside a scheduler worker (i.e. potentially
/// concurrently with siblings of the same loop) — replaces
/// omp_in_parallel().
inline bool in_parallel() { return Scheduler::on_worker(); }

/// Executor slot for per-thread scratch pools sized executor_slots() —
/// replaces omp_get_thread_num().
inline int worker_slot() { return Scheduler::worker_slot(); }

/// Scratch pools indexed by worker_slot() must hold this many slots.
inline int executor_slots() { return Scheduler::instance().executor_slots(); }

}  // namespace parspan
