// Per-thread bump arenas for batch-scoped scratch (DESIGN.md §12.5).
//
// The rebuild hot paths allocate the same shapes every batch — candidate
// buffers, per-partition merge inputs, head-result arrays — and profiling
// showed malloc/free churn (and vector teardown) as real cost next to the
// algorithmic work. An Arena is a chunked bump allocator: allocation is a
// pointer add, and deallocation is popping the whole scope at batch end.
// Chunks are retained across batches, so a warmed-up arena allocates from
// memory it already owns and the steady-state cost of a batch's scratch is
// zero calls into the system allocator.
//
// Lifetime rules (the ones DESIGN.md §12.5 spells out):
//  * Scratch lives inside an ArenaScope; everything allocated after the
//    scope opened is reclaimed when it closes (LIFO). Never return or store
//    arena-backed containers past their scope.
//  * thread_arena() is thread-local. A task body that wants arena scratch
//    opens its OWN scope inside the task. Scopes then nest correctly even
//    under join-stealing: when a worker's join loop helps execute a stolen
//    task, the helped task's scope opens above the joiner's mark and closes
//    before the join returns, so the outer scope's data is never clobbered.
//  * An ArenaScope must not straddle a spawn: allocate before forking or
//    inside the forked task, not across the boundary (the forked task may
//    run on a different thread with a different arena).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace parspan {

class Arena {
 public:
  struct Mark {
    size_t chunk;
    size_t used;
  };

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(size_t bytes, size_t align) {
    if (bytes == 0) bytes = 1;
    for (;;) {
      if (cur_ < chunks_.size()) {
        Chunk& c = chunks_[cur_];
        size_t base = reinterpret_cast<size_t>(c.data.get());
        size_t at = (base + c.used + (align - 1)) & ~(align - 1);
        size_t end = at + bytes;
        if (end <= base + c.size) {
          c.used = end - base;
          return reinterpret_cast<void*>(at);
        }
        if (cur_ + 1 < chunks_.size()) {  // retained chunk from a past peak
          chunks_[++cur_].used = 0;
          continue;
        }
      }
      size_t want = chunks_.empty() ? kMinChunk : chunks_.back().size * 2;
      while (want < bytes + align) want *= 2;
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want, 0});
      cur_ = chunks_.size() - 1;
    }
  }

  Mark mark() const {
    if (chunks_.empty()) return {0, 0};
    return {cur_, chunks_[cur_].used};
  }

  /// Pops back to `m` (LIFO). Memory is retained for reuse, not freed.
  void release(Mark m) {
    if (chunks_.empty()) return;
    for (size_t i = m.chunk + 1; i <= cur_ && i < chunks_.size(); ++i)
      chunks_[i].used = 0;
    cur_ = m.chunk;
    chunks_[cur_].used = m.used;
  }

  /// Total bytes owned (observability for benches/tests).
  size_t capacity() const {
    size_t s = 0;
    for (const Chunk& c : chunks_) s += c.size;
    return s;
  }

 private:
  static constexpr size_t kMinChunk = size_t(1) << 16;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size;
    size_t used;
  };

  std::vector<Chunk> chunks_;
  size_t cur_ = 0;
};

/// The calling thread's arena (workers and external threads alike).
inline Arena& thread_arena() {
  static thread_local Arena a;
  return a;
}

/// RAII scope: reclaims everything allocated from `arena` after
/// construction. Open one per batch (or per task body) around the scratch.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena = thread_arena())
      : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.release(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  Arena& arena() { return arena_; }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// std-compatible allocator over the calling thread's arena (or an explicit
/// one). deallocate is a no-op — storage dies with the enclosing
/// ArenaScope, which makes vector growth cheap but means peak usage is the
/// sum of all capacities ever held in the scope; fine for batch scratch.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() : arena_(&thread_arena()) {}
  explicit ArenaAllocator(Arena& a) : arena_(&a) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) : arena_(o.arena_) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena_;
  }

 private:
  template <typename U>
  friend class ArenaAllocator;
  Arena* arena_;
};

/// Batch-scoped vector: identical interface to std::vector, storage from
/// the thread arena. Must not outlive its ArenaScope.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace parspan
