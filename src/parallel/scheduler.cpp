#include "parallel/scheduler.hpp"

#include <cstdlib>
#include <string>

namespace parspan {

thread_local int Scheduler::tl_worker_index_ = -1;

namespace {

// A submitted std::function root task: heap-allocated, self-deleting.
struct RootTask {
  Task task;
  std::function<void()> fn;
  static void invoke(Task* t) {
    RootTask* self = reinterpret_cast<RootTask*>(t);
    // Exceptions escaping a detached root task have nowhere to go; callers
    // that need propagation (parallel_for et al.) catch inside their
    // task bodies. Matching the old WorkerPool, let it terminate loudly
    // rather than swallow.
    self->fn();
    delete self;
  }
};

int initial_loop_parallelism() {
  if (const char* s = std::getenv("PARSPAN_NUM_WORKERS")) {
    int v = std::atoi(s);
    if (v >= 1) return v;
  }
  // Documented compatibility alias: the old TSan kill-switch now just means
  // "loop parallelism 1" — the scheduler itself stays multi-threaded and
  // fully instrumented.
  if (const char* s = std::getenv("PARSPAN_FORCE_SERIAL")) {
    if (s[0] != '\0' && s[0] != '0') return 1;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : int(hw);
}

}  // namespace

Scheduler& Scheduler::instance() {
  // Leaked on purpose: worker threads may outlive main()'s static
  // destructors (detached service users), and the OS reclaims everything.
  static Scheduler* s = new Scheduler();
  return *s;
}

Scheduler::Scheduler() {
  int p = initial_loop_parallelism();
  active_p_.store(p, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(config_mu_);
  // Always spawn at least kMinPoolThreads so service drains overlap even
  // when loops run serial (1-core container parity with the old
  // dedicated WorkerPool threads).
  ensure_threads_locked(p > kMinPoolThreads ? p : kMinPoolThreads);
}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_release);
  doorbell_.fetch_add(1, std::memory_order_release);
  doorbell_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

void Scheduler::ensure_threads_locked(int want) {
  int have = spawned_.load(std::memory_order_relaxed);
  while (int(workers_.size()) < want)
    workers_.push_back(std::make_unique<Worker>());
  for (int i = have; i < want; ++i) {
    workers_[size_t(i)]->thread = std::thread([this, i] { worker_loop(i); });
    // Publish after the slot is fully constructed: lock-free paths only
    // index workers_ below spawned_.
    spawned_.store(i + 1, std::memory_order_release);
  }
}

void Scheduler::set_num_workers(int p) {
  if (p < 1) p = 1;
  {
    std::lock_guard<std::mutex> lk(config_mu_);
    // Grow-only: shrinking would strand queued mailbox tasks and race
    // in-flight drains; inactive workers simply find no loop work and park.
    if (p > spawned_.load(std::memory_order_relaxed)) ensure_threads_locked(p);
  }
  active_p_.store(p, std::memory_order_relaxed);
}

void Scheduler::submit(std::function<void()> fn, int affinity) {
  RootTask* rt = new RootTask{{&RootTask::invoke}, std::move(fn)};
  stat_spawned_.fetch_add(1, std::memory_order_relaxed);
  if (affinity >= 0) {
    int n = spawned_.load(std::memory_order_acquire);
    Worker& w = *workers_[size_t(affinity % n)];
    std::lock_guard<std::mutex> lk(w.mail_mu);
    w.mailbox.push_back(&rt->task);
  } else {
    std::lock_guard<std::mutex> lk(global_mu_);
    global_.push_back(&rt->task);
  }
  ring_doorbell();
}

void Scheduler::ring_doorbell() {
  doorbell_.fetch_add(1, std::memory_order_release);
  if (parked_.load(std::memory_order_acquire) > 0) doorbell_.notify_all();
}

Task* Scheduler::find_root_task(int self) {
  {
    std::lock_guard<std::mutex> lk(global_mu_);
    if (!global_.empty()) {
      Task* t = global_.front();
      global_.pop_front();
      return t;
    }
  }
  // Own mailbox first (the affinity hint), then sweep the others so a
  // backlogged worker's shards never wait on it alone.
  int n = spawned_.load(std::memory_order_acquire);
  for (int k = 0; k < n; ++k) {
    Worker& w = *workers_[size_t((self + k) % n)];
    std::lock_guard<std::mutex> lk(w.mail_mu);
    if (!w.mailbox.empty()) {
      Task* t = w.mailbox.front();
      w.mailbox.pop_front();
      if (k != 0) stat_stolen_.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  return nullptr;
}

Task* Scheduler::try_steal(int self) {
  int n = spawned_.load(std::memory_order_acquire);
  // Rotating start point spreads thieves across victims without RNG (RNG
  // would make schedules harder to replay under the determinism tests,
  // though correctness never depends on the victim order).
  for (int k = 1; k < n; ++k) {
    int victim = (self + k) % n;
    if (Task* t = workers_[size_t(victim)]->deque.steal()) {
      stat_stolen_.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  return nullptr;
}

bool Scheduler::help_one() {
  int self = tl_worker_index_;
  assert(self >= 0);
  if (Task* t = workers_[size_t(self)]->deque.pop()) {
    t->run(t);
    return true;
  }
  if (Task* t = try_steal(self)) {
    t->run(t);
    return true;
  }
  return false;
}

void Scheduler::park(int self) {
  (void)self;
  uint64_t e0 = doorbell_.load(std::memory_order_acquire);
  // Re-scan AFTER snapshotting the epoch: a push that lands between our
  // empty scan and the wait bumps the epoch, so the wait falls through.
  if (Task* t = try_steal(self)) {
    t->run(t);
    return;
  }
  if (Task* t = find_root_task(self)) {
    t->run(t);
    return;
  }
  if (shutdown_.load(std::memory_order_acquire)) return;
  stat_parks_.fetch_add(1, std::memory_order_relaxed);
  parked_.fetch_add(1, std::memory_order_seq_cst);
  // Releasing-edge check: a doorbell rung before parked_ went visible
  // shows up as an epoch change here.
  if (doorbell_.load(std::memory_order_acquire) == e0 &&
      !shutdown_.load(std::memory_order_acquire)) {
    doorbell_.wait(e0, std::memory_order_acquire);
  }
  parked_.fetch_sub(1, std::memory_order_seq_cst);
}

void Scheduler::worker_loop(int index) {
  tl_worker_index_ = index;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (Task* t = workers_[size_t(index)]->deque.pop()) {
      t->run(t);
      continue;
    }
    if (Task* t = find_root_task(index)) {
      t->run(t);
      continue;
    }
    if (Task* t = try_steal(index)) {
      t->run(t);
      continue;
    }
    park(index);
  }
  tl_worker_index_ = -1;
}

}  // namespace parspan
