// Flat CSR (compressed sparse row) adjacency built by parallel counting
// sort: histogram -> exclusive scan -> scatter (DESIGN.md §2).
//
// This is the standard work-efficient vehicle for "for each neighbor of v in
// parallel" loops (cf. the scan vocabulary of Blelloch and the batch-dynamic
// connectivity literature): one contiguous offsets array plus one contiguous
// adjacency array, instead of a vector-of-vectors whose per-vertex
// allocations and scattered headers dominate construction time and defeat
// the prefetcher during traversal.
//
// group_by_key is the reusable primitive: a *stable* counting sort of element
// indices by an integer key in [0, nbuckets). The parallel path uses
// per-block histograms so the output permutation is identical to the serial
// one — layouts are deterministic regardless of thread count.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "util/types.hpp"

namespace parspan {

/// Result of group_by_key: `items` holds the element indices [0, n) grouped
/// by key; group k occupies items[offsets[k] .. offsets[k+1]).
struct GroupedIndices {
  std::vector<uint32_t> offsets;  // nbuckets + 1
  std::vector<uint32_t> items;    // element indices in stable key order

  std::span<const uint32_t> group(size_t k) const {
    return {items.data() + offsets[k], items.data() + offsets[k + 1]};
  }
};

/// Stable parallel counting sort of the indices [0, keys.size()) by
/// keys[i] in [0, nbuckets).
inline GroupedIndices group_by_key(size_t nbuckets,
                                   const std::vector<uint32_t>& keys) {
  size_t n = keys.size();
  GroupedIndices out;
  out.offsets.assign(nbuckets + 1, 0);
  out.items.resize(n);
  int p = num_workers();
  // The parallel path keeps one histogram per block; cap the block count so
  // that scratch stays O(n) even when nbuckets is large relative to n
  // (sparse graphs), falling back to the serial sort when one block is all
  // the budget allows. Both paths emit the identical stable permutation.
  size_t nblocks = std::min<size_t>(
      static_cast<size_t>(p) * 4,
      std::max<size_t>(1, (8 * n) / std::max<size_t>(1, nbuckets)));
  if (n < kParGrain || p <= 1 || nblocks <= 1) {
    for (size_t i = 0; i < n; ++i) {
      assert(keys[i] < nbuckets);
      ++out.offsets[keys[i] + 1];
    }
    for (size_t k = 0; k < nbuckets; ++k)
      out.offsets[k + 1] += out.offsets[k];
    std::vector<uint32_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
    for (size_t i = 0; i < n; ++i)
      out.items[cursor[keys[i]]++] = static_cast<uint32_t>(i);
    return out;
  }
  // Per-block histograms keep the scatter stable: block b writes the
  // elements of its input range in input order at offsets disjoint from
  // every other block's.
  size_t bsz = (n + nblocks - 1) / nblocks;
  std::vector<uint32_t> counts(nblocks * nbuckets, 0);
  parallel_for(
      0, nblocks,
      [&](size_t b) {
        uint32_t* local = counts.data() + b * nbuckets;
        size_t lo = b * bsz, hi = std::min(n, lo + bsz);
        for (size_t i = lo; i < hi; ++i) {
          assert(keys[i] < nbuckets);
          ++local[keys[i]];
        }
      },
      /*grain=*/1);
  // Column-wise exclusive scan: cursor for (block b, bucket k) becomes
  // bucket_start(k) + sum of counts of k over blocks < b.
  parallel_for(0, nbuckets, [&](size_t k) {
    uint32_t total = 0;
    for (size_t b = 0; b < nblocks; ++b) {
      uint32_t c = counts[b * nbuckets + k];
      counts[b * nbuckets + k] = total;
      total += c;
    }
    out.offsets[k] = total;
  });
  exclusive_scan_inplace(out.offsets);  // offsets[k] = start of bucket k
  parallel_for(
      0, nblocks,
      [&](size_t b) {
        uint32_t* local = counts.data() + b * nbuckets;
        size_t lo = b * bsz, hi = std::min(n, lo + bsz);
        for (size_t i = lo; i < hi; ++i)
          out.items[out.offsets[keys[i]] + local[keys[i]]++] =
              static_cast<uint32_t>(i);
      },
      /*grain=*/1);
  return out;
}

/// Canonical, deduplicated keys of an undirected edge list: self-loops and
/// out-of-range endpoints dropped, result sorted ascending by key. The
/// shared front half of every batch-ingestion path (spanner construction,
/// DynamicGraph batches): invalid entries map to the kNoEdge sentinel,
/// which sorts last and survives dedup at most once.
inline std::vector<EdgeKey> canonical_edge_keys(
    size_t n, const std::vector<Edge>& edges) {
  std::vector<EdgeKey> keys(edges.size());
  parallel_for(0, edges.size(), [&](size_t i) {
    const Edge& e = edges[i];
    keys[i] = (e.u == e.v || e.u >= n || e.v >= n) ? kNoEdge : e.key();
  });
  sort_unique(keys);
  if (!keys.empty() && keys.back() == kNoEdge) keys.pop_back();
  return keys;
}

/// Applies a key-sorted SpannerDiff-style delta to a sorted, unique key
/// list: one three-pointer merge, O(|base| + |diff|) — the incremental
/// snapshot-publish path of the service layer (DESIGN.md §8), which is what
/// lets a version be published per batch without re-exporting the whole
/// spanner. `add` keys must be absent from `base`, `rem` keys present
/// (both are guaranteed by the SpannerDiff net-change contract and checked
/// by assertion).
inline std::vector<EdgeKey> apply_sorted_diff(std::span<const EdgeKey> base,
                                              std::span<const EdgeKey> add,
                                              std::span<const EdgeKey> rem) {
  assert(std::is_sorted(base.begin(), base.end()));
  assert(std::is_sorted(add.begin(), add.end()));
  assert(std::is_sorted(rem.begin(), rem.end()));
  std::vector<EdgeKey> out;
  out.reserve(base.size() + add.size() - rem.size());
  size_t a = 0, r = 0;
  for (EdgeKey k : base) {
    if (r < rem.size() && rem[r] == k) {
      ++r;
      continue;
    }
    while (a < add.size() && add[a] < k) out.push_back(add[a++]);
    assert(a >= add.size() || add[a] != k);
    out.push_back(k);
  }
  while (a < add.size()) out.push_back(add[a++]);
  assert(r == rem.size());
  return out;
}

/// The canonical keys of a diff side (already key-sorted by the §6 diff
/// contract).
inline std::vector<EdgeKey> diff_side_keys(const std::vector<Edge>& side) {
  std::vector<EdgeKey> keys(side.size());
  parallel_for(0, side.size(), [&](size_t i) { keys[i] = side[i].key(); });
  return keys;
}

/// Immutable CSR adjacency with an arc-id payload per entry. Entry j of
/// vertex v is the arc (v -> nbr[j]) with identifier arc[j].
struct CsrGraph {
  std::vector<uint32_t> offsets;  // n + 1
  std::vector<VertexId> nbr;      // flattened neighbor array
  std::vector<uint32_t> arc;      // arc id per entry

  size_t num_vertices() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  size_t num_arcs() const { return nbr.size(); }
  uint32_t degree(VertexId v) const { return offsets[v + 1] - offsets[v]; }
  std::span<const VertexId> neighbors(VertexId v) const {
    return {nbr.data() + offsets[v], nbr.data() + offsets[v + 1]};
  }
  std::span<const uint32_t> arcs(VertexId v) const {
    return {arc.data() + offsets[v], arc.data() + offsets[v + 1]};
  }
};

/// Builds the symmetric CSR adjacency of an undirected edge list: edge i
/// contributes arc 2i (u -> v) and arc 2i + 1 (v -> u), matching the arc-id
/// convention of the cluster spanner and ES tree layers. Endpoints must lie
/// in [0, n).
inline CsrGraph csr_build(size_t n, const std::vector<Edge>& edges) {
  size_t m = edges.size();
  std::vector<uint32_t> srcs(2 * m);
  parallel_for(0, m, [&](size_t i) {
    assert(edges[i].u < n && edges[i].v < n);
    srcs[2 * i] = edges[i].u;
    srcs[2 * i + 1] = edges[i].v;
  });
  GroupedIndices g = group_by_key(n, srcs);
  CsrGraph csr;
  csr.offsets = std::move(g.offsets);
  csr.nbr.resize(2 * m);
  csr.arc = std::move(g.items);  // arc id == element index by construction
  parallel_for(0, 2 * m, [&](size_t j) {
    uint32_t a = csr.arc[j];
    const Edge& e = edges[a >> 1];
    csr.nbr[j] = (a & 1) ? e.u : e.v;  // arc 2i: u->v, arc 2i+1: v->u
  });
  return csr;
}

/// Builds the symmetric CSR adjacency of canonical edge keys (sorted or
/// not; must be valid, i.e. not kNoEdge, with endpoints < n). Same arc-id
/// convention as csr_build: key i contributes arcs 2i (lo -> hi) and
/// 2i + 1 (hi -> lo). When the keys are ascending the per-vertex neighbor
/// lists come out ascending too (group_by_key is stable), which the
/// snapshot layer relies on for its binary-searched has_edge.
inline CsrGraph csr_build_from_keys(size_t n, std::span<const EdgeKey> keys) {
  size_t m = keys.size();
  std::vector<uint32_t> srcs(2 * m);
  parallel_for(0, m, [&](size_t i) {
    auto [u, v] = edge_endpoints(keys[i]);
    assert(keys[i] != kNoEdge && u < n && v < n);
    srcs[2 * i] = u;
    srcs[2 * i + 1] = v;
  });
  GroupedIndices g = group_by_key(n, srcs);
  CsrGraph csr;
  csr.offsets = std::move(g.offsets);
  csr.nbr.resize(2 * m);
  csr.arc = std::move(g.items);
  parallel_for(0, 2 * m, [&](size_t j) {
    uint32_t a = csr.arc[j];
    auto [u, v] = edge_endpoints(keys[a >> 1]);
    csr.nbr[j] = (a & 1) ? u : v;  // arc 2i: lo->hi, arc 2i+1: hi->lo
  });
  return csr;
}

/// Builds the CSR adjacency of an explicit directed arc list: arc i is
/// srcs[i] -> dsts[i] and keeps its index as the payload id.
inline CsrGraph csr_build_directed(size_t n,
                                   const std::vector<VertexId>& srcs,
                                   const std::vector<VertexId>& dsts) {
  assert(srcs.size() == dsts.size());
  GroupedIndices g = group_by_key(n, srcs);
  CsrGraph csr;
  csr.offsets = std::move(g.offsets);
  csr.nbr.resize(dsts.size());
  csr.arc = std::move(g.items);
  parallel_for(0, csr.arc.size(),
               [&](size_t j) { csr.nbr[j] = dsts[csr.arc[j]]; });
  return csr;
}

}  // namespace parspan
