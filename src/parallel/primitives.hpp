// Parallel sequence primitives: exclusive scan, pack/filter, remove-duplicates
// and sorting. These are the standard building blocks of work-depth algorithms
// (cf. Blelloch's scan vocabulary) used throughout the batch-dynamic
// structures to turn "per-element in parallel" pseudo-code into real loops.
//
// The blocked kernels (scan, sort) express their per-block phases as
// parallel_for(..., /*grain=*/1) over block indices: each block is one heavy
// task on the work-stealing scheduler, and lazy splitting keeps the fan-out
// proportional to the actual parallel slack. Block decomposition is chosen
// for load balance only — every kernel's output is independent of nblocks
// (scan re-bases each block on an exact prefix; the merge rounds are a
// fixed shape given nblocks).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace parspan {

/// Exclusive prefix sum of `xs` in place; returns the total.
template <typename T>
T exclusive_scan_inplace(std::vector<T>& xs) {
  size_t n = xs.size();
  if (n == 0) return T{};
  int p = num_workers();
  if (n < kParGrain || p <= 1) {
    T acc{};
    for (size_t i = 0; i < n; ++i) {
      T x = xs[i];
      xs[i] = acc;
      acc += x;
    }
    return acc;
  }
  // Two-pass blocked scan.
  size_t nblocks = static_cast<size_t>(p) * 4;
  size_t bsz = (n + nblocks - 1) / nblocks;
  std::vector<T> block_sum(nblocks, T{});
  parallel_for(
      0, nblocks,
      [&](size_t b) {
        size_t lo = b * bsz, hi = std::min(n, lo + bsz);
        T acc{};
        for (size_t i = lo; i < hi; ++i) acc += xs[i];
        block_sum[b] = acc;
      },
      /*grain=*/1);
  T total{};
  for (size_t b = 0; b < nblocks; ++b) {
    T x = block_sum[b];
    block_sum[b] = total;
    total += x;
  }
  parallel_for(
      0, nblocks,
      [&](size_t b) {
        size_t lo = b * bsz, hi = std::min(n, lo + bsz);
        T acc = block_sum[b];
        for (size_t i = lo; i < hi; ++i) {
          T x = xs[i];
          xs[i] = acc;
          acc += x;
        }
      },
      /*grain=*/1);
  return total;
}

/// pack: returns the elements xs[i] with pred(i) true, preserving order.
template <typename T, typename Pred>
std::vector<T> pack(const std::vector<T>& xs, Pred&& pred) {
  size_t n = xs.size();
  std::vector<uint64_t> flags(n);
  parallel_for(0, n, [&](size_t i) { flags[i] = pred(i) ? 1 : 0; });
  std::vector<uint64_t> offsets = flags;
  uint64_t total = exclusive_scan_inplace(offsets);
  std::vector<T> out(total);
  parallel_for(0, n, [&](size_t i) {
    if (flags[i]) out[offsets[i]] = xs[i];
  });
  return out;
}

/// filter: pack with a predicate on values rather than indices.
template <typename T, typename Pred>
std::vector<T> filter(const std::vector<T>& xs, Pred&& pred) {
  return pack(xs, [&](size_t i) { return pred(xs[i]); });
}

/// Parallel comparison sort (merge-sort over blocks). Stable within the
/// std::sort blocks is not guaranteed; use for keys where ties are benign.
template <typename T, typename Cmp = std::less<T>>
void parallel_sort(std::vector<T>& xs, Cmp cmp = Cmp{}) {
  size_t n = xs.size();
  int p = num_workers();
  if (n < kParGrain || p <= 1) {
    std::sort(xs.begin(), xs.end(), cmp);
    return;
  }
  size_t nblocks = 1;
  while (nblocks < static_cast<size_t>(p)) nblocks <<= 1;
  size_t bsz = (n + nblocks - 1) / nblocks;
  parallel_for(
      0, nblocks,
      [&](size_t b) {
        size_t lo = b * bsz, hi = std::min(n, lo + bsz);
        if (lo < hi) std::sort(xs.begin() + lo, xs.begin() + hi, cmp);
      },
      /*grain=*/1);
  // Pairwise merges, halving block count each round (log depth).
  std::vector<T> tmp(n);
  for (size_t width = bsz; width < n; width *= 2) {
    size_t stride = 2 * width;
    size_t npairs = (n + stride - 1) / stride;
    parallel_for(
        0, npairs,
        [&](size_t pair) {
          size_t lo = pair * stride;
          size_t mid = std::min(n, lo + width);
          size_t hi = std::min(n, lo + stride);
          std::merge(xs.begin() + lo, xs.begin() + mid, xs.begin() + mid,
                     xs.begin() + hi, tmp.begin() + lo, cmp);
        },
        /*grain=*/1);
    std::swap(xs, tmp);
  }
}

/// Sorts and removes duplicates.
template <typename T>
void sort_unique(std::vector<T>& xs) {
  parallel_sort(xs);
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
}

}  // namespace parspan
