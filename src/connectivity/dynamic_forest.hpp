// SmallComponentForest: a dynamic spanning forest under batch edge
// insertions/deletions, reporting forest-edge diffs.
//
// This is the repo's stand-in for the parallel batch-dynamic connectivity
// of [AABD19], which Theorem 1.4 uses to maintain H2 — the spanning forest
// of the subgraph induced by ⊥-vertices. Lemma 5.1 guarantees those
// components have at most 10·x·log x vertices, so a structure that rebuilds
// the spanning forest of *affected components only* (one BFS over the
// touched components per batch) meets the theorem's work regime, whose
// bounds carry τ(x) = (10 x log x)^{x log x} factors anyway (DESIGN.md §1).
//
// The structure is correct for arbitrary graphs; only its update cost
// degrades (to O(affected component size)) when components grow large.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/cluster_spanner.hpp"  // SpannerDiff
#include "util/types.hpp"

namespace parspan {

class SmallComponentForest {
 public:
  explicit SmallComponentForest(size_t n);

  size_t num_vertices() const { return n_; }
  size_t num_edges() const { return edges_.size(); }
  size_t forest_size() const { return forest_.size(); }
  std::vector<Edge> forest_edges() const;

  /// True iff u and v are in the same component.
  bool connected(VertexId u, VertexId v) const {
    return comp_[u] == comp_[v] && comp_[u] != kNoComp;
  }

  /// Applies a batch (deletions then insertions; absent/duplicate edges
  /// ignored) and returns the net forest diff.
  SpannerDiff update(const std::vector<Edge>& ins,
                     const std::vector<Edge>& del);

  bool check_invariants() const;

 private:
  static constexpr uint32_t kNoComp = uint32_t(-1);

  /// Rebuilds the forest within the given seed vertices' components.
  void rebuild_around(const std::vector<VertexId>& seeds,
                      std::unordered_map<EdgeKey, int32_t>& delta);

  size_t n_ = 0;
  std::vector<std::unordered_set<VertexId>> adj_;
  std::unordered_set<EdgeKey> edges_;
  std::unordered_set<EdgeKey> forest_;
  std::vector<uint32_t> comp_;                      // component id
  std::vector<std::vector<VertexId>> comp_members_;  // id -> vertices
  std::vector<uint32_t> free_comps_;
};

}  // namespace parspan
