#include "connectivity/dynamic_forest.hpp"

#include <cassert>
#include <deque>

namespace parspan {

SmallComponentForest::SmallComponentForest(size_t n)
    : n_(n), adj_(n), comp_(n, kNoComp) {
  // Isolated vertices carry no component until they gain an edge; each
  // vertex starts as its own singleton (lazily materialized).
}

std::vector<Edge> SmallComponentForest::forest_edges() const {
  std::vector<Edge> out;
  out.reserve(forest_.size());
  for (EdgeKey ek : forest_) out.push_back(edge_from_key(ek));
  return out;
}

void SmallComponentForest::rebuild_around(
    const std::vector<VertexId>& seeds,
    std::unordered_map<EdgeKey, int32_t>& delta) {
  // Collect the union of affected components (pre-update memberships plus
  // the seeds themselves).
  std::unordered_set<VertexId> affected;
  for (VertexId s : seeds) {
    if (affected.count(s)) continue;
    if (comp_[s] != kNoComp) {
      for (VertexId v : comp_members_[comp_[s]]) affected.insert(v);
    } else {
      affected.insert(s);
    }
  }
  // Remove old forest edges inside the affected set; release components.
  std::unordered_set<uint32_t> released;
  for (VertexId v : affected) {
    if (comp_[v] != kNoComp) released.insert(comp_[v]);
    comp_[v] = kNoComp;
  }
  for (uint32_t c : released) {
    for (VertexId v : comp_members_[c]) {
      for (VertexId w : adj_[v]) {
        EdgeKey ek = edge_key(v, w);
        if (v < w && forest_.erase(ek)) --delta[ek];
      }
    }
    comp_members_[c].clear();
    free_comps_.push_back(c);
  }
  // BFS the affected vertices to rebuild components and their forests.
  for (VertexId s : affected) {
    if (comp_[s] != kNoComp) continue;
    uint32_t c;
    if (!free_comps_.empty()) {
      c = free_comps_.back();
      free_comps_.pop_back();
    } else {
      c = uint32_t(comp_members_.size());
      comp_members_.emplace_back();
    }
    std::deque<VertexId> q{s};
    comp_[s] = c;
    comp_members_[c].push_back(s);
    while (!q.empty()) {
      VertexId v = q.front();
      q.pop_front();
      for (VertexId w : adj_[v]) {
        if (comp_[w] != kNoComp) {
          assert(comp_[w] == c || !affected.count(w));
          continue;
        }
        comp_[w] = c;
        comp_members_[c].push_back(w);
        EdgeKey ek = edge_key(v, w);
        if (forest_.insert(ek).second) ++delta[ek];
        q.push_back(w);
      }
    }
  }
}

SpannerDiff SmallComponentForest::update(const std::vector<Edge>& ins,
                                         const std::vector<Edge>& del) {
  std::unordered_map<EdgeKey, int32_t> delta;
  std::vector<VertexId> seeds;
  for (const Edge& e : del) {
    if (e.u == e.v || e.u >= n_ || e.v >= n_) continue;
    if (!edges_.erase(e.key())) continue;
    adj_[e.u].erase(e.v);
    adj_[e.v].erase(e.u);
    // The rebuild scans post-deletion adjacency, so a dying tree edge must
    // leave the forest here.
    if (forest_.erase(e.key())) --delta[e.key()];
    seeds.push_back(e.u);
    seeds.push_back(e.v);
  }
  for (const Edge& e : ins) {
    if (e.u == e.v || e.u >= n_ || e.v >= n_) continue;
    if (!edges_.insert(e.key()).second) continue;
    adj_[e.u].insert(e.v);
    adj_[e.v].insert(e.u);
    seeds.push_back(e.u);
    seeds.push_back(e.v);
  }
  if (!seeds.empty()) rebuild_around(seeds, delta);
  SpannerDiff diff;
  for (auto& [ek, d] : delta) {
    assert(d >= -1 && d <= 1);
    if (d > 0) diff.inserted.push_back(edge_from_key(ek));
    if (d < 0) diff.removed.push_back(edge_from_key(ek));
  }
  return diff;
}

bool SmallComponentForest::check_invariants() const {
  // Forest edges must exist and connect same-component endpoints; the
  // forest restricted to each component must be a spanning tree.
  for (EdgeKey ek : forest_) {
    if (!edges_.count(ek)) return false;
    Edge e = edge_from_key(ek);
    if (comp_[e.u] != comp_[e.v] || comp_[e.u] == kNoComp) return false;
  }
  // Connectivity agreement via fresh BFS.
  std::vector<uint32_t> ref(n_, kNoComp);
  uint32_t next = 0;
  for (VertexId s = 0; s < n_; ++s) {
    if (ref[s] != kNoComp || adj_[s].empty()) continue;
    uint32_t c = next++;
    std::deque<VertexId> q{s};
    ref[s] = c;
    size_t verts = 0, tree_edges = 0;
    while (!q.empty()) {
      VertexId v = q.front();
      q.pop_front();
      ++verts;
      for (VertexId w : adj_[v]) {
        if (forest_.count(edge_key(v, w)) && v < w) ++tree_edges;
        if (ref[w] == kNoComp) {
          ref[w] = c;
          q.push_back(w);
        }
      }
    }
    if (tree_edges != verts - 1) return false;  // spanning tree exactly
  }
  // Same-component relation must agree.
  for (VertexId v = 0; v < n_; ++v)
    for (VertexId w : adj_[v]) {
      if ((comp_[v] == comp_[w]) != (ref[v] == ref[w])) return false;
      if (comp_[v] != comp_[w]) return false;  // adjacent => same comp
    }
  return true;
}

}  // namespace parspan
