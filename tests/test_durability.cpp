// Durability-layer unit tests (DESIGN.md §10): CRC32C known answers, WAL
// frame codec + torn-tail truncation rules, fsync-policy sync semantics,
// checkpoint atomicity under crashes, the frozen content-checksum oracle,
// and single-service crash/recover end-to-end (the randomized sweep lives
// in test_recovery_sweep.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/fully_dynamic_spanner.hpp"
#include "durability/checkpoint.hpp"
#include "durability/durable_shard.hpp"
#include "durability/fault_fs.hpp"
#include "durability/fs.hpp"
#include "durability/wal.hpp"
#include "graph/generators.hpp"
#include "service/spanner_service.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

std::unique_ptr<SpannerService> make_service(size_t n,
                                             const std::vector<Edge>& m0,
                                             uint32_t k, uint64_t seed) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = seed;
  return std::make_unique<SpannerService>(
      std::make_unique<FullyDynamicSpanner>(n, m0, cfg), 2 * k - 1);
}

// --- CRC32C ----------------------------------------------------------------

TEST(Crc32c, KnownAnswers) {
  // The canonical CRC-32C check value (RFC 3720 appendix et al.).
  const uint8_t digits[] = "123456789";
  EXPECT_EQ(crc32c(digits, 9), 0xE3069283u);
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
  // 32 zero bytes — known vector, guards the table generator.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(257);
  Rng rng(7);
  for (auto& b : data) b = uint8_t(rng.next_below(256));
  const uint32_t good = crc32c(data.data(), data.size());
  for (size_t trial = 0; trial < 64; ++trial) {
    size_t at = size_t(rng.next_below(data.size()));
    uint8_t bit = uint8_t(1u << rng.next_below(8));
    data[at] ^= bit;
    EXPECT_NE(crc32c(data.data(), data.size()), good);
    data[at] ^= bit;
  }
}

// --- Frozen content-checksum oracle ---------------------------------------

TEST(ContentChecksum, GoldenValues) {
  // These literals are the persisted-format contract: WAL records and
  // checkpoints store this value, so if either golden breaks, recovery of
  // every existing log breaks with it. Never update the literals without a
  // log-format migration.
  std::vector<EdgeKey> keys = {edge_key(0, 1), edge_key(1, 2), edge_key(2, 4),
                               edge_key(3, 4)};
  EXPECT_EQ(snapshot_content_checksum(5, 3, 7, keys), 0xf547762e34ce7e1bULL);
  EXPECT_EQ(snapshot_content_checksum(1, 1, 0, {}), 0x72ca26e4508a83b4ULL);
}

TEST(ContentChecksum, PositionAndFieldSensitivity) {
  std::vector<EdgeKey> keys = {edge_key(0, 1), edge_key(1, 2)};
  std::vector<EdgeKey> swapped = {edge_key(1, 2), edge_key(0, 1)};
  const uint64_t base = snapshot_content_checksum(8, 3, 5, keys);
  EXPECT_NE(snapshot_content_checksum(8, 3, 5, swapped), base);
  EXPECT_NE(snapshot_content_checksum(9, 3, 5, keys), base);
  EXPECT_NE(snapshot_content_checksum(8, 5, 5, keys), base);
  EXPECT_NE(snapshot_content_checksum(8, 3, 6, keys), base);
  std::vector<EdgeKey> truncated = {edge_key(0, 1)};
  EXPECT_NE(snapshot_content_checksum(8, 3, 5, truncated), base);
}

TEST(ContentChecksum, MatchesSnapshotChecksum) {
  const size_t n = 200;
  auto [initial, batches] = gen_mixed_stream(n, 1200, 60, 10, 3);
  auto svc = make_service(n, initial, 3, 11);
  for (const auto& b : batches) {
    auto r = svc->apply(b.insertions, b.deletions);
    EXPECT_EQ(r.snapshot->checksum(),
              snapshot_content_checksum(n, r.snapshot->stretch(),
                                        r.snapshot->version(),
                                        r.snapshot->edge_keys()));
  }
}

// --- WAL record codec ------------------------------------------------------

WalRecord sample_record(uint64_t version) {
  WalRecord r;
  r.type = WalRecord::kBatch;
  r.version = version;
  r.checksum = 0xDEADBEEFCAFEF00DULL ^ version;
  r.input_deleted = {edge_key(1, 2)};
  r.input_inserted = {edge_key(0, 1), edge_key(2, 3), edge_key(3, 9)};
  r.diff_removed = {edge_key(1, 2)};
  r.diff_inserted = {edge_key(0, 1), edge_key(2, 3)};
  return r;
}

TEST(WalCodec, RoundTrip) {
  WalRecord in = sample_record(42);
  std::vector<uint8_t> bytes = encode_wal_record(in);
  WalRecord out;
  ASSERT_TRUE(decode_wal_record(bytes.data(), bytes.size(), &out));
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.version, in.version);
  EXPECT_EQ(out.checksum, in.checksum);
  EXPECT_EQ(out.input_deleted, in.input_deleted);
  EXPECT_EQ(out.input_inserted, in.input_inserted);
  EXPECT_EQ(out.diff_removed, in.diff_removed);
  EXPECT_EQ(out.diff_inserted, in.diff_inserted);
}

TEST(WalCodec, RejectsMalformed) {
  WalRecord in = sample_record(1);
  std::vector<uint8_t> bytes = encode_wal_record(in);
  WalRecord out;
  // Truncations at every boundary.
  for (size_t cut = 0; cut < bytes.size(); ++cut)
    EXPECT_FALSE(decode_wal_record(bytes.data(), cut, &out));
  // Trailing garbage.
  std::vector<uint8_t> longer = bytes;
  longer.push_back(0);
  EXPECT_FALSE(decode_wal_record(longer.data(), longer.size(), &out));
  // A zero key delta (duplicate / non-ascending list) is malformed: craft
  // a record whose only list is {k, k} by patching a valid encoding of
  // {k, k+1} — the second delta varint becomes 0x00.
  {
    WalRecord dup;
    dup.type = WalRecord::kBatch;
    dup.version = 1;
    dup.input_deleted = {edge_key(1, 2), edge_key(1, 3)};  // deltas: k, 1
    std::vector<uint8_t> enc = encode_wal_record(dup);
    ASSERT_EQ(enc.back(), 1u);  // the delta between the two keys
    enc.back() = 0;             // now "same key twice"
    EXPECT_FALSE(decode_wal_record(enc.data(), enc.size(), &out));
  }
  // Unknown record type.
  std::vector<uint8_t> bad_type = bytes;
  bad_type[0] = 99;
  EXPECT_FALSE(decode_wal_record(bad_type.data(), bad_type.size(), &out));
}

// --- WAL writer + segment reader ------------------------------------------

TEST(Wal, WriteReadRoundTrip) {
  auto fs = std::make_shared<MemFs>();
  WalWriterOptions opts;  // every-record
  WalWriter w(*fs, "wal", 10, opts);
  ASSERT_FALSE(w.failed());
  for (uint64_t v = 11; v <= 15; ++v) ASSERT_TRUE(w.append(sample_record(v)));
  EXPECT_EQ(w.synced_version(), 15u);

  WalSegment seg = read_wal_segment(*fs, "wal");
  ASSERT_TRUE(seg.header_ok);
  EXPECT_EQ(seg.base_version, 10u);
  EXPECT_FALSE(seg.truncated_tail);
  ASSERT_EQ(seg.records.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(seg.records[i].version, 11 + i);
}

TEST(Wal, TornTailTruncatesAtEveryByteBoundary) {
  // Build a 3-record log, then replay reads of every byte-length prefix:
  // the reader must yield exactly the records whose frames fit whole, and
  // flag the tail torn whenever trailing bytes exist.
  auto fs = std::make_shared<MemFs>();
  WalWriter w(*fs, "wal", 0, {});
  std::vector<size_t> ends;  // byte offset after the header and each frame
  {
    std::vector<uint8_t> all;
    ASSERT_TRUE(fs->read_file("wal", &all));
    ends.push_back(all.size());
  }
  for (uint64_t v = 1; v <= 3; ++v) {
    ASSERT_TRUE(w.append(sample_record(v)));
    std::vector<uint8_t> all;
    ASSERT_TRUE(fs->read_file("wal", &all));
    ends.push_back(all.size());
  }
  std::vector<uint8_t> full;
  ASSERT_TRUE(fs->read_file("wal", &full));
  for (size_t cut = ends[0]; cut <= full.size(); ++cut) {
    MemFs partial;
    {
      auto f = partial.create("wal");
      ASSERT_TRUE(f->append(full.data(), cut));
      ASSERT_TRUE(f->sync());
    }
    WalSegment seg = read_wal_segment(partial, "wal");
    ASSERT_TRUE(seg.header_ok);
    size_t expect_records =
        size_t(std::upper_bound(ends.begin(), ends.end(), cut) - ends.begin()) -
        1;
    EXPECT_EQ(seg.records.size(), expect_records) << "cut=" << cut;
    EXPECT_EQ(seg.truncated_tail, cut != ends[expect_records]) << "cut=" << cut;
  }
}

TEST(Wal, CrcCorruptionStopsReplayAtTheBadFrame) {
  auto fs = std::make_shared<MemFs>();
  WalWriter w(*fs, "wal", 0, {});
  for (uint64_t v = 1; v <= 6; ++v) ASSERT_TRUE(w.append(sample_record(v)));
  const size_t total = fs->durable_size("wal");
  Rng rng(99);
  // Flip one durable bit somewhere past the header; the reader must keep a
  // (possibly empty) prefix and never surface a record past the flip.
  for (int trial = 0; trial < 32; ++trial) {
    MemFs copy;
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(fs->read_file("wal", &bytes));
    {
      auto f = copy.create("wal");
      ASSERT_TRUE(f->append(bytes.data(), bytes.size()));
      ASSERT_TRUE(f->sync());
    }
    size_t at = 28 + size_t(rng.next_below(total - 28));
    ASSERT_TRUE(copy.corrupt_durable("wal", at, uint8_t(rng.next_below(8))));
    WalSegment seg = read_wal_segment(copy, "wal");
    ASSERT_TRUE(seg.header_ok);
    EXPECT_TRUE(seg.truncated_tail);
    EXPECT_LT(seg.records.size(), 6u);
    for (size_t i = 0; i < seg.records.size(); ++i) {
      EXPECT_EQ(seg.records[i].version, i + 1);
      // Surviving prefix records decode identically to what was written.
      EXPECT_EQ(seg.records[i].checksum, sample_record(i + 1).checksum);
    }
  }
}

TEST(Wal, HeaderCorruptionRejectsTheSegment) {
  auto fs = std::make_shared<MemFs>();
  WalWriter w(*fs, "wal", 7, {});
  ASSERT_TRUE(w.append(sample_record(8)));
  ASSERT_TRUE(fs->corrupt_durable("wal", 9, 3));  // inside base_version
  WalSegment seg = read_wal_segment(*fs, "wal");
  EXPECT_FALSE(seg.header_ok);
  EXPECT_TRUE(seg.records.empty());
}

// --- Fsync policies --------------------------------------------------------

TEST(FsyncPolicy, EveryRecordMakesEachAppendDurable) {
  auto fs = std::make_shared<MemFs>();
  WalWriterOptions opts;
  opts.policy = FsyncPolicy::kEveryRecord;
  WalWriter w(*fs, "wal", 0, opts);
  for (uint64_t v = 1; v <= 4; ++v) {
    ASSERT_TRUE(w.append(sample_record(v)));
    EXPECT_EQ(w.synced_version(), v);
    // kLoseAll crash: everything synced must still be there.
    MemFs replica;
    std::vector<uint8_t> durable_only;
    ASSERT_TRUE(fs->read_file("wal", &durable_only));
    durable_only.resize(fs->durable_size("wal"));
    {
      auto f = replica.create("wal");
      ASSERT_TRUE(f->append(durable_only.data(), durable_only.size()));
      ASSERT_TRUE(f->sync());
    }
    WalSegment seg = read_wal_segment(replica, "wal");
    ASSERT_TRUE(seg.header_ok);
    EXPECT_EQ(seg.records.size(), v);
    EXPECT_FALSE(seg.truncated_tail);
  }
}

TEST(FsyncPolicy, EveryNSyncsInSteps) {
  auto fs = std::make_shared<MemFs>();
  WalWriterOptions opts;
  opts.policy = FsyncPolicy::kEveryN;
  opts.every_n = 3;
  WalWriter w(*fs, "wal", 0, opts);
  ASSERT_TRUE(w.append(sample_record(1)));
  EXPECT_EQ(w.synced_version(), 0u);
  ASSERT_TRUE(w.append(sample_record(2)));
  EXPECT_EQ(w.synced_version(), 0u);
  ASSERT_TRUE(w.append(sample_record(3)));
  EXPECT_EQ(w.synced_version(), 3u);
  ASSERT_TRUE(w.append(sample_record(4)));
  EXPECT_EQ(w.synced_version(), 3u);
  ASSERT_TRUE(w.sync());  // explicit sync flushes the partial group
  EXPECT_EQ(w.synced_version(), 4u);
  ASSERT_TRUE(w.sync());  // idempotent with nothing pending
  EXPECT_EQ(w.synced_version(), 4u);
}

TEST(FsyncPolicy, TimedSyncsOnExpiry) {
  auto fs = std::make_shared<MemFs>();
  WalWriterOptions opts;
  opts.policy = FsyncPolicy::kTimed;
  opts.interval = std::chrono::milliseconds(0);  // every append is "late"
  WalWriter w(*fs, "wal", 0, opts);
  ASSERT_TRUE(w.append(sample_record(1)));
  EXPECT_EQ(w.synced_version(), 1u);
  opts.interval = std::chrono::hours(1);  // never expires in-test
  WalWriter w2(*fs, "wal2", 0, opts);
  ASSERT_TRUE(w2.append(sample_record(1)));
  EXPECT_EQ(w2.synced_version(), 0u);
  ASSERT_TRUE(w2.sync());
  EXPECT_EQ(w2.synced_version(), 1u);
}

TEST(Wal, StickyFailureAfterIoError) {
  auto fs = std::make_shared<MemFs>();
  WalWriter w(*fs, "wal", 0, {});
  ASSERT_TRUE(w.append(sample_record(1)));
  fs->fail_at_op(1);  // next op fails transiently; the fs itself recovers
  EXPECT_FALSE(w.append(sample_record(2)));
  EXPECT_TRUE(w.failed());
  // Sticky: even though the fs works again, the writer stays dead.
  EXPECT_FALSE(w.append(sample_record(3)));
  EXPECT_EQ(w.synced_version(), 1u);
  // The durable prefix is still a valid log.
  WalSegment seg = read_wal_segment(*fs, "wal");
  ASSERT_TRUE(seg.header_ok);
  ASSERT_GE(seg.records.size(), 1u);
  EXPECT_EQ(seg.records[0].version, 1u);
}

// --- Checkpoints -----------------------------------------------------------

Checkpoint sample_checkpoint(uint64_t version) {
  Checkpoint c;
  c.version = version;
  c.n = 32;
  c.stretch = 5;
  c.snap_keys = {edge_key(0, 1), edge_key(3, 7)};
  c.graph_keys = {edge_key(0, 1), edge_key(1, 2), edge_key(3, 7)};
  c.snapshot_checksum =
      snapshot_content_checksum(c.n, c.stretch, c.version, c.snap_keys);
  return c;
}

TEST(Checkpoint, RoundTrip) {
  auto fs = std::make_shared<MemFs>();
  Checkpoint in = sample_checkpoint(12);
  ASSERT_TRUE(write_checkpoint(*fs, "d", in));
  auto out = load_checkpoint(*fs, "d", 12);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->version, in.version);
  EXPECT_EQ(out->n, in.n);
  EXPECT_EQ(out->stretch, in.stretch);
  EXPECT_EQ(out->snapshot_checksum, in.snapshot_checksum);
  EXPECT_EQ(out->snap_keys, in.snap_keys);
  EXPECT_EQ(out->graph_keys, in.graph_keys);
  EXPECT_EQ(parse_checkpoint_file_name(checkpoint_file_name(12)), 12u);
  EXPECT_FALSE(parse_checkpoint_file_name("wal-0000000000000001.log"));
  EXPECT_FALSE(parse_checkpoint_file_name("ckpt.tmp"));
}

TEST(Checkpoint, CrashMidWriteLeavesThePreviousOneCommitted) {
  // Sweep a crash through every mutating op of write_checkpoint: whatever
  // the crash point, checkpoint 5 must stay loadable and checkpoint 9 must
  // be either fully committed or invisible — never half-visible.
  for (uint64_t crash_op = 1; crash_op <= 4; ++crash_op) {
    auto fs = std::make_shared<MemFs>();
    ASSERT_TRUE(write_checkpoint(*fs, "d", sample_checkpoint(5)));
    fs->crash_at_op(crash_op);
    bool ok = write_checkpoint(*fs, "d", sample_checkpoint(9));
    Rng rng(crash_op);
    fs->crash_and_restart(CrashTail::kKeepPrefix, rng);
    auto old_ckpt = load_checkpoint(*fs, "d", 5);
    ASSERT_TRUE(old_ckpt.has_value()) << "crash_op=" << crash_op;
    auto new_ckpt = load_checkpoint(*fs, "d", 9);
    if (ok) EXPECT_TRUE(new_ckpt.has_value());
    if (new_ckpt) EXPECT_EQ(new_ckpt->snap_keys, sample_checkpoint(9).snap_keys);
  }
}

TEST(Checkpoint, CorruptionIsDetected) {
  auto fs = std::make_shared<MemFs>();
  ASSERT_TRUE(write_checkpoint(*fs, "d", sample_checkpoint(3)));
  const std::string path = "d/" + checkpoint_file_name(3);
  const size_t size = fs->durable_size(path);
  ASSERT_GT(size, 0u);
  Rng rng(5);
  for (int trial = 0; trial < 32; ++trial) {
    size_t at = size_t(rng.next_below(size));
    uint8_t bit = uint8_t(rng.next_below(8));
    ASSERT_TRUE(fs->corrupt_durable(path, at, bit));
    EXPECT_FALSE(load_checkpoint(*fs, "d", 3).has_value());
    ASSERT_TRUE(fs->corrupt_durable(path, at, bit));  // flip back
    ASSERT_TRUE(load_checkpoint(*fs, "d", 3).has_value());
  }
}

// --- ShardDurability lifecycle --------------------------------------------

TEST(ShardDurability, LogRotationAndGcKeepRecoverableState) {
  auto fs = std::make_shared<MemFs>();
  DurabilityOptions opts;
  opts.checkpoint_every = 4;
  opts.keep_checkpoints = 2;

  const size_t n = 150;
  auto [initial, batches] = gen_mixed_stream(n, 900, 50, 24, 17);
  auto svc = make_service(n, initial, 3, 9);
  ASSERT_TRUE(svc->enable_durability(fs, "dur", opts, initial));
  for (const auto& b : batches) svc->apply(b.insertions, b.deletions);
  ASSERT_FALSE(svc->durability()->failed());
  EXPECT_EQ(svc->durability()->records_logged(), batches.size());
  EXPECT_EQ(svc->durability()->durable_version(), batches.size());

  // GC bounded the file count: at most keep_checkpoints snapshots and
  // their segments (+1 in-flight of each).
  size_t n_ckpt = 0, n_wal = 0;
  for (const std::string& name : fs->list("dur")) {
    n_ckpt += parse_checkpoint_file_name(name).has_value();
    n_wal += name.rfind("wal-", 0) == 0;
  }
  EXPECT_LE(n_ckpt, opts.keep_checkpoints + 1);
  EXPECT_LE(n_wal, opts.keep_checkpoints + 1);

  // Clean-shutdown recovery (no crash): byte-exact state.
  auto expect = svc->snapshot();
  auto rec = ShardDurability::recover(fs, "dur", opts);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->version, expect->version());
  EXPECT_EQ(rec->checksum, expect->checksum());
  EXPECT_FALSE(rec->tail_truncated);
  EXPECT_TRUE(std::equal(rec->snap_keys.begin(), rec->snap_keys.end(),
                         expect->edge_keys().begin(),
                         expect->edge_keys().end()));
}

TEST(ShardDurability, CreateWipesStaleIncarnation) {
  auto fs = std::make_shared<MemFs>();
  DurabilityOptions opts;
  {
    auto [initial, batches] = gen_mixed_stream(80, 400, 40, 6, 2);
    auto svc = make_service(80, initial, 3, 4);
    ASSERT_TRUE(svc->enable_durability(fs, "dur", opts, initial));
    for (const auto& b : batches) svc->apply(b.insertions, b.deletions);
  }
  // New incarnation from scratch in the same dir: recovery must see ONLY
  // the new service's history, not the stale (higher-versioned) one.
  auto svc2 = make_service(80, {}, 3, 5);
  ASSERT_TRUE(svc2->enable_durability(fs, "dur", opts, {}));
  auto r = svc2->apply({{1, 2}, {2, 3}}, {});
  auto rec = ShardDurability::recover(fs, "dur", opts);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->version, 1u);
  EXPECT_EQ(rec->checksum, r.snapshot->checksum());
}

// --- Service-level recovery ------------------------------------------------

TEST(ServiceRecovery, RestoresExactStateAndContinues) {
  auto fs = std::make_shared<MemFs>();
  DurabilityOptions opts;
  opts.checkpoint_every = 8;

  const size_t n = 200;
  auto [initial, batches] = gen_mixed_stream(n, 1400, 60, 20, 33);
  FullyDynamicSpannerConfig cfg;
  cfg.k = 3;
  cfg.seed = 21;
  auto svc = std::make_unique<SpannerService>(
      std::make_unique<FullyDynamicSpanner>(n, initial, cfg), 5);
  ASSERT_TRUE(svc->enable_durability(fs, "dur", opts, initial));

  std::vector<uint64_t> live_checksums{svc->snapshot()->checksum()};
  for (const auto& b : batches) {
    auto r = svc->apply(b.insertions, b.deletions);
    live_checksums.push_back(r.snapshot->checksum());
  }
  auto final_view = svc->snapshot();
  std::vector<Edge> final_graph_check = final_view->edges();
  svc.reset();  // "clean crash": nothing unsynced (every-record policy)

  SpannerService::RecoveryReport rep;
  auto recovered = SpannerService::recover(
      fs, "dur", opts,
      [&cfg](uint64_t rn, const std::vector<Edge>& edges, uint32_t) {
        return std::make_unique<FullyDynamicSpanner>(size_t(rn), edges, cfg);
      },
      &rep);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(rep.restored_version, batches.size());
  EXPECT_EQ(rep.restored_checksum, live_checksums.back());
  EXPECT_FALSE(rep.tail_truncated);
  EXPECT_EQ(rep.published_version, batches.size() + 1);

  // The served snapshot is the rebase epoch: next version, a valid spanner
  // of the recovered graph.
  auto snap = recovered->snapshot();
  EXPECT_EQ(snap->version(), rep.published_version);
  EXPECT_TRUE(snap->consistent());

  // Continuation: more batches apply and stay durable; a second recovery
  // lands on the continued history (checksum-exact).
  auto [unused, more] = gen_mixed_stream(n, 1400, 60, 5, 34);
  (void)unused;
  uint64_t last = 0;
  for (const auto& b : more) {
    auto r = recovered->apply(b.insertions, b.deletions);
    last = r.snapshot->checksum();
  }
  ASSERT_FALSE(recovered->durability()->failed());
  SpannerService::RecoveryReport rep2;
  auto recovered2 = SpannerService::recover(
      fs, "dur", opts,
      [&cfg](uint64_t rn, const std::vector<Edge>& edges, uint32_t) {
        return std::make_unique<FullyDynamicSpanner>(size_t(rn), edges, cfg);
      },
      &rep2);
  ASSERT_NE(recovered2, nullptr);
  EXPECT_EQ(rep2.restored_checksum, last);
  EXPECT_EQ(rep2.restored_version, rep.published_version + more.size());
}

TEST(ServiceRecovery, NoValidCheckpointMeansNoService) {
  auto fs = std::make_shared<MemFs>();
  DurabilityOptions opts;
  auto recovered = SpannerService::recover(
      fs, "nowhere", opts,
      [](uint64_t rn, const std::vector<Edge>& edges, uint32_t) {
        return std::make_unique<FullyDynamicSpanner>(
            size_t(rn), edges, FullyDynamicSpannerConfig{});
      });
  EXPECT_EQ(recovered, nullptr);
}

}  // namespace
}  // namespace parspan
