// Self-tests for the verification oracles: a broken oracle would silently
// green-light broken structures, so the oracles themselves are tested
// against hand-computed cases.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "verify/laplacian.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

TEST(SpannerCheck, AcceptsSelfAndRejectsNonSubset) {
  auto g = gen_cycle(6);
  EXPECT_TRUE(is_spanner(6, g, g, 1));
  // Spanner with an edge not in the graph must be rejected.
  auto h = g;
  h.emplace_back(0, 3);
  EXPECT_FALSE(is_spanner(6, g, h, 10));
}

TEST(SpannerCheck, DetectsStretchViolation) {
  // Cycle minus one edge: remaining path has stretch n-1 for that edge.
  auto g = gen_cycle(8);
  std::vector<Edge> h(g.begin(), g.end() - 1);  // drop edge (7,0)
  EXPECT_FALSE(is_spanner(8, g, h, 6));
  EXPECT_TRUE(is_spanner(8, g, h, 7));
  EXPECT_EQ(max_edge_stretch(8, g, h, 7), 7u);
  EXPECT_EQ(max_edge_stretch(8, g, h, 6), UINT32_MAX);
}

TEST(SpannerCheck, DisconnectedSpannerRejected) {
  auto g = gen_path(5);
  std::vector<Edge> h = {{0, 1}, {3, 4}};  // misses (1,2),(2,3)
  EXPECT_FALSE(is_spanner(5, g, h, 100));
}

TEST(SpannerCheck, EmptyGraphTriviallySpanned) {
  EXPECT_TRUE(is_spanner(4, {}, {}, 1));
}

TEST(Laplacian, QuadraticFormMatchesHandComputation) {
  // Triangle with unit weights; x = (1, 0, -1):
  // (1-0)^2 + (0-(-1))^2 + (1-(-1))^2 = 1 + 1 + 4 = 6.
  std::vector<WeightedEdge> tri = {
      {{0, 1}, 1.0}, {{1, 2}, 1.0}, {{0, 2}, 1.0}};
  EXPECT_DOUBLE_EQ(quadratic_form(tri, {1, 0, -1}), 6.0);
  // Doubling weights doubles the form.
  for (auto& we : tri) we.w = 2.0;
  EXPECT_DOUBLE_EQ(quadratic_form(tri, {1, 0, -1}), 12.0);
}

TEST(Laplacian, CutWeightMatchesHandComputation) {
  std::vector<WeightedEdge> path = {
      {{0, 1}, 1.0}, {{1, 2}, 3.0}, {{2, 3}, 5.0}};
  std::vector<uint8_t> s = {1, 1, 0, 0};  // cut between 1 and 2
  EXPECT_DOUBLE_EQ(cut_weight(path, s), 3.0);
  s = {1, 0, 1, 0};  // edges (0,1),(1,2),(2,3) all cross
  EXPECT_DOUBLE_EQ(cut_weight(path, s), 9.0);
}

TEST(Laplacian, PerfectSparsifierHasZeroError) {
  auto g = gen_erdos_renyi(30, 120, 3);
  std::vector<WeightedEdge> h;
  for (const Edge& e : g) h.push_back({e, 1.0});
  auto q = sparsifier_quality(30, g, h, 10, 10, 5);
  EXPECT_DOUBLE_EQ(q.max_form_err, 0.0);
  EXPECT_DOUBLE_EQ(q.max_cut_err, 0.0);
}

TEST(Laplacian, HalfGraphHasLargeError) {
  auto g = gen_erdos_renyi(30, 200, 7);
  std::vector<WeightedEdge> h;
  for (size_t i = 0; i < g.size() / 2; ++i) h.push_back({g[i], 1.0});
  auto q = sparsifier_quality(30, g, h, 10, 10, 5);
  EXPECT_GT(q.max_cut_err, 0.2);
}

}  // namespace
}  // namespace parspan
