// Tests for the decremental (2k-1)-spanner of Lemma 3.3.
//
// Strategy: the structure carries a full oracle (check_invariants) that
// recomputes the cluster fixpoint, the InterCluster membership and the
// contribution refcounts from scratch; randomized decremental streams
// assert it after every batch, plus the (2k-1) stretch property via the
// spanner_check oracle, plus diff consistency against a materialized copy.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/cluster_spanner.hpp"
#include "graph/generators.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

std::vector<Edge> alive_edges(const std::vector<Edge>& all,
                              const std::unordered_set<EdgeKey>& dead) {
  std::vector<Edge> out;
  for (const Edge& e : all)
    if (!dead.count(e.key())) out.push_back(e);
  return out;
}

TEST(ClusterSpanner, InitIsValidSpanner) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto edges = gen_erdos_renyi(80, 400, seed);
    ClusterSpannerConfig cfg;
    cfg.k = 3;
    cfg.seed = seed * 7 + 1;
    DecrementalClusterSpanner sp(80, edges, cfg);
    EXPECT_TRUE(sp.check_invariants());
    auto h = sp.spanner_edges();
    EXPECT_TRUE(is_spanner(80, edges, h, 2 * cfg.k - 1))
        << "seed=" << seed << " |H|=" << h.size();
    EXPECT_LE(h.size(), edges.size());
  }
}

TEST(ClusterSpanner, SingletonAndTinyGraphs) {
  ClusterSpannerConfig cfg;
  cfg.k = 2;
  {
    DecrementalClusterSpanner sp(1, {}, cfg);
    EXPECT_EQ(sp.spanner_size(), 0u);
    EXPECT_TRUE(sp.check_invariants());
  }
  {
    DecrementalClusterSpanner sp(2, {{0, 1}}, cfg);
    EXPECT_EQ(sp.spanner_size(), 1u);  // single edge must be kept
    auto diff = sp.delete_edges({{0, 1}});
    EXPECT_EQ(diff.removed.size(), 1u);
    EXPECT_EQ(sp.spanner_size(), 0u);
    EXPECT_TRUE(sp.check_invariants());
  }
}

TEST(ClusterSpanner, DeleteAbsentAndDuplicate) {
  auto edges = gen_cycle(10);
  ClusterSpannerConfig cfg;
  cfg.k = 2;
  DecrementalClusterSpanner sp(10, edges, cfg);
  auto diff = sp.delete_edges({{3, 7}});  // absent edge
  EXPECT_TRUE(diff.inserted.empty());
  EXPECT_TRUE(diff.removed.empty());
  sp.delete_edges({{0, 1}});
  auto diff2 = sp.delete_edges({{0, 1}, {0, 1}});  // dead + duplicate
  EXPECT_TRUE(diff2.inserted.empty());
  EXPECT_TRUE(diff2.removed.empty());
  EXPECT_TRUE(sp.check_invariants());
}

class ClusterSpannerRandom
    : public ::testing::TestWithParam<
          std::tuple<size_t, size_t, uint32_t, size_t, uint64_t>> {};

TEST_P(ClusterSpannerRandom, DecrementalStreamKeepsAllInvariants) {
  auto [n, m, k, batch, seed] = GetParam();
  auto edges = gen_erdos_renyi(n, m, seed);
  ClusterSpannerConfig cfg;
  cfg.k = k;
  cfg.seed = seed ^ 0x5eed;
  DecrementalClusterSpanner sp(n, edges, cfg);
  ASSERT_TRUE(sp.check_invariants());

  // Materialized copy for diff cross-checking.
  std::unordered_set<EdgeKey> mat;
  for (const Edge& e : sp.spanner_edges()) mat.insert(e.key());

  auto stream = gen_decremental_stream(edges, batch, seed ^ 0xdead);
  std::unordered_set<EdgeKey> dead;
  for (auto& b : stream) {
    auto diff = sp.delete_edges(b.deletions);
    for (const Edge& e : b.deletions) dead.insert(e.key());
    // Apply diff to the materialized copy; must stay consistent.
    for (const Edge& e : diff.removed) {
      ASSERT_TRUE(mat.count(e.key())) << "removed edge not in spanner";
      mat.erase(e.key());
    }
    for (const Edge& e : diff.inserted) {
      ASSERT_TRUE(!mat.count(e.key())) << "inserted edge already in spanner";
      mat.insert(e.key());
    }
    ASSERT_EQ(mat.size(), sp.spanner_size());
    ASSERT_TRUE(sp.check_invariants())
        << "n=" << n << " m=" << m << " k=" << k << " seed=" << seed;
    // Spanner property on the remaining graph.
    auto alive = alive_edges(edges, dead);
    auto h = sp.spanner_edges();
    ASSERT_TRUE(is_spanner(n, alive, h, 2 * k - 1))
        << "alive=" << alive.size() << " |H|=" << h.size();
    // Spanner edges must be alive.
    for (const Edge& e : h) ASSERT_FALSE(dead.count(e.key()));
  }
  EXPECT_EQ(sp.spanner_size(), 0u);
  EXPECT_EQ(sp.alive_edges(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterSpannerRandom,
    ::testing::Values(
        std::make_tuple(size_t{25}, size_t{70}, uint32_t{2}, size_t{5},
                        uint64_t{1}),
        std::make_tuple(size_t{40}, size_t{120}, uint32_t{3}, size_t{11},
                        uint64_t{2}),
        std::make_tuple(size_t{40}, size_t{200}, uint32_t{4}, size_t{17},
                        uint64_t{3}),
        std::make_tuple(size_t{60}, size_t{180}, uint32_t{2}, size_t{30},
                        uint64_t{4}),
        std::make_tuple(size_t{60}, size_t{180}, uint32_t{5}, size_t{7},
                        uint64_t{5}),
        std::make_tuple(size_t{30}, size_t{60}, uint32_t{3}, size_t{60},
                        uint64_t{6}),
        std::make_tuple(size_t{80}, size_t{300}, uint32_t{3}, size_t{23},
                        uint64_t{7}),
        std::make_tuple(size_t{15}, size_t{105}, uint32_t{2}, size_t{9},
                        uint64_t{8})));

TEST(ClusterSpanner, ForestOnlyModeMaintainsForest) {
  // intercluster=false: only intra-cluster tree edges (Lemma 6.4 instance).
  auto edges = gen_erdos_renyi(50, 200, 5);
  ClusterSpannerConfig cfg;
  cfg.k = 3;
  cfg.intercluster = false;
  cfg.beta = 0.3;
  cfg.delta_cap = 20.0;
  DecrementalClusterSpanner sp(50, edges, cfg);
  EXPECT_TRUE(sp.check_invariants());
  // A forest has < n edges.
  EXPECT_LT(sp.spanner_size(), 50u);
  auto stream = gen_decremental_stream(edges, 13, 77);
  for (auto& b : stream) {
    sp.delete_edges(b.deletions);
    ASSERT_TRUE(sp.check_invariants());
    ASSERT_LT(sp.spanner_size(), 50u);
  }
}

TEST(ClusterSpanner, ClusterChangesAreCounted) {
  auto edges = gen_erdos_renyi(60, 240, 6);
  ClusterSpannerConfig cfg;
  cfg.k = 4;
  DecrementalClusterSpanner sp(60, edges, cfg);
  auto stream = gen_decremental_stream(edges, 16, 42);
  for (auto& b : stream) sp.delete_edges(b.deletions);
  // Lemma 3.6: expected total cluster changes <= 2 t log n per vertex.
  double bound = 2.0 * sp.t() * std::log2(60.0) * 60.0;
  EXPECT_LE(double(sp.cluster_changes()), 4 * bound)
      << "cluster churn way above the Lemma 3.6 bound";
}

TEST(ClusterSpanner, CompleteGraphOneCluster) {
  // In a complete graph with k >= 2, a t=1 sampling keeps all clusters
  // singleton; with larger delta the highest-priority vertex tends to absorb
  // everything. Either way the structure must be a valid spanner.
  auto edges = gen_complete(12);
  ClusterSpannerConfig cfg;
  cfg.k = 3;
  cfg.seed = 9;
  DecrementalClusterSpanner sp(12, edges, cfg);
  EXPECT_TRUE(sp.check_invariants());
  EXPECT_TRUE(is_spanner(12, edges, sp.spanner_edges(), 5));
}

TEST(ClusterSpanner, PathGraphKeepsAllEdges) {
  // A path is its own unique spanner: every edge is a bridge.
  auto edges = gen_path(20);
  ClusterSpannerConfig cfg;
  cfg.k = 4;
  DecrementalClusterSpanner sp(20, edges, cfg);
  EXPECT_EQ(sp.spanner_size(), edges.size());
  EXPECT_TRUE(sp.check_invariants());
}

}  // namespace
}  // namespace parspan
