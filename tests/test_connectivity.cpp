// Tests for the dynamic spanning forest substrate (SmallComponentForest).
#include <gtest/gtest.h>

#include <unordered_set>

#include "connectivity/dynamic_forest.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

TEST(SmallComponentForest, LinkAndCut) {
  SmallComponentForest f(6);
  auto d1 = f.update({{0, 1}, {1, 2}, {3, 4}}, {});
  EXPECT_EQ(d1.inserted.size(), 3u);  // all tree edges
  EXPECT_TRUE(f.connected(0, 2));
  EXPECT_FALSE(f.connected(0, 3));
  auto d2 = f.update({{2, 3}}, {});
  EXPECT_TRUE(f.connected(0, 4));
  auto d3 = f.update({}, {{1, 2}});
  EXPECT_FALSE(f.connected(0, 2));
  EXPECT_TRUE(f.connected(2, 4));
  EXPECT_TRUE(f.check_invariants());
  bool saw_removed = false;
  for (const Edge& e : d3.removed) saw_removed |= (e.key() == edge_key(1, 2));
  EXPECT_TRUE(saw_removed);
}

TEST(SmallComponentForest, CycleDeletionKeepsConnectivity) {
  SmallComponentForest f(5);
  f.update(gen_cycle(5), {});
  EXPECT_EQ(f.forest_size(), 4u);
  // Deleting one tree edge must reroute through the cycle.
  auto tree = f.forest_edges();
  f.update({}, {tree[0]});
  EXPECT_EQ(f.forest_size(), 4u);
  for (VertexId v = 1; v < 5; ++v) EXPECT_TRUE(f.connected(0, v));
  EXPECT_TRUE(f.check_invariants());
}

TEST(SmallComponentForest, RandomizedAgainstBfsOracle) {
  Rng rng(31);
  const size_t n = 40;
  SmallComponentForest f(n);
  std::unordered_set<EdgeKey> live;
  for (int step = 0; step < 150; ++step) {
    std::vector<Edge> ins, del;
    for (int i = 0; i < 6; ++i) {
      VertexId u = VertexId(rng.next_below(n));
      VertexId v = VertexId(rng.next_below(n));
      if (u == v) continue;
      EdgeKey k = edge_key(u, v);
      if (live.count(k)) {
        if (rng.next_bool(0.5)) {
          del.push_back(edge_from_key(k));
          live.erase(k);
        }
      } else {
        ins.push_back(edge_from_key(k));
        live.insert(k);
      }
    }
    auto diff = f.update(ins, del);
    ASSERT_TRUE(f.check_invariants()) << "step " << step;
    ASSERT_EQ(f.num_edges(), live.size());
  }
}

TEST(SmallComponentForest, BatchDeleteEverything) {
  auto edges = gen_erdos_renyi(30, 100, 3);
  SmallComponentForest f(30);
  f.update(edges, {});
  f.update({}, edges);
  EXPECT_EQ(f.forest_size(), 0u);
  EXPECT_EQ(f.num_edges(), 0u);
  EXPECT_TRUE(f.check_invariants());
}

}  // namespace
}  // namespace parspan
