// Lease/failover state machine tests (DESIGN.md §14.2–14.3): in-process
// ReplicaNode fleets over real loopback sockets and PosixFs temp dirs.
// What chaosctl asserts across processes with signals, this suite asserts
// in-process where every node's status is directly inspectable:
//
//   * a leader + followers bootstrap converges through the socket path;
//   * leader death elects the longest durably-verified log automatically
//     (no operator), with an epoch bump and survivor resync;
//   * a PARTITIONED follower (subscribe refused, control plane reachable)
//     never usurps a live leader, and reconverges after healing;
//   * a crashed follower restarts off its own chain and catches up;
//   * the CandidateStatus election rule itself, pinned.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "replication/failover.hpp"
#include "replication/node.hpp"

namespace parspan {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

// Distinct port range per test (fleets don't outlive their test, but
// lingering TIME_WAIT sockets must not cross-talk) and per run (parallel
// ctest invocations on one machine).
uint16_t next_base() {
  static std::atomic<int> counter{0};
  const int slot = counter.fetch_add(1);
  return static_cast<uint16_t>(22000 + (getpid() * 97 % 6000) + slot * 32);
}

struct Fleet {
  std::string root;
  std::shared_ptr<PosixFs> fs = std::make_shared<PosixFs>();
  std::vector<PeerAddr> peers;
  std::vector<std::unique_ptr<ReplicaNode>> nodes;

  Fleet(size_t size, const std::string& name) {
    const uint16_t base = next_base();
    root = "/tmp/parspan_lease_" + std::to_string(getpid()) + "/" + name;
    fs->mkdirs(root);
    for (size_t i = 0; i < size; ++i) {
      PeerAddr p;
      p.ctl_port = static_cast<uint16_t>(base + 3 * i);
      p.repl_port = static_cast<uint16_t>(base + 3 * i + 1);
      p.client_port = static_cast<uint16_t>(base + 3 * i + 2);
      peers.push_back(p);
    }
    nodes.resize(size);
  }
  ~Fleet() {
    for (auto& n : nodes)
      if (n) n->stop();
  }

  ReplicaNodeConfig config(uint32_t i) const {
    ReplicaNodeConfig c;
    c.index = i;
    c.peers = peers;
    c.fs = fs;
    c.dir = root + "/node" + std::to_string(i);
    c.n = 64;
    c.spanner.k = 2;
    c.spanner.seed = 5;
    c.tick_ms = 2;
    c.heartbeat_ms = 25;
    c.lease_ms = 200;
    c.peer_timeout_ms = 100;
    return c;
  }

  ReplicaNode& start(uint32_t i, bool as_leader, uint32_t initial_leader) {
    ReplicaNodeConfig c = config(i);
    c.start_as_leader = as_leader;
    c.initial_leader = initial_leader;
    nodes[i] = std::make_unique<ReplicaNode>(std::move(c));
    EXPECT_TRUE(nodes[i]->start()) << "node " << i << " failed to start";
    return *nodes[i];
  }
};

// Blocks until every running node agrees: one leader, every follower
// lease-healthy at the leader's (epoch, version, checksum). Returns the
// leader's index, or -1 on timeout.
int await_convergence(Fleet& f, std::chrono::milliseconds budget = 15s) {
  const auto deadline = Clock::now() + budget;
  while (Clock::now() < deadline) {
    int leader = -1;
    bool ok = true;
    std::vector<NodeStatus> st;
    for (size_t i = 0; i < f.nodes.size(); ++i) {
      if (!f.nodes[i]) continue;
      st.push_back(f.nodes[i]->status());
      if (st.back().role == NodeRole::kLeader) {
        if (leader >= 0) ok = false;  // two leaders: not converged
        leader = static_cast<int>(i);
      }
    }
    if (ok && leader >= 0) {
      NodeStatus ls{};
      for (size_t i = 0, k = 0; i < f.nodes.size(); ++i) {
        if (!f.nodes[i]) continue;
        if (static_cast<int>(i) == leader) ls = st[k];
        ++k;
      }
      for (const NodeStatus& s : st) {
        if (s.role == NodeRole::kLeader) continue;
        ok = ok && s.lease_healthy && s.epoch == ls.epoch &&
             s.applied_version == ls.applied_version &&
             s.applied_checksum == ls.applied_checksum;
      }
      if (ok) return leader;
    }
    std::this_thread::sleep_for(5ms);
  }
  return -1;
}

// A few durable writes through the leader's real front door.
void write_batches(const Fleet& f, int leader, uint64_t salt, int count) {
  auto client = net::NetClient::connect("127.0.0.1",
                                        f.peers[leader].client_port);
  ASSERT_TRUE(client.has_value()) << "front door unreachable";
  for (int b = 0; b < count; ++b) {
    std::vector<Edge> ins;
    for (int e = 0; e < 6; ++e) {
      const uint64_t x = salt * 31 + b * 7 + e;
      ins.emplace_back(static_cast<VertexId>(x % 64),
                       static_cast<VertexId>((x * 13 + 1) % 64));
    }
    auto r = client->submit(0, ins, {});
    ASSERT_EQ(r.status, net::Status::kOk);
  }
  ASSERT_TRUE(client->flush().has_value());
}

// --- Election rule, pinned --------------------------------------------------

TEST(LeaseFailover, ElectionPicksLongestLogTiesToLowestIndex) {
  using C = CandidateStatus;
  auto won = elect_longest_log(std::vector<C>{{true, 5}, {true, 9}, {true, 7}});
  ASSERT_TRUE(won.has_value());
  EXPECT_EQ(won->winner, 1u);
  EXPECT_EQ(won->durable_version, 9u);

  won = elect_longest_log(std::vector<C>{{true, 7}, {false, 99}, {true, 7}});
  ASSERT_TRUE(won.has_value());
  EXPECT_EQ(won->winner, 0u) << "ties break to the lowest index";

  EXPECT_FALSE(elect_longest_log(std::vector<C>{{false, 3}, {false, 8}})
                   .has_value())
      << "stateless candidates cannot run";
  EXPECT_FALSE(elect_longest_log(std::vector<C>{}).has_value());
}

// --- Bootstrap convergence --------------------------------------------------

TEST(LeaseFailover, FleetBootstrapsAndConvergesOverSockets) {
  Fleet f(3, "bootstrap");
  f.start(0, /*as_leader=*/true, 0);
  f.start(1, false, 0);
  f.start(2, false, 0);
  ASSERT_EQ(await_convergence(f), 0);
  write_batches(f, 0, /*salt=*/1, /*count=*/8);
  ASSERT_EQ(await_convergence(f), 0);
  const NodeStatus ls = f.nodes[0]->status();
  EXPECT_GT(ls.applied_version, 0u);
  for (int i : {1, 2}) {
    const NodeStatus s = f.nodes[i]->status();
    EXPECT_EQ(s.applied_version, ls.applied_version);
    EXPECT_EQ(s.applied_checksum, ls.applied_checksum);
    EXPECT_EQ(s.rejects, 0u) << "healthy run must not reject";
  }
}

// --- Automatic failover -----------------------------------------------------

TEST(LeaseFailover, LeaderDeathElectsLongestLogWithEpochBump) {
  Fleet f(3, "failover");
  f.start(0, true, 0);
  f.start(1, false, 0);
  f.start(2, false, 0);
  ASSERT_EQ(await_convergence(f), 0);
  write_batches(f, 0, 2, 6);
  ASSERT_EQ(await_convergence(f), 0);
  const uint64_t old_epoch = f.nodes[0]->status().epoch;
  const uint64_t converged_version = f.nodes[1]->status().applied_version;

  // Kill the leader. No operator from here on: the followers' leases
  // expire, they poll each other, and the longest log (a tie — index 1
  // wins deterministically) promotes itself.
  f.nodes[0]->stop();
  f.nodes[0].reset();
  const int new_leader = await_convergence(f);
  ASSERT_EQ(new_leader, 1);
  const NodeStatus promoted = f.nodes[1]->status();
  EXPECT_GT(promoted.epoch, old_epoch) << "promotion must fence the epoch";
  EXPECT_GE(promoted.durable_version, converged_version)
      << "failover lost durably-replicated writes";

  // The group is writable again, and the survivor follows the new leader.
  write_batches(f, 1, 3, 6);
  ASSERT_EQ(await_convergence(f), 1);
  const NodeStatus survivor = f.nodes[2]->status();
  EXPECT_EQ(survivor.epoch, promoted.epoch);
  EXPECT_GE(survivor.resyncs, 1u)
      << "the rebase epoch must re-seed survivors explicitly";
}

// --- Partition safety -------------------------------------------------------

TEST(LeaseFailover, PartitionedFollowerDoesNotUsurpAndReconverges) {
  Fleet f(3, "partition");
  f.start(0, true, 0);
  f.start(1, false, 0);
  f.start(2, false, 0);
  ASSERT_EQ(await_convergence(f), 0);
  write_batches(f, 0, 4, 4);
  ASSERT_EQ(await_convergence(f), 0);
  const uint64_t epoch_before = f.nodes[0]->status().epoch;

  // Cut follower 1's replication path. Its control plane — and the
  // leader's — stay reachable: the exact split where a naive detector
  // would usurp.
  ASSERT_TRUE(ReplicaNode::request_partition(f.peers[0], 1, true,
                                             /*timeout_ms=*/1000));
  std::this_thread::sleep_for(1200ms);  // several leases + election rounds
  EXPECT_EQ(f.nodes[0]->role(), NodeRole::kLeader)
      << "a partitioned follower deposed a live leader";
  EXPECT_EQ(f.nodes[1]->role(), NodeRole::kFollower);
  EXPECT_EQ(f.nodes[0]->status().epoch, epoch_before)
      << "partition must not burn an epoch";
  EXPECT_FALSE(f.nodes[1]->status().lease_healthy);

  // Writes continue during the partition; the healthy follower tracks.
  write_batches(f, 0, 5, 4);

  // Heal. The cut follower redials, resubscribes, and converges.
  ASSERT_TRUE(ReplicaNode::request_partition(f.peers[0], 1, false, 1000));
  ASSERT_EQ(await_convergence(f), 0);
  EXPECT_TRUE(f.nodes[1]->status().lease_healthy);
}

// --- Follower crash + local recovery ----------------------------------------

TEST(LeaseFailover, FollowerRestartRecoversLocallyAndCatchesUp) {
  Fleet f(3, "restart");
  f.start(0, true, 0);
  f.start(1, false, 0);
  f.start(2, false, 0);
  ASSERT_EQ(await_convergence(f), 0);
  write_batches(f, 0, 6, 6);
  ASSERT_EQ(await_convergence(f), 0);
  const uint64_t durable_before = f.nodes[2]->status().durable_version;
  EXPECT_GT(durable_before, 0u);

  f.nodes[2]->stop();
  f.nodes[2].reset();
  write_batches(f, 0, 7, 6);  // the fleet moves on without it

  // Restart off the same chain: local recovery must restore the durable
  // prefix BEFORE any byte arrives, then the cursor closes the gap.
  ReplicaNode& back = f.start(2, false, 0);
  EXPECT_GE(back.status().durable_version, durable_before)
      << "restart lost the local durable prefix";
  ASSERT_EQ(await_convergence(f), 0);
  const NodeStatus caught_up = back.status();
  EXPECT_EQ(caught_up.applied_version, f.nodes[0]->status().applied_version);
  EXPECT_EQ(caught_up.applied_checksum, f.nodes[0]->status().applied_checksum);
}

}  // namespace
}  // namespace parspan
