// Tests for the monotone O(log n)-spanner (Lemma 6.4) and the t-bundle
// spanner (Theorem 1.5).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "core/bundle.hpp"
#include "core/mpx_spanner.hpp"
#include "graph/generators.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

std::vector<Edge> minus(const std::vector<Edge>& a,
                        const std::vector<Edge>& b) {
  std::unordered_set<EdgeKey> drop;
  for (const Edge& e : b) drop.insert(e.key());
  std::vector<Edge> out;
  for (const Edge& e : a)
    if (!drop.count(e.key())) out.push_back(e);
  return out;
}

TEST(MonotoneSpanner, InitCoversAllEdges) {
  for (uint64_t seed : {1u, 2u}) {
    auto edges = gen_erdos_renyi(60, 300, seed);
    MonotoneSpannerConfig cfg;
    cfg.seed = seed + 100;
    MonotoneSpanner sp(60, edges, cfg);
    EXPECT_TRUE(sp.check_invariants());
    EXPECT_TRUE(is_spanner(60, edges, sp.spanner_edges(), sp.stretch_bound()))
        << "stretch_bound=" << sp.stretch_bound();
  }
}

TEST(MonotoneSpanner, DecrementalStreamStaysValid) {
  auto edges = gen_erdos_renyi(40, 160, 3);
  MonotoneSpannerConfig cfg;
  cfg.seed = 7;
  MonotoneSpanner sp(40, edges, cfg);
  std::unordered_set<EdgeKey> mat;
  for (const Edge& e : sp.spanner_edges()) mat.insert(e.key());
  auto stream = gen_decremental_stream(edges, 20, 9);
  std::vector<Edge> alive = edges;
  for (auto& b : stream) {
    auto diff = sp.delete_edges(b.deletions);
    for (const Edge& e : diff.removed) {
      ASSERT_TRUE(mat.count(e.key()));
      mat.erase(e.key());
    }
    for (const Edge& e : diff.inserted) {
      ASSERT_TRUE(!mat.count(e.key()));
      mat.insert(e.key());
    }
    alive = minus(alive, b.deletions);
    ASSERT_EQ(mat.size(), sp.spanner_size());
    ASSERT_TRUE(sp.check_invariants());
    ASSERT_TRUE(is_spanner(40, alive, sp.spanner_edges(),
                           sp.stretch_bound()));
  }
  EXPECT_EQ(sp.spanner_size(), 0u);
}

TEST(MonotoneSpanner, StretchBoundIsLemma64Witness) {
  // Lemma 6.4: an edge covered by instance i detours through its cluster
  // forest in at most 2 (t_i - 1) hops (both endpoints sit within t_i - 1
  // of the covering center), so the union's stretch witness is exactly
  // 2 * max_i (t_i - 1) — the header's documented bound, previously
  // computed with a spurious +1.
  for (uint64_t seed : {6u, 7u}) {
    auto edges = gen_erdos_renyi(60, 400, seed);
    MonotoneSpannerConfig cfg;
    cfg.seed = seed + 3;
    MonotoneSpanner sp(60, edges, cfg);
    ASSERT_GT(sp.num_instances(), 0u);
    uint32_t max_t = 0;
    for (size_t i = 0; i < sp.num_instances(); ++i)
      max_t = std::max(max_t, sp.instance_t(i));
    ASSERT_GE(max_t, 1u);
    EXPECT_EQ(sp.stretch_bound(), 2 * (max_t - 1));
    // And the tightened bound must actually hold on the graph.
    EXPECT_TRUE(
        is_spanner(60, edges, sp.spanner_edges(), sp.stretch_bound()));
  }
}

TEST(MonotoneSpanner, RecourseIsMonotoneBounded) {
  // Lemma 6.4: total recourse over a full deletion sequence is
  // O(n log^3 n), independent of m. We check it does not scale with m.
  const size_t n = 50;
  auto edges = gen_erdos_renyi(n, 600, 4);
  MonotoneSpannerConfig cfg;
  cfg.seed = 13;
  MonotoneSpanner sp(n, edges, cfg);
  auto stream = gen_decremental_stream(edges, 25, 17);
  for (auto& b : stream) sp.delete_edges(b.deletions);
  double logn = std::log2(double(n));
  EXPECT_LT(double(sp.cumulative_recourse()),
            40.0 * double(n) * logn * logn * logn);
}

TEST(SpannerBundle, InitLevelsAreSpanners) {
  auto edges = gen_erdos_renyi(50, 350, 5);
  BundleConfig cfg;
  cfg.t = 3;
  cfg.seed = 21;
  SpannerBundle b(50, edges, cfg);
  EXPECT_TRUE(b.check_invariants());
  std::vector<Edge> remaining = edges;
  for (size_t i = 0; i < b.levels(); ++i) {
    auto hi = b.level_edges(i);
    EXPECT_TRUE(
        is_spanner(50, remaining, hi, b.level_stretch_bound(i)))
        << "level " << i;
    remaining = minus(remaining, hi);
  }
  // Residual = edges minus all levels.
  auto resid = b.residual_edges();
  EXPECT_EQ(resid.size(), remaining.size());
}

class BundleRandom
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint32_t,
                                                 size_t, uint64_t>> {};

TEST_P(BundleRandom, DecrementalStreamKeepsBundleProperty) {
  auto [n, m, t, batch, seed] = GetParam();
  auto edges = gen_erdos_renyi(n, m, seed);
  BundleConfig cfg;
  cfg.t = t;
  cfg.seed = seed ^ 0xb0b;
  SpannerBundle b(n, edges, cfg);
  ASSERT_TRUE(b.check_invariants());
  std::unordered_set<EdgeKey> mat;
  for (const Edge& e : b.bundle_edges()) mat.insert(e.key());

  auto stream = gen_decremental_stream(edges, batch, seed ^ 0xcafe);
  std::vector<Edge> alive = edges;
  for (auto& bb : stream) {
    auto diff = b.delete_edges(bb.deletions);
    alive = minus(alive, bb.deletions);
    for (const Edge& e : diff.removed) {
      ASSERT_TRUE(mat.count(e.key()));
      mat.erase(e.key());
    }
    for (const Edge& e : diff.inserted) {
      ASSERT_TRUE(!mat.count(e.key()));
      mat.insert(e.key());
    }
    ASSERT_EQ(mat.size(), b.bundle_size());
    ASSERT_TRUE(b.check_invariants());
    // Per-level spanner property on the live graph.
    std::vector<Edge> remaining = alive;
    for (size_t i = 0; i < b.levels(); ++i) {
      auto hi = b.level_edges(i);
      ASSERT_TRUE(is_spanner(n, remaining, hi, b.level_stretch_bound(i)))
          << "level " << i << " after a batch";
      remaining = minus(remaining, hi);
    }
  }
  EXPECT_EQ(b.bundle_size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BundleRandom,
    ::testing::Values(
        std::make_tuple(size_t{25}, size_t{120}, uint32_t{2}, size_t{15},
                        uint64_t{1}),
        std::make_tuple(size_t{30}, size_t{200}, uint32_t{3}, size_t{25},
                        uint64_t{2}),
        std::make_tuple(size_t{40}, size_t{250}, uint32_t{2}, size_t{40},
                        uint64_t{3}),
        std::make_tuple(size_t{20}, size_t{100}, uint32_t{4}, size_t{10},
                        uint64_t{4})));

TEST(SpannerBundle, AmortizedRecourseIsConstant) {
  // Theorem 1.5: amortized |δ| per deleted edge is O(1). Every edge enters
  // and leaves the bundle at most once, so cumulative recourse <= 2m + |B0|.
  auto edges = gen_erdos_renyi(40, 300, 8);
  BundleConfig cfg;
  cfg.t = 3;
  cfg.seed = 5;
  SpannerBundle b(40, edges, cfg);
  size_t b0 = b.bundle_size();
  auto stream = gen_decremental_stream(edges, 30, 6);
  for (auto& bb : stream) b.delete_edges(bb.deletions);
  EXPECT_LE(b.cumulative_recourse(), 2 * edges.size() + b0);
}

}  // namespace
}  // namespace parspan
