// Tests for the static baseline spanners (Baswana-Sen [BS07] and the
// exponential start-time clustering of [MPVX15]).
#include <gtest/gtest.h>

#include "core/baselines/baswana_sen.hpp"
#include "core/baselines/static_mpvx.hpp"
#include "graph/bfs.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "verify/spanner_check.hpp"

namespace parspan {
namespace {

class BaswanaSenSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint32_t,
                                                 uint64_t>> {};

TEST_P(BaswanaSenSweep, ProducesValidSpanner) {
  auto [n, m, k, seed] = GetParam();
  auto edges = gen_erdos_renyi(n, m, seed);
  auto h = baswana_sen_spanner(n, edges, k, seed * 2 + 1);
  EXPECT_TRUE(is_spanner(n, edges, h, 2 * k - 1))
      << "n=" << n << " m=" << m << " k=" << k << " |H|=" << h.size();
  EXPECT_LE(h.size(), edges.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaswanaSenSweep,
    ::testing::Values(std::make_tuple(size_t{40}, size_t{200}, uint32_t{2},
                                      uint64_t{1}),
                      std::make_tuple(size_t{60}, size_t{400}, uint32_t{3},
                                      uint64_t{2}),
                      std::make_tuple(size_t{80}, size_t{600}, uint32_t{4},
                                      uint64_t{3}),
                      std::make_tuple(size_t{100}, size_t{300}, uint32_t{2},
                                      uint64_t{4}),
                      std::make_tuple(size_t{50}, size_t{1225}, uint32_t{3},
                                      uint64_t{5})));

TEST(BaswanaSen, SparsifiesDenseGraphs) {
  const size_t n = 200;
  auto edges = gen_erdos_renyi(n, 8000, 7);
  auto h = baswana_sen_spanner(n, edges, 3, 9);
  // Expected O(k n^{1+1/k}): generous factor for small n.
  double bound = 3.0 * std::pow(double(n), 1.0 + 1.0 / 3.0);
  EXPECT_LE(double(h.size()), 4 * bound);
  EXPECT_LT(h.size(), edges.size() / 2);
}

TEST(BaswanaSen, PathKeptIntact) {
  auto edges = gen_path(30);
  auto h = baswana_sen_spanner(30, edges, 3, 1);
  EXPECT_EQ(h.size(), edges.size());
}

class MpvxSweep : public ::testing::TestWithParam<
                      std::tuple<size_t, size_t, uint32_t, uint64_t>> {};

TEST_P(MpvxSweep, ProducesValidSpanner) {
  auto [n, m, k, seed] = GetParam();
  auto edges = gen_erdos_renyi(n, m, seed);
  auto res = mpvx_spanner(n, edges, k, seed * 7 + 3);
  EXPECT_TRUE(is_spanner(n, edges, res.spanner, 2 * k - 1))
      << "n=" << n << " k=" << k << " |H|=" << res.spanner.size();
  EXPECT_LE(res.rounds, k);
  // Every non-isolated vertex is clustered.
  std::vector<size_t> deg(n, 0);
  for (auto& e : edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  for (VertexId v = 0; v < n; ++v) {
    if (deg[v] > 0) EXPECT_NE(res.cluster[v], kNoVertex);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpvxSweep,
    ::testing::Values(std::make_tuple(size_t{40}, size_t{200}, uint32_t{2},
                                      uint64_t{1}),
                      std::make_tuple(size_t{60}, size_t{400}, uint32_t{3},
                                      uint64_t{2}),
                      std::make_tuple(size_t{80}, size_t{700}, uint32_t{4},
                                      uint64_t{3}),
                      std::make_tuple(size_t{50}, size_t{1225}, uint32_t{2},
                                      uint64_t{4})));

TEST(Mpvx, DenseGraphSparsifies) {
  const size_t n = 300;
  auto edges = gen_erdos_renyi(n, 12000, 5);
  auto res = mpvx_spanner(n, edges, 3, 7);
  double bound = std::pow(double(n), 1.0 + 1.0 / 3.0);
  EXPECT_LE(double(res.spanner.size()), 6 * bound);
}

TEST(Mpvx, ClusterRadiiBounded) {
  // Cluster forests have radius < k: parents form chains to the center of
  // length < k, so the spanner restricted to a cluster is shallow.
  auto edges = gen_erdos_renyi(100, 800, 11);
  uint32_t k = 3;
  auto res = mpvx_spanner(100, edges, k, 13);
  // The cluster forest is a subset of the spanner; path from any vertex to
  // its center uses < k edges, checked via BFS in the spanner.
  DynamicGraph h(100);
  h.insert_edges(res.spanner);
  for (VertexId v = 0; v < 100; ++v) {
    if (res.cluster[v] == kNoVertex || res.cluster[v] == v) continue;
    auto d = bounded_bfs(h, {v}, k);
    EXPECT_LE(d[res.cluster[v]], k) << "v=" << v;
  }
}

}  // namespace
}  // namespace parspan
