// Unit + randomized oracle tests for CountedTreap, PriorityList (Lemma 3.1
// interface), ShardedMap and ConcurrentFixedMap.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "container/concurrent_map.hpp"
#include "container/counted_treap.hpp"
#include "container/flat_map.hpp"
#include "container/priority_list.hpp"
#include "parallel/parallel_for.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

TEST(CountedTreap, BasicInsertFindErase) {
  CountedTreap<int> t;
  EXPECT_TRUE(t.empty());
  t.insert(10, 100);
  t.insert(5, 50);
  t.insert(20, 200);
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.find(10), nullptr);
  EXPECT_EQ(*t.find(10), 100);
  EXPECT_EQ(t.find(11), nullptr);
  EXPECT_TRUE(t.erase(10));
  EXPECT_FALSE(t.erase(10));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(10), nullptr);
}

TEST(CountedTreap, SelectDescOrderStatistics) {
  CountedTreap<int> t;
  for (uint64_t k : {3u, 1u, 4u, 1u + 4, 9u, 2u, 6u}) t.insert(k, int(k));
  // keys: 1,2,3,4,5,6,9 -> descending: 9,6,5,4,3,2,1
  std::vector<uint64_t> expect = {9, 6, 5, 4, 3, 2, 1};
  for (size_t k = 1; k <= expect.size(); ++k)
    EXPECT_EQ(t.select_desc(k).first, expect[k - 1]) << "k=" << k;
}

TEST(CountedTreap, RankDesc) {
  CountedTreap<int> t;
  for (uint64_t k : {10u, 20u, 30u}) t.insert(k, 0);
  EXPECT_EQ(t.rank_desc(30), 1u);
  EXPECT_EQ(t.rank_desc(20), 2u);
  EXPECT_EQ(t.rank_desc(10), 3u);
  EXPECT_EQ(t.rank_desc(25), 1u);  // only 30 >= 25
  EXPECT_EQ(t.rank_desc(5), 3u);
  EXPECT_EQ(t.rank_desc(31), 0u);
}

TEST(CountedTreap, ForEachDescFrom) {
  CountedTreap<int> t;
  for (uint64_t k = 1; k <= 100; ++k) t.insert(k * 2, int(k));
  std::vector<uint64_t> seen;
  t.for_each_desc_from(51, [&](uint64_t key, int&) {
    seen.push_back(key);
    return key > 40;  // stop at 40
  });
  // keys <= 51 descending: 50,48,...; stop after emitting 40.
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen.front(), 50u);
  EXPECT_EQ(seen.back(), 40u);
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i], seen[i - 1]);
}

TEST(CountedTreap, RandomizedAgainstStdMap) {
  Rng rng(99);
  CountedTreap<uint64_t> t;
  std::map<uint64_t, uint64_t> ref;
  for (int step = 0; step < 20000; ++step) {
    uint64_t key = rng.next_below(500);
    int op = int(rng.next_below(3));
    if (op == 0) {
      if (!ref.count(key)) {
        uint64_t v = rng.next();
        t.insert(key, v);
        ref[key] = v;
      }
    } else if (op == 1) {
      EXPECT_EQ(t.erase(key), ref.erase(key) > 0);
    } else {
      auto* v = t.find(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(v, nullptr);
      } else {
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, it->second);
      }
    }
    EXPECT_EQ(t.size(), ref.size());
  }
  // Full order-statistics sweep at the end.
  std::vector<uint64_t> keys;
  for (auto& [k, v] : ref) keys.push_back(k);
  for (size_t k = 1; k <= keys.size(); ++k)
    EXPECT_EQ(t.select_desc(k).first, keys[keys.size() - k]);
}

TEST(CountedTreap, BuildSortedMatchesIncrementalInserts) {
  Rng rng(41);
  std::set<uint64_t> keyset;
  while (keyset.size() < 3000) keyset.insert(rng.next_below(1u << 20));
  std::vector<std::pair<uint64_t, uint64_t>> xs;
  for (uint64_t k : keyset) xs.push_back({k, k * 3});
  CountedTreap<uint64_t> bulk, incr;
  bulk.build_sorted(xs.data(), xs.size());
  for (auto& [k, v] : xs) incr.insert(k, v);
  ASSERT_EQ(bulk.size(), xs.size());
  // Same order statistics, ranks and lookups as the insert-built tree.
  for (size_t k = 1; k <= xs.size(); k += 37)
    EXPECT_EQ(bulk.select_desc(k).first, incr.select_desc(k).first);
  for (auto& [k, v] : xs) {
    ASSERT_NE(bulk.find(k), nullptr);
    EXPECT_EQ(*bulk.find(k), v);
    EXPECT_EQ(bulk.rank_desc(k), incr.rank_desc(k));
  }
  // Bulk-built trees accept further dynamic updates.
  EXPECT_TRUE(bulk.erase(xs[10].first));
  bulk.insert(xs[10].first, 7);
  EXPECT_EQ(*bulk.find(xs[10].first), 7u);
  EXPECT_EQ(bulk.size(), xs.size());
}

TEST(CountedTreap, BuildSortedEmptyAndSingle) {
  CountedTreap<int> t;
  t.build_sorted(nullptr, 0);
  EXPECT_TRUE(t.empty());
  std::pair<uint64_t, int> one{42, 7};
  t.build_sorted(&one, 1);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.find(42), 7);
}

TEST(FlatHashMap, BasicOps) {
  FlatHashMap<uint64_t, uint32_t> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), nullptr);
  EXPECT_FALSE(m.erase(5));
  m[5] = 50;
  m[9] = 90;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_EQ(*m.find(5), 50u);
  EXPECT_TRUE(m.contains(9));
  EXPECT_FALSE(m.contains(7));
  EXPECT_TRUE(m.erase(5));
  EXPECT_FALSE(m.erase(5));
  EXPECT_EQ(m.size(), 1u);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.contains(9));
}

TEST(FlatHashMap, RandomizedAgainstStdMap) {
  Rng rng(123);
  FlatHashMap<uint64_t, uint64_t> m;
  std::map<uint64_t, uint64_t> ref;
  // Small key universe maximizes collision chains and backward-shift moves.
  for (int step = 0; step < 50000; ++step) {
    uint64_t key = rng.next_below(300);
    int op = int(rng.next_below(3));
    if (op == 0) {
      uint64_t v = rng.next();
      m[key] = v;
      ref[key] = v;
    } else if (op == 1) {
      EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
    } else {
      auto* v = m.find(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(v, nullptr);
      } else {
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, it->second);
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  size_t visited = 0;
  m.for_each([&](uint64_t k, uint64_t& v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatHashMap, SentinelKeyLookupsAreAbsent) {
  // The all-ones key is the empty-slot sentinel; querying it must answer
  // "absent" (not match an empty slot) even in release builds.
  FlatHashMap<uint64_t, uint32_t> m;
  constexpr uint64_t sentinel = FlatHashMap<uint64_t, uint32_t>::kEmptyKey;
  m[1] = 10;
  EXPECT_EQ(m.find(sentinel), nullptr);
  EXPECT_FALSE(m.contains(sentinel));
  EXPECT_FALSE(m.erase(sentinel));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMap, ReserveAvoidsGrowthAndKeepsEntries) {
  FlatHashMap<uint32_t, uint32_t> m;
  m.reserve(1000);
  for (uint32_t i = 0; i < 1000; ++i) m[i] = i * 2;
  EXPECT_EQ(m.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(*m.find(i), i * 2);
}

TEST(FlatHashSet, InsertEraseAnyMember) {
  FlatHashSet<uint32_t> s;
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));
  EXPECT_TRUE(s.insert(8));
  EXPECT_EQ(s.size(), 2u);
  uint32_t a = s.any();
  EXPECT_TRUE(a == 3 || a == 8);
  EXPECT_TRUE(s.erase(a));
  EXPECT_EQ(s.any(), a == 3 ? 8u : 3u);
  std::set<uint32_t> seen;
  s.for_each([&](uint32_t k) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 1u);
}

TEST(PriorityList, PaperInterfaceSemantics) {
  // Elements 'a'..'e' with priorities 50,40,30,20,10.
  std::vector<std::pair<char, uint64_t>> init = {
      {'a', 50}, {'b', 40}, {'c', 30}, {'d', 20}, {'e', 10}};
  PriorityList<char> pl(init);
  EXPECT_EQ(pl.size(), 5u);
  EXPECT_EQ(pl.query(1).second, 'a');
  EXPECT_EQ(pl.query(5).second, 'e');
  auto [val, rank] = pl.find(30);
  ASSERT_TRUE(val.has_value());
  EXPECT_EQ(*val, 'c');
  EXPECT_EQ(rank, 3u);

  // UpdatePriority moves 'a' (pos 1) to priority 15 -> new order b,c,d,a,e.
  pl.update_priority(1, 15);
  EXPECT_EQ(pl.query(1).second, 'b');
  EXPECT_EQ(pl.query(4).second, 'a');
  EXPECT_EQ(pl.query(5).second, 'e');

  // UpdateValue at position 2 ('c' now).
  pl.update_value(2, 'C');
  EXPECT_EQ(pl.query(2).second, 'C');
}

TEST(PriorityList, NextWithFindsFirstSatisfying) {
  std::vector<std::pair<int, uint64_t>> init;
  for (int i = 0; i < 100; ++i)
    init.push_back({i, uint64_t(1000 - i)});  // element i at position i+1
  PriorityList<int> pl(init);
  // First element >= position 10 that is divisible by 7: positions are
  // value+1; values 9,10,...; first divisible by 7 is 14 -> position 15.
  size_t q = pl.next_with(10, [](int v) { return v % 7 == 0; });
  EXPECT_EQ(q, 15u);
  // Nothing satisfies -> size()+1.
  EXPECT_EQ(pl.next_with(1, [](int) { return false; }), 101u);
  // First element satisfies.
  EXPECT_EQ(pl.next_with(42, [](int) { return true; }), 42u);
}

TEST(ShardedMap, BasicOps) {
  ShardedMap<uint64_t, int> m;
  m.insert_or_assign(1, 10);
  m.insert_or_assign(2, 20);
  EXPECT_EQ(m.get(1), std::optional<int>(10));
  EXPECT_FALSE(m.get(3).has_value());
  m.upsert(3, [](int& v) { v += 5; });
  EXPECT_EQ(m.get(3), std::optional<int>(5));
  EXPECT_TRUE(m.erase(2));
  EXPECT_FALSE(m.erase(2));
  EXPECT_EQ(m.size(), 2u);
}

TEST(ShardedMap, ParallelInsertsAllLand) {
  ShardedMap<uint64_t, uint64_t> m(64);
  const size_t n = 100000;
  parallel_for(0, n, [&](size_t i) { m.insert_or_assign(i, i * 3); }, 1);
  EXPECT_EQ(m.size(), n);
  for (size_t i = 0; i < n; i += 997) EXPECT_EQ(m.get(i), i * 3);
}

TEST(ShardedMap, UpdateOrErase) {
  ShardedMap<int, int> m;
  m.insert_or_assign(1, 5);
  EXPECT_TRUE(m.update_or_erase(1, [](int& v) {
    --v;
    return v > 0;
  }));
  EXPECT_EQ(m.get(1), std::optional<int>(4));
  for (int i = 0; i < 4; ++i)
    m.update_or_erase(1, [](int& v) {
      --v;
      return v > 0;
    });
  EXPECT_FALSE(m.contains(1));
  EXPECT_FALSE(m.update_or_erase(1, [](int&) { return true; }));
}

TEST(ConcurrentFixedMap, InsertFind) {
  ConcurrentFixedMap m(1000);
  EXPECT_TRUE(m.insert(42, 7));
  EXPECT_FALSE(m.insert(42, 9));  // first value wins
  EXPECT_EQ(m.find(42), std::optional<uint64_t>(7));
  EXPECT_FALSE(m.find(43).has_value());
}

TEST(ConcurrentFixedMap, ParallelInsertUnique) {
  const size_t n = 50000;
  ConcurrentFixedMap m(n);
  std::atomic<size_t> inserted{0};
  parallel_for(0, n, [&](size_t i) {
    if (m.insert(i + 1, i)) inserted.fetch_add(1);
  }, 1);
  EXPECT_EQ(inserted.load(), n);
  EXPECT_EQ(m.size(), n);
  for (size_t i = 0; i < n; i += 503) EXPECT_EQ(m.find(i + 1), i);
}

TEST(ConcurrentFixedMap, ParallelDuplicateKeysInsertOnce) {
  ConcurrentFixedMap m(100);
  std::atomic<size_t> wins{0};
  parallel_for(0, 10000, [&](size_t) {
    if (m.insert(5, 1)) wins.fetch_add(1);
  }, 1);
  EXPECT_EQ(wins.load(), 1u);
  EXPECT_EQ(m.size(), 1u);
}

}  // namespace
}  // namespace parspan
