// Sharded-service tests (DESIGN.md §9): queue coalescing semantics, the
// determinism contract through the async ingestion path (per-shard diffs
// and checksums byte-identical across writer counts), flush()
// read-your-writes under concurrent readers, cross-shard BFS against the
// unsharded union-graph reference, tenant isolation, and tiny-shard pins.
//
// The isolated-pair trick: tests that need to observe GRAPH membership
// through the spanner reserve vertices with no other incident edges — an
// edge between two isolated vertices is its endpoints' only connection, so
// it is in the spanner iff it is in the graph, and distance()==1 /
// kSnapshotUnreached witness presence/absence without depending on which
// edges the spanner algorithm happened to keep.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "durability/fault_fs.hpp"
#include "graph/bfs.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "parallel/worker_pool.hpp"
#include "service/batch_queue.hpp"
#include "service/sharded_service.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

std::vector<EdgeKey> diff_keys(const std::vector<Edge>& side) {
  std::vector<EdgeKey> out;
  out.reserve(side.size());
  for (const Edge& e : side) out.push_back(e.key());
  return out;
}

// --- BatchQueue unit semantics. --------------------------------------------

TEST(BatchQueue, CoalescingStateMachine) {
  BatchQueue q(64);
  const Edge e(3, 7), f(1, 2);

  // insert+delete cancels: only the (no-op-if-absent) delete survives, so
  // the backend batch nets to nothing for a fresh edge.
  q.submit({e}, {});
  q.submit({}, {e});
  auto d = q.drain();
  EXPECT_TRUE(d.insertions.empty());
  ASSERT_EQ(d.deletions.size(), 1u);
  EXPECT_EQ(d.deletions[0].key(), e.key());
  EXPECT_EQ(d.ticket, 2u);
  EXPECT_TRUE(q.empty());

  // delete-then-insert: the re-insert survives, drained as delete+insert
  // of the same key (the backend's deletions-first order refreshes it).
  q.submit({}, {e});
  q.submit({e}, {});
  d = q.drain();
  ASSERT_EQ(d.deletions.size(), 1u);
  ASSERT_EQ(d.insertions.size(), 1u);
  EXPECT_EQ(d.deletions[0].key(), e.key());
  EXPECT_EQ(d.insertions[0].key(), e.key());

  // delete-insert-delete collapses back to one delete.
  q.submit({}, {e});
  q.submit({e}, {});
  q.submit({}, {e});
  d = q.drain();
  ASSERT_EQ(d.deletions.size(), 1u);
  EXPECT_TRUE(d.insertions.empty());

  // Duplicate inserts coalesce; drained sides come out key-sorted.
  q.submit({e, e, f}, {});
  q.submit({e}, {});
  d = q.drain();
  ASSERT_EQ(d.insertions.size(), 2u);
  EXPECT_EQ(d.insertions[0].key(), f.key());  // (1,2) < (3,7)
  EXPECT_EQ(d.insertions[1].key(), e.key());
  EXPECT_TRUE(d.deletions.empty());

  // An empty queue drains to a zero ticket exactly once per quiescence.
  d = q.drain();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.ticket, 0u);

  // Empty submits still take tickets (flush-after-noop stays defined).
  uint64_t t = q.submit({}, {});
  d = q.drain();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.ticket, t);
}

TEST(BatchQueue, BackpressureBlocksAndDrainsReleases) {
  BatchQueue q(4);
  q.submit({Edge(0, 1), Edge(0, 2), Edge(0, 3), Edge(0, 4)}, {});
  ASSERT_EQ(q.pending_keys(), 4u);

  std::atomic<bool> submitted{false};
  std::thread t([&] {
    q.submit({Edge(0, 5)}, {});  // blocks: queue is at capacity
    submitted.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(submitted.load(std::memory_order_acquire));

  auto d = q.drain();
  EXPECT_EQ(d.insertions.size(), 4u);
  t.join();
  EXPECT_TRUE(submitted.load(std::memory_order_acquire));
  EXPECT_EQ(q.pending_keys(), 1u);
  q.drain();
}

TEST(BatchQueue, PausedGateAdmitsOnlyDemandedDrains) {
  BatchQueue q(16, false, /*start_paused=*/true);
  const Edge e(1, 2);
  uint64_t t1 = q.submit({e}, {});

  // Paused, no demand: a drain (e.g. a straggler writer) takes nothing.
  auto d = q.drain();
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.ticket, 0u);
  EXPECT_EQ(q.pending_keys(), 1u);

  // A flush demand authorizes exactly the pending round.
  q.demand(t1);
  d = q.drain();
  ASSERT_EQ(d.insertions.size(), 1u);
  EXPECT_EQ(d.ticket, t1);

  // Demand satisfied: the next round stays parked again...
  q.submit({}, {e});
  EXPECT_TRUE(q.drain().empty());
  EXPECT_EQ(q.pending_keys(), 1u);

  // ...until unpaused, when drains flow freely.
  q.set_paused(false);
  d = q.drain();
  ASSERT_EQ(d.deletions.size(), 1u);
}

// --- WorkerPool unit semantics. --------------------------------------------

TEST(WorkerPool, SlotExclusivityAndNoLostWakeups) {
  const size_t slots = 5;
  std::vector<std::atomic<int>> pending(slots);
  std::vector<std::atomic<int>> running(slots);
  std::atomic<uint64_t> drained{0};
  for (auto& p : pending) p.store(0);
  for (auto& r : running) r.store(0);

  WorkerPool pool(4, slots, [&](size_t s) {
    // Per-slot exclusivity: never two drains of one slot at once.
    EXPECT_EQ(running[s].fetch_add(1), 0);
    int took = pending[s].exchange(0);
    drained.fetch_add(uint64_t(took));
    running[s].fetch_sub(1);
    return pending[s].load() > 0;
  });

  const int per_thread = 200;
  std::vector<std::thread> producers;
  std::atomic<uint64_t> produced{0};
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&, t] {
      uint64_t x = uint64_t(t) + 99;
      for (int i = 0; i < per_thread; ++i) {
        x = splitmix64(x);
        size_t s = size_t(x % slots);
        pending[s].fetch_add(1);
        produced.fetch_add(1);
        pool.notify(s);
      }
    });
  }
  for (auto& p : producers) p.join();
  // Every notify lands at least one subsequent drain: the pool must reach
  // quiescence with nothing left pending.
  for (int spin = 0; spin < 2000 && drained.load() < produced.load(); ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(drained.load(), produced.load());
  pool.stop();
}

// The double-scheduling hazard of the unified scheduler (DESIGN.md §12.3):
// a drain is itself a scheduler task, and a drain body that calls
// parallel_for forks MORE tasks into the same pool. stop() must not wait on
// a drain whose nested tasks can no longer run, and a notify landing while
// the pool is stopping must neither launch nor leak. With every pool
// thread occupied by a drain, the drains' own join loops must execute the
// nested tasks (help-first), or this test deadlocks into the ctest TIMEOUT.
TEST(WorkerPool, StopDuringNestedParallelForDrains) {
  int prev_workers = num_workers();
  set_num_workers(4);
  for (int round = 0; round < 20; ++round) {
    const size_t slots = 4;
    std::vector<std::atomic<int>> running(slots);
    for (auto& r : running) r.store(0);
    std::atomic<uint64_t> work_done{0};
    WorkerPool pool(4, slots, [&](size_t s) {
      EXPECT_EQ(running[s].fetch_add(1), 0);
      // Nested fork-join inside the drain: grain=1 forces real task spawns.
      parallel_for(
          0, 64,
          [&](size_t) { work_done.fetch_add(1, std::memory_order_relaxed); },
          /*grain=*/1);
      running[s].fetch_sub(1);
      return false;
    });
    std::atomic<bool> stop{false};
    std::thread producer([&] {
      uint64_t x = uint64_t(round) + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        x = splitmix64(x);
        pool.notify(size_t(x % slots));
      }
    });
    // Vary the teardown instant: sometimes drains are mid-parallel_for,
    // sometimes queued-but-unstarted, sometimes the pool is idle.
    std::this_thread::sleep_for(std::chrono::microseconds(100 * (round % 5)));
    pool.stop();  // must return: no drain may strand its nested tasks
    stop.store(true, std::memory_order_relaxed);
    producer.join();
    uint64_t after_stop = work_done.load();
    pool.notify(0);  // no-op after stop
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(work_done.load(), after_stop);
  }
  set_num_workers(prev_workers);
}

// --- Determinism: per-shard diffs/checksums across writer counts. ----------
// Paused rounds bound every drain at a flush() barrier, so batch contents
// are a pure function of the submit stream — 1-writer and 4-writer runs
// must publish byte-identical per-shard diff sequences and checksums
// (DESIGN.md §9.4).
TEST(Sharded, DiffsAndChecksumsDeterministicAcrossWriterCounts) {
  const size_t n = 300;
  const uint32_t shards = 4;
  auto [initial, batches] = gen_mixed_stream(n, 3000, 90, 24, 7);
  FullyDynamicSpannerConfig cfg;
  cfg.k = 3;
  cfg.seed = 11;

  auto run = [&](int writers) {
    ShardedConfig sc;
    sc.num_writers = writers;
    sc.record_publishes = true;
    sc.start_paused = true;
    auto svc =
        ShardedSpannerService::single_graph(n, initial, shards, cfg, sc);
    // Three submits per round: the drained batch is their coalesced union.
    for (size_t i = 0; i + 3 <= batches.size(); i += 3) {
      for (size_t j = i; j < i + 3; ++j)
        svc->submit(batches[j].insertions, batches[j].deletions);
      svc->flush();
    }
    std::vector<std::vector<PublishRecord>> logs;
    for (size_t s = 0; s < shards; ++s) logs.push_back(svc->publish_log(s));
    return logs;
  };

  auto base = run(1);
  auto wide = run(4);
  ASSERT_EQ(base.size(), wide.size());
  for (size_t s = 0; s < shards; ++s) {
    ASSERT_EQ(base[s].size(), wide[s].size()) << "shard " << s;
    EXPECT_FALSE(base[s].empty()) << "shard " << s << " saw no publishes";
    for (size_t i = 0; i < base[s].size(); ++i) {
      EXPECT_EQ(base[s][i].version, wide[s][i].version) << s << "/" << i;
      EXPECT_EQ(base[s][i].checksum, wide[s][i].checksum) << s << "/" << i;
      EXPECT_EQ(diff_keys(base[s][i].diff.inserted),
                diff_keys(wide[s][i].diff.inserted))
          << s << "/" << i;
      EXPECT_EQ(diff_keys(base[s][i].diff.removed),
                diff_keys(wide[s][i].diff.removed))
          << s << "/" << i;
    }
  }
}

// --- Coalescing end to end, via isolated pairs. ----------------------------
TEST(Sharded, QueueCoalescingThroughTheBackend) {
  // 48 vertices across 4 range shards (stride 12). Vertices 5 (shard 0)
  // and 40 (shard 3) are made isolated by filtering their edges out of the
  // initial graph, so the probe edge between them is (a) its endpoints'
  // only connection and (b) genuinely cross-shard: owned by shard 0,
  // stitched into shard 3's side of the BFS.
  const size_t n = 48;
  const Edge probe(VertexId(5), VertexId(40));
  auto initial = gen_erdos_renyi(n, 140, 3);
  initial.erase(std::remove_if(initial.begin(), initial.end(),
                               [&](const Edge& e) {
                                 return e.u == probe.u || e.v == probe.u ||
                                        e.u == probe.v || e.v == probe.v;
                               }),
                initial.end());
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  cfg.seed = 5;
  ShardedConfig sc;
  sc.num_writers = 2;
  sc.record_publishes = true;
  sc.start_paused = true;
  auto svc = ShardedSpannerService::single_graph(n, initial, 4, cfg, sc);
  ASSERT_NE(svc->router().shard_of_vertex(probe.u),
            svc->router().shard_of_vertex(probe.v));

  // insert+delete in one round cancels: the probe pair stays disconnected
  // and the round's published diffs are empty on every shard.
  auto before = svc->versions();
  svc->submit({probe}, {});
  svc->submit({}, {probe});
  svc->flush();
  auto v1 = svc->view();
  EXPECT_FALSE(v1.has_edge(probe.u, probe.v));
  EXPECT_EQ(v1.distance(probe.u, probe.v, 10), kSnapshotUnreached);
  for (size_t s = 0; s < svc->num_shards(); ++s)
    for (const PublishRecord& r : svc->publish_log(s)) {
      EXPECT_TRUE(r.diff.inserted.empty());
      EXPECT_TRUE(r.diff.removed.empty());
    }
  (void)before;

  // Plain insert: the only edge between two isolated vertices must be in
  // the composed spanner.
  svc->submit({probe}, {});
  svc->flush();
  auto v2 = svc->view();
  EXPECT_TRUE(v2.has_edge(probe.u, probe.v));
  EXPECT_EQ(v2.distance(probe.u, probe.v, 10), 1u);

  // delete-then-insert in one round: the re-insert survives.
  svc->submit({}, {probe});
  svc->submit({probe}, {});
  svc->flush();
  auto v3 = svc->view();
  EXPECT_TRUE(v3.has_edge(probe.u, probe.v));
  EXPECT_EQ(v3.distance(probe.u, probe.v, 10), 1u);

  // insert (of the now-live edge) + delete: pure cancellation would be
  // wrong here — the delete must win.
  svc->submit({probe}, {});
  svc->submit({}, {probe});
  svc->flush();
  auto v4 = svc->view();
  EXPECT_FALSE(v4.has_edge(probe.u, probe.v));
  EXPECT_EQ(v4.distance(probe.u, probe.v, 10), kSnapshotUnreached);

  // The pinned earlier view was immutable throughout.
  EXPECT_TRUE(v2.has_edge(probe.u, probe.v));
}

// --- flush() read-your-writes under concurrent readers. --------------------
TEST(Sharded, FlushReadYourWritesUnderConcurrentReaders) {
  // 240 vertices, 4 range shards (stride 60). The churn stream lives on
  // 200 vertices remapped to the first 50 ids of each shard's range, so
  // ids 50..59, 110..119, 170..179, 230..239 stay isolated in EVERY
  // shard — probe edges between reserved ids of shard 0 and shard 3 are
  // cross-shard and immune to the churn.
  const size_t n = 240;
  const size_t probes = 10;
  auto remap = [](VertexId v) { return VertexId((v / 50) * 60 + v % 50); };
  auto remap_edges = [&](std::vector<Edge> es) {
    for (Edge& e : es) e = Edge(remap(e.u), remap(e.v));
    return es;
  };
  auto initial = remap_edges(gen_erdos_renyi(200, 1600, 13));
  FullyDynamicSpannerConfig cfg;
  cfg.k = 3;
  cfg.seed = 17;
  ShardedConfig sc;
  sc.num_writers = 4;
  auto svc = ShardedSpannerService::single_graph(n, initial, 4, cfg, sc);

  std::atomic<bool> done{false};
  const int R = 3;
  std::vector<uint64_t> acquired(R, 0);
  std::vector<std::thread> readers;
  for (int t = 0; t < R; ++t) {
    readers.emplace_back([&, t] {
      std::vector<uint64_t> last(svc->num_shards(), 0);
      uint64_t count = 0;
      while (!done.load(std::memory_order_acquire) || count == 0) {
        ShardedView view = svc->view();
        ++count;
        for (size_t s = 0; s < view.num_shards(); ++s) {
          // Per-shard: versions never run backwards, views never tear.
          ASSERT_GE(view.shard(s).version(), last[s]);
          last[s] = view.shard(s).version();
          ASSERT_TRUE(view.shard(s).consistent());
        }
        VertexId v = VertexId((t * 37 + count * 11) % n);
        for (VertexId w : view.neighbors(v)) ASSERT_TRUE(view.has_edge(v, w));
      }
      acquired[size_t(t)] = count;
    });
  }

  // Writer side: background churn (never flushed mid-round) plus one
  // isolated-pair probe per round — after flush(), the probe MUST be
  // visible in the very next view, across all shards (read-your-writes).
  auto [ini2, churn] = gen_mixed_stream(200, 1600, 48, probes, 29);
  (void)ini2;
  for (size_t i = 0; i < probes; ++i) {
    // Reserved shard-0 id x reserved shard-3 id: cross-shard by design.
    Edge probe(VertexId(50 + i), VertexId(230 + i));
    ASSERT_NE(svc->router().shard_of_vertex(probe.u),
              svc->router().shard_of_vertex(probe.v));
    svc->submit(remap_edges(churn[i].insertions),
                remap_edges(churn[i].deletions));
    svc->submit({probe}, {});
    VersionVector vv = svc->flush();
    ShardedView view = svc->view();
    ASSERT_TRUE(view.versions().dominates(vv)) << "round " << i;
    ASSERT_TRUE(view.has_edge(probe.u, probe.v)) << "round " << i;
    ASSERT_EQ(view.distance(probe.u, probe.v, 3), 1u) << "round " << i;
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  for (int t = 0; t < R; ++t) EXPECT_GT(acquired[size_t(t)], 0u);
}

// --- Cross-shard BFS == single-graph BFS on the union reference. -----------
TEST(Sharded, CrossShardBfsMatchesUnshardedReference) {
  const size_t n = 500;
  auto [initial, batches] = gen_mixed_stream(n, 3000, 120, 10, 41);
  FullyDynamicSpannerConfig cfg;
  cfg.k = 3;
  cfg.seed = 23;
  ShardedConfig sc;
  sc.num_writers = 2;
  auto svc = ShardedSpannerService::single_graph(n, initial, 4, cfg, sc);
  for (auto& b : batches) svc->submit(b.insertions, b.deletions);
  svc->flush();

  ShardedView view = svc->view();
  // The unsharded reference: one DynamicGraph over the composed edge set.
  std::vector<Edge> edges = view.edges();
  EXPECT_EQ(edges.size(), view.num_edges());
  DynamicGraph ref(n);
  ref.insert_edges(edges);

  // neighbors(): the stitched union equals the reference adjacency.
  for (VertexId v = 0; v < n; v += 7) {
    auto got = view.neighbors(v);
    auto span = ref.neighbors(v);
    std::vector<VertexId> want(span.begin(), span.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "vertex " << v;
    for (VertexId w : got) ASSERT_TRUE(view.has_edge(v, w));
  }

  // distance(): stitched bounded BFS equals bounded_bfs on the reference,
  // including the unreached-past-limit boundary.
  const uint32_t L = 4;
  for (VertexId u = 1; u < n; u += 97) {
    std::vector<uint32_t> dist = bounded_bfs(ref, {u}, L);
    for (VertexId v = 0; v < n; v += 13) {
      uint32_t want = (dist[v] <= L) ? dist[v] : kSnapshotUnreached;
      ASSERT_EQ(view.distance(u, v, L), want) << u << "->" << v;
    }
  }
}

// --- Multi-tenant: isolation + per-shard backend selection. ----------------
TEST(Sharded, MultiTenantIsolationAndMixedBackends) {
  std::vector<ShardSpec> specs(2);
  specs[0].kind = ShardSpec::Kind::kFullyDynamic;
  specs[0].n = 120;
  specs[0].initial = gen_erdos_renyi(120, 700, 3);
  specs[0].fd.k = 2;
  specs[0].fd.seed = 5;
  specs[1].kind = ShardSpec::Kind::kUltraSparse;
  specs[1].n = 200;
  specs[1].initial = gen_random_regular(200, 6, 9);
  specs[1].ultra.x = 2;
  specs[1].ultra.seed = 7;

  ShardedConfig sc;
  sc.num_writers = 2;
  ShardedSpannerService svc(std::move(specs),
                            std::make_unique<GraphIdRouter>(2), sc);

  // Tenant 0 churns; tenant 1 must not publish a single version.
  auto [ini, batches] = gen_mixed_stream(120, 700, 40, 6, 15);
  (void)ini;
  for (auto& b : batches) svc.submit(0, b.insertions, b.deletions);
  VersionVector vv = svc.flush();
  ASSERT_EQ(vv.v.size(), 2u);
  EXPECT_GT(vv.v[0], 0u);
  EXPECT_EQ(vv.v[1], 0u);

  // Tenant 1 (ultra-sparse backend) ingests through the same path.
  svc.submit(1, {Edge(0, 1), Edge(1, 2)}, {});
  VersionVector vv2 = svc.flush();
  EXPECT_GT(vv2.v[1], 0u);
  EXPECT_TRUE(vv2.dominates(vv));

  ShardedView view = svc.view();
  EXPECT_TRUE(view.graph(0).consistent());
  EXPECT_TRUE(view.graph(1).consistent());
  EXPECT_EQ(view.graph(1).version(), vv2.v[1]);

  // An unknown tenant id is rejected observably — never applied anywhere,
  // never out-of-bounds (client ids are data, not invariants).
  const uint64_t ingested = svc.edges_ingested();
  svc.submit(7, {Edge(0, 1)}, {Edge(1, 2)});
  VersionVector vv3 = svc.flush();
  EXPECT_EQ(svc.edges_rejected(), 2u);
  EXPECT_EQ(svc.edges_ingested(), ingested);
  EXPECT_EQ(vv3.v, vv2.v);  // no shard published for the rejected batch
}

// --- Tiny shards: n = 0 / n = 1 per shard, more shards than vertices. ------
TEST(Sharded, TinyShardEdgeCases) {
  // Multi-tenant with empty and single-vertex graphs.
  {
    std::vector<ShardSpec> specs(3);
    specs[0].n = 0;
    specs[1].n = 1;
    specs[2].n = 5;
    specs[2].initial = {Edge(0, 1), Edge(1, 2)};
    for (auto& s : specs) s.fd.k = 2;
    ShardedSpannerService svc(std::move(specs),
                              std::make_unique<GraphIdRouter>(3),
                              ShardedConfig{});
    svc.submit(2, {Edge(2, 3)}, {});
    svc.submit(0, {}, {});  // empty batch to the empty graph
    svc.submit(1, {}, {});
    VersionVector vv = svc.flush();
    ShardedView view = svc.view();
    EXPECT_TRUE(view.versions().dominates(vv));
    EXPECT_EQ(view.graph(0).num_edges(), 0u);
    EXPECT_EQ(view.graph(1).num_edges(), 0u);
    EXPECT_FALSE(view.graph(1).has_edge(0, 0));
    EXPECT_TRUE(view.graph(2).has_edge(2, 3));
  }
  // Single-graph: n = 3 under 4 shards (one shard owns no vertex range),
  // i.e. at most one vertex per shard.
  {
    FullyDynamicSpannerConfig cfg;
    cfg.k = 2;
    auto svc = ShardedSpannerService::single_graph(3, {Edge(0, 1)}, 4, cfg,
                                                   ShardedConfig{});
    svc->submit({Edge(1, 2)}, {});
    svc->flush();
    ShardedView view = svc->view();
    EXPECT_TRUE(view.has_edge(0, 1));
    EXPECT_TRUE(view.has_edge(1, 2));
    EXPECT_EQ(view.distance(0, 2, 4), 2u);
    EXPECT_EQ(view.neighbors(1), (std::vector<VertexId>{0, 2}));
    svc->submit({}, {Edge(0, 1)});
    svc->flush();
    EXPECT_FALSE(svc->view().has_edge(0, 1));
  }
  // Degenerate single shard still composes.
  {
    FullyDynamicSpannerConfig cfg;
    cfg.k = 2;
    auto svc = ShardedSpannerService::single_graph(
        10, gen_cycle(10), 1, cfg, ShardedConfig{});
    svc->flush();
    EXPECT_EQ(svc->view().distance(0, 5, 10), 5u);
  }
}

// --- pause() after free-running bounds the next round exactly. -------------
TEST(Sharded, PauseAfterFreeRunningParksSubmits) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  ShardedConfig sc;
  sc.num_writers = 2;
  auto svc = ShardedSpannerService::single_graph(
      20, gen_erdos_renyi(16, 40, 3), 2, cfg, sc);
  // Free-running warm-up: slots cycle through notify/drain.
  svc->submit({Edge(0, 9)}, {});
  svc->flush();
  VersionVector before = svc->versions();

  // pause() then submit: the queue-level gate guarantees no drain —
  // straggler or otherwise — takes this round before flush() demands it.
  svc->pause();
  const Edge probe(VertexId(17), VertexId(18));
  svc->submit({probe}, {});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(svc->versions().v, before.v);
  EXPECT_FALSE(svc->view().has_edge(probe.u, probe.v));

  VersionVector after = svc->flush();  // drains exactly the parked round
  EXPECT_TRUE(after.dominates(before));
  EXPECT_TRUE(svc->view().has_edge(probe.u, probe.v));
}

// --- resume() alone must drain work queued while paused. -------------------
TEST(Sharded, ResumeDrainsPendingWithoutFlush) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  ShardedConfig sc;
  sc.start_paused = true;
  auto svc = ShardedSpannerService::single_graph(
      20, gen_erdos_renyi(16, 40, 3), 2, cfg, sc);
  const Edge probe(VertexId(17), VertexId(18));  // isolated pair
  svc->submit({probe}, {});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(svc->versions().v, (std::vector<uint64_t>{0, 0}));  // still paused

  svc->resume();  // no flush: resume's own notify must drain the queue
  for (int spin = 0; spin < 2000 && !svc->view().has_edge(probe.u, probe.v);
       ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(svc->view().has_edge(probe.u, probe.v));
}

// --- Ingest-to-visible latency instrumentation sanity. ---------------------
// --- pause()/flush() round boundaries while drains fork nested work. -------
// Each flush() while paused drains exactly one round; the shard backends'
// update() calls run nested parallel loops on the same scheduler that runs
// the drain tasks themselves. Cycling pause → submit → flush → resume under
// a concurrent submitter checks that round boundaries stay exact (versions
// advance only at flush) and that a pausing pool never deadlocks a drain
// whose nested parallel_for tasks still need pool threads.
TEST(Sharded, PauseFlushRoundBoundariesUnderNestedParallelism) {
  int prev_workers = num_workers();
  set_num_workers(4);
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  ShardedConfig sc;
  sc.num_writers = 3;
  auto svc = ShardedSpannerService::single_graph(
      200, gen_erdos_renyi(160, 600, 5), 4, cfg, sc);
  svc->flush();

  std::atomic<bool> stop{false};
  std::thread submitter([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      VertexId u = VertexId(i % 160), v = VertexId((i * 31 + 7) % 160);
      if (u != v) svc->submit({Edge(u, v)}, {});
      ++i;
    }
  });

  for (int round = 0; round < 10; ++round) {
    svc->pause();
    // Isolated-pair probe for this round (vertices 160.. have no other
    // incident edges): parked until the flush barrier, visible after.
    const Edge probe(VertexId(160 + 2 * round), VertexId(161 + 2 * round));
    VersionVector before = svc->versions();
    svc->submit({probe}, {});
    EXPECT_FALSE(svc->view().has_edge(probe.u, probe.v));
    VersionVector after = svc->flush();
    EXPECT_TRUE(after.dominates(before));
    EXPECT_TRUE(svc->view().has_edge(probe.u, probe.v));
    svc->resume();
  }
  stop.store(true, std::memory_order_relaxed);
  submitter.join();
  svc->flush();
  // Every probe from every paused round survived the free-running churn.
  for (int round = 0; round < 10; ++round)
    EXPECT_TRUE(svc->view().has_edge(VertexId(160 + 2 * round),
                                     VertexId(161 + 2 * round)));
  svc.reset();
  set_num_workers(prev_workers);
}

TEST(BatchQueue, SubmitForTimesOutOnFullQueueAndAdmitsAfterDrain) {
  BatchQueue q(2);  // admission bound: 2 distinct pending keys
  ASSERT_TRUE(q.submit_for({Edge(0, 1), Edge(1, 2)}, {},
                           std::chrono::milliseconds(50))
                  .has_value());
  // Full: a deadline submit must give up without queueing anything.
  auto t = q.submit_for({Edge(2, 3)}, {}, std::chrono::milliseconds(5));
  EXPECT_FALSE(t.has_value());
  EXPECT_EQ(q.pending_keys(), 2u);  // the timed-out batch left no trace
  // A drain frees capacity; the same batch is then admitted whole.
  BatchQueue::Drained d = q.drain();
  EXPECT_EQ(d.insertions.size(), 2u);
  auto t2 = q.submit_for({Edge(2, 3)}, {}, std::chrono::milliseconds(50));
  ASSERT_TRUE(t2.has_value());
  EXPECT_GT(*t2, d.ticket);
  EXPECT_EQ(q.pending_keys(), 1u);
}

TEST(Sharded, SubmitForBackpressureIsObservable) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  ShardedConfig sc;
  sc.queue_capacity = 4;
  sc.start_paused = true;  // nothing drains: the queue can only fill up
  auto svc = ShardedSpannerService::single_graph(
      64, gen_erdos_renyi(64, 120, 9), 1, cfg, sc);

  std::vector<Edge> fill;
  for (VertexId v = 0; v < 8; ++v) fill.push_back(Edge(v, VertexId(v + 32)));
  // One admitted batch may overshoot the bound; it must be admitted whole.
  EXPECT_EQ(svc->submit_for(fill, {}, std::chrono::milliseconds(50)),
            ShardedSpannerService::SubmitStatus::kOk);
  EXPECT_EQ(svc->edges_ingested(), fill.size());

  // Queue is now over capacity and paused: the deadline must fire.
  EXPECT_EQ(svc->submit_for({Edge(20, 21)}, {}, std::chrono::milliseconds(5)),
            ShardedSpannerService::SubmitStatus::kTimeout);
  EXPECT_EQ(svc->edges_timed_out(), 1u);
  EXPECT_EQ(svc->edges_ingested(), fill.size());  // not double-counted

  // flush() drains the backlog even while paused; capacity returns and the
  // retried submit is admitted (resubmission is idempotent set semantics).
  svc->flush();
  EXPECT_EQ(svc->submit_for({Edge(20, 21)}, {}, std::chrono::milliseconds(250)),
            ShardedSpannerService::SubmitStatus::kOk);
  svc->flush();
  EXPECT_TRUE(svc->view().has_edge(20, 21));
}

// --- Destruction racing in-flight drain/publish/WAL-append ----------------
// The destructor's contract is "stop the pool, drop unflushed work": these
// hammer teardown at the most hostile instants — submits still landing,
// writers mid-drain, WAL appends mid-frame — and only require no
// crash/hang/race (TSan is the judge) plus intact durable state.

TEST(Sharded, DestructionRacesInFlightDrains) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  for (int round = 0; round < 12; ++round) {
    ShardedConfig sc;
    sc.num_writers = 3;
    auto svc = ShardedSpannerService::single_graph(
        80, gen_erdos_renyi(80, 200, round), 4, cfg, sc);
    std::atomic<bool> stop{false};
    std::thread submitter([&] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        VertexId u = VertexId(i % 80), v = VertexId((i * 7 + 13) % 80);
        if (u != v) svc->submit({Edge(u, v)}, {});
        ++i;
      }
    });
    std::thread reader([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto view = svc->view();
        (void)view.num_edges();
      }
    });
    // Let the race build up, then tear down while both threads hammer.
    for (int spin = 0; spin < 50 * (round + 1); ++spin) svc->versions();
    stop.store(true, std::memory_order_relaxed);
    submitter.join();
    reader.join();
    svc.reset();  // pool stop + shard teardown with queues non-empty
  }
}

TEST(Sharded, DestructionWithDurabilityLeavesRecoverableState) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  cfg.seed = 31;
  const size_t n = 80;
  auto initial = gen_erdos_renyi(n, 250, 8);
  for (int round = 0; round < 6; ++round) {
    auto fs = std::make_shared<MemFs>();
    ShardedConfig sc;
    sc.num_writers = 2;
    sc.durability.enabled = true;
    sc.durability.fs = fs;
    sc.durability.dir = "root";
    auto svc = ShardedSpannerService::single_graph(n, initial, 2, cfg, sc);
    std::thread submitter([&] {
      for (uint64_t i = 0; i < 400; ++i) {
        VertexId u = VertexId(i % n), v = VertexId((i * 11 + 5) % n);
        if (u != v) svc->submit({Edge(u, v)}, {});
      }
    });
    // Destroy mid-ingest: whatever was logged must recover, exactly.
    for (int spin = 0; spin < 40 * (round + 1); ++spin) svc->versions();
    submitter.join();  // join first: submit() into a dead service is UB
    svc.reset();
    auto back = ShardedSpannerService::recover(
        [&] {
          std::vector<ShardSpec> specs(2);
          for (uint32_t s = 0; s < 2; ++s) {
            specs[s].kind = ShardSpec::Kind::kFullyDynamic;
            specs[s].n = n;
            specs[s].fd = cfg;
            specs[s].fd.seed = hash_combine(cfg.seed, s);
          }
          return specs;
        }(),
        std::make_unique<VertexRangeRouter>(n, 2), sc);
    ASSERT_NE(back, nullptr);
    for (uint32_t s = 0; s < 2; ++s)
      EXPECT_TRUE(back->shard_service(s).snapshot()->consistent());
  }
}

TEST(Sharded, LatencySamplesRecorded) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  ShardedConfig sc;
  sc.record_latency = true;
  auto svc = ShardedSpannerService::single_graph(
      40, gen_erdos_renyi(40, 100, 3), 2, cfg, sc);
  const size_t rounds = 5;
  for (size_t i = 0; i < rounds; ++i) {
    svc->submit({Edge(VertexId(i), VertexId(i + 20))}, {});
    svc->flush();
  }
  auto samples = svc->latency_samples_ns();
  ASSERT_GE(samples.size(), rounds);  // >= one sample per submit
  for (int64_t ns : samples) EXPECT_GE(ns, 0);
  EXPECT_GE(svc->edges_ingested(), rounds);
}

// Admission is per shard: when one shard's queue is wedged past the
// deadline, only ITS sub-batch is dropped (counted in edges_timed_out);
// responsive shards admit theirs. A retry after capacity returns is a
// clean kOk and the full batch lands (set-semantics idempotence).
TEST(Sharded, SubmitForPartialAdmissionAcrossShards) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  ShardedConfig sc;
  sc.queue_capacity = 4;
  sc.start_paused = true;  // nothing drains: queues only fill
  const size_t n = 64;     // VertexRangeRouter: shard 0 owns 0..31
  auto svc = ShardedSpannerService::single_graph(
      n, gen_erdos_renyi(n, 120, 11), 2, cfg, sc);

  // Wedge shard 0 alone: lower endpoints < 32, so every edge routes there.
  std::vector<Edge> fill;
  for (VertexId v = 0; v < 6; ++v) fill.push_back(Edge(v, VertexId(v + 20)));
  ASSERT_EQ(svc->submit_for(fill, {}, std::chrono::milliseconds(50)),
            ShardedSpannerService::SubmitStatus::kOk);

  // A mixed batch: shard 0's half times out, shard 1's half is admitted.
  const std::vector<Edge> mixed = {Edge(10, 11), Edge(40, 41)};
  EXPECT_EQ(svc->submit_for(mixed, {}, std::chrono::milliseconds(5)),
            ShardedSpannerService::SubmitStatus::kTimeout);
  EXPECT_EQ(svc->edges_timed_out(), 1u);                   // Edge(10, 11)
  EXPECT_EQ(svc->edges_ingested(), fill.size() + 1);       // Edge(40, 41)

  // Capacity returns on flush; the idempotent retry admits everything.
  svc->flush();
  EXPECT_EQ(svc->submit_for(mixed, {}, std::chrono::milliseconds(250)),
            ShardedSpannerService::SubmitStatus::kOk);
  svc->flush();
  EXPECT_TRUE(svc->view().has_edge(10, 11));
  EXPECT_TRUE(svc->view().has_edge(40, 41));
  EXPECT_EQ(svc->edges_timed_out(), 1u);  // the retry timed nothing out
}

// Regression (PR 9): empty batches on a paused queue with record_times
// used to take a timestamp slot each, so `capacity` heartbeat/noop submits
// filled submit_times_ to the admission bound and every later REAL submit
// blocked until a flush demand happened to drain — a wedge with no
// producer-visible cause. Empty batches are now exempt from the admission
// bound and the time log.
TEST(BatchQueue, EmptySubmitsExemptFromAdmissionBoundAndTimeLog) {
  constexpr size_t kCap = 4;
  BatchQueue q(kCap, /*record_times=*/true, /*start_paused=*/true);
  // Paused: nothing drains. Exactly kCap noops — before the fix each took
  // a timestamp slot, filling the admission bound (one more would have
  // hung outright).
  uint64_t last = 0;
  for (size_t i = 0; i < kCap; ++i) last = q.submit({}, {});
  EXPECT_EQ(last, kCap);  // noops still take tickets (flush-after-noop)
  EXPECT_EQ(q.pending_keys(), 0u);

  // The real submit must be admitted immediately — the deadline is only a
  // test harness so a regression fails instead of hanging.
  auto t = q.submit_for({Edge(1, 2)}, {}, std::chrono::milliseconds(100));
  ASSERT_TRUE(t.has_value()) << "empty submits consumed admission capacity";
  EXPECT_EQ(*t, kCap + 1);

  // The drain covers every noop ticket but logs only the real submit.
  q.demand(*t);
  BatchQueue::Drained d = q.drain();
  EXPECT_EQ(d.ticket, *t);
  ASSERT_EQ(d.submit_times.size(), 1u);
  EXPECT_EQ(d.submit_times[0].first, *t);
}

// Regression (PR 9): submit_for granted each owning shard the FULL
// timeout sequentially, so a cross-shard batch against S wedged shards
// blocked up to S x timeout. One deadline is now shared: later shards get
// only the remaining budget (zero past the deadline — still a
// non-blocking admission try).
TEST(Sharded, SubmitForSharesOneDeadlineAcrossShards) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  ShardedConfig sc;
  sc.queue_capacity = 1;   // one pending key per shard = full
  sc.start_paused = true;  // nothing drains: every queue stays wedged
  const size_t n = 64;     // 4 shards x stride 16
  auto svc = ShardedSpannerService::single_graph(n, {}, 4, cfg, sc);

  // Wedge all four shard queues.
  ASSERT_EQ(svc->submit_for({Edge(0, 1), Edge(16, 17), Edge(32, 33),
                             Edge(48, 49)},
                            {}, std::chrono::milliseconds(50)),
            ShardedSpannerService::SubmitStatus::kOk);

  const auto timeout = std::chrono::milliseconds(200);
  const std::vector<Edge> cross = {Edge(2, 3), Edge(18, 19), Edge(34, 35),
                                   Edge(50, 51)};
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(svc->submit_for(cross, {}, timeout),
            ShardedSpannerService::SubmitStatus::kTimeout);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(svc->edges_timed_out(), cross.size());
  // Broken code waits ~4x timeout (800ms). The shared deadline bounds the
  // whole call by ~timeout; 2.5x leaves slack for scheduler noise.
  EXPECT_LT(elapsed, timeout * 5 / 2)
      << "cross-shard submit_for stacked per-shard timeouts";
}

// flush_async: the callback fires exactly once, after every pre-call
// submit is published; its VersionVector is pin-able via
// try_view_at_least, and a vv the service has not reached yet is refused
// without blocking.
TEST(Sharded, FlushAsyncBarrierAndPinByVersionVector) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  auto svc = ShardedSpannerService::single_graph(64, {}, 2, cfg, {});

  // Inline fire: nothing pending, the barrier is already satisfied.
  int inline_calls = 0;
  svc->flush_async([&](VersionVector vv) {
    ++inline_calls;
    EXPECT_EQ(vv.v.size(), 2u);
  });
  EXPECT_EQ(inline_calls, 1);

  svc->submit({Edge(1, 2), Edge(40, 41)}, {});
  std::atomic<int> calls{0};
  std::atomic<bool> pinned_ok{false};
  svc->flush_async([&](VersionVector vv) {
    // Pin-by-vv from the completion itself: read-your-writes with no
    // second barrier (the net server's post-flush pin path).
    auto view = svc->try_view_at_least(vv);
    if (view.has_value() && view->has_edge(1, 2) && view->has_edge(40, 41) &&
        view->versions().dominates(vv))
      pinned_ok.store(true);
    calls.fetch_add(1);
  });
  svc->flush();  // dominating barrier: the async one must have fired too
  EXPECT_EQ(calls.load(), 1);
  EXPECT_TRUE(pinned_ok.load());

  // A future the service has not published is refused, never waited for.
  VersionVector ahead = svc->versions();
  ahead.v[0] += 1;
  EXPECT_FALSE(svc->try_view_at_least(ahead).has_value());
  VersionVector wrong_shape;
  wrong_shape.v = {0};
  EXPECT_FALSE(svc->try_view_at_least(wrong_shape).has_value());
}

// durability_failed() is the replication/ops health probe: false without
// durability, false while the WAL is healthy, and sticky-true after a
// shard's WAL append fails — while the service itself keeps serving reads
// and accepting writes (the §10 contract: serve on, minus the claim).
TEST(Sharded, DurabilityFailedSurfacesStickyWalFailure) {
  FullyDynamicSpannerConfig cfg;
  cfg.k = 2;
  cfg.seed = 19;
  const size_t n = 64;
  auto initial = gen_erdos_renyi(n, 150, 5);

  ShardedConfig plain;
  auto no_dur = ShardedSpannerService::single_graph(n, initial, 2, cfg, plain);
  EXPECT_FALSE(no_dur->durability_failed());  // no claim, no failure

  auto fs = std::make_shared<MemFs>();
  ShardedConfig sc;
  sc.durability.enabled = true;
  sc.durability.fs = fs;
  sc.durability.dir = "root";
  auto svc = ShardedSpannerService::single_graph(n, initial, 2, cfg, sc);
  EXPECT_FALSE(svc->durability_failed());

  svc->submit({Edge(1, 40)}, {});
  svc->flush();
  EXPECT_FALSE(svc->durability_failed());  // healthy WAL appends

  // One transient I/O error (short write) on the next mutating op: the
  // owning shard's WAL must go sticky-failed even though the fs recovers.
  fs->fail_at_op(1);
  svc->submit({Edge(2, 41)}, {});
  svc->flush();
  EXPECT_TRUE(svc->durability_failed());

  // Sticky, and the service still serves: reads see the new edges and
  // later writes are applied and published.
  svc->submit({Edge(3, 42)}, {});
  svc->flush();
  EXPECT_TRUE(svc->durability_failed());
  auto view = svc->view();
  EXPECT_TRUE(view.has_edge(2, 41));
  EXPECT_TRUE(view.has_edge(3, 42));
}

}  // namespace
}  // namespace parspan
