// Tests for the flat CSR primitives (group_by_key / csr_build): layout
// correctness, stability, and serial/parallel agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"
#include "parallel/csr.hpp"
#include "util/rng.hpp"

namespace parspan {
namespace {

TEST(GroupByKey, EmptyInput) {
  auto g = group_by_key(5, {});
  ASSERT_EQ(g.offsets.size(), 6u);
  for (uint32_t o : g.offsets) EXPECT_EQ(o, 0u);
  EXPECT_TRUE(g.items.empty());
}

TEST(GroupByKey, GroupsAreStable) {
  // Elements with the same key must appear in input order.
  std::vector<uint32_t> keys = {2, 0, 2, 1, 0, 2, 1};
  auto g = group_by_key(3, keys);
  ASSERT_EQ(g.items.size(), keys.size());
  EXPECT_EQ(std::vector<uint32_t>(g.group(0).begin(), g.group(0).end()),
            (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(std::vector<uint32_t>(g.group(1).begin(), g.group(1).end()),
            (std::vector<uint32_t>{3, 6}));
  EXPECT_EQ(std::vector<uint32_t>(g.group(2).begin(), g.group(2).end()),
            (std::vector<uint32_t>{0, 2, 5}));
}

TEST(GroupByKey, SerialAndParallelAgree) {
  Rng rng(19);
  const size_t n = 100000, nbuckets = 700;
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) k = uint32_t(rng.next_below(nbuckets));
  int saved = num_workers();
  set_num_workers(1);
  auto serial = group_by_key(nbuckets, keys);
  set_num_workers(4);  // forces the blocked-histogram path
  auto parallel = group_by_key(nbuckets, keys);
  set_num_workers(saved);
  EXPECT_EQ(serial.offsets, parallel.offsets);
  EXPECT_EQ(serial.items, parallel.items);
}

TEST(CsrBuild, EmptyGraph) {
  auto csr = csr_build(4, {});
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_arcs(), 0u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(csr.degree(v), 0u);
}

TEST(CsrBuild, IsolatedVerticesGetEmptySlices) {
  auto csr = csr_build(6, {{1, 4}});
  EXPECT_EQ(csr.num_arcs(), 2u);
  EXPECT_EQ(csr.degree(0), 0u);
  EXPECT_EQ(csr.degree(1), 1u);
  EXPECT_EQ(csr.degree(5), 0u);
  EXPECT_EQ(csr.neighbors(1)[0], 4u);
  EXPECT_EQ(csr.neighbors(4)[0], 1u);
  EXPECT_EQ(csr.arcs(1)[0], 0u);  // arc 2i = u -> v
  EXPECT_EQ(csr.arcs(4)[0], 1u);  // arc 2i+1 = v -> u
}

TEST(CsrBuild, MatchesAdjacencyOracle) {
  const size_t n = 300;
  auto edges = gen_erdos_renyi(n, 1200, 23);
  auto csr = csr_build(n, edges);
  ASSERT_EQ(csr.num_arcs(), 2 * edges.size());
  std::vector<std::vector<VertexId>> ref(n);
  for (const Edge& e : edges) {
    ref[e.u].push_back(e.v);
    ref[e.v].push_back(e.u);
  }
  size_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    auto nbrs = csr.neighbors(v);
    std::vector<VertexId> got(nbrs.begin(), nbrs.end());
    std::sort(got.begin(), got.end());
    std::sort(ref[v].begin(), ref[v].end());
    EXPECT_EQ(got, ref[v]) << "vertex " << v;
    // Arc ids must point back at an edge incident to v.
    for (size_t j = 0; j < nbrs.size(); ++j) {
      uint32_t a = csr.arcs(v)[j];
      const Edge& e = edges[a >> 1];
      VertexId src = (a & 1) ? e.v : e.u;
      VertexId dst = (a & 1) ? e.u : e.v;
      EXPECT_EQ(src, v);
      EXPECT_EQ(dst, csr.neighbors(v)[j]);
    }
    total += nbrs.size();
  }
  EXPECT_EQ(total, 2 * edges.size());
}

TEST(CsrBuildDirected, KeepsArcIdsAndTargets) {
  std::vector<VertexId> srcs = {3, 0, 3, 1};
  std::vector<VertexId> dsts = {1, 2, 0, 1};
  auto csr = csr_build_directed(4, srcs, dsts);
  EXPECT_EQ(csr.degree(3), 2u);
  EXPECT_EQ(csr.degree(2), 0u);
  // Stable: vertex 3's arcs in input order.
  EXPECT_EQ(csr.arcs(3)[0], 0u);
  EXPECT_EQ(csr.arcs(3)[1], 2u);
  EXPECT_EQ(csr.neighbors(3)[0], 1u);
  EXPECT_EQ(csr.neighbors(3)[1], 0u);
  EXPECT_EQ(csr.neighbors(1)[0], 1u);  // self-loop arc 3 allowed here
}

}  // namespace
}  // namespace parspan
